package octopus

import (
	"math/rand"
	"testing"

	"octopus/internal/core"
	"octopus/internal/experiment"
	"octopus/internal/matching"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// reportPsi publishes the achieved ψ objective next to the timing numbers,
// in packet-hop units (ψ divided by traffic.WeightScale), so benchmark runs
// track solution quality as well as speed.
func reportPsi(b *testing.B, psi int64) {
	b.ReportMetric(float64(psi)/float64(traffic.WeightScale), "psi/op")
}

// benchScale is a reduced experiment scale so every figure benchmark
// completes quickly while exercising the full code path. Run
// cmd/mhsbench -scale full to regenerate the paper-scale figures.
func benchScale() experiment.Scale {
	return experiment.Scale{
		Name:          "bench",
		Nodes:         12,
		Window:        400,
		Delta:         10,
		Instances:     2,
		Matcher:       core.MatcherExact,
		Seed:          1,
		Workers:       2,
		NodeSweep:     []int{8, 12},
		DeltaSweep:    []int{5, 20},
		SkewSweep:     []int{30, 70},
		SparsitySweep: []int{4, 8},
		HopSweep:      []int{1, 2, 3},
		TimeNodeSweep: []int{8, 12},
	}
}

func benchmarkFigure(b *testing.B, id string) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(id, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table/figure of the paper's evaluation (§8).

func BenchmarkFig4a(b *testing.B)  { benchmarkFigure(b, "4a") }
func BenchmarkFig4b(b *testing.B)  { benchmarkFigure(b, "4b") }
func BenchmarkFig4c(b *testing.B)  { benchmarkFigure(b, "4c") }
func BenchmarkFig4d(b *testing.B)  { benchmarkFigure(b, "4d") }
func BenchmarkFig5a(b *testing.B)  { benchmarkFigure(b, "5a") }
func BenchmarkFig5b(b *testing.B)  { benchmarkFigure(b, "5b") }
func BenchmarkFig5c(b *testing.B)  { benchmarkFigure(b, "5c") }
func BenchmarkFig5d(b *testing.B)  { benchmarkFigure(b, "5d") }
func BenchmarkFig6(b *testing.B)   { benchmarkFigure(b, "6") }
func BenchmarkFig7a(b *testing.B)  { benchmarkFigure(b, "7a") }
func BenchmarkFig7b(b *testing.B)  { benchmarkFigure(b, "7b") }
func BenchmarkFig8(b *testing.B)   { benchmarkFigure(b, "8") }
func BenchmarkFig9a(b *testing.B)  { benchmarkFigure(b, "9a") }
func BenchmarkFig9b(b *testing.B)  { benchmarkFigure(b, "9b") }
func BenchmarkFig10a(b *testing.B) { benchmarkFigure(b, "10a") }
func BenchmarkFig10b(b *testing.B) { benchmarkFigure(b, "10b") }

// benchInstance builds a paper-style synthetic instance.
func benchInstance(b *testing.B, n, window int) (*Network, *Load) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := Complete(n)
	load, err := Synthetic(g, DefaultSyntheticParams(n, window), rng)
	if err != nil {
		b.Fatal(err)
	}
	return g, load
}

// BenchmarkIterationExact / BenchmarkIterationGreedy time one scheduler
// iteration at n=100 — the §8 "Execution Time" measurement behind Fig 10a
// (the iteration cost is the practically significant quantity: iterations
// run while the previous configuration carries traffic).
func benchmarkIteration(b *testing.B, m core.Matcher, n int) {
	g, load := benchInstance(b, n, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := core.New(g, load, core.Options{Window: 10000, Delta: 20, Matcher: m})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, ok, err := s.Step(); err != nil || !ok {
			b.Fatalf("step failed: %v %v", ok, err)
		}
	}
}

func BenchmarkIterationExact100(b *testing.B)  { benchmarkIteration(b, core.MatcherExact, 100) }
func BenchmarkIterationGreedy100(b *testing.B) { benchmarkIteration(b, core.MatcherGreedy, 100) }

// Matching substrate micro-benchmarks (the paper's Fig 10a compares the
// exact assignment solver against the linear-time greedy matcher).
func randomMatchingInstance(n int) []matching.Edge {
	rng := rand.New(rand.NewSource(2))
	var edges []matching.Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Intn(4) == 0 {
				edges = append(edges, matching.Edge{From: i, To: j, Weight: rng.Int63n(10000)})
			}
		}
	}
	return edges
}

func BenchmarkMatchingExact100(b *testing.B) {
	edges := randomMatchingInstance(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		matching.MaxWeightBipartite(100, edges)
	}
}

func BenchmarkMatchingGreedy100(b *testing.B) {
	edges := randomMatchingInstance(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		matching.GreedyBipartite(100, edges)
	}
}

// BenchmarkSimulateReplay times the packet-level simulator replaying an
// Octopus schedule (the measurement path behind every figure).
func BenchmarkSimulateReplay(b *testing.B) {
	g, load := benchInstance(b, 24, 2000)
	res, err := Schedule(g, load, Options{Window: 2000, Delta: 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var psi int64
	for i := 0; i < b.N; i++ {
		sres, err := simulate.Run(g, load, res.Schedule, simulate.Options{})
		if err != nil {
			b.Fatal(err)
		}
		psi = sres.Psi
	}
	reportPsi(b, psi)
}

// BenchmarkOctopusEndToEnd times a complete schedule-and-measure run.
func BenchmarkOctopusEndToEnd(b *testing.B) {
	g, load := benchInstance(b, 24, 1000)
	b.ReportAllocs()
	var psi int64
	for i := 0; i < b.N; i++ {
		res, err := Schedule(g, load, Options{Window: 1000, Delta: 20})
		if err != nil {
			b.Fatal(err)
		}
		m, err := Measure(g, load, res.Schedule, SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		psi = m.Psi
	}
	reportPsi(b, psi)
}

// BenchmarkOctopusPlus times the joint routing/scheduling variant.
func BenchmarkOctopusPlus(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := Complete(16)
	p := DefaultSyntheticParams(16, 600)
	p.RouteChoices = 10
	load, err := Synthetic(g, p, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var psi int64
	for i := 0; i < b.N; i++ {
		res, err := Schedule(g, load, Options{Window: 600, Delta: 10, MultiRoute: true})
		if err != nil {
			b.Fatal(err)
		}
		psi = res.Psi
	}
	reportPsi(b, psi)
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationAlphaFullVsBinary contrasts evaluating every α
// candidate against the Octopus-B ternary search.
func BenchmarkAblationAlphaFull(b *testing.B) {
	g, load := benchInstance(b, 16, 800)
	b.ReportAllocs()
	var psi int64
	for i := 0; i < b.N; i++ {
		res, err := Schedule(g, load, Options{Window: 800, Delta: 10})
		if err != nil {
			b.Fatal(err)
		}
		psi = res.Psi
	}
	reportPsi(b, psi)
}

func BenchmarkAblationAlphaBinary(b *testing.B) {
	g, load := benchInstance(b, 16, 800)
	b.ReportAllocs()
	var psi int64
	for i := 0; i < b.N; i++ {
		res, err := Schedule(g, load, Options{Window: 800, Delta: 10, AlphaSearch: AlphaBinary})
		if err != nil {
			b.Fatal(err)
		}
		psi = res.Psi
	}
	reportPsi(b, psi)
}

// BenchmarkAblationChained times the Theorem 2 chained-benefit greedy
// against the default one-hop benefit.
func BenchmarkAblationChained(b *testing.B) {
	g, load := benchInstance(b, 12, 400)
	b.ReportAllocs()
	var psi int64
	for i := 0; i < b.N; i++ {
		res, err := Schedule(g, load, Options{Window: 400, Delta: 10, MultiHop: true})
		if err != nil {
			b.Fatal(err)
		}
		psi = res.Psi
	}
	reportPsi(b, psi)
}
