#!/usr/bin/env bash
# daemon_smoke.sh — end-to-end smoke test for cmd/mhsd, used by CI.
#
# Boots the daemon (race-enabled build) on an ephemeral port, submits a
# flow batch over HTTP, polls /v1/epochs until everything is delivered,
# scrapes /metrics, then sends SIGINT and asserts a clean graceful exit.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -race -o "$workdir/mhsd" ./cmd/mhsd

"$workdir/mhsd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
  -n 8 -window 200 -delta 10 -epoch 20ms -pods 2 -slo-epochs 64 \
  >"$workdir/stdout.log" 2>"$workdir/stderr.log" &
pid=$!

# Wait for the daemon to publish its bound address.
for _ in $(seq 1 100); do
  [ -s "$workdir/addr" ] && break
  kill -0 "$pid" || { echo "mhsd died during startup"; cat "$workdir/stderr.log"; exit 1; }
  sleep 0.1
done
[ -s "$workdir/addr" ] || { echo "mhsd never wrote its address file"; exit 1; }
addr=$(cat "$workdir/addr")
echo "mhsd listening on $addr"

# Submit a batch of flows (auto-assigned IDs, BFS default routes).
code=$(curl -s -o "$workdir/submit.json" -w '%{http_code}' -X POST "http://$addr/v1/flows" \
  -d '[{"src":0,"dst":1,"size":40},{"src":2,"dst":5,"size":25},{"src":7,"dst":3,"size":60}]')
[ "$code" = 202 ] || { echo "submit returned $code"; cat "$workdir/submit.json"; exit 1; }
tr -d ' \n' < "$workdir/submit.json" | grep -q '"accepted":\[1,2,3\]' \
  || { echo "bad submit response"; cat "$workdir/submit.json"; exit 1; }

# Poll until the batch is fully delivered.
delivered=0
for _ in $(seq 1 200); do
  curl -s "http://$addr/v1/epochs" > "$workdir/epochs.json"
  if grep -q '"delivered": *125' "$workdir/epochs.json"; then delivered=1; break; fi
  sleep 0.1
done
[ "$delivered" = 1 ] || { echo "daemon never delivered the batch"; cat "$workdir/epochs.json"; exit 1; }
echo "batch delivered"

# The flight recorder journals every flow's lifecycle (default -flight).
curl -s "http://$addr/v1/flows/1/events" > "$workdir/events.json"
for ev in admitted planned delivered completed; do
  grep -q "\"ev\": \"$ev\"" "$workdir/events.json" \
    || { echo "/v1/flows/1/events missing $ev"; cat "$workdir/events.json"; exit 1; }
done
echo "flight events ok"

# The status roll-up reports SLO compliance, plan latency, per-pod load.
curl -s "http://$addr/v1/status" > "$workdir/status.json"
for field in on_time_fraction plan_p99_seconds pod_load; do
  grep -q "\"$field\"" "$workdir/status.json" \
    || { echo "/v1/status missing $field"; cat "$workdir/status.json"; exit 1; }
done
grep -q '"on_time_fraction": 1' "$workdir/status.json" \
  || { echo "flows missed the 64-epoch SLO"; cat "$workdir/status.json"; exit 1; }
echo "status ok"

# The observability endpoints ride on the same mux.
curl -s "http://$addr/metrics" > "$workdir/metrics.txt"
for metric in octopus_daemon_plan_overruns_total octopus_daemon_queued_packets octopus_online_epochs_total \
  octopus_daemon_plan_seconds octopus_flight_completed_total; do
  grep -q "$metric" "$workdir/metrics.txt" || { echo "/metrics missing $metric"; exit 1; }
done
echo "metrics ok"

# Graceful shutdown: SIGINT must drain and exit 0.
kill -INT "$pid"
if ! wait "$pid"; then
  echo "mhsd exited non-zero"; cat "$workdir/stderr.log"; exit 1
fi
grep -q 'shutdown complete' "$workdir/stdout.log" || { echo "missing shutdown banner"; cat "$workdir/stdout.log"; exit 1; }
echo "daemon smoke passed"
