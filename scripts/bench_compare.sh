#!/usr/bin/env bash
# bench_compare.sh — benchmark regression gate, used by CI.
#
# Re-runs a slice of the committed benchmark baseline (the newest
# BENCH_pr*.json at the repo root, or $1) on this machine and diffs the
# fresh results against it on every shared (algo, nodes, window, delta,
# matcher) point:
#
#   - psi_per_op and delivered_per_op must match bit-for-bit — the
#     planners are deterministic in the scale seed, so any divergence is
#     a real schedule-quality change, not noise;
#   - ns_per_op must stay within BENCH_TIME_BAND (default 4x) of the
#     baseline — hardware differs between runners, so the band is a
#     runaway-regression tripwire, not a precise budget.
#
# This replaces the ad-hoc per-PR psi pins: the baseline file carries the
# instance shape (nodes/window/delta/matcher, pod and flow counts), so
# landing a new BENCH_prN.json automatically retargets the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline=${1:-$(ls BENCH_pr*.json | sort -V | tail -n 1)}
specs=${BENCH_COMPARE_SPECS:-octopus,octopus-sharded:pods=32,par=4}
band=${BENCH_TIME_BAND:-4.0}
reps=${BENCH_COMPARE_REPS:-1}
fresh=$(mktemp /tmp/bench_compare.XXXXXX.json)
trap 'rm -f "$fresh"' EXIT

# Reconstruct the baseline's instance shape so the fresh run measures the
# exact same work.
args=$(python3 - "$baseline" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
r = doc["results"][0]
out = ["-scale", doc.get("scale", "quick"),
       "-window", str(r["window"]), "-delta", str(r["delta"]),
       "-matcher", r["matcher"], "-bench-nodes", str(r["nodes"])]
if r.get("pods"):
    out += ["-bench-pods", str(r["pods"]), "-bench-flows", str(r["flows"])]
print(" ".join(out))
EOF
)

echo "bench_compare: baseline=$baseline specs=$specs band=${band}x"
echo "bench_compare: go run ./cmd/mhsbench -json ... $args -bench-reps $reps"
# shellcheck disable=SC2086
go run ./cmd/mhsbench -json "$fresh" $args -bench-reps "$reps" -bench-algos "$specs"

python3 - "$baseline" "$fresh" "$band" <<'EOF'
import json, sys

base = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))
band = float(sys.argv[3])

def key(r):
    return (r["algo"], r["nodes"], r["window"], r["delta"], r["matcher"])

pinned = {key(r): r for r in base["results"]}
shared, failed = 0, False
for r in fresh["results"]:
    k = key(r)
    b = pinned.get(k)
    name = "{}/n{}/w{}/d{}/{}".format(*k)
    if b is None:
        print(f"SKIP {name}: not in baseline")
        continue
    shared += 1
    for field in ("psi_per_op", "delivered_per_op"):
        if r[field] != b[field]:
            print(f"FAIL {name}: {field} drifted {b[field]} -> {r[field]}")
            failed = True
    ratio = r["ns_per_op"] / b["ns_per_op"]
    if ratio > band:
        print(f"FAIL {name}: ns_per_op {r['ns_per_op']} is {ratio:.2f}x baseline "
              f"{b['ns_per_op']} (band {band}x)")
        failed = True
    else:
        print(f"OK   {name}: psi/delivered exact, time {ratio:.2f}x baseline")
if shared == 0:
    print("FAIL: no shared points between the fresh run and the baseline; the gate is vacuous")
    failed = True
sys.exit(1 if failed else 0)
EOF

echo "bench_compare: passed"
