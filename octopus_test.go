package octopus

import (
	"math/rand"
	"testing"
)

// The façade tests exercise the public API end to end; detailed behavior
// is covered by the internal packages' suites.

func TestPublicAPIQuickstart(t *testing.T) {
	g := Complete(12)
	rng := rand.New(rand.NewSource(1))
	load, err := Synthetic(g, DefaultSyntheticParams(12, 400), rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(g, load, Options{Window: 400, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	meas, err := Measure(g, load, res.Schedule, SimOptions{Window: 400})
	if err != nil {
		t.Fatal(err)
	}
	if meas.Delivered != res.Delivered {
		t.Fatalf("plan %d vs measured %d", res.Delivered, meas.Delivered)
	}
	if meas.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestPublicAPIBaselinesOrdering(t *testing.T) {
	g := Complete(12)
	rng := rand.New(rand.NewSource(2))
	load, err := Synthetic(g, DefaultSyntheticParams(12, 400), rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(g, load, Options{Window: 400, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	meas, err := Measure(g, load, res.Schedule, SimOptions{Window: 400})
	if err != nil {
		t.Fatal(err)
	}
	ecl, err := EclipseBased(g, load, 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := RotorNet(g, load, 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(meas.Delivered > ecl.Delivered && ecl.Delivered > rot.Delivered) {
		t.Fatalf("ordering violated: octopus %d, eclipse-based %d, rotornet %d",
			meas.Delivered, ecl.Delivered, rot.Delivered)
	}
	ub, err := UpperBound(g, load, 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	if float64(ub.Delivered) < 0.9*float64(meas.Delivered) {
		t.Fatalf("UB %d far below Octopus %d", ub.Delivered, meas.Delivered)
	}
}

func TestPublicAPIStepwise(t *testing.T) {
	g := Complete(10)
	rng := rand.New(rand.NewSource(3))
	load, err := Synthetic(g, DefaultSyntheticParams(10, 300), rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(g, load, Options{Window: 300, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		_, ok, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps++
	}
	if steps == 0 || !s.Done() {
		t.Fatalf("steps=%d done=%v", steps, s.Done())
	}
}

func TestPublicAPIBidirectional(t *testing.T) {
	u := func() *UNetwork {
		u := NewUNetwork(6)
		for i := 0; i < 6; i++ {
			u.AddEdge(i, (i+1)%6)
		}
		return u
	}()
	load := &Load{Flows: []Flow{
		{ID: 1, Size: 20, Src: 0, Dst: 2, Routes: []Route{{0, 1, 2}}},
		{ID: 2, Size: 20, Src: 2, Dst: 0, Routes: []Route{{2, 1, 0}}},
	}}
	res, err := ScheduleBidirectional(u, load, Options{Window: 500, Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 40 {
		t.Fatalf("delivered %d, want 40", res.Delivered)
	}
}

func TestPublicAPIHybridAndMakespan(t *testing.T) {
	g := Complete(8)
	rng := rand.New(rand.NewSource(4))
	load, err := Synthetic(g, DefaultSyntheticParams(8, 200), rng)
	if err != nil {
		t.Fatal(err)
	}
	h, err := HybridSchedule(g, load.Clone(), Options{Window: 200, Delta: 10}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Delivered() == 0 || h.PacketDelivered == 0 {
		t.Fatalf("hybrid result %+v", h)
	}
	w, res, err := Makespan(g, load, Options{Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pending != 0 || res.Schedule.Cost() > w {
		t.Fatalf("makespan w=%d pending=%d", w, res.Pending)
	}
}

func TestPublicAPITraceLike(t *testing.T) {
	g := Complete(16)
	for _, kind := range []TraceKind{FBHadoop, FBWeb, FBDatabase, MSHeatmap} {
		rng := rand.New(rand.NewSource(5))
		load, err := TraceLike(g, kind, 300, rng)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if load.TotalPackets() == 0 {
			t.Fatalf("%v: empty load", kind)
		}
	}
}

func TestPublicAPIOnline(t *testing.T) {
	g := Complete(6)
	arrivals := []Arrival{
		{Flow: Flow{ID: 1, Size: 20, Src: 0, Dst: 1, Routes: []Route{{0, 1}}}, At: 0},
		{Flow: Flow{ID: 2, Size: 20, Src: 1, Dst: 2, Routes: []Route{{1, 2}}}, At: 120},
	}
	res, err := ScheduleOnline(g, arrivals, OnlineOptions{Core: Options{Window: 100, Delta: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 40 {
		t.Fatalf("delivered %d, want 40", res.Delivered)
	}
	if len(res.Completion) != 2 {
		t.Fatalf("completions = %v", res.Completion)
	}
}

func TestPublicAPIRollingWindows(t *testing.T) {
	g := Complete(8)
	rng := rand.New(rand.NewSource(9))
	load, err := Synthetic(g, DefaultSyntheticParams(8, 600), rng)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := RunWindows(g, load, Options{Window: 200, Delta: 10}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if TotalDelivered(ws) != load.TotalPackets() {
		t.Fatalf("rolling delivered %d of %d", TotalDelivered(ws), load.TotalPackets())
	}
}

func TestPublicAPIPartialFabric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RandomPartial(16, 5, rng)
	load, err := Synthetic(g, DefaultSyntheticParams(16, 300), rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(g, load, Options{Window: 300, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g, 300, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIAlgorithmRegistry(t *testing.T) {
	names := AlgorithmNames()
	algos := Algorithms()
	if len(names) == 0 || len(names) != len(algos) {
		t.Fatalf("%d names, %d algorithms", len(names), len(algos))
	}
	for i, a := range algos {
		if a.Name() != names[i] {
			t.Fatalf("Algorithms()[%d] = %q, AlgorithmNames()[%d] = %q", i, a.Name(), i, names[i])
		}
	}
	if _, ok := LookupAlgorithm("octopus"); !ok {
		t.Fatal("octopus not registered")
	}
	if _, ok := LookupAlgorithm("bogus"); ok {
		t.Fatal("LookupAlgorithm accepted an unknown name")
	}

	g := Complete(8)
	rng := rand.New(rand.NewSource(3))
	load, err := Synthetic(g, DefaultSyntheticParams(8, 200), rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunAlgorithm("octopus-e:eps64=8", g, load, AlgoParams{Window: 200, Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Algo != "octopus-e" || out.Schedule == nil || out.Delivered <= 0 {
		t.Fatalf("outcome %+v", out)
	}
	if _, err := out.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAlgorithm("octopus:color=red", g, load, AlgoParams{Window: 200}); err == nil {
		t.Fatal("bad spec accepted")
	}
}
