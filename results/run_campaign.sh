#!/bin/sh
# Regenerates the EXPERIMENTS.md data set. Near-paper scale: n=100,
# W=10000, Delta=20 (the paper's defaults), 3 seeded instances per point
# (paper: 10) to fit a single-core machine; Fig 6 uses 2 instances and
# Fig 10b substitutes n=200 for the paper's n=1000 (see EXPERIMENTS.md).
set -e
BIN=${BIN:-/tmp/mhsbench}
OUT=${OUT:-/root/repo/results}
run() {
  label=$1
  shift
  echo "=== fig $label ($(date +%H:%M:%S)) ==="
  "$BIN" -scale full -instances 3 -out "$OUT" "$@"
}
run 4b -fig 4b
run 4c -fig 4c
run 4d -fig 4d
run 5b -fig 5b
run 5c -fig 5c
run 5d -fig 5d
run 7a -fig 7a
run 7b -fig 7b
run 8  -fig 8
run 9a -fig 9a
run 9b -fig 9b
run 4a -fig 4a -node-sweep 25,50,100,200
run 5a -fig 5a -node-sweep 25,50,100,200
run 10a -fig 10a -time-nodes 100,200,400
run ext-solstice -fig ext-solstice
run ext-ports -fig ext-ports
run ext-backtrack -fig ext-backtrack
run ext-makespan -fig ext-makespan
run ext-eclipsepp -fig ext-eclipsepp
run ext-buffers -fig ext-buffers
run ext-adaptive -fig ext-adaptive
run ext-epsilon -fig ext-epsilon
"$BIN" -scale full -instances 2 -out "$OUT" -fig 10b -time-nodes 100,200 -delta-sweep 10,20,50,100
"$BIN" -scale full -instances 2 -out "$OUT" -fig 6
echo "=== done ($(date +%H:%M:%S)) ==="
