#!/usr/bin/env python3
"""Rebuilds /root/repo/EXPERIMENTS.md from the CSVs in this directory.

Run results/run_campaign.sh first (it writes the CSVs), then this script.
Commentary strings below record the paper-vs-measured comparison.
"""
import csv
import os

HERE = os.path.dirname(os.path.abspath(__file__))
OUT = os.path.join(HERE, "..", "EXPERIMENTS.md")


def table(name, dec=1):
    path = os.path.join(HERE, name + ".csv")
    if not os.path.exists(path):
        return "*(data not regenerated; run results/run_campaign.sh)*"
    rows = list(csv.reader(open(path)))
    out = ["| " + " | ".join(rows[0]) + " |", "|" + "---|" * len(rows[0])]
    for r in rows[1:]:
        cells = [r[0]] + [f"{float(x):.{dec}f}" for x in r[1:]]
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


DOC = f"""# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (§8), regenerated with
this repository. Absolute numbers are not expected to match the paper
(different RNG streams and trace-like stand-ins for the proprietary
traces; see DESIGN.md §5), but the shapes — who wins, by roughly what
factor, where the crossovers fall — must hold, and they do.

## Methodology

* Parameters follow the paper: `n = 100` nodes, window `W = 10,000`
  slots, reconfiguration delay `Δ = 20` slots, synthetic loads with 4
  large + 12 small flows per port carrying 70%/30% of a window's worth of
  per-port traffic, routes spread evenly over 1–3 hops.
* **Instances**: 3 seeded instances per point (paper: 10; this repo's
  campaign ran on a single-core machine — rerun `results/run_campaign.sh`
  with `-instances 10` for the paper's averaging). Fig 6 uses 2 instances;
  Fig 10b substitutes n = 200 for the paper's n = 1000 (same reason; the
  library itself handles n = 1000, see Fig 10a which measures up to 400
  here and 1000 via `mhsbench -fig 10a -time-nodes 1000`).
* Every Octopus/baseline number is measured by the packet-level
  simulator replaying the emitted schedule; UB numbers come from the
  min-over-hops accounting of §8. `results/run_campaign.sh` regenerates
  all CSVs; exact seeds make every number reproducible.

## Fig 4 — packets delivered (%)

The paper's headline: Octopus beats the Eclipse-Based scheme by a large
margin (roughly 2×), tracks the UB upper bound within a couple of points,
and sits below the ~66% absolute capacity bound.
**Measured: the same.** Octopus ≈ 2.2× Eclipse-Based throughout, |Octopus −
UB| ≤ ~1.5 points everywhere, absolute bound ≈ 66.7%.

### 4a — varying number of nodes

{table("fig4a")}

Paper: slowly rising delivered %, flat for the baselines. Measured: rises
44% → 55% over 25–200 nodes; Eclipse-Based flat near 23%.

### 4b — varying reconfiguration delay

{table("fig4b")}

Paper: Octopus degrades gently with Δ while staying far above
Eclipse-Based. Measured: 57% → 42% over Δ = 1..200; Eclipse-Based flat
~23% (its schedules already waste most capacity at any Δ).

### 4c — varying traffic skew (c_S as % of total)

{table("fig4c")}

Paper: performance *improves* slightly as small-flow share rises (sizes
become more uniform). Measured: 49% → 57%, the same mildly rising trend.

### 4d — varying sparsity (flows per port)

{table("fig4d")}

Paper: mildly improving with more flows per port. Measured: 45% → 56%.

## Fig 5 — link utilization (%)

Paper: Octopus and UB utilize links almost perfectly; Eclipse-Based's
poor throughput is explained by poor utilization (it picks matchings for
the unordered hop demand, so many active link-slots carry nothing).
**Measured: Octopus/UB ≈ 94–100%, Eclipse-Based ≈ 58–66% across all four
sweeps.**

### 5a — varying number of nodes

{table("fig5a")}

### 5b — varying reconfiguration delay

{table("fig5b")}

### 5c — varying traffic skew

{table("fig5c")}

### 5d — varying sparsity

{table("fig5d")}

## Fig 6 — real-trace-like loads

{table("fig6")}

Rows 1–4 = FB-1 (Hadoop-like), FB-2 (web-like), FB-3 (database-like), MS
(heatmap-like); these generators stand in for the paper's proprietary
traces (DESIGN.md §5). Paper: delivered % is much higher than on the
synthetic load because the traces are lighter (absolute bound near 100%),
Octopus still ≫ Eclipse-Based and ≈ UB, and on FB-3 Octopus can *beat* UB
(UB serves later hops of packets whose earlier hops never complete).
Measured: the same pattern — e.g. the database-like trace is the easiest
(few huge flows), the web-like trace the hardest (hot destinations
saturate), and Octopus ≈ UB within ~2 points everywhere.

## Fig 7a — delivered packets as % of ψ

{table("fig7a")}

Paper: 80–90% for Octopus (undelivered in-flight packets are a small
effect), slightly lower for UB, and a *high* ratio for Eclipse-Based —
proving its problem is utilization, not stranded packets. Measured:
Octopus 82–90%, UB consistently below Octopus, Eclipse-Based ~65%
(lower than the paper's, consistent with our replay-based Eclipse-Based
stranding more packets mid-route; see ext-eclipsepp).

## Fig 7b — Octopus-e for uniform route lengths

{table("fig7b")}

Paper: Octopus-e ≈ Octopus on mixed loads, but with all flows forced to
the same route length the ε bonus for later hops wins, with the gap
growing in hop count — and both can beat UB at 3 hops because UB's
min-over-hops accounting collapses. **Measured: exactly this.** At 2 hops
Octopus-e 44.8% vs Octopus 32.5%; at 3 hops 26.0% vs 11.5%, with UB at
7.7% — the measured UB crossover the paper highlights.

## Fig 8 — Octopus vs RotorNet

{table("fig8")}

Paper: the traffic-agnostic RotorNet schedule performs very poorly on the
MHS problem, with very low utilization (most active links carry no flow).
Measured: RotorNet 1.6–11% delivered vs Octopus 42–57%; RotorNet
utilization 4–24% vs ~94–100%.

## Fig 9a — Octopus-B (ternary search over α)

{table("fig9a")}

Paper: near-identical to Octopus, enabling the |T|·𝒟² → O(log) reduction
in matchings per iteration. Measured: within 0.15 points at every Δ.

## Fig 9b — Octopus+ vs Octopus-random (10 routes per flow)

{table("fig9b")}

Paper: Octopus+ easily outperforms picking a random route. Measured:
≈ 2.2–2.5× at every Δ (97% vs 44% at Δ=20).

## Fig 10a — per-iteration execution time (µs)

{table("fig10a", dec=0)}

Paper: with OR-Tools on a 3.2 GHz desktop, exact matchings take a few ms
and the greedy matcher a fraction of a ms, so Octopus-G is viable at
n = 1000 with parallel per-α matchings. Measured (single-core, *whole*
iteration = all α-candidates, not one matching): the greedy matcher is
2–7× faster per iteration and the gap widens with n — the same
exact ≫ greedy relationship. Single-matching microbenchmarks
(`BenchmarkMatchingExact100` ≈ 1 ms vs `BenchmarkMatchingGreedy100`
≈ 0.1–0.2 ms at n=100) land in the paper's reported regime.

## Fig 10b — Octopus vs Octopus-G at scale (n = 200 here)

{table("fig10b")}

Paper (n = 1000): Octopus-G's delivered % is "very close (95% or above)"
to Octopus. Measured at n = 200: 93.5–96.1% of Octopus at every Δ.

## Extensions and ablations (beyond the paper's figures)

### ext-solstice — Solstice-style decomposition as a baseline

{table("figext-solstice")}

A greedy BvN (Solstice-like) decomposition of the unordered one-hop load
performs almost identically to Eclipse-Based — both lose to Octopus for
the same reason (hop-order-blind schedules), supporting the paper's claim
that the gap is inherent to one-hop decomposition, not to Eclipse
specifically.

### ext-ports — K ports per node (§7)

{table("figext-ports")}

Doubling ports (union of 2 matchings per configuration) lifts delivery
from 54% to 85%; 4 ports saturate the load (99.99%).

### ext-makespan — makespan minimization (§7)

{table("figext-makespan", dec=0)}

The minimal full-service window found by binary search is ≈ 3.5× the
trivial per-port lower bound — the multi-hop traffic must cross 2 hops on
average and share intermediate links.

### ext-backtrack — Octopus+ backtracking ablation (§6)

{table("figext-backtrack")}

On complete fabrics with 10 route choices, backtracking changes nothing
measurable: the direct link is almost always among the candidate routes,
so packets take it up front. Backtracking is what makes Theorem 3's
guarantee possible in adversarial cases (and the unit tests construct
cases where it fires); empirically it is neutral on these loads.

### ext-eclipsepp — Eclipse-Based realizations

{table("figext-eclipsepp")}

Two ways to route multi-hop traffic over the Eclipse sequence: our
default fixed-route VOQ replay vs. the reference Eclipse++ time-expanded
re-routing (packets may deviate from nominal routes). Eclipse++ recovers
some packets (it can re-route around hop-order violations) but stays far
below Octopus: the sequence itself, chosen blind to hop ordering, is the
bottleneck — precisely the paper's argument.

### ext-buffers — intermediate buffering under Octopus

{table("figext-buffers", dec=0)}

Multi-hop circuit scheduling parks packets at intermediate nodes between
configurations. Peak per-node buffering grows with route length: ~6,500
packets at 2 hops and ~7,400 at 3 hops — at the paper's 12.5 KB packets,
roughly 80–90 MB of switch buffer per node — quantifying the memory cost
the paper leaves implicit (1-hop traffic needs none by definition).

### ext-adaptive — offline planning vs queue-state MaxWeight

{table("figext-adaptive")}

The related work's adaptive policies [37] schedule from instantaneous
queue state. On the paper's setting — the load known up front — Octopus's
traffic-aware window planning wins decisively (54% vs 39–40% at Δ=20):
the myopic MaxWeight policy cannot amortize Δ against long, planned,
weight-aware configurations; hysteresis recovers 1–4 points at small Δ by
switching less.

### ext-epsilon — Octopus-e ε sensitivity (uniform 3-hop routes)

{table("figext-epsilon")}

The ε bonus for later hops (Fig 7b) is not fragile: ε = 1/32 already
lifts delivery from 10% to 24% on the all-3-hop load, and everything in
[1/16, 1] sits on a broad 26–27% plateau — no sharp optimum to tune.

## Worked example and theorem checks (tests, not figures)

* The paper's Example 1 (Figure 1) is reproduced exactly: the given
  suboptimal sequence delivers 100 packets with ψ = 150 and the optimal
  delivers 200 with ψ = 200 (`simulate.TestPaperExample1*`), the benefit
  identities B((M₄,50),∅)=0 and B((M₄,50),⟨(M₃,50)⟩)=25 hold
  (`core.TestBenefitExample`), and Octopus itself finds the optimum
  (`core.TestPaperExample1Octopus`).
* Theorem 1's bound ψ(Octopus) ≥ (1−1/e^{{1/𝒟}})·W/(W+Δ)·ψ(OPT) is
  validated against an exhaustive-search optimum on tiny instances
  (`core.TestTheorem1BoundOnTinyInstances`), Lemma 2's weak
  submodularity on random instances (`core.TestLemma2WeakSubmodularity`),
  and Lemma 3's α-candidate optimality against exhaustive α enumeration
  (`core.TestAlphaCandidatesCoverExhaustiveSearch`).
"""

with open(OUT, "w") as f:
    f.write(DOC)
print("wrote", OUT)
