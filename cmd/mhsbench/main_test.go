package main

import "testing"

func TestParseInts(t *testing.T) {
	got := parseInts("25, 50,100")
	want := []int{25, 50, 100}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if parseInts("7")[0] != 7 {
		t.Fatal("single value")
	}
}
