package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"octopus/internal/experiment"
)

func TestParseInts(t *testing.T) {
	got := parseInts("25, 50,100")
	want := []int{25, 50, 100}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if parseInts("7")[0] != 7 {
		t.Fatal("single value")
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	sc := experiment.Quick()
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := runBench(sc, "octopus,octopus-g", []int{8}, 1, base, "", benchPods{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != benchSchema {
		t.Fatalf("schema %q, want %q", doc.Schema, benchSchema)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(doc.Results))
	}
	for _, r := range doc.Results {
		if r.NsPerOp <= 0 || r.PsiPerOp <= 0 || r.DeliveredPerOp <= 0 {
			t.Fatalf("degenerate result %+v", r)
		}
		if r.Nodes != 8 || r.Matcher != "exact" {
			t.Fatalf("wrong point %+v", r)
		}
	}
	// A second run against the first as baseline must annotate speedups.
	annotated := filepath.Join(dir, "new.json")
	if err := runBench(sc, "octopus", []int{8}, 1, annotated, base, benchPods{}); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(annotated)
	if err != nil {
		t.Fatal(err)
	}
	var doc2 benchFile
	if err := json.Unmarshal(raw, &doc2); err != nil {
		t.Fatal(err)
	}
	if doc2.Results[0].BaselineNs == 0 || doc2.Results[0].Speedup <= 0 {
		t.Fatalf("baseline not annotated: %+v", doc2.Results[0])
	}
	// Determinism of the measured work: ψ must match across runs.
	if doc2.Results[0].PsiPerOp != doc.Results[0].PsiPerOp {
		t.Fatalf("psi drifted: %d vs %d", doc2.Results[0].PsiPerOp, doc.Results[0].PsiPerOp)
	}
}

func TestBenchPodMode(t *testing.T) {
	sc := experiment.Quick()
	sc.Window = 64
	sc.Delta = 2
	path := filepath.Join(t.TempDir(), "pods.json")
	err := runBench(sc, "octopus,octopus-sharded:pods=4,par=2", []int{24}, 1, path, "",
		benchPods{pods: 4, targetFlows: 500})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.PodLoad == nil || doc.PodLoad.Flows < 400 || doc.PodLoad.StoreBytes == 0 || doc.PodLoad.PointerBytes == 0 {
		t.Fatalf("pod_load stats missing or degenerate: %+v", doc.PodLoad)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("got %d results", len(doc.Results))
	}
	for _, r := range doc.Results {
		if r.Pods != 4 || r.Flows != doc.PodLoad.Flows {
			t.Fatalf("pod annotations missing: %+v", r)
		}
		if r.NsPerOp <= 0 || r.HeapPeakBytes == 0 || r.PsiPerOp <= 0 {
			t.Fatalf("degenerate result %+v", r)
		}
	}
	if doc.Results[1].Algo != "octopus-sharded:pods=4,par=2" || doc.Results[1].Par != 2 {
		t.Fatalf("spec not carried through: %+v", doc.Results[1])
	}
}

func TestBenchUnknownAlgo(t *testing.T) {
	if err := runBench(experiment.Quick(), "nonesuch", []int{8}, 1, filepath.Join(t.TempDir(), "x.json"), "", benchPods{}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}
