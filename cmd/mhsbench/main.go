// Command mhsbench regenerates the tables and figures of the paper's
// evaluation section (§8). Each figure is printed as an aligned text table
// and optionally written as CSV.
//
// Usage:
//
//	mhsbench -fig 4a                 # one figure at quick scale
//	mhsbench -fig all -scale full    # the paper's full parameters (slow)
//	mhsbench -fig 8 -out results/    # also write results/fig8.csv
//
// The quick scale runs every figure in seconds on a laptop; the full scale
// matches the paper's n=100, W=10000, Δ=20, 10 instances per point, which
// takes serious CPU time (the paper parallelized matching computations
// across a large multi-core machine).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"octopus/internal/algo"
	"octopus/internal/buildinfo"
	"octopus/internal/experiment"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure ID ("+strings.Join(experiment.FigureIDs(), ", ")+"), extension ID ("+strings.Join(experiment.ExtensionIDs(), ", ")+"), 'all', or 'ext'")
		scaleName = flag.String("scale", "quick", "experiment scale: quick or full")
		outDir    = flag.String("out", "", "directory to write per-figure CSV files (optional)")
		instances = flag.Int("instances", 0, "override instances per point")
		nodes     = flag.Int("n", 0, "override default network size")
		window    = flag.Int("window", 0, "override window W")
		delta     = flag.Int("delta", 0, "override reconfiguration delay Δ")
		matcher   = flag.String("matcher", "", "override matcher: exact or greedy")
		workers   = flag.Int("workers", 0, "override parallel instances")
		seed      = flag.Int64("seed", 0, "override base RNG seed")
		nodeSweep = flag.String("node-sweep", "", "override Fig4a/5a node sweep (comma-separated)")
		deltaSw   = flag.String("delta-sweep", "", "override reconfiguration-delay sweep (comma-separated)")
		timeNodes = flag.String("time-nodes", "", "override Fig10 network-size sweep (comma-separated)")

		jsonOut    = flag.String("json", "", "benchmark mode: write timing/allocation JSON to this file ('-' for stdout) instead of running figures")
		benchAlgos = flag.String("bench-algos", "octopus,octopus-g", "algorithm specs to time in -json mode (comma-separated, full name[:key=value,...] grammar)")
		benchNodes = flag.String("bench-nodes", "", "node counts to time in -json mode (comma-separated; default: the scale's n)")
		benchReps  = flag.Int("bench-reps", 3, "repetitions per point in -json mode (fastest rep is reported)")
		benchPodsN = flag.Int("bench-pods", 0, "-json mode: bench on a pod fabric with this many pods and the matching pod workload")
		benchFlows = flag.Int("bench-flows", 0, "-json mode with -bench-pods: scale the workload to about this many flows")
		baseline   = flag.String("baseline", "", "previous -json output; annotates results with per-point speedups")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file")
		version    = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		buildinfo.Print(os.Stdout, "mhsbench")
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	var sc experiment.Scale
	switch *scaleName {
	case "quick":
		sc = experiment.Quick()
	case "full":
		sc = experiment.Full()
	default:
		fatalf("unknown scale %q (want quick or full)", *scaleName)
	}
	if *instances > 0 {
		sc.Instances = *instances
	}
	if *nodes > 0 {
		sc.Nodes = *nodes
	}
	if *window > 0 {
		sc.Window = *window
	}
	if *delta > 0 {
		sc.Delta = *delta
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *matcher != "" {
		m, err := algo.ParseMatcher(*matcher)
		if err != nil {
			fatalf("%v", err)
		}
		sc.Matcher = m
	}
	if *nodeSweep != "" {
		sc.NodeSweep = parseInts(*nodeSweep)
	}
	if *deltaSw != "" {
		sc.DeltaSweep = parseInts(*deltaSw)
	}
	if *timeNodes != "" {
		sc.TimeNodeSweep = parseInts(*timeNodes)
	}

	if *jsonOut != "" {
		var nodesList []int
		if *benchNodes != "" {
			nodesList = parseInts(*benchNodes)
		}
		pods := benchPods{pods: *benchPodsN, targetFlows: *benchFlows}
		if err := runBench(sc, *benchAlgos, nodesList, *benchReps, *jsonOut, *baseline, pods); err != nil {
			fatalf("bench: %v", err)
		}
		return
	}

	var ids []string
	switch *fig {
	case "all":
		ids = experiment.FigureIDs()
	case "ext":
		ids = experiment.ExtensionIDs()
	default:
		ids = strings.Split(*fig, ",")
	}
	for _, id := range ids {
		tab, err := experiment.Run(strings.TrimSpace(id), sc)
		if err != nil {
			fatalf("figure %s: %v", id, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fatalf("render: %v", err)
		}
		fmt.Println()
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatalf("mkdir: %v", err)
			}
			path := filepath.Join(*outDir, "fig"+tab.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatalf("create %s: %v", path, err)
			}
			if err := tab.CSV(f); err != nil {
				f.Close()
				fatalf("write %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil || v <= 0 {
			fatalf("bad sweep value %q", part)
		}
		out = append(out, v)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mhsbench: "+format+"\n", args...)
	os.Exit(1)
}
