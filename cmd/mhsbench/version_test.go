package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// TestVersionFlag smoke-tests `mhsbench -version` by driving main itself:
// os.Args is swapped for the flag and stdout captured through a pipe. main
// must print one "mhsbench <version>" line and return before any benchmark
// or figure work.
func TestVersionFlag(t *testing.T) {
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Args = []string{"mhsbench", "-version"}
	os.Stdout = w
	main()
	w.Close()
	os.Stdout = oldStdout
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	line := string(out)
	if !strings.HasPrefix(line, "mhsbench ") || strings.TrimSpace(strings.TrimPrefix(line, "mhsbench ")) == "" {
		t.Fatalf("-version printed %q, want \"mhsbench <version>\"", line)
	}
}
