// Benchmark mode (-json): instead of regenerating figures, time full
// scheduler runs per algorithm × network size and emit the measurements as
// machine-readable JSON. The schema is versioned and append-only so
// BENCH_*.json files recorded at different commits stay comparable: a
// trajectory of these files tracks the scheduler's performance over the
// life of the repository.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"octopus/internal/algo"
	"octopus/internal/core"
	"octopus/internal/experiment"
	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/traffic"
)

// benchSchema identifies the JSON layout. Bump only when a field changes
// meaning; adding fields keeps the version.
const benchSchema = "mhsbench-bench/v1"

// benchResult is one (algorithm, network size) measurement. Per-op values
// are for one full scheduling run (plan the whole window); ns_per_op is
// the minimum over reps, and allocs/bytes come from the same best rep.
type benchResult struct {
	Algo           string  `json:"algo"`
	Nodes          int     `json:"nodes"`
	Window         int     `json:"window"`
	Delta          int     `json:"delta"`
	Matcher        string  `json:"matcher"`
	Reps           int     `json:"reps"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    uint64  `json:"allocs_per_op"`
	BytesPerOp     uint64  `json:"bytes_per_op"`
	PsiPerOp       int64   `json:"psi_per_op"`
	DeliveredPerOp int     `json:"delivered_per_op"`
	BaselineNs     int64   `json:"baseline_ns_per_op,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`

	// Work counters from one extra, untimed, instrumented run of the same
	// instance (the timed reps stay uninstrumented so ns_per_op remains
	// comparable with pre-observability bench files). Zero-valued counters
	// are omitted — non-core algorithms report none.
	Iterations      int64 `json:"iterations,omitempty"`
	ExactCalls      int64 `json:"match_exact_calls,omitempty"`
	GreedyCalls     int64 `json:"match_greedy_calls,omitempty"`
	AugmentRounds   int64 `json:"match_augment_rounds,omitempty"`
	ArenaReuses     int64 `json:"arena_reuses,omitempty"`
	ArenaGrows      int64 `json:"arena_grows,omitempty"`
	SummaryRebuilds int64 `json:"summary_rebuilds,omitempty"`
	SimConfigs      int64 `json:"sim_configs,omitempty"`
}

// benchFile is the top-level -json document.
type benchFile struct {
	Schema  string        `json:"schema"`
	Scale   string        `json:"scale"`
	Seed    int64         `json:"seed"`
	Results []benchResult `json:"results"`
}

func matcherName(m core.Matcher) string {
	switch m {
	case core.MatcherGreedy:
		return "greedy"
	case core.MatcherDense:
		return "dense"
	case core.MatcherSparse:
		return "sparse"
	case core.MatcherWarm:
		return "warm"
	}
	return "exact"
}

// runBench times full runs of the requested algorithms at each node count
// and writes the JSON document to path ('-' for stdout). When baselinePath
// names a previous -json output, matching entries gain baseline_ns_per_op
// and speedup fields and a human-readable comparison goes to stderr.
func runBench(sc experiment.Scale, algoList string, nodeList []int, reps int, path, baselinePath string) error {
	if reps < 1 {
		reps = 1
	}
	if len(nodeList) == 0 {
		nodeList = []int{sc.Nodes}
	}
	var names []string
	for _, s := range strings.Split(algoList, ",") {
		names = append(names, strings.TrimSpace(s))
	}
	doc := benchFile{Schema: benchSchema, Scale: sc.Name, Seed: sc.Seed}
	for _, name := range names {
		a, ok := algo.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown algorithm %q (see -fig table for the roster)", name)
		}
		for _, n := range nodeList {
			r, err := benchOne(a, n, sc, reps)
			if err != nil {
				return fmt.Errorf("%s n=%d: %v", name, n, err)
			}
			doc.Results = append(doc.Results, r)
			fmt.Fprintf(os.Stderr, "bench %-16s n=%-4d %10.3fms/op  %8d allocs/op  psi=%d\n",
				name, n, float64(r.NsPerOp)/1e6, r.AllocsPerOp, r.PsiPerOp)
		}
	}
	if baselinePath != "" {
		if err := annotateBaseline(&doc, baselinePath); err != nil {
			return err
		}
	}
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// benchOne runs one algorithm at one size reps times on the same instance
// and keeps the fastest rep. The load is regenerated per size from the
// scale seed, so two mhsbench builds measure identical work.
func benchOne(a algo.Algorithm, n int, sc experiment.Scale, reps int) (benchResult, error) {
	g := graph.Complete(n)
	rng := rand.New(rand.NewSource(sc.Seed))
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(n, sc.Window), rng)
	if err != nil {
		return benchResult{}, err
	}
	p := algo.Params{Window: sc.Window, Delta: sc.Delta, Matcher: sc.Matcher, Seed: sc.Seed}
	res := benchResult{
		Algo: a.Name(), Nodes: n, Window: sc.Window, Delta: sc.Delta,
		Matcher: matcherName(sc.Matcher), Reps: reps,
	}
	var m0, m1 runtime.MemStats
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		out, err := a.Run(g, load, p)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return benchResult{}, err
		}
		if rep == 0 || elapsed.Nanoseconds() < res.NsPerOp {
			res.NsPerOp = elapsed.Nanoseconds()
			res.AllocsPerOp = m1.Mallocs - m0.Mallocs
			res.BytesPerOp = m1.TotalAlloc - m0.TotalAlloc
		}
		res.PsiPerOp = out.Psi
		res.DeliveredPerOp = out.Delivered
	}
	// One extra untimed rep with instrumentation to report work counters.
	reg := obs.NewRegistry()
	p.Obs = &obs.Observer{Metrics: reg}
	if _, err := a.Run(g, load, p); err != nil {
		return benchResult{}, err
	}
	res.Iterations = reg.Value("octopus_core_iterations_total")
	res.ExactCalls = reg.Value("octopus_match_exact_calls_total")
	res.GreedyCalls = reg.Value("octopus_match_greedy_calls_total")
	res.AugmentRounds = reg.Value("octopus_match_augment_rounds_total")
	res.ArenaReuses = reg.Value("octopus_match_arena_reuses_total")
	res.ArenaGrows = reg.Value("octopus_match_arena_grows_total")
	res.SummaryRebuilds = reg.Value("octopus_core_summary_rebuilds_total")
	res.SimConfigs = reg.Value("octopus_sim_configs_total")
	return res, nil
}

// annotateBaseline joins a previous bench document on
// (algo, nodes, window, delta, matcher) and records the speedup.
func annotateBaseline(doc *benchFile, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %v", path, err)
	}
	if !strings.HasPrefix(base.Schema, "mhsbench-bench/") {
		return fmt.Errorf("baseline %s: unrecognized schema %q", path, base.Schema)
	}
	for i := range doc.Results {
		r := &doc.Results[i]
		for _, b := range base.Results {
			if b.Algo == r.Algo && b.Nodes == r.Nodes && b.Window == r.Window &&
				b.Delta == r.Delta && b.Matcher == r.Matcher {
				r.BaselineNs = b.NsPerOp
				if r.NsPerOp > 0 {
					r.Speedup = float64(b.NsPerOp) / float64(r.NsPerOp)
				}
				fmt.Fprintf(os.Stderr, "bench %-16s n=%-4d %.2fx vs baseline (%.3fms -> %.3fms)\n",
					r.Algo, r.Nodes, r.Speedup, float64(b.NsPerOp)/1e6, float64(r.NsPerOp)/1e6)
				break
			}
		}
	}
	return nil
}
