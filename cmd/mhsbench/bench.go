// Benchmark mode (-json): instead of regenerating figures, time full
// scheduler runs per algorithm × network size and emit the measurements as
// machine-readable JSON. The schema is versioned and append-only so
// BENCH_*.json files recorded at different commits stay comparable: a
// trajectory of these files tracks the scheduler's performance over the
// life of the repository.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/metrics"
	"strings"
	"time"
	"unsafe"

	"octopus/internal/algo"
	"octopus/internal/buildinfo"
	"octopus/internal/core"
	"octopus/internal/experiment"
	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/obs/flight"
	"octopus/internal/traffic"
)

// benchSchema identifies the JSON layout. Bump only when a field changes
// meaning; adding fields keeps the version.
const benchSchema = "mhsbench-bench/v1"

// benchResult is one (algorithm, network size) measurement. Per-op values
// are for one full scheduling run (plan the whole window); ns_per_op is
// the minimum over reps, and allocs/bytes come from the same best rep.
type benchResult struct {
	Algo           string  `json:"algo"`
	Nodes          int     `json:"nodes"`
	Window         int     `json:"window"`
	Delta          int     `json:"delta"`
	Matcher        string  `json:"matcher"`
	Reps           int     `json:"reps"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    uint64  `json:"allocs_per_op"`
	BytesPerOp     uint64  `json:"bytes_per_op"`
	HeapPeakBytes  uint64  `json:"heap_peak_bytes,omitempty"`
	PsiPerOp       int64   `json:"psi_per_op"`
	DeliveredPerOp int     `json:"delivered_per_op"`
	BaselineNs     int64   `json:"baseline_ns_per_op,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`

	// Pod-mode annotations (-bench-pods): the fabric's pod count, the
	// spec's planner parallelism, and the instance's flow count.
	Pods  int `json:"pods,omitempty"`
	Par   int `json:"par,omitempty"`
	Flows int `json:"flows,omitempty"`

	// LatencyP50/P99 are flow-completion latency percentiles (in slots for
	// offline replays) from the flight recorder attached to the untimed
	// instrumented rep — the timed reps stay recorder-free, so ns_per_op is
	// untouched. Instances past the counter cutoff get a flight-only rep at
	// a thinned sample instead.
	LatencyP50 int64 `json:"latency_p50,omitempty"`
	LatencyP99 int64 `json:"latency_p99,omitempty"`

	// Work counters from one extra, untimed, instrumented run of the same
	// instance (the timed reps stay uninstrumented so ns_per_op remains
	// comparable with pre-observability bench files). Zero-valued counters
	// are omitted — non-core algorithms report none.
	Iterations      int64 `json:"iterations,omitempty"`
	ExactCalls      int64 `json:"match_exact_calls,omitempty"`
	GreedyCalls     int64 `json:"match_greedy_calls,omitempty"`
	AugmentRounds   int64 `json:"match_augment_rounds,omitempty"`
	ArenaReuses     int64 `json:"arena_reuses,omitempty"`
	ArenaGrows      int64 `json:"arena_grows,omitempty"`
	SummaryRebuilds int64 `json:"summary_rebuilds,omitempty"`
	SimConfigs      int64 `json:"sim_configs,omitempty"`
}

// benchFile is the top-level -json document.
type benchFile struct {
	Schema  string        `json:"schema"`
	Scale   string        `json:"scale"`
	Seed    int64         `json:"seed"`
	Version string        `json:"version,omitempty"`
	Host    *benchHost    `json:"host,omitempty"`
	PodLoad *podLoadStats `json:"pod_load,omitempty"`
	Results []benchResult `json:"results"`
}

// benchHost stamps the machine a bench file was recorded on, so trajectory
// comparisons across BENCH_*.json files can tell code changes from
// hardware changes.
type benchHost struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
}

func hostInfo() *benchHost {
	h := &benchHost{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	return h
}

// podLoadStats compares the columnar flow store against the pointer-rich
// per-flow representation for the pod-mode instance: resident heap bytes
// holding the same flows each way, counted from the realized layouts (the
// store's column capacities vs per-flow structs, route headers, and node
// ints), so the comparison is deterministic across runs.
type podLoadStats struct {
	Flows        int    `json:"flows"`
	Packets      int64  `json:"packets"`
	StoreBytes   uint64 `json:"store_bytes"`
	PointerBytes uint64 `json:"pointer_bytes"`
}

func matcherName(m core.Matcher) string {
	switch m {
	case core.MatcherGreedy:
		return "greedy"
	case core.MatcherDense:
		return "dense"
	case core.MatcherSparse:
		return "sparse"
	case core.MatcherWarm:
		return "warm"
	}
	return "exact"
}

// benchPods configures the pod-structured bench mode: a graph.Pods fabric
// with the matching skewed pod workload scaled to roughly targetFlows
// flows, instead of the complete-fabric synthetic load.
type benchPods struct {
	pods        int
	targetFlows int
}

// runBench times full runs of the requested algorithm specs at each node
// count and writes the JSON document to path ('-' for stdout). When
// baselinePath names a previous -json output, matching entries gain
// baseline_ns_per_op and speedup fields and a human-readable comparison
// goes to stderr.
func runBench(sc experiment.Scale, algoList string, nodeList []int, reps int, path, baselinePath string, pods benchPods) error {
	if reps < 1 {
		reps = 1
	}
	if len(nodeList) == 0 {
		nodeList = []int{sc.Nodes}
	}
	specs := splitSpecs(algoList)
	doc := benchFile{
		Schema:  benchSchema,
		Scale:   sc.Name,
		Seed:    sc.Seed,
		Version: buildinfo.Version(),
		Host:    hostInfo(),
	}
	base := algo.Params{Window: sc.Window, Delta: sc.Delta, Matcher: sc.Matcher, Seed: sc.Seed}
	for _, n := range nodeList {
		g, load, stats, err := benchInstance(n, sc, pods)
		if err != nil {
			return fmt.Errorf("n=%d: %v", n, err)
		}
		if stats != nil {
			doc.PodLoad = stats // keep the largest size's comparison
			fmt.Fprintf(os.Stderr, "load  n=%-7d %d flows, %d packets: store %.1f MiB, pointer structs %.1f MiB (%.2fx)\n",
				n, stats.Flows, stats.Packets,
				float64(stats.StoreBytes)/(1<<20), float64(stats.PointerBytes)/(1<<20),
				float64(stats.PointerBytes)/float64(stats.StoreBytes))
		}
		for _, spec := range specs {
			a, p, err := parseBenchSpec(spec, base)
			if err != nil {
				return err
			}
			r, err := benchOne(a, g, load, p, reps)
			if err != nil {
				return fmt.Errorf("%s n=%d: %v", spec, n, err)
			}
			r.Algo = spec
			r.Pods = pods.pods
			r.Par = p.Parallelism
			if pods.pods > 0 {
				r.Flows = len(load.Flows)
			}
			doc.Results = append(doc.Results, r)
			fmt.Fprintf(os.Stderr, "bench %-32s n=%-7d %10.3fms/op  %8d allocs/op  heap-peak %7.1f MiB  psi=%d\n",
				spec, n, float64(r.NsPerOp)/1e6, r.AllocsPerOp,
				float64(r.HeapPeakBytes)/(1<<20), r.PsiPerOp)
		}
	}
	if baselinePath != "" {
		if err := annotateBaseline(&doc, baselinePath); err != nil {
			return err
		}
	}
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// splitSpecs splits the -bench-algos list on commas while keeping the
// commas inside a spec's option list: a fragment with a key=value shape
// and no algorithm name of its own continues the previous spec
// ("octopus-sharded:pods=4,par=2,octopus" is two specs).
func splitSpecs(list string) []string {
	var specs []string
	for _, frag := range strings.Split(list, ",") {
		frag = strings.TrimSpace(frag)
		if frag == "" {
			continue
		}
		if len(specs) > 0 && strings.Contains(frag, "=") && !strings.Contains(frag, ":") &&
			strings.Contains(specs[len(specs)-1], ":") {
			specs[len(specs)-1] += "," + frag
			continue
		}
		specs = append(specs, frag)
	}
	return specs
}

// parseBenchSpec resolves one -bench-algos entry with the full registry
// spec grammar (name[:key=value,...]), so sharded runs can be requested as
// octopus-sharded:pods=32,par=8.
func parseBenchSpec(spec string, base algo.Params) (algo.Algorithm, algo.Params, error) {
	a, p, err := algo.ParseSpec(spec, base)
	if err != nil {
		return nil, base, fmt.Errorf("bench spec: %w", err)
	}
	return a, p, nil
}

// benchInstance builds the (fabric, load) pair for one node count. The
// load is regenerated per size from the scale seed, so two mhsbench builds
// measure identical work. Pod mode also measures the columnar-store vs
// pointer-struct representation cost of the same flows.
func benchInstance(n int, sc experiment.Scale, pods benchPods) (*graph.Digraph, *traffic.Load, *podLoadStats, error) {
	rng := rand.New(rand.NewSource(sc.Seed))
	if pods.pods <= 0 {
		g := graph.Complete(n)
		load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(n, sc.Window), rng)
		return g, load, nil, err
	}
	podSize, err := graph.PodDims(n, pods.pods)
	if err != nil {
		return nil, nil, nil, err
	}
	pp := traffic.DefaultPodParams(pods.pods, podSize, sc.Window)
	if pods.targetFlows > 0 {
		// Scale the per-pod flow counts to the requested total, keeping the
		// 1:3 large:small mix, and keep every flow non-empty so the
		// instance really has targetFlows flows.
		perPod := max(4, pods.targetFlows/pods.pods)
		pp.LargePerPod = perPod / 4
		pp.SmallPerPod = perPod - perPod/4
		pp.LargeTotal = max(pp.LargeTotal, pp.LargePerPod)
		pp.SmallTotal = max(pp.SmallTotal, pp.SmallPerPod)
	}
	store, err := traffic.PodSynthetic(pp, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	stats := &podLoadStats{
		Flows:      store.Len(),
		Packets:    store.TotalPackets(),
		StoreBytes: store.Bytes(),
	}
	// The pointer-struct baseline: the same flows held as one allocation
	// per flow plus one per route's node slice — the pre-columnar
	// representation. Counted from slice-header arithmetic rather than
	// measured with ReadMemStats deltas, which are swamped by unrelated
	// frees (sync.Pool arenas dying mid-measurement) on a busy runtime.
	var flowZero traffic.Flow
	var routeZero traffic.Route
	stats.PointerBytes = uint64(unsafe.Sizeof(flowZero))*uint64(store.Len()) +
		uint64(unsafe.Sizeof(routeZero))*uint64(store.NumRoutes()) +
		uint64(unsafe.Sizeof(int(0)))*uint64(store.NumRouteNodes())
	return pp.Fabric(), store.Materialize(nil), stats, nil
}

// heapSampler polls the runtime's live heap-object bytes while a run is in
// flight, recording the peak. runtime/metrics reads are cheap (no
// stop-the-world), so sampling does not distort ns_per_op.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

const heapMetric = "/memory/classes/heap/objects:bytes"

func startHeapSampler() *heapSampler {
	hs := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hs.done)
		sample := []metrics.Sample{{Name: heapMetric}}
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			metrics.Read(sample)
			if v := sample[0].Value.Uint64(); v > hs.peak {
				hs.peak = v
			}
			select {
			case <-hs.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return hs
}

// Stop ends sampling and returns the observed peak.
func (hs *heapSampler) Stop() uint64 {
	close(hs.stop)
	<-hs.done
	return hs.peak
}

// benchOne runs one algorithm on one instance reps times and keeps the
// fastest rep (with the heap peak observed during that rep).
func benchOne(a algo.Algorithm, g *graph.Digraph, load *traffic.Load, p algo.Params, reps int) (benchResult, error) {
	res := benchResult{
		Algo: a.Name(), Nodes: g.N(), Window: p.Window, Delta: p.Delta,
		Matcher: matcherName(p.Matcher), Reps: reps,
	}
	var m0, m1 runtime.MemStats
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		hs := startHeapSampler()
		start := time.Now()
		out, err := a.Run(g, load, p)
		elapsed := time.Since(start)
		peak := hs.Stop()
		runtime.ReadMemStats(&m1)
		if err != nil {
			return benchResult{}, err
		}
		if rep == 0 || elapsed.Nanoseconds() < res.NsPerOp {
			res.NsPerOp = elapsed.Nanoseconds()
			res.AllocsPerOp = m1.Mallocs - m0.Mallocs
			res.BytesPerOp = m1.TotalAlloc - m0.TotalAlloc
			res.HeapPeakBytes = peak
		}
		res.PsiPerOp = out.Psi
		res.DeliveredPerOp = out.Delivered
	}
	// One extra untimed rep with instrumentation to report work counters
	// and flow-completion latency percentiles. Past the cutoff the full
	// counter rep would double wall time for counters nobody reads at that
	// scale, so only the flight recorder runs, at a thinned deterministic
	// sample — percentiles survive, ns_per_op stays untouched either way.
	if len(load.Flows) > 200_000 {
		rec := flight.New(flight.Config{Sample: 1024})
		flight.AdmitLoad(rec, load, 0)
		p.Obs = nil
		p.Flight = rec
		if _, err := a.Run(g, load, p); err != nil {
			return benchResult{}, err
		}
		res.LatencyP50 = rec.CompletionQuantile(0.50)
		res.LatencyP99 = rec.CompletionQuantile(0.99)
		return res, nil
	}
	reg := obs.NewRegistry()
	rec := flight.New(flight.Config{})
	flight.AdmitLoad(rec, load, 0)
	p.Obs = &obs.Observer{Metrics: reg}
	p.Flight = rec
	if _, err := a.Run(g, load, p); err != nil {
		return benchResult{}, err
	}
	res.LatencyP50 = rec.CompletionQuantile(0.50)
	res.LatencyP99 = rec.CompletionQuantile(0.99)
	res.Iterations = reg.Value("octopus_core_iterations_total")
	res.ExactCalls = reg.Value("octopus_match_exact_calls_total")
	res.GreedyCalls = reg.Value("octopus_match_greedy_calls_total")
	res.AugmentRounds = reg.Value("octopus_match_augment_rounds_total")
	res.ArenaReuses = reg.Value("octopus_match_arena_reuses_total")
	res.ArenaGrows = reg.Value("octopus_match_arena_grows_total")
	res.SummaryRebuilds = reg.Value("octopus_core_summary_rebuilds_total")
	res.SimConfigs = reg.Value("octopus_sim_configs_total")
	return res, nil
}

// annotateBaseline joins a previous bench document on
// (algo, nodes, window, delta, matcher) and records the speedup.
func annotateBaseline(doc *benchFile, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %v", path, err)
	}
	if !strings.HasPrefix(base.Schema, "mhsbench-bench/") {
		return fmt.Errorf("baseline %s: unrecognized schema %q", path, base.Schema)
	}
	for i := range doc.Results {
		r := &doc.Results[i]
		for _, b := range base.Results {
			if b.Algo == r.Algo && b.Nodes == r.Nodes && b.Window == r.Window &&
				b.Delta == r.Delta && b.Matcher == r.Matcher {
				r.BaselineNs = b.NsPerOp
				if r.NsPerOp > 0 {
					r.Speedup = float64(b.NsPerOp) / float64(r.NsPerOp)
				}
				fmt.Fprintf(os.Stderr, "bench %-16s n=%-4d %.2fx vs baseline (%.3fms -> %.3fms)\n",
					r.Algo, r.Nodes, r.Speedup, float64(b.NsPerOp)/1e6, float64(r.NsPerOp)/1e6)
				break
			}
		}
	}
	return nil
}
