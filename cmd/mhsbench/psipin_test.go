package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestPsiPinnedAgainstBaseline diffs the committed bench files: every
// (algo, nodes, window, delta, matcher) point present in both
// BENCH_pr6.json and BENCH_pr5.json must report bit-identical psi_per_op
// and delivered_per_op. Timing fields are machine-dependent and free to
// move; the schedule quality trajectory is not — the exact-matcher rework
// (sparse dispatch, scan optimizations, parallel probes) is pinned to
// reproduce the previous solver's equal-weight tie-breaks exactly, and
// this test is the repo-level tripwire for any silent drift.
func TestPsiPinnedAgainstBaseline(t *testing.T) {
	prev := loadBenchFile(t, "BENCH_pr5.json")
	cur := loadBenchFile(t, "BENCH_pr6.json")
	shared := 0
	for key, p := range prev {
		c, ok := cur[key]
		if !ok {
			continue
		}
		shared++
		if c.Psi != p.Psi {
			t.Errorf("%s: psi_per_op drifted: %d -> %d", key, p.Psi, c.Psi)
		}
		if c.Delivered != p.Delivered {
			t.Errorf("%s: delivered_per_op drifted: %d -> %d", key, p.Delivered, c.Delivered)
		}
	}
	if shared == 0 {
		t.Fatal("no shared bench points between BENCH_pr5.json and BENCH_pr6.json; the pin is vacuous")
	}
	t.Logf("psi pinned on %d shared bench points", shared)
}

type benchPoint struct {
	Psi       int64
	Delivered int64
}

func loadBenchFile(t *testing.T, name string) map[string]benchPoint {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Results []struct {
			Algo      string `json:"algo"`
			Nodes     int    `json:"nodes"`
			Window    int    `json:"window"`
			Delta     int    `json:"delta"`
			Matcher   string `json:"matcher"`
			Psi       int64  `json:"psi_per_op"`
			Delivered int64  `json:"delivered_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	if doc.Schema != "mhsbench-bench/v1" {
		t.Fatalf("%s: unexpected schema %q", name, doc.Schema)
	}
	out := make(map[string]benchPoint, len(doc.Results))
	for _, r := range doc.Results {
		key := fmt.Sprintf("%s/n%d/w%d/d%d/%s", r.Algo, r.Nodes, r.Window, r.Delta, r.Matcher)
		out[key] = benchPoint{Psi: r.Psi, Delivered: r.Delivered}
	}
	return out
}
