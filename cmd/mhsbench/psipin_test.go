package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestPsiPinnedAgainstBaseline diffs the two newest committed bench
// files: every (algo, nodes, window, delta, matcher) point present in
// both must report bit-identical psi_per_op and delivered_per_op.
// Timing fields are machine-dependent and free to move; the schedule
// quality trajectory is not — this test is the repo-level tripwire for
// any silent drift, and it keeps working as new BENCH_prN.json
// baselines land without per-PR edits here.
func TestPsiPinnedAgainstBaseline(t *testing.T) {
	prevName, curName := newestBenchFiles(t)
	t.Logf("pinning %s against %s", curName, prevName)
	prev := loadBenchFile(t, prevName)
	cur := loadBenchFile(t, curName)
	shared := 0
	for key, p := range prev {
		c, ok := cur[key]
		if !ok {
			continue
		}
		shared++
		if c.Psi != p.Psi {
			t.Errorf("%s: psi_per_op drifted: %d -> %d", key, p.Psi, c.Psi)
		}
		if c.Delivered != p.Delivered {
			t.Errorf("%s: delivered_per_op drifted: %d -> %d", key, p.Delivered, c.Delivered)
		}
	}
	if shared == 0 {
		t.Fatalf("no shared bench points between %s and %s; the pin is vacuous", prevName, curName)
	}
	t.Logf("psi pinned on %d shared bench points", shared)
}

// newestBenchFiles returns the two highest-numbered BENCH_pr*.json
// baselines at the repo root (previous, current).
func newestBenchFiles(t *testing.T) (prev, cur string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join("..", "..", "BENCH_pr*.json"))
	if err != nil {
		t.Fatal(err)
	}
	type baseline struct {
		name string
		pr   int
	}
	var found []baseline
	for _, path := range names {
		name := filepath.Base(path)
		digits := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_pr"), ".json")
		pr, err := strconv.Atoi(digits)
		if err != nil {
			continue
		}
		found = append(found, baseline{name: name, pr: pr})
	}
	if len(found) < 2 {
		t.Fatalf("need at least two BENCH_pr*.json baselines at the repo root, found %d", len(found))
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pr < found[j].pr })
	return found[len(found)-2].name, found[len(found)-1].name
}

type benchPoint struct {
	Psi       int64
	Delivered int64
}

func loadBenchFile(t *testing.T, name string) map[string]benchPoint {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Results []struct {
			Algo      string `json:"algo"`
			Nodes     int    `json:"nodes"`
			Window    int    `json:"window"`
			Delta     int    `json:"delta"`
			Matcher   string `json:"matcher"`
			Psi       int64  `json:"psi_per_op"`
			Delivered int64  `json:"delivered_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	if doc.Schema != "mhsbench-bench/v1" {
		t.Fatalf("%s: unexpected schema %q", name, doc.Schema)
	}
	out := make(map[string]benchPoint, len(doc.Results))
	for _, r := range doc.Results {
		key := fmt.Sprintf("%s/n%d/w%d/d%d/%s", r.Algo, r.Nodes, r.Window, r.Delta, r.Matcher)
		out[key] = benchPoint{Psi: r.Psi, Delivered: r.Delivered}
	}
	return out
}
