package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"octopus/internal/obs"
)

// updateTrace regenerates testdata/golden/trace.jsonl from the current
// build; use only on an intended trace-schema change.
var updateTrace = flag.Bool("update-trace", false, "rewrite the trace golden file")

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	line := out.String()
	if !strings.HasPrefix(line, "mhsim ") || strings.TrimSpace(strings.TrimPrefix(line, "mhsim ")) == "" {
		t.Fatalf("-version printed %q, want \"mhsim <version>\"", line)
	}
}

// TestMetricsAndTraceOut runs one small scenario with both file sinks and
// checks the artifacts: the metrics snapshot is Prometheus text carrying the
// core counters, and the decision trace decodes into the expected event
// kinds with strictly increasing sequence numbers.
func TestMetricsAndTraceOut(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.txt")
	trace := filepath.Join(dir, "trace.jsonl")
	var out, errOut bytes.Buffer
	args := []string{"-n", "8", "-window", "120", "-delta", "4", "-seed", "3",
		"-algo", "octopus", "-metrics-out", metrics, "-trace-out", trace}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wrote metrics snapshot to", "trace events to"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut.String())
		}
	}

	msnap, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE octopus_core_iterations_total counter",
		"octopus_core_iterations_total ",
		"octopus_sim_delivered_total ",
	} {
		if !strings.Contains(string(msnap), want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.DecodeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty decision trace")
	}
	kinds := map[string]int{}
	for i, r := range recs {
		if r.Seq != int64(i) {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, i)
		}
		kinds[r.Ev]++
	}
	for _, want := range []string{"core.iter", "core.done", "sched", "sched.config", "sim.config", "sim.done"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}
	if kinds["sched.config"] != kinds["sim.config"] {
		t.Errorf("planned %d configs but simulated %d", kinds["sched.config"], kinds["sim.config"])
	}
}

// TestServeEndpoints exercises -serve end to end: run replaces the blocking
// serveHold seam with a probe that fetches the introspection endpoints from
// the live server, then returns so the command exits.
func TestServeEndpoints(t *testing.T) {
	old := serveHold
	defer func() { serveHold = old }()
	bodies := map[string]string{}
	var probeErr error
	serveHold = func(_ context.Context, addr string) {
		for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/cmdline"} {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				probeErr = err
				return
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				probeErr = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				probeErr = fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
				return
			}
			bodies[path] = string(b)
		}
	}
	args := []string{"-n", "8", "-window", "120", "-delta", "4", "-seed", "3",
		"-algo", "octopus", "-serve", "127.0.0.1:0"}
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if probeErr != nil {
		t.Fatal(probeErr)
	}
	if !strings.Contains(bodies["/metrics"], "octopus_core_iterations_total ") {
		t.Errorf("/metrics missing core counters:\n%s", bodies["/metrics"])
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(bodies["/debug/vars"]), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["octopus"]; !ok {
		t.Error("/debug/vars missing the octopus section")
	}
	if len(bodies["/debug/pprof/cmdline"]) == 0 {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}

// TestGoldenTrace pins the JSONL decision-trace schema byte for byte on a
// small deterministic run. The trace deliberately carries no wall-clock
// values, so the file is stable across machines; regenerate it (go test
// -run TestGoldenTrace -update-trace) only on an intended schema change,
// which also requires bumping obs.TraceVersion.
func TestGoldenTrace(t *testing.T) {
	golden := filepath.Join("testdata", "golden", "trace.jsonl")
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{"-n", "8", "-window", "120", "-delta", "4", "-seed", "3",
		"-algo", "octopus", "-trace-out", trace}
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if *updateTrace {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("decision trace drifted from golden file:\n--- want\n%s--- got\n%s", clip(want), clip(got))
	}
	// Every line must be a v1 envelope — the versioned-schema contract
	// downstream consumers parse by.
	for i, line := range bytes.Split(bytes.TrimRight(got, "\n"), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte(`{"v":1,"seq":`)) {
			t.Fatalf("line %d does not open with the v1 envelope: %s", i+1, line)
		}
	}
}

// clip truncates long golden diffs to keep failures readable.
func clip(b []byte) string {
	const n = 2000
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "...\n"
}
