// Command mhsim runs one multi-hop scheduling scenario end to end:
// generate (or read) a traffic load, plan a schedule with the selected
// algorithm, replay it in the packet-level simulator, and print the
// outcome. Algorithms are dispatched through the internal/algo registry,
// so every registered algorithm — core Octopus variants, baselines,
// maxweight, hybrid, UB — is available with a uniform spec grammar.
//
// Usage:
//
//	mhsim -n 100 -window 10000 -delta 20 -algo octopus
//	mhsim -algo octopus-plus -routes 10
//	mhsim -algo octopus-e:eps64=8
//	mhsim -trace fb-hadoop -algo eclipse-based
//	mhsim -load load.json -algo octopus-g -v
//	mhsim -algo octopus -faults trace.json
//	mhsim -list-algos
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"octopus/internal/algo"
	"octopus/internal/buildinfo"
	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/httpd"
	"octopus/internal/obs"
	"octopus/internal/obs/flight"
	"octopus/internal/online"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// serveShutdownGrace bounds the graceful drain of in-flight requests when
// -serve is interrupted.
const serveShutdownGrace = 5 * time.Second

// serveHold blocks while -serve is active, returning once ctx is
// cancelled (SIGINT/SIGTERM). Tests replace it to probe the endpoints and
// return immediately instead of waiting for a signal.
var serveHold = func(ctx context.Context, addr string) { <-ctx.Done() }

// obsSinks bundles the observability wiring of one mhsim invocation: the
// metrics registry (for -metrics-out and -serve), the decision tracer (for
// -trace-out and -gantt), and the buffer -gantt renders from.
type obsSinks struct {
	observer  *obs.Observer
	reg       *obs.Registry
	tracer    *obs.Tracer
	traceFile *os.File
	ganttBuf  *bytes.Buffer
}

// setup creates the sinks the flags ask for. The gantt chart is rendered
// from the decision trace, so -gantt attaches an in-memory trace buffer
// even without -trace-out.
func (s *obsSinks) setup(metricsOut, traceOut, serveAddr string, gantt bool) error {
	if metricsOut != "" || serveAddr != "" {
		s.reg = obs.NewRegistry()
	}
	var tws []io.Writer
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return fmt.Errorf("decision trace: %w", err)
		}
		s.traceFile = f
		tws = append(tws, f)
	}
	if gantt {
		s.ganttBuf = &bytes.Buffer{}
		tws = append(tws, s.ganttBuf)
	}
	switch len(tws) {
	case 0:
	case 1:
		s.tracer = obs.NewTracer(tws[0])
	default:
		s.tracer = obs.NewTracer(io.MultiWriter(tws...))
	}
	if s.reg != nil || s.tracer != nil {
		s.observer = &obs.Observer{Metrics: s.reg, Trace: s.tracer}
	}
	return nil
}

// finish flushes the sinks after the scenario ran: close the trace file,
// write the metrics snapshot, then serve the introspection endpoints until
// serveHold returns.
func (s *obsSinks) finish(stderr io.Writer, metricsOut, serveAddr string) error {
	if err := s.tracer.Err(); err != nil {
		return fmt.Errorf("decision trace: %w", err)
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil {
			return fmt.Errorf("decision trace: %w", err)
		}
		fmt.Fprintf(stderr, "wrote %d trace events to %s\n", s.tracer.Events(), s.traceFile.Name())
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return fmt.Errorf("metrics snapshot: %w", err)
		}
		if err := s.reg.WritePrometheus(f); err != nil {
			f.Close()
			return fmt.Errorf("metrics snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("metrics snapshot: %w", err)
		}
		fmt.Fprintf(stderr, "wrote metrics snapshot to %s\n", metricsOut)
	}
	if serveAddr != "" {
		ln, err := net.Listen("tcp", serveAddr)
		if err != nil {
			return fmt.Errorf("-serve: %w", err)
		}
		fmt.Fprintf(stderr, "serving on http://%s/ (/metrics, /debug/vars, /debug/pprof); interrupt to stop\n", ln.Addr())
		ctx, stop := httpd.SignalContext(context.Background())
		defer stop()
		srv := &http.Server{Handler: obs.Handler(s.reg)}
		errCh := make(chan error, 1)
		go func() { errCh <- httpd.Serve(ctx, srv, ln, serveShutdownGrace) }()
		serveHold(ctx, ln.Addr().String())
		stop() // unblocks httpd.Serve when the hold returned without a signal
		if err := <-errCh; err != nil {
			return fmt.Errorf("-serve: %w", err)
		}
	}
	return nil
}

// emitScheduleTrace records the planned (or replayed) schedule in the
// decision trace: one "sched" header followed by one "sched.config" per
// configuration carrying its α and link set. The -gantt chart is rebuilt
// from exactly these events.
func emitScheduleTrace(t *obs.Tracer, sch *schedule.Schedule) {
	if t == nil {
		return
	}
	t.Emit("sched",
		obs.I("delta", int64(sch.Delta)),
		obs.I("configs", int64(len(sch.Configs))))
	for i, cfg := range sch.Configs {
		pairs := make([][2]int, len(cfg.Links))
		for j, e := range cfg.Links {
			pairs[j] = [2]int{e.From, e.To}
		}
		t.Emit("sched.config",
			obs.I("idx", int64(i)),
			obs.I("alpha", int64(cfg.Alpha)),
			obs.Pairs("links", pairs))
	}
}

// ganttFromTrace decodes the schedule events out of the trace buffer and
// renders the Gantt chart from them — deliberately consuming the trace
// rather than the in-memory schedule, so the chart doubles as an end-to-end
// check that the trace captures the schedule faithfully.
func ganttFromTrace(w io.Writer, buf *bytes.Buffer, n int) error {
	recs, err := obs.DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("gantt: decoding decision trace: %w", err)
	}
	var sch schedule.Schedule
	for _, r := range recs {
		switch r.Ev {
		case "sched":
			d, ok := r.Int("delta")
			if !ok {
				return fmt.Errorf("gantt: sched event (seq %d) missing delta", r.Seq)
			}
			sch.Delta = int(d)
		case "sched.config":
			alpha, okA := r.Int("alpha")
			pairs, okL := r.IntPairs("links")
			if !okA || !okL {
				return fmt.Errorf("gantt: sched.config event (seq %d) missing alpha or links", r.Seq)
			}
			links := make([]graph.Edge, len(pairs))
			for i, p := range pairs {
				links[i] = graph.Edge{From: p[0], To: p[1]}
			}
			sch.Configs = append(sch.Configs, schedule.Configuration{Alpha: int(alpha), Links: links})
		}
	}
	return sch.WriteGantt(w, n)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "mhsim: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: it parses args with its
// own FlagSet and writes only to the given writers.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mhsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n          = fs.Int("n", 24, "number of network nodes")
		window     = fs.Int("window", 1000, "window W in time slots")
		delta      = fs.Int("delta", 20, "reconfiguration delay Δ in time slots")
		algoSpec   = fs.String("algo", "octopus", "algorithm spec name[:key=value,...]; names: "+strings.Join(algo.Names(), ", "))
		seed       = fs.Int64("seed", 1, "RNG seed")
		trace      = fs.String("trace", "", "trace-like load: fb-hadoop, fb-web, fb-db, ms (default: synthetic)")
		loadPath   = fs.String("load", "", "read the traffic load from a file (JSON document, JSONL or binary flow stream) instead of generating")
		routes     = fs.Int("routes", 1, "candidate routes per flow (for octopus-plus / octopus-random)")
		fixedHops  = fs.Int("fixed-hops", 0, "force every route to this many hops")
		ports      = fs.Int("ports", 1, "input/output ports per node")
		deg        = fs.Int("deg", 0, "partial fabric with this out-degree per node (0 = complete)")
		podsFabric = fs.Int("pods", 0, "pod-structured fabric with this many pods of n/pods nodes (pairs with octopus-sharded:pods=...)")
		multihop   = fs.Bool("multihop", false, "allow packets to chain hops within a configuration")
		hold       = fs.Int("hold", 0, "maxweight: slots to hold each matching (0 = 10·Δ)")
		verbose    = fs.Bool("v", false, "print the configuration sequence")
		gantt      = fs.Bool("gantt", false, "print the schedule as an ASCII Gantt chart")
		saveSched  = fs.String("save-schedule", "", "write the planned schedule to a JSON file")
		replay     = fs.String("replay", "", "skip planning: replay a schedule JSON file over the load")
		faultsPath = fs.String("faults", "", "inject a link/node failure trace from a JSON file (see internal/fault)")
		redundancy = fs.Bool("redundancy", false, "with -faults: run the proactive-vs-reactive showdown (none, reactive, proactive, both) instead of a single degraded run")
		redOut     = fs.String("redundancy-out", "", "with -redundancy: also write the showdown results as JSON to this file ('-' for stdout)")
		maxEpochs  = fs.Int("max-epochs", 0, "with -faults: cap the online run at this many epochs (0 = run until drained)")
		listAlgos  = fs.Bool("list-algos", false, "print the algorithm registry (name, kind, description; tab-separated) and exit")
		metricsOut = fs.String("metrics-out", "", "write a Prometheus-text metrics snapshot to this file at exit")
		traceOut   = fs.String("trace-out", "", "write the JSONL decision trace to this file")
		flightOut  = fs.String("flight-out", "", "write the per-flow lifecycle journal (flight recorder) as JSONL to this file")
		flightSmpl = fs.Int("flight-sample", 0, "flight recorder: track one flow in N (0 or 1 = every flow; the spec key sample=N overrides)")
		serveAddr  = fs.String("serve", "", "serve /metrics, /debug/vars, and /debug/pprof on this address after the run, until interrupted")
		version    = fs.Bool("version", false, "print the version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *version {
		buildinfo.Print(stdout, "mhsim")
		return nil
	}
	if *listAlgos {
		listRegistry(stdout)
		return nil
	}

	var sinks obsSinks
	if err := sinks.setup(*metricsOut, *traceOut, *serveAddr, *gantt); err != nil {
		return err
	}

	// Resolve the algorithm spec and reject unsupported flag combinations
	// before any generation or planning work.
	a, params, err := algo.ParseSpec(*algoSpec, algo.Params{
		Window:       *window,
		Delta:        *delta,
		Ports:        *ports,
		Seed:         *seed,
		Hold:         *hold,
		MultiHop:     *multihop,
		Obs:          sinks.observer,
		FlightSample: *flightSmpl,
	})
	if err != nil {
		return err
	}
	var flightRec *flight.Recorder
	if *flightOut != "" {
		// The recorder shares the metrics registry (when one exists) so the
		// SLO mirrors land on the same -metrics-out snapshot. For offline
		// runs the recorder's "epochs" are simulator slot numbers.
		flightRec = flight.New(flight.Config{Sample: params.FlightSample, Metrics: sinks.reg})
		params.Flight = flightRec
	}
	wantSchedule := *verbose || *gantt || *saveSched != ""
	if wantSchedule && a.Kind() != algo.Offline && *replay == "" {
		return fmt.Errorf("algorithm %q is %s and produces no schedule; -v, -gantt, and -save-schedule need an offline algorithm",
			a.Name(), a.Kind())
	}
	planner, isCore := a.(algo.CorePlanner)
	if *faultsPath != "" && *replay == "" && !isCore {
		return fmt.Errorf("algorithm %q does not support -faults (use one of: %s)",
			a.Name(), strings.Join(algo.CoreNames(), ", "))
	}
	if *redundancy && *faultsPath == "" {
		return fmt.Errorf("-redundancy needs -faults: the showdown replays a failure trace")
	}
	if *redOut != "" && !*redundancy {
		return fmt.Errorf("-redundancy-out needs -redundancy")
	}

	rng := rand.New(rand.NewSource(*seed))
	params.Rng = rng
	var g *graph.Digraph
	switch {
	case *podsFabric > 0:
		if *deg > 0 {
			return fmt.Errorf("-pods and -deg are mutually exclusive")
		}
		podSize, err := graph.PodDims(*n, *podsFabric)
		if err != nil {
			return err
		}
		g = graph.Pods(*podsFabric, podSize, min(4, podSize))
	case *deg > 0:
		g = graph.RandomPartial(*n, *deg, rng)
	default:
		g = graph.Complete(*n)
	}

	faults, err := loadFaults(*faultsPath, g)
	if err != nil {
		return err
	}

	var load *traffic.Load
	if *podsFabric > 0 && *loadPath == "" && *trace == "" {
		// Pod fabric with no explicit load: generate the matching
		// pod-structured workload (skewed intra-pod mix, inter-pod flows
		// over the gateway links).
		store, perr := traffic.PodSynthetic(traffic.DefaultPodParams(*podsFabric, g.N() / *podsFabric, *window), rng)
		if perr != nil {
			return perr
		}
		load = store.Materialize(nil)
	} else if load, err = makeLoad(g, *loadPath, *trace, *n, *window, *routes, *fixedHops, rng); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "fabric: %d nodes, %d links; load: %d flows, %d packets, max %d hops\n",
		g.N(), g.M(), len(load.Flows), load.TotalPackets(), load.MaxHops())
	if faults != nil {
		fmt.Fprintf(stdout, "faults: %d events, delta jitter on %d reconfigurations\n",
			len(faults.Events), len(faults.DeltaJitter))
	}

	// The scenario runs behind a closure so every exit path still flushes
	// the observability sinks (trace file, metrics snapshot, -serve).
	scenario := func() error {
		if *replay != "" {
			sch, err := loadSchedule(*replay, g, *ports)
			if err != nil {
				return err
			}
			emitScheduleTrace(sinks.tracer, sch)
			flight.AdmitLoad(flightRec, load, 0)
			sim, err := simulate.Run(g, load, sch, simulate.Options{
				Window: *window, MultiHop: *multihop, Ports: *ports, Faults: faults,
				Obs: sinks.observer, Flight: flightRec,
			})
			if err != nil {
				return err
			}
			report(stdout, sim.Delivered, sim.TotalPackets, sim.DeliveredFraction(),
				sim.Hops, sim.Utilization(), sim.Configs, len(sch.Configs))
			if faults != nil {
				fmt.Fprintf(stdout, "faults: %d active link-slots lost, %d packets stranded in-network\n",
					sim.FailedLinkSlots, sim.Stranded)
			}
			return nil
		}

		if faults != nil {
			runLoad, opt, err := planner.CoreOptions(load, params)
			if err != nil {
				return err
			}
			if *redundancy {
				return runShowdown(stdout, g, runLoad, faults, opt, params, *maxEpochs, *redOut)
			}
			return runFaulty(stdout, g, runLoad, faults, opt, params, *maxEpochs)
		}

		flight.AdmitLoad(flightRec, load, 0)
		out, err := a.Run(g, load, params)
		if err != nil {
			return err
		}
		if wantSchedule && out.Schedule == nil {
			return fmt.Errorf("algorithm %q produced no schedule on this instance; nothing to print or save", a.Name())
		}
		if out.Schedule != nil {
			emitScheduleTrace(sinks.tracer, out.Schedule)
		}
		if *verbose {
			for i, cfg := range out.Schedule.Configs {
				fmt.Fprintf(stdout, "  config %3d: %s\n", i, cfg)
			}
		}
		if *gantt {
			if err := ganttFromTrace(stdout, sinks.ganttBuf, g.N()); err != nil {
				return err
			}
		}
		if *saveSched != "" {
			if err := out.Schedule.SaveFile(*saveSched); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote schedule to %s\n", *saveSched)
		}

		switch a.Kind() {
		case algo.Online:
			fmt.Fprintf(stdout, "%s: delivered %d/%d (%.2f%%), %d packet-hops, %d reconfigurations\n",
				out.Algo, out.Delivered, out.Total, 100*out.DeliveredFraction(), out.Hops, out.Reconfigs)
		case algo.Bound:
			fmt.Fprintf(stdout, "%s: delivered %d/%d (%.2f%%), utilization %.2f%%\n",
				strings.ToUpper(out.Algo), out.Delivered, out.Total, 100*out.DeliveredFraction(), 100*out.Utilization())
		default:
			if out.Plan != nil && out.Schedule != nil {
				fmt.Fprintf(stdout, "plan: %d configurations, cost %d/%d slots, %d iterations\n",
					len(out.Schedule.Configs), out.Schedule.Cost(), *window, out.Plan.Iterations)
			}
			if out.Measured {
				report(stdout, out.Delivered, out.Total, out.DeliveredFraction(),
					out.Hops, out.Utilization(), out.ConfigsReplayed, out.Reconfigs)
			} else {
				// Plans whose bookkeeping is authoritative (Octopus+, eclipse,
				// eclipse-pp, hybrid) are reported from it.
				fmt.Fprintf(stdout, "plan bookkeeping: delivered %d/%d (%.2f%%), %d packet-hops\n",
					out.Delivered, out.Total, 100*out.DeliveredFraction(), out.Hops)
			}
		}
		return nil
	}
	if err := scenario(); err != nil {
		return err
	}
	if flightRec != nil {
		f, err := os.Create(*flightOut)
		if err != nil {
			return fmt.Errorf("flight journal: %w", err)
		}
		if err := flightRec.WriteLog(f); err != nil {
			f.Close()
			return fmt.Errorf("flight journal: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("flight journal: %w", err)
		}
		snap := flightRec.Stats()
		fmt.Fprintf(stderr, "wrote %d flight events (%d retained, %d flows tracked) to %s\n",
			snap.Events, snap.Retained, snap.TrackedFlows, *flightOut)
	}
	return sinks.finish(stderr, *metricsOut, *serveAddr)
}

// listRegistry prints the machine-readable algorithm listing: one
// tab-separated line per algorithm (name, kind, description), in registry
// order. The README algorithm table is generated from this output.
func listRegistry(w io.Writer) {
	for _, a := range algo.Registry() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", a.Name(), a.Kind(), a.Describe())
	}
}

// loadFaults reads and validates a failure trace against the fabric; an
// empty path yields a nil trace (failure-free run).
func loadFaults(path string, g *graph.Digraph) (*fault.Trace, error) {
	if path == "" {
		return nil, nil
	}
	tr, err := fault.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault trace %s: %w", path, err)
	}
	if err := tr.Validate(g); err != nil {
		return nil, fmt.Errorf("fault trace %s does not fit the selected fabric: %w", path, err)
	}
	return tr, nil
}

// loadSchedule reads a replay schedule and validates it against the fabric
// before any simulation work, so hostile or mismatched JSON fails with a
// clear error rather than a panic deep in the replay.
func loadSchedule(path string, g *graph.Digraph, ports int) (*schedule.Schedule, error) {
	sch, err := schedule.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("replay schedule %s: %w", path, err)
	}
	if err := sch.Validate(g, 0, ports); err != nil {
		return nil, fmt.Errorf("replay schedule %s does not fit the selected fabric: %w", path, err)
	}
	return sch, nil
}

// arrivalsAt0 turns a load into an arrival stream with everything offered
// at slot 0 (the mhsim fault pipeline's admission model).
func arrivalsAt0(load *traffic.Load) []online.Arrival {
	arr := make([]online.Arrival, len(load.Flows))
	for i, f := range load.Flows {
		arr[i] = online.Arrival{Flow: f, At: 0}
	}
	return arr
}

// runFaulty drives the fault-tolerant online pipeline and prints the
// per-epoch degradation report. When the algorithm spec carries redundancy
// knobs (crit > 0, or the load itself has provisioned Redundant routes),
// the load is expanded into proactive copies first and the run layers
// redundancy under the reactive repair.
func runFaulty(stdout io.Writer, g *graph.Digraph, load *traffic.Load, faults *fault.Trace, opt core.Options, params algo.Params, maxEpochs int) error {
	expanded, red := algo.ProvisionRedundant(g, load, params)
	fopt := online.FaultOptions{Options: online.Options{Core: opt, MaxEpochs: maxEpochs, Flight: params.Flight}}
	var res *online.FaultResult
	var err error
	if red.Empty() {
		res, err = online.RunFaulty(g, arrivalsAt0(load), faults, fopt)
	} else {
		k, crit, stretch := algo.RedundancyKnobs(params)
		fmt.Fprintf(stdout, "redundancy: k=%d crit=%.2f stretch=%.1f; %d flows expanded to %d copy flows (%d -> %d packets)\n",
			k, crit, stretch, len(load.Flows), len(expanded.Flows),
			load.TotalPackets(), expanded.TotalPackets())
		res, err = online.RunRedundantFaulty(g, arrivalsAt0(expanded), faults, online.RedundantFaultOptions{
			FaultOptions: fopt, Redundancy: red,
		})
	}
	if err != nil {
		return err
	}
	for _, ep := range res.Epochs {
		fmt.Fprintf(stdout, "epoch %3d: %d links, %d nodes down | offered %d delivered %d backlog %d | rerouted %d stranded %d dropped %d | reference %d",
			ep.Epoch, ep.FailedLinks, ep.FailedNodes,
			ep.Offered, ep.Delivered, ep.Backlog,
			ep.Rerouted, ep.Stranded, ep.Dropped, ep.RefDelivered)
		if !red.Empty() {
			fmt.Fprintf(stdout, " | survived %d unique %d", ep.SurvivedRedundant, ep.UniqueDelivered)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "degraded: delivered %d/%d (%.2f%%), dropped %d unreachable\n",
		res.Delivered, res.Total, 100*res.DeliveredFraction(), res.Dropped)
	if !red.Empty() {
		fmt.Fprintf(stdout, "redundant: unique delivered %d/%d (%.2f%%), %d packets survived via copies\n",
			res.UniqueDelivered, res.UniqueTotal, 100*res.UniqueDeliveredFraction(), res.SurvivedRedundant)
	}
	if res.Reference != nil {
		fmt.Fprintf(stdout, "reference: delivered %d/%d failure-free; degradation %.2f%%\n",
			res.Reference.Delivered, res.Reference.Total, 100*res.Degradation())
	}
	return nil
}

// showdownArm is one protection arm of the -redundancy showdown, as
// printed and as serialized by -redundancy-out.
type showdownArm struct {
	Arm               string  `json:"arm"`
	Delivered         int     `json:"delivered"`
	Total             int     `json:"total"`
	UniqueDelivered   int     `json:"unique_delivered"`
	UniqueTotal       int     `json:"unique_total"`
	UniqueFraction    float64 `json:"unique_fraction"`
	Dropped           int     `json:"dropped"`
	SurvivedRedundant int     `json:"survived_redundant"`
	Psi               int64   `json:"psi"`
	Epochs            int     `json:"epochs"`
}

// showdownReport is the -redundancy-out JSON document.
type showdownReport struct {
	Redundancy  int           `json:"redundancy"`
	CritFrac    float64       `json:"crit_frac"`
	Stretch     float64       `json:"stretch"`
	Arms        []showdownArm `json:"arms"`
	PsiOverhead float64       `json:"psi_overhead"` // psi(both) / psi(reactive)
}

// runShowdown replays the same load and failure trace under the four
// protection arms — no protection, reactive repair only, proactive
// k-disjoint copies only, and both — and reports the deduplicated delivery
// of each plus the ψ overhead proactive protection costs. With no explicit
// crit knob in the algorithm spec, half the flows are protected.
func runShowdown(stdout io.Writer, g *graph.Digraph, load *traffic.Load, faults *fault.Trace, opt core.Options, params algo.Params, maxEpochs int, outPath string) error {
	if params.CritFrac <= 0 {
		params.CritFrac = 0.5
	}
	k, crit, stretch := algo.RedundancyKnobs(params)
	expanded, red := algo.ProvisionRedundant(g, load, params)
	fopt := online.FaultOptions{
		Options:       online.Options{Core: opt, MaxEpochs: maxEpochs},
		SkipReference: true,
	}
	arm := func(name string, l *traffic.Load, r *traffic.Redundancy, reactive bool) (showdownArm, error) {
		res, err := online.RunRedundantFaulty(g, arrivalsAt0(l), faults, online.RedundantFaultOptions{
			FaultOptions: fopt, Redundancy: r, NoReactive: !reactive,
		})
		if err != nil {
			return showdownArm{}, fmt.Errorf("%s arm: %w", name, err)
		}
		return showdownArm{
			Arm:               name,
			Delivered:         res.Delivered,
			Total:             res.Total,
			UniqueDelivered:   res.UniqueDelivered,
			UniqueTotal:       res.UniqueTotal,
			UniqueFraction:    res.UniqueDeliveredFraction(),
			Dropped:           res.Dropped,
			SurvivedRedundant: res.SurvivedRedundant,
			Psi:               res.Psi,
			Epochs:            len(res.Epochs),
		}, nil
	}
	rep := showdownReport{Redundancy: k, CritFrac: crit, Stretch: stretch}
	for _, spec := range []struct {
		name     string
		load     *traffic.Load
		red      *traffic.Redundancy
		reactive bool
	}{
		{"none", load, nil, false},
		{"reactive", load, nil, true},
		{"proactive", expanded, red, false},
		{"both", expanded, red, true},
	} {
		a, err := arm(spec.name, spec.load, spec.red, spec.reactive)
		if err != nil {
			return err
		}
		rep.Arms = append(rep.Arms, a)
	}
	rep.PsiOverhead = 1
	if reactive, both := rep.Arms[1], rep.Arms[3]; reactive.Psi > 0 {
		rep.PsiOverhead = float64(both.Psi) / float64(reactive.Psi)
	}
	fmt.Fprintf(stdout, "showdown: k=%d crit=%.2f stretch=%.1f; %d flows, %d with copies (%d -> %d packets)\n",
		k, crit, stretch, len(load.Flows), len(red.Members()),
		load.TotalPackets(), expanded.TotalPackets())
	fmt.Fprintf(stdout, "%-10s %10s %14s %8s %9s %12s\n",
		"arm", "delivered", "unique", "dropped", "survived", "psi")
	for _, a := range rep.Arms {
		fmt.Fprintf(stdout, "%-10s %4d/%5d %6d/%5d %s %8d %9d %12d\n",
			a.Arm, a.Delivered, a.Total, a.UniqueDelivered, a.UniqueTotal,
			fmt.Sprintf("(%6.2f%%)", 100*a.UniqueFraction), a.Dropped, a.SurvivedRedundant, a.Psi)
	}
	fmt.Fprintf(stdout, "psi overhead of proactive copies (both / reactive): %.2fx\n", rep.PsiOverhead)
	if outPath != "" {
		buf, err := json.MarshalIndent(&rep, "", " ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if outPath == "-" {
			_, err = stdout.Write(buf)
			return err
		}
		if err := os.WriteFile(outPath, buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func makeLoad(g *graph.Digraph, path, trace string, n, window, routes, fixedHops int, rng *rand.Rand) (*traffic.Load, error) {
	if path != "" {
		load, err := traffic.LoadAnyFile(path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		if err := load.Validate(g); err != nil {
			return nil, fmt.Errorf("load %s does not fit the selected fabric: %w", path, err)
		}
		return load, nil
	}
	kinds := map[string]traffic.TraceKind{
		"fb-hadoop": traffic.FBHadoop,
		"fb-web":    traffic.FBWeb,
		"fb-db":     traffic.FBDatabase,
		"ms":        traffic.MSHeatmap,
	}
	if trace != "" {
		kind, ok := kinds[trace]
		if !ok {
			return nil, fmt.Errorf("unknown trace %q", trace)
		}
		return traffic.TraceLike(g, kind, window, traffic.SyntheticParams{}, rng)
	}
	p := traffic.DefaultSyntheticParams(n, window)
	p.RouteChoices = routes
	p.FixedHops = fixedHops
	return traffic.Synthetic(g, p, rng)
}

func report(w io.Writer, delivered, total int, frac float64, hops int, util float64, replayed, configs int) {
	fmt.Fprintf(w, "measured: delivered %d/%d (%.2f%%), %d packet-hops, utilization %.2f%%, %d/%d configs replayed\n",
		delivered, total, 100*frac, hops, 100*util, replayed, configs)
}
