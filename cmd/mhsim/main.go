// Command mhsim runs one multi-hop scheduling scenario end to end:
// generate (or read) a traffic load, plan a schedule with the selected
// algorithm, replay it in the packet-level simulator, and print the
// outcome.
//
// Usage:
//
//	mhsim -n 100 -window 10000 -delta 20 -algo octopus
//	mhsim -algo octopus-plus -routes 10
//	mhsim -trace fb-hadoop -algo eclipse-based
//	mhsim -load load.json -algo octopus-g -v
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"octopus/internal/baseline"
	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/online"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

func main() {
	var (
		n         = flag.Int("n", 24, "number of network nodes")
		window    = flag.Int("window", 1000, "window W in time slots")
		delta     = flag.Int("delta", 20, "reconfiguration delay Δ in time slots")
		algo      = flag.String("algo", "octopus", "algorithm: octopus, octopus-g, octopus-b, octopus-e, octopus-plus, octopus-random, eclipse-based, rotornet, ub, maxweight")
		seed      = flag.Int64("seed", 1, "RNG seed")
		trace     = flag.String("trace", "", "trace-like load: fb-hadoop, fb-web, fb-db, ms (default: synthetic)")
		loadPath  = flag.String("load", "", "read the traffic load from a JSON file instead of generating")
		routes    = flag.Int("routes", 1, "candidate routes per flow (for octopus-plus / octopus-random)")
		fixedHops = flag.Int("fixed-hops", 0, "force every route to this many hops")
		ports     = flag.Int("ports", 1, "input/output ports per node")
		deg       = flag.Int("deg", 0, "partial fabric with this out-degree per node (0 = complete)")
		multihop  = flag.Bool("multihop", false, "allow packets to chain hops within a configuration")
		verbose   = flag.Bool("v", false, "print the configuration sequence")
		gantt     = flag.Bool("gantt", false, "print the schedule as an ASCII Gantt chart")
		saveSched = flag.String("save-schedule", "", "write the planned schedule to a JSON file")
		replay    = flag.String("replay", "", "skip planning: replay a schedule JSON file over the load")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Digraph
	if *deg > 0 {
		g = graph.RandomPartial(*n, *deg, rng)
	} else {
		g = graph.Complete(*n)
	}

	load, err := makeLoad(g, *loadPath, *trace, *n, *window, *routes, *fixedHops, rng)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("fabric: %d nodes, %d links; load: %d flows, %d packets, max %d hops\n",
		g.N(), g.M(), len(load.Flows), load.TotalPackets(), load.MaxHops())

	if *replay != "" {
		sch, err := schedule.LoadFile(*replay)
		if err != nil {
			fatalf("%v", err)
		}
		sim, err := simulate.Run(g, load, sch, simulate.Options{
			Window: *window, MultiHop: *multihop, Ports: *ports,
		})
		if err != nil {
			fatalf("%v", err)
		}
		report(sim, len(sch.Configs))
		return
	}

	switch *algo {
	case "maxweight":
		var arr []online.Arrival
		for _, f := range load.Flows {
			arr = append(arr, online.Arrival{Flow: f, At: 0})
		}
		hold := 10 * *delta
		if hold == 0 {
			hold = 10
		}
		res, err := online.MaxWeightAdaptive(g, arr, online.AdaptiveOptions{
			Horizon: *window, Delta: *delta, Hold: hold,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("maxweight: delivered %d/%d (%.2f%%), %d packet-hops, %d reconfigurations\n",
			res.Delivered, res.Total, 100*res.DeliveredFraction(), res.Hops, res.Reconfigs)
		return
	case "eclipse-based":
		sim, sch, err := baseline.EclipseBased(g, load, *window, *delta, core.MatcherExact)
		if err != nil {
			fatalf("%v", err)
		}
		report(sim, len(sch.Configs))
		return
	case "rotornet":
		sim, sch, err := baseline.RotorNet(g, load, *window, *delta, 0)
		if err != nil {
			fatalf("%v", err)
		}
		report(sim, len(sch.Configs))
		return
	case "ub":
		ub, err := baseline.UpperBound(g, load, *window, *delta, core.MatcherExact)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("UB: delivered %d/%d (%.2f%%), utilization %.2f%%\n",
			ub.Delivered, ub.TotalPackets, 100*ub.DeliveredFraction(), 100*ub.Utilization())
		return
	}

	opt := core.Options{Window: *window, Delta: *delta, Ports: *ports, MultiHop: *multihop}
	switch *algo {
	case "octopus":
	case "octopus-g":
		opt.Matcher = core.MatcherGreedy
	case "octopus-b":
		opt.AlphaSearch = core.AlphaBinary
	case "octopus-e":
		opt.Epsilon64 = 4
	case "octopus-plus":
		opt.MultiRoute = true
	case "octopus-random":
		for i := range load.Flows {
			f := &load.Flows[i]
			f.Routes = []traffic.Route{f.Routes[rng.Intn(len(f.Routes))]}
		}
	default:
		fatalf("unknown algorithm %q", *algo)
	}

	s, err := core.New(g, load, opt)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := s.Run()
	if err != nil {
		fatalf("%v", err)
	}
	if *verbose {
		for i, cfg := range res.Schedule.Configs {
			fmt.Printf("  config %3d: %s\n", i, cfg)
		}
	}
	if *gantt {
		if err := res.Schedule.WriteGantt(os.Stdout, g.N()); err != nil {
			fatalf("%v", err)
		}
	}
	if *saveSched != "" {
		if err := res.Schedule.SaveFile(*saveSched); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote schedule to %s\n", *saveSched)
	}
	fmt.Printf("plan: %d configurations, cost %d/%d slots, %d iterations\n",
		len(res.Schedule.Configs), res.Schedule.Cost(), *window, res.Iterations)
	if opt.MultiRoute {
		// Octopus+ plans are measured by their verified bookkeeping.
		fmt.Printf("plan bookkeeping: delivered %d/%d (%.2f%%), %d packet-hops\n",
			res.Delivered, res.TotalPackets, 100*float64(res.Delivered)/float64(res.TotalPackets), res.Hops)
		return
	}
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{
		Window: *window, MultiHop: *multihop, Ports: *ports, Epsilon64: opt.Epsilon64,
	})
	if err != nil {
		fatalf("%v", err)
	}
	report(sim, len(res.Schedule.Configs))
}

func makeLoad(g *graph.Digraph, path, trace string, n, window, routes, fixedHops int, rng *rand.Rand) (*traffic.Load, error) {
	if path != "" {
		load, err := traffic.LoadFile(path)
		if err != nil {
			return nil, err
		}
		if err := load.Validate(g); err != nil {
			return nil, err
		}
		return load, nil
	}
	kinds := map[string]traffic.TraceKind{
		"fb-hadoop": traffic.FBHadoop,
		"fb-web":    traffic.FBWeb,
		"fb-db":     traffic.FBDatabase,
		"ms":        traffic.MSHeatmap,
	}
	if trace != "" {
		kind, ok := kinds[trace]
		if !ok {
			return nil, fmt.Errorf("unknown trace %q", trace)
		}
		return traffic.TraceLike(g, kind, window, traffic.SyntheticParams{}, rng)
	}
	p := traffic.DefaultSyntheticParams(n, window)
	p.RouteChoices = routes
	p.FixedHops = fixedHops
	return traffic.Synthetic(g, p, rng)
}

func report(sim *simulate.Result, configs int) {
	fmt.Printf("measured: delivered %d/%d (%.2f%%), %d packet-hops, utilization %.2f%%, %d/%d configs replayed\n",
		sim.Delivered, sim.TotalPackets, 100*sim.DeliveredFraction(),
		sim.Hops, 100*sim.Utilization(), sim.Configs, configs)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mhsim: "+format+"\n", args...)
	os.Exit(1)
}
