// Command mhsim runs one multi-hop scheduling scenario end to end:
// generate (or read) a traffic load, plan a schedule with the selected
// algorithm, replay it in the packet-level simulator, and print the
// outcome.
//
// Usage:
//
//	mhsim -n 100 -window 10000 -delta 20 -algo octopus
//	mhsim -algo octopus-plus -routes 10
//	mhsim -trace fb-hadoop -algo eclipse-based
//	mhsim -load load.json -algo octopus-g -v
//	mhsim -algo octopus -faults trace.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"octopus/internal/baseline"
	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/online"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// knownAlgos lists every -algo value, in the order shown by usage errors.
var knownAlgos = []string{
	"octopus", "octopus-g", "octopus-b", "octopus-e", "octopus-plus",
	"octopus-random", "eclipse-based", "rotornet", "ub", "maxweight",
}

// faultAlgos are the algorithms the fault-tolerant online pipeline can
// drive: the Octopus core family (they plan through core.Options).
var faultAlgos = map[string]bool{
	"octopus": true, "octopus-g": true, "octopus-b": true,
	"octopus-e": true, "octopus-plus": true, "octopus-random": true,
}

func main() {
	var (
		n          = flag.Int("n", 24, "number of network nodes")
		window     = flag.Int("window", 1000, "window W in time slots")
		delta      = flag.Int("delta", 20, "reconfiguration delay Δ in time slots")
		algo       = flag.String("algo", "octopus", "algorithm: "+strings.Join(knownAlgos, ", "))
		seed       = flag.Int64("seed", 1, "RNG seed")
		trace      = flag.String("trace", "", "trace-like load: fb-hadoop, fb-web, fb-db, ms (default: synthetic)")
		loadPath   = flag.String("load", "", "read the traffic load from a JSON file instead of generating")
		routes     = flag.Int("routes", 1, "candidate routes per flow (for octopus-plus / octopus-random)")
		fixedHops  = flag.Int("fixed-hops", 0, "force every route to this many hops")
		ports      = flag.Int("ports", 1, "input/output ports per node")
		deg        = flag.Int("deg", 0, "partial fabric with this out-degree per node (0 = complete)")
		multihop   = flag.Bool("multihop", false, "allow packets to chain hops within a configuration")
		verbose    = flag.Bool("v", false, "print the configuration sequence")
		gantt      = flag.Bool("gantt", false, "print the schedule as an ASCII Gantt chart")
		saveSched  = flag.String("save-schedule", "", "write the planned schedule to a JSON file")
		replay     = flag.String("replay", "", "skip planning: replay a schedule JSON file over the load")
		faultsPath = flag.String("faults", "", "inject a link/node failure trace from a JSON file (see internal/fault)")
	)
	flag.Parse()

	// Reject unknown algorithms and unsupported flag combinations before
	// any generation or planning work.
	if !isKnownAlgo(*algo) {
		fatalf("unknown algorithm %q (valid: %s)", *algo, strings.Join(knownAlgos, ", "))
	}
	if *faultsPath != "" && *replay == "" && !faultAlgos[*algo] {
		fatalf("algorithm %q does not support -faults (use one of: octopus, octopus-g, octopus-b, octopus-e, octopus-plus, octopus-random)", *algo)
	}

	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Digraph
	if *deg > 0 {
		g = graph.RandomPartial(*n, *deg, rng)
	} else {
		g = graph.Complete(*n)
	}

	faults, err := loadFaults(*faultsPath, g)
	if err != nil {
		fatalf("%v", err)
	}

	load, err := makeLoad(g, *loadPath, *trace, *n, *window, *routes, *fixedHops, rng)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("fabric: %d nodes, %d links; load: %d flows, %d packets, max %d hops\n",
		g.N(), g.M(), len(load.Flows), load.TotalPackets(), load.MaxHops())
	if faults != nil {
		fmt.Printf("faults: %d events, delta jitter on %d reconfigurations\n",
			len(faults.Events), len(faults.DeltaJitter))
	}

	if *replay != "" {
		sch, err := loadSchedule(*replay, g, *ports)
		if err != nil {
			fatalf("%v", err)
		}
		sim, err := simulate.Run(g, load, sch, simulate.Options{
			Window: *window, MultiHop: *multihop, Ports: *ports, Faults: faults,
		})
		if err != nil {
			fatalf("%v", err)
		}
		report(sim, len(sch.Configs))
		if faults != nil {
			fmt.Printf("faults: %d active link-slots lost, %d packets stranded in-network\n",
				sim.FailedLinkSlots, sim.Stranded)
		}
		return
	}

	if faults != nil {
		opt, err := coreOptions(*algo, load, rng, *window, *delta, *ports, *multihop)
		if err != nil {
			fatalf("%v", err)
		}
		runFaulty(g, load, faults, opt)
		return
	}

	switch *algo {
	case "maxweight":
		var arr []online.Arrival
		for _, f := range load.Flows {
			arr = append(arr, online.Arrival{Flow: f, At: 0})
		}
		hold := 10 * *delta
		if hold == 0 {
			hold = 10
		}
		res, err := online.MaxWeightAdaptive(g, arr, online.AdaptiveOptions{
			Horizon: *window, Delta: *delta, Hold: hold,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("maxweight: delivered %d/%d (%.2f%%), %d packet-hops, %d reconfigurations\n",
			res.Delivered, res.Total, 100*res.DeliveredFraction(), res.Hops, res.Reconfigs)
		return
	case "eclipse-based":
		sim, sch, err := baseline.EclipseBased(g, load, *window, *delta, core.MatcherExact)
		if err != nil {
			fatalf("%v", err)
		}
		report(sim, len(sch.Configs))
		return
	case "rotornet":
		sim, sch, err := baseline.RotorNet(g, load, *window, *delta, 0)
		if err != nil {
			fatalf("%v", err)
		}
		report(sim, len(sch.Configs))
		return
	case "ub":
		ub, err := baseline.UpperBound(g, load, *window, *delta, core.MatcherExact)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("UB: delivered %d/%d (%.2f%%), utilization %.2f%%\n",
			ub.Delivered, ub.TotalPackets, 100*ub.DeliveredFraction(), 100*ub.Utilization())
		return
	}

	opt, err := coreOptions(*algo, load, rng, *window, *delta, *ports, *multihop)
	if err != nil {
		fatalf("%v", err)
	}
	s, err := core.New(g, load, opt)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := s.Run()
	if err != nil {
		fatalf("%v", err)
	}
	if *verbose {
		for i, cfg := range res.Schedule.Configs {
			fmt.Printf("  config %3d: %s\n", i, cfg)
		}
	}
	if *gantt {
		if err := res.Schedule.WriteGantt(os.Stdout, g.N()); err != nil {
			fatalf("%v", err)
		}
	}
	if *saveSched != "" {
		if err := res.Schedule.SaveFile(*saveSched); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote schedule to %s\n", *saveSched)
	}
	fmt.Printf("plan: %d configurations, cost %d/%d slots, %d iterations\n",
		len(res.Schedule.Configs), res.Schedule.Cost(), *window, res.Iterations)
	if opt.MultiRoute {
		// Octopus+ plans are measured by their verified bookkeeping.
		fmt.Printf("plan bookkeeping: delivered %d/%d (%.2f%%), %d packet-hops\n",
			res.Delivered, res.TotalPackets, 100*float64(res.Delivered)/float64(res.TotalPackets), res.Hops)
		return
	}
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{
		Window: *window, MultiHop: *multihop, Ports: *ports, Epsilon64: opt.Epsilon64,
	})
	if err != nil {
		fatalf("%v", err)
	}
	report(sim, len(res.Schedule.Configs))
}

func isKnownAlgo(algo string) bool {
	for _, a := range knownAlgos {
		if a == algo {
			return true
		}
	}
	return false
}

// coreOptions maps an Octopus-family -algo value onto core.Options.
// octopus-random mutates the load in place to pin one random route per flow.
func coreOptions(algo string, load *traffic.Load, rng *rand.Rand, window, delta, ports int, multihop bool) (core.Options, error) {
	opt := core.Options{Window: window, Delta: delta, Ports: ports, MultiHop: multihop}
	switch algo {
	case "octopus":
	case "octopus-g":
		opt.Matcher = core.MatcherGreedy
	case "octopus-b":
		opt.AlphaSearch = core.AlphaBinary
	case "octopus-e":
		opt.Epsilon64 = 4
	case "octopus-plus":
		opt.MultiRoute = true
	case "octopus-random":
		for i := range load.Flows {
			f := &load.Flows[i]
			f.Routes = []traffic.Route{f.Routes[rng.Intn(len(f.Routes))]}
		}
	default:
		return core.Options{}, fmt.Errorf("algorithm %q is not an Octopus-core variant", algo)
	}
	return opt, nil
}

// loadFaults reads and validates a failure trace against the fabric; an
// empty path yields a nil trace (failure-free run).
func loadFaults(path string, g *graph.Digraph) (*fault.Trace, error) {
	if path == "" {
		return nil, nil
	}
	tr, err := fault.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault trace %s: %w", path, err)
	}
	if err := tr.Validate(g); err != nil {
		return nil, fmt.Errorf("fault trace %s does not fit the selected fabric: %w", path, err)
	}
	return tr, nil
}

// loadSchedule reads a replay schedule and validates it against the fabric
// before any simulation work, so hostile or mismatched JSON fails with a
// clear error rather than a panic deep in the replay.
func loadSchedule(path string, g *graph.Digraph, ports int) (*schedule.Schedule, error) {
	sch, err := schedule.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("replay schedule %s: %w", path, err)
	}
	if err := sch.Validate(g, 0, ports); err != nil {
		return nil, fmt.Errorf("replay schedule %s does not fit the selected fabric: %w", path, err)
	}
	return sch, nil
}

// runFaulty drives the fault-tolerant online pipeline and prints the
// per-epoch degradation report.
func runFaulty(g *graph.Digraph, load *traffic.Load, faults *fault.Trace, opt core.Options) {
	var arr []online.Arrival
	for _, f := range load.Flows {
		arr = append(arr, online.Arrival{Flow: f, At: 0})
	}
	res, err := online.RunFaulty(g, arr, faults, online.FaultOptions{
		Options: online.Options{Core: opt},
	})
	if err != nil {
		fatalf("%v", err)
	}
	for _, ep := range res.Epochs {
		fmt.Printf("epoch %3d: %d links, %d nodes down | offered %d delivered %d backlog %d | rerouted %d stranded %d dropped %d | reference %d\n",
			ep.Epoch, ep.FailedLinks, ep.FailedNodes,
			ep.Offered, ep.Delivered, ep.Backlog,
			ep.Rerouted, ep.Stranded, ep.Dropped, ep.RefDelivered)
	}
	fmt.Printf("degraded: delivered %d/%d (%.2f%%), dropped %d unreachable\n",
		res.Delivered, res.Total, 100*res.DeliveredFraction(), res.Dropped)
	if res.Reference != nil {
		fmt.Printf("reference: delivered %d/%d failure-free; degradation %.2f%%\n",
			res.Reference.Delivered, res.Reference.Total, 100*res.Degradation())
	}
}

func makeLoad(g *graph.Digraph, path, trace string, n, window, routes, fixedHops int, rng *rand.Rand) (*traffic.Load, error) {
	if path != "" {
		load, err := traffic.LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		if err := load.Validate(g); err != nil {
			return nil, fmt.Errorf("load %s does not fit the selected fabric: %w", path, err)
		}
		return load, nil
	}
	kinds := map[string]traffic.TraceKind{
		"fb-hadoop": traffic.FBHadoop,
		"fb-web":    traffic.FBWeb,
		"fb-db":     traffic.FBDatabase,
		"ms":        traffic.MSHeatmap,
	}
	if trace != "" {
		kind, ok := kinds[trace]
		if !ok {
			return nil, fmt.Errorf("unknown trace %q", trace)
		}
		return traffic.TraceLike(g, kind, window, traffic.SyntheticParams{}, rng)
	}
	p := traffic.DefaultSyntheticParams(n, window)
	p.RouteChoices = routes
	p.FixedHops = fixedHops
	return traffic.Synthetic(g, p, rng)
}

func report(sim *simulate.Result, configs int) {
	fmt.Printf("measured: delivered %d/%d (%.2f%%), %d packet-hops, utilization %.2f%%, %d/%d configs replayed\n",
		sim.Delivered, sim.TotalPackets, 100*sim.DeliveredFraction(),
		sim.Hops, 100*sim.Utilization(), sim.Configs, configs)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mhsim: "+format+"\n", args...)
	os.Exit(1)
}
