package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

func TestMakeLoadSynthetic(t *testing.T) {
	g := graph.Complete(8)
	rng := rand.New(rand.NewSource(1))
	load, err := makeLoad(g, "", "", 8, 100, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMakeLoadTraces(t *testing.T) {
	g := graph.Complete(8)
	for _, tr := range []string{"fb-hadoop", "fb-web", "fb-db", "ms"} {
		rng := rand.New(rand.NewSource(1))
		load, err := makeLoad(g, "", tr, 8, 100, 1, 0, rng)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if load.TotalPackets() == 0 {
			t.Fatalf("%s: empty", tr)
		}
	}
	if _, err := makeLoad(g, "", "bogus", 8, 100, 1, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bogus trace accepted")
	}
}

func TestMakeLoadFromFile(t *testing.T) {
	g := graph.Complete(4)
	path := filepath.Join(t.TempDir(), "load.json")
	src := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	load, err := makeLoad(g, path, "", 4, 100, 1, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if load.TotalPackets() != 5 {
		t.Fatalf("got %d packets", load.TotalPackets())
	}
	if _, err := makeLoad(g, filepath.Join(t.TempDir(), "nope.json"), "", 4, 100, 1, 0, nil); err == nil {
		t.Fatal("missing file accepted")
	}
	// A load referencing nodes outside the fabric is rejected.
	big := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 9, Routes: []traffic.Route{{0, 9}}},
	}}
	path2 := filepath.Join(t.TempDir(), "big.json")
	if err := big.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	if _, err := makeLoad(g, path2, "", 4, 100, 1, 0, nil); err == nil {
		t.Fatal("out-of-fabric load accepted")
	}
}

func TestKnownAlgos(t *testing.T) {
	for _, a := range knownAlgos {
		if !isKnownAlgo(a) {
			t.Errorf("%s not recognized", a)
		}
	}
	for _, a := range []string{"", "Octopus", "octopus ", "bogus"} {
		if isKnownAlgo(a) {
			t.Errorf("%q accepted", a)
		}
	}
}

func TestCoreOptionsMapping(t *testing.T) {
	g := graph.Complete(4)
	rng := rand.New(rand.NewSource(1))
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 2, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}, {0, 2, 1}}},
	}}
	opt, err := coreOptions("octopus-plus", load, rng, 100, 5, 1, false)
	if err != nil || !opt.MultiRoute {
		t.Fatalf("octopus-plus: %+v, %v", opt, err)
	}
	opt, err = coreOptions("octopus-e", load, rng, 100, 5, 1, false)
	if err != nil || opt.Epsilon64 != 4 {
		t.Fatalf("octopus-e: %+v, %v", opt, err)
	}
	if _, err := coreOptions("rotornet", load, rng, 100, 5, 1, false); err == nil {
		t.Fatal("non-core algorithm accepted")
	}
	// octopus-random pins one route per flow.
	if _, err := coreOptions("octopus-random", load, rng, 100, 5, 1, false); err != nil {
		t.Fatal(err)
	}
	if len(load.Flows[0].Routes) != 1 {
		t.Fatalf("octopus-random left %d routes", len(load.Flows[0].Routes))
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestLoadScheduleValidatesAgainstFabric(t *testing.T) {
	g := graph.Complete(4)
	dir := t.TempDir()
	good := &schedule.Schedule{Delta: 2, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 3},
	}}
	path := filepath.Join(dir, "sched.json")
	if err := good.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSchedule(path, g, 1); err != nil {
		t.Fatal(err)
	}
	// A schedule activating a link outside the fabric is rejected with a
	// clear error, not a panic later in the replay.
	if err := os.WriteFile(path, []byte(`{"delta":2,"configs":[{"alpha":3,"from":[0],"to":[9]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSchedule(path, g, 1); err == nil {
		t.Fatal("out-of-fabric schedule accepted")
	}
	// Non-positive alpha is rejected at decode time.
	if err := os.WriteFile(path, []byte(`{"delta":2,"configs":[{"alpha":0,"from":[0],"to":[1]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSchedule(path, g, 1); err == nil {
		t.Fatal("zero-alpha schedule accepted")
	}
	if _, err := loadSchedule(filepath.Join(dir, "missing.json"), g, 1); err == nil {
		t.Fatal("missing schedule accepted")
	}
}

func TestLoadFaultsValidatesAgainstFabric(t *testing.T) {
	g := graph.Complete(4)
	dir := t.TempDir()
	// Empty path: no trace, no error.
	if tr, err := loadFaults("", g); tr != nil || err != nil {
		t.Fatalf("empty path: %v, %v", tr, err)
	}
	good := &fault.Trace{Events: []fault.Event{{At: 5, Kind: fault.LinkDown, From: 0, To: 1}}}
	path := filepath.Join(dir, "trace.json")
	if err := good.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	tr, err := loadFaults(path, g)
	if err != nil || len(tr.Events) != 1 {
		t.Fatalf("good trace: %v, %v", tr, err)
	}
	// Out-of-fabric events are rejected.
	if err := os.WriteFile(path, []byte(`{"events":[{"at":0,"kind":"node-down","node":9}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFaults(path, g); err == nil {
		t.Fatal("out-of-fabric trace accepted")
	}
	// Malformed JSON is rejected.
	if err := os.WriteFile(path, []byte(`{"events":[{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFaults(path, g); err == nil {
		t.Fatal("malformed trace accepted")
	}
}
