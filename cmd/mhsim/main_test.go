package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

func TestMakeLoadSynthetic(t *testing.T) {
	g := graph.Complete(8)
	rng := rand.New(rand.NewSource(1))
	load, err := makeLoad(g, "", "", 8, 100, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMakeLoadTraces(t *testing.T) {
	g := graph.Complete(8)
	for _, tr := range []string{"fb-hadoop", "fb-web", "fb-db", "ms"} {
		rng := rand.New(rand.NewSource(1))
		load, err := makeLoad(g, "", tr, 8, 100, 1, 0, rng)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if load.TotalPackets() == 0 {
			t.Fatalf("%s: empty", tr)
		}
	}
	if _, err := makeLoad(g, "", "bogus", 8, 100, 1, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bogus trace accepted")
	}
}

func TestMakeLoadFromFile(t *testing.T) {
	g := graph.Complete(4)
	path := filepath.Join(t.TempDir(), "load.json")
	src := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	load, err := makeLoad(g, path, "", 4, 100, 1, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if load.TotalPackets() != 5 {
		t.Fatalf("got %d packets", load.TotalPackets())
	}
	if _, err := makeLoad(g, filepath.Join(t.TempDir(), "nope.json"), "", 4, 100, 1, 0, nil); err == nil {
		t.Fatal("missing file accepted")
	}
	// A load referencing nodes outside the fabric is rejected.
	big := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 9, Routes: []traffic.Route{{0, 9}}},
	}}
	path2 := filepath.Join(t.TempDir(), "big.json")
	if err := big.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	if _, err := makeLoad(g, path2, "", 4, 100, 1, 0, nil); err == nil {
		t.Fatal("out-of-fabric load accepted")
	}
}
