package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"octopus/internal/algo"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

func TestMakeLoadSynthetic(t *testing.T) {
	g := graph.Complete(8)
	rng := rand.New(rand.NewSource(1))
	load, err := makeLoad(g, "", "", 8, 100, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMakeLoadTraces(t *testing.T) {
	g := graph.Complete(8)
	for _, tr := range []string{"fb-hadoop", "fb-web", "fb-db", "ms"} {
		rng := rand.New(rand.NewSource(1))
		load, err := makeLoad(g, "", tr, 8, 100, 1, 0, rng)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if load.TotalPackets() == 0 {
			t.Fatalf("%s: empty", tr)
		}
	}
	if _, err := makeLoad(g, "", "bogus", 8, 100, 1, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bogus trace accepted")
	}
}

func TestMakeLoadFromFile(t *testing.T) {
	g := graph.Complete(4)
	path := filepath.Join(t.TempDir(), "load.json")
	src := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	load, err := makeLoad(g, path, "", 4, 100, 1, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if load.TotalPackets() != 5 {
		t.Fatalf("got %d packets", load.TotalPackets())
	}
	if _, err := makeLoad(g, filepath.Join(t.TempDir(), "nope.json"), "", 4, 100, 1, 0, nil); err == nil {
		t.Fatal("missing file accepted")
	}
	// A load referencing nodes outside the fabric is rejected.
	big := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 9, Routes: []traffic.Route{{0, 9}}},
	}}
	path2 := filepath.Join(t.TempDir(), "big.json")
	if err := big.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	if _, err := makeLoad(g, path2, "", 4, 100, 1, 0, nil); err == nil {
		t.Fatal("out-of-fabric load accepted")
	}
}

func TestUnknownAlgoRejected(t *testing.T) {
	for _, a := range []string{"", "Octopus", "octopus ", "bogus", "octopus:eps64"} {
		err := run([]string{"-n", "4", "-algo", a}, io.Discard, io.Discard)
		if err == nil {
			t.Errorf("%q accepted", a)
		}
	}
}

func TestScheduleFlagsRejectedForScheduleFreeAlgos(t *testing.T) {
	for _, a := range []string{"maxweight", "ub"} {
		for _, fl := range []string{"-v", "-gantt"} {
			if err := run([]string{"-n", "4", "-algo", a, fl}, io.Discard, io.Discard); err == nil {
				t.Errorf("%s %s accepted", a, fl)
			}
		}
		if err := run([]string{"-n", "4", "-algo", a, "-save-schedule", filepath.Join(t.TempDir(), "s.json")}, io.Discard, io.Discard); err == nil {
			t.Errorf("%s -save-schedule accepted", a)
		}
	}
}

func TestScheduleFlagsWorkForBaselines(t *testing.T) {
	// Pre-refactor mhsim silently ignored -gantt / -save-schedule / -v for
	// baseline algorithms; the registry Outcome carries the schedule, so
	// they now work uniformly for every schedule-producing algorithm.
	for _, a := range []string{"eclipse-based", "rotornet", "solstice", "eclipse"} {
		path := filepath.Join(t.TempDir(), "sched.json")
		var out, errw bytes.Buffer
		err := run([]string{"-n", "6", "-window", "60", "-delta", "4", "-seed", "2",
			"-algo", a, "-v", "-gantt", "-save-schedule", path}, &out, &errw)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !strings.Contains(out.String(), "config   0:") {
			t.Errorf("%s: -v printed no configuration sequence:\n%s", a, out.String())
		}
		sch, err := schedule.LoadFile(path)
		if err != nil {
			t.Fatalf("%s: -save-schedule wrote nothing usable: %v", a, err)
		}
		if len(sch.Configs) == 0 {
			t.Errorf("%s: saved schedule is empty", a)
		}
	}
}

func TestFaultsRejectedForNonCoreAlgos(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	tr := &fault.Trace{Events: []fault.Event{{At: 5, Kind: fault.LinkDown, From: 0, To: 1}}}
	if err := tr.SaveFile(tracePath); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-n", "4", "-algo", "rotornet", "-faults", tracePath}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "does not support -faults") {
		t.Fatalf("rotornet -faults: %v", err)
	}
	// Every core-family algorithm must be accepted by the same gate.
	for _, name := range algo.CoreNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list core algorithm %s: %v", name, err)
		}
	}
}

func TestListAlgosMatchesRegistry(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list-algos"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	reg := algo.Registry()
	if len(lines) != len(reg) {
		t.Fatalf("listed %d algorithms, registry has %d", len(lines), len(reg))
	}
	for i, a := range reg {
		want := a.Name() + "\t" + a.Kind().String() + "\t" + a.Describe()
		if lines[i] != want {
			t.Errorf("line %d = %q, want %q", i, lines[i], want)
		}
	}
}

// TestReadmeAlgoTableInSync keeps the README's generated algorithm table
// identical to the registry listing (the same check CI runs): each row
// between the algo-table markers must match -list-algos, line for line.
func TestReadmeAlgoTableInSync(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	readme := string(raw)
	const start, end = "<!-- algo-table-start -->", "<!-- algo-table-end -->"
	i, j := strings.Index(readme, start), strings.Index(readme, end)
	if i < 0 || j < i {
		t.Fatal("README.md is missing the algo-table markers")
	}
	var rows []string
	for _, line := range strings.Split(readme[i+len(start):j], "\n") {
		if strings.HasPrefix(line, "| `") {
			rows = append(rows, line)
		}
	}
	reg := algo.Registry()
	if len(rows) != len(reg) {
		t.Fatalf("README table has %d rows, registry has %d algorithms", len(rows), len(reg))
	}
	for k, a := range reg {
		want := fmt.Sprintf("| `%s` | %s | %s |", a.Name(), a.Kind(), a.Describe())
		if rows[k] != want {
			t.Errorf("README row %d:\n  have %s\n  want %s", k, rows[k], want)
		}
	}
}

func TestLoadScheduleValidatesAgainstFabric(t *testing.T) {
	g := graph.Complete(4)
	dir := t.TempDir()
	good := &schedule.Schedule{Delta: 2, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 3},
	}}
	path := filepath.Join(dir, "sched.json")
	if err := good.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSchedule(path, g, 1); err != nil {
		t.Fatal(err)
	}
	// A schedule activating a link outside the fabric is rejected with a
	// clear error, not a panic later in the replay.
	if err := os.WriteFile(path, []byte(`{"delta":2,"configs":[{"alpha":3,"from":[0],"to":[9]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSchedule(path, g, 1); err == nil {
		t.Fatal("out-of-fabric schedule accepted")
	}
	// Non-positive alpha is rejected at decode time.
	if err := os.WriteFile(path, []byte(`{"delta":2,"configs":[{"alpha":0,"from":[0],"to":[1]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSchedule(path, g, 1); err == nil {
		t.Fatal("zero-alpha schedule accepted")
	}
	if _, err := loadSchedule(filepath.Join(dir, "missing.json"), g, 1); err == nil {
		t.Fatal("missing schedule accepted")
	}
}

func TestLoadFaultsValidatesAgainstFabric(t *testing.T) {
	g := graph.Complete(4)
	dir := t.TempDir()
	// Empty path: no trace, no error.
	if tr, err := loadFaults("", g); tr != nil || err != nil {
		t.Fatalf("empty path: %v, %v", tr, err)
	}
	good := &fault.Trace{Events: []fault.Event{{At: 5, Kind: fault.LinkDown, From: 0, To: 1}}}
	path := filepath.Join(dir, "trace.json")
	if err := good.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	tr, err := loadFaults(path, g)
	if err != nil || len(tr.Events) != 1 {
		t.Fatalf("good trace: %v, %v", tr, err)
	}
	// Out-of-fabric events are rejected.
	if err := os.WriteFile(path, []byte(`{"events":[{"at":0,"kind":"node-down","node":9}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFaults(path, g); err == nil {
		t.Fatal("out-of-fabric trace accepted")
	}
	// Malformed JSON is rejected.
	if err := os.WriteFile(path, []byte(`{"events":[{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFaults(path, g); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

// TestMakeLoadRejectsOffFabricRoute pins the load-time route-vs-fabric
// validation: a JSON load whose route uses a link absent from the selected
// (sparse) fabric must fail at load time with an error naming the flow and
// the offending hop — not deep inside planning.
func TestMakeLoadRejectsOffFabricRoute(t *testing.T) {
	// ChordRing(6, 2) has edges i->i+1 and i->i+2 only: 0->3 is not a link,
	// though both endpoints are valid nodes.
	g := graph.ChordRing(6, 2)
	bad := &traffic.Load{Flows: []traffic.Flow{
		{ID: 7, Size: 3, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 3}}},
	}}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := bad.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	_, err := makeLoad(g, path, "", 6, 100, 1, 0, nil)
	if err == nil {
		t.Fatal("off-fabric route accepted")
	}
	for _, want := range []string{"flow 7", "not a fabric link", "does not fit the selected fabric"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestRedundancyFlagGating(t *testing.T) {
	err := run([]string{"-n", "4", "-redundancy"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "needs -faults") {
		t.Fatalf("-redundancy without -faults: %v", err)
	}
	err = run([]string{"-n", "4", "-redundancy-out", "x.json"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "needs -redundancy") {
		t.Fatalf("-redundancy-out without -redundancy: %v", err)
	}
}

// TestRedundancyShowdownEndToEnd drives the full -redundancy pipeline:
// four arms over a committed failure event, a human-readable table on
// stdout, and a machine-readable JSON artifact.
func TestRedundancyShowdownEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	tr := &fault.Trace{Events: []fault.Event{
		{At: 0, Kind: fault.LinkDown, From: 0, To: 3},
		{At: 120, Kind: fault.LinkUp, From: 0, To: 3},
	}}
	if err := tr.SaveFile(tracePath); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "showdown.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-n", "6", "-window", "60", "-delta", "5", "-max-epochs", "4",
		"-algo", "octopus-redundant:red=2,crit=1",
		"-faults", tracePath, "-redundancy", "-redundancy-out", outPath,
	}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"showdown: k=2 crit=1.00", "none", "reactive", "proactive", "both", "psi overhead"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep showdownReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("showdown JSON: %v", err)
	}
	if len(rep.Arms) != 4 {
		t.Fatalf("%d arms, want 4", len(rep.Arms))
	}
	names := []string{"none", "reactive", "proactive", "both"}
	for i, a := range rep.Arms {
		if a.Arm != names[i] {
			t.Errorf("arm %d = %q, want %q", i, a.Arm, names[i])
		}
		if a.UniqueTotal != rep.Arms[0].UniqueTotal {
			t.Errorf("arm %s unique total %d diverges from %d", a.Arm, a.UniqueTotal, rep.Arms[0].UniqueTotal)
		}
		if a.UniqueFraction < 0 || a.UniqueFraction > 1 {
			t.Errorf("arm %s unique fraction %f out of range", a.Arm, a.UniqueFraction)
		}
	}
	if rep.PsiOverhead < 1 {
		t.Errorf("psi overhead %f below 1", rep.PsiOverhead)
	}
	// Layered protection never loses packets relative to nothing.
	if rep.Arms[3].UniqueDelivered < rep.Arms[0].UniqueDelivered {
		t.Errorf("both delivered %d below none %d", rep.Arms[3].UniqueDelivered, rep.Arms[0].UniqueDelivered)
	}
}

// TestFaultsWithRedundantSpec: the plain -faults path provisions proactive
// copies when the algorithm spec asks for them, and reports the
// deduplicated delivery alongside the raw epochs.
func TestFaultsWithRedundantSpec(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	tr := &fault.Trace{Events: []fault.Event{{At: 0, Kind: fault.LinkDown, From: 0, To: 3}}}
	if err := tr.SaveFile(tracePath); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	err := run([]string{
		"-n", "6", "-window", "60", "-delta", "5", "-max-epochs", "4",
		"-algo", "octopus-redundant:red=2,crit=0.5",
		"-faults", tracePath,
	}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"redundancy: k=2 crit=0.50", "unique delivered"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	// The same spec with crit unset stays on the classic RunFaulty path.
	stdout.Reset()
	err = run([]string{
		"-n", "6", "-window", "60", "-delta", "5", "-max-epochs", "4",
		"-algo", "octopus", "-faults", tracePath,
	}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout.String(), "unique delivered") {
		t.Errorf("plain octopus -faults printed redundancy accounting:\n%s", stdout.String())
	}
}
