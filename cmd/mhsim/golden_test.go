package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenOutput pins mhsim's stdout byte for byte against outputs
// captured from the pre-registry binary: migrating the dispatch onto
// internal/algo must not change what any existing invocation prints.
// Regenerate a file by running the listed arguments and redirecting
// stdout, only when an output change is intended.
func TestGoldenOutput(t *testing.T) {
	base := []string{"-n", "10", "-window", "200", "-delta", "5", "-seed", "3"}
	cases := []struct {
		file string
		args []string
	}{
		{"octopus.txt", []string{"-algo", "octopus"}},
		{"eclipse-based.txt", []string{"-algo", "eclipse-based"}},
		{"maxweight.txt", []string{"-algo", "maxweight"}},
		{"ub.txt", []string{"-algo", "ub"}},
		{"octopus-plus.txt", []string{"-algo", "octopus-plus", "-routes", "4"}},
		{"rotornet.txt", []string{"-algo", "rotornet"}},
		{"octopus-g-multihop.txt", []string{"-algo", "octopus-g", "-multihop"}},
		{"octopus-random.txt", []string{"-algo", "octopus-random", "-routes", "3"}},
		// The gantt chart is rendered from the decision trace; this file was
		// captured from the pre-trace renderer, so it also pins that the
		// trace round-trip reproduces the schedule byte for byte.
		{"octopus-gantt.txt", []string{"-algo", "octopus", "-gantt"}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if err := run(append(append([]string(nil), base...), tc.args...), &out, io.Discard); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output drifted from golden file:\n--- want\n%s--- got\n%s", want, out.Bytes())
			}
		})
	}
}
