package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"octopus/internal/obs/flight"
)

// TestFlightOut pins the -flight-out surface: the journal decodes with the
// versioned codec, covers the load's lifecycle, and recording leaves the
// measured outcome bit-identical (same stdout as a recorder-free run).
func TestFlightOut(t *testing.T) {
	args := []string{"-n", "6", "-window", "300", "-algo", "octopus", "-seed", "7"}
	var plain bytes.Buffer
	if err := run(args, &plain, os.Stderr); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "flight.jsonl")
	var traced bytes.Buffer
	var errOut bytes.Buffer
	if err := run(append(args, "-flight-out", path), &traced, &errOut); err != nil {
		t.Fatal(err)
	}
	if plain.String() != traced.String() {
		t.Fatalf("flight recording changed the outcome:\nplain:\n%straced:\n%s", plain.String(), traced.String())
	}
	if !strings.Contains(errOut.String(), "flight events") {
		t.Fatalf("missing journal summary on stderr: %q", errOut.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, events, err := flight.DecodeLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Sample != 1 || len(events) == 0 {
		t.Fatalf("header %+v with %d events", hdr, len(events))
	}
	kinds := map[flight.Kind]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	for _, want := range []flight.Kind{flight.KindAdmitted, flight.KindHop, flight.KindDelivered} {
		if !kinds[want] {
			t.Fatalf("journal missing %s events (have %v)", want, kinds)
		}
	}
}

// TestFlightOutSampled checks the sample=N spec key thins the journal to
// the deterministic flow subset.
func TestFlightOutSampled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	err := run([]string{"-n", "8", "-window", "300", "-algo", "octopus:sample=4", "-seed", "3",
		"-flight-out", path}, &bytes.Buffer{}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, events, err := flight.DecodeLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Sample != 4 {
		t.Fatalf("header sample %d, want 4", hdr.Sample)
	}
	ref := flight.New(flight.Config{Sample: 4})
	for _, e := range events {
		if !ref.Tracks(e.Flow) {
			t.Fatalf("journal holds unsampled flow %d", e.Flow)
		}
	}
}
