// Command mhsd is the long-lived multihop scheduler daemon: it loads a
// fabric, runs the epoch pipeline continuously with double-buffered
// planning, and serves the flow-submission API plus the observability
// endpoints over HTTP until interrupted.
//
// API sketch (see README "Running as a service" for examples):
//
//	POST   /v1/flows             submit one flow or a JSON array of flows
//	GET    /v1/flows             queue/backlog/totals summary
//	DELETE /v1/flows/{id}        cancel a submitted flow
//	GET    /v1/flows/{id}/events per-flow lifecycle journal (flight recorder)
//	GET    /v1/epochs            recent epoch records + run totals
//	GET    /v1/status            operational roll-up: epoch, ψ, SLOs, plan p50/p99, per-pod load
//	GET    /v1/fabric            current fabric
//	POST   /v1/fabric            replace the fabric at the next epoch boundary
//	GET    /metrics              Prometheus text metrics (plus /debug/vars, /debug/pprof)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"time"

	"octopus/internal/buildinfo"
	"octopus/internal/core"
	"octopus/internal/daemon"
	"octopus/internal/graph"
	"octopus/internal/httpd"
	"octopus/internal/obs"
	"octopus/internal/obs/flight"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mhsd:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: it parses args with its
// own FlagSet and writes only to the given writers.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mhsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:9077", "HTTP listen address (use :0 for an ephemeral port)")
		addrFile     = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
		n            = fs.Int("n", 24, "number of network nodes")
		deg          = fs.Int("deg", 0, "partial fabric with this out-degree per node (0 = complete)")
		seed         = fs.Int64("seed", 1, "RNG seed for the partial-fabric generator")
		window       = fs.Int("window", 1000, "window W in time slots")
		delta        = fs.Int("delta", 20, "reconfiguration delay Δ in time slots")
		ports        = fs.Int("ports", 1, "input/output ports per node")
		epoch        = fs.Duration("epoch", 100*time.Millisecond, "wall-clock duration of one epoch")
		queueLimit   = fs.Int("queue-limit", 1<<20, "max packets queued awaiting admission before submissions get 429")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Second, "max time to drain the backlog on shutdown")
		audit        = fs.Bool("audit", true, "verify every epoch plan against the fabric before committing it")
		fingerprints = fs.Bool("fingerprints", false, "attach schedule fingerprints to /v1/epochs records")
		traceOut     = fs.String("trace-out", "", "write the JSONL decision trace to this file")
		flightOn     = fs.Bool("flight", true, "record per-flow lifecycle events (GET /v1/flows/{id}/events, /v1/status SLOs)")
		flightSample = fs.Int("flight-sample", 1, "flight recorder: track one flow in N (1 = every flow)")
		flightCap    = fs.Int("flight-cap", 1<<16, "flight recorder: ring capacity in events (bounded memory)")
		sloEpochs    = fs.Int("slo-epochs", 0, "flight recorder: completion SLO in epochs (0 = every completion on time)")
		statusPods   = fs.Int("pods", 1, "pods for the /v1/status per-pod load roll-up (must divide -n)")
		version      = fs.Bool("version", false, "print the version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Print(stdout, "mhsd")
		return nil
	}
	if *n < 2 {
		return fmt.Errorf("need at least 2 nodes, have %d", *n)
	}

	var fabric *graph.Digraph
	if *deg > 0 {
		fabric = graph.RandomPartial(*n, *deg, rand.New(rand.NewSource(*seed)))
	} else {
		fabric = graph.Complete(*n)
	}

	var tracer *obs.Tracer
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		tracer = obs.NewTracer(f)
	}

	// The registry is built here (rather than defaulted inside the daemon)
	// so the flight recorder's SLO mirrors land on the same /metrics page.
	reg := obs.NewRegistry()
	var recorder *flight.Recorder
	if *flightOn {
		recorder = flight.New(flight.Config{
			Sample:    *flightSample,
			Cap:       *flightCap,
			SLOEpochs: *sloEpochs,
			Metrics:   reg,
		})
	}

	s, err := daemon.New(daemon.Options{
		Fabric:           fabric,
		Core:             core.Options{Window: *window, Delta: *delta, Ports: *ports},
		EpochDuration:    *epoch,
		QueueLimit:       *queueLimit,
		DrainTimeout:     *drainTimeout,
		Audit:            *audit,
		FingerprintPlans: *fingerprints,
		Registry:         reg,
		Tracer:           tracer,
		Flight:           recorder,
		StatusPods:       *statusPods,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	ctx, stop := httpd.SignalContext(context.Background())
	defer stop()
	fmt.Fprintf(stdout, "mhsd: serving on http://%s (fabric: %d nodes, %d links; window %d, Δ %d, epoch %v)\n",
		ln.Addr(), fabric.N(), fabric.M(), *window, *delta, *epoch)

	err = s.Run(ctx, ln)
	if traceFile != nil {
		if terr := traceFile.Close(); err == nil {
			err = terr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "mhsd: shutdown complete")
	return nil
}
