package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mhsd") {
		t.Fatalf("version output %q does not name the command", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-n", "1"}, io.Discard, io.Discard); err == nil {
		t.Fatal("1-node fabric accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-window", "0"}, io.Discard, io.Discard); err == nil {
		t.Fatal("zero window accepted")
	}
	if err := run([]string{"-trace-out", "/nonexistent-dir/trace.jsonl"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unwritable trace path accepted")
	}
}
