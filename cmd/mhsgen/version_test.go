package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// TestVersionFlag smoke-tests `mhsgen -version` by driving main itself:
// os.Args is swapped for the flag and stdout captured through a pipe. main
// must print one "mhsgen <version>" line and return before generating
// anything.
func TestVersionFlag(t *testing.T) {
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Args = []string{"mhsgen", "-version"}
	os.Stdout = w
	main()
	w.Close()
	os.Stdout = oldStdout
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	line := string(out)
	if !strings.HasPrefix(line, "mhsgen ") || strings.TrimSpace(strings.TrimPrefix(line, "mhsgen ")) == "" {
		t.Fatalf("-version printed %q, want \"mhsgen <version>\"", line)
	}
}
