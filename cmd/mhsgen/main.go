// Command mhsgen generates multi-hop traffic loads, and prints summary
// statistics of existing load files.
//
// Usage:
//
//	mhsgen -n 100 -window 10000 -out load.json
//	mhsgen -trace fb-db -n 100 -window 10000 -out db.json
//	mhsgen -pods 32 -n 1024 -interpod 0.3 -format bin -out load.mhsb
//	mhsgen -pods 4 -n 64 -format jsonl -out - | head
//	mhsgen -stats load.mhsb
//
// The classic json format builds the whole load in memory; the jsonl and
// bin flow-stream formats write one record at a time, so -pods loads far
// larger than RAM stream straight to the output (use -out - for stdout).
// -stats accepts all three encodings.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"octopus/internal/buildinfo"
	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// genConfig collects the generation flags; buildLoad turns it into a load.
type genConfig struct {
	n          int
	window     int
	seed       int64
	trace      string
	routes     int
	fixedHops  int
	skew       int
	flows      int
	pods       int       // >0: pod-structured load over n nodes
	interFrac  float64   // -pods mode: fraction of flows crossing pods
	interLinks int       // -pods mode: links per ordered pod pair (0 = default)
	matrix     io.Reader // non-nil: build from a CSV demand matrix
}

// podParams resolves the -pods flags into generator parameters.
func podParams(cfg genConfig) (traffic.PodParams, error) {
	podSize, err := graph.PodDims(cfg.n, cfg.pods)
	if err != nil {
		return traffic.PodParams{}, err
	}
	p := traffic.DefaultPodParams(cfg.pods, podSize, cfg.window)
	p.InterFrac = cfg.interFrac
	if cfg.interLinks > 0 {
		p.InterLinks = min(cfg.interLinks, podSize)
	}
	return p, nil
}

// buildLoad generates the traffic load described by cfg and returns it with
// the complete fabric it was generated over.
func buildLoad(cfg genConfig) (*graph.Digraph, *traffic.Load, error) {
	rng := rand.New(rand.NewSource(cfg.seed))
	if cfg.pods > 0 {
		p, err := podParams(cfg)
		if err != nil {
			return nil, nil, err
		}
		s, err := traffic.PodSynthetic(p, rng)
		if err != nil {
			return nil, nil, err
		}
		return p.Fabric(), s.Materialize(nil), nil
	}
	if cfg.matrix != nil {
		m, err := traffic.ReadDemandCSV(cfg.matrix)
		if err != nil {
			return nil, nil, err
		}
		g := graph.Complete(len(m))
		load, err := traffic.FromDemandMatrix(g, m, cfg.window, traffic.SyntheticParams{RouteChoices: cfg.routes, FixedHops: cfg.fixedHops}, rng)
		return g, load, err
	}
	g := graph.Complete(cfg.n)
	if cfg.trace != "" {
		kinds := map[string]traffic.TraceKind{
			"fb-hadoop": traffic.FBHadoop,
			"fb-web":    traffic.FBWeb,
			"fb-db":     traffic.FBDatabase,
			"ms":        traffic.MSHeatmap,
		}
		kind, ok := kinds[cfg.trace]
		if !ok {
			return nil, nil, fmt.Errorf("unknown trace %q", cfg.trace)
		}
		load, err := traffic.TraceLike(g, kind, cfg.window, traffic.SyntheticParams{RouteChoices: cfg.routes, FixedHops: cfg.fixedHops, MinHops: 1, MaxHops: 3}, rng)
		return g, load, err
	}
	p := traffic.DefaultSyntheticParams(cfg.n, cfg.window)
	p.RouteChoices = cfg.routes
	p.FixedHops = cfg.fixedHops
	p.NL = max(1, cfg.flows/4)
	p.NS = max(1, cfg.flows-cfg.flows/4)
	total := p.CL + p.CS
	p.CS = total * cfg.skew / 100
	p.CL = total - p.CS
	load, err := traffic.Synthetic(g, p, rng)
	return g, load, err
}

func main() {
	var (
		n          = flag.Int("n", 100, "number of network nodes")
		window     = flag.Int("window", 10000, "window W (sets per-port traffic and trace scaling)")
		seed       = flag.Int64("seed", 1, "RNG seed")
		trace      = flag.String("trace", "", "trace-like load: fb-hadoop, fb-web, fb-db, ms (default: synthetic)")
		routes     = flag.Int("routes", 1, "candidate routes per flow")
		fixedHops  = flag.Int("fixed-hops", 0, "force every route to this many hops")
		skew       = flag.Int("skew", 30, "c_S as percent of per-port traffic (synthetic)")
		flows      = flag.Int("flows", 16, "flows per port, 1:3 large:small ratio (synthetic)")
		pods       = flag.Int("pods", 0, "generate a pod-structured load over this many pods of n/pods nodes")
		interpod   = flag.Float64("interpod", 0.3, "fraction of flows crossing pods (-pods mode)")
		interlinks = flag.Int("interlinks", 0, "inter-pod links per ordered pod pair (0 = min(4, pod size))")
		format     = flag.String("format", "json", "output encoding: json (classic document), jsonl or bin (flow streams)")
		matrix     = flag.String("matrix", "", "build the load from a CSV demand matrix instead of generating")
		out        = flag.String("out", "", "output path (default or \"-\": stdout)")
		stats      = flag.String("stats", "", "print statistics of an existing load file (any encoding) and exit")
		version    = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		buildinfo.Print(os.Stdout, "mhsgen")
		return
	}
	if *stats != "" {
		printStats(*stats)
		return
	}

	cfg := genConfig{
		n: *n, window: *window, seed: *seed, trace: *trace,
		routes: *routes, fixedHops: *fixedHops, skew: *skew, flows: *flows,
		pods: *pods, interFrac: *interpod, interLinks: *interlinks,
	}
	sf, streamed, err := parseFormat(*format)
	if err != nil {
		fatalf("%v", err)
	}
	if *matrix != "" {
		f, err := os.Open(*matrix)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		cfg.matrix = f
	}
	if cfg.pods > 0 && streamed {
		// The pod generator streams: flows go straight from the generator
		// to the output without ever materializing the load in memory.
		if err := emitPodStream(cfg, *out, sf); err != nil {
			fatalf("%v", err)
		}
		return
	}
	_, load, err := buildLoad(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	emit(load, *out, sf, streamed)
}

// parseFormat maps the -format flag onto an encoding; streamed reports
// whether it is one of the flow-stream encodings.
func parseFormat(name string) (traffic.StreamFormat, bool, error) {
	switch name {
	case "json":
		return 0, false, nil
	case "jsonl":
		return traffic.FormatJSONL, true, nil
	case "bin":
		return traffic.FormatBinary, true, nil
	}
	return 0, false, fmt.Errorf("unknown format %q (want json, jsonl, or bin)", name)
}

// openOut resolves the -out flag; "" and "-" select stdout.
func openOut(out string) (io.WriteCloser, bool, error) {
	if out == "" || out == "-" {
		return os.Stdout, true, nil
	}
	f, err := os.Create(out)
	return f, false, err
}

// emitPodStream generates the pod load flow by flow directly into the
// output stream.
func emitPodStream(cfg genConfig, out string, sf traffic.StreamFormat) error {
	p, err := podParams(cfg)
	if err != nil {
		return err
	}
	w, stdout, err := openOut(out)
	if err != nil {
		return err
	}
	sw := traffic.NewStreamWriter(w, sf)
	flows, packets := 0, int64(0)
	rng := rand.New(rand.NewSource(cfg.seed))
	err = traffic.PodSyntheticEmit(p, rng, func(f traffic.Flow) error {
		flows++
		packets += int64(f.Size)
		return sw.Write(&f)
	})
	if err == nil {
		err = sw.Close()
	}
	if !stdout {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if !stdout {
		fmt.Fprintf(os.Stderr, "wrote %s: %d flows, %d packets\n", out, flows, packets)
	}
	return nil
}

func emit(load *traffic.Load, out string, sf traffic.StreamFormat, streamed bool) {
	w, stdout, err := openOut(out)
	if err != nil {
		fatalf("%v", err)
	}
	if streamed {
		sw := traffic.NewStreamWriter(w, sf)
		for i := range load.Flows {
			if err := sw.Write(&load.Flows[i]); err != nil {
				fatalf("%v", err)
			}
		}
		if err := sw.Close(); err != nil {
			fatalf("%v", err)
		}
	} else if err := load.WriteJSON(w); err != nil {
		fatalf("%v", err)
	}
	if !stdout {
		if err := w.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d flows, %d packets\n", out, len(load.Flows), load.TotalPackets())
	}
}

func printStats(path string) {
	loadPtr, err := traffic.LoadAnyFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	load := *loadPtr
	sizes := make([]int, 0, len(load.Flows))
	hops := map[int]int{}
	maxNode := 0
	for _, f := range load.Flows {
		sizes = append(sizes, f.Size)
		hops[f.Routes[0].Hops()] += f.Size
		for _, r := range f.Routes {
			for _, v := range r {
				if v > maxNode {
					maxNode = v
				}
			}
		}
	}
	sort.Ints(sizes)
	pct := func(p float64) int {
		if len(sizes) == 0 {
			return 0
		}
		i := int(p * float64(len(sizes)-1))
		return sizes[i]
	}
	fmt.Printf("flows:   %d\n", len(load.Flows))
	fmt.Printf("packets: %d\n", load.TotalPackets())
	fmt.Printf("nodes:   >= %d\n", maxNode+1)
	fmt.Printf("hop mix (packets): ")
	for h := 1; h <= load.MaxHops(); h++ {
		fmt.Printf("%d-hop=%d ", h, hops[h])
	}
	fmt.Println()
	if len(sizes) > 0 {
		fmt.Printf("flow size: min=%d p50=%d p90=%d p99=%d max=%d\n",
			sizes[0], pct(0.5), pct(0.9), pct(0.99), sizes[len(sizes)-1])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mhsgen: "+format+"\n", args...)
	os.Exit(1)
}
