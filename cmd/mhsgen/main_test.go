package main

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"octopus/internal/schedule"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

var update = flag.Bool("update", false, "rewrite golden files from current generator output")

// goldenConfig is the pinned generation setup for the golden-file test.
func goldenConfig() genConfig {
	return genConfig{n: 8, window: 300, seed: 7, routes: 2, skew: 30, flows: 16}
}

// TestGoldenSyntheticLoad pins the generator output: the generated load
// must match the checked-in golden JSON byte for byte, survive a
// ReadJSON round-trip, and be route-feasible on its topology.
func TestGoldenSyntheticLoad(t *testing.T) {
	g, load, err := buildLoad(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := load.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden_synthetic.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test ./cmd/mhsgen -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("generated load drifted from %s (%d vs %d bytes); regenerate deliberately if the change is intended",
			goldenPath, buf.Len(), len(golden))
	}

	// Round-trip: parse the emitted JSON back and compare.
	back, err := traffic.ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Flows) != len(load.Flows) || back.TotalPackets() != load.TotalPackets() {
		t.Fatalf("round trip lost flows: %d/%d vs %d/%d",
			len(back.Flows), back.TotalPackets(), len(load.Flows), load.TotalPackets())
	}
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSON round trip is not byte-stable")
	}

	// Route feasibility on the generation topology, checked by both the
	// load's own validator and the independent one in internal/verify.
	if err := back.Validate(g); err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Schedule(g, back, &schedule.Schedule{}, verify.Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenPodLoad pins the pod-structured generator: the streamed JSONL
// output for a small pod load must match the checked-in golden file byte
// for byte, decode back identically through the stream reader, and be
// route-feasible on the pod fabric.
func TestGoldenPodLoad(t *testing.T) {
	cfg := genConfig{n: 12, window: 64, seed: 7, pods: 3, interFrac: 0.3}
	p, err := podParams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := traffic.NewStreamWriter(&buf, traffic.FormatJSONL)
	rng := rand.New(rand.NewSource(cfg.seed))
	if err := traffic.PodSyntheticEmit(p, rng, func(f traffic.Flow) error {
		return sw.Write(&f)
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden_pods.jsonl")
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test ./cmd/mhsgen -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("pod generator drifted from %s (%d vs %d bytes); regenerate deliberately if the change is intended",
			goldenPath, buf.Len(), len(golden))
	}

	// The stream decodes back to the same load buildLoad materializes.
	store, err := traffic.ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	g, load, err := buildLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back := store.Materialize(nil)
	if len(back.Flows) != len(load.Flows) || back.TotalPackets() != load.TotalPackets() {
		t.Fatalf("stream decodes to %d flows / %d packets, materialized load has %d / %d",
			len(back.Flows), back.TotalPackets(), len(load.Flows), load.TotalPackets())
	}
	if err := back.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestBuildLoadVariants exercises the non-default generator paths.
func TestBuildLoadVariants(t *testing.T) {
	trace := goldenConfig()
	trace.trace = "fb-db"
	g, load, err := buildLoad(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(load.Flows) == 0 {
		t.Fatal("trace-like generator produced no flows")
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}

	bad := goldenConfig()
	bad.trace = "no-such-trace"
	if _, _, err := buildLoad(bad); err == nil {
		t.Fatal("unknown trace accepted")
	}

	matrix := goldenConfig()
	matrix.matrix = strings.NewReader("0,40,10\n5,0,20\n15,25,0\n")
	g, load, err = buildLoad(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("matrix fabric has %d nodes, want 3", g.N())
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}

	// Generation is deterministic in the seed.
	_, a, err := buildLoad(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := buildLoad(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := a.WriteJSON(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("same seed produced different loads")
	}
}
