// Package octopus is a production-oriented implementation of the Octopus
// family of multi-hop traffic schedulers for general circuit-switched
// networks, reproducing Gupta, Curran and Zhan, "Near-Optimal Multihop
// Scheduling in General Circuit-Switched Networks" (CoNEXT 2020).
//
// # The problem
//
// A circuit-switched fabric (optical or free-space-optical) connects n
// nodes; at any instant the set of active links must form a matching, and
// switching to a different matching costs a reconfiguration delay Δ. Given
// a multi-hop traffic load and a time window W, the multi-hop scheduling
// (MHS) problem asks for a sequence of configurations (M₁,α₁),(M₂,α₂),…
// with Σ(αₖ+Δ) ≤ W maximizing the number of packets delivered.
//
// # Quick start
//
//	g := octopus.Complete(100)                     // a 100-node crossbar fabric
//	load, _ := octopus.Synthetic(g, octopus.DefaultSyntheticParams(100, 10000), rng)
//	res, _ := octopus.Schedule(g, load, octopus.Options{Window: 10000, Delta: 20})
//	meas, _ := octopus.Measure(g, load, res.Schedule, octopus.SimOptions{})
//	fmt.Printf("delivered %.1f%%\n", 100*meas.DeliveredFraction())
//
// Options select the paper's variants: Octopus-B (binary α search),
// Octopus-G (greedy matching), Octopus-e (ε hop weights), multi-hop
// chaining, K ports per node, bidirectional fabrics, and Octopus+ joint
// routing/scheduling. The experiment package regenerates every figure of
// the paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
//
// This package is a thin façade over the implementation packages under
// internal/ so downstream users have a single import.
package octopus

import (
	"math/rand"

	"octopus/internal/algo"
	"octopus/internal/baseline"
	"octopus/internal/core"
	"octopus/internal/daemon"
	"octopus/internal/engine"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/hybrid"
	"octopus/internal/online"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// Fabric and traffic model types.
type (
	// Network is the directed circuit fabric: an edge (i, j) is a potential
	// link from node i's output port to node j's input port.
	Network = graph.Digraph
	// UNetwork is an undirected fabric with bidirectional (full-duplex)
	// links (paper §7).
	UNetwork = graph.Ugraph
	// Link is one directed potential link.
	Link = graph.Edge
	// Route is a flow route: the node sequence from source to destination.
	Route = traffic.Route
	// Flow is a traffic flow: Size packets from Src to Dst over one or
	// more candidate Routes.
	Flow = traffic.Flow
	// Load is a traffic load: the set of flows to schedule.
	Load = traffic.Load
	// SyntheticParams configures the synthetic data-center workload
	// generator of the paper's §8.
	SyntheticParams = traffic.SyntheticParams
	// TraceKind selects a trace-like workload generator (FBHadoop, FBWeb,
	// FBDatabase, MSHeatmap).
	TraceKind = traffic.TraceKind
)

// Scheduling types.
type (
	// Options configures the scheduler; see the core package for the
	// variant knobs.
	Options = core.Options
	// Scheduler runs the greedy loop incrementally (Step) or to
	// completion (Run).
	Scheduler = core.Scheduler
	// Result is a completed plan: the schedule plus its bookkeeping.
	Result = core.Result
	// Configuration is one (M, α) network configuration.
	Configuration = schedule.Configuration
	// ConfigSchedule is a sequence of configurations with a
	// reconfiguration delay.
	ConfigSchedule = schedule.Schedule
	// SimOptions configures the packet-level measurement simulator.
	SimOptions = simulate.Options
	// SimResult is the simulator's measurement of a schedule.
	SimResult = simulate.Result
	// HybridResult is the outcome of hybrid circuit/packet scheduling.
	HybridResult = hybrid.Result
)

// Matcher and α-search selectors (paper variants).
const (
	MatcherExact  = core.MatcherExact
	MatcherGreedy = core.MatcherGreedy
	AlphaFull     = core.AlphaFull
	AlphaBinary   = core.AlphaBinary
)

// Trace kinds for the trace-like generators.
const (
	FBHadoop   = traffic.FBHadoop
	FBWeb      = traffic.FBWeb
	FBDatabase = traffic.FBDatabase
	MSHeatmap  = traffic.MSHeatmap
)

// New returns an empty directed fabric over n nodes.
func New(n int) *Network { return graph.New(n) }

// Complete returns the complete directed fabric over n nodes (a single
// n x n crossbar, the implicit topology of prior one-hop work).
func Complete(n int) *Network { return graph.Complete(n) }

// NewUNetwork returns an empty undirected fabric over n nodes for the
// bidirectional-link model of §7.
func NewUNetwork(n int) *UNetwork { return graph.NewU(n) }

// RandomPartial returns a strongly connected partial fabric with
// approximately deg out-links per node (an FSO-style topology).
func RandomPartial(n, deg int, rng *rand.Rand) *Network {
	return graph.RandomPartial(n, deg, rng)
}

// Torus returns a directed 2D torus fabric over rows*cols nodes.
func Torus(rows, cols int) *Network { return graph.Torus(rows, cols) }

// ChordRing returns a directed ring over n nodes with skip links of the
// given strides (a Chord-like low-diameter partial fabric).
func ChordRing(n int, strides ...int) *Network { return graph.ChordRing(n, strides...) }

// DefaultSyntheticParams returns the paper's §8 workload parameters for an
// n-node network and the given window.
func DefaultSyntheticParams(n, window int) SyntheticParams {
	return traffic.DefaultSyntheticParams(n, window)
}

// Synthetic generates a synthetic data-center load over fabric g.
func Synthetic(g *Network, p SyntheticParams, rng *rand.Rand) (*Load, error) {
	return traffic.Synthetic(g, p, rng)
}

// TraceLike generates a load mimicking the published characteristics of
// the Facebook/Microsoft traces used in the paper's evaluation.
func TraceLike(g *Network, kind TraceKind, window int, rng *rand.Rand) (*Load, error) {
	return traffic.TraceLike(g, kind, window, traffic.SyntheticParams{}, rng)
}

// NewScheduler returns an Octopus scheduler for stepwise use.
func NewScheduler(g *Network, load *Load, opt Options) (*Scheduler, error) {
	return core.New(g, load, opt)
}

// Schedule plans a configuration sequence for the MHS instance (g, load):
// the paper's Octopus algorithm (or a variant selected by opt).
func Schedule(g *Network, load *Load, opt Options) (*Result, error) {
	s, err := core.New(g, load, opt)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// ScheduleBidirectional plans over an undirected fabric with bidirectional
// links (paper §7).
func ScheduleBidirectional(u *UNetwork, load *Load, opt Options) (*Result, error) {
	s, err := core.NewBidirectional(u, load, opt)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Measure replays a schedule in the packet-level simulator and reports
// delivered packets, packet-hops, ψ, and link utilization.
func Measure(g *Network, load *Load, sch *ConfigSchedule, opt SimOptions) (*SimResult, error) {
	return simulate.Run(g, load, sch, opt)
}

// EclipseBased runs the paper's baseline: the one-hop Eclipse scheduler
// over the unordered hop decomposition, replayed on the multi-hop load.
func EclipseBased(g *Network, load *Load, window, delta int) (*SimResult, error) {
	sim, _, err := baseline.EclipseBased(g, load, window, delta, core.MatcherExact)
	return sim, err
}

// UpperBound computes the paper's UB upper bound for an MHS instance.
func UpperBound(g *Network, load *Load, window, delta int) (*baseline.UBResult, error) {
	return baseline.UpperBound(g, load, window, delta, core.MatcherExact)
}

// RotorNet measures the traffic-agnostic RotorNet schedule on the load.
func RotorNet(g *Network, load *Load, window, delta int) (*SimResult, error) {
	sim, _, err := baseline.RotorNet(g, load, window, delta, 0)
	return sim, err
}

// HybridSchedule first absorbs traffic into a packet-switched network with
// per-port rate packetRate (packets per slot), then runs Octopus on the
// remainder (paper §7).
func HybridSchedule(g *Network, load *Load, opt Options, packetRate float64) (*HybridResult, error) {
	return hybrid.Schedule(g, load, opt, packetRate)
}

// Makespan returns the smallest window that fully serves the load, by
// binary search with Octopus as the feasibility oracle (paper §7).
func Makespan(g *Network, load *Load, opt Options) (int, *Result, error) {
	return hybrid.Makespan(g, load, opt)
}

// WindowResult is the outcome of one window of a rolling run.
type WindowResult = core.WindowResult

// RunWindows schedules the load across successive windows, carrying
// undelivered packets (from their current positions) into the next window —
// the paper's continuous-operation workflow.
func RunWindows(g *Network, load *Load, opt Options, windows int) ([]WindowResult, error) {
	return core.RunWindows(g, load, opt, windows)
}

// TotalDelivered sums the packets delivered across rolling windows.
func TotalDelivered(ws []WindowResult) int { return core.TotalDelivered(ws) }

// Online-arrival scheduling (the §9 future-work direction; see the online
// package for details).
type (
	// Arrival is a flow plus the slot at which the controller learns of it.
	Arrival = online.Arrival
	// OnlineOptions configures an online run (Core.Window is the epoch).
	OnlineOptions = online.Options
	// OnlineResult reports per-epoch statistics and per-flow completion.
	OnlineResult = online.Result
)

// ScheduleOnline schedules dynamically arriving flows in epochs of one
// window each, carrying backlog forward between epochs.
func ScheduleOnline(g *Network, arrivals []Arrival, opt OnlineOptions) (*OnlineResult, error) {
	return online.Run(g, arrivals, opt)
}

// Queue-state adaptive scheduling (the related-work baseline [37]).
type (
	// AdaptiveOptions configures the MaxWeight adaptive policy.
	AdaptiveOptions = online.AdaptiveOptions
	// AdaptiveResult reports a MaxWeight adaptive run.
	AdaptiveResult = online.AdaptiveResult
)

// MaxWeightAdaptive runs the queue-state-driven MaxWeight policy with
// fixed hold durations and optional reconfiguration hysteresis.
func MaxWeightAdaptive(g *Network, arrivals []Arrival, opt AdaptiveOptions) (*AdaptiveResult, error) {
	return online.MaxWeightAdaptive(g, arrivals, opt)
}

// The algorithm registry: every scheduler, baseline, and bound behind one
// uniform interface (see DESIGN.md §10). The specialized entry points above
// remain for callers who want a variant's native result type; the registry
// is the uniform comparison pipeline the CLIs, experiments, and the
// differential harness run on.
type (
	// Algorithm is one registered algorithm: a name, a one-line
	// description, a kind (offline / online / bound), and a uniform Run.
	Algorithm = algo.Algorithm
	// AlgoKind classifies an algorithm (offline schedule producer, online
	// policy, or analytic bound).
	AlgoKind = algo.Kind
	// AlgoParams is the shared parameter set accepted by every registered
	// algorithm; each consumes the fields it understands.
	AlgoParams = algo.Params
	// AlgoOutcome is the uniform, verify-ready result of a registry run.
	AlgoOutcome = algo.Outcome
)

// Algorithms returns every registered algorithm in canonical order.
func Algorithms() []Algorithm { return algo.Registry() }

// AlgorithmNames returns the registered algorithm names in canonical order.
func AlgorithmNames() []string { return algo.Names() }

// LookupAlgorithm finds a registered algorithm by name.
func LookupAlgorithm(name string) (Algorithm, bool) { return algo.Lookup(name) }

// RunAlgorithm parses a "name[:key=value,...]" spec (e.g.
// "octopus-e:eps64=8" or "maxweight:hold=50"), overlays the spec options on
// base, and runs the algorithm on the instance (g, load).
func RunAlgorithm(spec string, g *Network, load *Load, base AlgoParams) (*AlgoOutcome, error) {
	a, p, err := algo.ParseSpec(spec, base)
	if err != nil {
		return nil, err
	}
	return a.Run(g, load, p)
}

// Fault tolerance and proactive multipath redundancy (DESIGN.md §13–14):
// slot-stamped failure traces replayed against the epoch-based online loop,
// reactive repair of broken flows at epoch boundaries, and proactive
// provisioning of critical flows with pairwise edge-disjoint route copies
// whose delivery is deduplicated per copy group.
type (
	// FaultTrace is a deterministic, slot-stamped failure/recovery script.
	FaultTrace = fault.Trace
	// FaultEvent is one failure or recovery event of a trace.
	FaultEvent = fault.Event
	// FaultOptions configures a fault-tolerant online run.
	FaultOptions = online.FaultOptions
	// FaultResult reports a degraded online run: per-epoch degradation,
	// drops, and redundancy-deduplicated delivery.
	FaultResult = online.FaultResult
	// Redundancy ties the copy flows of an expanded redundant load into
	// groups that count once at delivery.
	Redundancy = traffic.Redundancy
	// RedundantFaultOptions layers proactive copies — and optionally
	// disables reactive repair — over FaultOptions.
	RedundantFaultOptions = online.RedundantFaultOptions
)

// DisjointRoutes extracts up to k pairwise edge-disjoint near-shortest
// routes from src to dst (Bhandari's construction), each at most maxHops
// hops. Deterministic for a fixed fabric; fewer than k routes are returned
// when the fabric cannot support more.
func DisjointRoutes(g *Network, src, dst, k, maxHops int) []Route {
	paths := graph.DisjointRoutes(g, src, dst, k, maxHops)
	routes := make([]Route, len(paths))
	for i, p := range paths {
		routes[i] = Route(p)
	}
	return routes
}

// MarkCritical marks the frac largest flows of the load Critical (the ones
// proactive redundancy will protect) and returns how many were marked.
func MarkCritical(load *Load, frac float64) int { return traffic.MarkCritical(load, frac) }

// Redundant returns a copy of the load in which every Critical flow is
// provisioned with up to k−1 pairwise edge-disjoint alternates of its
// primary route, each at most maxStretch times the primary's hop count.
func Redundant(g *Network, load *Load, k int, maxStretch float64) *Load {
	return traffic.Redundant(g, load, k, maxStretch)
}

// ExpandRedundant splits every provisioned flow into one single-route copy
// flow per route plus the Redundancy group map the simulator and the fault
// loop deduplicate with.
func ExpandRedundant(load *Load) (*Load, *Redundancy) { return traffic.ExpandRedundant(load) }

// CorrelatedTrace builds a failure trace of correlated bursts: burst i
// takes down every link incident to nodes[i] at slot start+i*period and
// restores them duration slots later.
func CorrelatedTrace(g *Network, nodes []int, start, period, duration int) *FaultTrace {
	return fault.CorrelatedTrace(g, nodes, start, period, duration)
}

// RunFaulty schedules the arrivals over successive epochs while the fabric
// degrades and recovers according to trace, reactively repairing broken
// flows at each epoch boundary.
func RunFaulty(g *Network, arrivals []Arrival, trace *FaultTrace, opt FaultOptions) (*FaultResult, error) {
	return online.RunFaulty(g, arrivals, trace, opt)
}

// RunRedundantFaulty layers proactive multipath redundancy (an expanded
// arrival stream plus its Redundancy groups) under the reactive
// fault-tolerant loop; see RedundantFaultOptions.
func RunRedundantFaulty(g *Network, arrivals []Arrival, trace *FaultTrace, opt RedundantFaultOptions) (*FaultResult, error) {
	return online.RunRedundantFaulty(g, arrivals, trace, opt)
}

// The stepwise engine and the scheduler daemon behind cmd/mhsd (see
// DESIGN.md §15). The batch entry points above (ScheduleOnline, RunFaulty,
// RunRedundantFaulty) are thin drivers over the same Pipeline.
type (
	// Pipeline is the mutable epoch state machine: submit and cancel flows
	// at any time, then alternate PlanNext (compute epoch k+1's
	// configuration while epoch k executes) and Commit.
	Pipeline = engine.Pipeline
	// PipelineConfig configures a Pipeline.
	PipelineConfig = engine.Config
	// PipelinePlan is one planned-but-uncommitted epoch.
	PipelinePlan = engine.Plan
	// PipelineTotals is the pipeline's cumulative delivery accounting.
	PipelineTotals = engine.Totals
	// DaemonOptions configures a scheduler daemon Server.
	DaemonOptions = daemon.Options
	// DaemonServer is one long-lived scheduler service: an epoch pipeline
	// driven against wall-clock time plus the HTTP flow-submission API.
	DaemonServer = daemon.Server
)

// NewPipeline builds the stepwise epoch engine over g.
func NewPipeline(g *Network, cfg PipelineConfig) (*Pipeline, error) { return engine.New(g, cfg) }

// NewDaemon builds a scheduler daemon over opt.Fabric; drive it with
// (*DaemonServer).Run on a listener.
func NewDaemon(opt DaemonOptions) (*DaemonServer, error) { return daemon.New(opt) }
