// Hybrid: the §7 extensions. Schedules traffic on a hybrid
// circuit/packet fabric (the packet network absorbs small flows first,
// Octopus handles the bursts), sweeps the packet-network rate, and solves
// the makespan-minimization problem (the smallest window that fully
// serves a load) by binary search.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"octopus"
)

func main() {
	var (
		nodes  = flag.Int("n", 16, "network nodes")
		window = flag.Int("window", 800, "window W in slots")
		delta  = flag.Int("delta", 20, "reconfiguration delay Δ in slots")
		seed   = flag.Int64("seed", 5, "RNG seed")
	)
	flag.Parse()

	g := octopus.Complete(*nodes)
	rng := rand.New(rand.NewSource(*seed))
	load, err := octopus.Synthetic(g, octopus.DefaultSyntheticParams(*nodes, *window), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load: %d flows, %d packets over %d nodes\n\n",
		len(load.Flows), load.TotalPackets(), *nodes)

	// Sweep the packet network's relative line rate (the paper assumes
	// roughly an order of magnitude below the circuit network).
	fmt.Println("hybrid scheduling: packet network absorbs small flows first")
	for _, rate := range []float64{0, 0.05, 0.1, 0.2} {
		res, err := octopus.HybridSchedule(g, load.Clone(), octopus.Options{
			Window: *window, Delta: *delta,
		}, rate)
		if err != nil {
			log.Fatal(err)
		}
		circuit := 0
		if res.Circuit != nil {
			circuit = res.Circuit.Delivered
		}
		fmt.Printf("  packet rate %.2f: %5.1f%% delivered (%d via packet net, %d via circuit)\n",
			rate, 100*res.DeliveredFraction(), res.PacketDelivered, circuit)
	}

	// Makespan minimization: the shortest window that fully serves a
	// (lighter) load.
	small, err := octopus.Synthetic(g, octopus.SyntheticParams{
		NL: 1, NS: 3, CL: 140, CS: 60, MinHops: 1, MaxHops: 3,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	w, res, err := octopus.Makespan(g, small, octopus.Options{Delta: *delta})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmakespan: %d packets fully served in W = %d slots (%d configurations)\n",
		small.TotalPackets(), w, len(res.Schedule.Configs))
}
