// Quickstart: build a small circuit-switched fabric, generate a traffic
// load, plan a schedule with Octopus, and measure it with the packet-level
// simulator.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"octopus"
)

func main() {
	const (
		nodes  = 16
		window = 1000 // W: scheduling window in time slots
		delta  = 20   // Δ: reconfiguration delay in time slots
	)

	// A complete fabric models a single n x n circuit switch. Partial
	// fabrics (octopus.RandomPartial) model FSO-style networks where
	// multi-hop routing is unavoidable.
	g := octopus.Complete(nodes)

	// The paper's synthetic data-center workload: a few large flows and
	// many small flows per port, with routes of 1-3 hops.
	rng := rand.New(rand.NewSource(42))
	load, err := octopus.Synthetic(g, octopus.DefaultSyntheticParams(nodes, window), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load: %d flows, %d packets, max route %d hops\n",
		len(load.Flows), load.TotalPackets(), load.MaxHops())

	// Plan: Octopus greedily picks the configuration (matching, duration)
	// with the highest benefit per unit cost until the window is full.
	res, err := octopus.Schedule(g, load, octopus.Options{Window: window, Delta: delta})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d configurations, cost %d of %d slots\n",
		len(res.Schedule.Configs), res.Schedule.Cost(), window)
	for i, cfg := range res.Schedule.Configs {
		if i == 3 {
			fmt.Printf("  ... (%d more)\n", len(res.Schedule.Configs)-3)
			break
		}
		fmt.Printf("  %d: %d links for %d slots\n", i, len(cfg.Links), cfg.Alpha)
	}

	// Measure: replay the schedule slot by slot.
	meas, err := octopus.Measure(g, load, res.Schedule, octopus.SimOptions{Window: window})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered: %d/%d packets (%.1f%%)\n",
		meas.Delivered, meas.TotalPackets, 100*meas.DeliveredFraction())
	fmt.Printf("link utilization: %.1f%%\n", 100*meas.Utilization())

	// How good is that? Compare with the paper's UB upper bound.
	ub, err := octopus.UpperBound(g, load, window, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UB upper bound: %.1f%% delivered\n", 100*ub.DeliveredFraction())
}
