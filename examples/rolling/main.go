// Rolling: continuous operation across scheduling windows. A heavily
// loaded fabric cannot serve everything in one window; the paper notes
// that undelivered packets are not lost — they are "considered for
// continued routing in the next time window". This example schedules a
// bursty load across successive windows, carrying residual packets (from
// their current positions in the network) forward until everything is
// delivered.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"octopus"
)

func main() {
	var (
		nodes  = flag.Int("n", 16, "network nodes")
		window = flag.Int("window", 400, "window W in slots")
		delta  = flag.Int("delta", 20, "reconfiguration delay Δ in slots")
		burst  = flag.Int("burst", 3, "offered load as a multiple of one window's per-port capacity")
		seed   = flag.Int64("seed", 11, "RNG seed")
	)
	flag.Parse()

	g := octopus.Complete(*nodes)
	rng := rand.New(rand.NewSource(*seed))
	// Offer several windows' worth of traffic at once (a burst).
	p := octopus.DefaultSyntheticParams(*nodes, *window**burst)
	load, err := octopus.Synthetic(g, p, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("burst: %d packets over %d nodes (~%dx one window's per-port capacity)\n\n",
		load.TotalPackets(), *nodes, *burst)

	ws, err := octopus.RunWindows(g, load, octopus.Options{Window: *window, Delta: *delta}, 100)
	if err != nil {
		log.Fatal(err)
	}
	cum := 0
	for i, w := range ws {
		cum += w.Result.Delivered
		fmt.Printf("window %2d: offered %6d, delivered %6d (%5.1f%% cumulative), residual %6d, %d configs\n",
			i+1, w.Offered, w.Result.Delivered,
			100*float64(cum)/float64(load.TotalPackets()),
			w.Residual, len(w.Result.Schedule.Configs))
	}
	fmt.Printf("\nburst fully drained in %d windows (%d slots)\n",
		len(ws), len(ws)**window)
}
