// Multiroute: joint routing and scheduling with Octopus+ on a partial
// (FSO-style) fabric where a complete topology is infeasible and flows
// carry several candidate routes. Compares Octopus+ against committing to
// a random route per flow (Octopus-random) and against always taking the
// shortest route, demonstrating the value of scheduling-aware route
// selection and direct-link backtracking (paper §6, Fig 9b).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"octopus"
)

func main() {
	var (
		nodes  = flag.Int("n", 24, "network nodes")
		deg    = flag.Int("deg", 8, "fabric out-degree per node (partial FSO-style topology)")
		window = flag.Int("window", 1200, "window W in slots")
		delta  = flag.Int("delta", 20, "reconfiguration delay Δ in slots")
		routes = flag.Int("routes", 10, "candidate routes per flow")
		seed   = flag.Int64("seed", 3, "RNG seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := octopus.RandomPartial(*nodes, *deg, rng)
	fmt.Printf("partial fabric: %d nodes, %d of %d possible links\n",
		g.N(), g.M(), g.N()*(g.N()-1))

	p := octopus.DefaultSyntheticParams(*nodes, *window)
	p.RouteChoices = *routes
	load, err := octopus.Synthetic(g, p, rng)
	if err != nil {
		log.Fatal(err)
	}
	multi := 0
	for _, f := range load.Flows {
		if len(f.Routes) > 1 {
			multi++
		}
	}
	fmt.Printf("load: %d flows (%d with route choices), %d packets\n",
		len(load.Flows), multi, load.TotalPackets())

	// Octopus+: route choice at the first hop, direct-link backtracking.
	plus, err := octopus.Schedule(g, load, octopus.Options{
		Window: *window, Delta: *delta, MultiRoute: true, KeepTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := plus.VerifyPlan(); err != nil {
		log.Fatalf("plan verification failed: %v", err)
	}
	fmt.Printf("Octopus+        : %5.1f%% delivered (plan verified: capacity + hop ordering)\n",
		pct(plus.Delivered, plus.TotalPackets))

	// Octopus-random: commit each flow to a uniformly random route.
	rand1 := load.Clone()
	for i := range rand1.Flows {
		f := &rand1.Flows[i]
		f.Routes = []octopus.Route{f.Routes[rng.Intn(len(f.Routes))]}
	}
	measure(g, rand1, *window, *delta, "Octopus-random  ")

	// Shortest-route: commit each flow to its shortest candidate.
	short := load.Clone()
	for i := range short.Flows {
		f := &short.Flows[i]
		best := f.Routes[0]
		for _, r := range f.Routes[1:] {
			if r.Hops() < best.Hops() {
				best = r
			}
		}
		f.Routes = []octopus.Route{best}
	}
	measure(g, short, *window, *delta, "Octopus-shortest")

	// Proactive redundancy on the same partial fabric: protect the largest
	// half of the committed flows with an edge-disjoint backup route, then
	// knock out every link of one node mid-window and compare against the
	// unprotected load — with reactive repair disabled, only the provisioned
	// spatial diversity can save traffic routed through the victim.
	prot := short.Clone()
	marked := octopus.MarkCritical(prot, 0.5)
	prot = octopus.Redundant(g, prot, 2, 2.0)
	expanded, red := octopus.ExpandRedundant(prot)
	victim := rng.Intn(*nodes)
	burst := octopus.CorrelatedTrace(g, []int{victim}, *window/2, *window, *window)
	fmt.Printf("\nredundancy: %d of %d flows protected with a disjoint copy; node %d's %d links fail at slot %d\n",
		marked, len(short.Flows), victim, len(g.Out(victim))+len(g.In(victim)), *window/2)
	fopt := octopus.FaultOptions{
		Options:       octopus.OnlineOptions{Core: octopus.Options{Window: *window, Delta: *delta}, MaxEpochs: 6},
		SkipReference: true,
	}
	bare, err := octopus.RunRedundantFaulty(g, arrivals(short), burst, octopus.RedundantFaultOptions{
		FaultOptions: fopt, NoReactive: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	protRes, err := octopus.RunRedundantFaulty(g, arrivals(expanded), burst, octopus.RedundantFaultOptions{
		FaultOptions: fopt, Redundancy: red, NoReactive: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected     : %5.1f%% delivered, %d packets dropped\n",
		100*bare.UniqueDeliveredFraction(), bare.Dropped)
	fmt.Printf("with copies     : %5.1f%% delivered, %d packets dropped, %d survived via copies (psi overhead %.2fx)\n",
		100*protRes.UniqueDeliveredFraction(), protRes.Dropped, protRes.SurvivedRedundant,
		psiRatio(protRes, bare))
}

// arrivals offers every flow of the load at slot 0.
func arrivals(load *octopus.Load) []octopus.Arrival {
	arr := make([]octopus.Arrival, len(load.Flows))
	for i, f := range load.Flows {
		arr[i] = octopus.Arrival{Flow: f, At: 0}
	}
	return arr
}

// psiRatio is the schedule-effort overhead of the protected run.
func psiRatio(prot, bare *octopus.FaultResult) float64 {
	if bare.Psi == 0 {
		return 1
	}
	return float64(prot.Psi) / float64(bare.Psi)
}

func measure(g *octopus.Network, load *octopus.Load, window, delta int, name string) {
	res, err := octopus.Schedule(g, load, octopus.Options{Window: window, Delta: delta})
	if err != nil {
		log.Fatal(err)
	}
	meas, err := octopus.Measure(g, load, res.Schedule, octopus.SimOptions{Window: window})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %5.1f%% delivered\n", name, 100*meas.DeliveredFraction())
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
