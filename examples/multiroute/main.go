// Multiroute: joint routing and scheduling with Octopus+ on a partial
// (FSO-style) fabric where a complete topology is infeasible and flows
// carry several candidate routes. Compares Octopus+ against committing to
// a random route per flow (Octopus-random) and against always taking the
// shortest route, demonstrating the value of scheduling-aware route
// selection and direct-link backtracking (paper §6, Fig 9b).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"octopus"
)

func main() {
	var (
		nodes  = flag.Int("n", 24, "network nodes")
		deg    = flag.Int("deg", 8, "fabric out-degree per node (partial FSO-style topology)")
		window = flag.Int("window", 1200, "window W in slots")
		delta  = flag.Int("delta", 20, "reconfiguration delay Δ in slots")
		routes = flag.Int("routes", 10, "candidate routes per flow")
		seed   = flag.Int64("seed", 3, "RNG seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := octopus.RandomPartial(*nodes, *deg, rng)
	fmt.Printf("partial fabric: %d nodes, %d of %d possible links\n",
		g.N(), g.M(), g.N()*(g.N()-1))

	p := octopus.DefaultSyntheticParams(*nodes, *window)
	p.RouteChoices = *routes
	load, err := octopus.Synthetic(g, p, rng)
	if err != nil {
		log.Fatal(err)
	}
	multi := 0
	for _, f := range load.Flows {
		if len(f.Routes) > 1 {
			multi++
		}
	}
	fmt.Printf("load: %d flows (%d with route choices), %d packets\n",
		len(load.Flows), multi, load.TotalPackets())

	// Octopus+: route choice at the first hop, direct-link backtracking.
	plus, err := octopus.Schedule(g, load, octopus.Options{
		Window: *window, Delta: *delta, MultiRoute: true, KeepTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := plus.VerifyPlan(); err != nil {
		log.Fatalf("plan verification failed: %v", err)
	}
	fmt.Printf("Octopus+        : %5.1f%% delivered (plan verified: capacity + hop ordering)\n",
		pct(plus.Delivered, plus.TotalPackets))

	// Octopus-random: commit each flow to a uniformly random route.
	rand1 := load.Clone()
	for i := range rand1.Flows {
		f := &rand1.Flows[i]
		f.Routes = []octopus.Route{f.Routes[rng.Intn(len(f.Routes))]}
	}
	measure(g, rand1, *window, *delta, "Octopus-random  ")

	// Shortest-route: commit each flow to its shortest candidate.
	short := load.Clone()
	for i := range short.Flows {
		f := &short.Flows[i]
		best := f.Routes[0]
		for _, r := range f.Routes[1:] {
			if r.Hops() < best.Hops() {
				best = r
			}
		}
		f.Routes = []octopus.Route{best}
	}
	measure(g, short, *window, *delta, "Octopus-shortest")
}

func measure(g *octopus.Network, load *octopus.Load, window, delta int, name string) {
	res, err := octopus.Schedule(g, load, octopus.Options{Window: window, Delta: delta})
	if err != nil {
		log.Fatal(err)
	}
	meas, err := octopus.Measure(g, load, res.Schedule, octopus.SimOptions{Window: window})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %5.1f%% delivered\n", name, 100*meas.DeliveredFraction())
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
