// Datacenter: schedule realistic data-center traffic mixes on a hybrid
// circuit fabric and compare every algorithm in the registry — Octopus and
// its variants against the Eclipse-Based, Solstice, and RotorNet baselines,
// the MaxWeight online policy, and the UB upper bound — over both the
// synthetic workload and the trace-like loads standing in for the
// Facebook/Microsoft traces.
//
// The comparison loop is registry-driven: it enumerates
// octopus.Algorithms() rather than hand-rolling one block per algorithm,
// so a newly registered algorithm shows up here with no code change.
//
// Flags scale the scenario; defaults run in a few seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"octopus"
)

func main() {
	var (
		nodes  = flag.Int("n", 24, "network nodes")
		window = flag.Int("window", 1500, "window W in slots")
		delta  = flag.Int("delta", 20, "reconfiguration delay Δ in slots")
		seed   = flag.Int64("seed", 7, "RNG seed")
	)
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\talgorithm\tkind\tdelivered%\tutilization%")

	workloads := []struct {
		name string
		gen  func(g *octopus.Network, rng *rand.Rand) (*octopus.Load, error)
	}{
		{"synthetic", func(g *octopus.Network, rng *rand.Rand) (*octopus.Load, error) {
			return octopus.Synthetic(g, octopus.DefaultSyntheticParams(*nodes, *window), rng)
		}},
		{"fb-hadoop", trace(octopus.FBHadoop, *window)},
		{"fb-web", trace(octopus.FBWeb, *window)},
		{"fb-db", trace(octopus.FBDatabase, *window)},
		{"ms-heatmap", trace(octopus.MSHeatmap, *window)},
	}

	params := octopus.AlgoParams{Window: *window, Delta: *delta, Seed: *seed}
	for _, wl := range workloads {
		g := octopus.Complete(*nodes)
		rng := rand.New(rand.NewSource(*seed))
		load, err := wl.gen(g, rng)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range octopus.Algorithms() {
			out, err := a.Run(g, load, params)
			if err != nil {
				log.Fatalf("%s on %s: %v", a.Name(), wl.name, err)
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%.1f\t%.1f\n", wl.name, out.Algo, a.Kind(),
				100*out.DeliveredFraction(), 100*out.Utilization())
		}
	}
	w.Flush()
}

func trace(kind octopus.TraceKind, window int) func(*octopus.Network, *rand.Rand) (*octopus.Load, error) {
	return func(g *octopus.Network, rng *rand.Rand) (*octopus.Load, error) {
		return octopus.TraceLike(g, kind, window, rng)
	}
}
