// Datacenter: schedule realistic data-center traffic mixes on a hybrid
// circuit fabric and compare every algorithm the paper evaluates —
// Octopus and its variants against the Eclipse-Based and RotorNet
// baselines and the UB upper bound — over both the synthetic workload and
// the trace-like loads standing in for the Facebook/Microsoft traces.
//
// Flags scale the scenario; defaults run in a few seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"octopus"
)

func main() {
	var (
		nodes  = flag.Int("n", 24, "network nodes")
		window = flag.Int("window", 1500, "window W in slots")
		delta  = flag.Int("delta", 20, "reconfiguration delay Δ in slots")
		seed   = flag.Int64("seed", 7, "RNG seed")
	)
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\talgorithm\tdelivered%\tutilization%")

	workloads := []struct {
		name string
		gen  func(g *octopus.Network, rng *rand.Rand) (*octopus.Load, error)
	}{
		{"synthetic", func(g *octopus.Network, rng *rand.Rand) (*octopus.Load, error) {
			return octopus.Synthetic(g, octopus.DefaultSyntheticParams(*nodes, *window), rng)
		}},
		{"fb-hadoop", trace(octopus.FBHadoop, *window)},
		{"fb-web", trace(octopus.FBWeb, *window)},
		{"fb-db", trace(octopus.FBDatabase, *window)},
		{"ms-heatmap", trace(octopus.MSHeatmap, *window)},
	}

	for _, wl := range workloads {
		g := octopus.Complete(*nodes)
		rng := rand.New(rand.NewSource(*seed))
		load, err := wl.gen(g, rng)
		if err != nil {
			log.Fatal(err)
		}

		run := func(name string, opt octopus.Options) {
			res, err := octopus.Schedule(g, load, opt)
			if err != nil {
				log.Fatal(err)
			}
			meas, err := octopus.Measure(g, load, res.Schedule, octopus.SimOptions{
				Window: *window, Epsilon64: opt.Epsilon64,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\n", wl.name, name,
				100*meas.DeliveredFraction(), 100*meas.Utilization())
		}

		base := octopus.Options{Window: *window, Delta: *delta}
		run("Octopus", base)

		gOpt := base
		gOpt.Matcher = octopus.MatcherGreedy
		run("Octopus-G", gOpt)

		bOpt := base
		bOpt.AlphaSearch = octopus.AlphaBinary
		run("Octopus-B", bOpt)

		eOpt := base
		eOpt.Epsilon64 = 4
		run("Octopus-e", eOpt)

		ecl, err := octopus.EclipseBased(g, load, *window, *delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\tEclipse-Based\t%.1f\t%.1f\n", wl.name,
			100*ecl.DeliveredFraction(), 100*ecl.Utilization())

		rot, err := octopus.RotorNet(g, load, *window, *delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\tRotorNet\t%.1f\t%.1f\n", wl.name,
			100*rot.DeliveredFraction(), 100*rot.Utilization())

		ub, err := octopus.UpperBound(g, load, *window, *delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\tUB (bound)\t%.1f\t%.1f\n", wl.name,
			100*ub.DeliveredFraction(), 100*ub.Utilization())
	}
	w.Flush()
}

func trace(kind octopus.TraceKind, window int) func(*octopus.Network, *rand.Rand) (*octopus.Load, error) {
	return func(g *octopus.Network, rng *rand.Rand) (*octopus.Load, error) {
		return octopus.TraceLike(g, kind, window, rng)
	}
}
