// Online: flows arrive over time (the paper's §9 future-work setting).
// Compares two controllers on the same arrival sequence: epoch-based
// Octopus (replan each window from the known backlog, carrying residual
// packets forward) and the queue-state-driven MaxWeight adaptive policy
// from the related work, with and without reconfiguration hysteresis.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"octopus"
)

func main() {
	var (
		nodes  = flag.Int("n", 16, "network nodes")
		window = flag.Int("window", 400, "epoch length / MaxWeight horizon granularity")
		delta  = flag.Int("delta", 20, "reconfiguration delay Δ in slots")
		epochs = flag.Int("epochs", 6, "arrival spread in epochs")
		seed   = flag.Int64("seed", 13, "RNG seed")
	)
	flag.Parse()

	g := octopus.Complete(*nodes)
	rng := rand.New(rand.NewSource(*seed))
	load, err := octopus.Synthetic(g, octopus.DefaultSyntheticParams(*nodes, *window*2), rng)
	if err != nil {
		log.Fatal(err)
	}
	var arrivals []octopus.Arrival
	for _, f := range load.Flows {
		arrivals = append(arrivals, octopus.Arrival{
			Flow: f,
			At:   rng.Intn(*epochs) * *window,
		})
	}
	horizon := (*epochs + 6) * *window
	fmt.Printf("%d flows, %d packets arriving over %d epochs of %d slots\n\n",
		len(arrivals), load.TotalPackets(), *epochs, *window)

	oct, err := octopus.ScheduleOnline(g, arrivals, octopus.OnlineOptions{
		Core:      octopus.Options{Window: *window, Delta: *delta},
		MaxEpochs: horizon / *window,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Octopus epochs      : %5.1f%% delivered in %d epochs, mean completion %.1f epochs\n",
		100*float64(oct.Delivered)/float64(oct.Total), len(oct.Epochs),
		oct.MeanCompletionEpochs(arrivals, *window))

	for _, hys := range []int{0, 96} {
		res, err := octopus.MaxWeightAdaptive(g, arrivals, octopus.AdaptiveOptions{
			Horizon:      horizon,
			Delta:        *delta,
			Hold:         10 * *delta,
			Hysteresis64: hys,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := "MaxWeight           "
		if hys > 0 {
			name = "MaxWeight (hys 1.5x)"
		}
		fmt.Printf("%s: %5.1f%% delivered, %d reconfigurations\n",
			name, 100*res.DeliveredFraction(), res.Reconfigs)
	}
}
