// Daemon: drive the scheduler as a long-lived service (DESIGN.md §15).
// Starts an in-process daemon on an ephemeral port — exactly what cmd/mhsd
// wraps behind flags — then plays an HTTP client against it: stream flow
// batches to POST /v1/flows, poll GET /v1/epochs while the double-buffered
// epoch loop delivers them, and print the delivered/ψ summary.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"octopus"
)

type epochsResponse struct {
	Epoch          int                    `json:"epoch"`
	BacklogPackets int                    `json:"backlog_packets"`
	Totals         octopus.PipelineTotals `json:"totals"`
}

func main() {
	var (
		nodes   = flag.Int("n", 16, "network nodes")
		window  = flag.Int("window", 400, "window W in slots")
		delta   = flag.Int("delta", 10, "reconfiguration delay Δ in slots")
		epoch   = flag.Duration("epoch", 10*time.Millisecond, "wall-clock epoch duration")
		batches = flag.Int("batches", 5, "flow batches to stream")
		seed    = flag.Int64("seed", 42, "RNG seed for the client's flows")
	)
	flag.Parse()

	fabric := octopus.Complete(*nodes)
	srv, err := octopus.NewDaemon(octopus.DaemonOptions{
		Fabric:        fabric,
		Core:          octopus.Options{Window: *window, Delta: *delta},
		EpochDuration: *epoch,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, ln) }()
	fmt.Printf("daemon up on %s (%d nodes, window %d, Δ %d, epoch %v)\n",
		base, *nodes, *window, *delta, *epoch)

	// Stream arrival batches the way an external controller would: each
	// batch is one POST and is admitted atomically at one epoch boundary.
	rng := rand.New(rand.NewSource(*seed))
	submitted := 0
	for b := 0; b < *batches; b++ {
		type flowReq struct {
			Src  int `json:"src"`
			Dst  int `json:"dst"`
			Size int `json:"size"`
		}
		batch := make([]flowReq, 4+rng.Intn(4))
		for i := range batch {
			src := rng.Intn(*nodes)
			dst := (src + 1 + rng.Intn(*nodes-1)) % *nodes
			batch[i] = flowReq{Src: src, Dst: dst, Size: 1 + rng.Intn(50)}
			submitted += batch[i].Size
		}
		body, _ := json.Marshal(batch)
		resp, err := http.Post(base+"/v1/flows", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("batch %d: %d flows -> %s\n", b, len(batch), resp.Status)
		time.Sleep(*epoch * 3)
	}

	// Poll the epoch feed until the backlog drains.
	var er epochsResponse
	for deadline := time.Now().Add(30 * time.Second); ; {
		resp, err := http.Get(base + "/v1/epochs")
		if err != nil {
			log.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if er.Totals.Delivered == submitted {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("gave up: delivered %d of %d", er.Totals.Delivered, submitted)
		}
		time.Sleep(*epoch)
	}

	cancel() // graceful shutdown: the loop drains, the server closes
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d/%d packets over %d epochs, psi %d (shutdown clean)\n",
		er.Totals.Delivered, submitted, er.Epoch, er.Totals.Psi)
}
