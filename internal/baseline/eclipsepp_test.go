package baseline

import (
	"testing"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

func TestEclipsePlusPlusIgnoresNominalRoute(t *testing.T) {
	// The flow's nominal route is 0->1->3, but the given sequence only
	// activates 0->2 then 2->3: Eclipse++ may re-route through node 2,
	// while the fixed-route simulator replay delivers nothing.
	g := graph.Complete(4)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 3}}},
	}}
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 2}}, Alpha: 10},
		{Links: []graph.Edge{{From: 2, To: 3}}, Alpha: 10},
	}}
	epp, err := EclipsePlusPlus(g, load, sch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epp.Delivered != 10 {
		t.Fatalf("Eclipse++ delivered %d, want 10 (re-routed)", epp.Delivered)
	}
	if epp.Hops != 20 {
		t.Fatalf("hops = %d, want 20", epp.Hops)
	}
	sim, err := simulate.Run(g, load, sch, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Delivered != 0 {
		t.Fatalf("fixed-route replay delivered %d, want 0", sim.Delivered)
	}
}

func TestEclipsePlusPlusRespectsCapacity(t *testing.T) {
	// Two flows compete for one 10-slot link: only 10 packets total cross.
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 8, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		{ID: 2, Size: 8, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 10},
	}}
	epp, err := EclipsePlusPlus(g, load, sch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epp.Delivered != 10 {
		t.Fatalf("delivered %d, want 10 (capacity)", epp.Delivered)
	}
}

func TestEclipsePlusPlusHopOrdering(t *testing.T) {
	// The sequence activates the second hop *before* the first: no path
	// respects time ordering, so nothing is delivered.
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
	}}
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 1, To: 2}}, Alpha: 5},
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 5},
	}}
	epp, err := EclipsePlusPlus(g, load, sch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epp.Delivered != 0 {
		t.Fatalf("delivered %d through a time-reversed sequence", epp.Delivered)
	}
}

func TestEclipsePlusPlusDominatesReplay(t *testing.T) {
	// Re-routing freedom means Eclipse++ should never deliver less than
	// the fixed-route VOQ replay over the same Eclipse schedule.
	for seed := int64(0); seed < 3; seed++ {
		g, load := synthetic(t, 70+seed, 12, 400)
		sim, sch, err := EclipseBased(g, load, 400, 10, core.MatcherExact)
		if err != nil {
			t.Fatal(err)
		}
		epp, err := EclipsePlusPlus(g, load, sch, 400)
		if err != nil {
			t.Fatal(err)
		}
		if epp.Delivered < sim.Delivered {
			t.Fatalf("seed %d: Eclipse++ %d below replay %d", seed, epp.Delivered, sim.Delivered)
		}
		if epp.Delivered > epp.TotalPackets {
			t.Fatal("overdelivery")
		}
	}
}

func TestEclipseBasedPlusPlus(t *testing.T) {
	g, load := synthetic(t, 80, 10, 300)
	epp, err := EclipseBasedPlusPlus(g, load, 300, 10, core.MatcherExact)
	if err != nil {
		t.Fatal(err)
	}
	if epp.Delivered <= 0 || epp.Utilization() <= 0 || epp.DeliveredFraction() <= 0 {
		t.Fatalf("degenerate result %+v", epp)
	}
	// Octopus still wins: the Eclipse sequence was chosen blind to hop
	// ordering.
	s, err := core.New(g, load, core.Options{Window: 300, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if epp.Delivered >= res.Delivered {
		t.Fatalf("Eclipse-Based++ %d not below Octopus %d", epp.Delivered, res.Delivered)
	}
}

func TestEclipsePlusPlusWindowTruncation(t *testing.T) {
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 50, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	sch := &schedule.Schedule{Delta: 10, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 30},
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 30},
	}}
	epp, err := EclipsePlusPlus(g, load, sch, 55)
	if err != nil {
		t.Fatal(err)
	}
	// Δ(10)+30, then Δ(10)+5 remaining: 35 packets.
	if epp.Delivered != 35 {
		t.Fatalf("delivered %d, want 35", epp.Delivered)
	}
}
