package baseline

import (
	"math/rand"
	"testing"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

func synthetic(t *testing.T, seed int64, n, window int) (*graph.Digraph, *traffic.Load) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.Complete(n)
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(n, window), rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, load
}

func TestOneHopLoad(t *testing.T) {
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 5, Size: 10, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
		{ID: 9, Size: 7, Src: 2, Dst: 3, Routes: []traffic.Route{{2, 3}}},
	}}
	oh := OneHopLoad(load, false)
	if len(oh.Load.Flows) != 3 {
		t.Fatalf("got %d one-hop flows, want 3", len(oh.Load.Flows))
	}
	// Hop decomposition: (0,1) and (1,2) of size 10, (2,3) of size 7.
	f0, f1, f2 := oh.Load.Flows[0], oh.Load.Flows[1], oh.Load.Flows[2]
	if f0.Src != 0 || f0.Dst != 1 || f0.Size != 10 {
		t.Fatalf("flow 0 = %+v", f0)
	}
	if f1.Src != 1 || f1.Dst != 2 || f1.Size != 10 {
		t.Fatalf("flow 1 = %+v", f1)
	}
	if f2.Src != 2 || f2.Dst != 3 || f2.Size != 7 {
		t.Fatalf("flow 2 = %+v", f2)
	}
	if oh.Origin[0] != (HopRef{5, 0}) || oh.Origin[1] != (HopRef{5, 1}) || oh.Origin[2] != (HopRef{9, 0}) {
		t.Fatalf("origins = %v", oh.Origin)
	}
	// Every one-hop route is direct.
	for _, f := range oh.Load.Flows {
		if f.Routes[0].Hops() != 1 {
			t.Fatalf("one-hop flow has %d hops", f.Routes[0].Hops())
		}
	}
}

func TestEclipseServesOneHopLoad(t *testing.T) {
	g, load := synthetic(t, 1, 10, 200)
	oh := OneHopLoad(load, false)
	_, res, err := Eclipse(g, oh.Load, 1<<19, 5, core.MatcherExact)
	if err != nil {
		t.Fatal(err)
	}
	// With an effectively unbounded window, Eclipse serves everything.
	if res.Pending != 0 {
		t.Fatalf("pending %d after unbounded window", res.Pending)
	}
	// One-hop: ψ equals delivered · unit weight.
	if res.Psi != int64(res.Delivered)*traffic.WeightScale {
		t.Fatalf("one-hop ψ mismatch: %d vs %d packets", res.Psi, res.Delivered)
	}
}

func TestEclipseBased(t *testing.T) {
	g, load := synthetic(t, 2, 10, 200)
	sim, sch, err := EclipseBased(g, load, 200, 5, core.MatcherExact)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Cost() > 200 {
		t.Fatalf("schedule cost %d over window", sch.Cost())
	}
	if sim.Delivered < 0 || sim.Delivered > load.TotalPackets() {
		t.Fatalf("implausible delivered %d", sim.Delivered)
	}
}

func TestOctopusBeatsEclipseBased(t *testing.T) {
	// The headline qualitative claim of Fig 4: Octopus outperforms the
	// Eclipse-Based scheme by a significant margin.
	var oct, ecl int
	for seed := int64(0); seed < 3; seed++ {
		g, load := synthetic(t, 10+seed, 16, 400)
		s, err := core.New(g, load, core.Options{Window: 400, Delta: 10})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		oct += res.Delivered
		sim, _, err := EclipseBased(g, load, 400, 10, core.MatcherExact)
		if err != nil {
			t.Fatal(err)
		}
		ecl += sim.Delivered
	}
	if oct <= ecl {
		t.Fatalf("Octopus (%d) did not beat Eclipse-Based (%d)", oct, ecl)
	}
}

func TestUpperBoundDominatesOctopus(t *testing.T) {
	// UB relaxes hop ordering, so its delivered count should not fall
	// meaningfully below Octopus's on standard loads (the paper notes rare
	// exceptions at high hop counts; plain 1-3 hop loads behave).
	for seed := int64(0); seed < 3; seed++ {
		g, load := synthetic(t, 20+seed, 12, 300)
		s, err := core.New(g, load, core.Options{Window: 300, Delta: 10})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		ub, err := UpperBound(g, load, 300, 10, core.MatcherExact)
		if err != nil {
			t.Fatal(err)
		}
		if ub.TotalPackets != load.TotalPackets() {
			t.Fatal("UB total packets wrong")
		}
		if float64(ub.Delivered) < 0.9*float64(res.Delivered) {
			t.Fatalf("seed %d: UB %d far below Octopus %d", seed, ub.Delivered, res.Delivered)
		}
	}
}

func TestUpperBoundFullDelivery(t *testing.T) {
	g, load := synthetic(t, 31, 8, 100)
	ub, err := UpperBound(g, load, 1<<19, 5, core.MatcherExact)
	if err != nil {
		t.Fatal(err)
	}
	if ub.Delivered != load.TotalPackets() {
		t.Fatalf("UB with unbounded window delivered %d of %d", ub.Delivered, load.TotalPackets())
	}
	if ub.Psi != load.TotalWeightedHops() {
		t.Fatalf("UB ψ = %d, want %d", ub.Psi, load.TotalWeightedHops())
	}
	if ub.DeliveredFraction() != 1 {
		t.Fatal("DeliveredFraction != 1")
	}
}

func TestUpperBoundMinOverHops(t *testing.T) {
	// Craft a window where the first hop of a 2-hop flow is served but the
	// second cannot be: UB must not count the packet delivered.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
	}}
	// Window fits one 10-slot configuration (Δ=5): T^one has two one-hop
	// flows; Eclipse picks both links in one matching ((0,1) and (1,2) are
	// node-disjoint as (src,dst) pairs), so both hops get served... use a
	// window that fits only alpha=10 with one matching: both links fit one
	// matching, so instead force capacity with window 12, delta 5 -> alpha
	// at most 7: 7 served per hop, min = 7.
	ub, err := UpperBound(g, load, 12, 5, core.MatcherExact)
	if err != nil {
		t.Fatal(err)
	}
	if ub.Delivered != 7 {
		t.Fatalf("UB delivered %d, want 7", ub.Delivered)
	}
}

func TestAbsoluteUpperBound(t *testing.T) {
	// The paper's 66%: W=10000, n=100, ~10^6 packets evenly split over
	// 1/2/3-hop routes can traverse at most 10^6 hops.
	mk := func(per int) *traffic.Load {
		load := &traffic.Load{}
		for h := 1; h <= 3; h++ {
			route := make(traffic.Route, h+1)
			for i := range route {
				route[i] = i
			}
			load.Flows = append(load.Flows, traffic.Flow{
				ID: h, Size: per, Src: 0, Dst: h, Routes: []traffic.Route{route},
			})
		}
		return load
	}
	load := mk(333333) // ~1M packets total
	got := AbsoluteUpperBound(load, 10000, 100)
	frac := float64(got) / float64(load.TotalPackets())
	if frac < 0.64 || frac > 0.69 {
		t.Fatalf("absolute bound fraction %f, want ~0.66", frac)
	}
	// Light load: bound = everything.
	light := mk(10)
	if AbsoluteUpperBound(light, 10000, 100) != light.TotalPackets() {
		t.Fatal("light load not fully deliverable")
	}
}

func TestRotorNetSchedule(t *testing.T) {
	sch := RotorNetSchedule(6, 1000, 10, 0)
	if len(sch.Configs) == 0 {
		t.Fatal("empty RotorNet schedule")
	}
	if sch.Cost() > 1000 {
		t.Fatalf("cost %d over window", sch.Cost())
	}
	// The validator checks every configuration is a matching of the
	// complete fabric within the window budget; perfectness stays a local
	// RotorNet-specific assertion.
	full := graph.Complete(6)
	if _, err := verify.Schedule(full, &traffic.Load{}, sch, verify.Options{Window: 1000}); err != nil {
		t.Fatal(err)
	}
	for k, cfg := range sch.Configs {
		if len(cfg.Links) != 6 {
			t.Fatalf("config %d not a perfect matching: %d links", k, len(cfg.Links))
		}
	}
	// Default duration = 10Δ.
	if sch.Configs[0].Alpha != 100 {
		t.Fatalf("alpha = %d, want 100", sch.Configs[0].Alpha)
	}
	// Matchings rotate.
	if sch.Configs[0].Links[0] == sch.Configs[1].Links[0] {
		t.Fatal("matchings do not rotate")
	}
}

func TestRotorNetDeliversSomethingButLessThanOctopus(t *testing.T) {
	g, load := synthetic(t, 40, 12, 400)
	sim, _, err := RotorNet(g, load, 400, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(g, load, core.Options{Window: 400, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sim.Delivered >= res.Delivered {
		t.Fatalf("RotorNet (%d) not below Octopus (%d)", sim.Delivered, res.Delivered)
	}
	// RotorNet's signature failure mode: very low link utilization.
	octSim, err := simulate.Run(g, load, res.Schedule, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Utilization() >= octSim.Utilization() {
		t.Fatalf("RotorNet utilization %f not below Octopus %f", sim.Utilization(), octSim.Utilization())
	}
}

func TestRotorNetOnPartialFabric(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	g := graph.RandomPartial(12, 5, rng)
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(12, 200), rng)
	if err != nil {
		t.Fatal(err)
	}
	// RotorNet schedules over the complete fabric even though g is partial.
	sim, _, err := RotorNet(g, load, 200, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sim.TotalPackets != load.TotalPackets() {
		t.Fatal("load mismatch")
	}
}

func TestUBResultMetricsZero(t *testing.T) {
	r := &UBResult{}
	if r.DeliveredFraction() != 0 || r.Utilization() != 0 || r.DeliveredOfPsi() != 0 {
		t.Fatal("zero-value metrics not 0")
	}
}
