package baseline

import (
	"sort"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

// EclipsePlusPlus routes a multi-hop traffic load over a *given* sequence
// of configurations, in the spirit of the Eclipse++ algorithm of [36]
// (which the paper's Eclipse-Based baseline builds on): packets may take
// any path the configuration sequence admits — not just their nominal
// route — by moving over an active link in one configuration, buffering at
// the intermediate node, and continuing in a later configuration.
//
// The implementation routes flows greedily in the paper's priority order
// (packet weight descending, then flow ID): for each flow it repeatedly
// finds a fewest-hops path in the time-expanded graph (nodes = (network
// node, configuration index), wait edges forward in time, link edges with
// remaining capacity α per configuration) and sends the bottleneck number
// of packets along it, until no augmenting path remains. This is the
// standard greedy multi-commodity routing over a time-expanded graph; the
// reference algorithm's LP rounding is substituted as documented in
// DESIGN.md.
type eppState struct {
	g       *graph.Digraph
	configs []schedule.Configuration
	// caps[c][edge] = remaining packets the link may carry in config c.
	caps []map[graph.Edge]int
	// out[c][node] = destination of node's active out-link in config c,
	// or -1 (a matching has at most one out-link per node).
	out [][]int
}

// EclipsePlusPlusResult reports the outcome of Eclipse++ routing.
type EclipsePlusPlusResult struct {
	Delivered       int
	TotalPackets    int
	Hops            int
	Psi             int64
	ActiveLinkSlots int64
}

// DeliveredFraction returns Delivered / TotalPackets.
func (r *EclipsePlusPlusResult) DeliveredFraction() float64 {
	if r.TotalPackets == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.TotalPackets)
}

// Utilization returns packet-hops per active link-slot.
func (r *EclipsePlusPlusResult) Utilization() float64 {
	if r.ActiveLinkSlots == 0 {
		return 0
	}
	return float64(r.Hops) / float64(r.ActiveLinkSlots)
}

// EclipsePlusPlus routes load over sch and returns the delivery outcome.
// Window truncates the replayed sequence like the simulator does.
func EclipsePlusPlus(g *graph.Digraph, load *traffic.Load, sch *schedule.Schedule, window int) (*EclipsePlusPlusResult, error) {
	if err := sch.Validate(g, 0, 1); err != nil {
		return nil, err
	}
	if err := load.Validate(g); err != nil {
		return nil, err
	}
	st := &eppState{g: g}
	used := 0
	for _, cfg := range sch.Configs {
		if window > 0 && used+sch.Delta >= window {
			break
		}
		used += sch.Delta
		alpha := cfg.Alpha
		if window > 0 && used+alpha > window {
			alpha = window - used
		}
		used += alpha
		caps := make(map[graph.Edge]int, len(cfg.Links))
		for _, e := range cfg.Links {
			caps[e] = alpha
		}
		st.configs = append(st.configs, schedule.Configuration{Links: cfg.Links, Alpha: alpha})
		st.caps = append(st.caps, caps)
		out := make([]int, g.N())
		for i := range out {
			out[i] = -1
		}
		for _, e := range cfg.Links {
			out[e.From] = e.To
		}
		st.out = append(st.out, out)
	}

	res := &EclipsePlusPlusResult{TotalPackets: load.TotalPackets()}
	for _, cfg := range st.configs {
		res.ActiveLinkSlots += int64(cfg.Alpha) * int64(len(cfg.Links))
	}

	// Priority order: weight descending, then flow ID ascending.
	order := make([]int, len(load.Flows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := &load.Flows[order[a]], &load.Flows[order[b]]
		wa, wb := fa.Weight(), fb.Weight()
		if wa != wb {
			return wa > wb
		}
		return fa.ID < fb.ID
	})

	for _, idx := range order {
		f := &load.Flows[idx]
		remaining := f.Size
		for remaining > 0 {
			path, bottleneck := st.shortestPath(f.Src, f.Dst, remaining)
			if bottleneck == 0 {
				break
			}
			for _, step := range path {
				st.caps[step.config][step.link] -= bottleneck
				res.Hops += bottleneck
				res.Psi += int64(bottleneck) * f.Weight()
			}
			res.Delivered += bottleneck
			remaining -= bottleneck
		}
	}
	return res, nil
}

// pathStep is one link traversal in a time-expanded path.
type pathStep struct {
	config int
	link   graph.Edge
}

// shortestPath finds an earliest-arrival path from src to dst through the
// time-expanded graph with positive remaining capacity, returning the
// steps and the bottleneck capacity (capped at want). Every transition
// advances the configuration index by one (wait or cross), so BFS order is
// configuration order and a packet crosses at most one link per
// configuration — the same one-hop-per-configuration model measured
// everywhere else.
func (st *eppState) shortestPath(src, dst, want int) ([]pathStep, int) {
	nc := len(st.configs)
	if nc == 0 {
		return nil, 0
	}
	n := st.g.N()
	// state = node*(nc+1) + configIndexReached: the packet sits at node
	// having consumed configs [0, c). BFS over (node, c) with transitions:
	// wait (c -> c+1) and cross a link of config c (node -> to, c -> c+1).
	type prevT struct {
		stateID int
		step    pathStep
		hasStep bool
	}
	total := n * (nc + 1)
	prev := make([]prevT, total)
	visited := make([]bool, total)
	id := func(node, c int) int { return node*(nc+1) + c }
	start := id(src, 0)
	visited[start] = true
	queue := []int{start}
	goal := -1
	for qi := 0; qi < len(queue) && goal < 0; qi++ {
		cur := queue[qi]
		node, c := cur/(nc+1), cur%(nc+1)
		if node == dst {
			goal = cur
			break
		}
		if c == nc {
			continue
		}
		// Wait through configuration c.
		if w := id(node, c+1); !visited[w] {
			visited[w] = true
			prev[w] = prevT{stateID: cur}
			queue = append(queue, w)
		}
		// Cross the node's active link of configuration c, if any.
		if to := st.out[c][node]; to >= 0 {
			e := graph.Edge{From: node, To: to}
			if st.caps[c][e] > 0 {
				if w := id(to, c+1); !visited[w] {
					visited[w] = true
					prev[w] = prevT{stateID: cur, step: pathStep{config: c, link: e}, hasStep: true}
					queue = append(queue, w)
				}
			}
		}
	}
	if goal < 0 {
		return nil, 0
	}
	var path []pathStep
	bottleneck := want
	for cur := goal; cur != start; cur = prev[cur].stateID {
		p := prev[cur]
		if p.hasStep {
			path = append(path, p.step)
			if c := st.caps[p.step.config][p.step.link]; c < bottleneck {
				bottleneck = c
			}
		}
	}
	if len(path) == 0 {
		// src == dst should not happen for valid flows.
		return nil, 0
	}
	reverseSteps(path)
	return path, bottleneck
}

func reverseSteps(s []pathStep) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// EclipseBasedPlusPlus is the paper-faithful Eclipse-Based baseline:
// Eclipse over the unordered one-hop load, then Eclipse++ time-expanded
// routing of the original multi-hop traffic over the resulting sequence.
// (The default EclipseBased uses the packet-level simulator's greedy VOQ
// replay instead, which keeps every baseline measured by the same
// simulator; ext-eclipsepp compares the two.)
func EclipseBasedPlusPlus(g *graph.Digraph, load *traffic.Load, window, delta int, matcher core.Matcher) (*EclipsePlusPlusResult, error) {
	oh := OneHopLoad(load, false)
	_, res, err := Eclipse(g, oh.Load, window, delta, matcher)
	if err != nil {
		return nil, err
	}
	return EclipsePlusPlus(g, load, res.Schedule, window)
}
