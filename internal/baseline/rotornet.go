package baseline

import (
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// RotorNetSchedule returns the traffic-agnostic RotorNet schedule [28]:
// the complete bipartite fabric is decomposed into the n-1 cyclic perfect
// matchings M_r = {(i, (i+r) mod n)}, and the schedule cycles through them
// with a fixed, uniform duration per matching (the paper uses 10·Δ,
// following ProjecToR/RotorNet practice) until the window is filled.
func RotorNetSchedule(n, window, delta, slotsPerMatching int) *schedule.Schedule {
	if slotsPerMatching <= 0 {
		slotsPerMatching = 10 * delta
		if slotsPerMatching <= 0 {
			slotsPerMatching = 10
		}
	}
	sch := &schedule.Schedule{Delta: delta}
	r := 1
	for used := 0; used+delta < window; used += slotsPerMatching + delta {
		alpha := slotsPerMatching
		if used+delta+alpha > window {
			alpha = window - used - delta
		}
		links := make([]graph.Edge, 0, n)
		for i := 0; i < n; i++ {
			links = append(links, graph.Edge{From: i, To: (i + r) % n})
		}
		sch.Configs = append(sch.Configs, schedule.Configuration{Links: links, Alpha: alpha})
		r++
		if r >= n {
			r = 1
		}
	}
	return sch
}

// RotorNet replays the multi-hop load over the RotorNet schedule. RotorNet
// assumes a complete fabric, so the replay runs over Complete(n) even when
// the instance's fabric g is partial (the paper applies it to the MHS
// problem "by assuming availability of all edges anyway"); the flows still
// follow their given routes.
func RotorNet(g *graph.Digraph, load *traffic.Load, window, delta, slotsPerMatching int) (*simulate.Result, *schedule.Schedule, error) {
	n := g.N()
	sch := RotorNetSchedule(n, window, delta, slotsPerMatching)
	full := graph.Complete(n)
	sim, err := simulate.Run(full, load, sch, simulate.Options{Window: window})
	if err != nil {
		return nil, nil, err
	}
	return sim, sch, nil
}
