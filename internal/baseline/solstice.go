package baseline

import (
	"sort"

	"octopus/internal/graph"
	"octopus/internal/matching"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// SolsticeSchedule builds a configuration sequence for a one-hop demand
// using a greedy Birkhoff-von-Neumann-style decomposition in the spirit of
// Solstice [Liu et al., CoNEXT '15]: repeatedly pick a threshold t and a
// maximum set of simultaneously-servable links with demand >= t, activate
// them for t slots, and subtract. Among the distinct remaining demand
// values, the threshold maximizing covered demand per unit cost
// (t·|M_t| / (t+Δ)) is chosen — the long-configurations-first bias that
// lets Solstice amortize the reconfiguration delay.
//
// Simplifications vs. the published system (documented in DESIGN.md):
// no matrix stuffing (we do not require perfect matchings, only maximum
// ones) and no explicit packet-network residue (the residue is simply left
// unscheduled, exactly like every other window-bounded scheduler here).
func SolsticeSchedule(oneHop *traffic.Load, n, window, delta int) *schedule.Schedule {
	demand := make(map[graph.Edge]int)
	for i := range oneHop.Flows {
		f := &oneHop.Flows[i]
		demand[graph.Edge{From: f.Src, To: f.Dst}] += f.Size
	}
	sch := &schedule.Schedule{Delta: delta}
	used := 0
	for used+delta < window && len(demand) > 0 {
		edges := make([]graph.Edge, 0, len(demand))
		for e := range demand {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		// Distinct demand values, descending.
		vals := make([]int, 0, len(demand))
		seen := map[int]bool{}
		for _, d := range demand {
			if !seen[d] {
				seen[d] = true
				vals = append(vals, d)
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(vals)))

		var bestM []graph.Edge
		bestT := 0
		var bestScoreNum, bestScoreDen int64 = 0, 1
		for _, t := range vals {
			var cand []graph.Edge
			for _, e := range edges {
				if demand[e] >= t {
					cand = append(cand, e)
				}
			}
			mEdges := maxCardinality(n, cand)
			num := int64(t) * int64(len(mEdges))
			den := int64(t + delta)
			if num*bestScoreDen > bestScoreNum*den {
				bestScoreNum, bestScoreDen = num, den
				bestT = t
				bestM = mEdges
			}
		}
		if bestT == 0 || len(bestM) == 0 {
			break
		}
		alpha := bestT
		if used+delta+alpha > window {
			alpha = window - used - delta
		}
		if alpha <= 0 {
			break
		}
		sch.Configs = append(sch.Configs, schedule.Configuration{Links: bestM, Alpha: alpha})
		used += delta + alpha
		for _, e := range bestM {
			demand[e] -= alpha
			if demand[e] <= 0 {
				delete(demand, e)
			}
		}
	}
	return sch
}

func maxCardinality(n int, edges []graph.Edge) []graph.Edge {
	in := make([]matching.Edge, len(edges))
	for i, e := range edges {
		in[i] = matching.Edge{From: e.From, To: e.To}
	}
	out := matching.MaxCardinalityBipartite(n, in)
	res := make([]graph.Edge, len(out))
	for i, e := range out {
		res[i] = graph.Edge{From: e.From, To: e.To}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].From != res[j].From {
			return res[i].From < res[j].From
		}
		return res[i].To < res[j].To
	})
	return res
}

// SolsticeBased schedules the unordered one-hop decomposition of a
// multi-hop load with the Solstice-style decomposition and replays the
// original traffic over the resulting sequence — the Solstice analog of
// the Eclipse-Based baseline, provided for the extension comparisons.
func SolsticeBased(g *graph.Digraph, load *traffic.Load, window, delta int) (*simulate.Result, *schedule.Schedule, error) {
	oh := OneHopLoad(load, false)
	sch := SolsticeSchedule(oh.Load, g.N(), window, delta)
	sim, err := simulate.Run(g, load, sch, simulate.Options{Window: window})
	if err != nil {
		return nil, nil, err
	}
	return sim, sch, nil
}
