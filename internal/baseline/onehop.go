// Package baseline implements the comparison points of the paper's §8: the
// Eclipse one-hop scheduler [Venkatakrishnan et al., SIGMETRICS '16], the
// Eclipse-Based multi-hop approach built on it, the traffic-agnostic
// RotorNet schedule [Mellette et al., SIGCOMM '17], and the UB upper bound
// plus the absolute capacity upper bound.
package baseline

import (
	"octopus/internal/traffic"
)

// HopRef points from a one-hop flow back to the original multi-hop flow
// and the index of the hop it represents.
type HopRef struct {
	FlowID int // original flow ID
	Hop    int // hop index along the original primary route
}

// OneHop is the "unordered one-hop traffic" T^one derived from a multi-hop
// load by ignoring the ordering of hops: every hop (vᵢ, vᵢ₊₁) of a flow of
// size s becomes an independent one-hop flow of size s.
type OneHop struct {
	Load   *traffic.Load
	Origin map[int]HopRef // one-hop flow ID -> original hop
}

// OneHopLoad builds T^one from the primary routes of load. One-hop flow IDs
// are assigned in (flow, hop) order, preserving the relative flow-ID
// priority of the original flows. With weighted set, each one-hop flow
// keeps the original flow's packet weight (via Flow.WeightHops), so a
// scheduler over T^one optimizes the same ψ objective as the multi-hop
// problem — the form the UB upper bound needs; the plain Eclipse-Based
// baseline uses the unweighted form.
func OneHopLoad(load *traffic.Load, weighted bool) *OneHop {
	oh := &OneHop{
		Load:   &traffic.Load{},
		Origin: make(map[int]HopRef),
	}
	nextID := 0
	for i := range load.Flows {
		f := &load.Flows[i]
		r := f.Routes[0]
		for h := 0; h+1 < len(r); h++ {
			nf := traffic.Flow{
				ID:     nextID,
				Size:   f.Size,
				Src:    r[h],
				Dst:    r[h+1],
				Routes: []traffic.Route{{r[h], r[h+1]}},
			}
			if weighted {
				nf.WeightHops = f.WeightLen(r)
			}
			oh.Load.Flows = append(oh.Load.Flows, nf)
			oh.Origin[nextID] = HopRef{FlowID: f.ID, Hop: h}
			nextID++
		}
	}
	return oh
}
