package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/verify"
)

// Property: over the shared verify.RandomInstance distribution, every
// baseline's schedule passes the independent validator, with the replayed
// metrics matching what the baseline reports.
func TestBaselinesValidateProperty(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			return true
		}
		switch which % 4 {
		case 0: // Eclipse over the one-hop decomposition, exact plan claim.
			oh := OneHopLoad(inst.Load, false)
			_, res, err := Eclipse(inst.G, oh.Load, inst.Window, inst.Delta, core.MatcherExact)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			_, err = verify.Schedule(inst.G, oh.Load, res.Schedule, verify.Options{
				Window: inst.Window,
				Claim:  &verify.Claim{Delivered: res.Delivered, Hops: res.Hops, Psi: res.Psi},
			})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		case 1:
			sim, sch, err := EclipseBased(inst.G, inst.Load, inst.Window, inst.Delta, core.MatcherExact)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			_, err = verify.Schedule(inst.G, inst.Load, sch, verify.Options{
				Window: inst.Window,
				Claim:  &verify.Claim{Delivered: sim.Delivered, Hops: sim.Hops, Psi: sim.Psi},
			})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		case 2:
			sim, sch, err := SolsticeBased(inst.G, inst.Load, inst.Window, inst.Delta)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			_, err = verify.Schedule(inst.G, inst.Load, sch, verify.Options{
				Window: inst.Window,
				Claim:  &verify.Claim{Delivered: sim.Delivered, Hops: sim.Hops, Psi: sim.Psi},
			})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		default: // RotorNet schedules over the complete fabric.
			sim, sch, err := RotorNet(inst.G, inst.Load, inst.Window, inst.Delta, 0)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			_, err = verify.Schedule(graph.Complete(inst.G.N()), inst.Load, sch, verify.Options{
				Window: inst.Window,
				Claim:  &verify.Claim{Delivered: sim.Delivered, Hops: sim.Hops, Psi: sim.Psi},
			})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
