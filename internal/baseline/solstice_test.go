package baseline

import (
	"testing"

	"octopus/internal/core"
	"octopus/internal/graph"

	"octopus/internal/traffic"
)

func TestSolsticeScheduleStructure(t *testing.T) {
	oneHop := &traffic.Load{Flows: []traffic.Flow{
		{ID: 0, Size: 100, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		{ID: 1, Size: 100, Src: 1, Dst: 2, Routes: []traffic.Route{{1, 2}}},
		{ID: 2, Size: 10, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 2}}},
	}}
	sch := SolsticeSchedule(oneHop, 3, 1000, 10)
	if len(sch.Configs) == 0 {
		t.Fatal("empty Solstice schedule")
	}
	g := graph.Complete(3)
	if err := sch.Validate(g, 1000, 1); err != nil {
		t.Fatal(err)
	}
	// The two disjoint 100-packet demands should share one long
	// configuration (the decomposition's whole point).
	first := sch.Configs[0]
	if len(first.Links) != 2 || first.Alpha != 100 {
		t.Fatalf("first configuration = %v, want both heavy links for 100 slots", first)
	}
}

func TestSolsticeFullyServesGivenTime(t *testing.T) {
	g, load := synthetic(t, 3, 8, 150)
	oh := OneHopLoad(load, false)
	sch := SolsticeSchedule(oh.Load, g.N(), 1<<20, 5)
	// Total scheduled capacity covers total demand per link.
	demand := map[graph.Edge]int{}
	for _, f := range oh.Load.Flows {
		demand[graph.Edge{From: f.Src, To: f.Dst}] += f.Size
	}
	served := map[graph.Edge]int{}
	for _, cfg := range sch.Configs {
		for _, e := range cfg.Links {
			served[e] += cfg.Alpha
		}
	}
	for e, d := range demand {
		if served[e] < d {
			t.Fatalf("link %v: served %d < demand %d", e, served[e], d)
		}
	}
}

func TestSolsticeBasedComparableToEclipseBased(t *testing.T) {
	g, load := synthetic(t, 9, 12, 400)
	sol, sch, err := SolsticeBased(g, load, 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(g, 400, 1); err != nil {
		t.Fatal(err)
	}
	if sol.Delivered <= 0 {
		t.Fatal("Solstice-Based delivered nothing")
	}
	// Octopus still wins (multi-hop awareness).
	s, err := core.New(g, load, core.Options{Window: 400, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Delivered >= res.Delivered {
		t.Fatalf("Solstice-Based %d not below Octopus %d", sol.Delivered, res.Delivered)
	}
}

func TestSolsticeRespectsWindow(t *testing.T) {
	g, load := synthetic(t, 10, 8, 200)
	oh := OneHopLoad(load, false)
	for _, w := range []int{30, 77, 200} {
		sch := SolsticeSchedule(oh.Load, g.N(), w, 10)
		if sch.Cost() > w {
			t.Fatalf("window %d: cost %d", w, sch.Cost())
		}
	}
	// Window too small for even one configuration.
	empty := SolsticeSchedule(oh.Load, g.N(), 10, 10)
	if len(empty.Configs) != 0 {
		t.Fatalf("expected empty schedule, got %v", empty.Configs)
	}
}
