package baseline

import (
	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// Eclipse runs the one-hop Eclipse scheduler [36] over a one-hop traffic
// load: it is exactly the Octopus greedy at 𝒟 = 1, of which Octopus is the
// multi-hop generalization. The returned scheduler has already run; its
// plan bookkeeping is final.
func Eclipse(g *graph.Digraph, oneHop *traffic.Load, window, delta int, matcher core.Matcher) (*core.Scheduler, *core.Result, error) {
	s, err := core.New(g, oneHop, core.Options{Window: window, Delta: delta, Matcher: matcher})
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, nil, err
	}
	return s, res, nil
}

// EclipseBased is the multi-hop baseline the paper compares against
// (§8, "Algorithms Compared"): compute the unordered one-hop load T^one,
// run Eclipse over it to obtain a near-optimal configuration sequence, and
// then route the original multi-hop traffic over that fixed sequence with
// the standard VOQ priority scheme — an Eclipse++-style greedy multi-hop
// routing over a given schedule (see DESIGN.md for the substitution note).
func EclipseBased(g *graph.Digraph, load *traffic.Load, window, delta int, matcher core.Matcher) (*simulate.Result, *schedule.Schedule, error) {
	oh := OneHopLoad(load, false)
	_, res, err := Eclipse(g, oh.Load, window, delta, matcher)
	if err != nil {
		return nil, nil, err
	}
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{Window: window})
	if err != nil {
		return nil, nil, err
	}
	return sim, res.Schedule, nil
}

// UBResult reports the UB upper bound of §8: the outcome of Eclipse on
// T^one where a packet counts as delivered only if all of its hops have
// been served (in any order).
type UBResult struct {
	Delivered       int
	TotalPackets    int
	Hops            int   // one-hop packets served (= packet-hops)
	Psi             int64 // Σ served-hops · original packet weight
	ActiveLinkSlots int64
	Schedule        *schedule.Schedule
}

// DeliveredFraction returns Delivered / TotalPackets.
func (r *UBResult) DeliveredFraction() float64 {
	if r.TotalPackets == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.TotalPackets)
}

// Utilization returns served packet-hops per active link-slot.
func (r *UBResult) Utilization() float64 {
	if r.ActiveLinkSlots == 0 {
		return 0
	}
	return float64(r.Hops) / float64(r.ActiveLinkSlots)
}

// DeliveredOfPsi returns delivered packets as a fraction of ψ in packet
// equivalents (Fig 7a's metric).
func (r *UBResult) DeliveredOfPsi() float64 {
	if r.Psi == 0 {
		return 0
	}
	return float64(r.Delivered) * float64(traffic.WeightScale) / float64(r.Psi)
}

// UpperBound computes UB: the best achievable performance of a polynomial
// algorithm for the MHS instance, obtained by relaxing hop ordering
// (scheduling T^one with Eclipse) — see §8, "Upper Bounds".
func UpperBound(g *graph.Digraph, load *traffic.Load, window, delta int, matcher core.Matcher) (*UBResult, error) {
	oh := OneHopLoad(load, true)
	s, res, err := Eclipse(g, oh.Load, window, delta, matcher)
	if err != nil {
		return nil, err
	}
	pending := s.PendingByFlow()

	// served[f][h] for the original flows, from the one-hop plan.
	type hopKey struct{ flow, hop int }
	served := make(map[hopKey]int)
	for i := range oh.Load.Flows {
		ohf := &oh.Load.Flows[i]
		ref := oh.Origin[ohf.ID]
		served[hopKey{ref.FlowID, ref.Hop}] = ohf.Size - pending[ohf.ID]
	}

	ub := &UBResult{
		TotalPackets:    load.TotalPackets(),
		Hops:            res.Hops,
		ActiveLinkSlots: res.Schedule.ActiveLinkSlots(),
		Schedule:        res.Schedule,
	}
	for i := range load.Flows {
		f := &load.Flows[i]
		hops := f.Routes[0].Hops()
		minServed := f.Size
		for h := 0; h < hops; h++ {
			sv := served[hopKey{f.ID, h}]
			if sv < minServed {
				minServed = sv
			}
			ub.Psi += int64(sv) * f.Weight()
		}
		ub.Delivered += minServed
	}
	return ub, nil
}

// AbsoluteUpperBound returns the capacity upper bound on deliverable
// packets: at most window·n packet-hops can be traversed (a matching of an
// n-node fabric has at most n links, one packet per slot each), and the
// bound delivers cheapest-route packets first. For the paper's default
// synthetic load this evaluates to the 66% figure quoted in §8.
func AbsoluteUpperBound(load *traffic.Load, window, n int) int {
	budget := int64(window) * int64(n)
	// Count packets per route length.
	counts := make([]int, traffic.MaxRouteLen+1)
	for i := range load.Flows {
		f := &load.Flows[i]
		counts[f.Routes[0].Hops()] += f.Size
	}
	delivered := 0
	for h := 1; h <= traffic.MaxRouteLen; h++ {
		if counts[h] == 0 {
			continue
		}
		can := budget / int64(h)
		take := counts[h]
		if int64(take) > can {
			take = int(can)
		}
		delivered += take
		budget -= int64(take) * int64(h)
	}
	return delivered
}
