package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	if g.HasEdge(0, 1) {
		t.Fatal("empty graph has an edge")
	}
	if len(g.Edges()) != 0 {
		t.Fatal("empty graph returned edges")
	}
}

func TestAddEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(3, 1)
	g.AddEdge(0, 1) // duplicate: no-op
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge presence wrong")
	}
	if got := g.Out(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Out(0) = %v", got)
	}
	if got := g.In(1); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("In(1) = %v", got)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(3)
	mustPanic(t, func() { g.AddEdge(1, 1) })
	mustPanic(t, func() { g.AddEdge(-1, 0) })
	mustPanic(t, func() { g.AddEdge(0, 3) })
	mustPanic(t, func() { New(-1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := Complete(3)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 5) {
		t.Fatal("out-of-range HasEdge returned true")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(4)
	if g.M() != 12 {
		t.Fatalf("M = %d, want 12", g.M())
	}
	for i := 0; i < 4; i++ {
		if g.HasEdge(i, i) {
			t.Fatal("self-loop in complete graph")
		}
		if len(g.Out(i)) != 3 || len(g.In(i)) != 3 {
			t.Fatalf("degree of %d wrong", i)
		}
	}
}

func TestRing(t *testing.T) {
	g := Ring(5)
	if g.M() != 5 {
		t.Fatalf("M = %d, want 5", g.M())
	}
	for i := 0; i < 5; i++ {
		if !g.HasEdge(i, (i+1)%5) {
			t.Fatalf("missing ring edge %d", i)
		}
	}
}

func TestRandomPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomPartial(20, 4, rng)
	for i := 0; i < 20; i++ {
		if len(g.Out(i)) != 4 {
			t.Fatalf("node %d out-degree %d, want 4", i, len(g.Out(i)))
		}
		if !g.HasEdge(i, (i+1)%20) {
			t.Fatalf("ring edge %d missing (connectivity)", i)
		}
	}
	// Degree clamping.
	g2 := RandomPartial(4, 100, rng)
	for i := 0; i < 4; i++ {
		if len(g2.Out(i)) != 3 {
			t.Fatalf("clamped degree = %d, want 3", len(g2.Out(i)))
		}
	}
}

func TestTorus(t *testing.T) {
	g := Torus(3, 4)
	if g.N() != 12 || g.M() != 24 {
		t.Fatalf("n=%d m=%d, want 12, 24", g.N(), g.M())
	}
	// Node (0,0)=0 links east to (0,1)=1 and south to (1,0)=4.
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) {
		t.Fatal("missing torus edges")
	}
	// Wraparound: (0,3)=3 east to (0,0)=0; (2,1)=9 south to (0,1)=1.
	if !g.HasEdge(3, 0) || !g.HasEdge(9, 1) {
		t.Fatal("missing wraparound edges")
	}
	// Every node is reachable from 0 within MaxRouteLen on this size.
	for dst := 1; dst < 12; dst++ {
		if _, ok := shortestReach(g, 0, dst); !ok {
			t.Fatalf("node %d unreachable", dst)
		}
	}
	// Degenerate dimensions.
	if Torus(1, 1).M() != 0 {
		t.Fatal("1x1 torus has edges")
	}
	mustPanic(t, func() { Torus(0, 3) })
}

// shortestReach is a tiny BFS used by topology tests.
func shortestReach(g *Digraph, src, dst int) (int, bool) {
	dist := map[int]int{src: 0}
	queue := []int{src}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if u == dst {
			return dist[u], true
		}
		for _, v := range g.Out(u) {
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return 0, false
}

func TestChordRing(t *testing.T) {
	g := ChordRing(16, 2, 4, 8)
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(0, 4) || !g.HasEdge(0, 8) {
		t.Fatal("missing chord edges")
	}
	if g.M() != 16*4 {
		t.Fatalf("M = %d, want 64", g.M())
	}
	// Skip links shrink the diameter: 0 -> 15 within 5 hops.
	if d, ok := shortestReach(g, 0, 15); !ok || d > 5 {
		t.Fatalf("0->15 distance %d %v", d, ok)
	}
	// Invalid strides are ignored.
	if ChordRing(5, 0, 1, 5, 9).M() != 5 {
		t.Fatal("invalid strides added edges")
	}
}

func TestIsRoute(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	cases := []struct {
		route []int
		want  bool
	}{
		{[]int{0, 1, 2, 3}, true},
		{[]int{0, 1}, true},
		{[]int{0, 2}, false},    // missing edge
		{[]int{0}, false},       // too short
		{nil, false},            // empty
		{[]int{0, 1, 0}, false}, // repeated node
		{[]int{0, 1, 7}, false}, // out of range
		{[]int{3, 2, 1}, false}, // wrong direction
		{[]int{0, 1, 2}, true},
	}
	for _, c := range cases {
		if got := g.IsRoute(c.route); got != c.want {
			t.Errorf("IsRoute(%v) = %v, want %v", c.route, got, c.want)
		}
	}
}

func TestIsMatching(t *testing.T) {
	g := Complete(4)
	if !g.IsMatching([]Edge{{0, 1}, {1, 2}, {2, 3}}) {
		t.Fatal("valid matching rejected")
	}
	if g.IsMatching([]Edge{{0, 1}, {0, 2}}) {
		t.Fatal("duplicate source accepted")
	}
	if g.IsMatching([]Edge{{0, 1}, {2, 1}}) {
		t.Fatal("duplicate destination accepted")
	}
	if g.IsMatching([]Edge{{0, 1}, {0, 1}}) {
		t.Fatal("duplicate edge accepted")
	}
	sparse := New(4)
	sparse.AddEdge(0, 1)
	if sparse.IsMatching([]Edge{{1, 2}}) {
		t.Fatal("nonexistent edge accepted")
	}
	if !g.IsMatching(nil) {
		t.Fatal("empty matching rejected")
	}
}

func TestIsRegular(t *testing.T) {
	g := Complete(4)
	links := []Edge{{0, 1}, {0, 2}, {1, 0}, {1, 2}}
	if !g.IsRegular(links, 2) {
		t.Fatal("valid 2-regular configuration rejected")
	}
	if g.IsRegular(links, 1) {
		t.Fatal("2-regular configuration accepted as matching")
	}
	if g.IsRegular([]Edge{{0, 1}, {0, 2}, {0, 3}}, 2) {
		t.Fatal("out-degree 3 accepted at r=2")
	}
}

func TestClone(t *testing.T) {
	g := Complete(3)
	c := g.Clone()
	c.AddEdge(0, 1) // no-op, already exists
	g2 := New(3)
	g2.AddEdge(0, 1)
	c2 := g2.Clone()
	c2.AddEdge(1, 2)
	if g2.HasEdge(1, 2) {
		t.Fatal("clone shares storage with original")
	}
	if c.M() != g.M() {
		t.Fatal("clone edge count differs")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 0)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	es := g.Edges()
	want := []Edge{{0, 1}, {0, 3}, {3, 0}}
	if len(es) != len(want) {
		t.Fatalf("Edges() = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges()[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestUgraphBasics(t *testing.T) {
	g := NewU(4)
	g.AddEdge(2, 0)
	g.AddEdge(0, 2) // same edge
	g.AddEdge(1, 3)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("undirected edge not symmetric")
	}
	if got := g.Adj(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Adj(0) = %v", got)
	}
	es := g.Edges()
	if len(es) != 2 || es[0] != (UEdge{0, 2}) || es[1] != (UEdge{1, 3}) {
		t.Fatalf("Edges() = %v", es)
	}
	mustPanic(t, func() { g.AddEdge(1, 1) })
	mustPanic(t, func() { g.AddEdge(0, 9) })
}

func TestUgraphIsMatching(t *testing.T) {
	g := CompleteU(5)
	if !g.IsMatching([]UEdge{{0, 1}, {2, 3}}) {
		t.Fatal("valid matching rejected")
	}
	if g.IsMatching([]UEdge{{0, 1}, {1, 2}}) {
		t.Fatal("shared endpoint accepted")
	}
	sparse := NewU(4)
	sparse.AddEdge(0, 1)
	if sparse.IsMatching([]UEdge{{2, 3}}) {
		t.Fatal("nonexistent edge accepted")
	}
}

func TestUgraphDirected(t *testing.T) {
	g := NewU(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	d := g.Directed()
	if d.M() != 4 {
		t.Fatalf("directed view M = %d, want 4", d.M())
	}
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !d.HasEdge(e[0], e[1]) {
			t.Fatalf("missing directed edge %v", e)
		}
	}
}

func TestCompleteU(t *testing.T) {
	g := CompleteU(5)
	if g.M() != 10 {
		t.Fatalf("M = %d, want 10", g.M())
	}
}

// Property: Out/In adjacency and the has-bitmap always agree.
func TestAdjacencyConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := New(n)
		for k := 0; k < 3*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				g.AddEdge(i, j)
			}
		}
		count := 0
		for i := 0; i < n; i++ {
			for _, j := range g.Out(i) {
				if !g.HasEdge(i, j) {
					return false
				}
				count++
			}
		}
		if count != g.M() {
			return false
		}
		for j := 0; j < n; j++ {
			for _, i := range g.In(j) {
				if !g.HasEdge(i, j) {
					return false
				}
				count--
			}
		}
		return count == 0 && len(g.Edges()) == g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: NormUEdge is symmetric and canonical.
func TestNormUEdgeProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		e1 := NormUEdge(int(a), int(b))
		e2 := NormUEdge(int(b), int(a))
		return e1 == e2 && e1.A <= e1.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
