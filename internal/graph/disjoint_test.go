package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// pathFeasible asserts p is a simple fabric path from src to dst.
func pathFeasible(t *testing.T, g *Digraph, p []int, src, dst int) {
	t.Helper()
	if len(p) < 2 || p[0] != src || p[len(p)-1] != dst {
		t.Fatalf("path %v does not connect %d->%d", p, src, dst)
	}
	if !g.IsRoute(p) {
		t.Fatalf("path %v is not a simple fabric path", p)
	}
}

// assertDisjoint asserts the paths are pairwise edge-disjoint.
func assertDisjoint(t *testing.T, paths [][]int) {
	t.Helper()
	seen := map[Edge]int{}
	for i, p := range paths {
		for j := 0; j+1 < len(p); j++ {
			e := Edge{From: p[j], To: p[j+1]}
			if prev, dup := seen[e]; dup {
				t.Fatalf("edge %v shared by paths %d and %d: %v", e, prev, i, paths)
			}
			seen[e] = i
		}
	}
}

func TestDisjointRoutesComplete(t *testing.T) {
	g := Complete(5)
	paths := DisjointRoutes(g, 0, 4, 4, 0)
	if len(paths) != 4 {
		t.Fatalf("got %d paths on K5, want 4: %v", len(paths), paths)
	}
	assertDisjoint(t, paths)
	for _, p := range paths {
		pathFeasible(t, g, p, 0, 4)
	}
	// Shortest-first ordering: the direct link, then the three 2-hop detours.
	if !reflect.DeepEqual(paths[0], []int{0, 4}) {
		t.Fatalf("first path %v, want the direct link", paths[0])
	}
	for _, p := range paths[1:] {
		if len(p) != 3 {
			t.Fatalf("detour %v should have 2 hops", p)
		}
	}
}

func TestDisjointRoutesRing(t *testing.T) {
	// A directed ring has exactly one src->dst path however large k is.
	g := ChordRing(8)
	paths := DisjointRoutes(g, 0, 3, 3, 0)
	want := [][]int{{0, 1, 2, 3}}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("got %v, want %v", paths, want)
	}
}

// TestDisjointRoutesTrap is the classic Bhandari counterexample to greedy
// path removal: the (unique) shortest path 0→1→2→5 shares its first edge
// with one disjoint path and its last edge with the other, so finding both
// requires cancelling the middle edge 1→2 on the second augmentation.
func TestDisjointRoutesTrap(t *testing.T) {
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 5}, {1, 4}, {4, 5}, {0, 3}, {3, 2}} {
		g.AddEdge(e[0], e[1])
	}
	paths := DisjointRoutes(g, 0, 5, 2, 0)
	want := [][]int{{0, 1, 4, 5}, {0, 3, 2, 5}}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("got %v, want %v (cancellation failed?)", paths, want)
	}
}

func TestDisjointRoutesUnreachableAndDegenerate(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	if got := DisjointRoutes(g, 0, 3, 2, 0); got != nil {
		t.Fatalf("unreachable dst returned %v", got)
	}
	if got := DisjointRoutes(g, 0, 0, 2, 0); got != nil {
		t.Fatalf("src==dst returned %v", got)
	}
	if got := DisjointRoutes(g, 0, 1, 0, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := DisjointRoutes(g, 0, 1, 3, 0); len(got) != 1 {
		t.Fatalf("single edge fabric returned %v", got)
	}
}

func TestDisjointRoutesMaxHops(t *testing.T) {
	// K5 offers one 1-hop and three 2-hop paths; a 1-hop cap keeps only the
	// direct link.
	g := Complete(5)
	paths := DisjointRoutes(g, 0, 4, 4, 1)
	if !reflect.DeepEqual(paths, [][]int{{0, 4}}) {
		t.Fatalf("maxHops=1 returned %v", paths)
	}
	if paths = DisjointRoutes(g, 0, 4, 4, 2); len(paths) != 4 {
		t.Fatalf("maxHops=2 returned %d paths, want 4", len(paths))
	}
}

func TestDisjointRoutesDeterministicOnRandomFabrics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(12)
		g := RandomPartial(n, 2+rng.Intn(3), rng)
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if src == dst {
			continue
		}
		k := 1 + rng.Intn(4)
		p1 := DisjointRoutes(g, src, dst, k, 0)
		p2 := DisjointRoutes(g, src, dst, k, 0)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("nondeterministic: %v vs %v", p1, p2)
		}
		assertDisjoint(t, p1)
		for _, p := range p1 {
			pathFeasible(t, g, p, src, dst)
		}
		if len(p1) > k {
			t.Fatalf("returned %d paths, asked for %d", len(p1), k)
		}
		// RandomPartial is strongly connected, so at least one path exists.
		if len(p1) == 0 {
			t.Fatalf("no path found on a strongly connected fabric (%d->%d)", src, dst)
		}
	}
}

// TestDisjointRoutesMoreRoutesNeverShrink checks monotonicity of the count:
// asking for more paths never yields fewer.
func TestDisjointRoutesMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(8)
		g := RandomPartial(n, 3, rng)
		src, dst := 0, n-1
		prev := 0
		for k := 1; k <= 4; k++ {
			got := len(DisjointRoutes(g, src, dst, k, 0))
			if got < prev {
				t.Fatalf("k=%d yielded %d paths, fewer than k=%d's %d", k, got, k-1, prev)
			}
			prev = got
		}
	}
}
