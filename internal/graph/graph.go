// Package graph models circuit-switched network fabrics.
//
// The primary type is Digraph: a directed graph over n network nodes where an
// edge (i, j) means the output port of node i can be connected, through the
// circuit fabric, to the input port of node j. A set of links that is
// simultaneously active must form a matching of this graph (at most one
// active out-edge and one active in-edge per node); the schedule and simulate
// packages enforce that invariant.
//
// Ugraph models the bidirectional-link networks of the paper's §7 (e.g.
// FireFly-style full-duplex optical links), where configurations are
// matchings of a general undirected graph.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Edge is a directed potential link from the output port of From to the
// input port of To.
type Edge struct {
	From, To int
}

// String returns the edge in "from->to" form.
func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// Digraph is a directed graph over nodes 0..N()-1 representing a circuit
// fabric. The zero value is an empty graph with no nodes; use New to create
// a graph with a given node count.
type Digraph struct {
	n   int
	out [][]int // out[i] = sorted list of j with edge (i, j)
	in  [][]int // in[j] = sorted list of i with edge (i, j)
	has []bool  // has[i*n+j] reports edge presence
	m   int     // number of edges
}

// New returns an empty directed graph over n nodes.
func New(n int) *Digraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Digraph{
		n:   n,
		out: make([][]int, n),
		in:  make([][]int, n),
		has: make([]bool, n*n),
	}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// M returns the number of edges.
func (g *Digraph) M() int { return g.m }

// AddEdge inserts the directed edge (from, to). Self-loops are rejected
// because a circuit from a node to itself is meaningless. Adding an existing
// edge is a no-op.
func (g *Digraph) AddEdge(from, to int) {
	g.checkNode(from)
	g.checkNode(to)
	if from == to {
		panic("graph: self-loop")
	}
	if g.has[from*g.n+to] {
		return
	}
	g.has[from*g.n+to] = true
	g.out[from] = insertSorted(g.out[from], to)
	g.in[to] = insertSorted(g.in[to], from)
	g.m++
}

// HasEdge reports whether the directed edge (from, to) exists.
func (g *Digraph) HasEdge(from, to int) bool {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return false
	}
	return g.has[from*g.n+to]
}

// Out returns the sorted out-neighbors of node i. The returned slice must
// not be modified.
func (g *Digraph) Out(i int) []int {
	g.checkNode(i)
	return g.out[i]
}

// In returns the sorted in-neighbors of node j. The returned slice must not
// be modified.
func (g *Digraph) In(j int) []int {
	g.checkNode(j)
	return g.in[j]
}

// Edges returns all edges sorted by (From, To).
func (g *Digraph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for i := 0; i < g.n; i++ {
		for _, j := range g.out[i] {
			es = append(es, Edge{i, j})
		}
	}
	return es
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New(g.n)
	for i := 0; i < g.n; i++ {
		c.out[i] = append([]int(nil), g.out[i]...)
		c.in[i] = append([]int(nil), g.in[i]...)
	}
	copy(c.has, g.has)
	c.m = g.m
	return c
}

// Subgraph returns the subgraph of g over the same node set containing
// exactly the edges for which keep returns true. The fault package uses this
// to snapshot the surviving fabric after link and node failures.
func (g *Digraph) Subgraph(keep func(Edge) bool) *Digraph {
	s := New(g.n)
	for i := 0; i < g.n; i++ {
		for _, j := range g.out[i] {
			if keep(Edge{From: i, To: j}) {
				s.AddEdge(i, j)
			}
		}
	}
	return s
}

// IsRoute reports whether route (a sequence of nodes) is a valid path in g:
// at least two nodes, no repeats, and every consecutive pair is an edge.
func (g *Digraph) IsRoute(route []int) bool {
	if len(route) < 2 {
		return false
	}
	seen := make(map[int]bool, len(route))
	for _, v := range route {
		if v < 0 || v >= g.n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for k := 0; k+1 < len(route); k++ {
		if !g.HasEdge(route[k], route[k+1]) {
			return false
		}
	}
	return true
}

// IsMatching reports whether links form a matching of g: every edge exists
// and no node appears more than once as a source or as a destination.
func (g *Digraph) IsMatching(links []Edge) bool {
	return g.IsRegular(links, 1)
}

// IsRegular reports whether links form a valid r-port configuration of g:
// every edge exists, no duplicate edges, and every node appears at most r
// times as a source and at most r times as a destination. (A union of r
// edge-disjoint matchings satisfies this; see the paper's §7.)
func (g *Digraph) IsRegular(links []Edge, r int) bool {
	outDeg := make(map[int]int)
	inDeg := make(map[int]int)
	dup := make(map[Edge]bool, len(links))
	for _, e := range links {
		if !g.HasEdge(e.From, e.To) {
			return false
		}
		if dup[e] {
			return false
		}
		dup[e] = true
		outDeg[e.From]++
		inDeg[e.To]++
		if outDeg[e.From] > r || inDeg[e.To] > r {
			return false
		}
	}
	return true
}

func (g *Digraph) checkNode(i int) {
	if i < 0 || i >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", i, g.n))
	}
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Complete returns the complete directed graph over n nodes (every ordered
// pair except self-loops). This models a single n x n crossbar switch, the
// implicit topology of prior one-hop work.
func Complete(n int) *Digraph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Ring returns the directed cycle 0->1->...->n-1->0.
func Ring(n int) *Digraph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Torus returns a directed 2D torus fabric over rows*cols nodes: node
// (r, c) links to its east and south neighbors with wraparound. A classic
// partial topology with diameter (rows+cols)/2-ish, useful for exercising
// multi-hop routing on structured fabrics.
func Torus(rows, cols int) *Digraph {
	if rows < 1 || cols < 1 {
		panic("graph: torus dimensions must be positive")
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 {
				g.AddEdge(id(r, c), id(r, (c+1)%cols))
			}
			if rows > 1 {
				g.AddEdge(id(r, c), id((r+1)%rows, c))
			}
		}
	}
	return g
}

// ChordRing returns a directed ring over n nodes augmented with skip links
// of the given strides (e.g. strides 2 and 4 add edges i->i+2 and i->i+4
// mod n), a Chord-like low-diameter partial fabric.
func ChordRing(n int, strides ...int) *Digraph {
	g := Ring(n)
	for _, s := range strides {
		if s <= 1 || s >= n {
			continue
		}
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+s)%n)
		}
	}
	return g
}

// RandomPartial returns a strongly connected partial fabric over n nodes
// with approximately deg out-edges per node: a directed ring guaranteeing
// strong connectivity plus deg-1 extra random distinct out-edges per node.
// This models FSO-style fabrics where a complete topology is infeasible.
func RandomPartial(n, deg int, rng *rand.Rand) *Digraph {
	if deg < 1 {
		deg = 1
	}
	if deg > n-1 {
		deg = n - 1
	}
	g := Ring(n)
	for i := 0; i < n; i++ {
		for g.out[i] != nil && len(g.out[i]) < deg {
			j := rng.Intn(n)
			if j != i && !g.HasEdge(i, j) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}
