package graph

import "testing"

func TestPodsFabricStructure(t *testing.T) {
	const pods, m, k = 4, 5, 2
	g := Pods(pods, m, k)
	if g.N() != pods*m {
		t.Fatalf("N = %d, want %d", g.N(), pods*m)
	}
	// Complete within every pod.
	for p := 0; p < pods; p++ {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if i == j {
					continue
				}
				if !g.HasEdge(p*m+i, p*m+j) {
					t.Fatalf("missing intra-pod edge %d->%d", p*m+i, p*m+j)
				}
			}
		}
	}
	// Exactly k links per ordered pod pair, each between matching
	// gateways.
	for a := 0; a < pods; a++ {
		for b := 0; b < pods; b++ {
			if a == b {
				continue
			}
			count := 0
			for i := 0; i < m; i++ {
				for _, j := range g.Out(a*m + i) {
					if PodOf(j, m) == b {
						count++
					}
				}
			}
			if count != k {
				t.Fatalf("pods %d->%d have %d links, want %d", a, b, count, k)
			}
			for link := 0; link < k; link++ {
				from := PodGateway(a, b, link, m)
				to := PodGateway(b, a, link+1, m)
				if !g.HasEdge(from, to) {
					t.Fatalf("missing inter-pod link %d: %d->%d", link, from, to)
				}
			}
		}
	}
}

func TestPodsGatewaysSpread(t *testing.T) {
	// With enough links the gateways must rotate through distinct nodes
	// rather than hot-spotting one.
	const m = 8
	seen := map[int]bool{}
	for k := 0; k < 4; k++ {
		seen[PodGateway(0, 1, k, m)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 gateways landed on %d distinct nodes", len(seen))
	}
}

func TestPodOf(t *testing.T) {
	if PodOf(0, 4) != 0 || PodOf(3, 4) != 0 || PodOf(4, 4) != 1 || PodOf(11, 4) != 2 {
		t.Fatal("PodOf misassigns contiguous pods")
	}
}

func TestPodDims(t *testing.T) {
	if m, err := PodDims(12, 3); err != nil || m != 4 {
		t.Fatalf("PodDims(12,3) = %d, %v", m, err)
	}
	if _, err := PodDims(10, 3); err == nil {
		t.Fatal("uneven split accepted")
	}
	if _, err := PodDims(4, 8); err == nil {
		t.Fatal("more pods than nodes accepted")
	}
	if _, err := PodDims(4, 0); err == nil {
		t.Fatal("zero pods accepted")
	}
}

func TestPodsInterLinkClamp(t *testing.T) {
	// interLinks beyond podSize clamps instead of wrapping into duplicate
	// edges.
	g := Pods(2, 2, 5)
	for a := 0; a < 2; a++ {
		b := 1 - a
		count := 0
		for i := 0; i < 2; i++ {
			for _, j := range g.Out(a*2 + i) {
				if PodOf(j, 2) == b {
					count++
				}
			}
		}
		if count > 2 {
			t.Fatalf("pod pair carries %d links with podSize 2", count)
		}
	}
}
