package graph

import "fmt"

// Pods returns a pod-structured datacenter fabric: pods blocks of podSize
// nodes each, complete within a pod (every pod is its own crossbar), plus
// interLinks directed circuit links between every ordered pod pair. Node v
// belongs to pod v/podSize; pods are contiguous node ranges so pod
// membership needs no lookup table (see PodOf). The k-th inter-pod link
// from pod a to pod b leaves the gateway node PodGateway(a, b, k, podSize)
// of pod a and enters PodGateway(b, a, k+1, podSize) of pod b, spreading
// gateways across the pod instead of hot-spotting one node.
//
// The construction models leaf-spine datacenter fabrics where intra-pod
// circuits are cheap and plentiful while pod-to-pod circuit capacity is a
// scarce, contended resource — the regime the paper's §8 skewed
// large/small traffic mix stresses.
func Pods(pods, podSize, interLinks int) *Digraph {
	if pods < 1 || podSize < 1 {
		panic("graph: pods and podSize must be positive")
	}
	if interLinks > podSize {
		interLinks = podSize
	}
	g := New(pods * podSize)
	for p := 0; p < pods; p++ {
		base := p * podSize
		for i := 0; i < podSize; i++ {
			for j := 0; j < podSize; j++ {
				if i != j {
					g.AddEdge(base+i, base+j)
				}
			}
		}
	}
	for a := 0; a < pods; a++ {
		for b := 0; b < pods; b++ {
			if a == b {
				continue
			}
			for k := 0; k < interLinks; k++ {
				from := PodGateway(a, b, k, podSize)
				to := PodGateway(b, a, k+1, podSize)
				if from != to {
					g.AddEdge(from, to)
				}
			}
		}
	}
	return g
}

// PodOf returns the pod index of node v under contiguous pods of podSize
// nodes.
func PodOf(v, podSize int) int {
	if podSize < 1 {
		panic("graph: non-positive podSize")
	}
	return v / podSize
}

// PodGateway returns the node of pod a serving as the k-th gateway toward
// pod b: gateways rotate through the pod as (b+k) mod podSize so different
// destination pods and different parallel links use different nodes.
func PodGateway(a, b, k, podSize int) int {
	if podSize < 1 {
		panic("graph: non-positive podSize")
	}
	return a*podSize + (b+k)%podSize
}

// PodDims validates and normalizes a (pods, podSize) split of an n-node
// fabric into contiguous equal pods: pods must divide n. It returns the
// pod size.
func PodDims(n, pods int) (int, error) {
	if pods < 1 {
		return 0, fmt.Errorf("graph: pod count %d must be positive", pods)
	}
	if pods > n {
		return 0, fmt.Errorf("graph: %d pods over %d nodes", pods, n)
	}
	if n%pods != 0 {
		return 0, fmt.Errorf("graph: %d nodes do not split into %d equal pods", n, pods)
	}
	return n / pods, nil
}
