package graph

import "sort"

// UEdge is an undirected edge between nodes A and B, stored with A < B.
type UEdge struct {
	A, B int
}

// NormUEdge returns the undirected edge {a, b} in canonical (A < B) form.
func NormUEdge(a, b int) UEdge {
	if a > b {
		a, b = b, a
	}
	return UEdge{a, b}
}

// Ugraph is a general undirected graph over nodes 0..N()-1, modeling
// networks with bidirectional (full-duplex) links per the paper's §7. Valid
// configurations of such a network are matchings of the Ugraph.
type Ugraph struct {
	n   int
	adj [][]int
	has map[UEdge]bool
	m   int
}

// NewU returns an empty undirected graph over n nodes.
func NewU(n int) *Ugraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Ugraph{n: n, adj: make([][]int, n), has: make(map[UEdge]bool)}
}

// N returns the number of nodes.
func (g *Ugraph) N() int { return g.n }

// M returns the number of edges.
func (g *Ugraph) M() int { return g.m }

// AddEdge inserts the undirected edge {a, b}. Self-loops are rejected;
// re-adding an edge is a no-op.
func (g *Ugraph) AddEdge(a, b int) {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		panic("graph: node out of range")
	}
	if a == b {
		panic("graph: self-loop")
	}
	e := NormUEdge(a, b)
	if g.has[e] {
		return
	}
	g.has[e] = true
	g.adj[a] = insertSorted(g.adj[a], b)
	g.adj[b] = insertSorted(g.adj[b], a)
	g.m++
}

// HasEdge reports whether the undirected edge {a, b} exists.
func (g *Ugraph) HasEdge(a, b int) bool { return g.has[NormUEdge(a, b)] }

// Adj returns the sorted neighbors of node i. The returned slice must not
// be modified.
func (g *Ugraph) Adj(i int) []int { return g.adj[i] }

// Edges returns all edges sorted by (A, B).
func (g *Ugraph) Edges() []UEdge {
	es := make([]UEdge, 0, g.m)
	for e := range g.has {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].A != es[j].A {
			return es[i].A < es[j].A
		}
		return es[i].B < es[j].B
	})
	return es
}

// IsMatching reports whether links form a matching of g: every edge exists
// and no node is an endpoint of more than one edge.
func (g *Ugraph) IsMatching(links []UEdge) bool {
	used := make(map[int]bool, 2*len(links))
	for _, e := range links {
		if !g.has[NormUEdge(e.A, e.B)] {
			return false
		}
		if used[e.A] || used[e.B] {
			return false
		}
		used[e.A] = true
		used[e.B] = true
	}
	return true
}

// Directed returns the directed view of g: each undirected edge {a, b}
// becomes the two directed edges (a, b) and (b, a). A matching of g maps to
// a set of bidirectional active links; the simulate package uses the
// directed view to move packets in both directions.
func (g *Ugraph) Directed() *Digraph {
	d := New(g.n)
	for e := range g.has {
		d.AddEdge(e.A, e.B)
		d.AddEdge(e.B, e.A)
	}
	return d
}

// CompleteU returns the complete undirected graph over n nodes.
func CompleteU(n int) *Ugraph {
	g := NewU(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}
