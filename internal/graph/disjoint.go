// Edge-disjoint route extraction for proactive redundancy provisioning.
//
// DisjointRoutes finds up to k pairwise edge-disjoint src→dst paths with the
// Bhandari variant of Suurballe's successive-shortest-paths algorithm: each
// augmentation finds a shortest path in a residual graph where edges already
// used by earlier paths are removed and replaced by reverse edges of weight
// −1, so a later path may "cancel" part of an earlier one and the union of
// used edges always decomposes into edge-disjoint paths of minimum total
// length. Everything is deterministic: relaxations scan nodes and neighbors
// in ascending order, only strict improvements update, and the final
// decomposition always follows the smallest-numbered available edge.
package graph

import "sort"

// unreachable is the Bellman-Ford infinity; hop counts never approach it.
const unreachable = int(1e9)

// redge is one residual edge out of a node during an augmentation.
type redge struct {
	to int
	w  int // +1 for an unused fabric edge, −1 for cancelling a used edge
}

// DisjointRoutes returns up to k pairwise edge-disjoint paths from src to
// dst in g, each as a node sequence, each a simple path of at most maxHops
// hops (maxHops <= 0 leaves route length unbounded). The paths minimize
// total hop count before the per-route bound is applied; routes exceeding
// the bound are dropped from the result. The result is deterministic and
// sorted by (hops, node sequence). Returns nil when src == dst, k <= 0, or
// no path exists.
func DisjointRoutes(g *Digraph, src, dst, k, maxHops int) [][]int {
	g.checkNode(src)
	g.checkNode(dst)
	if src == dst || k <= 0 {
		return nil
	}
	used := make(map[Edge]bool)
	found := 0
	for found < k {
		par, ok := residualShortest(g, used, src, dst)
		if !ok {
			break
		}
		// XOR the augmenting path into the used set: traversing the
		// reverse of a used edge cancels it, anything else becomes used.
		steps := 0
		for v := dst; v != src; v = par[v] {
			u := par[v]
			if used[Edge{From: v, To: u}] {
				delete(used, Edge{From: v, To: u})
			} else {
				used[Edge{From: u, To: v}] = true
			}
			if steps++; steps > g.n {
				// Defensive: a parent cycle would mean the relaxation
				// admitted a negative cycle, which the residual construction
				// excludes. Stop augmenting rather than loop forever.
				return decompose(used, src, dst, found, maxHops)
			}
		}
		found++
	}
	return decompose(used, src, dst, found, maxHops)
}

// residualShortest runs a deterministic Bellman-Ford over the residual
// graph of (g, used) and returns the parent pointers of a shortest src→dst
// path, or ok=false when dst is unreachable.
func residualShortest(g *Digraph, used map[Edge]bool, src, dst int) (par []int, ok bool) {
	n := g.n
	// cancel[a] lists nodes u with a used edge u→a, i.e. residual edges
	// a→u of weight −1.
	cancel := make([][]int, n)
	for e := range used {
		cancel[e.To] = append(cancel[e.To], e.From)
	}
	adj := make([][]redge, n)
	for a := 0; a < n; a++ {
		sort.Ints(cancel[a])
		neg := make(map[int]bool, len(cancel[a]))
		for _, u := range cancel[a] {
			neg[u] = true
			adj[a] = append(adj[a], redge{to: u, w: -1})
		}
		for _, b := range g.out[a] {
			// A cancellation edge to the same node dominates (−1 < +1), so
			// the parallel fabric edge never improves a relaxation.
			if neg[b] || used[Edge{From: a, To: b}] {
				continue
			}
			adj[a] = append(adj[a], redge{to: b, w: 1})
		}
	}
	dist := make([]int, n)
	par = make([]int, n)
	for i := range dist {
		dist[i] = unreachable
		par[i] = -1
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		changed := false
		for a := 0; a < n; a++ {
			if dist[a] >= unreachable {
				continue
			}
			for _, e := range adj[a] {
				if nd := dist[a] + e.w; nd < dist[e.to] {
					dist[e.to] = nd
					par[e.to] = a
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	if dist[dst] >= unreachable {
		return nil, false
	}
	return par, true
}

// decompose splits the used-edge set into count edge-disjoint simple paths
// from src to dst. Each walk follows the smallest-numbered available edge;
// when a walk revisits a node it has already passed, the closed loop in
// between is spliced out (removing a cycle keeps the remaining edge set
// decomposable and only shortens the path). Paths longer than maxHops are
// dropped; the survivors are sorted by (hops, node sequence).
func decompose(used map[Edge]bool, src, dst, count, maxHops int) [][]int {
	if count == 0 {
		return nil
	}
	avail := make(map[int][]int, len(used))
	for e := range used {
		avail[e.From] = append(avail[e.From], e.To)
	}
	for a := range avail {
		sort.Ints(avail[a])
	}
	var paths [][]int
	for p := 0; p < count; p++ {
		seq := []int{src}
		pos := map[int]int{src: 0}
		cur := src
		for cur != dst {
			nexts := avail[cur]
			if len(nexts) == 0 {
				seq = nil // defensive: unbalanced degree, abandon this walk
				break
			}
			b := nexts[0]
			avail[cur] = nexts[1:]
			if j, ok := pos[b]; ok {
				for _, v := range seq[j+1:] {
					delete(pos, v)
				}
				seq = seq[:j+1]
			} else {
				seq = append(seq, b)
				pos[b] = len(seq) - 1
			}
			cur = b
		}
		if len(seq) >= 2 && (maxHops <= 0 || len(seq)-1 <= maxHops) {
			paths = append(paths, seq)
		}
	}
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) < len(paths[j])
		}
		for x := range paths[i] {
			if paths[i][x] != paths[j][x] {
				return paths[i][x] < paths[j][x]
			}
		}
		return false
	})
	return paths
}
