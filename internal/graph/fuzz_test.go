package graph

import "testing"

// decodeDisjointInstance turns raw fuzz bytes into a fabric plus a disjoint
// -routes query: byte 0 sizes the graph, byte 1..4 pick src/dst/k/maxHops,
// and each following 2-byte chunk is one directed edge.
func decodeDisjointInstance(data []byte) (*Digraph, int, int, int, int) {
	if len(data) < 5 {
		data = append(append([]byte(nil), data...), make([]byte, 5-len(data))...)
	}
	n := int(data[0])%24 + 2
	src := int(data[1]) % n
	dst := int(data[2]) % n
	k := int(data[3])%5 + 1
	maxHops := int(data[4]) % 8 // 0 = unbounded
	g := New(n)
	data = data[5:]
	for len(data) >= 2 {
		from := int(data[0]) % n
		to := int(data[1]) % n
		if from != to {
			g.AddEdge(from, to)
		}
		data = data[2:]
		if g.M() == 512 {
			break
		}
	}
	return g, src, dst, k, maxHops
}

// FuzzDisjointRoutes asserts the DisjointRoutes guarantees on arbitrary
// fabrics: every returned route is a simple fabric path from src to dst,
// routes are pairwise edge-disjoint, each respects the maxHops bound, at
// most k are returned, and the extraction is deterministic.
func FuzzDisjointRoutes(f *testing.F) {
	// K5-ish fabric, generous k.
	f.Add([]byte{3, 0, 4, 4, 0, 0, 1, 0, 2, 0, 3, 0, 4, 1, 4, 2, 4, 3, 4, 1, 2, 2, 3})
	// The Bhandari trap graph (cancellation required).
	f.Add([]byte{4, 0, 5, 2, 0, 0, 1, 1, 2, 2, 5, 1, 4, 4, 5, 0, 3, 3, 2})
	// Tight maxHops.
	f.Add([]byte{6, 0, 7, 3, 2, 0, 1, 1, 7, 0, 7, 0, 2, 2, 3, 3, 7})
	// Empty graph, degenerate query.
	f.Add([]byte{0, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, src, dst, k, maxHops := decodeDisjointInstance(data)
		paths := DisjointRoutes(g, src, dst, k, maxHops)
		if src == dst && paths != nil {
			t.Fatalf("src==dst yielded %v", paths)
		}
		if len(paths) > k {
			t.Fatalf("asked for %d paths, got %d", k, len(paths))
		}
		seen := map[Edge]bool{}
		for _, p := range paths {
			if len(p) < 2 || p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("path %v does not connect %d->%d", p, src, dst)
			}
			if !g.IsRoute(p) {
				t.Fatalf("path %v is not a simple fabric path", p)
			}
			if maxHops > 0 && len(p)-1 > maxHops {
				t.Fatalf("path %v exceeds maxHops=%d", p, maxHops)
			}
			for i := 0; i+1 < len(p); i++ {
				e := Edge{From: p[i], To: p[i+1]}
				if seen[e] {
					t.Fatalf("edge %v reused across paths %v", e, paths)
				}
				seen[e] = true
			}
		}
		again := DisjointRoutes(g, src, dst, k, maxHops)
		if len(again) != len(paths) {
			t.Fatalf("nondeterministic path count: %d vs %d", len(paths), len(again))
		}
		for i := range paths {
			if len(again[i]) != len(paths[i]) {
				t.Fatalf("nondeterministic path %d: %v vs %v", i, paths[i], again[i])
			}
			for j := range paths[i] {
				if again[i][j] != paths[i][j] {
					t.Fatalf("nondeterministic path %d: %v vs %v", i, paths[i], again[i])
				}
			}
		}
	})
}
