package algo

import (
	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// coreAlgo adapts one Octopus core variant: prep maps the shared Params
// (and possibly the load) onto core.Options, and Run drives the common
// plan → claim → measure pipeline.
type coreAlgo struct {
	name     string
	describe string
	prep     func(load *traffic.Load, p Params) (*traffic.Load, core.Options, error)
}

func (a *coreAlgo) Name() string     { return a.name }
func (a *coreAlgo) Describe() string { return a.describe }
func (a *coreAlgo) Kind() Kind       { return Offline }

// CoreOptions implements CorePlanner: it exposes the variant's mapping so
// core-scheduler pipelines (fault replay, rolling windows) can reuse it.
func (a *coreAlgo) CoreOptions(load *traffic.Load, p Params) (*traffic.Load, core.Options, error) {
	return a.prep(load, p)
}

// baseOptions maps the generic Params fields onto core.Options.
func baseOptions(p Params) core.Options {
	return core.Options{
		Window:      p.Window,
		Delta:       p.Delta,
		Ports:       p.Ports,
		MultiHop:    p.MultiHop,
		Matcher:     p.Matcher,
		Epsilon64:   p.Epsilon64,
		Parallelism: p.Parallelism,
		Obs:         p.Obs,
	}
}

func (a *coreAlgo) Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error) {
	runLoad, opt, err := a.prep(load, p)
	if err != nil {
		return nil, err
	}
	s, err := core.New(g, runLoad, opt)
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Algo:     a.name,
		Fabric:   g,
		Load:     runLoad,
		Schedule: res.Schedule,
		Plan: &PlanInfo{
			Iterations: res.Iterations,
			Delivered:  res.Delivered,
			Hops:       res.Hops,
			Psi:        res.Psi,
		},
		Reconfigs: len(res.Schedule.Configs),
		VerifyOpt: verify.Options{
			Window:    opt.Window,
			Ports:     opt.Ports,
			Epsilon64: opt.Epsilon64,
		},
	}
	if opt.MultiRoute {
		// Octopus+ backtracking revises the plan in ways a forward replay
		// cannot reproduce: the plan bookkeeping is authoritative, the
		// schedule is validated structurally, and (with KeepTrace) the
		// plan's own movement records are audited by VerifyPlan.
		out.Delivered = res.Delivered
		out.Total = res.TotalPackets
		out.Hops = res.Hops
		out.Psi = res.Psi
		out.ActiveLinkSlots = res.Schedule.ActiveLinkSlots()
		out.SlotsUsed = res.Schedule.Cost()
		if opt.KeepTrace {
			out.Extra = res.VerifyPlan
		}
		return out, nil
	}
	// Single-route plans are claimed exactly: the plan bookkeeping must
	// equal the independent bulk replay packet for packet. Chained
	// (MultiHop) plans still advance one hop per configuration in their
	// bookkeeping, so the bulk claim stays exact; the multi-hop replay the
	// schedule is designed for is additionally validated, but without a
	// bound (chained arrivals compete with resident packets, so delivery
	// may land on either side of the one-hop plan).
	out.VerifyOpt.Claim = &verify.Claim{Delivered: res.Delivered, Hops: res.Hops, Psi: res.Psi}
	if opt.MultiHop {
		sch, w := res.Schedule, opt.Window
		out.Extra = func() error {
			_, err := verify.Schedule(g, runLoad, sch, verify.Options{
				Window: w, Ports: opt.Ports, MultiHop: true,
			})
			return err
		}
	}
	sim, err := simulate.Run(g, runLoad, res.Schedule, simulate.Options{
		Window:    opt.Window,
		MultiHop:  opt.MultiHop,
		Ports:     opt.Ports,
		Epsilon64: opt.Epsilon64,
		Obs:       opt.Obs,
		Flight:    p.Flight,
	})
	if err != nil {
		return nil, err
	}
	out.Delivered = sim.Delivered
	out.Total = sim.TotalPackets
	out.Hops = sim.Hops
	out.Psi = sim.Psi
	out.ActiveLinkSlots = sim.ActiveLinkSlots
	out.ConfigsReplayed = sim.Configs
	out.SlotsUsed = sim.SlotsUsed
	out.Measured = true
	return out, nil
}

// passthrough wraps a pure options mapping into a prep func.
func passthrough(f func(p Params) core.Options) func(*traffic.Load, Params) (*traffic.Load, core.Options, error) {
	return func(load *traffic.Load, p Params) (*traffic.Load, core.Options, error) {
		return load, f(p), nil
	}
}

func octopusAlgo() Algorithm {
	return &coreAlgo{
		name:     "octopus",
		describe: "Octopus (§4): greedy best-benefit-per-cost configuration selection with exact matching",
		prep:     passthrough(baseOptions),
	}
}

func octopusGAlgo() Algorithm {
	return &coreAlgo{
		name:     "octopus-g",
		describe: "Octopus-G (§4.1): Octopus with the linear-time greedy 2-approximate matcher",
		prep: passthrough(func(p Params) core.Options {
			opt := baseOptions(p)
			opt.Matcher = core.MatcherGreedy
			return opt
		}),
	}
}

func octopusBAlgo() Algorithm {
	return &coreAlgo{
		name:     "octopus-b",
		describe: "Octopus-B (§4.1): Octopus with ternary search over the α candidates",
		prep: passthrough(func(p Params) core.Options {
			opt := baseOptions(p)
			opt.AlphaSearch = core.AlphaBinary
			return opt
		}),
	}
}

func octopusEAlgo() Algorithm {
	return &coreAlgo{
		name:     "octopus-e",
		describe: "Octopus-e (§4): later hops weighted by 1+x·ε, ε = eps64/64 (default eps64=4)",
		prep: passthrough(func(p Params) core.Options {
			opt := baseOptions(p)
			if opt.Epsilon64 == 0 {
				opt.Epsilon64 = 4
			}
			return opt
		}),
	}
}

func chainedAlgo() Algorithm {
	return &coreAlgo{
		name:     "chained",
		describe: "Octopus with multi-hop chaining (§5, Theorem 2); equivalent to octopus:multihop=true",
		prep: passthrough(func(p Params) core.Options {
			opt := baseOptions(p)
			opt.MultiHop = true
			return opt
		}),
	}
}

func octopusPlusAlgo() Algorithm {
	return &coreAlgo{
		name:     "octopus-plus",
		describe: "Octopus+ (§6): joint routing and scheduling over candidate routes with direct-link backtracking",
		prep: passthrough(func(p Params) core.Options {
			opt := baseOptions(p)
			opt.MultiRoute = true
			opt.DisableBacktrack = p.DisableBacktrack
			opt.KeepTrace = p.KeepTrace
			return opt
		}),
	}
}

func octopusRandomAlgo() Algorithm {
	return &coreAlgo{
		name:     "octopus-random",
		describe: "Octopus-random (§6 baseline): pin one random candidate route per flow, then plain Octopus",
		prep: func(load *traffic.Load, p Params) (*traffic.Load, core.Options, error) {
			rng := p.rng()
			resolved := load.Clone()
			for i := range resolved.Flows {
				f := &resolved.Flows[i]
				f.Routes = []traffic.Route{f.Routes[rng.Intn(len(f.Routes))]}
			}
			return resolved, baseOptions(p), nil
		},
	}
}
