package algo

import (
	"math/rand"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

func TestOctopusRedundantProvisioning(t *testing.T) {
	a, ok := Lookup("octopus-redundant")
	if !ok {
		t.Fatal("octopus-redundant not registered")
	}
	g := graph.Complete(8)
	rng := rand.New(rand.NewSource(5))
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(8, 200), rng)
	if err != nil {
		t.Fatal(err)
	}
	offered := load.TotalPackets()
	pristine := load.Clone()
	out, err := a.Run(g, load, Params{
		Window: 200, Delta: 4, Redundancy: 3, CritFrac: 0.5, Stretch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Total is the deduplicated offered load, not the inflated copy count.
	if out.Total != offered {
		t.Fatalf("Total = %d, want offered %d", out.Total, offered)
	}
	if out.Delivered > out.Total {
		t.Fatalf("unique delivered %d exceeds offered %d", out.Delivered, out.Total)
	}
	// The planned load carries the expanded copies.
	if len(out.Load.Flows) <= len(load.Flows) {
		t.Fatalf("load was not expanded: %d flows planned for %d offered",
			len(out.Load.Flows), len(load.Flows))
	}
	if _, err := out.Verify(); err != nil {
		t.Fatalf("outcome fails verification: %v", err)
	}
	// The input load is untouched by provisioning.
	for i := range load.Flows {
		if load.Flows[i].Critical || load.Flows[i].Redundant != 0 ||
			len(load.Flows[i].Routes) != len(pristine.Flows[i].Routes) {
			t.Fatalf("input flow %d mutated: %+v", load.Flows[i].ID, load.Flows[i])
		}
	}
}

func TestParseSpecRedundantKeys(t *testing.T) {
	a, p, err := ParseSpec("octopus-redundant:red=3,crit=0.5,stretch=1.5", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "octopus-redundant" {
		t.Fatalf("resolved %q", a.Name())
	}
	if p.Redundancy != 3 || p.CritFrac != 0.5 || p.Stretch != 1.5 {
		t.Fatalf("params not applied: %+v", p)
	}
	if !IsCore(a) {
		t.Fatal("octopus-redundant must be a core planner")
	}
	if _, _, err := ParseSpec("octopus-redundant:crit=x", Params{}); err == nil {
		t.Fatal("malformed crit value accepted")
	}
}
