// Package algo is the unified algorithm registry: one Scheduler-facing
// interface and result pipeline shared by every entry point in the
// repository — cmd/mhsim, cmd/mhsbench, internal/experiment, the
// differential harness internal/verify/diff, and the public façade.
//
// Every scheduling algorithm the paper evaluates (the six Octopus core
// variants, the baselines, the MaxWeight online policy, the hybrid
// circuit/packet scheme, and the UB pseudo-algorithm) registers itself
// here under a stable name. Entry points enumerate Registry() instead of
// maintaining their own rosters, so adding an algorithm is a one-file
// change: implement Algorithm, register it in register.go, and the CLIs,
// the experiment runners, and the differential verification suite pick it
// up by construction.
//
// An algorithm is selected by a spec string with a uniform grammar,
//
//	name[:key=value,...]
//
// e.g. "octopus-e:eps64=8" or "maxweight:hold=50,hys64=96"; see ParseSpec
// for the key set. Running an algorithm yields a uniform *Outcome that
// carries the planned schedule (when one exists), the delivered / hops /
// ψ / reconfiguration metrics every consumer reports, and everything the
// independent validator needs to re-check the run (Outcome.Verify).
package algo

import (
	"fmt"
	"sort"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// Kind classifies how an algorithm produces its result, which determines
// how entry points report it.
type Kind int

const (
	// Offline algorithms plan a configuration schedule for the whole
	// window up front (Octopus family, Eclipse/Solstice/RotorNet
	// baselines, hybrid). Outcome.Schedule is set when a circuit schedule
	// was produced.
	Offline Kind = iota
	// Online algorithms run closed-loop on instantaneous queue state and
	// produce no precomputed schedule (MaxWeight).
	Online
	// Bound pseudo-algorithms compute an upper bound on achievable
	// performance rather than a feasible schedule (UB).
	Bound
)

// String returns the lower-case kind name used in listings.
func (k Kind) String() string {
	switch k {
	case Online:
		return "online"
	case Bound:
		return "bound"
	default:
		return "offline"
	}
}

// Algorithm is one scheduling algorithm under the registry.
type Algorithm interface {
	// Name is the stable registry key (the CLI -algo value).
	Name() string
	// Describe is a one-line human-readable description; the README
	// algorithm table is generated from these strings.
	Describe() string
	// Kind classifies the algorithm's result shape.
	Kind() Kind
	// Run executes the algorithm on the MHS instance (g, load) under p.
	// Implementations must not mutate load (they clone when they need to
	// resolve routes) and must be deterministic given p.Seed/p.Rng.
	Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error)
}

// CorePlanner is implemented by the Octopus core family: algorithms that
// plan through core.Options and can therefore drive pipelines that need a
// core scheduler underneath (the fault-tolerant online replay, rolling
// windows). CoreOptions returns the load the scheduler should plan
// (possibly a resolved clone, e.g. octopus-random pins one route per
// flow) and the fully mapped options.
type CorePlanner interface {
	CoreOptions(load *traffic.Load, p Params) (*traffic.Load, core.Options, error)
}

// IsCore reports whether a is an Octopus-core-family algorithm.
func IsCore(a Algorithm) bool {
	_, ok := a.(CorePlanner)
	return ok
}

// PlanInfo is the scheduler's own bookkeeping of a planned schedule,
// reported separately from the (simulator-)measured outcome metrics.
type PlanInfo struct {
	Iterations int   // greedy iterations used
	Delivered  int   // packets the plan claims delivered
	Hops       int   // packet-hops the plan claims served
	Psi        int64 // planned ψ in traffic.WeightScale units
}

// Outcome is the uniform result of running any registered algorithm: the
// schedule (if one exists), the metrics every consumer reports, and the
// verification recipe for the differential harness.
type Outcome struct {
	// Algo is the registry name of the algorithm that produced this.
	Algo string

	// Fabric and Load are what Schedule is validated against; they may
	// differ from the run's inputs (RotorNet schedules over the complete
	// fabric, Eclipse schedules the one-hop decomposition, hybrid's
	// circuit schedule serves the residual load).
	Fabric *graph.Digraph
	Load   *traffic.Load

	// Schedule is the planned configuration sequence; nil for
	// schedule-free algorithms (maxweight, ub, or hybrid runs fully
	// absorbed by the packet network).
	Schedule *schedule.Schedule

	// Plan is the scheduler's own bookkeeping (nil for baselines whose
	// planner internals are not surfaced).
	Plan *PlanInfo

	// Authoritative outcome metrics: measured by the packet-level
	// simulator when Measured is true, otherwise the algorithm's own
	// (verified) bookkeeping or bound.
	Delivered       int
	Total           int
	Hops            int
	Psi             int64 // in traffic.WeightScale units; 0 when not tracked
	ActiveLinkSlots int64 // Σ αₖ·|Mₖ|; utilization denominator
	Reconfigs       int   // configurations planned, or online reconfigurations
	ConfigsReplayed int   // configurations the simulator replayed (0 if unmeasured)
	SlotsUsed       int
	Measured        bool

	// VerifyOpt and Extra are the verification recipe: VerifyOpt carries
	// the window/ports/claim for verify.Schedule, and Extra (optional)
	// checks algorithm-specific invariants beyond schedule validity.
	VerifyOpt verify.Options
	Extra     func() error
}

// DeliveredFraction returns Delivered / Total (0 for empty loads).
func (o *Outcome) DeliveredFraction() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Delivered) / float64(o.Total)
}

// Utilization returns packet-hops per active link-slot (0 if no link was
// ever active).
func (o *Outcome) Utilization() float64 {
	if o.ActiveLinkSlots == 0 {
		return 0
	}
	return float64(o.Hops) / float64(o.ActiveLinkSlots)
}

// DeliveredOfPsi returns delivered packets as a fraction of ψ in packet
// equivalents (the paper's Fig 7a metric; 0 when ψ is 0).
func (o *Outcome) DeliveredOfPsi() float64 {
	if o.Psi == 0 {
		return 0
	}
	return float64(o.Delivered) * float64(traffic.WeightScale) / float64(o.Psi)
}

// Verify re-checks the outcome independently of the algorithm's own
// bookkeeping. Schedule-producing outcomes go through verify.Schedule
// (matching structure, window budget, route feasibility, and the claimed
// metrics against an independent replay); schedule-free outcomes are held
// to their basic invariants. Extra, when set, runs afterwards in both
// cases. On success it returns the replay report (synthesized from the
// outcome metrics for schedule-free algorithms).
func (o *Outcome) Verify() (*verify.Report, error) {
	var rep *verify.Report
	if o.Schedule != nil {
		r, err := verify.Schedule(o.Fabric, o.Load, o.Schedule, o.VerifyOpt)
		if err != nil {
			return nil, err
		}
		rep = r
	} else {
		if o.Delivered < 0 || o.Total < 0 || o.Hops < 0 || o.Psi < 0 {
			return nil, fmt.Errorf("algo: %s reported negative metrics (delivered %d, total %d, hops %d, psi %d)",
				o.Algo, o.Delivered, o.Total, o.Hops, o.Psi)
		}
		if o.Delivered > o.Total {
			return nil, fmt.Errorf("algo: %s delivered %d of %d offered packets", o.Algo, o.Delivered, o.Total)
		}
		if o.Hops < o.Delivered {
			return nil, fmt.Errorf("algo: %s delivered %d packets over only %d packet-hops", o.Algo, o.Delivered, o.Hops)
		}
		rep = &verify.Report{Delivered: o.Delivered, Hops: o.Hops, Psi: o.Psi, SlotsUsed: o.SlotsUsed}
	}
	if o.Extra != nil {
		if err := o.Extra(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// registry holds the registered algorithms in registration order, which
// register.go keeps canonical (core variants, then baselines, then the
// online/hybrid/bound entries).
var registry []Algorithm

// Register adds an algorithm to the registry. It panics on a duplicate or
// empty name; registration happens once, at package init.
func Register(a Algorithm) {
	if a.Name() == "" {
		panic("algo: Register with empty name")
	}
	for _, r := range registry {
		if r.Name() == a.Name() {
			panic(fmt.Sprintf("algo: duplicate registration of %q", a.Name()))
		}
	}
	registry = append(registry, a)
}

// Registry returns every registered algorithm in deterministic canonical
// order. The returned slice is a copy.
func Registry() []Algorithm {
	return append([]Algorithm(nil), registry...)
}

// Names returns the registered algorithm names in registry order.
func Names() []string {
	names := make([]string, len(registry))
	for i, a := range registry {
		names[i] = a.Name()
	}
	return names
}

// SortedNames returns the registered names in lexical order (for stable
// error messages independent of display order).
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}

// Lookup returns the algorithm registered under name.
func Lookup(name string) (Algorithm, bool) {
	for _, a := range registry {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// CoreNames returns the names of the Octopus-core-family algorithms (the
// ones that can drive core-scheduler pipelines such as -faults).
func CoreNames() []string {
	var names []string
	for _, a := range registry {
		if IsCore(a) {
			names = append(names, a.Name())
		}
	}
	return names
}
