package algo

import (
	"strings"
	"testing"

	"octopus/internal/core"
)

func TestParseMatcher(t *testing.T) {
	if m, err := ParseMatcher("exact"); err != nil || m != core.MatcherExact {
		t.Fatalf("exact: %v, %v", m, err)
	}
	if m, err := ParseMatcher("greedy"); err != nil || m != core.MatcherGreedy {
		t.Fatalf("greedy: %v, %v", m, err)
	}
	if _, err := ParseMatcher("hungarian"); err == nil {
		t.Fatal("bogus matcher accepted")
	}
}

func TestParseSpecPlainName(t *testing.T) {
	base := Params{Window: 100, Delta: 5}
	a, p, err := ParseSpec("octopus", base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "octopus" || p != base {
		t.Fatalf("got %s, %+v", a.Name(), p)
	}
}

func TestParseSpecOptions(t *testing.T) {
	base := Params{Window: 100, Delta: 5}
	a, p, err := ParseSpec("maxweight:hold=50,hys64=96", base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "maxweight" || p.Hold != 50 || p.Hysteresis64 != 96 {
		t.Fatalf("got %s, %+v", a.Name(), p)
	}
	_, p, err = ParseSpec("octopus-e:eps64=8,window=200,matcher=greedy", base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epsilon64 != 8 || p.Window != 200 || p.Matcher != core.MatcherGreedy {
		t.Fatalf("got %+v", p)
	}
	_, p, err = ParseSpec("octopus-plus:backtrack=false,keeptrace=true", base)
	if err != nil {
		t.Fatal(err)
	}
	if !p.DisableBacktrack || !p.KeepTrace {
		t.Fatalf("got %+v", p)
	}
	_, p, err = ParseSpec("octopus:multihop=true,seed=7,ports=2", base)
	if err != nil {
		t.Fatal(err)
	}
	if !p.MultiHop || p.Seed != 7 || p.Ports != 2 {
		t.Fatalf("got %+v", p)
	}
	_, p, err = ParseSpec("hybrid:rate=0.25", base)
	if err != nil {
		t.Fatal(err)
	}
	if p.PacketRate != 0.25 {
		t.Fatalf("got %+v", p)
	}
}

func TestParseSpecErrors(t *testing.T) {
	base := Params{}
	cases := []struct {
		spec string
		want string
	}{
		{"bogus", "unknown algorithm"},
		{"", "unknown algorithm"},
		{"octopus:", "malformed option"},
		{"octopus:eps64", "malformed option"},
		{"octopus:eps64=", "malformed option"},
		{"octopus:eps64=abc", "want an integer"},
		{"octopus:multihop=maybe", "want a boolean"},
		{"hybrid:rate=fast", "want a number"},
		{"octopus:matcher=hungarian", "unknown matcher"},
		{"octopus:color=red", "unknown option"},
	}
	for _, tc := range cases {
		_, _, err := ParseSpec(tc.spec, base)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %v, want substring %q", tc.spec, err, tc.want)
		}
	}
	// The unknown-algorithm error lists the valid names.
	_, _, err := ParseSpec("bogus", base)
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error does not list %q: %v", n, err)
		}
	}
}

// TestSpecKeysCoverSetter keeps the documented key list in sync with the
// setter: every listed key must parse, and the error for an unknown key
// must list them all.
func TestSpecKeysCoverSetter(t *testing.T) {
	vals := map[string]string{
		"matcher": "greedy", "multihop": "true", "backtrack": "false",
		"keeptrace": "true", "rate": "0.5",
	}
	for _, key := range specKeys {
		val, ok := vals[key]
		if !ok {
			val = "3"
		}
		p := Params{}
		if err := p.set(key, val); err != nil {
			t.Errorf("documented key %s rejected: %v", key, err)
		}
	}
	p := Params{}
	err := p.set("nope", "1")
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	for _, key := range specKeys {
		if !strings.Contains(err.Error(), key) {
			t.Errorf("unknown-key error does not list %s: %v", key, err)
		}
	}
}
