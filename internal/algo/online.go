package algo

import (
	"fmt"

	"octopus/internal/graph"
	"octopus/internal/hybrid"
	"octopus/internal/online"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// maxweightAlgo is the closed-loop MaxWeight baseline: all flows arrive at
// slot 0 and the adaptive controller schedules off instantaneous queue
// state over a horizon of Window slots. It produces no schedule; its
// outcome is held to the schedule-free invariants.
type maxweightAlgo struct{}

func (maxweightAlgo) Name() string { return "maxweight" }
func (maxweightAlgo) Describe() string {
	return "MaxWeight adaptive online policy: hold the max-backlog matching (hold=0 → 10·Δ slots), hysteresis hys64/64"
}
func (maxweightAlgo) Kind() Kind { return Online }

func (maxweightAlgo) Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error) {
	arr := make([]online.Arrival, 0, len(load.Flows))
	for _, f := range load.Flows {
		arr = append(arr, online.Arrival{Flow: f, At: 0})
	}
	res, err := online.MaxWeightAdaptive(g, arr, online.AdaptiveOptions{
		Horizon:      p.Window,
		Delta:        p.Delta,
		Hold:         p.Hold,
		Hysteresis64: p.Hysteresis64,
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Algo:      "maxweight",
		Fabric:    g,
		Load:      load,
		Delivered: res.Delivered,
		Total:     res.Total,
		Hops:      res.Hops,
		Reconfigs: res.Reconfigs,
		SlotsUsed: res.SlotsUsed,
	}, nil
}

// hybridAlgo is the §7 hybrid circuit/packet scheme: the packet network
// absorbs small flows first, Octopus schedules the residual. The circuit
// plan's bookkeeping is claimed exactly against the residual load; the
// combined delivery is the outcome metric.
type hybridAlgo struct{}

func (hybridAlgo) Name() string { return "hybrid" }
func (hybridAlgo) Describe() string {
	return "Hybrid circuit/packet scheme (§7): packet network absorbs rate·W per port (rate=0.1), Octopus schedules the rest"
}
func (hybridAlgo) Kind() Kind { return Offline }

func (hybridAlgo) Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error) {
	rate := p.PacketRate
	if rate == 0 {
		rate = 0.1
	}
	res, err := hybrid.Schedule(g, load, baseOptions(p), rate)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Algo:      "hybrid",
		Fabric:    g,
		Load:      load,
		Delivered: res.Delivered(),
		Total:     res.TotalPackets,
		// The packet network is full-bisection: one hop per packet it
		// absorbs; the circuit hops add on top.
		Hops: res.PacketDelivered,
	}
	if res.Circuit != nil {
		c := res.Circuit
		out.Load = res.Residual
		out.Schedule = c.Schedule
		out.Plan = &PlanInfo{
			Iterations: c.Iterations,
			Delivered:  c.Delivered,
			Hops:       c.Hops,
			Psi:        c.Psi,
		}
		out.Hops += c.Hops
		out.Psi = c.Psi
		out.ActiveLinkSlots = c.Schedule.ActiveLinkSlots()
		out.Reconfigs = len(c.Schedule.Configs)
		out.SlotsUsed = c.Schedule.Cost()
		out.VerifyOpt = verify.Options{
			Window:    p.Window,
			Ports:     p.Ports,
			Epsilon64: p.Epsilon64,
			Claim:     &verify.Claim{Delivered: c.Delivered, Hops: c.Hops, Psi: c.Psi},
		}
	}
	out.Extra = func() error {
		if res.PacketDelivered < 0 || res.Delivered() > res.TotalPackets {
			return fmt.Errorf("hybrid delivered %d (packet %d) of %d packets",
				res.Delivered(), res.PacketDelivered, res.TotalPackets)
		}
		return nil
	}
	return out, nil
}
