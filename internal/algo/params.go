package algo

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"octopus/internal/core"
	"octopus/internal/obs"
	"octopus/internal/obs/flight"
)

// Params is the shared parameter spec every registered algorithm runs
// under. The generic fields (Window, Delta, Ports, MultiHop, Matcher,
// Seed) apply to every algorithm that uses them; the remaining knobs are
// consumed by the algorithms they name and ignored by the rest.
type Params struct {
	Window int // W, the scheduling window (or online horizon) in slots
	Delta  int // Δ, the reconfiguration delay in slots
	Ports  int // input/output ports per node (§7); 0 or 1 = single-port

	// MultiHop lets packets chain hops within one configuration (§5),
	// both in planning (core.Options.MultiHop) and in measurement.
	MultiHop bool

	// Matcher selects the matching solver for algorithms that take one
	// (the octopus-g preset overrides it to the greedy matcher).
	Matcher core.Matcher

	// Seed seeds algorithm-internal randomness (octopus-random's route
	// pinning). Rng, when non-nil, overrides Seed so a caller can share
	// one deterministic stream across generation and runs.
	Seed int64
	Rng  *rand.Rand

	// Epsilon64 is the Octopus-e later-hop bonus in 1/64 units; 0 selects
	// the algorithm default (4 for octopus-e, off for plain octopus).
	Epsilon64 int

	// Hold and Hysteresis64 configure maxweight: slots to hold each
	// matching (0 = the online package default of 10·Δ) and the
	// reconfiguration hysteresis in 1/64 units.
	Hold         int
	Hysteresis64 int

	// PacketRate is hybrid's packet-network per-port rate in packets per
	// slot; 0 selects the default 0.1.
	PacketRate float64

	// SlotsPerMatching is rotornet's per-matching dwell time; 0 selects
	// the RotorNet default.
	SlotsPerMatching int

	// DisableBacktrack turns off Octopus+ direct-link backtracking
	// (the ext-backtrack ablation).
	DisableBacktrack bool

	// Redundancy, CritFrac and Stretch configure octopus-redundant's
	// proactive multipath provisioning: the top CritFrac fraction of flows
	// (largest first) is provisioned with up to Redundancy pairwise
	// edge-disjoint route copies, alternates capped at Stretch × the
	// primary hop count. Redundancy 0 selects the default 2, Stretch 0 the
	// default 2.0; CritFrac 0 (the default) disables provisioning, making
	// octopus-redundant bit-identical to plain octopus.
	Redundancy int
	CritFrac   float64
	Stretch    float64

	// Pods partitions the fabric's contiguous node blocks into this many
	// pods for octopus-sharded: pod-local flows are planned per pod in
	// parallel, inter-pod flows by the reconciliation pass. 0 or 1 selects
	// the unsharded identity (bit-identical to plain octopus).
	Pods int

	// KeepTrace makes core planners record every planned movement so the
	// plan can be audited by core.Result.VerifyPlan (used by the
	// differential harness; costs memory).
	KeepTrace bool

	// Parallelism is the worker count of the core planner's per-α
	// evaluation; 0 uses GOMAXPROCS, 1 runs serially. Results are
	// identical at every setting.
	Parallelism int

	// Obs receives metrics and decision-trace events from the layers the
	// algorithm runs (core planning, simulation replay, online epochs).
	// nil disables instrumentation; results are identical either way.
	Obs *obs.Observer

	// Flight receives per-flow lifecycle events from the measurement
	// replay (and, for online drivers, the epoch engine). nil disables
	// recording; results are identical either way. FlightSample is the
	// deterministic flow-ID sampling denominator used when the caller
	// builds the recorder from a spec (`sample=N` or `sample=1/N`;
	// 0 or 1 = exhaustive) — it does not alter an already-built recorder.
	Flight       *flight.Recorder
	FlightSample int
}

// rng returns the parameter RNG: Rng when set, otherwise a fresh stream
// seeded with Seed.
func (p Params) rng() *rand.Rand {
	if p.Rng != nil {
		return p.Rng
	}
	return rand.New(rand.NewSource(p.Seed))
}

// ParseMatcher maps a matcher name onto core.Matcher. "exact" auto-selects
// between the dense and sparse exact paths (bit-identical); "dense" and
// "sparse" force one of them (A/B modes, still bit-identical); "warm"
// retains dual potentials across iterations (equal matching weight, but
// possibly a different equal-weight optimum — see DESIGN.md §13).
func ParseMatcher(s string) (core.Matcher, error) {
	switch s {
	case "exact":
		return core.MatcherExact, nil
	case "greedy":
		return core.MatcherGreedy, nil
	case "dense":
		return core.MatcherDense, nil
	case "sparse":
		return core.MatcherSparse, nil
	case "warm":
		return core.MatcherWarm, nil
	}
	return 0, fmt.Errorf("unknown matcher %q (want exact, greedy, dense, sparse, or warm)", s)
}

// ParseSpec resolves an algorithm spec string with the uniform grammar
//
//	name[:key=value,...]
//
// against the registry, overlaying any key=value options onto base. Keys:
// window, delta, ports, seed, eps64, hold, hys64, slots (integers),
// rate (float), multihop, backtrack, keeptrace (booleans; backtrack=false
// disables Octopus+ backtracking), and matcher (exact|greedy).
func ParseSpec(spec string, base Params) (Algorithm, Params, error) {
	name, opts, hasOpts := strings.Cut(spec, ":")
	a, ok := Lookup(name)
	if !ok {
		return nil, base, fmt.Errorf("unknown algorithm %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	p := base
	if !hasOpts {
		return a, p, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return nil, base, fmt.Errorf("algorithm spec %q: malformed option %q (want key=value)", spec, kv)
		}
		if err := p.set(key, val); err != nil {
			return nil, base, fmt.Errorf("algorithm spec %q: %w", spec, err)
		}
	}
	return a, p, nil
}

// specKeys names every key ParseSpec accepts, for error messages.
var specKeys = []string{
	"backtrack", "crit", "delta", "eps64", "hold", "hys64", "keeptrace",
	"matcher", "multihop", "par", "pods", "ports", "rate", "red", "sample",
	"seed", "slots", "stretch", "window",
}

// set applies one key=value option to the params.
func (p *Params) set(key, val string) error {
	parseInt := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("option %s=%q: want an integer", key, val)
		}
		*dst = v
		return nil
	}
	parseBool := func(dst *bool) error {
		v, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("option %s=%q: want a boolean", key, val)
		}
		*dst = v
		return nil
	}
	parseFloat := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("option %s=%q: want a number", key, val)
		}
		*dst = v
		return nil
	}
	switch key {
	case "window":
		return parseInt(&p.Window)
	case "delta":
		return parseInt(&p.Delta)
	case "ports":
		return parseInt(&p.Ports)
	case "par":
		return parseInt(&p.Parallelism)
	case "pods":
		return parseInt(&p.Pods)
	case "eps64":
		return parseInt(&p.Epsilon64)
	case "hold":
		return parseInt(&p.Hold)
	case "hys64":
		return parseInt(&p.Hysteresis64)
	case "slots":
		return parseInt(&p.SlotsPerMatching)
	case "red":
		return parseInt(&p.Redundancy)
	case "crit":
		return parseFloat(&p.CritFrac)
	case "stretch":
		return parseFloat(&p.Stretch)
	case "multihop":
		return parseBool(&p.MultiHop)
	case "keeptrace":
		return parseBool(&p.KeepTrace)
	case "backtrack":
		var backtrack bool
		if err := parseBool(&backtrack); err != nil {
			return err
		}
		p.DisableBacktrack = !backtrack
		return nil
	case "seed":
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("option %s=%q: want an integer", key, val)
		}
		p.Seed = v
		return nil
	case "rate":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("option %s=%q: want a number", key, val)
		}
		p.PacketRate = v
		return nil
	case "matcher":
		m, err := ParseMatcher(val)
		if err != nil {
			return err
		}
		p.Matcher = m
		return nil
	case "sample":
		// Flight-recorder sampling: one tracked flow in N. Accept both
		// "sample=64" and the spec-sheet form "sample=1/64".
		s := val
		if rest, ok := strings.CutPrefix(s, "1/"); ok {
			s = rest
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return fmt.Errorf("option %s=%q: want N or 1/N with N >= 0", key, val)
		}
		p.FlightSample = v
		return nil
	}
	keys := append([]string(nil), specKeys...)
	sort.Strings(keys)
	return fmt.Errorf("unknown option %q (valid: %s)", key, strings.Join(keys, ", "))
}
