package algo

import (
	"math/rand"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// testInstance builds a small seeded MHS instance with multi-route,
// multi-hop flows so every registered algorithm has something to chew on.
func testInstance(t *testing.T, seed int64) (*graph.Digraph, *traffic.Load) {
	t.Helper()
	g := graph.Complete(8)
	rng := rand.New(rand.NewSource(seed))
	p := traffic.DefaultSyntheticParams(8, 120)
	p.RouteChoices = 3
	load, err := traffic.Synthetic(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(load.Flows) == 0 {
		t.Fatal("empty test load")
	}
	return g, load
}

// TestRegistryCompleteness is the registry-wide smoke-and-verify suite:
// every registered algorithm must run on a small seeded instance, deliver
// a self-consistent Outcome, and pass its own verification recipe
// (verify.Schedule for schedule producers, the metric invariants for
// schedule-free algorithms).
func TestRegistryCompleteness(t *testing.T) {
	g, load := testInstance(t, 11)
	offered := load.TotalPackets()
	for _, a := range Registry() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			out, err := a.Run(g, load, Params{Window: 120, Delta: 4, Seed: 1, KeepTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			if out.Algo != a.Name() {
				t.Errorf("Outcome.Algo = %q, want %q", out.Algo, a.Name())
			}
			if out.Total <= 0 {
				t.Errorf("no offered packets in outcome (%d)", out.Total)
			}
			if out.Delivered < 0 || out.Delivered > out.Total {
				t.Errorf("delivered %d of %d", out.Delivered, out.Total)
			}
			if out.Hops < out.Delivered {
				t.Errorf("delivered %d over %d hops", out.Delivered, out.Hops)
			}
			// Eclipse reports against its one-hop decomposition, whose total
			// exceeds the packet count; everyone else reports the offered load.
			if a.Name() != "eclipse" && out.Total != offered {
				t.Errorf("total %d, offered %d", out.Total, offered)
			}
			if (a.Kind() == Offline) != (out.Schedule != nil) && a.Name() != "hybrid" {
				t.Errorf("kind %s with schedule=%v", a.Kind(), out.Schedule != nil)
			}
			if _, err := out.Verify(); err != nil {
				t.Errorf("verification failed: %v", err)
			}
		})
	}
}

// TestRegistryDeterministic reruns every algorithm on the same instance
// and params: metrics and schedule shape must be identical (octopus-random
// must re-draw the same routes from Seed).
func TestRegistryDeterministic(t *testing.T) {
	g, load := testInstance(t, 23)
	for _, a := range Registry() {
		p := Params{Window: 100, Delta: 3, Seed: 9}
		o1, err := a.Run(g, load, p)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		o2, err := a.Run(g, load, p)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if o1.Delivered != o2.Delivered || o1.Hops != o2.Hops || o1.Psi != o2.Psi {
			t.Errorf("%s: nondeterministic metrics: %d/%d/%d vs %d/%d/%d",
				a.Name(), o1.Delivered, o1.Hops, o1.Psi, o2.Delivered, o2.Hops, o2.Psi)
		}
	}
}

// TestRegistryRunsDoNotMutateLoad guards the Algorithm contract: Run must
// not modify the caller's load (octopus-random and eclipse resolve clones).
func TestRegistryRunsDoNotMutateLoad(t *testing.T) {
	g, load := testInstance(t, 31)
	pristine := load.Clone()
	for _, a := range Registry() {
		if _, err := a.Run(g, load, Params{Window: 80, Delta: 2, Seed: 4}); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if len(load.Flows) != len(pristine.Flows) {
			t.Fatalf("%s: flow count changed", a.Name())
		}
		for i := range load.Flows {
			if load.Flows[i].Size != pristine.Flows[i].Size ||
				len(load.Flows[i].Routes) != len(pristine.Flows[i].Routes) {
				t.Fatalf("%s mutated flow %d", a.Name(), i)
			}
		}
	}
}

func TestRegistryListing(t *testing.T) {
	reg := Registry()
	if len(reg) == 0 {
		t.Fatal("empty registry")
	}
	names := Names()
	if len(names) != len(reg) {
		t.Fatalf("Names() has %d entries, registry %d", len(names), len(reg))
	}
	seen := map[string]bool{}
	for i, a := range reg {
		if a.Name() == "" || a.Describe() == "" {
			t.Errorf("algorithm %d has empty name or description", i)
		}
		if seen[a.Name()] {
			t.Errorf("duplicate name %q", a.Name())
		}
		seen[a.Name()] = true
		if names[i] != a.Name() {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], a.Name())
		}
		got, ok := Lookup(a.Name())
		if !ok || got.Name() != a.Name() {
			t.Errorf("Lookup(%q) failed", a.Name())
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Error("Lookup accepted unknown name")
	}
	// The core family is exactly the set of CorePlanner implementations,
	// and must include the fault-replay-capable variants.
	coreSet := map[string]bool{}
	for _, n := range CoreNames() {
		coreSet[n] = true
	}
	for _, n := range []string{"octopus", "octopus-g", "octopus-b", "octopus-e", "chained", "octopus-plus", "octopus-random", "octopus-redundant"} {
		if !coreSet[n] {
			t.Errorf("%s missing from CoreNames()", n)
		}
	}
	for _, n := range []string{"rotornet", "maxweight", "ub", "hybrid", "eclipse", "eclipse-based", "eclipse-pp", "solstice"} {
		if coreSet[n] {
			t.Errorf("%s wrongly classified as core", n)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(octopusAlgo())
}
