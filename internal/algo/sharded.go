package algo

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// shardedAlgo is octopus-sharded: pod-decomposed Octopus for fabrics whose
// nodes split into contiguous pods (graph.Pods or any fabric with the same
// node numbering). Pod-local flows are scheduled by independent Octopus
// core instances — one per pod, fanned out across par workers, each with
// its own matching arena — whose configurations merge into one global
// sequence (pods are node-disjoint, so the union of per-pod matchings is a
// matching). A deterministic cross-pod reconciliation pass then schedules
// the inter-pod flows on the whole fabric in the window that remains.
//
// With pods=1 the decomposition is the identity: the run delegates to the
// exact plain-octopus pipeline and is pinned bit-identical to it by the
// differential fingerprint harness. With pods>1 the merged schedule is
// quality-compared (ψ) against unsharded octopus instead — the merge
// stretches pod configurations to the slowest pod's α and the window split
// between the local and reconciliation phases is heuristic, so ψ drifts
// within a documented bound rather than matching exactly (DESIGN.md §16).
type shardedAlgo struct {
	octopus *coreAlgo // the pods=1 delegate and per-shard planner config
}

func octopusShardedAlgo() Algorithm {
	return &shardedAlgo{octopus: octopusAlgo().(*coreAlgo)}
}

func (a *shardedAlgo) Name() string { return "octopus-sharded" }
func (a *shardedAlgo) Describe() string {
	return "Pod-sharded Octopus: per-pod parallel planning (pods=N, par=K) merged with a cross-pod reconciliation pass; pods=1 is bit-identical to octopus"
}
func (a *shardedAlgo) Kind() Kind { return Offline }

func (a *shardedAlgo) Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error) {
	pods := p.Pods
	if pods <= 1 {
		// Identity decomposition: run the exact plain-octopus pipeline so
		// the outcome (schedule, claim, measured metrics) is bit-identical.
		out, err := a.octopus.Run(g, load, p)
		if err != nil {
			return nil, err
		}
		out.Algo = a.Name()
		return out, nil
	}
	if p.MultiHop {
		return nil, fmt.Errorf("algo: octopus-sharded does not support multihop")
	}
	podSize, err := graph.PodDims(g.N(), pods)
	if err != nil {
		return nil, err
	}
	opt := baseOptions(p)
	if err := load.Validate(g); err != nil {
		return nil, err
	}

	// Partition: a flow is pod-local iff every node of every candidate
	// route stays inside one pod; everything else reconciles globally.
	shardIdx := make([][]int, pods)
	var crossIdx []int
	intraHops, crossHops, crossPackets := 0, 0, 0
	for i := range load.Flows {
		f := &load.Flows[i]
		pod, local := flowPod(f, podSize)
		if local {
			shardIdx[pod] = append(shardIdx[pod], i)
			intraHops += f.Size * f.Routes[0].Hops()
		} else {
			crossIdx = append(crossIdx, i)
			crossHops += f.Size * f.Routes[0].Hops()
			crossPackets += f.Size
		}
	}

	// Window split: the local phase gets the intra-pod share of the
	// packet-hop demand, the reconciliation pass the rest. Both phases
	// need at least one configuration's worth of slots to be useful.
	localWindow := p.Window
	if crossHops > 0 && intraHops+crossHops > 0 {
		localWindow = p.Window * intraHops / (intraHops + crossHops)
	}
	if intraHops == 0 {
		localWindow = 0
	}

	var merged schedule.Schedule
	merged.Delta = p.Delta
	planned := PlanInfo{}
	var results []*core.Result
	var planNs []int64
	if localWindow > p.Delta {
		shardOpt := opt
		shardOpt.Window = localWindow
		results, planNs, err = runShards(g, load, shardIdx, podSize, shardOpt, p.Parallelism, opt.Obs.Enabled())
		if err != nil {
			return nil, err
		}
		mergeShards(&merged, results, localWindow, p.Delta, &planned)
	}

	// Per-pod observability: the workers only stamp wall time (and only when
	// the observer is on); metrics and trace events are emitted here, after
	// the barrier, in pod order, so the journal is deterministic at any par.
	// Strictly read-only — the sharded plan is bit-identical with obs off.
	if opt.Obs.Enabled() {
		podPlan := opt.Obs.Histogram("octopus_sharded_pod_plan_nanos")
		podPsi := opt.Obs.Histogram("octopus_sharded_pod_psi")
		podsPlanned := opt.Obs.Counter("octopus_sharded_pods_planned_total")
		tracer := opt.Obs.Tracer()
		for pod, r := range results {
			if r == nil {
				continue
			}
			podsPlanned.Inc()
			podPlan.Observe(planNs[pod])
			podPsi.Observe(r.Psi)
			tracer.Emit("sharded.pod",
				obs.I("pod", int64(pod)),
				obs.I("flows", int64(len(shardIdx[pod]))),
				obs.I("psi", r.Psi),
				obs.I("delivered", int64(r.Delivered)),
				obs.I("configs", int64(len(r.Schedule.Configs))),
				obs.I("plan_ns", planNs[pod]),
			)
		}
		opt.Obs.Counter("octopus_sharded_cross_flows_total").Add(int64(len(crossIdx)))
		opt.Obs.Counter("octopus_sharded_cross_packets_total").Add(int64(crossPackets))
	}

	// Reconciliation: schedule the inter-pod flows over the whole fabric
	// in the residual window, appending to the merged sequence.
	if len(crossIdx) > 0 {
		remaining := p.Window - merged.Cost()
		if remaining > p.Delta {
			crossLoad := subsetLoad(load, crossIdx)
			crossOpt := opt
			crossOpt.Window = remaining
			var crossStart time.Time
			if opt.Obs.Enabled() {
				crossStart = time.Now()
			}
			s, err := core.New(g, crossLoad, crossOpt)
			if err != nil {
				return nil, err
			}
			res, err := s.Run()
			if err != nil {
				return nil, err
			}
			merged.Configs = append(merged.Configs, res.Schedule.Configs...)
			planned.Iterations += res.Iterations
			planned.Delivered += res.Delivered
			planned.Hops += res.Hops
			planned.Psi += res.Psi
			if opt.Obs.Enabled() {
				opt.Obs.Tracer().Emit("sharded.cross",
					obs.I("flows", int64(len(crossIdx))),
					obs.I("packets", int64(crossPackets)),
					obs.I("window", int64(remaining)),
					obs.I("psi", res.Psi),
					obs.I("delivered", int64(res.Delivered)),
					obs.I("configs", int64(len(res.Schedule.Configs))),
					obs.I("plan_ns", int64(time.Since(crossStart))),
				)
			}
		}
	}

	out := &Outcome{
		Algo:      a.Name(),
		Fabric:    g,
		Load:      load,
		Schedule:  &merged,
		Plan:      &planned,
		Reconfigs: len(merged.Configs),
		// No Claim: stretching pod configurations to the merged α means
		// the independent replay may deliver more than the per-pod plans
		// booked, so the simulator's measurement is authoritative and the
		// schedule is held to the structural invariants only.
		VerifyOpt: verify.Options{
			Window:    p.Window,
			Ports:     opt.Ports,
			Epsilon64: opt.Epsilon64,
		},
	}
	sim, err := simulate.Run(g, load, &merged, simulate.Options{
		Window:    p.Window,
		Ports:     opt.Ports,
		Epsilon64: opt.Epsilon64,
		Obs:       opt.Obs,
		Flight:    p.Flight,
	})
	if err != nil {
		return nil, err
	}
	out.Delivered = sim.Delivered
	out.Total = sim.TotalPackets
	out.Hops = sim.Hops
	out.Psi = sim.Psi
	out.ActiveLinkSlots = sim.ActiveLinkSlots
	out.ConfigsReplayed = sim.Configs
	out.SlotsUsed = sim.SlotsUsed
	out.Measured = true
	return out, nil
}

// CoreOptions implements CorePlanner for the pods=1 identity only, where
// the sharded algorithm is exactly plain octopus; with pods>1 the
// algorithm is not a single core run and cannot drive core pipelines.
func (a *shardedAlgo) CoreOptions(load *traffic.Load, p Params) (*traffic.Load, core.Options, error) {
	if p.Pods > 1 {
		return nil, core.Options{}, fmt.Errorf("algo: octopus-sharded with pods=%d cannot drive core pipelines (-faults); use pods=1", p.Pods)
	}
	return a.octopus.CoreOptions(load, p)
}

// flowPod reports which pod wholly contains every route of f, if any.
func flowPod(f *traffic.Flow, podSize int) (int, bool) {
	pod := graph.PodOf(f.Src, podSize)
	for _, r := range f.Routes {
		for _, v := range r {
			if graph.PodOf(v, podSize) != pod {
				return -1, false
			}
		}
	}
	return pod, true
}

// subsetLoad materializes the selected flows as a load with shared backing
// (the Flow values are copied headers; route slices alias the input, which
// schedulers never mutate).
func subsetLoad(load *traffic.Load, idx []int) *traffic.Load {
	flows := make([]traffic.Flow, len(idx))
	for k, i := range idx {
		flows[k] = load.Flows[i]
	}
	return &traffic.Load{Flows: flows}
}

// runShards plans every non-empty pod shard with its own Octopus core
// instance (own matching arena, own queue summaries) over the pod-local
// subfabric, fanned out across par workers. Results land in pod order, so
// the outcome is identical at any parallelism. With timed set each pod's
// wall-clock plan time lands in the returned planNs slice (pod-indexed);
// untimed runs never call the clock, so the cold path stays syscall-free.
func runShards(g *graph.Digraph, load *traffic.Load, shardIdx [][]int, podSize int, opt core.Options, par int, timed bool) ([]*core.Result, []int64, error) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	results := make([]*core.Result, len(shardIdx))
	planNs := make([]int64, len(shardIdx))
	errs := make([]error, len(shardIdx))
	jobs := make(chan int)
	var wg sync.WaitGroup
	// Per-shard planning must not itself fan out: the shard is the unit of
	// parallelism here. The shard planners run with the observer detached —
	// their interleaved emissions would be racy and order-unstable; the
	// caller emits the per-pod summaries in pod order instead.
	opt.Parallelism = 1
	opt.Obs = nil
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pod := range jobs {
				var start time.Time
				if timed {
					start = time.Now()
				}
				lo, hi := pod*podSize, (pod+1)*podSize
				sub := g.Subgraph(func(e graph.Edge) bool {
					return e.From >= lo && e.From < hi && e.To >= lo && e.To < hi
				})
				s, err := core.New(sub, subsetLoad(load, shardIdx[pod]), opt)
				if err != nil {
					errs[pod] = err
					continue
				}
				res, err := s.Run()
				if err != nil {
					errs[pod] = err
					continue
				}
				results[pod] = res
				if timed {
					planNs[pod] = int64(time.Since(start))
				}
			}
		}()
	}
	for pod := range shardIdx {
		if len(shardIdx[pod]) > 0 {
			jobs <- pod
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results, planNs, nil
}

// mergeShards zips the per-pod configuration sequences into one global
// sequence: merged configuration k is the union of every pod's k-th
// configuration, running for the longest pod α (pods whose own α was
// shorter simply idle their links once their queued packets drain; the
// simulator measures actual delivery). The merged sequence is truncated
// to the local-phase window budget, shrinking the final α if needed, so
// the global schedule always fits even when pods disagree about pacing.
// Plan bookkeeping is accumulated as a lower bound.
func mergeShards(out *schedule.Schedule, results []*core.Result, window, delta int, planned *PlanInfo) {
	maxConfigs := 0
	for _, r := range results {
		if r == nil {
			continue
		}
		planned.Iterations += r.Iterations
		planned.Delivered += r.Delivered
		planned.Hops += r.Hops
		planned.Psi += r.Psi
		if len(r.Schedule.Configs) > maxConfigs {
			maxConfigs = len(r.Schedule.Configs)
		}
	}
	used := 0
	for k := 0; k < maxConfigs; k++ {
		alpha := 0
		var links []graph.Edge
		for _, r := range results {
			if r == nil || k >= len(r.Schedule.Configs) {
				continue
			}
			cfg := r.Schedule.Configs[k]
			if cfg.Alpha > alpha {
				alpha = cfg.Alpha
			}
			links = append(links, cfg.Links...)
		}
		if alpha == 0 || len(links) == 0 {
			break
		}
		if used+delta+alpha > window {
			alpha = window - used - delta
			if alpha <= 0 {
				break
			}
		}
		out.Configs = append(out.Configs, schedule.Configuration{Links: links, Alpha: alpha})
		used += alpha + delta
	}
}
