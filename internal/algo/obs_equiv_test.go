package algo

import (
	"bytes"
	"reflect"
	"testing"

	"octopus/internal/obs"
)

// TestRegistryObsEquivalence pins the observability layer's read-only
// contract across the whole registry: running any algorithm with a live
// Observer (metrics registry plus decision tracer) must produce an Outcome
// bit-identical to the uninstrumented run — same metrics, same schedule,
// configuration for configuration. CI runs this under -race, which also
// exercises the instrument hot paths for data races at full parallelism.
func TestRegistryObsEquivalence(t *testing.T) {
	g, load := testInstance(t, 47)
	for _, a := range Registry() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			p := Params{Window: 120, Delta: 4, Seed: 1}
			plain, err := a.Run(g, load, p)
			if err != nil {
				t.Fatal(err)
			}
			var trace bytes.Buffer
			p.Obs = &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer(&trace)}
			inst, err := a.Run(g, load, p)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Delivered != inst.Delivered || plain.Hops != inst.Hops ||
				plain.Psi != inst.Psi || plain.Total != inst.Total ||
				plain.Reconfigs != inst.Reconfigs || plain.SlotsUsed != inst.SlotsUsed ||
				plain.ActiveLinkSlots != inst.ActiveLinkSlots {
				t.Errorf("metrics drifted under instrumentation:\nplain: %d/%d hops %d psi %d reconfigs %d slots %d active %d\ninstr: %d/%d hops %d psi %d reconfigs %d slots %d active %d",
					plain.Delivered, plain.Total, plain.Hops, plain.Psi, plain.Reconfigs, plain.SlotsUsed, plain.ActiveLinkSlots,
					inst.Delivered, inst.Total, inst.Hops, inst.Psi, inst.Reconfigs, inst.SlotsUsed, inst.ActiveLinkSlots)
			}
			if (plain.Schedule == nil) != (inst.Schedule == nil) {
				t.Fatalf("schedule presence changed: plain=%v instrumented=%v",
					plain.Schedule != nil, inst.Schedule != nil)
			}
			if plain.Schedule != nil {
				if plain.Schedule.Delta != inst.Schedule.Delta ||
					!reflect.DeepEqual(plain.Schedule.Configs, inst.Schedule.Configs) {
					t.Error("schedule drifted under instrumentation")
				}
			}
			if err := p.Obs.Trace.Err(); err != nil {
				t.Errorf("tracer error: %v", err)
			}
		})
	}
}
