package algo

import (
	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// Defaults for the octopus-redundant proactive-multipath knobs: provision
// up to 2 disjoint route copies per critical flow, alternates at most 2×
// the primary hop count. CritFrac has no default — redundancy is explicit
// opt-in (crit=0 makes the mode bit-identical to plain octopus).
const (
	DefaultRedundancy = 2
	DefaultStretch    = 2.0
)

// RedundancyKnobs resolves the Params redundancy fields to effective
// values.
func RedundancyKnobs(p Params) (k int, crit, stretch float64) {
	k = p.Redundancy
	if k <= 0 {
		k = DefaultRedundancy
	}
	crit = p.CritFrac
	stretch = p.Stretch
	if stretch <= 0 {
		stretch = DefaultStretch
	}
	return k, crit, stretch
}

// ProvisionRedundant applies the full proactive-redundancy pipeline to a
// load under p's knobs: mark the top CritFrac fraction of flows critical
// (largest first), provision each with up to Redundancy pairwise
// edge-disjoint route copies within the Stretch cap, and expand every
// provisioned flow into per-copy single-route flows plus the Redundancy
// group map the simulator and the online fault loop deduplicate with.
// CritFrac <= 0 skips provisioning, but loads whose flows already carry
// Redundant routes (e.g. loaded from JSON) still expand. The input load is
// never modified.
func ProvisionRedundant(g *graph.Digraph, load *traffic.Load, p Params) (*traffic.Load, *traffic.Redundancy) {
	k, crit, stretch := RedundancyKnobs(p)
	work := load
	if crit > 0 {
		work = load.Clone()
		traffic.MarkCritical(work, crit)
		work = traffic.Redundant(g, work, k, stretch)
	}
	return traffic.ExpandRedundant(work)
}

// redundantAlgo is octopus-redundant: plain Octopus planning over the
// redundancy-expanded load, measured with per-group deduplicated delivery.
// The embedded coreAlgo supplies the identity CoreOptions mapping — the
// fault pipeline provisions the load itself (it has the fabric in hand)
// and then drives any core scheduler over the expanded flows.
type redundantAlgo struct {
	coreAlgo
}

func octopusRedundantAlgo() Algorithm {
	return &redundantAlgo{coreAlgo{
		name: "octopus-redundant",
		describe: "Octopus over proactively replicated critical flows: crit-fraction largest flows get " +
			"up to red edge-disjoint route copies (stretch-capped), delivery deduplicated per copy group",
		prep: passthrough(baseOptions),
	}}
}

// Run provisions the redundant copies, plans with the plain Octopus core,
// claims the raw (per-copy) plan exactly, and reports the deduplicated
// metrics: Delivered counts each group once at its first copy's arrival,
// Total is the original offered load, ψ includes the duplicate overhead
// (broken out in the simulate.Result the differential harness replays).
// With crit=0 the expansion is the identity and the run is bit-identical
// to plain octopus.
func (a *redundantAlgo) Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error) {
	expanded, red := ProvisionRedundant(g, load, p)
	opt := baseOptions(p)
	s, err := core.New(g, expanded, opt)
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Algo:     a.name,
		Fabric:   g,
		Load:     expanded,
		Schedule: res.Schedule,
		Plan: &PlanInfo{
			Iterations: res.Iterations,
			Delivered:  res.Delivered,
			Hops:       res.Hops,
			Psi:        res.Psi,
		},
		Reconfigs: len(res.Schedule.Configs),
		VerifyOpt: verify.Options{
			Window:    opt.Window,
			Ports:     opt.Ports,
			Epsilon64: opt.Epsilon64,
			// The claim is the raw per-copy plan: the independent replay
			// reproduces it packet for packet; deduplication happens on
			// top of it, never inside it.
			Claim: &verify.Claim{Delivered: res.Delivered, Hops: res.Hops, Psi: res.Psi},
		},
	}
	if opt.MultiHop {
		sch, w := res.Schedule, opt.Window
		out.Extra = func() error {
			_, err := verify.Schedule(g, expanded, sch, verify.Options{
				Window: w, Ports: opt.Ports, MultiHop: true,
			})
			return err
		}
	}
	sim, err := simulate.Run(g, expanded, res.Schedule, simulate.Options{
		Window:     opt.Window,
		MultiHop:   opt.MultiHop,
		Ports:      opt.Ports,
		Epsilon64:  opt.Epsilon64,
		Redundancy: red,
		Obs:        opt.Obs,
		Flight:     p.Flight,
	})
	if err != nil {
		return nil, err
	}
	out.Delivered = sim.UniqueDelivered
	out.Total = sim.UniqueTotal
	out.Hops = sim.Hops
	out.Psi = sim.Psi
	out.ActiveLinkSlots = sim.ActiveLinkSlots
	out.ConfigsReplayed = sim.Configs
	out.SlotsUsed = sim.SlotsUsed
	out.Measured = true
	return out, nil
}
