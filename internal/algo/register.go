package algo

// init registers the full roster in the canonical display order: the
// Octopus core family, then the baselines, then the online / hybrid /
// bound entries. Adding an algorithm means implementing Algorithm in one
// file and appending a Register call here — every CLI, experiment runner,
// and the differential verification suite picks it up from the registry.
func init() {
	Register(octopusAlgo())
	Register(octopusGAlgo())
	Register(octopusBAlgo())
	Register(octopusEAlgo())
	Register(chainedAlgo())
	Register(octopusPlusAlgo())
	Register(octopusRandomAlgo())
	Register(octopusRedundantAlgo())
	Register(octopusShardedAlgo())
	Register(eclipseAlgo{})
	Register(eclipseBasedAlgo())
	Register(eclipsePPAlgo{})
	Register(solsticeAlgo())
	Register(rotornetAlgo())
	Register(maxweightAlgo{})
	Register(hybridAlgo{})
	Register(ubAlgo{})
}
