package algo

import (
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// podInstance builds a pod fabric and a matching mixed intra/inter-pod
// load for the sharded scheduler tests.
func podInstance(t *testing.T, pods, podSize, window int, seed int64) (*graph.Digraph, *traffic.Load) {
	t.Helper()
	p := traffic.DefaultPodParams(pods, podSize, window)
	s, err := traffic.PodSynthetic(p, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	g := p.Fabric()
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	return g, s.Materialize(nil)
}

func TestOctopusShardedOnPodFabric(t *testing.T) {
	a, ok := Lookup("octopus-sharded")
	if !ok {
		t.Fatal("octopus-sharded not registered")
	}
	base, _ := Lookup("octopus")
	g, load := podInstance(t, 4, 6, 96, 17)
	p := Params{Window: 96, Delta: 2, Pods: 4}
	out, err := a.Run(g, load, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Algo != "octopus-sharded" || !out.Measured {
		t.Fatalf("outcome %q measured=%v", out.Algo, out.Measured)
	}
	if _, err := out.Verify(); err != nil {
		t.Fatalf("sharded outcome fails verification: %v", err)
	}
	if out.Delivered <= 0 || out.Psi <= 0 {
		t.Fatalf("sharded schedule delivered %d packets, psi %d", out.Delivered, out.Psi)
	}
	if out.Schedule.Cost() > p.Window {
		t.Fatalf("merged schedule costs %d slots, window %d", out.Schedule.Cost(), p.Window)
	}
	// Quality: the decomposition trades some ψ for parallel planning, but
	// must stay within the documented reconciliation bound of unsharded
	// octopus on the same instance (DESIGN.md §16).
	bp := p
	bp.Pods = 0
	baseOut, err := base.Run(g, load, bp)
	if err != nil {
		t.Fatal(err)
	}
	if out.Psi*4 < baseOut.Psi*3 {
		t.Fatalf("sharded psi %d below 75%% of unsharded %d", out.Psi, baseOut.Psi)
	}
}

func TestOctopusShardedDeterministicAcrossParallelism(t *testing.T) {
	a, _ := Lookup("octopus-sharded")
	g, load := podInstance(t, 3, 4, 64, 23)
	var first *Outcome
	for _, par := range []int{1, 2, 8} {
		out, err := a.Run(g, load, Params{Window: 64, Delta: 2, Pods: 3, Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if first == nil {
			first = out
			continue
		}
		if !reflect.DeepEqual(out.Schedule, first.Schedule) {
			t.Fatalf("par=%d produced a different schedule", par)
		}
		if out.Psi != first.Psi || out.Delivered != first.Delivered {
			t.Fatalf("par=%d: psi %d delivered %d, want %d/%d",
				par, out.Psi, out.Delivered, first.Psi, first.Delivered)
		}
	}
}

func TestOctopusShardedRejections(t *testing.T) {
	a, _ := Lookup("octopus-sharded")
	g, load := podInstance(t, 3, 4, 64, 31)
	if _, err := a.Run(g, load, Params{Window: 64, Delta: 2, Pods: 5}); err == nil {
		t.Fatal("pods=5 accepted on a 12-node fabric")
	}
	if _, err := a.Run(g, load, Params{Window: 64, Delta: 2, Pods: 3, MultiHop: true}); err == nil {
		t.Fatal("multihop accepted")
	}
	cp, ok := a.(CorePlanner)
	if !ok {
		t.Fatal("octopus-sharded does not implement CorePlanner")
	}
	if _, _, err := cp.CoreOptions(load, Params{Window: 64, Delta: 2, Pods: 3}); err == nil {
		t.Fatal("CoreOptions accepted pods>1")
	}
	if _, _, err := cp.CoreOptions(load, Params{Window: 64, Delta: 2, Pods: 1}); err != nil {
		t.Fatalf("CoreOptions rejected pods=1: %v", err)
	}
}

func TestParseSpecShardedKeys(t *testing.T) {
	a, p, err := ParseSpec("octopus-sharded:pods=8,par=4,window=256", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "octopus-sharded" {
		t.Fatalf("resolved %q", a.Name())
	}
	if p.Pods != 8 || p.Parallelism != 4 || p.Window != 256 {
		t.Fatalf("params = %+v", p)
	}
}
