package algo

import (
	"fmt"

	"octopus/internal/baseline"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// runFn is a schedule-producing baseline run returning the replayed
// measurement and the schedule it measured.
type runFn func(g *graph.Digraph, load *traffic.Load, p Params) (*simulate.Result, *schedule.Schedule, error)

// simAlgo adapts a baseline measured by the packet-level simulator; the
// simulator's claim differentially tests it against the verify replay.
type simAlgo struct {
	name     string
	describe string
	// verifyFabric returns the fabric the schedule is validated against
	// (nil = the run fabric; RotorNet validates against Complete(n)).
	verifyFabric func(g *graph.Digraph) *graph.Digraph
	run          runFn
}

func (a *simAlgo) Name() string     { return a.name }
func (a *simAlgo) Describe() string { return a.describe }
func (a *simAlgo) Kind() Kind       { return Offline }

func (a *simAlgo) Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error) {
	sim, sch, err := a.run(g, load, p)
	if err != nil {
		return nil, err
	}
	fabric := g
	if a.verifyFabric != nil {
		fabric = a.verifyFabric(g)
	}
	return &Outcome{
		Algo:            a.name,
		Fabric:          fabric,
		Load:            load,
		Schedule:        sch,
		Delivered:       sim.Delivered,
		Total:           sim.TotalPackets,
		Hops:            sim.Hops,
		Psi:             sim.Psi,
		ActiveLinkSlots: sim.ActiveLinkSlots,
		Reconfigs:       len(sch.Configs),
		ConfigsReplayed: sim.Configs,
		SlotsUsed:       sim.SlotsUsed,
		Measured:        true,
		VerifyOpt: verify.Options{
			Window: p.Window,
			Claim:  &verify.Claim{Delivered: sim.Delivered, Hops: sim.Hops, Psi: sim.Psi},
		},
	}, nil
}

func eclipseBasedAlgo() Algorithm {
	return &simAlgo{
		name:     "eclipse-based",
		describe: "Eclipse-Based baseline (§8): one-hop Eclipse over the hop decomposition, VOQ-replayed on the multi-hop load",
		run: func(g *graph.Digraph, load *traffic.Load, p Params) (*simulate.Result, *schedule.Schedule, error) {
			return baseline.EclipseBased(g, load, p.Window, p.Delta, p.Matcher)
		},
	}
}

func solsticeAlgo() Algorithm {
	return &simAlgo{
		name:     "solstice",
		describe: "Solstice-style baseline: Birkhoff-von-Neumann decomposition of the one-hop demand, replayed on the multi-hop load",
		run: func(g *graph.Digraph, load *traffic.Load, p Params) (*simulate.Result, *schedule.Schedule, error) {
			return baseline.SolsticeBased(g, load, p.Window, p.Delta)
		},
	}
}

func rotornetAlgo() Algorithm {
	return &simAlgo{
		name:     "rotornet",
		describe: "RotorNet baseline (§8): traffic-agnostic round-robin rotor matchings, replayed on the load",
		// RotorNet assumes the complete fabric; validate its schedule
		// against Complete(n), like its own replay does.
		verifyFabric: func(g *graph.Digraph) *graph.Digraph { return graph.Complete(g.N()) },
		run: func(g *graph.Digraph, load *traffic.Load, p Params) (*simulate.Result, *schedule.Schedule, error) {
			return baseline.RotorNet(g, load, p.Window, p.Delta, p.SlotsPerMatching)
		},
	}
}

// eclipseAlgo is the pure one-hop Eclipse scheduler over the unordered hop
// decomposition: its plan claim is exact for that load (the decomposition
// is what the outcome carries and is validated against).
type eclipseAlgo struct{}

func (eclipseAlgo) Name() string { return "eclipse" }
func (eclipseAlgo) Describe() string {
	return "Eclipse one-hop scheduler over the unordered hop decomposition (plan bookkeeping, not a multi-hop replay)"
}
func (eclipseAlgo) Kind() Kind { return Offline }

func (eclipseAlgo) Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error) {
	oh := baseline.OneHopLoad(load, false)
	_, res, err := baseline.Eclipse(g, oh.Load, p.Window, p.Delta, p.Matcher)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Algo:     "eclipse",
		Fabric:   g,
		Load:     oh.Load,
		Schedule: res.Schedule,
		Plan: &PlanInfo{
			Iterations: res.Iterations,
			Delivered:  res.Delivered,
			Hops:       res.Hops,
			Psi:        res.Psi,
		},
		Delivered:       res.Delivered,
		Total:           res.TotalPackets,
		Hops:            res.Hops,
		Psi:             res.Psi,
		ActiveLinkSlots: res.Schedule.ActiveLinkSlots(),
		Reconfigs:       len(res.Schedule.Configs),
		SlotsUsed:       res.Schedule.Cost(),
		VerifyOpt: verify.Options{
			Window: p.Window,
			Claim:  &verify.Claim{Delivered: res.Delivered, Hops: res.Hops, Psi: res.Psi},
		},
	}, nil
}

// eclipsePPAlgo is the paper-faithful Eclipse-Based realization: Eclipse
// over the one-hop load, then Eclipse++ time-expanded re-routing of the
// original multi-hop traffic over the resulting sequence. Eclipse++
// routes off the declared routes by design, so only the schedule itself
// is validated; its accounting gets sanity bounds.
type eclipsePPAlgo struct{}

func (eclipsePPAlgo) Name() string { return "eclipse-pp" }
func (eclipsePPAlgo) Describe() string {
	return "Eclipse-Based via Eclipse++ ([36]): time-expanded re-routing of the multi-hop load over the Eclipse sequence"
}
func (eclipsePPAlgo) Kind() Kind { return Offline }

func (eclipsePPAlgo) Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error) {
	oh := baseline.OneHopLoad(load, false)
	_, res, err := baseline.Eclipse(g, oh.Load, p.Window, p.Delta, p.Matcher)
	if err != nil {
		return nil, err
	}
	epp, err := baseline.EclipsePlusPlus(g, load, res.Schedule, p.Window)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Algo:            "eclipse-pp",
		Fabric:          g,
		Load:            load,
		Schedule:        res.Schedule,
		Delivered:       epp.Delivered,
		Total:           epp.TotalPackets,
		Hops:            epp.Hops,
		ActiveLinkSlots: epp.ActiveLinkSlots,
		Reconfigs:       len(res.Schedule.Configs),
		SlotsUsed:       res.Schedule.Cost(),
		VerifyOpt:       verify.Options{Window: p.Window},
		Extra: func() error {
			if epp.Delivered > epp.TotalPackets {
				return fmt.Errorf("eclipse++ delivered %d of %d packets", epp.Delivered, epp.TotalPackets)
			}
			if int64(epp.Hops) > epp.ActiveLinkSlots {
				return fmt.Errorf("eclipse++ served %d hops over %d link-slots", epp.Hops, epp.ActiveLinkSlots)
			}
			return nil
		},
	}, nil
}

// ubAlgo is the UB pseudo-algorithm of §8: the best achievable performance
// of a polynomial algorithm, obtained by relaxing hop ordering. It is a
// bound, not a feasible schedule.
type ubAlgo struct{}

func (ubAlgo) Name() string { return "ub" }
func (ubAlgo) Describe() string {
	return "UB upper bound (§8): Eclipse on the unordered hop decomposition, a packet counts once all hops are served"
}
func (ubAlgo) Kind() Kind { return Bound }

func (ubAlgo) Run(g *graph.Digraph, load *traffic.Load, p Params) (*Outcome, error) {
	ub, err := baseline.UpperBound(g, load, p.Window, p.Delta, p.Matcher)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Algo:            "ub",
		Fabric:          g,
		Load:            load,
		Delivered:       ub.Delivered,
		Total:           ub.TotalPackets,
		Hops:            ub.Hops,
		Psi:             ub.Psi,
		ActiveLinkSlots: ub.ActiveLinkSlots,
	}, nil
}
