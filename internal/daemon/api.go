package daemon

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/traffic"
)

// FlowRequest is one flow submission on POST /v1/flows. A request body is
// either a single object or a JSON array of them (one batch is admitted at
// one boundary). Omitted IDs are auto-assigned; omitted routes default to
// a BFS shortest path on the current fabric.
type FlowRequest struct {
	ID         int     `json:"id,omitempty"`
	Src        int     `json:"src"`
	Dst        int     `json:"dst"`
	Size       int     `json:"size"`
	Routes     [][]int `json:"routes,omitempty"`
	WeightHops int     `json:"weight_hops,omitempty"`
}

// FabricRequest describes a replacement fabric on POST /v1/fabric: either
// Complete (a complete digraph on N nodes) or an explicit edge list.
type FabricRequest struct {
	N        int      `json:"n"`
	Complete bool     `json:"complete,omitempty"`
	Edges    [][2]int `json:"edges,omitempty"`
}

// decodeFlowRequests parses a POST /v1/flows body: one FlowRequest object
// or an array of at most maxBatch of them, with unknown fields and
// trailing data rejected. This is the daemon's untrusted-input surface and
// is covered by FuzzFlowRequest.
func decodeFlowRequests(data []byte) ([]FlowRequest, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, errors.New("empty request body")
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var reqs []FlowRequest
	if trimmed[0] == '[' {
		if err := dec.Decode(&reqs); err != nil {
			return nil, fmt.Errorf("invalid flow batch: %w", err)
		}
	} else {
		var one FlowRequest
		if err := dec.Decode(&one); err != nil {
			return nil, fmt.Errorf("invalid flow: %w", err)
		}
		reqs = []FlowRequest{one}
	}
	if dec.More() {
		return nil, errors.New("trailing data after the flow request")
	}
	if len(reqs) == 0 {
		return nil, errors.New("empty flow batch")
	}
	if len(reqs) > maxBatch {
		return nil, fmt.Errorf("batch of %d exceeds the %d-flow limit", len(reqs), maxBatch)
	}
	return reqs, nil
}

// buildFlow validates one request against the fabric and materializes the
// traffic.Flow to submit, assigning an ID when the caller left it zero.
func (s *Server) buildFlow(req FlowRequest, fab *graph.Digraph) (traffic.Flow, error) {
	if req.Size <= 0 || req.Size > maxFlowSize {
		return traffic.Flow{}, fmt.Errorf("flow size %d out of range (0, %d]", req.Size, maxFlowSize)
	}
	if req.ID < 0 {
		return traffic.Flow{}, fmt.Errorf("flow ID %d must not be negative", req.ID)
	}
	if req.Src < 0 || req.Src >= fab.N() || req.Dst < 0 || req.Dst >= fab.N() {
		return traffic.Flow{}, fmt.Errorf("endpoints %d->%d outside the %d-node fabric", req.Src, req.Dst, fab.N())
	}
	if req.Src == req.Dst {
		return traffic.Flow{}, fmt.Errorf("flow endpoints coincide at node %d", req.Src)
	}
	f := traffic.Flow{
		ID:         req.ID,
		Src:        req.Src,
		Dst:        req.Dst,
		Size:       req.Size,
		WeightHops: req.WeightHops,
	}
	if f.ID == 0 {
		f.ID = int(s.autoID.Add(1))
	}
	if len(req.Routes) > 0 {
		f.Routes = make([]traffic.Route, len(req.Routes))
		for i, r := range req.Routes {
			f.Routes[i] = traffic.Route(r)
		}
	} else {
		r, ok := traffic.ShortestRoute(fab, f.Src, f.Dst)
		if !ok {
			return traffic.Flow{}, fmt.Errorf("no route from %d to %d on the current fabric", f.Src, f.Dst)
		}
		f.Routes = []traffic.Route{r}
	}
	one := &traffic.Load{Flows: []traffic.Flow{f}}
	if err := one.Validate(fab); err != nil {
		return traffic.Flow{}, err
	}
	return f, nil
}

// buildFabric validates a FabricRequest and constructs the digraph.
func buildFabric(req FabricRequest) (*graph.Digraph, error) {
	if req.N < 2 || req.N > 1<<14 {
		return nil, fmt.Errorf("fabric size %d out of range [2, %d]", req.N, 1<<14)
	}
	if req.Complete {
		if len(req.Edges) > 0 {
			return nil, errors.New("complete fabric must not list edges")
		}
		return graph.Complete(req.N), nil
	}
	if len(req.Edges) == 0 {
		return nil, errors.New("fabric needs edges (or complete: true)")
	}
	g := graph.New(req.N)
	for _, e := range req.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= req.N || v < 0 || v >= req.N || u == v {
			return nil, fmt.Errorf("invalid edge %d->%d in a %d-node fabric", u, v, req.N)
		}
		if !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g, nil
}

// planFingerprint is a short stable hash of a plan's schedule JSON (the
// same construction as the engine-extraction golden tests), empty for
// unscheduled epochs.
func planFingerprint(res *core.Result) string {
	if res == nil || res.Schedule == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := res.Schedule.WriteJSON(&buf); err != nil {
		return ""
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8])
}

// Handler returns the daemon's HTTP handler: the /v1 API plus the
// observability endpoints (/metrics, /debug/vars, /debug/pprof) of the
// daemon's registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(s.reg))
	mux.HandleFunc("POST /v1/flows", s.handleSubmit)
	mux.HandleFunc("GET /v1/flows", s.handleFlows)
	mux.HandleFunc("DELETE /v1/flows/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/flows/{id}/events", s.handleFlowEvents)
	mux.HandleFunc("GET /v1/epochs", s.handleEpochs)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/fabric", s.handleFabric)
	mux.HandleFunc("POST /v1/fabric", s.handleReload)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.overloaded.Load() {
		writeError(w, http.StatusTooManyRequests,
			errors.New("planning is overrunning the epoch budget; retry later"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	reqs, err := decodeFlowRequests(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fab := s.fab.Load()
	flows := make([]traffic.Flow, 0, len(reqs))
	batchPkts := 0
	for _, req := range reqs {
		f, err := s.buildFlow(req, fab)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		flows = append(flows, f)
		batchPkts += f.Size
	}
	if s.pipe.QueuedPackets()+batchPkts > s.opt.QueueLimit {
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("queue limit of %d packets exceeded", s.opt.QueueLimit))
		return
	}
	// One batch is stamped with one boundary so it is admitted as a unit.
	at := int(s.boundary.Load())
	ids := make([]int, 0, len(flows))
	for _, f := range flows {
		if err := s.pipe.Submit(f, at); err != nil {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":    err.Error(),
				"accepted": ids,
			})
			return
		}
		ids = append(ids, f.ID)
		s.recordPodLoad(f.Src, f.Size)
	}
	s.reg.Gauge("octopus_daemon_queued_packets").Set(int64(s.pipe.QueuedPackets()))
	writeJSON(w, http.StatusAccepted, map[string]any{"accepted": ids, "at": at})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid flow ID %q", r.PathValue("id")))
		return
	}
	if !s.pipe.Cancel(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown flow %d", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": id})
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	totals, backlog := s.totals, s.backlog
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"queued_flows":    s.pipe.QueuedFlows(),
		"queued_packets":  s.pipe.QueuedPackets(),
		"backlog_packets": backlog,
		"totals":          totals,
	})
}

func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := append([]EpochRecord(nil), s.ring...)
	totals, epochs, backlog := s.totals, s.epochs, s.backlog
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":           epochs,
		"boundary":        s.boundary.Load(),
		"overloaded":      s.overloaded.Load(),
		"backlog_packets": backlog,
		"totals":          totals,
		"epochs":          recs,
	})
}

// recordPodLoad folds one accepted submission into the /v1/status per-pod
// load roll-up, by source pod. Sized at startup; sources beyond the last
// pod (possible after a larger-fabric reload) fold into the last one.
func (s *Server) recordPodLoad(src, size int) {
	s.mu.Lock()
	pod := src / s.podSize
	if pod >= len(s.podLoad) {
		pod = len(s.podLoad) - 1
	}
	s.podLoad[pod] += int64(size)
	s.mu.Unlock()
}

// handleFlowEvents serves GET /v1/flows/{id}/events: the flight recorder's
// retained lifecycle journal for one flow.
func (s *Server) handleFlowEvents(w http.ResponseWriter, r *http.Request) {
	rec := s.opt.Flight
	if rec == nil {
		writeError(w, http.StatusNotFound, errors.New("flight recorder disabled (start with -flight)"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid flow ID %q", r.PathValue("id")))
		return
	}
	type eventJSON struct {
		Seq   uint64 `json:"seq"`
		Ev    string `json:"ev"`
		Epoch int32  `json:"epoch"`
		A     int64  `json:"a"`
		B     int64  `json:"b"`
		C     int64  `json:"c"`
	}
	evs := rec.Events(int64(id))
	out := make([]eventJSON, len(evs))
	for i, e := range evs {
		out[i] = eventJSON{Seq: e.Seq, Ev: e.Kind.String(), Epoch: e.Epoch, A: e.A, B: e.B, C: e.C}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"flow":    id,
		"tracked": rec.Tracks(int64(id)),
		"sample":  rec.Sample(),
		"events":  out,
	})
}

// handleStatus serves GET /v1/status: the one-call operational roll-up —
// epoch progress, totals (ψ, delivered), planning latency percentiles,
// per-pod submitted load, and the flight recorder's SLO snapshot.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	totals, epochs, backlog := s.totals, s.epochs, s.backlog
	podLoad := append([]int64(nil), s.podLoad...)
	s.mu.Unlock()
	plan := s.reg.Duration("octopus_daemon_plan_seconds")
	st := map[string]any{
		"epoch":            epochs,
		"boundary":         s.boundary.Load(),
		"overloaded":       s.overloaded.Load(),
		"queued_packets":   s.pipe.QueuedPackets(),
		"backlog_packets":  backlog,
		"totals":           totals,
		"plan_p50_seconds": plan.Quantile(0.50).Seconds(),
		"plan_p99_seconds": plan.Quantile(0.99).Seconds(),
		"plan_overruns":    s.reg.Counter("octopus_daemon_plan_overruns_total").Value(),
		"pod_size":         s.podSize,
		"pod_load":         podLoad,
	}
	if s.opt.Flight != nil {
		st["flight"] = s.opt.Flight.Stats()
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFabric(w http.ResponseWriter, r *http.Request) {
	g := s.fab.Load()
	edges := g.Edges()
	out := make([][2]int, len(edges))
	for i, e := range edges {
		out[i] = [2]int{e.From, e.To}
	}
	writeJSON(w, http.StatusOK, map[string]any{"n": g.N(), "links": g.M(), "edges": out})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req FabricRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid fabric: %w", err))
		return
	}
	g, err := buildFabric(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The reload is applied by the driver loop at the next epoch boundary;
	// the response waits for that application so callers see the outcome.
	rr := reloadReq{g: g, reply: make(chan error, 1)}
	timer := time.NewTimer(reloadWait)
	defer timer.Stop()
	select {
	case s.reloadCh <- rr:
	case <-s.done:
		writeError(w, http.StatusServiceUnavailable, errors.New("daemon is shutting down"))
		return
	case <-timer.C:
		writeError(w, http.StatusServiceUnavailable, errors.New("timed out waiting for an epoch boundary"))
		return
	}
	select {
	case err := <-rr.reply:
		if err != nil {
			if strings.Contains(err.Error(), "cannot host") {
				writeError(w, http.StatusConflict, err)
			} else {
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"n": g.N(), "links": g.M()})
	case <-s.done:
		writeError(w, http.StatusServiceUnavailable, errors.New("daemon is shutting down"))
	case <-timer.C:
		writeError(w, http.StatusServiceUnavailable, errors.New("timed out waiting for the reload"))
	}
}
