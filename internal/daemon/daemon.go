// Package daemon is the long-lived scheduler service behind cmd/mhsd: an
// engine.Pipeline driven continuously against wall-clock epochs, fed by an
// HTTP JSON API (flow submission/cancellation, fabric reload, epoch
// introspection) with the repository's observability endpoints mounted on
// the same mux.
//
// The loop is double-buffered: while the committed epoch k "executes" for
// one wall epoch, the plan for epoch k+1 is computed on a separate
// goroutine — the reconfiguration delay Δ is free compute time, so the
// planning budget is one epoch plus Δ's share of the next. A plan that
// overruns the budget stretches the boundary (the schedule stays correct,
// simulated time just advances late), increments
// octopus_daemon_plan_overruns_total, and flips the daemon into an
// overloaded state in which flow submissions are rejected with 429 until a
// plan lands inside the budget again — that is the backpressure policy.
package daemon

import (
	"errors"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"octopus/internal/core"
	"octopus/internal/engine"
	"octopus/internal/graph"
	"octopus/internal/httpd"
	"octopus/internal/obs"
	"octopus/internal/obs/flight"
)

const (
	ringSize     = 64
	maxFlowSize  = 1 << 20
	maxBatch     = 1024
	reloadWait   = 30 * time.Second
	serveGrace   = 5 * time.Second
	maxBodyBytes = 1 << 20
)

// Options configures a daemon Server.
type Options struct {
	// Fabric is the initial circuit fabric. Required.
	Fabric *graph.Digraph
	// Core configures the per-epoch Octopus planner; Window must be
	// positive. Core.Obs is overwritten with the daemon's own observer.
	Core core.Options
	// EpochDuration is the wall-clock length of one epoch (default 100ms).
	// The planning budget per epoch is EpochDuration·(1 + Delta/Window).
	EpochDuration time.Duration
	// QueueLimit caps the packets queued awaiting admission; submissions
	// beyond it are rejected with 429 (default 1<<20).
	QueueLimit int
	// DrainTimeout bounds the post-shutdown drain of backlogged epochs
	// (default 5s).
	DrainTimeout time.Duration
	// Audit verifies every epoch plan against the fabric before commit.
	Audit bool
	// FingerprintPlans attaches a short schedule fingerprint to each epoch
	// record in /v1/epochs (used by the equality tests; cheap but not
	// free).
	FingerprintPlans bool
	// Registry receives the daemon's and the planner's metrics (default: a
	// fresh registry).
	Registry *obs.Registry
	// Tracer, when set, receives the planner's JSONL decision trace.
	Tracer *obs.Tracer
	// Flight, when set, receives per-flow lifecycle events from the epoch
	// engine and powers GET /v1/flows/{id}/events plus the /v1/status SLO
	// roll-up. nil disables per-flow tracing; scheduling is bit-identical
	// either way.
	Flight *flight.Recorder
	// StatusPods partitions the fabric's contiguous node blocks into this
	// many pods for the /v1/status per-pod load roll-up only (cumulative
	// submitted packets by source pod; no scheduling effect). Values that
	// do not divide the fabric, 0, and 1 all report a single pod.
	StatusPods int
	// Logf, when set, receives one line per notable lifecycle event.
	Logf func(format string, args ...any)
}

// Server is one daemon instance: a pipeline, its driver loop, and the
// HTTP API. Create with New, run with Run.
type Server struct {
	opt  Options
	pipe *engine.Pipeline
	reg  *obs.Registry

	boundary   atomic.Int64 // admission stamp for new submissions
	overloaded atomic.Bool
	autoID     atomic.Int64
	fab        atomic.Pointer[graph.Digraph]

	reloadCh chan reloadReq
	done     chan struct{} // closed when the driver loop has exited

	mu      sync.Mutex
	ring    []EpochRecord
	totals  engine.Totals
	epochs  int
	backlog int

	podSize int
	podLoad []int64 // cumulative submitted packets per source pod (under mu)
}

type reloadReq struct {
	g     *graph.Digraph
	reply chan error
}

// EpochRecord is one committed epoch as reported by /v1/epochs.
type EpochRecord struct {
	Epoch      int    `json:"epoch"`
	Kind       string `json:"kind"`
	Arrived    int    `json:"arrived"`
	Offered    int    `json:"offered"`
	Delivered  int    `json:"delivered"`
	Backlog    int    `json:"backlog"`
	Rerouted   int    `json:"rerouted,omitempty"`
	Dropped    int    `json:"dropped,omitempty"`
	Cancelled  int    `json:"cancelled,omitempty"`
	Psi        int64  `json:"psi"`
	PlanMicros int64  `json:"plan_micros"`
	Overrun    bool   `json:"overrun,omitempty"`
	SchedFP    string `json:"sched_fp,omitempty"`
}

func kindName(k engine.PlanKind) string {
	switch k {
	case engine.PlanScheduled:
		return "scheduled"
	case engine.PlanIdle:
		return "idle"
	case engine.PlanJitterSkipped:
		return "jitter-skipped"
	case engine.PlanDrained:
		return "drained"
	}
	return "unknown"
}

// New builds a Server over opt.Fabric. The pipeline runs in repair mode
// with reactive rerouting, so fabric reloads and route-breaking changes
// heal at the next boundary instead of failing the run.
func New(opt Options) (*Server, error) {
	if opt.Fabric == nil {
		return nil, errors.New("daemon: Fabric is required")
	}
	if opt.EpochDuration <= 0 {
		opt.EpochDuration = 100 * time.Millisecond
	}
	if opt.QueueLimit <= 0 {
		opt.QueueLimit = 1 << 20
	}
	if opt.DrainTimeout <= 0 {
		opt.DrainTimeout = 5 * time.Second
	}
	if opt.Registry == nil {
		opt.Registry = obs.NewRegistry()
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	opt.Core.Obs = &obs.Observer{Metrics: opt.Registry, Trace: opt.Tracer}
	pipe, err := engine.New(opt.Fabric, engine.Config{
		Core:     opt.Core,
		Repair:   true,
		Reactive: true,
		Audit:    opt.Audit,
		Flight:   opt.Flight,
	})
	if err != nil {
		return nil, err
	}
	pods := opt.StatusPods
	if pods < 1 || opt.Fabric.N()%pods != 0 {
		pods = 1
	}
	s := &Server{
		opt:      opt,
		pipe:     pipe,
		reg:      opt.Registry,
		reloadCh: make(chan reloadReq),
		done:     make(chan struct{}),
		podSize:  opt.Fabric.N() / pods,
		podLoad:  make([]int64, pods),
	}
	s.fab.Store(opt.Fabric)
	// Touch the daemon metrics so a scrape before the first overrun or
	// reload still reports them at zero.
	s.reg.Counter("octopus_daemon_plan_overruns_total").Add(0)
	s.reg.Counter("octopus_daemon_fabric_reloads_total").Add(0)
	s.reg.Gauge("octopus_daemon_queued_packets").Set(0)
	s.reg.Duration("octopus_daemon_plan_seconds")
	return s, nil
}

// Run serves the API on ln and drives the epoch loop until ctx is
// cancelled, then shuts the HTTP server down gracefully and drains the
// in-flight and backlogged epochs (bounded by DrainTimeout). Returns nil
// on a clean shutdown.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	loopCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		defer close(s.done)
		s.loop(loopCtx)
	}()
	srv := &http.Server{Handler: s.Handler()}
	err := httpd.Serve(ctx, srv, ln, serveGrace)
	cancel()
	<-loopDone
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loop is the double-buffered epoch driver: each iteration overlaps the
// committed epoch's wall-clock "execution" with the planning of the next
// one, commits the plan, and publishes the epoch record.
func (s *Server) loop(ctx context.Context) {
	epochDur := s.opt.EpochDuration
	// Δ's share of the epoch is legitimate planning time on top of the
	// previous epoch's execution: nothing transmits during reconfiguration.
	budget := epochDur + epochDur*time.Duration(s.opt.Core.Delta)/time.Duration(s.opt.Core.Window)
	for ctx.Err() == nil {
		s.applyReload()

		type planOut struct {
			plan *engine.Plan
			err  error
		}
		start := time.Now()
		ch := make(chan planOut, 1)
		go func() {
			plan, err := s.pipe.PlanNext()
			ch <- planOut{plan, err}
		}()

		var out planOut
		overrun := false
		budgetTimer := time.NewTimer(budget)
		select {
		case out = <-ch:
			// Plan ready inside the budget: let the current epoch finish
			// executing before the boundary.
			if remain := epochDur - time.Since(start); remain > 0 {
				execTimer := time.NewTimer(remain)
				select {
				case <-execTimer.C:
				case <-ctx.Done():
					execTimer.Stop()
				}
			}
		case <-budgetTimer.C:
			// Planning overran Δ: the boundary stretches until the plan
			// lands, and submissions see backpressure meanwhile.
			overrun = true
			s.overloaded.Store(true)
			s.reg.Counter("octopus_daemon_plan_overruns_total").Inc()
			s.opt.Logf("daemon: epoch %d plan overran the %v budget", s.pipe.Epoch(), budget)
			out = <-ch
		case <-ctx.Done():
			out = <-ch // let the in-flight plan finish; commit, then drain
		}
		budgetTimer.Stop()
		if out.err != nil {
			s.opt.Logf("daemon: planning failed, stopping: %v", out.err)
			return
		}
		if !overrun {
			s.overloaded.Store(false)
		}
		s.commit(out.plan, time.Since(start), overrun)
	}
	s.drain()
}

// drain fast-forwards the pipeline (no wall-clock pacing) until nothing is
// queued or backlogged, bounded by DrainTimeout — the graceful-shutdown
// path that finishes what the daemon accepted.
func (s *Server) drain() {
	deadline := time.Now().Add(s.opt.DrainTimeout)
	for !s.pipe.Done() {
		if time.Now().After(deadline) {
			s.opt.Logf("daemon: drain timed out with %d packets backlogged", s.pipe.BacklogPackets())
			return
		}
		plan, err := s.pipe.PlanNext()
		if err != nil {
			s.opt.Logf("daemon: drain planning failed: %v", err)
			return
		}
		s.commit(plan, 0, false)
	}
	s.opt.Logf("daemon: drained cleanly at epoch %d", s.pipe.Epoch())
}

// commit applies one plan and publishes its epoch record and gauges.
func (s *Server) commit(plan *engine.Plan, planDur time.Duration, overrun bool) {
	fp := ""
	if s.opt.FingerprintPlans {
		fp = planFingerprint(plan.Result())
	}
	stat, err := s.pipe.Commit(plan)
	if err != nil {
		// Unreachable by construction (plans are committed in order, once);
		// log rather than crash the loop.
		s.opt.Logf("daemon: commit failed: %v", err)
		return
	}
	s.boundary.Store(int64(s.pipe.Boundary()))
	s.reg.Gauge("octopus_daemon_queued_packets").Set(int64(s.pipe.QueuedPackets()))
	s.reg.Histogram("octopus_daemon_plan_micros").Observe(planDur.Microseconds())
	s.reg.Duration("octopus_daemon_plan_seconds").Observe(planDur)

	rec := EpochRecord{
		Epoch:      stat.Epoch,
		Kind:       kindName(plan.Kind),
		Arrived:    stat.Arrived,
		Offered:    stat.Offered,
		Delivered:  stat.Delivered,
		Backlog:    stat.Backlog,
		Rerouted:   stat.Rerouted,
		Dropped:    stat.Dropped,
		Cancelled:  stat.Cancelled,
		Psi:        stat.Psi,
		PlanMicros: planDur.Microseconds(),
		Overrun:    overrun,
		SchedFP:    fp,
	}
	s.mu.Lock()
	s.ring = append(s.ring, rec)
	if len(s.ring) > ringSize {
		s.ring = s.ring[len(s.ring)-ringSize:]
	}
	s.totals = s.pipe.Totals()
	s.epochs = s.pipe.Epoch()
	s.backlog = s.pipe.BacklogPackets()
	s.mu.Unlock()
}

// applyReload applies at most one pending fabric-reload request at the
// epoch boundary (between a commit and the next plan).
func (s *Server) applyReload() {
	select {
	case req := <-s.reloadCh:
		err := s.pipe.ReloadFabric(req.g)
		if err == nil {
			s.fab.Store(req.g)
			s.reg.Counter("octopus_daemon_fabric_reloads_total").Inc()
			s.opt.Logf("daemon: fabric reloaded: %d nodes, %d links", req.g.N(), req.g.M())
		}
		req.reply <- err
	default:
	}
}
