package daemon

import (
	"encoding/json"
	"testing"

	"octopus/internal/core"
	"octopus/internal/graph"
)

var (
	fuzzFabric = graph.Complete(4)
	fuzzCore   = core.Options{Window: 100, Delta: 5}
)

// FuzzFlowRequest hammers the daemon's untrusted-input surface: the
// POST /v1/flows body decoder must never panic, and anything it accepts
// must be well-formed enough to re-marshal and to survive per-flow
// validation without panicking.
func FuzzFlowRequest(f *testing.F) {
	f.Add([]byte(`{"src":0,"dst":1,"size":3}`))
	f.Add([]byte(`{"id":7,"src":2,"dst":0,"size":10,"routes":[[2,1,0]],"weight_hops":2}`))
	f.Add([]byte(`[{"src":0,"dst":1,"size":3},{"src":1,"dst":2,"size":1}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"src":0,"dst":1,"size":3}{"trailing":true}`))
	f.Add([]byte(`{"unknown":1}`))
	f.Add([]byte(`[{"routes":[[0,1,2,3,4,5,6,7,8,9,10,11,12,13]]}]`))
	f.Add([]byte(`{"id":-1,"src":-4,"dst":1099511627776,"size":-3}`))
	f.Add([]byte(`null`))

	s, err := New(Options{Fabric: fuzzFabric, Core: fuzzCore})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := decodeFlowRequests(data)
		if err != nil {
			return
		}
		if len(reqs) == 0 || len(reqs) > maxBatch {
			t.Fatalf("decoder accepted a batch of %d", len(reqs))
		}
		if _, err := json.Marshal(reqs); err != nil {
			t.Fatalf("accepted batch does not re-marshal: %v", err)
		}
		for _, req := range reqs {
			flow, err := s.buildFlow(req, fuzzFabric)
			if err != nil {
				continue
			}
			if flow.Size <= 0 || flow.Size > maxFlowSize {
				t.Fatalf("validated flow has size %d", flow.Size)
			}
			if len(flow.Routes) == 0 {
				t.Fatal("validated flow has no routes")
			}
		}
	})
}
