package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"octopus/internal/core"
	"octopus/internal/engine"
	"octopus/internal/graph"
	"octopus/internal/obs/flight"
	"octopus/internal/traffic"
)

// testServer boots a daemon on an ephemeral port and returns its base URL
// plus a shutdown func that cancels the run and waits for a clean exit.
func testServer(t *testing.T, opt Options) (*Server, string, func()) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	waitHealthy(t, base)
	return s, base, func() {
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Errorf("daemon exit: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("daemon did not shut down")
		}
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/epochs")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

type epochsResp struct {
	Epoch          int           `json:"epoch"`
	Boundary       int           `json:"boundary"`
	Overloaded     bool          `json:"overloaded"`
	BacklogPackets int           `json:"backlog_packets"`
	Totals         engine.Totals `json:"totals"`
	Epochs         []EpochRecord `json:"epochs"`
}

func testFlows(n int) []FlowRequest {
	flows := make([]FlowRequest, n)
	for i := range flows {
		flows[i] = FlowRequest{
			ID:   i + 1,
			Src:  i % 5,
			Dst:  (i + 2) % 5,
			Size: 3 + 5*i,
		}
	}
	return flows
}

// TestDaemonMatchesSequentialEngine is the acceptance test for pipelined
// planning: the daemon — planning each epoch concurrently with the
// previous epoch's wall-clock execution, under live HTTP traffic — must
// produce exactly the schedule sequence of a single-threaded engine drive
// over the same arrival batch. Run under -race in CI.
func TestDaemonMatchesSequentialEngine(t *testing.T) {
	g := graph.Complete(5)
	copt := core.Options{Window: 40, Delta: 4}
	flows := testFlows(6)

	// Sequential reference: one batch admitted at a single boundary, driven
	// to drain with no concurrency.
	ref, err := engine.New(g, engine.Config{Core: copt, Repair: true, Reactive: true, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range flows {
		r, ok := traffic.ShortestRoute(g, fr.Src, fr.Dst)
		if !ok {
			t.Fatal("no route")
		}
		f := traffic.Flow{ID: fr.ID, Src: fr.Src, Dst: fr.Dst, Size: fr.Size, Routes: []traffic.Route{r}}
		if err := ref.Submit(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	var wantFPs []string
	wantTotal := 0
	for i := 0; i < 1000; i++ {
		plan, err := ref.PlanNext()
		if err != nil {
			t.Fatal(err)
		}
		if fp := planFingerprint(plan.Result()); fp != "" {
			wantFPs = append(wantFPs, fp)
		}
		if _, err := ref.Commit(plan); err != nil {
			t.Fatal(err)
		}
		if plan.Kind == engine.PlanDrained {
			break
		}
	}
	for _, fr := range flows {
		wantTotal += fr.Size
	}
	if ref.Totals().Delivered != wantTotal {
		t.Fatalf("reference did not deliver everything: %+v", ref.Totals())
	}

	// Live daemon on the same fabric/options, fed the same batch over HTTP.
	_, base, shutdown := testServer(t, Options{
		Fabric:           graph.Complete(5),
		Core:             copt,
		EpochDuration:    2 * time.Millisecond,
		Audit:            true,
		FingerprintPlans: true,
	})
	defer shutdown()
	status, body := postJSON(t, base+"/v1/flows", flows)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}

	var er epochsResp
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, base+"/v1/epochs", &er)
		if er.Totals.Delivered == wantTotal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never delivered the batch: %+v", er.Totals)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var gotFPs []string
	for _, rec := range er.Epochs {
		if rec.SchedFP != "" {
			gotFPs = append(gotFPs, rec.SchedFP)
		}
	}
	if len(gotFPs) != len(wantFPs) {
		t.Fatalf("scheduled-epoch count: daemon %d, sequential %d\ndaemon %v\nsequential %v",
			len(gotFPs), len(wantFPs), gotFPs, wantFPs)
	}
	for i := range gotFPs {
		if gotFPs[i] != wantFPs[i] {
			t.Fatalf("epoch %d schedule diverged: daemon %s, sequential %s", i, gotFPs[i], wantFPs[i])
		}
	}
	if er.Totals.Psi != ref.Totals().Psi {
		t.Fatalf("psi diverged: daemon %d, sequential %d", er.Totals.Psi, ref.Totals().Psi)
	}
}

func TestDaemonAPI(t *testing.T) {
	_, base, shutdown := testServer(t, Options{
		Fabric:        graph.Complete(4),
		Core:          core.Options{Window: 50, Delta: 2},
		EpochDuration: 2 * time.Millisecond,
		Audit:         true,
	})
	defer shutdown()

	t.Run("fabric", func(t *testing.T) {
		var fr struct {
			N     int      `json:"n"`
			Links int      `json:"links"`
			Edges [][2]int `json:"edges"`
		}
		getJSON(t, base+"/v1/fabric", &fr)
		if fr.N != 4 || fr.Links != 12 || len(fr.Edges) != 12 {
			t.Fatalf("fabric: %+v", fr)
		}
	})

	t.Run("submit and deliver", func(t *testing.T) {
		status, body := postJSON(t, base+"/v1/flows", FlowRequest{ID: 7, Src: 0, Dst: 2, Size: 5})
		if status != http.StatusAccepted {
			t.Fatalf("submit: %d %s", status, body)
		}
		var er epochsResp
		deadline := time.Now().Add(20 * time.Second)
		for er.Totals.Delivered < 5 {
			if time.Now().After(deadline) {
				t.Fatalf("flow never delivered: %+v", er.Totals)
			}
			time.Sleep(5 * time.Millisecond)
			getJSON(t, base+"/v1/epochs", &er)
		}
		if er.Totals.Submitted != 5 {
			t.Fatalf("totals: %+v", er.Totals)
		}
	})

	t.Run("rejects", func(t *testing.T) {
		for _, tc := range []struct {
			name string
			req  FlowRequest
			want int
		}{
			{"duplicate ID", FlowRequest{ID: 7, Src: 0, Dst: 1, Size: 2}, http.StatusConflict},
			{"bad size", FlowRequest{Src: 0, Dst: 1, Size: 0}, http.StatusBadRequest},
			{"bad endpoint", FlowRequest{Src: 0, Dst: 99, Size: 2}, http.StatusBadRequest},
			{"self loop", FlowRequest{Src: 1, Dst: 1, Size: 2}, http.StatusBadRequest},
			{"bad route", FlowRequest{Src: 0, Dst: 1, Size: 2, Routes: [][]int{{0, 3}}}, http.StatusBadRequest},
		} {
			status, body := postJSON(t, base+"/v1/flows", tc.req)
			if status != tc.want {
				t.Errorf("%s: got %d %s, want %d", tc.name, status, body, tc.want)
			}
		}
		resp, err := http.Post(base+"/v1/flows", "application/json", strings.NewReader(`{"id":1,`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("truncated JSON: got %d", resp.StatusCode)
		}
	})

	t.Run("cancel", func(t *testing.T) {
		status, body := postJSON(t, base+"/v1/flows", FlowRequest{ID: 900, Src: 0, Dst: 3, Size: 4})
		if status != http.StatusAccepted {
			t.Fatalf("submit: %d %s", status, body)
		}
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/flows/900", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel: %d", resp.StatusCode)
		}
		req, _ = http.NewRequest(http.MethodDelete, base+"/v1/flows/424242", nil)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("cancel unknown: %d", resp.StatusCode)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		for _, want := range []string{
			"octopus_daemon_plan_overruns_total",
			"octopus_daemon_queued_packets",
			"octopus_online_epochs_total",
		} {
			if !strings.Contains(string(body), want) {
				t.Errorf("metrics missing %s", want)
			}
		}
	})

	t.Run("reload", func(t *testing.T) {
		status, body := postJSON(t, base+"/v1/fabric", FabricRequest{N: 6, Complete: true})
		if status != http.StatusOK {
			t.Fatalf("reload: %d %s", status, body)
		}
		var fr struct {
			N int `json:"n"`
		}
		getJSON(t, base+"/v1/fabric", &fr)
		if fr.N != 6 {
			t.Fatalf("fabric after reload: %+v", fr)
		}
		// A flow using the grown fabric's new nodes must now be accepted.
		status, body = postJSON(t, base+"/v1/flows", FlowRequest{Src: 4, Dst: 5, Size: 2})
		if status != http.StatusAccepted {
			t.Fatalf("submit on reloaded fabric: %d %s", status, body)
		}
		// Invalid fabrics are rejected outright.
		for _, bad := range []FabricRequest{
			{N: 1, Complete: true},
			{N: 4},
			{N: 4, Edges: [][2]int{{0, 9}}},
		} {
			status, _ := postJSON(t, base+"/v1/fabric", bad)
			if status != http.StatusBadRequest {
				t.Errorf("bad fabric %+v: got %d", bad, status)
			}
		}
		// A fabric too small for live flows is refused with 409.
		status, body = postJSON(t, base+"/v1/flows", FlowRequest{ID: 7000, Src: 4, Dst: 5, Size: 50000})
		if status != http.StatusAccepted {
			t.Fatalf("submit: %d %s", status, body)
		}
		status, body = postJSON(t, base+"/v1/fabric", FabricRequest{N: 3, Complete: true})
		if status != http.StatusConflict {
			t.Fatalf("shrink under live flow: %d %s", status, body)
		}
	})
}

// TestDaemonFlightAndStatus drives a flight-recording daemon through a full
// flow lifecycle and checks the two new surfaces: GET /v1/flows/{id}/events
// must journal admitted → planned → delivered → completed in order, and
// GET /v1/status must roll up the SLO snapshot, plan percentiles, and the
// per-pod load.
func TestDaemonFlightAndStatus(t *testing.T) {
	rec := flight.New(flight.Config{SLOEpochs: 64})
	_, base, shutdown := testServer(t, Options{
		Fabric:        graph.Complete(4),
		Core:          core.Options{Window: 50, Delta: 2},
		EpochDuration: 2 * time.Millisecond,
		Audit:         true,
		Flight:        rec,
		StatusPods:    2,
	})
	defer shutdown()

	status, body := postJSON(t, base+"/v1/flows", []FlowRequest{
		{ID: 11, Src: 0, Dst: 2, Size: 5},
		{ID: 12, Src: 3, Dst: 1, Size: 7},
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	var er epochsResp
	deadline := time.Now().Add(20 * time.Second)
	for er.Totals.Delivered < 12 {
		if time.Now().After(deadline) {
			t.Fatalf("flows never delivered: %+v", er.Totals)
		}
		time.Sleep(5 * time.Millisecond)
		getJSON(t, base+"/v1/epochs", &er)
	}

	var ev struct {
		Flow    int  `json:"flow"`
		Tracked bool `json:"tracked"`
		Sample  int  `json:"sample"`
		Events  []struct {
			Seq   uint64 `json:"seq"`
			Ev    string `json:"ev"`
			Epoch int32  `json:"epoch"`
			A     int64  `json:"a"`
		} `json:"events"`
	}
	getJSON(t, base+"/v1/flows/11/events", &ev)
	if ev.Flow != 11 || !ev.Tracked || ev.Sample != 1 {
		t.Fatalf("events envelope: %+v", ev)
	}
	var names []string
	for _, e := range ev.Events {
		names = append(names, e.Ev)
	}
	want := []string{"admitted", "planned", "delivered", "completed"}
	got := map[string]int{}
	for i, n := range names {
		if _, seen := got[n]; !seen {
			got[n] = i
		}
	}
	last := -1
	for _, n := range want {
		i, ok := got[n]
		if !ok {
			t.Fatalf("lifecycle missing %q: %v", n, names)
		}
		if i < last {
			t.Fatalf("lifecycle out of order at %q: %v", n, names)
		}
		last = i
	}
	if ev.Events[0].A != 5 { // admitted carries the flow size
		t.Fatalf("admitted size: %+v", ev.Events[0])
	}

	var st struct {
		Epoch          int            `json:"epoch"`
		PlanP99Seconds float64        `json:"plan_p99_seconds"`
		PodSize        int            `json:"pod_size"`
		PodLoad        []int64        `json:"pod_load"`
		Totals         engine.Totals  `json:"totals"`
		Flight         map[string]any `json:"flight"`
	}
	getJSON(t, base+"/v1/status", &st)
	if st.Epoch == 0 || st.Totals.Delivered != 12 {
		t.Fatalf("status progress: %+v", st)
	}
	if st.PlanP99Seconds <= 0 {
		t.Fatalf("plan p99 not observed: %+v", st)
	}
	if st.PodSize != 2 || len(st.PodLoad) != 2 || st.PodLoad[0] != 5 || st.PodLoad[1] != 7 {
		t.Fatalf("pod load: %+v", st)
	}
	if st.Flight == nil {
		t.Fatal("status missing the flight snapshot")
	}
	if frac, ok := st.Flight["on_time_fraction"].(float64); !ok || frac != 1 {
		t.Fatalf("on-time fraction: %v", st.Flight)
	}
	if comp, ok := st.Flight["completed"].(float64); !ok || comp != 2 {
		t.Fatalf("completed flows: %v", st.Flight)
	}
}

// TestDaemonFlightDisabled pins the no-recorder behavior: per-flow events
// 404 with a pointer to the flag, and /v1/status serves without a flight
// section.
func TestDaemonFlightDisabled(t *testing.T) {
	_, base, shutdown := testServer(t, Options{
		Fabric:        graph.Complete(4),
		Core:          core.Options{Window: 50, Delta: 2},
		EpochDuration: 2 * time.Millisecond,
	})
	defer shutdown()
	resp, err := http.Get(base + "/v1/flows/1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events without a recorder: %d", resp.StatusCode)
	}
	var st map[string]any
	getJSON(t, base+"/v1/status", &st)
	if _, ok := st["flight"]; ok {
		t.Fatal("status has a flight section without a recorder")
	}
	if _, ok := st["pod_load"]; !ok {
		t.Fatal("status missing pod_load")
	}
}

func TestDaemonBackpressure(t *testing.T) {
	_, base, shutdown := testServer(t, Options{
		Fabric:        graph.Complete(4),
		Core:          core.Options{Window: 50, Delta: 2},
		EpochDuration: time.Millisecond,
		QueueLimit:    10,
	})
	defer shutdown()
	// A batch beyond the queue limit is rejected with 429 up front.
	status, body := postJSON(t, base+"/v1/flows", []FlowRequest{
		{ID: 1, Src: 0, Dst: 1, Size: 8},
		{ID: 2, Src: 1, Dst: 2, Size: 8},
	})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-limit batch: %d %s", status, body)
	}
}

func TestDaemonDrainsOnShutdown(t *testing.T) {
	s, base, shutdown := testServer(t, Options{
		Fabric:        graph.Complete(4),
		Core:          core.Options{Window: 20, Delta: 2},
		EpochDuration: 50 * time.Millisecond, // slow epochs: undelivered at cancel time
		DrainTimeout:  20 * time.Second,
	})
	status, body := postJSON(t, base+"/v1/flows", FlowRequest{ID: 1, Src: 0, Dst: 1, Size: 200})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	shutdown() // cancels the context; Run must drain the backlog before returning
	tot := s.pipe.Totals()
	if tot.Delivered != 200 {
		t.Fatalf("shutdown did not drain: %+v", tot)
	}
}

func TestDecodeFlowRequests(t *testing.T) {
	for _, tc := range []struct {
		in   string
		n    int
		fail bool
	}{
		{`{"src":0,"dst":1,"size":3}`, 1, false},
		{`[{"src":0,"dst":1,"size":3},{"id":9,"src":1,"dst":2,"size":1}]`, 2, false},
		{``, 0, true},
		{`  `, 0, true},
		{`[]`, 0, true},
		{`{"src":0,"dst":1,"size":3}{"src":1}`, 0, true},
		{`{"src":0,"unknown_field":1}`, 0, true},
		{`[{"src":0,"dst":1,"size":3}] trailing`, 0, true},
		{`"just a string"`, 0, true},
		{`42`, 0, true},
	} {
		got, err := decodeFlowRequests([]byte(tc.in))
		if tc.fail {
			if err == nil {
				t.Errorf("decode(%q): expected error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("decode(%q): %v", tc.in, err)
			continue
		}
		if len(got) != tc.n {
			t.Errorf("decode(%q): %d requests, want %d", tc.in, len(got), tc.n)
		}
	}
	big := make([]FlowRequest, maxBatch+1)
	data, _ := json.Marshal(big)
	if _, err := decodeFlowRequests(data); err == nil {
		t.Error("oversized batch accepted")
	}
}

func TestKindNames(t *testing.T) {
	for k, want := range map[engine.PlanKind]string{
		engine.PlanScheduled:     "scheduled",
		engine.PlanIdle:          "idle",
		engine.PlanJitterSkipped: "jitter-skipped",
		engine.PlanDrained:       "drained",
		engine.PlanKind(99):      "unknown",
	} {
		if got := kindName(k); got != want {
			t.Errorf("kindName(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("nil fabric accepted")
	}
	if _, err := New(Options{Fabric: graph.Complete(3)}); err == nil {
		t.Fatal("zero window accepted")
	}
}
