package core

import (
	"math"
	"math/rand"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// enumerateMatchings returns every nonempty matching of g.
func enumerateMatchings(g *graph.Digraph) [][]graph.Edge {
	edges := g.Edges()
	var out [][]graph.Edge
	var cur []graph.Edge
	usedF := map[int]bool{}
	usedT := map[int]bool{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(edges) {
			if len(cur) > 0 {
				out = append(out, append([]graph.Edge(nil), cur...))
			}
			return
		}
		rec(i + 1)
		e := edges[i]
		if !usedF[e.From] && !usedT[e.To] {
			usedF[e.From] = true
			usedT[e.To] = true
			cur = append(cur, e)
			rec(i + 1)
			cur = cur[:len(cur)-1]
			usedF[e.From] = false
			usedT[e.To] = false
		}
	}
	rec(0)
	return out
}

// bruteForceBestPsi exhaustively searches configuration sequences (with
// the fixed packet-priority scheme; the paper's footnote 3 notes the true
// optimum need not prioritize this way, so this is a lower bound on OPT —
// sufficient for validating that Octopus clears the Theorem 1 bound
// against it) and returns the best ψ achievable within the window.
func bruteForceBestPsi(t *testing.T, g *graph.Digraph, load *traffic.Load, window, delta int) int64 {
	t.Helper()
	matchings := enumerateMatchings(g)
	var best int64
	var seq []schedule.Configuration
	var rec func(used int)
	rec = func(used int) {
		sch := &schedule.Schedule{Delta: delta, Configs: seq}
		res, err := simulate.Run(g, load, sch, simulate.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Psi > best {
			best = res.Psi
		}
		for _, m := range matchings {
			for alpha := 1; used+delta+alpha <= window; alpha++ {
				seq = append(seq, schedule.Configuration{Links: m, Alpha: alpha})
				rec(used + delta + alpha)
				seq = seq[:len(seq)-1]
			}
		}
	}
	rec(0)
	return best
}

// TestTheorem1BoundOnTinyInstances validates the approximation guarantee:
// Octopus's ψ must be at least (1 - 1/e^{1/𝒟})·W/(W+Δ) times the best ψ
// found by exhaustive search, on instances small enough to search.
func TestTheorem1BoundOnTinyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		// Tiny fabric: 4 nodes, ~4 random edges plus whatever routes need.
		g := graph.New(4)
		var flows []traffic.Flow
		id := 1
		for f := 0; f < 2; f++ {
			src := rng.Intn(4)
			dst := (src + 1 + rng.Intn(3)) % 4
			hops := 1 + rng.Intn(2)
			var route traffic.Route
			if hops == 1 {
				route = traffic.Route{src, dst}
			} else {
				var mid int
				for {
					mid = rng.Intn(4)
					if mid != src && mid != dst {
						break
					}
				}
				route = traffic.Route{src, mid, dst}
			}
			for k := 0; k+1 < len(route); k++ {
				g.AddEdge(route[k], route[k+1])
			}
			flows = append(flows, traffic.Flow{
				ID: id, Size: 1 + rng.Intn(3), Src: src, Dst: dst,
				Routes: []traffic.Route{route},
			})
			id++
		}
		load := &traffic.Load{Flows: flows}
		const window, delta = 7, 1
		s, err := New(g, load, Options{Window: window, Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteForceBestPsi(t, g, load, window, delta)
		if opt == 0 {
			continue
		}
		d := float64(load.MaxHops())
		bound := (1 - math.Exp(-1/d)) * float64(window) / float64(window+delta)
		if float64(res.Psi) < bound*float64(opt)-1e-9 {
			t.Fatalf("trial %d: Octopus ψ=%d below bound %.3f·OPT(%d) = %.1f",
				trial, res.Psi, bound, opt, bound*float64(opt))
		}
	}
}

// TestOctopusOftenMatchesTinyOptimum is a sanity companion: on most tiny
// instances the greedy actually attains the exhaustive optimum.
func TestOctopusOftenMatchesTinyOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	matched, total := 0, 0
	for trial := 0; trial < 10; trial++ {
		g := graph.New(3)
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		g.AddEdge(0, 2)
		load := &traffic.Load{Flows: []traffic.Flow{
			{ID: 1, Size: 1 + rng.Intn(2), Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
			{ID: 2, Size: 1 + rng.Intn(2), Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		}}
		const window, delta = 6, 1
		s, err := New(g, load, Options{Window: window, Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteForceBestPsi(t, g, load, window, delta)
		total++
		if res.Psi == opt {
			matched++
		}
		if res.Psi > opt {
			t.Fatalf("trial %d: Octopus ψ=%d exceeds exhaustive optimum %d", trial, res.Psi, opt)
		}
		// Empirically the greedy stays well above the worst-case bound
		// even on adversarially tiny windows.
		if float64(res.Psi) < 0.5*float64(opt) {
			t.Fatalf("trial %d: Octopus ψ=%d below half of optimum %d", trial, res.Psi, opt)
		}
	}
	t.Logf("matched the exhaustive optimum on %d of %d tiny instances", matched, total)
}
