package core

import (
	"io"
	"math/rand"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/traffic"
)

func benchInstance(b *testing.B, n, window int) (*graph.Digraph, *traffic.Load) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.Complete(n)
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(n, window), rng)
	if err != nil {
		b.Fatal(err)
	}
	return g, load
}

// BenchmarkStep measures steady-state greedy iterations (the §4.1
// practically significant quantity) for both matchers. The scheduler is
// warmed with one untimed Step so the one-time queue and summary
// construction is excluded; when a run completes, a fresh warmed scheduler
// replaces it outside the timer.
func BenchmarkStep(b *testing.B) {
	for _, m := range []struct {
		name string
		m    Matcher
	}{{"exact", MatcherExact}, {"greedy", MatcherGreedy}} {
		b.Run(m.name, func(b *testing.B) {
			g, load := benchInstance(b, 50, 5000)
			newWarm := func() *Scheduler {
				s, err := New(g, load, Options{Window: 5000, Delta: 20, Matcher: m.m})
				if err != nil {
					b.Fatal(err)
				}
				if _, ok, err := s.Step(); err != nil || !ok {
					b.Fatal("warmup step failed")
				}
				return s
			}
			s := newWarm()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, ok, err := s.Step()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.StopTimer()
					s = newWarm()
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkStepObs measures the cost of the instrumentation seam itself:
// "off" runs with Options.Obs nil (the default no-op path, one nil check
// per event — this must stay within noise of BenchmarkStep), "on" attaches
// a metrics registry and a tracer draining into io.Discard. benchstat of
// the two quantifies the full-observability overhead.
func BenchmarkStepObs(b *testing.B) {
	for _, v := range []struct {
		name string
		mk   func() *obs.Observer
	}{
		{"off", func() *obs.Observer { return nil }},
		{"on", func() *obs.Observer {
			return &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer(io.Discard)}
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			g, load := benchInstance(b, 50, 5000)
			newWarm := func() *Scheduler {
				s, err := New(g, load, Options{Window: 5000, Delta: 20, Obs: v.mk()})
				if err != nil {
					b.Fatal(err)
				}
				if _, ok, err := s.Step(); err != nil || !ok {
					b.Fatal("warmup step failed")
				}
				return s
			}
			s := newWarm()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, ok, err := s.Step()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.StopTimer()
					s = newWarm()
					b.StartTimer()
				}
			}
		})
	}
}

var gValueSink int64

// BenchmarkGValue measures g(i, j, α) lookups over every active link of a
// mid-run queue state, across the α magnitudes the greedy loop probes.
func BenchmarkGValue(b *testing.B) {
	g, load := benchInstance(b, 50, 5000)
	s, err := New(g, load, Options{Window: 5000, Delta: 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := s.Step(); err != nil || !ok {
			b.Fatal("warmup step failed")
		}
	}
	states := s.tr.activeStates()
	alphas := []int{1, 16, 256, 5000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		for _, ls := range states {
			for _, a := range alphas {
				sum += gValueState(ls, a)
			}
		}
		gValueSink = sum
	}
}

// BenchmarkCandidateAlphas measures Procedure 1.
func BenchmarkCandidateAlphas(b *testing.B) {
	g, load := benchInstance(b, 50, 5000)
	s, err := New(g, load, Options{Window: 5000, Delta: 20})
	if err != nil {
		b.Fatal(err)
	}
	s.tr.candidateAlphas(5000) // pay the one-time summary build untimed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.tr.candidateAlphas(5000)
	}
}

// BenchmarkApply measures remaining-traffic application throughput.
func BenchmarkApply(b *testing.B) {
	g, load := benchInstance(b, 50, 5000)
	links := make([]graph.Edge, 0, 50)
	for i := 0; i < 50; i++ {
		links = append(links, graph.Edge{From: i, To: (i + 1) % 50})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := newRemaining(g, load, 0, false, false, false)
		b.StartTimer()
		tr.apply(links, 100)
	}
}

// BenchmarkFullRun measures a complete Octopus run at a moderate scale.
func BenchmarkFullRun(b *testing.B) {
	g, load := benchInstance(b, 32, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := New(g, load, Options{Window: 1500, Delta: 20})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOctopusPlusRun measures the joint routing/scheduling variant.
func BenchmarkOctopusPlusRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Complete(24)
	p := traffic.DefaultSyntheticParams(24, 800)
	p.RouteChoices = 10
	load, err := traffic.Synthetic(g, p, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := New(g, load, Options{Window: 800, Delta: 20, MultiRoute: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
