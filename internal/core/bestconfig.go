package core

import (
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"octopus/internal/graph"
	"octopus/internal/matching"
)

// evalScratch is the reusable per-worker scratch of the parallel α
// evaluation: the weighted-edge buffer, the row/column upper-bound arrays
// (slice-backed, keyed by node index), and the matching arena. One scratch
// belongs to exactly one worker for the duration of a parallelFor, so no
// synchronization is needed, and the greedy loop stops allocating on its
// hot path after the first iteration.
type evalScratch struct {
	we       []matching.Edge
	row, col []int64 // length fabric.N(), all-zero between rowColUB calls
	dirty    []int   // warm-start dirty-node buffer
	arena    matching.Arena
}

// best tracks the highest benefit-per-unit-cost configuration seen so far
// during one greedy iteration.
type best struct {
	links   []graph.Edge
	alpha   int
	benefit int64
	delta   int
}

// consider updates the incumbent if (benefit, alpha) has a strictly higher
// benefit per unit cost. Ties keep the earlier candidate, so a fixed
// consideration order (ascending α, greedy before exact) makes the choice
// deterministic.
func (b *best) consider(links []graph.Edge, alpha int, benefit int64) {
	if benefit <= 0 {
		return
	}
	if b.benefit == 0 || benefit*int64(b.alpha+b.delta) > b.benefit*int64(alpha+b.delta) {
		b.links, b.alpha, b.benefit = links, alpha, benefit
	}
}

// beats reports whether (benefit, alpha) would strictly exceed the
// incumbent's benefit per unit cost.
func (b *best) beats(benefit int64, alpha int) bool {
	if b.benefit == 0 {
		return benefit > 0
	}
	return benefit*int64(b.alpha+b.delta) > b.benefit*int64(alpha+b.delta)
}

// exceeds reports whether the incumbent's benefit per unit cost strictly
// exceeds (benefit, alpha)'s. Note !exceeds is weaker than beats: on equal
// ratios neither holds.
func (b *best) exceeds(benefit int64, alpha int) bool {
	if b.benefit == 0 {
		return false
	}
	return b.benefit*int64(alpha+b.delta) > benefit*int64(b.alpha+b.delta)
}

// warmEntry is the per-α retained state of the MatcherWarm mode: the dual
// potentials recorded by the α's previous exact solve plus the remaining-
// traffic tick at which that solve ran (-1 before the first). Links whose
// queues changed after `since` determine the dirty-row hint of the next
// solve.
type warmEntry struct {
	ws    matching.WarmState
	since int64
}

// alphaEval is the per-α evaluation record of one greedy iteration.
type alphaEval struct {
	// Bipartite exact mode: greedy seed, matching-weight upper bound, and
	// (phase 2) the exact matching.
	greedyLinks []graph.Edge
	greedyW     int64
	ub          int64
	exactLinks  []graph.Edge
	exactW      int64
	// Other modes (greedy-only, multi-port, bidirectional, chained):
	// a single candidate.
	links []graph.Edge
	w     int64
}

// bestConfiguration implements Procedure 2 (BestConfiguration) with the
// optimizations described in DESIGN.md: the α-candidate set of Procedure 1,
// a two-phase evaluation that computes the cheap greedy matching and a
// row/column upper bound for every α first and runs the exact matcher only
// where the bound can still win, and parallel evaluation across α's (the
// paper's §4.1 notes the per-iteration matchings are embarrassingly
// parallel). The result is deterministic: it equals a sequential
// ascending-α scan considering the greedy then the exact matching of each
// α. Returns a nil link set with benefit 0 when nothing can be served.
func (s *Scheduler) bestConfiguration(maxAlpha int) ([]graph.Edge, int, int64) {
	alphas := s.tr.candidateAlphas(maxAlpha)
	s.lastCandidates = len(alphas)
	if len(alphas) == 0 {
		return nil, 0, 0
	}
	// Materialize lazily-built state before any parallel read-only phase.
	s.tr.activeEdges()

	bst := &best{delta: s.opt.Delta}
	if s.opt.AlphaSearch == AlphaBinary {
		s.ternarySearch(alphas, bst)
		sortLinks(bst.links)
		return bst.links, bst.alpha, bst.benefit
	}

	if cap(s.evals) < len(alphas) {
		s.evals = make([]alphaEval, len(alphas))
	}
	evals := s.evals[:len(alphas)]
	for i := range evals {
		evals[i] = alphaEval{}
	}
	exactBipartite := s.ufabric == nil && !s.opt.MultiHop && s.opt.Ports == 1 && s.opt.Matcher.exact()
	s.gbufValid = false
	if exactBipartite {
		s.buildGBuf(alphas)
	}

	// Phase 1: cheap evaluation of every α.
	s.parallelFor(len(alphas), func(w, i int) {
		sc := s.scratch[w]
		a := alphas[i]
		if exactBipartite {
			we := s.weightedEdgesAt(sc, i, a)
			if len(we) == 0 {
				return
			}
			m, gw := sc.arena.GreedyBipartite(s.fabric.N(), we)
			evals[i].greedyLinks = toLinks(m)
			evals[i].greedyW = gw
			evals[i].ub = rowColUB(we, sc.row, sc.col)
			return
		}
		local := &best{delta: s.opt.Delta}
		s.evalAlpha(sc, a, local)
		evals[i].links = local.links
		evals[i].w = local.benefit
	})

	if !exactBipartite {
		for i, a := range alphas {
			bst.consider(evals[i].links, a, evals[i].w)
		}
		sortLinks(bst.links)
		return bst.links, bst.alpha, bst.benefit
	}

	// Reduce the greedy seeds (ascending α; deterministic).
	seed := &best{delta: s.opt.Delta}
	for i, a := range alphas {
		seed.consider(evals[i].greedyLinks, a, evals[i].greedyW)
	}
	// Phase 2: exact matchings only where an upper bound can still strictly
	// beat the best greedy seed. Two admissible bounds apply: the row/column
	// bound of phase 1, and twice the greedy weight (the greedy matcher is a
	// 1/2-approximation, so exact(α) <= 2·greedy(α)). Membership depends
	// only on phase-1 output, so the computed set is deterministic.
	//
	// The two filters carry different tie semantics, deliberately. The
	// row/column filter is the historical one (solve only when ub strictly
	// beats the seed): a skipped α has exact(α) <= ub(α) <= seed ratio, so
	// its exact matching never strictly exceeds the seed and can never be
	// chosen. The 2·greedy filter must be strictly weaker on ties — it
	// skips only when the seed ratio strictly exceeds 2·greedy(α) — because
	// with exact(α) == seed ratio exactly, the ascending-α reduction below
	// could legitimately pick exact(α) (it precedes the seed's own entry
	// when α is smaller); strictness guarantees skipped α's satisfy
	// exact(α) < seed ratio and stay non-winners.
	sel := s.selBuf[:0]
	for i := range alphas {
		if seed.beats(evals[i].ub, alphas[i]) && !seed.exceeds(2*evals[i].greedyW, alphas[i]) {
			sel = append(sel, i)
		}
	}
	s.selBuf = sel
	selected := len(sel)
	if s.opt.Matcher == MatcherWarm {
		// Pre-create the per-α warm entries single-threaded so the workers
		// below only read the map.
		for _, i := range sel {
			s.warmFor(alphas[i])
		}
	}
	// Solve in descending upper-bound-ratio order (ascending α on ties) in
	// fixed-size chunks, tightening an incumbent between chunks: a solve is
	// skipped once the incumbent's ratio strictly exceeds its upper bound.
	// Such a solve satisfies exact(α) <= ub(α) < incumbent <= final best
	// ratio, so dropping it removes neither the argmax nor any tie the
	// ascending-α reduction below could prefer — the chosen configuration
	// is identical to solving the whole set (and independent of
	// parallelism, since pruning decisions happen only at the
	// single-threaded chunk boundaries). The chunk order does not leak into
	// the result: the reduction still walks evals in ascending α.
	slices.SortFunc(sel, func(x, y int) int {
		bx := evals[x].ub * int64(alphas[y]+s.opt.Delta)
		by := evals[y].ub * int64(alphas[x]+s.opt.Delta)
		switch {
		case bx > by:
			return -1
		case bx < by:
			return 1
		}
		return alphas[x] - alphas[y]
	})
	inc := *seed
	solved := 0
	for lo := 0; lo < len(sel); lo += phase2Chunk {
		hi := lo + phase2Chunk
		if hi > len(sel) {
			hi = len(sel)
		}
		// Compact the chunk down to the solves the incumbent cannot prune,
		// using the tighter of the two bounds (strictly, as above).
		k := lo
		for _, i := range sel[lo:hi] {
			bound := evals[i].ub
			if g2 := 2 * evals[i].greedyW; g2 < bound {
				bound = g2
			}
			if !inc.exceeds(bound, alphas[i]) {
				sel[k] = i
				k++
			}
		}
		s.parallelFor(k-lo, func(w, ci int) {
			i := sel[lo+ci]
			sc := s.scratch[w]
			we := s.weightedEdgesAt(sc, i, alphas[i])
			m, mw := s.exactSolve(sc, alphas[i], we)
			evals[i].exactLinks = toLinks(m)
			evals[i].exactW = mw
		})
		for _, i := range sel[lo:k] {
			inc.consider(evals[i].exactLinks, alphas[i], evals[i].exactW)
		}
		solved += k - lo
	}
	s.prunedExact += int64(selected - solved)
	// Final reduction mirrors the sequential order: for each α ascending,
	// greedy first, then the exact matching if computed.
	for i, a := range alphas {
		bst.consider(evals[i].greedyLinks, a, evals[i].greedyW)
		bst.consider(evals[i].exactLinks, a, evals[i].exactW)
	}
	sortLinks(bst.links)
	return bst.links, bst.alpha, bst.benefit
}

// phase2Chunk is the number of exact solves launched between incumbent
// updates in phase 2. Smaller chunks prune more aggressively but
// synchronize more often.
const phase2Chunk = 8

// gbufMaxEntries caps the batched g-value buffer (8 MiB of int64); larger
// iterations fall back to the per-α summary walk, which computes the same
// values.
const gbufMaxEntries = 1 << 20

// buildGBuf precomputes g(link, α) for every active link and candidate α in
// one pass per link: the candidate α's are ascending, so each summary's
// prefix arrays are walked once with a rolling cursor instead of one binary
// search per (link, α) pair. Values are exactly gValueState's.
func (s *Scheduler) buildGBuf(alphas []int) {
	states := s.tr.activeStates()
	nA := len(alphas)
	need := nA * len(states)
	if need == 0 || need > gbufMaxEntries {
		return
	}
	if cap(s.gbuf) < need {
		s.gbuf = make([]int64, need)
	}
	g := s.gbuf[:need]
	for li, ls := range states {
		row := g[li*nA : (li+1)*nA]
		sum := ls.summary()
		n := len(sum.prefC)
		if n == 0 {
			for ai := range row {
				row[ai] = 0
			}
			continue
		}
		top := sum.prefC[n-1]
		k := 0
		for ai, a := range alphas {
			if a >= top {
				row[ai] = sum.prefB[n-1]
				continue
			}
			for sum.prefC[k] < a {
				k++
			}
			row[ai] = sum.prefB[k] - int64(sum.prefC[k]-a)*sum.bws[k]
		}
	}
	s.gbuf = g
	s.gbufStride = nA
	s.gbufValid = true
}

// weightedEdgesAt is weightedEdges fed from the batched g-value buffer when
// one was built this iteration (ai indexes the candidate-α slice); it falls
// back to the per-α walk otherwise. Both produce the identical edge list.
func (s *Scheduler) weightedEdgesAt(sc *evalScratch, ai int, a int) []matching.Edge {
	if !s.gbufValid {
		return s.weightedEdges(sc, a)
	}
	we := sc.we[:0]
	edges := s.tr.activeEdges()
	nA := s.gbufStride
	for li, e := range edges {
		if w := s.gbuf[li*nA+ai]; w > 0 {
			we = append(we, matching.Edge{From: e.From, To: e.To, Weight: w})
		}
	}
	sc.we = we
	return we
}

// warmFor returns the warm-start entry of α, creating it if absent. Callers
// on parallel paths must pre-create entries single-threaded first (phase 2
// does); after that the map is only read.
func (s *Scheduler) warmFor(a int) *warmEntry {
	e := s.warm[a]
	if e == nil {
		if s.warm == nil {
			s.warm = make(map[int]*warmEntry)
		}
		e = &warmEntry{since: -1}
		s.warm[a] = e
	}
	return e
}

// dirtyNodes lists, deduplicated and ascending, the From-nodes of active
// links whose queues changed after tick `since` — the warm-start dirty-row
// hint. Active links are ordered by (From, To) and never leave the active
// list, so every row whose g-values could differ from the α's previous
// solve is covered.
func (s *Scheduler) dirtyNodes(sc *evalScratch, since int64) []int {
	edges := s.tr.activeEdges()
	states := s.tr.activeStates()
	buf := sc.dirty[:0]
	last := -1
	for i, ls := range states {
		if ls.lastTick > since && edges[i].From != last {
			last = edges[i].From
			buf = append(buf, last)
		}
	}
	sc.dirty = buf
	return buf
}

// exactSolve runs the configured exact matcher on the weighted edges of α.
// MatcherExact auto-dispatches dense/sparse (bit-identical either way);
// MatcherDense and MatcherSparse force one path; MatcherWarm retains duals
// per α across iterations, handing the solver the dirty rows accumulated
// since that α's previous solve.
func (s *Scheduler) exactSolve(sc *evalScratch, a int, we []matching.Edge) ([]matching.Edge, int64) {
	n := s.fabric.N()
	switch s.opt.Matcher {
	case MatcherDense:
		return sc.arena.MaxWeightBipartiteDense(n, we)
	case MatcherSparse:
		return sc.arena.MaxWeightBipartiteSparse(n, we)
	case MatcherWarm:
		e := s.warmFor(a)
		var dirty []int
		if e.since >= 0 {
			dirty = s.dirtyNodes(sc, e.since)
		}
		m, w := sc.arena.MaxWeightBipartiteWarm(n, we, &e.ws, dirty)
		e.since = s.tr.tick
		return m, w
	default:
		return sc.arena.MaxWeightBipartite(n, we)
	}
}

// parallelFor runs f(worker, 0..n-1) across Options.Parallelism workers
// (Parallelism <= 1 runs inline with worker 0). The remaining-traffic state
// is read-only during evaluation, so workers share it without
// synchronization; work items are claimed from a lock-free atomic counter.
// Each worker owns s.scratch[worker] exclusively for the duration of the
// call.
func (s *Scheduler) parallelFor(n int, f func(worker, i int)) {
	workers := s.opt.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	s.ensureScratch(workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ensureScratch grows the per-worker scratch pool to at least `workers`
// entries. Called single-threaded before workers start.
func (s *Scheduler) ensureScratch(workers int) {
	for len(s.scratch) < workers {
		n := s.fabric.N()
		s.scratch = append(s.scratch, &evalScratch{
			row: make([]int64, n),
			col: make([]int64, n),
		})
	}
}

// ternarySearch finds a local maximum of the benefit-per-unit-cost function
// over the sorted candidate α's with O(log |A|) full evaluations (the
// paper's Octopus-B). The function need not be unimodal, so this finds one
// of its maxima, not necessarily the global one; §8 observes the loss is
// minimal in practice.
func (s *Scheduler) ternarySearch(alphas []int, bst *best) {
	type evald struct {
		links   []graph.Edge
		benefit int64
	}
	s.ensureScratch(1)
	cache := make(map[int]evald)
	eval := func(i int) evald {
		a := alphas[i]
		if e, ok := cache[a]; ok {
			return e
		}
		local := &best{delta: s.opt.Delta}
		s.evalAlpha(s.scratch[0], a, local)
		e := evald{local.links, local.benefit}
		cache[a] = e
		return e
	}
	ratioLess := func(i, j int) bool {
		ei, ej := eval(i), eval(j)
		return ei.benefit*int64(alphas[j]+s.opt.Delta) < ej.benefit*int64(alphas[i]+s.opt.Delta)
	}
	lo, hi := 0, len(alphas)-1
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if ratioLess(m1, m2) {
			lo = m1 + 1
		} else {
			hi = m2 - 1
		}
	}
	for i := lo; i <= hi; i++ {
		e := eval(i)
		bst.consider(e.links, alphas[i], e.benefit)
	}
}

// evalAlpha fully evaluates the best configuration for one α (both
// matchers where applicable) and feeds it to bst. It only reads the
// remaining-traffic state, plus the caller's exclusively-owned scratch.
func (s *Scheduler) evalAlpha(sc *evalScratch, a int, bst *best) {
	switch {
	case s.ufabric != nil:
		s.evalBidirectional(a, bst)
	case s.opt.MultiHop:
		links, benefit := s.chainedGreedy(a)
		bst.consider(links, a, benefit)
	case s.opt.Ports > 1:
		s.evalMultiPort(sc, a, bst)
	default:
		we := s.weightedEdges(sc, a)
		if len(we) == 0 {
			return
		}
		n := s.fabric.N()
		gm, gw := sc.arena.GreedyBipartite(n, we)
		bst.consider(toLinks(gm), a, gw)
		if s.opt.Matcher == MatcherGreedy {
			return
		}
		m, w := s.exactSolve(sc, a, we)
		bst.consider(toLinks(m), a, w)
	}
}

// weightedEdges builds the weighted graph G' of Procedure 2: every active
// link weighted by g(i, j, α). The result is ordered by (From, To) and
// aliases the scratch buffer — it is valid until the next call with the
// same scratch.
func (s *Scheduler) weightedEdges(sc *evalScratch, a int) []matching.Edge {
	we := sc.we[:0]
	edges := s.tr.activeEdges()
	states := s.tr.activeStates()
	for i, e := range edges {
		if w := gValueState(states[i], a); w > 0 {
			we = append(we, matching.Edge{From: e.From, To: e.To, Weight: w})
		}
	}
	sc.we = we
	return we
}

// rowColUB is a cheap upper bound on the maximum-weight matching: the
// smaller of the row-maxima sum and the column-maxima sum. row and col are
// caller-owned all-zero arrays indexed by node; they are restored to zero
// before returning (every weight is positive, so a non-zero cell is both
// "seen" marker and maximum).
func rowColUB(we []matching.Edge, row, col []int64) int64 {
	for _, e := range we {
		if e.Weight > row[e.From] {
			row[e.From] = e.Weight
		}
		if e.Weight > col[e.To] {
			col[e.To] = e.Weight
		}
	}
	var rs, cs int64
	for _, e := range we {
		if w := row[e.From]; w != 0 {
			rs += w
			row[e.From] = 0
		}
		if w := col[e.To]; w != 0 {
			cs += w
			col[e.To] = 0
		}
	}
	if cs < rs {
		return cs
	}
	return rs
}

// toLinks copies a matching into a link set. The copy is NOT sorted:
// candidate link sets only feed best.consider (order-insensitive), and
// bestConfiguration sorts the single winning set before returning, which is
// cheaper than sorting every candidate.
func toLinks(m []matching.Edge) []graph.Edge {
	if len(m) == 0 {
		return nil
	}
	links := make([]graph.Edge, len(m))
	for i, e := range m {
		links[i] = graph.Edge{From: e.From, To: e.To}
	}
	return links
}

func sortLinks(links []graph.Edge) {
	slices.SortFunc(links, cmpEdge)
}

// cmpEdge orders edges by (From, To); link sets never repeat an edge, so
// the order is strict and the unstable sort is deterministic.
func cmpEdge(a, b graph.Edge) int {
	if a.From != b.From {
		return a.From - b.From
	}
	return a.To - b.To
}

// evalMultiPort greedily composes r edge-disjoint matchings (§7, K ports
// per node). Committed subflows queue on exactly one link, so matchings
// over disjoint edge sets serve disjoint packet sets and benefits add
// exactly; no weight recomputation is needed between the r rounds.
func (s *Scheduler) evalMultiPort(sc *evalScratch, a int, bst *best) {
	we := s.weightedEdges(sc, a)
	if len(we) == 0 {
		return
	}
	n := s.fabric.N()
	used := make(map[graph.Edge]bool)
	var links []graph.Edge
	var total int64
	avail := we
	for r := 0; r < s.opt.Ports; r++ {
		var m []matching.Edge
		var w int64
		if s.opt.Matcher == MatcherGreedy {
			m, w = sc.arena.GreedyBipartite(n, avail)
		} else {
			// checkOptions rejects MatcherWarm with Ports > 1, so this only
			// dispatches the stateless exact variants.
			m, w = s.exactSolve(sc, a, avail)
		}
		if w <= 0 {
			break
		}
		total += w
		for _, e := range m {
			ge := graph.Edge{From: e.From, To: e.To}
			used[ge] = true
			links = append(links, ge)
		}
		next := avail[:0:0]
		for _, e := range avail {
			if !used[graph.Edge{From: e.From, To: e.To}] {
				next = append(next, e)
			}
		}
		avail = next
	}
	if total > 0 {
		sortLinks(links)
		bst.consider(links, a, total)
	}
}

// evalBidirectional handles the undirected fabric of §7: the weight of an
// undirected link is the sum of its two directions' g values, and the
// configuration is a matching of the undirected graph — exact via the
// blossom algorithm (the general-graph matcher the paper's §7 calls for)
// with MatcherExact, or the greedy matcher plus a local-improvement pass
// with MatcherGreedy.
func (s *Scheduler) evalBidirectional(a int, bst *best) {
	sum := make(map[graph.UEdge]int64)
	edges := s.tr.activeEdges()
	states := s.tr.activeStates()
	for i, e := range edges {
		if w := gValueState(states[i], a); w > 0 {
			sum[graph.NormUEdge(e.From, e.To)] += w
		}
	}
	if len(sum) == 0 {
		return
	}
	ue := make([]matching.UEdge, 0, len(sum))
	for e, w := range sum {
		ue = append(ue, matching.UEdge{A: e.A, B: e.B, Weight: w})
	}
	sort.Slice(ue, func(i, j int) bool {
		if ue[i].A != ue[j].A {
			return ue[i].A < ue[j].A
		}
		return ue[i].B < ue[j].B
	})
	n := s.fabric.N()
	var m []matching.UEdge
	var w int64
	if s.opt.Matcher == MatcherGreedy {
		m, _ = matching.GreedyGeneral(n, ue)
		m, w = matching.AugmentGeneral(n, ue, m)
	} else {
		m, w = matching.MaxWeightGeneral(n, ue)
	}
	if w <= 0 {
		return
	}
	links := make([]graph.Edge, 0, 2*len(m))
	for _, e := range m {
		links = append(links, graph.Edge{From: e.A, To: e.B}, graph.Edge{From: e.B, To: e.A})
	}
	sortLinks(links)
	bst.consider(links, a, w)
}
