package core

import (
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"octopus/internal/graph"
	"octopus/internal/matching"
)

// evalScratch is the reusable per-worker scratch of the parallel α
// evaluation: the weighted-edge buffer, the row/column upper-bound arrays
// (slice-backed, keyed by node index), and the matching arena. One scratch
// belongs to exactly one worker for the duration of a parallelFor, so no
// synchronization is needed, and the greedy loop stops allocating on its
// hot path after the first iteration.
type evalScratch struct {
	we       []matching.Edge
	row, col []int64 // length fabric.N(), all-zero between rowColUB calls
	arena    matching.Arena
}

// best tracks the highest benefit-per-unit-cost configuration seen so far
// during one greedy iteration.
type best struct {
	links   []graph.Edge
	alpha   int
	benefit int64
	delta   int
}

// consider updates the incumbent if (benefit, alpha) has a strictly higher
// benefit per unit cost. Ties keep the earlier candidate, so a fixed
// consideration order (ascending α, greedy before exact) makes the choice
// deterministic.
func (b *best) consider(links []graph.Edge, alpha int, benefit int64) {
	if benefit <= 0 {
		return
	}
	if b.benefit == 0 || benefit*int64(b.alpha+b.delta) > b.benefit*int64(alpha+b.delta) {
		b.links, b.alpha, b.benefit = links, alpha, benefit
	}
}

// beats reports whether (benefit, alpha) would strictly exceed the
// incumbent's benefit per unit cost.
func (b *best) beats(benefit int64, alpha int) bool {
	if b.benefit == 0 {
		return benefit > 0
	}
	return benefit*int64(b.alpha+b.delta) > b.benefit*int64(alpha+b.delta)
}

// alphaEval is the per-α evaluation record of one greedy iteration.
type alphaEval struct {
	// Bipartite exact mode: greedy seed, matching-weight upper bound, and
	// (phase 2) the exact matching.
	greedyLinks []graph.Edge
	greedyW     int64
	ub          int64
	exactLinks  []graph.Edge
	exactW      int64
	// Other modes (greedy-only, multi-port, bidirectional, chained):
	// a single candidate.
	links []graph.Edge
	w     int64
}

// bestConfiguration implements Procedure 2 (BestConfiguration) with the
// optimizations described in DESIGN.md: the α-candidate set of Procedure 1,
// a two-phase evaluation that computes the cheap greedy matching and a
// row/column upper bound for every α first and runs the exact matcher only
// where the bound can still win, and parallel evaluation across α's (the
// paper's §4.1 notes the per-iteration matchings are embarrassingly
// parallel). The result is deterministic: it equals a sequential
// ascending-α scan considering the greedy then the exact matching of each
// α. Returns a nil link set with benefit 0 when nothing can be served.
func (s *Scheduler) bestConfiguration(maxAlpha int) ([]graph.Edge, int, int64) {
	alphas := s.tr.candidateAlphas(maxAlpha)
	s.lastCandidates = len(alphas)
	if len(alphas) == 0 {
		return nil, 0, 0
	}
	// Materialize lazily-built state before any parallel read-only phase.
	s.tr.activeEdges()

	bst := &best{delta: s.opt.Delta}
	if s.opt.AlphaSearch == AlphaBinary {
		s.ternarySearch(alphas, bst)
		return bst.links, bst.alpha, bst.benefit
	}

	if cap(s.evals) < len(alphas) {
		s.evals = make([]alphaEval, len(alphas))
	}
	evals := s.evals[:len(alphas)]
	for i := range evals {
		evals[i] = alphaEval{}
	}
	exactBipartite := s.ufabric == nil && !s.opt.MultiHop && s.opt.Ports == 1 && s.opt.Matcher == MatcherExact

	// Phase 1: cheap evaluation of every α.
	s.parallelFor(len(alphas), func(w, i int) {
		sc := s.scratch[w]
		a := alphas[i]
		if exactBipartite {
			we := s.weightedEdges(sc, a)
			if len(we) == 0 {
				return
			}
			m, gw := sc.arena.GreedyBipartite(s.fabric.N(), we)
			evals[i].greedyLinks = toLinks(m)
			evals[i].greedyW = gw
			evals[i].ub = rowColUB(we, sc.row, sc.col)
			return
		}
		local := &best{delta: s.opt.Delta}
		s.evalAlpha(sc, a, local)
		evals[i].links = local.links
		evals[i].w = local.benefit
	})

	if !exactBipartite {
		for i, a := range alphas {
			bst.consider(evals[i].links, a, evals[i].w)
		}
		return bst.links, bst.alpha, bst.benefit
	}

	// Reduce the greedy seeds (ascending α; deterministic).
	seed := &best{delta: s.opt.Delta}
	for i, a := range alphas {
		seed.consider(evals[i].greedyLinks, a, evals[i].greedyW)
	}
	// Phase 2: exact matchings only where the upper bound can still
	// strictly beat the best greedy seed. Membership depends only on
	// phase-1 output, so the computed set — and hence the final result —
	// is deterministic. An exact matching skipped here satisfies
	// exact(α) <= ub(α) <= seed ratio, so it can never be the unique
	// argmax.
	s.parallelFor(len(alphas), func(w, i int) {
		if !seed.beats(evals[i].ub, alphas[i]) {
			return
		}
		sc := s.scratch[w]
		we := s.weightedEdges(sc, alphas[i])
		m, mw := sc.arena.MaxWeightBipartite(s.fabric.N(), we)
		evals[i].exactLinks = toLinks(m)
		evals[i].exactW = mw
	})
	// Final reduction mirrors the sequential order: for each α ascending,
	// greedy first, then the exact matching if computed.
	for i, a := range alphas {
		bst.consider(evals[i].greedyLinks, a, evals[i].greedyW)
		bst.consider(evals[i].exactLinks, a, evals[i].exactW)
	}
	return bst.links, bst.alpha, bst.benefit
}

// parallelFor runs f(worker, 0..n-1) across Options.Parallelism workers
// (Parallelism <= 1 runs inline with worker 0). The remaining-traffic state
// is read-only during evaluation, so workers share it without
// synchronization; work items are claimed from a lock-free atomic counter.
// Each worker owns s.scratch[worker] exclusively for the duration of the
// call.
func (s *Scheduler) parallelFor(n int, f func(worker, i int)) {
	workers := s.opt.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	s.ensureScratch(workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ensureScratch grows the per-worker scratch pool to at least `workers`
// entries. Called single-threaded before workers start.
func (s *Scheduler) ensureScratch(workers int) {
	for len(s.scratch) < workers {
		n := s.fabric.N()
		s.scratch = append(s.scratch, &evalScratch{
			row: make([]int64, n),
			col: make([]int64, n),
		})
	}
}

// ternarySearch finds a local maximum of the benefit-per-unit-cost function
// over the sorted candidate α's with O(log |A|) full evaluations (the
// paper's Octopus-B). The function need not be unimodal, so this finds one
// of its maxima, not necessarily the global one; §8 observes the loss is
// minimal in practice.
func (s *Scheduler) ternarySearch(alphas []int, bst *best) {
	type evald struct {
		links   []graph.Edge
		benefit int64
	}
	s.ensureScratch(1)
	cache := make(map[int]evald)
	eval := func(i int) evald {
		a := alphas[i]
		if e, ok := cache[a]; ok {
			return e
		}
		local := &best{delta: s.opt.Delta}
		s.evalAlpha(s.scratch[0], a, local)
		e := evald{local.links, local.benefit}
		cache[a] = e
		return e
	}
	ratioLess := func(i, j int) bool {
		ei, ej := eval(i), eval(j)
		return ei.benefit*int64(alphas[j]+s.opt.Delta) < ej.benefit*int64(alphas[i]+s.opt.Delta)
	}
	lo, hi := 0, len(alphas)-1
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if ratioLess(m1, m2) {
			lo = m1 + 1
		} else {
			hi = m2 - 1
		}
	}
	for i := lo; i <= hi; i++ {
		e := eval(i)
		bst.consider(e.links, alphas[i], e.benefit)
	}
}

// evalAlpha fully evaluates the best configuration for one α (both
// matchers where applicable) and feeds it to bst. It only reads the
// remaining-traffic state, plus the caller's exclusively-owned scratch.
func (s *Scheduler) evalAlpha(sc *evalScratch, a int, bst *best) {
	switch {
	case s.ufabric != nil:
		s.evalBidirectional(a, bst)
	case s.opt.MultiHop:
		links, benefit := s.chainedGreedy(a)
		bst.consider(links, a, benefit)
	case s.opt.Ports > 1:
		s.evalMultiPort(sc, a, bst)
	default:
		we := s.weightedEdges(sc, a)
		if len(we) == 0 {
			return
		}
		n := s.fabric.N()
		gm, gw := sc.arena.GreedyBipartite(n, we)
		bst.consider(toLinks(gm), a, gw)
		if s.opt.Matcher == MatcherGreedy {
			return
		}
		m, w := sc.arena.MaxWeightBipartite(n, we)
		bst.consider(toLinks(m), a, w)
	}
}

// weightedEdges builds the weighted graph G' of Procedure 2: every active
// link weighted by g(i, j, α). The result is ordered by (From, To) and
// aliases the scratch buffer — it is valid until the next call with the
// same scratch.
func (s *Scheduler) weightedEdges(sc *evalScratch, a int) []matching.Edge {
	we := sc.we[:0]
	edges := s.tr.activeEdges()
	states := s.tr.activeStates()
	for i, e := range edges {
		if w := gValueState(states[i], a); w > 0 {
			we = append(we, matching.Edge{From: e.From, To: e.To, Weight: w})
		}
	}
	sc.we = we
	return we
}

// rowColUB is a cheap upper bound on the maximum-weight matching: the
// smaller of the row-maxima sum and the column-maxima sum. row and col are
// caller-owned all-zero arrays indexed by node; they are restored to zero
// before returning (every weight is positive, so a non-zero cell is both
// "seen" marker and maximum).
func rowColUB(we []matching.Edge, row, col []int64) int64 {
	for _, e := range we {
		if e.Weight > row[e.From] {
			row[e.From] = e.Weight
		}
		if e.Weight > col[e.To] {
			col[e.To] = e.Weight
		}
	}
	var rs, cs int64
	for _, e := range we {
		if w := row[e.From]; w != 0 {
			rs += w
			row[e.From] = 0
		}
		if w := col[e.To]; w != 0 {
			cs += w
			col[e.To] = 0
		}
	}
	if cs < rs {
		return cs
	}
	return rs
}

func toLinks(m []matching.Edge) []graph.Edge {
	if len(m) == 0 {
		return nil
	}
	links := make([]graph.Edge, len(m))
	for i, e := range m {
		links[i] = graph.Edge{From: e.From, To: e.To}
	}
	sortLinks(links)
	return links
}

func sortLinks(links []graph.Edge) {
	slices.SortFunc(links, cmpEdge)
}

// cmpEdge orders edges by (From, To); link sets never repeat an edge, so
// the order is strict and the unstable sort is deterministic.
func cmpEdge(a, b graph.Edge) int {
	if a.From != b.From {
		return a.From - b.From
	}
	return a.To - b.To
}

// evalMultiPort greedily composes r edge-disjoint matchings (§7, K ports
// per node). Committed subflows queue on exactly one link, so matchings
// over disjoint edge sets serve disjoint packet sets and benefits add
// exactly; no weight recomputation is needed between the r rounds.
func (s *Scheduler) evalMultiPort(sc *evalScratch, a int, bst *best) {
	we := s.weightedEdges(sc, a)
	if len(we) == 0 {
		return
	}
	n := s.fabric.N()
	used := make(map[graph.Edge]bool)
	var links []graph.Edge
	var total int64
	avail := we
	for r := 0; r < s.opt.Ports; r++ {
		var m []matching.Edge
		var w int64
		if s.opt.Matcher == MatcherGreedy {
			m, w = sc.arena.GreedyBipartite(n, avail)
		} else {
			m, w = sc.arena.MaxWeightBipartite(n, avail)
		}
		if w <= 0 {
			break
		}
		total += w
		for _, e := range m {
			ge := graph.Edge{From: e.From, To: e.To}
			used[ge] = true
			links = append(links, ge)
		}
		next := avail[:0:0]
		for _, e := range avail {
			if !used[graph.Edge{From: e.From, To: e.To}] {
				next = append(next, e)
			}
		}
		avail = next
	}
	if total > 0 {
		sortLinks(links)
		bst.consider(links, a, total)
	}
}

// evalBidirectional handles the undirected fabric of §7: the weight of an
// undirected link is the sum of its two directions' g values, and the
// configuration is a matching of the undirected graph — exact via the
// blossom algorithm (the general-graph matcher the paper's §7 calls for)
// with MatcherExact, or the greedy matcher plus a local-improvement pass
// with MatcherGreedy.
func (s *Scheduler) evalBidirectional(a int, bst *best) {
	sum := make(map[graph.UEdge]int64)
	edges := s.tr.activeEdges()
	states := s.tr.activeStates()
	for i, e := range edges {
		if w := gValueState(states[i], a); w > 0 {
			sum[graph.NormUEdge(e.From, e.To)] += w
		}
	}
	if len(sum) == 0 {
		return
	}
	ue := make([]matching.UEdge, 0, len(sum))
	for e, w := range sum {
		ue = append(ue, matching.UEdge{A: e.A, B: e.B, Weight: w})
	}
	sort.Slice(ue, func(i, j int) bool {
		if ue[i].A != ue[j].A {
			return ue[i].A < ue[j].A
		}
		return ue[i].B < ue[j].B
	})
	n := s.fabric.N()
	var m []matching.UEdge
	var w int64
	if s.opt.Matcher == MatcherGreedy {
		m, _ = matching.GreedyGeneral(n, ue)
		m, w = matching.AugmentGeneral(n, ue, m)
	} else {
		m, w = matching.MaxWeightGeneral(n, ue)
	}
	if w <= 0 {
		return
	}
	links := make([]graph.Edge, 0, 2*len(m))
	for _, e := range m {
		links = append(links, graph.Edge{From: e.A, To: e.B}, graph.Edge{From: e.B, To: e.A})
	}
	sortLinks(links)
	bst.consider(links, a, w)
}
