package core

import (
	"testing"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

func TestResidualLoad(t *testing.T) {
	// Flow advanced halfway: the residual is the route suffix from the
	// intermediate node.
	g := graph.Complete(4)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 3}}},
	}}
	s, err := New(g, load, Options{Window: 100, Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.tr.apply([]graph.Edge{{From: 0, To: 1}}, 4)
	res := s.ResidualLoad()
	if err := res.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("residual flows = %+v", res.Flows)
	}
	// 6 packets still at the source with the full route, 4 at node 1 with
	// the suffix.
	var atSrc, atMid *traffic.Flow
	for i := range res.Flows {
		f := &res.Flows[i]
		switch f.Src {
		case 0:
			atSrc = f
		case 1:
			atMid = f
		}
	}
	if atSrc == nil || atSrc.Size != 6 || atSrc.Routes[0].Hops() != 2 {
		t.Fatalf("source residual = %+v", atSrc)
	}
	if atMid == nil || atMid.Size != 4 || !atMid.Routes[0].Equal(traffic.Route{1, 3}) {
		t.Fatalf("mid residual = %+v", atMid)
	}
}

func TestResidualLoadUncommitted(t *testing.T) {
	g := graph.Complete(4)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 8, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 3}, {0, 2, 3}}},
	}}
	s, err := New(g, load, Options{Window: 100, Delta: 5, MultiRoute: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.ResidualLoad()
	if len(res.Flows) != 1 || len(res.Flows[0].Routes) != 2 {
		t.Fatalf("uncommitted residual = %+v", res.Flows)
	}
}

func TestRunWindowsConvergesToFullDelivery(t *testing.T) {
	g, load := randomInstance(t, 61, 10, 300)
	opt := Options{Window: 300, Delta: 10}
	// One window delivers only part of the traffic.
	s, err := New(g, load, opt)
	if err != nil {
		t.Fatal(err)
	}
	one, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if one.Pending == 0 {
		t.Skip("single window already delivers everything")
	}
	ws, err := RunWindows(g, load, opt, 50)
	if err != nil {
		t.Fatal(err)
	}
	total := TotalDelivered(ws)
	if total != load.TotalPackets() {
		t.Fatalf("rolling windows delivered %d of %d", total, load.TotalPackets())
	}
	if last := ws[len(ws)-1]; last.Residual != 0 {
		t.Fatalf("final residual %d", last.Residual)
	}
	// Conservation per window: offered = delivered + residual.
	for i, w := range ws {
		if w.Offered != w.Result.Delivered+w.Residual {
			t.Fatalf("window %d: %d != %d + %d", i, w.Offered, w.Result.Delivered, w.Residual)
		}
	}
	// The combined schedule is structurally valid.
	comb := CombinedSchedule(ws)
	if err := comb.Validate(g, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(comb.Configs) == 0 {
		t.Fatal("empty combined schedule")
	}
}

func TestRunWindowsRejectsBadCount(t *testing.T) {
	g, load := randomInstance(t, 1, 6, 50)
	if _, err := RunWindows(g, load, Options{Window: 50, Delta: 5}, 0); err == nil {
		t.Fatal("windows=0 accepted")
	}
}

func TestCombinedScheduleEmpty(t *testing.T) {
	if s := CombinedSchedule(nil); len(s.Configs) != 0 {
		t.Fatal("nonempty combined schedule from no windows")
	}
}
