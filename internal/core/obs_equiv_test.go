package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/traffic"
)

// TestObsReadOnlyAcrossParallelism is the core-level read-only property:
// for both matchers, the planned schedule and every plan metric must be
// identical across {Parallelism 1, Parallelism 4} × {Obs nil, Obs live}.
// The four runs share one load, so any instrumentation side effect on the
// greedy loop — a perturbed α choice, a reordered matching — shows up as a
// configuration-level diff. CI runs this under -race to also catch unsynced
// access from the parallel α workers to the shared instruments.
func TestObsReadOnlyAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Complete(10)
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(10, 300), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []struct {
		name string
		m    Matcher
	}{{"exact", MatcherExact}, {"greedy", MatcherGreedy}} {
		t.Run(m.name, func(t *testing.T) {
			var ref *Result
			var refName string
			for _, par := range []int{1, 4} {
				for _, withObs := range []bool{false, true} {
					opt := Options{Window: 300, Delta: 8, Matcher: m.m, Parallelism: par}
					var tracer *obs.Tracer
					if withObs {
						tracer = obs.NewTracer(&bytes.Buffer{})
						opt.Obs = &obs.Observer{Metrics: obs.NewRegistry(), Trace: tracer}
					}
					s, err := New(g, load, opt)
					if err != nil {
						t.Fatal(err)
					}
					res, err := s.Run()
					if err != nil {
						t.Fatal(err)
					}
					if tracer != nil {
						if err := tracer.Err(); err != nil {
							t.Fatalf("tracer error: %v", err)
						}
						if tracer.Events() == 0 {
							t.Fatal("instrumented run emitted no trace events")
						}
					}
					name := map[bool]string{false: "obs=off", true: "obs=on"}[withObs]
					if ref == nil {
						ref, refName = res, name
						continue
					}
					if res.Psi != ref.Psi || res.Hops != ref.Hops ||
						res.Delivered != ref.Delivered || res.Pending != ref.Pending ||
						res.Iterations != ref.Iterations {
						t.Errorf("par=%d %s: metrics diverge from %s: psi %d vs %d, hops %d vs %d, delivered %d vs %d",
							par, name, refName, res.Psi, ref.Psi, res.Hops, ref.Hops, res.Delivered, ref.Delivered)
					}
					if res.Schedule.Delta != ref.Schedule.Delta ||
						!reflect.DeepEqual(res.Schedule.Configs, ref.Schedule.Configs) {
						t.Errorf("par=%d %s: schedule diverges from %s", par, name, refName)
					}
				}
			}
		})
	}
}
