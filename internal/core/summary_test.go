package core

import (
	"math/rand"
	"sort"
	"testing"

	"octopus/internal/graph"
)

// This file pins the incremental link summaries (linkSummary + dirty-set
// maintenance) to the direct per-call queue walks they replaced. The naive
// functions below are the pre-summary implementations, retained verbatim
// as executable references: on any load, at any point of a run, the cached
// path must return bit-identical values.

// naiveGValue is the original gValue: walk the queue in priority order and
// take the top alpha packets.
func naiveGValue(tr *remaining, e graph.Edge, alpha int) int64 {
	ls := tr.links[e]
	if ls == nil || alpha <= 0 {
		return 0
	}
	var total int64
	left := alpha
	for _, en := range ls.entries {
		if left == 0 {
			break
		}
		if en.sf.count == 0 {
			continue
		}
		t := minInt(left, en.sf.count)
		total += int64(t) * en.bw
		left -= t
	}
	return total
}

// naiveCandidateAlphas is the original Procedure 1: per link, prefix sums
// of queued counts at each benefit-weight class boundary, clamped,
// deduplicated, sorted.
func naiveCandidateAlphas(tr *remaining, maxAlpha int) []int {
	seen := make(map[int]bool)
	for _, e := range tr.activeEdges() {
		ls := tr.links[e]
		c := 0
		var lastBW int64 = -1
		for _, en := range ls.entries {
			if en.sf.count == 0 {
				continue
			}
			if lastBW != -1 && en.bw != lastBW && c > 0 {
				seen[minInt(c, maxAlpha)] = true
			}
			c += en.sf.count
			lastBW = en.bw
		}
		if c > 0 {
			seen[minInt(c, maxAlpha)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		if a > 0 {
			out = append(out, a)
		}
	}
	sort.Ints(out)
	return out
}

// checkSummariesAgainstNaive compares the cached paths against the naive
// references on every active link for a spread of α values.
func checkSummariesAgainstNaive(t *testing.T, tr *remaining, window int) bool {
	t.Helper()
	got := tr.candidateAlphas(window)
	want := naiveCandidateAlphas(tr, window)
	if len(got) != len(want) {
		t.Errorf("candidateAlphas: got %v want %v", got, want)
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("candidateAlphas[%d]: got %v want %v", i, got, want)
			return false
		}
	}
	alphas := append([]int{1, 2, 3, window / 2, window, window + 7}, want...)
	for _, e := range tr.activeEdges() {
		for _, a := range alphas {
			if g, w := tr.gValue(e, a), naiveGValue(tr, e, a); g != w {
				t.Errorf("gValue(%v, %d): got %d want %d", e, a, g, w)
				return false
			}
		}
	}
	return true
}

// TestSummaryEquivalenceProperty drives full scheduler runs — plain
// Octopus, Octopus-e, Octopus+ with and without backtracking — and checks
// after every applied configuration that the incremental summaries agree
// with the naive queue walks. The interleaving matters: it exercises the
// dirty-set invalidation from serveLink (count drains, arrivals on
// downstream links, backtrack annulments), not just freshly built queues.
func TestSummaryEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		g, load := randomSmallLoad(seed)
		if len(load.Flows) == 0 {
			continue
		}
		opt := Options{Window: 120 + int(seed%5)*37, Delta: 5}
		switch seed % 4 {
		case 1:
			opt.Epsilon64 = 1 + int(seed%16)
		case 2:
			opt.MultiRoute = true
		case 3:
			opt.MultiRoute = true
			opt.DisableBacktrack = true
		}
		s, err := New(g, load, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !checkSummariesAgainstNaive(t, s.tr, opt.Window) {
			t.Fatalf("seed %d: mismatch on the initial queues (opt %+v)", seed, opt)
		}
		for {
			_, ok, err := s.Step()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !ok {
				break
			}
			if !checkSummariesAgainstNaive(t, s.tr, opt.Window) {
				t.Fatalf("seed %d: mismatch after %d configs (opt %+v)", seed, s.tr.configIdx, opt)
			}
		}
	}
}

// TestSummaryEquivalenceRandomServes bypasses the scheduler and applies
// adversarial random service patterns — arbitrary links, arbitrary α,
// backtrack and normal passes in random order — so the dirty-set
// maintenance is tested beyond the matchings the greedy loop would pick.
func TestSummaryEquivalenceRandomServes(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		g, load := randomSmallLoad(seed)
		if len(load.Flows) == 0 {
			continue
		}
		multi := seed%2 == 0
		tr := newRemaining(g, load, int(seed%8), multi, multi, false)
		for round := 0; round < 25; round++ {
			edges := tr.activeEdges()
			if len(edges) == 0 {
				break
			}
			links := make([]graph.Edge, 0, 3)
			for i := 0; i < 1+rng.Intn(3); i++ {
				links = append(links, edges[rng.Intn(len(edges))])
			}
			tr.apply(links, 1+rng.Intn(40))
			if !checkSummariesAgainstNaive(t, tr, 200) {
				t.Fatalf("seed %d: mismatch after round %d", seed, round)
			}
			if err := tr.sanity(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}
