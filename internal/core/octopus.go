// Package core implements the paper's primary contribution: the Octopus
// family of greedy approximation algorithms for the multi-hop scheduling
// (MHS) problem in general circuit-switched networks.
//
// Octopus iteratively picks the configuration (M, α) with the highest
// benefit per unit cost, where the benefit is the maximum total weight of
// packet-hops the configuration can serve given the remaining traffic T^r
// (paper §4), yielding a (1 - 1/e^{1/𝒟})·W/(W+Δ) approximation of the
// weighted packet-hops objective ψ (Theorem 1). Options select the paper's
// variants: Octopus-B (binary search over α), Octopus-G (greedy matching),
// Octopus-e (ε-weighted later hops), multi-hop-per-configuration chaining
// (Theorem 2), K ports per node and bidirectional links (§7), and the
// Octopus+ joint routing/scheduling algorithm with direct-link backtracking
// (§6, Theorem 3).
package core

import (
	"errors"
	"fmt"
	"math"

	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

// Matcher selects the maximum-weight-matching algorithm used to pick each
// configuration.
type Matcher int

const (
	// MatcherExact uses the exact Hungarian matcher (the paper's Octopus),
	// auto-selecting between the dense matrix path and the sparse CSR path
	// per instance. The two paths produce bit-identical matchings, so the
	// automatic choice never changes a schedule.
	MatcherExact Matcher = iota
	// MatcherGreedy uses the linear-time greedy 2-approximate matcher
	// (the paper's Octopus-G).
	MatcherGreedy
	// MatcherDense forces the dense exact path (A/B mode for the sparse
	// solver; schedules are bit-identical to MatcherExact).
	MatcherDense
	// MatcherSparse forces the sparse CSR exact path (bit-identical to
	// MatcherExact as well).
	MatcherSparse
	// MatcherWarm uses the exact matcher with per-α warm-started dual
	// potentials retained across greedy iterations. Every matching still
	// has exactly maximum weight, but it may be a different equal-weight
	// optimum than the cold paths pick, so schedules are quality-equal
	// rather than bit-identical (see matching/warm.go and DESIGN.md §13).
	// Only the single-port directed mode supports it. In bidirectional
	// mode the three exact variants all select the general-graph exact
	// matcher (the bipartite arena is not involved).
	MatcherWarm
)

// exact reports whether the matcher is one of the exact variants (anything
// but the greedy 2-approximation).
func (m Matcher) exact() bool { return m != MatcherGreedy }

// AlphaSearch selects how the per-iteration α candidates are explored.
type AlphaSearch int

const (
	// AlphaFull evaluates every candidate α (the paper's Octopus).
	AlphaFull AlphaSearch = iota
	// AlphaBinary ternary-searches the sorted candidates for a local
	// maximum of benefit-per-unit-cost (the paper's Octopus-B), reducing
	// the matchings per iteration to O(log |A|).
	AlphaBinary
)

// Options configures a Scheduler. Window and Delta are required; the zero
// value of every other field selects plain Octopus.
type Options struct {
	Window int // W, the scheduling window in time slots
	Delta  int // Δ, the reconfiguration delay in time slots

	Matcher     Matcher
	AlphaSearch AlphaSearch

	// Epsilon64 enables Octopus-e: the benefit of the hop x hops from the
	// source is weighted by (1 + x·Epsilon64/64). 0 disables the bonus.
	Epsilon64 int

	// MultiHop enables the Theorem 2 variant: configuration benefit
	// accounts for packets chaining across consecutive links of the
	// matching, and the matching is built greedily edge-by-edge. Plan
	// bookkeeping still advances packets one hop per configuration (a
	// conservative lower bound); replay the schedule with
	// simulate.Options.MultiHop to measure the chained delivery.
	MultiHop bool

	// Ports is the number of input and output ports per node (§7);
	// 0 or 1 selects the single-port model. With Ports = r each
	// configuration is a union of r edge-disjoint matchings picked
	// greedily.
	Ports int

	// MultiRoute enables Octopus+ (§6): flows may carry several candidate
	// routes, the route choice is made at the first hop, and packets may
	// backtrack to a direct source->destination link.
	MultiRoute bool

	// DisableBacktrack turns off Octopus+ backtracking (ablation).
	DisableBacktrack bool

	// KeepTrace records every planned packet movement so the plan can be
	// verified by Result.VerifyPlan. Costs memory proportional to the
	// number of (configuration, link, subflow) service events.
	KeepTrace bool

	// Parallelism is the number of goroutines evaluating α candidates in
	// one iteration (the per-α matchings are independent; §4.1 notes they
	// are embarrassingly parallel). 0 uses GOMAXPROCS; 1 runs serially.
	// The result is identical at any parallelism level.
	Parallelism int

	// Obs receives per-iteration metrics and decision-trace events. nil
	// (the default) disables instrumentation at the cost of one nil check
	// per event. Instrumentation is strictly read-only: the planned
	// schedule is bit-identical with Obs set or nil.
	Obs *obs.Observer
}

// Scheduler runs the Octopus greedy loop over a fabric and traffic load.
// Create one with New or NewBidirectional; each Step plans one
// configuration, and Run drains the loop.
type Scheduler struct {
	fabric  *graph.Digraph
	ufabric *graph.Ugraph // non-nil in bidirectional mode
	load    *traffic.Load
	opt     Options
	tr      *remaining
	out     schedule.Schedule
	used    int
	iters   int
	done    bool

	// Reusable hot-path state: one scratch per parallel worker (grown
	// lazily by parallelFor) and the per-iteration α evaluation records.
	scratch []*evalScratch
	evals   []alphaEval

	// Batched per-iteration g-values (gbuf[link*gbufStride+alphaIdx], valid
	// only while gbufValid), the phase-2 solve-set buffer, the per-α
	// warm-start states of MatcherWarm, and the running count of exact
	// solves skipped by incumbent pruning (observability only).
	gbuf        []int64
	gbufStride  int
	gbufValid   bool
	selBuf      []int
	warm        map[int]*warmEntry
	prunedExact int64

	// Pre-bound observability instruments (all nil when opt.Obs is nil)
	// and the candidate-set size of the current iteration.
	ins            coreInstruments
	lastCandidates int
}

// Result is the outcome of a completed Run: the schedule plus the plan's
// own bookkeeping of what it routes. For single-route loads the plan
// bookkeeping matches a packet-level replay exactly (asserted in tests);
// for Octopus+ plans the bookkeeping is authoritative (backtracking revises
// the plan in ways a forward replay cannot reproduce) and can be checked
// with VerifyPlan.
type Result struct {
	Schedule     *schedule.Schedule
	Psi          int64 // planned ψ in traffic.WeightScale units
	Hops         int   // planned packet-hops
	Delivered    int   // planned packets delivered
	Pending      int   // packets left undelivered by the plan
	TotalPackets int
	Iterations   int

	trace      []servedRecord
	load       *traffic.Load
	g          *graph.Digraph
	multiRoute bool
}

// ErrWindowTooSmall is returned when the window cannot fit even one
// configuration (W <= Δ).
var ErrWindowTooSmall = errors.New("core: window does not fit a single configuration")

// New returns a Scheduler for the MHS problem instance (g, load) under opt.
func New(g *graph.Digraph, load *traffic.Load, opt Options) (*Scheduler, error) {
	if err := checkOptions(&opt, load, false); err != nil {
		return nil, err
	}
	if err := load.Validate(g); err != nil {
		return nil, err
	}
	s := &Scheduler{fabric: g, load: load, opt: opt}
	s.init()
	return s, nil
}

// NewBidirectional returns a Scheduler for a network with bidirectional
// links (§7): configurations are matchings of the undirected fabric u, and
// every active link carries one packet per slot in each direction. Routes
// in load must be paths of u's directed view.
func NewBidirectional(u *graph.Ugraph, load *traffic.Load, opt Options) (*Scheduler, error) {
	if err := checkOptions(&opt, load, true); err != nil {
		return nil, err
	}
	d := u.Directed()
	if err := load.Validate(d); err != nil {
		return nil, err
	}
	s := &Scheduler{fabric: d, ufabric: u, load: load, opt: opt}
	s.init()
	return s, nil
}

func (s *Scheduler) init() {
	backtrack := s.opt.MultiRoute && !s.opt.DisableBacktrack
	s.tr = newRemaining(s.fabric, s.load, s.opt.Epsilon64, s.opt.MultiRoute, backtrack, s.opt.KeepTrace)
	s.out = schedule.Schedule{Delta: s.opt.Delta}
	s.ins = bindCoreInstruments(s.opt.Obs)
}

func checkOptions(opt *Options, load *traffic.Load, bidirectional bool) error {
	if opt.Window <= 0 {
		return errors.New("core: Window must be positive")
	}
	if opt.Delta < 0 {
		return errors.New("core: Delta must be non-negative")
	}
	if opt.Window <= opt.Delta {
		return ErrWindowTooSmall
	}
	if opt.Ports == 0 {
		opt.Ports = 1
	}
	if opt.Ports < 1 {
		return errors.New("core: Ports must be positive")
	}
	if opt.Epsilon64 < 0 || opt.Epsilon64 > 64*traffic.MaxRouteLen {
		return fmt.Errorf("core: Epsilon64 %d out of range", opt.Epsilon64)
	}
	if opt.MultiRoute && (opt.Ports > 1 || opt.MultiHop || bidirectional) {
		return errors.New("core: MultiRoute cannot be combined with Ports>1, MultiHop, or bidirectional fabrics")
	}
	if opt.Matcher == MatcherWarm && opt.Ports > 1 {
		// Multi-port rounds re-solve the same α over shrinking edge sets,
		// which the warm-start dirty contract cannot express.
		return errors.New("core: MatcherWarm supports only single-port fabrics")
	}
	if bidirectional && opt.Ports > 1 {
		return errors.New("core: bidirectional fabrics support only Ports=1")
	}
	// Overflow guard: cross-multiplied benefit/cost comparisons must fit
	// in int64.
	d := load.MaxHops()
	if d == 0 {
		d = 1
	}
	maxBW := float64(traffic.WeightScale) * (1 + float64(d)*float64(opt.Epsilon64)/64)
	if float64(load.TotalPackets())*maxBW >= math.MaxInt64/float64(opt.Window+opt.Delta+1)/2 {
		return errors.New("core: instance too large for exact integer benefit arithmetic")
	}
	return nil
}

// Done reports whether the greedy loop has terminated.
func (s *Scheduler) Done() bool { return s.done }

// Used returns the window slots consumed so far (Σ (αₖ + Δ)).
func (s *Scheduler) Used() int { return s.used }

// Pending returns the number of packets the plan has not yet delivered.
func (s *Scheduler) Pending() int { return s.tr.pending }

// PendingByFlow returns, for each flow ID with undelivered packets, how
// many of its packets the plan has not delivered. The UB baseline uses this
// to account per-hop service of the one-hop load.
func (s *Scheduler) PendingByFlow() map[int]int {
	m := make(map[int]int)
	for _, sf := range s.tr.byKey {
		if sf.count > 0 {
			m[sf.flow.ID] += sf.count
		}
	}
	return m
}

// Step plans one greedy iteration: it selects the configuration with the
// highest benefit per unit cost, applies it to the remaining traffic, and
// returns it. ok is false when the loop has terminated (window exhausted,
// traffic fully served, or no configuration with positive benefit).
func (s *Scheduler) Step() (cfg schedule.Configuration, ok bool, err error) {
	if s.done {
		return schedule.Configuration{}, false, nil
	}
	maxAlpha := s.opt.Window - s.used - s.opt.Delta
	if maxAlpha <= 0 || s.tr.pending == 0 {
		s.done = true
		s.observeDone()
		return schedule.Configuration{}, false, nil
	}
	sp := s.ins.step.Start()
	links, alpha, benefit := s.bestConfiguration(maxAlpha)
	sp.End()
	if benefit <= 0 {
		s.done = true
		s.observeDone()
		return schedule.Configuration{}, false, nil
	}
	psi0, delivered0 := s.tr.psi, s.tr.delivered
	s.tr.apply(links, alpha)
	cfg = schedule.Configuration{Links: links, Alpha: alpha}
	s.out.Configs = append(s.out.Configs, cfg)
	s.used += alpha + s.opt.Delta
	s.observeIter(alpha, benefit, len(links), s.tr.psi-psi0, s.tr.delivered-delivered0)
	s.iters++
	return cfg, true, nil
}

// Run drives the greedy loop to completion and returns the planned
// schedule and its bookkeeping.
func (s *Scheduler) Run() (*Result, error) {
	for {
		if _, ok, err := s.Step(); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	out := s.out // copy header; Configs slice is final
	return &Result{
		Schedule:     &out,
		Psi:          s.tr.psi,
		Hops:         s.tr.hops,
		Delivered:    s.tr.delivered,
		Pending:      s.tr.pending,
		TotalPackets: s.load.TotalPackets(),
		Iterations:   s.iters,
		trace:        s.tr.trace,
		load:         s.load,
		g:            s.fabric,
		multiRoute:   s.opt.MultiRoute,
	}, nil
}
