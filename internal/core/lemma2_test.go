package core

import (
	"math/rand"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// TestLemma2WeakSubmodularity empirically validates the key inequality
// behind Theorem 1 (Lemma 2): for any already-applied sequence S and any
// set of configurations O₁..O_k,
//
//	B(⟨O₁,…,O_k⟩, S) ≤ 𝒟 · Σⱼ B(Oⱼ, S).
//
// (ψ itself is not submodular — Example 1 in the paper shows a config's
// benefit can grow as S grows — but this weaker bound holds and suffices
// for the approximation proof.)
func TestLemma2WeakSubmodularity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(5)
		g := graph.Complete(n)
		p := traffic.DefaultSyntheticParams(n, 60)
		load, err := traffic.Synthetic(g, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		d := int64(load.MaxHops())
		randomConfig := func() ([]graph.Edge, int) {
			var links []graph.Edge
			usedF := map[int]bool{}
			usedT := map[int]bool{}
			for tries := 0; tries < 4; tries++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i != j && !usedF[i] && !usedT[j] {
					links = append(links, graph.Edge{From: i, To: j})
					usedF[i] = true
					usedT[j] = true
				}
			}
			return links, 1 + rng.Intn(20)
		}
		// A random prefix sequence S.
		type cfg struct {
			links []graph.Edge
			alpha int
		}
		var prefix []cfg
		for k := 0; k < rng.Intn(4); k++ {
			l, a := randomConfig()
			prefix = append(prefix, cfg{l, a})
		}
		var os []cfg
		for k := 0; k < 1+rng.Intn(4); k++ {
			l, a := randomConfig()
			os = append(os, cfg{l, a})
		}
		// build replays S on a fresh T^r.
		build := func() *remaining {
			tr := newRemaining(g, load, 0, false, false, false)
			for _, c := range prefix {
				tr.apply(c.links, c.alpha)
			}
			return tr
		}
		// LHS: benefit of the whole sequence applied after S.
		tr := build()
		before := tr.psi
		for _, c := range os {
			tr.apply(c.links, c.alpha)
		}
		lhs := tr.psi - before
		// RHS: Σ individual benefits, each evaluated right after S.
		var sum int64
		for _, c := range os {
			tri := build()
			b := tri.psi
			tri.apply(c.links, c.alpha)
			sum += tri.psi - b
		}
		if lhs > d*sum {
			t.Fatalf("trial %d: B(seq)=%d exceeds 𝒟·ΣB = %d·%d", trial, lhs, d, sum)
		}
	}
}
