package core

import (
	"sort"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// This file implements the Theorem 2 variant: when packets may traverse
// multiple hops within one configuration, a matching viewed as a digraph
// has in/out-degree at most 1 and so decomposes into disjoint chains (and
// cycles). The benefit of a configuration then includes packets chaining
// across consecutive links, and the matching is built greedily by adding
// the edge with the largest marginal chained benefit (the paper proves such
// a greedy yields a 1/(2𝒟)-approximate configuration).
//
// The chain benefit evaluator below is an aggregated tandem-queue estimate:
// it honors link capacity (α packets per link), the one-slot switch latency
// (a packet that has already traversed `lag` hops in this configuration can
// cross the next link at most α-lag times), and the weight/flow-ID service
// priority, but not exact slot-level interleaving. The packet-level
// simulator remains the measurement authority (see DESIGN.md).

// chItem is an aggregated packet group flowing through a chain evaluation.
type chItem struct {
	route  traffic.Route
	wlen   int // hop count the packet weight derives from (Flow.WeightLen)
	pos    int // crossing the current link moves route[pos] -> route[pos+1]
	count  int
	lag    int // hops already traversed within this configuration
	flowID int
	bw     int64 // benefit weight for crossing the current link
}

// evalChain estimates the benefit of activating the given chain of links
// (each edge's head is the next edge's tail) for alpha slots.
func (s *Scheduler) evalChain(edges []graph.Edge, alpha int) int64 {
	var total int64
	var carry []chItem
	for idx, e := range edges {
		items := carry[:len(carry):len(carry)]
		if ls := s.tr.links[e]; ls != nil {
			// The summary's live list skips zero-count entries up front; it
			// is clean here because candidateAlphas rebuilt every active
			// link's summary before the evaluation phase began.
			for _, en := range ls.summary().live {
				if en.backtrack {
					continue
				}
				items = append(items, chItem{
					route:  en.sf.route,
					wlen:   en.sf.flow.WeightLen(en.sf.route),
					pos:    en.sf.key.pos,
					count:  en.sf.count,
					lag:    0,
					flowID: en.sf.flow.ID,
					bw:     en.bw,
				})
			}
		}
		if len(items) == 0 {
			carry = nil
			continue
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].bw != items[j].bw {
				return items[i].bw > items[j].bw
			}
			if items[i].flowID != items[j].flowID {
				return items[i].flowID < items[j].flowID
			}
			return items[i].lag < items[j].lag
		})
		var next []chItem
		left := alpha
		var nextTo = -1
		if idx+1 < len(edges) {
			nextTo = edges[idx+1].To
		}
		for _, it := range items {
			if left == 0 {
				break
			}
			take := minInt(left, it.count)
			// Latency cap: a packet lag hops deep can cross this link at
			// most alpha-lag times within the configuration.
			if cap := alpha - it.lag; take > cap {
				take = cap
			}
			if take <= 0 {
				continue
			}
			left -= take
			total += int64(take) * it.bw
			// Does the served group continue over the next chain link?
			newPos := it.pos + 1
			if nextTo >= 0 && newPos < it.route.Hops() && it.route[newPos+1] == nextTo {
				next = append(next, chItem{
					route:  it.route,
					wlen:   it.wlen,
					pos:    newPos,
					count:  take,
					lag:    it.lag + 1,
					flowID: it.flowID,
					bw:     s.tr.hopBW(it.wlen, newPos),
				})
			}
		}
		carry = next
	}
	return total
}

// chainedGreedy builds the configuration matching for one α by repeatedly
// adding the candidate edge with the largest marginal chained benefit.
func (s *Scheduler) chainedGreedy(alpha int) ([]graph.Edge, int64) {
	cands := s.chainCandidates()
	if len(cands) == 0 {
		return nil, 0
	}
	n := s.fabric.N()
	matchOut := make([]int, n)
	matchIn := make([]int, n)
	for i := range matchOut {
		matchOut[i] = -1
		matchIn[i] = -1
	}
	// chainEdges reconstructs the chain containing node v as an ordered
	// edge list by walking to its head and then forward.
	chainEdges := func(v int) []graph.Edge {
		head := v
		for matchIn[head] != -1 {
			prev := matchIn[head]
			if prev == v { // cycle; break at v
				break
			}
			head = prev
		}
		var edges []graph.Edge
		cur := head
		for matchOut[cur] != -1 {
			nxt := matchOut[cur]
			edges = append(edges, graph.Edge{From: cur, To: nxt})
			cur = nxt
			if cur == head { // cycle closed
				break
			}
		}
		return edges
	}
	var links []graph.Edge
	var total int64
	for {
		var bestEdge graph.Edge
		var bestGain int64
		found := false
		for _, e := range cands {
			if matchOut[e.From] != -1 || matchIn[e.To] != -1 {
				continue
			}
			// Benefit of the chains currently containing the endpoints.
			upper := chainEdges(e.From) // chain ending at e.From (if any)
			upperHead := e.From
			if len(upper) > 0 {
				upperHead = upper[0].From
			}
			var before int64
			var merged []graph.Edge
			if upperHead == e.To && len(upper) > 0 {
				// e closes the chain into a cycle; evaluate as the path
				// followed by e (no wrap-around continuation).
				before = s.evalChain(upper, alpha)
				merged = append(append(merged, upper...), e)
			} else {
				lower := chainEdges(e.To) // chain starting at e.To (if any)
				before = s.evalChain(upper, alpha) + s.evalChain(lower, alpha)
				merged = make([]graph.Edge, 0, len(upper)+1+len(lower))
				merged = append(merged, upper...)
				merged = append(merged, e)
				merged = append(merged, lower...)
			}
			gain := s.evalChain(merged, alpha) - before
			if gain > bestGain {
				bestGain, bestEdge, found = gain, e, true
			}
		}
		if !found {
			break
		}
		matchOut[bestEdge.From] = bestEdge.To
		matchIn[bestEdge.To] = bestEdge.From
		links = append(links, bestEdge)
		total += bestGain
	}
	sortLinks(links)
	return links, total
}

// chainCandidates returns every fabric link that lies on some remaining
// packet's route at or after its current position: links with queued
// packets plus downstream links that could extend a chain. Sorted for
// determinism.
func (s *Scheduler) chainCandidates() []graph.Edge {
	seen := make(map[graph.Edge]bool)
	for _, sf := range s.tr.byKey {
		if sf.count == 0 || sf.route == nil {
			continue
		}
		for k := sf.key.pos; k+1 < len(sf.route); k++ {
			seen[graph.Edge{From: sf.route[k], To: sf.route[k+1]}] = true
		}
	}
	cands := make([]graph.Edge, 0, len(seen))
	for e := range seen {
		cands = append(cands, e)
	}
	sortLinks(cands)
	return cands
}
