package core

import (
	"math/rand"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// example1 is the paper's Figure 1 instance (see simulate tests).
func example1() (*graph.Digraph, *traffic.Load) {
	const a, b, c, d = 0, 1, 2, 3
	g := graph.New(4)
	g.AddEdge(d, a)
	g.AddEdge(a, b)
	g.AddEdge(c, b)
	g.AddEdge(b, a)
	g.AddEdge(b, c)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 100, Src: a, Dst: c, Routes: []traffic.Route{{a, b, c}}},
		{ID: 2, Size: 50, Src: c, Dst: a, Routes: []traffic.Route{{c, b, a}}},
		{ID: 3, Size: 50, Src: d, Dst: b, Routes: []traffic.Route{{d, a, b}}},
	}}
	return g, load
}

func TestPaperExample1Octopus(t *testing.T) {
	g, load := example1()
	s, err := New(g, load, Options{Window: 300, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Octopus should reach the optimal: all 200 packets delivered, ψ = 200
	// unit-weight packets (the paper's optimal for this instance).
	if res.Delivered != 200 {
		t.Fatalf("Delivered = %d, want 200", res.Delivered)
	}
	if res.Psi != 200*traffic.WeightScale {
		t.Fatalf("Psi = %d, want %d", res.Psi, 200*traffic.WeightScale)
	}
	if res.Schedule.Cost() > 300 {
		t.Fatalf("cost %d exceeds window", res.Schedule.Cost())
	}
	// The plan bookkeeping must match a packet-level replay exactly.
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Delivered != res.Delivered || sim.Psi != res.Psi || sim.Hops != res.Hops {
		t.Fatalf("plan/replay mismatch: plan (%d, %d, %d), replay (%d, %d, %d)",
			res.Delivered, res.Psi, res.Hops, sim.Delivered, sim.Psi, sim.Hops)
	}
}

func TestBenefitExample(t *testing.T) {
	// Paper §4: B((M4,50), ∅) = 0 and B((M4,50), ⟨(M3,50)⟩) = 25.
	const a, b, c = 0, 1, 2
	g, load := example1()
	tr := newRemaining(g, load, 0, false, false, false)
	m4 := graph.Edge{From: b, To: a}
	if got := tr.gValue(m4, 50); got != 0 {
		t.Fatalf("B((M4,50), empty) = %d, want 0", got)
	}
	// Apply (M3, 50): route 50 (c,a)-flow packets over (c,b).
	tr.apply([]graph.Edge{{From: c, To: b}}, 50)
	want := int64(50) * traffic.Weight(2) // 25 unit-weight packets
	if got := tr.gValue(m4, 50); got != want {
		t.Fatalf("B((M4,50), (M3,50)) = %d, want %d", got, want)
	}
	// More generally B((M4,50),(M3,α)) = α/2 for α <= 50.
	tr2 := newRemaining(g, load, 0, false, false, false)
	tr2.apply([]graph.Edge{{From: c, To: b}}, 20)
	if got := tr2.gValue(m4, 50); got != 20*traffic.Weight(2) {
		t.Fatalf("B((M4,50),(M3,20)) = %d", got)
	}
}

// randomInstance builds a seeded synthetic MHS instance for cross-checks.
func randomInstance(t *testing.T, seed int64, n, window int) (*graph.Digraph, *traffic.Load) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.Complete(n)
	p := traffic.DefaultSyntheticParams(n, window)
	load, err := traffic.Synthetic(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, load
}

func TestSchedulerSimulatorAgreement(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, load := randomInstance(t, seed, 12, 400)
		for _, opt := range []Options{
			{Window: 400, Delta: 10},
			{Window: 400, Delta: 10, Matcher: MatcherGreedy},
			{Window: 400, Delta: 10, AlphaSearch: AlphaBinary},
			{Window: 400, Delta: 10, Epsilon64: 4},
			{Window: 400, Delta: 0},
		} {
			s, err := New(g, load, opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{Epsilon64: opt.Epsilon64})
			if err != nil {
				t.Fatal(err)
			}
			if sim.Delivered != res.Delivered || sim.Psi != res.Psi || sim.Hops != res.Hops {
				t.Fatalf("seed %d opt %+v: plan (%d pkts, ψ=%d, %d hops) vs replay (%d, %d, %d)",
					seed, opt, res.Delivered, res.Psi, res.Hops, sim.Delivered, sim.Psi, sim.Hops)
			}
			if res.Schedule.Cost() > opt.Window {
				t.Fatalf("cost %d exceeds window %d", res.Schedule.Cost(), opt.Window)
			}
			if err := res.Schedule.Validate(g, opt.Window, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDeliversEverythingGivenTime(t *testing.T) {
	g, load := randomInstance(t, 42, 10, 200)
	s, err := New(g, load, Options{Window: 1 << 20, Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pending != 0 || res.Delivered != load.TotalPackets() {
		t.Fatalf("pending %d, delivered %d of %d", res.Pending, res.Delivered, load.TotalPackets())
	}
	if res.Psi != load.TotalWeightedHops() {
		t.Fatalf("full delivery ψ = %d, want %d", res.Psi, load.TotalWeightedHops())
	}
}

func TestAlphaCandidatesCoverExhaustiveSearch(t *testing.T) {
	// Lemma 3: the best benefit-per-cost over the Procedure 1 candidates
	// matches the best over every α in [1, maxAlpha].
	for seed := int64(0); seed < 10; seed++ {
		g, load := randomInstance(t, 100+seed, 6, 60)
		s, err := New(g, load, Options{Window: 1000, Delta: 7})
		if err != nil {
			t.Fatal(err)
		}
		// Advance a couple of iterations so T^r is nontrivial.
		s.Step()
		const maxAlpha = 80
		s.ensureScratch(1)
		bestCand := &best{delta: s.opt.Delta}
		for _, a := range s.tr.candidateAlphas(maxAlpha) {
			s.evalAlpha(s.scratch[0], a, bestCand)
		}
		bestAll := &best{delta: s.opt.Delta}
		for a := 1; a <= maxAlpha; a++ {
			s.evalAlpha(s.scratch[0], a, bestAll)
		}
		if bestAll.benefit*int64(bestCand.alpha+s.opt.Delta) > bestCand.benefit*int64(bestAll.alpha+s.opt.Delta) {
			t.Fatalf("seed %d: exhaustive ratio (%d/%d) beats candidate ratio (%d/%d)",
				seed, bestAll.benefit, bestAll.alpha+s.opt.Delta, bestCand.benefit, bestCand.alpha+s.opt.Delta)
		}
	}
}

func TestPsiMonotoneUnderApply(t *testing.T) {
	// Lemma 1 analog: applying more configurations never decreases ψ.
	g, load := randomInstance(t, 7, 8, 100)
	tr := newRemaining(g, load, 0, false, false, false)
	rng := rand.New(rand.NewSource(9))
	prev := tr.psi
	for k := 0; k < 50; k++ {
		var links []graph.Edge
		usedF := map[int]bool{}
		usedT := map[int]bool{}
		for tries := 0; tries < 5; tries++ {
			i, j := rng.Intn(8), rng.Intn(8)
			if i != j && !usedF[i] && !usedT[j] && g.HasEdge(i, j) {
				links = append(links, graph.Edge{From: i, To: j})
				usedF[i] = true
				usedT[j] = true
			}
		}
		tr.apply(links, 1+rng.Intn(30))
		if tr.psi < prev {
			t.Fatalf("ψ decreased: %d -> %d", prev, tr.psi)
		}
		prev = tr.psi
		if err := tr.sanity(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBenefitDefinitionConsistency(t *testing.T) {
	// Equation 2/3: B((M,α),S) computed from g() equals ψ(⟨S,(M,α)⟩)−ψ(S).
	g, load := randomInstance(t, 11, 8, 100)
	tr := newRemaining(g, load, 0, false, false, false)
	rng := rand.New(rand.NewSource(13))
	for k := 0; k < 40; k++ {
		var links []graph.Edge
		usedF := map[int]bool{}
		usedT := map[int]bool{}
		for tries := 0; tries < 4; tries++ {
			i, j := rng.Intn(8), rng.Intn(8)
			if i != j && !usedF[i] && !usedT[j] && g.HasEdge(i, j) {
				links = append(links, graph.Edge{From: i, To: j})
				usedF[i] = true
				usedT[j] = true
			}
		}
		alpha := 1 + rng.Intn(25)
		var predicted int64
		for _, e := range links {
			predicted += tr.gValue(e, alpha)
		}
		before := tr.psi
		tr.apply(links, alpha)
		if got := tr.psi - before; got != predicted {
			t.Fatalf("step %d: benefit %d != ψ delta %d", k, predicted, got)
		}
	}
}

func TestOctopusBCloseToOctopus(t *testing.T) {
	g, load := randomInstance(t, 21, 14, 500)
	run := func(opt Options) *Result {
		s, err := New(g, load, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(Options{Window: 500, Delta: 10})
	bin := run(Options{Window: 500, Delta: 10, AlphaSearch: AlphaBinary})
	if float64(bin.Delivered) < 0.85*float64(full.Delivered) {
		t.Fatalf("Octopus-B delivered %d far below Octopus %d", bin.Delivered, full.Delivered)
	}
}

func TestOctopusGCloseToOctopus(t *testing.T) {
	g, load := randomInstance(t, 22, 14, 500)
	run := func(m Matcher) *Result {
		s, err := New(g, load, Options{Window: 500, Delta: 10, Matcher: m})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact := run(MatcherExact)
	greedy := run(MatcherGreedy)
	if float64(greedy.Delivered) < 0.8*float64(exact.Delivered) {
		t.Fatalf("Octopus-G delivered %d far below Octopus %d", greedy.Delivered, exact.Delivered)
	}
}

func TestStepIncremental(t *testing.T) {
	g, load := randomInstance(t, 23, 8, 200)
	s, err := New(g, load, Options{Window: 200, Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	stepped := &schedule.Schedule{Delta: 5}
	for {
		cfg, ok, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if cfg.Alpha <= 0 || len(cfg.Links) == 0 {
			t.Fatalf("degenerate configuration %v", cfg)
		}
		stepped.Configs = append(stepped.Configs, cfg)
		used += cfg.Alpha + 5
		if used != s.Used() {
			t.Fatalf("Used() = %d, want %d", s.Used(), used)
		}
	}
	if !s.Done() {
		t.Fatal("not done after Step returned false")
	}
	// The stepwise-built schedule must pass the independent validator
	// (matchings, window budget, capacity, hop causality).
	if _, err := verify.Schedule(g, load, stepped, verify.Options{Window: 200}); err != nil {
		t.Fatal(err)
	}
	// Further steps remain terminal.
	if _, ok, _ := s.Step(); ok {
		t.Fatal("Step after done returned a configuration")
	}
}

func TestOptionValidation(t *testing.T) {
	g, load := randomInstance(t, 1, 6, 50)
	cases := []Options{
		{},                       // no window
		{Window: -5},             // negative window
		{Window: 100, Delta: -1}, // negative delta
		{Window: 10, Delta: 10},  // window <= delta
		{Window: 100, Ports: -2}, // bad ports
		{Window: 100, Epsilon64: -1},
		{Window: 100, MultiRoute: true, Ports: 2},
		{Window: 100, MultiRoute: true, MultiHop: true},
	}
	for i, opt := range cases {
		if _, err := New(g, load, opt); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opt)
		}
	}
	// Invalid load rejected.
	bad := &traffic.Load{Flows: []traffic.Flow{{ID: 1, Size: 1, Src: 0, Dst: 0}}}
	if _, err := New(g, bad, Options{Window: 100}); err == nil {
		t.Error("invalid load accepted")
	}
}

func TestMultiPortDoublesService(t *testing.T) {
	// Node 0 must send two equal flows to different destinations; with one
	// port only one can go at a time, with two ports both go at once.
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 50, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		{ID: 2, Size: 50, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 2}}},
	}}
	run := func(ports, window int) *Result {
		s, err := New(g, load, Options{Window: window, Delta: 5, Ports: ports})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Window 60: one port delivers at most 55 packets (one config of 50 +
	// nothing else fits); two ports deliver all 100.
	one := run(1, 60)
	two := run(2, 60)
	if two.Delivered != 100 {
		t.Fatalf("two ports delivered %d, want 100", two.Delivered)
	}
	if one.Delivered >= two.Delivered {
		t.Fatalf("one port (%d) not worse than two ports (%d)", one.Delivered, two.Delivered)
	}
	// The validator accepts the 2-port configurations and confirms the
	// plan's claims against its independent replay.
	_, err := verify.Schedule(g, load, two.Schedule, verify.Options{
		Window: 60,
		Ports:  2,
		Claim:  &verify.Claim{Delivered: two.Delivered, Hops: two.Hops, Psi: two.Psi},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBidirectional(t *testing.T) {
	// Undirected path 0-1-2; two flows in opposite directions share the
	// bidirectional links.
	u := graph.NewU(3)
	u.AddEdge(0, 1)
	u.AddEdge(1, 2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 30, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
		{ID: 2, Size: 30, Src: 2, Dst: 0, Routes: []traffic.Route{{2, 1, 0}}},
	}}
	s, err := NewBidirectional(u, load, Options{Window: 1000, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 60 {
		t.Fatalf("bidirectional delivered %d, want 60", res.Delivered)
	}
	// The validator checks every configuration is a direction-paired
	// matching of the undirected fabric, and that the plan's claimed
	// metrics equal an independent replay on the directed view.
	_, err = verify.Schedule(u.Directed(), load, res.Schedule, verify.Options{
		Window:     1000,
		Undirected: u,
		Claim:      &verify.Claim{Delivered: res.Delivered, Hops: res.Hops, Psi: res.Psi},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowRespected(t *testing.T) {
	for _, w := range []int{25, 60, 150} {
		g, load := randomInstance(t, 31, 10, 300)
		s, err := New(g, load, Options{Window: w, Delta: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedule.Cost() > w {
			t.Fatalf("window %d: cost %d", w, res.Schedule.Cost())
		}
	}
}

func TestEpsilonPrefersLaterHops(t *testing.T) {
	// Two candidate services: 10 packets at their first of 2 hops vs 10
	// packets at their last of 2 hops. With ε > 0 the later hop has higher
	// benefit weight and must be preferred by the queue ordering.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 1)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
		{ID: 2, Size: 10, Src: 3, Dst: 2, Routes: []traffic.Route{{3, 1, 2}}},
	}}
	tr := newRemaining(g, load, 8, false, false, false)
	// Advance flow 2 to node 1.
	tr.apply([]graph.Edge{{From: 3, To: 1}}, 10)
	// Link (1,2) now holds flow 2's packets at hop x=1; its g-value for 10
	// packets must use the ε-boosted weight.
	want := int64(10) * traffic.HopWeight(2, 1, 8)
	if got := tr.gValue(graph.Edge{From: 1, To: 2}, 10); got != want {
		t.Fatalf("ε-weighted g = %d, want %d", got, want)
	}
	// ψ accounting stays base-weighted.
	if tr.psi != int64(10)*traffic.Weight(2) {
		t.Fatalf("ψ uses ε weights: %d", tr.psi)
	}
}

func TestRemainingSanityAfterFullRun(t *testing.T) {
	g, load := randomInstance(t, 37, 10, 300)
	s, err := New(g, load, Options{Window: 300, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.tr.sanity(); err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if s.tr.delivered+s.tr.pending != load.TotalPackets() {
		t.Fatal("packet conservation violated")
	}
}
