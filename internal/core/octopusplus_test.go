package core

import (
	"math/rand"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// multiRouteInstance builds a seeded instance with k route choices per flow.
func multiRouteInstance(t *testing.T, seed int64, n, window, choices int) (*graph.Digraph, *traffic.Load) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.Complete(n)
	p := traffic.DefaultSyntheticParams(n, window)
	p.RouteChoices = choices
	load, err := traffic.Synthetic(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, load
}

func TestOctopusPlusRunsAndVerifies(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, load := multiRouteInstance(t, seed, 10, 300, 5)
		s, err := New(g, load, Options{Window: 300, Delta: 10, MultiRoute: true, KeepTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := res.VerifyPlan(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Schedule.Cost() > 300 {
			t.Fatalf("cost %d over window", res.Schedule.Cost())
		}
		if res.Delivered+res.Pending != res.TotalPackets {
			t.Fatal("packet conservation violated")
		}
	}
}

func TestOctopusPlusBeatsRandomRouteChoice(t *testing.T) {
	// Fig 9(b)'s qualitative claim: Octopus+ outperforms picking a random
	// route per flow and running plain Octopus.
	var plusTotal, randTotal int
	for seed := int64(0); seed < 4; seed++ {
		g, load := multiRouteInstance(t, 50+seed, 12, 400, 10)
		s, err := New(g, load, Options{Window: 400, Delta: 10, MultiRoute: true})
		if err != nil {
			t.Fatal(err)
		}
		plus, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		plusTotal += plus.Delivered

		// Octopus-random: resolve one random route per flow, then plain
		// Octopus on the resolved load.
		rng := rand.New(rand.NewSource(seed))
		resolved := load.Clone()
		for i := range resolved.Flows {
			f := &resolved.Flows[i]
			f.Routes = []traffic.Route{f.Routes[rng.Intn(len(f.Routes))]}
		}
		s2, err := New(g, resolved, Options{Window: 400, Delta: 10})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := s2.Run()
		if err != nil {
			t.Fatal(err)
		}
		randTotal += rnd.Delivered
	}
	if plusTotal <= randTotal {
		t.Fatalf("Octopus+ (%d) did not beat Octopus-random (%d)", plusTotal, randTotal)
	}
}

func TestUncommittedSharedCount(t *testing.T) {
	// A flow with two disjoint first hops must not be double-served: total
	// service across both candidate links is bounded by the flow size.
	g := graph.Complete(4)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 3}, {0, 2, 3}}},
	}}
	tr := newRemaining(g, load, 0, true, true, false)
	// Both candidate first-hop links are queued.
	if got := tr.gValue(graph.Edge{From: 0, To: 1}, 10); got != 10*traffic.Weight(2) {
		t.Fatalf("g(0->1) = %d", got)
	}
	if got := tr.gValue(graph.Edge{From: 0, To: 2}, 10); got != 10*traffic.Weight(2) {
		t.Fatalf("g(0->2) = %d", got)
	}
	// Serve 6 over (0,1): the shared pool drops to 4 on both links.
	tr.apply([]graph.Edge{{From: 0, To: 1}}, 6)
	if got := tr.gValue(graph.Edge{From: 0, To: 2}, 10); got != 4*traffic.Weight(2) {
		t.Fatalf("after partial commit g(0->2) = %d", got)
	}
	if tr.hops != 6 {
		t.Fatalf("hops = %d", tr.hops)
	}
	if err := tr.sanity(); err != nil {
		t.Fatal(err)
	}
}

func TestCommonFirstHopCountedOnce(t *testing.T) {
	// Two candidate routes share the first hop (0,1): the packet must be
	// considered once on that link, credited with the shorter route.
	g := graph.Complete(4)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 2, 3}, {0, 1, 3}}},
	}}
	tr := newRemaining(g, load, 0, true, true, false)
	if got := tr.gValue(graph.Edge{From: 0, To: 1}, 100); got != 10*traffic.Weight(2) {
		t.Fatalf("g(0->1) = %d, want single count at 2-hop weight %d", got, 10*traffic.Weight(2))
	}
	// Serving commits to the 2-hop route.
	tr.apply([]graph.Edge{{From: 0, To: 1}}, 10)
	sf := tr.byKey[sfKey{1, 1, 1}]
	if sf == nil || sf.count != 10 {
		t.Fatalf("expected commit to route 1 at pos 1, byKey=%v", tr.byKey)
	}
}

func TestBacktrackingDelivery(t *testing.T) {
	// A flow committed onto a 3-hop route gets stranded mid-route; with
	// backtracking it can later be delivered over the direct link with its
	// prior progress annulled.
	g := graph.Complete(5)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 4, Routes: []traffic.Route{{0, 1, 2, 4}, {0, 4}}},
	}}
	tr := newRemaining(g, load, 0, true, true, true)
	// Commit onto the 3-hop route (serving the first hop 0->1).
	tr.apply([]graph.Edge{{From: 0, To: 1}}, 10)
	if tr.hops != 10 || tr.delivered != 0 {
		t.Fatalf("after first hop: hops=%d delivered=%d", tr.hops, tr.delivered)
	}
	psiAfterHop := tr.psi
	if psiAfterHop != 10*traffic.Weight(3) {
		t.Fatalf("psi after first hop = %d", psiAfterHop)
	}
	// The direct link (0,4) now carries a backtrack entry for the stranded
	// packets.
	if got := tr.gValue(graph.Edge{From: 0, To: 4}, 10); got != 10*traffic.Weight(1) {
		t.Fatalf("backtrack g(0->4) = %d", got)
	}
	// Serve the direct link: packets are delivered, prior progress annulled.
	tr.apply([]graph.Edge{{From: 0, To: 4}}, 10)
	if tr.delivered != 10 {
		t.Fatalf("delivered = %d, want 10", tr.delivered)
	}
	if tr.psi != 10*traffic.Weight(1) {
		t.Fatalf("psi after backtrack = %d, want %d (annulled)", tr.psi, 10*traffic.Weight(1))
	}
	if tr.hops != 10 {
		t.Fatalf("hops after backtrack = %d, want 10 (1 hop each, annulled)", tr.hops)
	}
	if err := tr.sanity(); err != nil {
		t.Fatal(err)
	}
}

func TestBacktrackPriorityOverAdvancement(t *testing.T) {
	// When both the direct link and the next-hop link are in the selected
	// configuration, the direct link wins (paper §6): packets stranded at
	// node 1 with next hop 2 and direct link (0,4) both active.
	g := graph.Complete(5)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 4, Routes: []traffic.Route{{0, 1, 2, 4}, {0, 4}}},
	}}
	tr := newRemaining(g, load, 0, true, true, false)
	tr.apply([]graph.Edge{{From: 0, To: 1}}, 10)
	// Apply a configuration containing both (1,2) and (0,4).
	tr.apply([]graph.Edge{{From: 0, To: 4}, {From: 1, To: 2}}, 10)
	if tr.delivered != 10 {
		t.Fatalf("delivered = %d, want all via direct link", tr.delivered)
	}
	// No packets advanced to node 2.
	if sf := tr.byKey[sfKey{1, 0, 2}]; sf != nil && sf.count > 0 {
		t.Fatalf("packets advanced to pos 2 despite backtrack priority: %d", sf.count)
	}
}

func TestDisableBacktrack(t *testing.T) {
	g := graph.Complete(5)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 4, Routes: []traffic.Route{{0, 1, 2, 4}, {0, 4}}},
	}}
	tr := newRemaining(g, load, 0, true, false, false)
	tr.apply([]graph.Edge{{From: 0, To: 1}}, 10)
	if got := tr.gValue(graph.Edge{From: 0, To: 4}, 10); got != 0 {
		t.Fatalf("backtrack disabled but g(0->4) = %d", got)
	}
}

func TestPlainOctopusUsesPrimaryRoute(t *testing.T) {
	// Without MultiRoute, a multi-route load falls back to Routes[0].
	g, load := multiRouteInstance(t, 3, 8, 150, 4)
	s, err := New(g, load, Options{Window: 150, Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The replay with route choice 0 must agree.
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Delivered != res.Delivered || sim.Psi != res.Psi {
		t.Fatalf("plan/replay mismatch: %d/%d vs %d/%d", res.Delivered, res.Psi, sim.Delivered, sim.Psi)
	}
}

func TestVerifyPlanDetectsTampering(t *testing.T) {
	g, load := multiRouteInstance(t, 9, 8, 200, 3)
	s, err := New(g, load, Options{Window: 200, Delta: 10, MultiRoute: true, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.trace) == 0 {
		t.Skip("no service events to tamper with")
	}
	if err := res.VerifyPlan(); err != nil {
		t.Fatal(err)
	}
	// Tamper with the claimed delivery count.
	res.Delivered++
	if err := res.VerifyPlan(); err == nil {
		t.Fatal("verifier accepted wrong delivered count")
	}
	res.Delivered--
	// Tamper with a trace record's count (overdraw).
	res.trace[0].Count += res.TotalPackets
	if err := res.VerifyPlan(); err == nil {
		t.Fatal("verifier accepted overdrawn record")
	}
}

func TestVerifyPlanRequiresTrace(t *testing.T) {
	g, load := multiRouteInstance(t, 10, 6, 100, 2)
	s, err := New(g, load, Options{Window: 100, Delta: 5, MultiRoute: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyPlan(); err == nil {
		t.Fatal("VerifyPlan without KeepTrace did not error")
	}
}

func TestMultiHopSchedulingImprovesChainedDelivery(t *testing.T) {
	// A pure 2-hop pipeline instance: with MultiHop configuration
	// selection, both links of a route land in one configuration and the
	// chained replay delivers more than half the packets in one window.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 50, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
	}}
	s, err := New(g, load, Options{Window: 80, Delta: 10, MultiHop: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The first configuration should contain both links (a chain).
	if len(res.Schedule.Configs) == 0 || len(res.Schedule.Configs[0].Links) != 2 {
		t.Fatalf("expected a chained configuration, got %v", res.Schedule.Configs)
	}
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{MultiHop: true})
	if err != nil {
		t.Fatal(err)
	}
	// Chained replay delivers at least the single-hop plan's bookkeeping.
	if sim.Delivered < res.Delivered {
		t.Fatalf("chained replay %d below plan %d", sim.Delivered, res.Delivered)
	}
	if sim.Delivered < 40 {
		t.Fatalf("chained delivery too low: %d", sim.Delivered)
	}
}

func TestChainedGreedyMatchesExample(t *testing.T) {
	// Paper §5: in Example 1, if a configuration contains both (d,a) and
	// (a,b), all (d,a,b)-flow packets can be delivered in one
	// configuration. The chained evaluator must see that benefit.
	g, load := example1()
	s, err := New(g, load, Options{Window: 300, Delta: 0, MultiHop: true})
	if err != nil {
		t.Fatal(err)
	}
	const a, b, d = 0, 1, 3
	chain := []graph.Edge{{From: d, To: a}, {From: a, To: b}}
	got := s.evalChain(chain, 51)
	// 50 packets cross (d,a) [weight 1/2 each] and chain across (a,b)
	// [another 1/2], plus (a,b) also serves the (a,c)-flow packets queued
	// at a: 50 crossings at weight 1/2 ... (a,b) serves up to 51 packets:
	// flow 1's 51 (weight 1/2, flow ID 1) beat the chained flow-3 arrivals
	// of equal weight but higher ID.
	want := int64(50)*traffic.Weight(2) + int64(51)*traffic.Weight(2)
	if got != want {
		t.Fatalf("evalChain = %d, want %d", got, want)
	}
}
