package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"octopus/internal/graph"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// randomSmallLoad builds a small random multi-route load over Complete(n).
func randomSmallLoad(seed int64) (*graph.Digraph, *traffic.Load) {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(6)
	g := graph.Complete(n)
	load := &traffic.Load{}
	for f := 0; f < 1+rng.Intn(8); f++ {
		src := rng.Intn(n)
		dst := (src + 1 + rng.Intn(n-1)) % n
		var routes []traffic.Route
		for r := 0; r < 1+rng.Intn(3); r++ {
			hops := 1 + rng.Intn(3)
			route, ok := traffic.RandomRoute(g, src, dst, hops, rng)
			if !ok {
				continue
			}
			dup := false
			for _, prev := range routes {
				if prev.Equal(route) {
					dup = true
				}
			}
			if !dup {
				routes = append(routes, route)
			}
		}
		if len(routes) == 0 {
			continue
		}
		load.Flows = append(load.Flows, traffic.Flow{
			ID: f + 1, Size: 1 + rng.Intn(30), Src: src, Dst: dst, Routes: routes,
		})
	}
	return g, load
}

// Property: every Octopus variant conserves packets, respects the window,
// and produces a valid schedule; Octopus+ plans additionally verify.
func TestSchedulerInvariantsProperty(t *testing.T) {
	f := func(seed int64, variant uint8) bool {
		g, load := randomSmallLoad(seed)
		if len(load.Flows) == 0 {
			return true
		}
		opt := Options{Window: 100 + int(seed%200+200)%200, Delta: 5, KeepTrace: true}
		switch variant % 5 {
		case 1:
			opt.Matcher = MatcherGreedy
		case 2:
			opt.AlphaSearch = AlphaBinary
		case 3:
			opt.MultiRoute = true
		case 4:
			opt.Epsilon64 = int(variant % 16)
		}
		s, err := New(g, load, opt)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		res, err := s.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Delivered+res.Pending != res.TotalPackets {
			return false
		}
		if res.Schedule.Cost() > opt.Window {
			return false
		}
		if err := res.Schedule.Validate(g, opt.Window, 1); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := res.VerifyPlan(); err != nil {
			t.Logf("seed %d: verify: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: plan bookkeeping and simulator replay agree exactly for every
// single-route variant.
func TestAgreementProperty(t *testing.T) {
	f := func(seed int64, greedy bool, eps uint8) bool {
		g, load := randomSmallLoad(seed)
		if len(load.Flows) == 0 {
			return true
		}
		// Force single-route loads.
		for i := range load.Flows {
			load.Flows[i].Routes = load.Flows[i].Routes[:1]
		}
		opt := Options{Window: 150, Delta: 4, Epsilon64: int(eps % 8)}
		if greedy {
			opt.Matcher = MatcherGreedy
		}
		s, err := New(g, load, opt)
		if err != nil {
			return false
		}
		res, err := s.Run()
		if err != nil {
			return false
		}
		sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{Epsilon64: opt.Epsilon64})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return sim.Delivered == res.Delivered && sim.Psi == res.Psi && sim.Hops == res.Hops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: over the shared verify.RandomInstance distribution, every
// variant's schedule passes the independent validator — with the plan's
// claimed metrics checked exactly for the single-route-planning variants.
func TestValidatedClaimsProperty(t *testing.T) {
	f := func(seed int64, variant uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			return true
		}
		opt := Options{Window: inst.Window, Delta: inst.Delta}
		switch variant % 5 {
		case 1:
			opt.Matcher = MatcherGreedy
		case 2:
			opt.AlphaSearch = AlphaBinary
		case 3:
			opt.Epsilon64 = int(variant % 16)
		case 4:
			opt.MultiHop = true
		}
		s, err := New(inst.G, inst.Load, opt)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		res, err := s.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		_, err = verify.Schedule(inst.G, inst.Load, res.Schedule, verify.Options{
			Window:    inst.Window,
			Epsilon64: opt.Epsilon64,
			Claim:     &verify.Claim{Delivered: res.Delivered, Hops: res.Hops, Psi: res.Psi},
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the scheduler is deterministic, including under parallel α
// evaluation.
func TestParallelDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, load := randomSmallLoad(seed)
		if len(load.Flows) == 0 {
			return true
		}
		run := func(par int) *Result {
			s, err := New(g, load, Options{Window: 200, Delta: 6, Parallelism: par})
			if err != nil {
				return nil
			}
			res, err := s.Run()
			if err != nil {
				return nil
			}
			return res
		}
		a, b := run(1), run(4)
		if a == nil || b == nil {
			return false
		}
		if a.Psi != b.Psi || a.Delivered != b.Delivered || len(a.Schedule.Configs) != len(b.Schedule.Configs) {
			return false
		}
		for i := range a.Schedule.Configs {
			ca, cb := a.Schedule.Configs[i], b.Schedule.Configs[i]
			if ca.Alpha != cb.Alpha || len(ca.Links) != len(cb.Links) {
				return false
			}
			for j := range ca.Links {
				if ca.Links[j] != cb.Links[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: link queues stay sorted by (benefit weight desc, flow ID asc).
func TestQueueOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, load := randomSmallLoad(seed)
		if len(load.Flows) == 0 {
			return true
		}
		tr := newRemaining(g, load, 3, true, true, false)
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < 10; k++ {
			var links []graph.Edge
			i, j := rng.Intn(g.N()), rng.Intn(g.N())
			if i != j {
				links = append(links, graph.Edge{From: i, To: j})
			}
			tr.apply(links, 1+rng.Intn(10))
		}
		for _, ls := range tr.links {
			for i := 1; i < len(ls.entries); i++ {
				a, b := ls.entries[i-1], ls.entries[i]
				if a.bw < b.bw {
					return false
				}
				if a.bw == b.bw && a.sf.flow.ID > b.sf.flow.ID {
					return false
				}
			}
		}
		return tr.sanity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
