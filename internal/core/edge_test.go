package core

import (
	"testing"

	"octopus/internal/graph"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
)

// Edge cases around window boundaries and degenerate instances.

func TestWindowBarelyFitsOneConfig(t *testing.T) {
	g := graph.Complete(2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 100, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	// Window = Delta + 1: exactly one slot of service fits.
	s, err := New(g, load, Options{Window: 11, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 {
		t.Fatalf("delivered %d, want 1", res.Delivered)
	}
	if res.Schedule.Cost() != 11 {
		t.Fatalf("cost %d", res.Schedule.Cost())
	}
}

func TestZeroDelta(t *testing.T) {
	g, load := randomInstance(t, 3, 8, 120)
	s, err := New(g, load, Options{Window: 120, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Cost() > 120 {
		t.Fatalf("cost %d", res.Schedule.Cost())
	}
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Delivered != res.Delivered {
		t.Fatalf("plan %d vs replay %d", res.Delivered, sim.Delivered)
	}
}

func TestSingleFlowSinglePacket(t *testing.T) {
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 1, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
	}}
	s, err := New(g, load, Options{Window: 100, Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.Hops != 2 {
		t.Fatalf("delivered=%d hops=%d", res.Delivered, res.Hops)
	}
	// The schedule needs at least two configurations (one hop per config).
	if len(res.Schedule.Configs) < 2 {
		t.Fatalf("configs = %v", res.Schedule.Configs)
	}
}

func TestHugeAlphaCandidateClamp(t *testing.T) {
	// One enormous flow: the natural alpha candidate (its size) exceeds
	// the window and must be clamped.
	g := graph.Complete(2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 100000, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	s, err := New(g, load, Options{Window: 50, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 40 {
		t.Fatalf("delivered %d, want 40 (window minus delta)", res.Delivered)
	}
}

func TestBidirectionalExactBeatsOrMatchesGreedy(t *testing.T) {
	// On a general undirected fabric the blossom matcher should never lose
	// to the greedy+augment matcher.
	u := graph.NewU(7)
	// A 7-cycle plus chords: odd cycles exercise blossoms.
	for i := 0; i < 7; i++ {
		u.AddEdge(i, (i+1)%7)
	}
	u.AddEdge(0, 3)
	u.AddEdge(2, 5)
	d := u.Directed()
	load := &traffic.Load{}
	id := 1
	for i := 0; i < 7; i++ {
		load.Flows = append(load.Flows, traffic.Flow{
			ID: id, Size: 10 + i, Src: i, Dst: (i + 1) % 7,
			Routes: []traffic.Route{{i, (i + 1) % 7}},
		})
		id++
	}
	if err := load.Validate(d); err != nil {
		t.Fatal(err)
	}
	run := func(m Matcher) int {
		s, err := NewBidirectional(u, load, Options{Window: 60, Delta: 5, Matcher: m})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Delivered
	}
	exact := run(MatcherExact)
	greedy := run(MatcherGreedy)
	if exact < greedy {
		t.Fatalf("blossom (%d) below greedy (%d)", exact, greedy)
	}
}

func TestMultiPortGreedyMatcher(t *testing.T) {
	g, load := randomInstance(t, 5, 8, 150)
	s, err := New(g, load, Options{Window: 150, Delta: 5, Ports: 2, Matcher: MatcherGreedy})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g, 150, 2); err != nil {
		t.Fatal(err)
	}
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{Ports: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Delivered != res.Delivered {
		t.Fatalf("plan %d vs replay %d", res.Delivered, sim.Delivered)
	}
}

func TestPartialFabricAgreement(t *testing.T) {
	// Partial fabrics with longer forced routes still keep plan/replay
	// agreement.
	g := graph.ChordRing(12, 3)
	load := &traffic.Load{}
	id := 1
	for i := 0; i < 12; i += 2 {
		r, ok := traffic.ShortestRoute(g, i, (i+7)%12)
		if !ok {
			t.Fatalf("no route %d->%d", i, (i+7)%12)
		}
		load.Flows = append(load.Flows, traffic.Flow{
			ID: id, Size: 25, Src: i, Dst: (i + 7) % 12, Routes: []traffic.Route{r},
		})
		id++
	}
	s, err := New(g, load, Options{Window: 200, Delta: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulate.Run(g, load, res.Schedule, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Delivered != res.Delivered || sim.Psi != res.Psi {
		t.Fatalf("plan (%d, %d) vs replay (%d, %d)", res.Delivered, res.Psi, sim.Delivered, sim.Psi)
	}
}
