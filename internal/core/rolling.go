package core

import (
	"fmt"
	"sort"

	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

// ResidualLoad exports the remaining traffic after the greedy loop has
// finished as a fresh load: packets stranded at intermediate nodes become
// flows whose route is the untraversed suffix of their original route, and
// packets still at their source keep their original route set. Flow IDs
// are reassigned densely in (original flow, position) order, preserving
// the original relative priority.
//
// This implements the paper's §4 observation that packets undelivered
// within one window "can be considered for continued routing in the next
// time window": schedule a window, export the residual, schedule it in the
// next window (see RunWindows).
func (s *Scheduler) ResidualLoad() *traffic.Load {
	load, _ := s.ResidualLoadMap()
	return load
}

// ResidualLoadMap is ResidualLoad plus the provenance of each residual
// flow: a map from new flow ID to the original flow ID it carries packets
// of. Online schedulers use this to track per-flow completion across
// scheduling epochs.
func (s *Scheduler) ResidualLoadMap() (*traffic.Load, map[int]int) {
	type rem struct {
		key sfKey
		sf  *subflow
	}
	var rems []rem
	for k, sf := range s.tr.byKey {
		if sf.count > 0 {
			rems = append(rems, rem{k, sf})
		}
	}
	sort.Slice(rems, func(i, j int) bool {
		a, b := rems[i].key, rems[j].key
		if a.flowID != b.flowID {
			return a.flowID < b.flowID
		}
		if a.routeID != b.routeID {
			return a.routeID < b.routeID
		}
		return a.pos < b.pos
	})
	out := &traffic.Load{}
	origin := make(map[int]int)
	nextID := 0
	for _, r := range rems {
		sf := r.sf
		var routes []traffic.Route
		if sf.route == nil {
			// Still at the source with the route choice open.
			for _, rt := range sf.flow.Routes {
				routes = append(routes, append(traffic.Route(nil), rt...))
			}
		} else {
			suffix := sf.route[sf.key.pos:]
			routes = []traffic.Route{append(traffic.Route(nil), suffix...)}
		}
		out.Flows = append(out.Flows, traffic.Flow{
			ID:     nextID,
			Size:   sf.count,
			Src:    routes[0].Src(),
			Dst:    sf.flow.Dst,
			Routes: routes,
		})
		origin[nextID] = sf.flow.ID
		nextID++
	}
	return out, origin
}

// WindowResult is the outcome of one window of a rolling run.
type WindowResult struct {
	Result   *Result
	Offered  int // packets offered to this window (initial + carried over)
	Residual int // packets carried into the next window
}

// RunWindows schedules load across successive windows of opt.Window slots:
// each window runs the full greedy loop, and undelivered packets carry
// over (from their current positions) into the next window. Returns the
// per-window results; the sum of Result.Delivered is the total throughput.
func RunWindows(g *graph.Digraph, load *traffic.Load, opt Options, windows int) ([]WindowResult, error) {
	if windows < 1 {
		return nil, fmt.Errorf("core: windows must be positive, got %d", windows)
	}
	cur := load
	var out []WindowResult
	for w := 0; w < windows && len(cur.Flows) > 0; w++ {
		s, err := New(g, cur, opt)
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		residual := s.ResidualLoad()
		out = append(out, WindowResult{
			Result:   res,
			Offered:  cur.TotalPackets(),
			Residual: residual.TotalPackets(),
		})
		cur = residual
	}
	return out, nil
}

// TotalDelivered sums the packets delivered across the windows.
func TotalDelivered(ws []WindowResult) int {
	total := 0
	for _, w := range ws {
		total += w.Result.Delivered
	}
	return total
}

// CombinedSchedule concatenates the per-window schedules into one sequence
// (useful for replay/inspection; the reconfiguration delay between windows
// is already accounted for because every window's schedule begins with its
// own reconfiguration).
func CombinedSchedule(ws []WindowResult) *schedule.Schedule {
	if len(ws) == 0 {
		return &schedule.Schedule{}
	}
	out := &schedule.Schedule{Delta: ws[0].Result.Schedule.Delta}
	for _, w := range ws {
		out.Configs = append(out.Configs, w.Result.Schedule.Configs...)
	}
	return out
}
