package core

import (
	"octopus/internal/matching"
	"octopus/internal/obs"
)

// coreInstruments is the pre-bound instrument set of one Scheduler. Binding
// happens once in init; with observability off every field is nil and each
// hook costs one nil check. The hooks are strictly read-only with respect
// to scheduler state: enabling them must not change a single decision
// (asserted by the obs on/off equivalence tests).
type coreInstruments struct {
	iterations *obs.Counter   // greedy iterations planned
	alpha      *obs.Histogram // chosen α per iteration
	weight     *obs.Histogram // matching weight (benefit) per iteration
	candidates *obs.Histogram // α-candidate-set size per iteration
	rebuilds   *obs.Counter   // dirty link-summary rebuilds
	step       *obs.Timer     // wall time per Step

	greedyCalls   *obs.Counter
	greedyEdges   *obs.Counter
	greedyMatched *obs.Counter
	exactCalls    *obs.Counter
	exactRows     *obs.Counter
	augmentRounds *obs.Counter
	arenaGrows    *obs.Counter
	arenaReuses   *obs.Counter

	denseSolves    *obs.Counter // exact solves taken by the dense matrix path
	sparseSolves   *obs.Counter // exact solves taken by the sparse CSR path
	prunedExact    *obs.Counter // phase-2 exact solves skipped by incumbent pruning
	warmCalls      *obs.Counter
	warmHits       *obs.Counter
	warmMisses     *obs.Counter
	warmRowsReused *obs.Counter

	tracer *obs.Tracer
}

func bindCoreInstruments(o *obs.Observer) coreInstruments {
	return coreInstruments{
		iterations: o.Counter("octopus_core_iterations_total"),
		alpha:      o.Histogram("octopus_core_alpha"),
		weight:     o.Histogram("octopus_core_matching_weight"),
		candidates: o.Histogram("octopus_core_alpha_candidates"),
		rebuilds:   o.Counter("octopus_core_summary_rebuilds_total"),
		step:       o.Timer("octopus_core_step_ns"),

		greedyCalls:   o.Counter("octopus_match_greedy_calls_total"),
		greedyEdges:   o.Counter("octopus_match_greedy_edges_total"),
		greedyMatched: o.Counter("octopus_match_greedy_matched_total"),
		exactCalls:    o.Counter("octopus_match_exact_calls_total"),
		exactRows:     o.Counter("octopus_match_exact_rows_total"),
		augmentRounds: o.Counter("octopus_match_augment_rounds_total"),
		arenaGrows:    o.Counter("octopus_match_arena_grows_total"),
		arenaReuses:   o.Counter("octopus_match_arena_reuses_total"),

		denseSolves:    o.Counter("octopus_match_exact_dense_total"),
		sparseSolves:   o.Counter("octopus_match_exact_sparse_total"),
		prunedExact:    o.Counter("octopus_match_exact_pruned_total"),
		warmCalls:      o.Counter("octopus_match_warm_calls_total"),
		warmHits:       o.Counter("octopus_match_warm_hits_total"),
		warmMisses:     o.Counter("octopus_match_warm_misses_total"),
		warmRowsReused: o.Counter("octopus_match_warm_rows_reused_total"),

		tracer: o.Tracer(),
	}
}

// observeIter records one planned configuration: the greedy decision
// ("core.iter" trace event) plus the per-iteration metric observations.
func (s *Scheduler) observeIter(alpha int, benefit int64, nlinks int, psiGain int64, deliveredGain int) {
	ins := &s.ins
	ins.iterations.Inc()
	ins.alpha.Observe(int64(alpha))
	ins.weight.Observe(benefit)
	ins.candidates.Observe(int64(s.lastCandidates))
	ins.rebuilds.Add(int64(s.tr.lastRebuilds))
	ins.tracer.Emit("core.iter",
		obs.I("iter", int64(s.iters)),
		obs.I("alpha", int64(alpha)),
		obs.I("benefit", benefit),
		obs.I("links", int64(nlinks)),
		obs.I("psi_gain", psiGain),
		obs.I("delivered", int64(deliveredGain)),
		obs.I("pending", int64(s.tr.pending)),
		obs.I("candidates", int64(s.lastCandidates)),
		obs.I("rebuilds", int64(s.tr.lastRebuilds)),
	)
}

// observeDone fires once when the greedy loop terminates: it folds the
// per-worker arena stats into the match counters and emits the "core.done"
// summary event. Step guards the done transition, so this runs exactly once
// per Scheduler.
func (s *Scheduler) observeDone() {
	if !s.opt.Obs.Enabled() {
		return
	}
	var sum matching.Stats
	for _, sc := range s.scratch {
		sc.arena.Stats.AddTo(&sum)
	}
	ins := &s.ins
	ins.greedyCalls.Add(sum.GreedyCalls)
	ins.greedyEdges.Add(sum.GreedyEdges)
	ins.greedyMatched.Add(sum.GreedyMatched)
	ins.exactCalls.Add(sum.ExactCalls)
	ins.exactRows.Add(sum.ExactRows)
	ins.augmentRounds.Add(sum.AugmentRounds)
	ins.arenaGrows.Add(sum.Grows)
	ins.arenaReuses.Add(sum.Reuses)
	ins.denseSolves.Add(sum.DenseSolves)
	ins.sparseSolves.Add(sum.SparseSolves)
	ins.prunedExact.Add(s.prunedExact)
	ins.warmCalls.Add(sum.WarmCalls)
	ins.warmHits.Add(sum.WarmHits)
	ins.warmMisses.Add(sum.WarmMisses)
	ins.warmRowsReused.Add(sum.WarmRowsReused)
	ins.tracer.Emit("core.done",
		obs.I("iters", int64(s.iters)),
		obs.I("psi", s.tr.psi),
		obs.I("hops", int64(s.tr.hops)),
		obs.I("delivered", int64(s.tr.delivered)),
		obs.I("pending", int64(s.tr.pending)),
		obs.I("used", int64(s.used)),
	)
}
