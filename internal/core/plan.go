package core

import (
	"fmt"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// VerifyPlan replays the recorded service trace of a Result produced with
// Options.KeepTrace and checks that the plan is physically consistent:
//
//   - every service event uses a link present in its configuration, and no
//     link serves more than α packets per configuration;
//   - packets move only forward along a valid route of their flow (or
//     backtrack onto an existing direct source->destination link), and no
//     subflow goes negative;
//   - the plan's ψ, hop, delivered and pending accounting matches an
//     independent recomputation.
//
// This is the correctness check for Octopus+ schedules, whose backtracking
// revises earlier routing decisions and therefore cannot be validated by a
// forward packet-level replay (see DESIGN.md).
func (r *Result) VerifyPlan() error {
	if r.trace == nil {
		return fmt.Errorf("core: no trace recorded; run with Options.KeepTrace")
	}
	flows := make(map[int]*traffic.Flow, len(r.load.Flows))
	counts := make(map[sfKey]int)
	for i := range r.load.Flows {
		f := &r.load.Flows[i]
		flows[f.ID] = f
		key := sfKey{f.ID, 0, 0}
		if r.multiRoute && len(f.Routes) > 1 {
			key = sfKey{f.ID, -1, 0}
		}
		counts[key] += f.Size
	}

	type linkUse struct {
		config int
		link   graph.Edge
	}
	served := make(map[linkUse]int)
	inConfig := make(map[linkUse]bool)
	for ci, cfg := range r.Schedule.Configs {
		for _, e := range cfg.Links {
			inConfig[linkUse{ci, e}] = true
		}
	}

	var psi int64
	var hops, delivered int
	lastConfig := 0
	for ri, rec := range r.trace {
		if rec.Config < lastConfig || rec.Config >= len(r.Schedule.Configs) {
			return fmt.Errorf("core: record %d has out-of-order config %d", ri, rec.Config)
		}
		lastConfig = rec.Config
		lu := linkUse{rec.Config, rec.Link}
		if !inConfig[lu] {
			return fmt.Errorf("core: record %d serves link %v absent from configuration %d", ri, rec.Link, rec.Config)
		}
		served[lu] += rec.Count
		if served[lu] > r.Schedule.Configs[rec.Config].Alpha {
			return fmt.Errorf("core: configuration %d link %v serves %d > α=%d packets",
				rec.Config, rec.Link, served[lu], r.Schedule.Configs[rec.Config].Alpha)
		}
		if rec.Count <= 0 {
			return fmt.Errorf("core: record %d has non-positive count", ri)
		}
		if counts[rec.Key] < rec.Count {
			return fmt.Errorf("core: record %d overdraws subflow %+v (%d < %d)", ri, rec.Key, counts[rec.Key], rec.Count)
		}
		f := flows[rec.Key.flowID]
		if f == nil {
			return fmt.Errorf("core: record %d references unknown flow %d", ri, rec.Key.flowID)
		}
		counts[rec.Key] -= rec.Count

		if rec.Backtrack {
			if rec.Key.pos == 0 || rec.Key.routeID < 0 {
				return fmt.Errorf("core: record %d backtracks a packet still at its source", ri)
			}
			if rec.Link != (graph.Edge{From: f.Src, To: f.Dst}) {
				return fmt.Errorf("core: record %d backtracks over non-direct link %v", ri, rec.Link)
			}
			if !r.g.HasEdge(f.Src, f.Dst) {
				return fmt.Errorf("core: record %d backtracks over absent direct link", ri)
			}
			l := f.WeightLen(f.Routes[rec.Key.routeID])
			psi += int64(rec.Count) * (traffic.Weight(1) - int64(rec.Key.pos)*traffic.Weight(l))
			hops += rec.Count * (1 - rec.Key.pos)
			delivered += rec.Count
			continue
		}

		routeID := rec.Key.routeID
		if routeID == -1 {
			routeID = rec.RouteID
			if rec.Key.pos != 0 {
				return fmt.Errorf("core: record %d commits a non-source subflow", ri)
			}
		}
		if routeID < 0 || routeID >= len(f.Routes) {
			return fmt.Errorf("core: record %d has route index %d out of range", ri, routeID)
		}
		route := f.Routes[routeID]
		pos := rec.Key.pos
		if pos+1 >= len(route) {
			return fmt.Errorf("core: record %d advances past destination", ri)
		}
		want := graph.Edge{From: route[pos], To: route[pos+1]}
		if rec.Link != want {
			return fmt.Errorf("core: record %d serves %v but route hop is %v", ri, rec.Link, want)
		}
		psi += int64(rec.Count) * traffic.Weight(f.WeightLen(route))
		hops += rec.Count
		if pos+1 == len(route)-1 {
			delivered += rec.Count
		} else {
			counts[sfKey{f.ID, routeID, pos + 1}] += rec.Count
		}
	}

	if delivered != r.Delivered {
		return fmt.Errorf("core: trace delivers %d, result claims %d", delivered, r.Delivered)
	}
	if hops != r.Hops {
		return fmt.Errorf("core: trace hops %d, result claims %d", hops, r.Hops)
	}
	if psi != r.Psi {
		return fmt.Errorf("core: trace ψ %d, result claims %d", psi, r.Psi)
	}
	total := r.TotalPackets
	if total-delivered != r.Pending {
		return fmt.Errorf("core: pending mismatch: %d vs %d", total-delivered, r.Pending)
	}
	return nil
}
