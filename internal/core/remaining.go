package core

import (
	"fmt"
	"sort"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// sfKey identifies a subflow of the remaining traffic T^r: packets of one
// flow that have committed to one route and sit at the same position along
// it. routeID is the index into Flow.Routes, or -1 for packets still at
// their source with the route choice open (Octopus+ only).
type sfKey struct {
	flowID  int
	routeID int
	pos     int
}

// subflow is a group of identical packets of the remaining traffic.
type subflow struct {
	key   sfKey
	flow  *traffic.Flow
	route traffic.Route // nil while uncommitted
	count int
	// frozen is the number of packets that arrived during the
	// configuration currently being applied; they may not move again until
	// the next configuration (a packet traverses at most one hop per
	// configuration in the plan bookkeeping).
	frozen int
}

// node returns the subflow's current node.
func (sf *subflow) node() int {
	if sf.route == nil {
		return sf.flow.Src
	}
	return sf.route[sf.key.pos]
}

// entry is one appearance of a subflow in a link's virtual output queue.
// A committed subflow has one entry (on its next-hop link) plus, with
// backtracking enabled, one on the direct source->destination link. An
// uncommitted subflow has one entry per distinct candidate first-hop link.
type entry struct {
	sf *subflow
	// bw is the per-packet benefit weight at this link (includes the
	// Octopus-e ε hop bonus); queues order by bw desc, then flow ID asc.
	bw int64
	// pw is the per-packet base ψ weight of the route this entry advances
	// the packet along (no ε), used for ψ accounting.
	pw int64
	// routeID is the route the packet commits to when served through this
	// entry (meaningful for uncommitted subflows; equals sf.key.routeID
	// otherwise).
	routeID int
	// backtrack marks a direct-link entry that annuls the packet's prior
	// multi-hop progress when served (Octopus+ §6).
	backtrack bool
}

// linkState is the priority queue of entries for one directed link.
type linkState struct {
	entries []*entry
}

func (ls *linkState) insert(e *entry) {
	i := sort.Search(len(ls.entries), func(i int) bool {
		o := ls.entries[i]
		if o.bw != e.bw {
			return o.bw < e.bw
		}
		if o.sf.flow.ID != e.sf.flow.ID {
			return o.sf.flow.ID > e.sf.flow.ID
		}
		return o.sf.key.pos >= e.sf.key.pos
	})
	ls.entries = append(ls.entries, nil)
	copy(ls.entries[i+1:], ls.entries[i:])
	ls.entries[i] = e
}

// Entries are never removed from a queue: a subflow drained now can be
// refilled later by upstream arrivals of the same flow, and its entry must
// still be present. Zero-count entries are skipped during iteration; the
// total number of entries is bounded by the number of subflows (|T|·𝒟).

// servedRecord traces one bulk packet movement for plan verification.
type servedRecord struct {
	Config    int // configuration index in the schedule
	Link      graph.Edge
	Key       sfKey
	RouteID   int
	Count     int
	Backtrack bool
}

// remaining is the remaining traffic load T^r plus the plan accounting the
// greedy loop maintains while building a schedule.
type remaining struct {
	g          *graph.Digraph
	links      map[graph.Edge]*linkState
	edgeList   []graph.Edge // sorted keys of links; rebuilt lazily
	edgesDirty bool
	byKey      map[sfKey]*subflow

	eps        int  // Octopus-e ε in 1/64 units
	multiRoute bool // Octopus+ first-hop route choice
	backtrack  bool // Octopus+ direct-link backtracking

	// Plan accounting (bookkeeping of the schedule under construction).
	psi       int64
	hops      int
	delivered int
	pending   int // packets not yet delivered

	trace     []servedRecord
	keepTrace bool
	configIdx int
	touched   []*subflow // subflows with frozen packets from the current apply
}

// newRemaining builds T^r = T.
func newRemaining(g *graph.Digraph, load *traffic.Load, eps int, multiRoute, backtrack, keepTrace bool) *remaining {
	tr := &remaining{
		g:          g,
		links:      make(map[graph.Edge]*linkState),
		byKey:      make(map[sfKey]*subflow),
		eps:        eps,
		multiRoute: multiRoute,
		backtrack:  backtrack,
		keepTrace:  keepTrace,
	}
	for i := range load.Flows {
		f := &load.Flows[i]
		tr.pending += f.Size
		if !tr.multiRoute || len(f.Routes) == 1 {
			sf := &subflow{key: sfKey{f.ID, 0, 0}, flow: f, route: f.Routes[0], count: f.Size}
			tr.byKey[sf.key] = sf
			tr.addCommittedEntry(sf)
			continue
		}
		sf := &subflow{key: sfKey{f.ID, -1, 0}, flow: f, count: f.Size}
		tr.byKey[sf.key] = sf
		tr.addUncommittedEntries(sf)
	}
	return tr
}

// hopBW returns the benefit weight of the hop at index pos of an l-hop
// route under the current ε.
func (tr *remaining) hopBW(l, pos int) int64 { return traffic.HopWeight(l, pos, tr.eps) }

func (tr *remaining) link(e graph.Edge) *linkState {
	ls := tr.links[e]
	if ls == nil {
		ls = &linkState{}
		tr.links[e] = ls
		tr.edgesDirty = true
	}
	return ls
}

// addCommittedEntry queues a committed subflow on its next-hop link and,
// when backtracking applies, on the direct source->destination link.
func (tr *remaining) addCommittedEntry(sf *subflow) {
	l := sf.flow.WeightLen(sf.route)
	pos := sf.key.pos
	e := graph.Edge{From: sf.route[pos], To: sf.route[pos+1]}
	tr.link(e).insert(&entry{
		sf: sf, bw: tr.hopBW(l, pos), pw: traffic.Weight(l), routeID: sf.key.routeID,
	})
	if tr.backtrack && pos > 0 && tr.g.HasEdge(sf.flow.Src, sf.flow.Dst) {
		direct := graph.Edge{From: sf.flow.Src, To: sf.flow.Dst}
		tr.link(direct).insert(&entry{
			sf: sf, bw: tr.hopBW(1, 0), pw: traffic.Weight(1), routeID: -1, backtrack: true,
		})
	}
}

// addUncommittedEntries queues an uncommitted source subflow once on each
// distinct candidate first-hop link. When several candidate routes share a
// first hop, the packet is considered only once on that link (paper §6,
// "Allowing Routes with Common First Hops"); we credit it with the best
// (shortest-route) weight among them and commit to that route when served.
func (tr *remaining) addUncommittedEntries(sf *subflow) {
	best := make(map[graph.Edge]int) // link -> route index with max weight
	for ri, r := range sf.flow.Routes {
		e := graph.Edge{From: r[0], To: r[1]}
		if prev, ok := best[e]; !ok || r.Hops() < sf.flow.Routes[prev].Hops() {
			best[e] = ri
		}
	}
	// Deterministic order of entry insertion.
	links := make([]graph.Edge, 0, len(best))
	for e := range best {
		links = append(links, e)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	for _, e := range links {
		ri := best[e]
		l := sf.flow.WeightLen(sf.flow.Routes[ri])
		tr.link(e).insert(&entry{
			sf: sf, bw: tr.hopBW(l, 0), pw: traffic.Weight(l), routeID: ri,
		})
	}
}

// activeEdges returns the sorted list of links with at least one queued
// packet.
func (tr *remaining) activeEdges() []graph.Edge {
	if tr.edgesDirty {
		tr.edgeList = tr.edgeList[:0]
		for e, ls := range tr.links {
			if len(ls.entries) > 0 {
				tr.edgeList = append(tr.edgeList, e)
			}
		}
		sort.Slice(tr.edgeList, func(i, j int) bool {
			if tr.edgeList[i].From != tr.edgeList[j].From {
				return tr.edgeList[i].From < tr.edgeList[j].From
			}
			return tr.edgeList[i].To < tr.edgeList[j].To
		})
		tr.edgesDirty = false
	}
	return tr.edgeList
}

// gValue computes g(i, j, α): the maximum benefit weight of α packets
// queued on the link (Procedure 2, line 4). Each packet is counted once
// even if it has entries with several candidate routes on other links.
func (tr *remaining) gValue(e graph.Edge, alpha int) int64 {
	ls := tr.links[e]
	if ls == nil {
		return 0
	}
	var total int64
	left := alpha
	for _, en := range ls.entries {
		if left == 0 {
			break
		}
		c := en.sf.count
		if c == 0 {
			continue
		}
		if c > left {
			c = left
		}
		total += int64(c) * en.bw
		left -= c
	}
	return total
}

// candidateAlphas implements Procedure 1 (SetOfAlphas): for every link, the
// prefix sums of queued packet counts at each benefit-weight class
// boundary. Values are clamped to maxAlpha and deduplicated; the result is
// sorted ascending.
func (tr *remaining) candidateAlphas(maxAlpha int) []int {
	seen := make(map[int]bool)
	for _, e := range tr.activeEdges() {
		ls := tr.links[e]
		sum := 0
		var lastBW int64 = -1
		for _, en := range ls.entries {
			if en.sf.count == 0 {
				continue
			}
			if lastBW != -1 && en.bw != lastBW && sum > 0 {
				seen[minInt(sum, maxAlpha)] = true
			}
			sum += en.sf.count
			lastBW = en.bw
		}
		if sum > 0 {
			seen[minInt(sum, maxAlpha)] = true
		}
	}
	alphas := make([]int, 0, len(seen))
	for a := range seen {
		if a > 0 {
			alphas = append(alphas, a)
		}
	}
	sort.Ints(alphas)
	return alphas
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// serveLink advances up to alpha packets over link e, honoring queue
// priority. Pass selects which entry kinds are eligible: backtrack-only
// pass runs first across the whole configuration so direct-link delivery
// takes precedence over normal advancement (paper §6). Returns packets
// served.
func (tr *remaining) serveLink(e graph.Edge, alpha int, backtrackPass bool) int {
	ls := tr.links[e]
	if ls == nil || alpha <= 0 {
		return 0
	}
	served := 0
	for _, en := range ls.entries {
		if served == alpha {
			break
		}
		if en.backtrack != backtrackPass {
			continue
		}
		sf := en.sf
		movable := sf.count - sf.frozen
		if movable <= 0 {
			continue
		}
		t := minInt(alpha-served, movable)
		sf.count -= t
		served += t
		if tr.keepTrace {
			tr.trace = append(tr.trace, servedRecord{
				Config: tr.configIdx, Link: e, Key: sf.key, RouteID: en.routeID,
				Count: t, Backtrack: en.backtrack,
			})
		}
		if en.backtrack {
			// Annul prior progress; deliver via the direct link.
			prior := sf.key.pos
			base := traffic.Weight(sf.flow.WeightLen(sf.route))
			tr.psi -= int64(t) * int64(prior) * base
			tr.hops -= t * prior
			tr.psi += int64(t) * traffic.Weight(1)
			tr.hops += t
			tr.delivered += t
			tr.pending -= t
			continue
		}
		// Normal advancement (committing uncommitted packets if needed).
		route := sf.route
		if route == nil {
			route = sf.flow.Routes[en.routeID]
		}
		tr.psi += int64(t) * en.pw
		tr.hops += t
		newPos := sf.key.pos + 1
		if newPos == len(route)-1 {
			tr.delivered += t
			tr.pending -= t
			continue
		}
		key := sfKey{flowID: sf.flow.ID, routeID: en.routeID, pos: newPos}
		dst := tr.byKey[key]
		if dst == nil {
			dst = &subflow{key: key, flow: sf.flow, route: route, count: t, frozen: t}
			tr.byKey[key] = dst
			tr.addCommittedEntry(dst)
		} else {
			dst.count += t
			dst.frozen += t
		}
		tr.touched = append(tr.touched, dst)
	}
	return served
}

// apply executes a chosen configuration against T^r: a backtrack pass over
// all links first (direct-link delivery takes priority), then normal
// advancement with each link's leftover capacity.
func (tr *remaining) apply(links []graph.Edge, alpha int) {
	servedBT := make(map[graph.Edge]int, len(links))
	if tr.backtrack {
		for _, e := range links {
			servedBT[e] = tr.serveLink(e, alpha, true)
		}
	}
	for _, e := range links {
		tr.serveLink(e, alpha-servedBT[e], false)
	}
	// Unfreeze arrivals: they may move from the next configuration on.
	for _, sf := range tr.touched {
		sf.frozen = 0
	}
	tr.touched = tr.touched[:0]
	tr.configIdx++
}

// sanity verifies internal invariants (test hook).
func (tr *remaining) sanity() error {
	total := 0
	for key, sf := range tr.byKey {
		if sf.count < 0 {
			return fmt.Errorf("core: negative count for %+v", key)
		}
		if sf.route != nil && sf.key.pos >= len(sf.route)-1 {
			return fmt.Errorf("core: subflow %+v at/past destination", key)
		}
		total += sf.count
	}
	if total != tr.pending {
		return fmt.Errorf("core: pending %d != sum of subflows %d", tr.pending, total)
	}
	return nil
}
