package core

import (
	"fmt"
	"slices"
	"sort"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// sfKey identifies a subflow of the remaining traffic T^r: packets of one
// flow that have committed to one route and sit at the same position along
// it. routeID is the index into Flow.Routes, or -1 for packets still at
// their source with the route choice open (Octopus+ only).
type sfKey struct {
	flowID  int
	routeID int
	pos     int
}

// subflow is a group of identical packets of the remaining traffic.
type subflow struct {
	key   sfKey
	flow  *traffic.Flow
	route traffic.Route // nil while uncommitted
	count int
	// frozen is the number of packets that arrived during the
	// configuration currently being applied; they may not move again until
	// the next configuration (a packet traverses at most one hop per
	// configuration in the plan bookkeeping).
	frozen int
	// homes are the link queues holding an entry for this subflow. A count
	// change invalidates exactly these links' cached summaries.
	homes []*linkState
}

// markDirty invalidates the cached summary of every queue holding one of
// the subflow's entries and stamps the change tick; called whenever the
// subflow's packet count changes.
func (tr *remaining) markDirty(sf *subflow) {
	for _, ls := range sf.homes {
		ls.dirty = true
		ls.lastTick = tr.tick
	}
}

// node returns the subflow's current node.
func (sf *subflow) node() int {
	if sf.route == nil {
		return sf.flow.Src
	}
	return sf.route[sf.key.pos]
}

// entry is one appearance of a subflow in a link's virtual output queue.
// A committed subflow has one entry (on its next-hop link) plus, with
// backtracking enabled, one on the direct source->destination link. An
// uncommitted subflow has one entry per distinct candidate first-hop link.
type entry struct {
	sf *subflow
	// bw is the per-packet benefit weight at this link (includes the
	// Octopus-e ε hop bonus); queues order by bw desc, then flow ID asc.
	bw int64
	// pw is the per-packet base ψ weight of the route this entry advances
	// the packet along (no ε), used for ψ accounting.
	pw int64
	// routeID is the route the packet commits to when served through this
	// entry (meaningful for uncommitted subflows; equals sf.key.routeID
	// otherwise).
	routeID int
	// backtrack marks a direct-link entry that annuls the packet's prior
	// multi-hop progress when served (Octopus+ §6).
	backtrack bool
}

// linkSummary caches, per link, everything the greedy loop repeatedly asks
// of the queue: prefix sums over the live (non-zero-count) entries in queue
// order, the per-entry benefit weights, and the Procedure-1 α boundaries
// (unclamped prefix counts at each benefit-weight run boundary plus the
// total). gValue becomes a binary search over prefC/prefB and
// candidateAlphas a merge of the cached alphas sets. The summary is a pure
// function of the queue contents, so rebuilding it lazily (and only for
// links whose queues changed) yields bit-identical results to the direct
// per-call walk it replaces.
type linkSummary struct {
	live   []*entry // entries with count > 0, queue order
	prefC  []int    // cumulative packet count over live
	prefB  []int64  // cumulative benefit (count·bw) over live
	bws    []int64  // benefit weight of each live entry
	alphas []int    // Procedure-1 boundaries, ascending, unclamped
}

// linkState is the priority queue of entries for one directed link.
type linkState struct {
	entries []*entry
	sum     linkSummary
	// dirty marks the summary stale. It is set single-threaded (entry
	// insertion and count changes during apply) and cleared single-threaded
	// (candidateAlphas at the start of each bestConfiguration), so the
	// parallel evaluation phase only ever reads clean summaries.
	dirty bool
	// lastTick is remaining.tick at the queue's most recent content change
	// (entry inserted or a count changed). The warm-start matcher compares
	// it against the tick of an α's previous solve to build the dirty-row
	// hint; unlike dirty it is never cleared.
	lastTick int64
}

func (ls *linkState) insert(e *entry) {
	i := sort.Search(len(ls.entries), func(i int) bool {
		o := ls.entries[i]
		if o.bw != e.bw {
			return o.bw < e.bw
		}
		if o.sf.flow.ID != e.sf.flow.ID {
			return o.sf.flow.ID > e.sf.flow.ID
		}
		return o.sf.key.pos >= e.sf.key.pos
	})
	ls.entries = append(ls.entries, nil)
	copy(ls.entries[i+1:], ls.entries[i:])
	ls.entries[i] = e
	ls.dirty = true
}

// rebuild recomputes the cached summary from the queue contents.
func (ls *linkState) rebuild() {
	s := &ls.sum
	s.live = s.live[:0]
	s.prefC = s.prefC[:0]
	s.prefB = s.prefB[:0]
	s.bws = s.bws[:0]
	s.alphas = s.alphas[:0]
	c := 0
	var b int64
	var lastBW int64 = -1
	for _, en := range ls.entries {
		if en.sf.count == 0 {
			continue
		}
		if lastBW != -1 && en.bw != lastBW && c > 0 {
			s.alphas = append(s.alphas, c)
		}
		c += en.sf.count
		b += int64(en.sf.count) * en.bw
		s.live = append(s.live, en)
		s.prefC = append(s.prefC, c)
		s.prefB = append(s.prefB, b)
		s.bws = append(s.bws, en.bw)
		lastBW = en.bw
	}
	if c > 0 {
		s.alphas = append(s.alphas, c)
	}
	ls.dirty = false
}

// summary returns the up-to-date cached summary. Callers on the parallel
// read-only path rely on candidateAlphas having cleaned every active link
// beforehand; the rebuild here only triggers on single-threaded paths
// (direct test calls, serveLink-free queries).
func (ls *linkState) summary() *linkSummary {
	if ls.dirty {
		ls.rebuild()
	}
	return &ls.sum
}

// Entries are never removed from a queue: a subflow drained now can be
// refilled later by upstream arrivals of the same flow, and its entry must
// still be present. Zero-count entries are skipped during iteration; the
// total number of entries is bounded by the number of subflows (|T|·𝒟).

// servedRecord traces one bulk packet movement for plan verification.
type servedRecord struct {
	Config    int // configuration index in the schedule
	Link      graph.Edge
	Key       sfKey
	RouteID   int
	Count     int
	Backtrack bool
}

// remaining is the remaining traffic load T^r plus the plan accounting the
// greedy loop maintains while building a schedule.
type remaining struct {
	g          *graph.Digraph
	links      map[graph.Edge]*linkState
	edgeList   []graph.Edge // sorted keys of links; rebuilt lazily
	stateList  []*linkState // links[edgeList[i]], same order; avoids map hits on the hot path
	edgesDirty bool
	byKey      map[sfKey]*subflow

	eps        int  // Octopus-e ε in 1/64 units
	multiRoute bool // Octopus+ first-hop route choice
	backtrack  bool // Octopus+ direct-link backtracking

	// Plan accounting (bookkeeping of the schedule under construction).
	psi       int64
	hops      int
	delivered int
	pending   int // packets not yet delivered

	trace     []servedRecord
	keepTrace bool
	configIdx int
	// tick counts configuration applications for change stamping: it
	// increments at the start of every apply, and every queue content
	// change stamps its link's lastTick with the current value (so a
	// post-apply tick value strictly exceeds every pre-apply stamp).
	tick int64
	touched   []*subflow // subflows with frozen packets from the current apply

	// building marks the bulk-construction phase of newRemaining: entries
	// are appended unsorted and every queue is sorted once at the end,
	// avoiding the O(n) copy-per-insert of incremental insertion.
	building bool
	// alphaBuf is the reusable merge buffer of candidateAlphas; the
	// returned slice aliases it and is valid until the next call.
	alphaBuf []int
	// lastRebuilds counts the dirty link summaries the most recent
	// candidateAlphas call rebuilt (observability only).
	lastRebuilds int
}

// newRemaining builds T^r = T.
func newRemaining(g *graph.Digraph, load *traffic.Load, eps int, multiRoute, backtrack, keepTrace bool) *remaining {
	tr := &remaining{
		g:          g,
		links:      make(map[graph.Edge]*linkState),
		byKey:      make(map[sfKey]*subflow),
		eps:        eps,
		multiRoute: multiRoute,
		backtrack:  backtrack,
		keepTrace:  keepTrace,
	}
	tr.building = true
	for i := range load.Flows {
		f := &load.Flows[i]
		tr.pending += f.Size
		if !tr.multiRoute || len(f.Routes) == 1 {
			sf := &subflow{key: sfKey{f.ID, 0, 0}, flow: f, route: f.Routes[0], count: f.Size}
			tr.byKey[sf.key] = sf
			tr.addCommittedEntry(sf)
			continue
		}
		sf := &subflow{key: sfKey{f.ID, -1, 0}, flow: f, count: f.Size}
		tr.byKey[sf.key] = sf
		tr.addUncommittedEntries(sf)
	}
	tr.building = false
	// Sort each queue once. During construction every flow contributes at
	// most one entry per link, so (bw desc, flow ID asc) is a strict total
	// order and the batch sort reproduces the incremental-insert order
	// exactly.
	for _, ls := range tr.links {
		sortEntries(ls.entries)
	}
	return tr
}

// sortEntries orders a queue by (bw desc, flow ID asc, pos asc), the order
// linkState.insert maintains incrementally.
func sortEntries(entries []*entry) {
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.bw != b.bw {
			return a.bw > b.bw
		}
		if a.sf.flow.ID != b.sf.flow.ID {
			return a.sf.flow.ID < b.sf.flow.ID
		}
		return a.sf.key.pos < b.sf.key.pos
	})
}

// hopBW returns the benefit weight of the hop at index pos of an l-hop
// route under the current ε.
func (tr *remaining) hopBW(l, pos int) int64 { return traffic.HopWeight(l, pos, tr.eps) }

func (tr *remaining) link(e graph.Edge) *linkState {
	ls := tr.links[e]
	if ls == nil {
		ls = &linkState{dirty: true}
		tr.links[e] = ls
		tr.edgesDirty = true
	}
	return ls
}

// addEntry queues en on link e and records the queue as a home of the
// subflow so count changes can invalidate its summary. During bulk
// construction the entry is appended unsorted; newRemaining sorts once.
func (tr *remaining) addEntry(e graph.Edge, en *entry) {
	ls := tr.link(e)
	if tr.building {
		ls.entries = append(ls.entries, en)
		ls.dirty = true
	} else {
		ls.insert(en)
	}
	ls.lastTick = tr.tick
	en.sf.homes = append(en.sf.homes, ls)
}

// addCommittedEntry queues a committed subflow on its next-hop link and,
// when backtracking applies, on the direct source->destination link.
func (tr *remaining) addCommittedEntry(sf *subflow) {
	l := sf.flow.WeightLen(sf.route)
	pos := sf.key.pos
	e := graph.Edge{From: sf.route[pos], To: sf.route[pos+1]}
	tr.addEntry(e, &entry{
		sf: sf, bw: tr.hopBW(l, pos), pw: traffic.Weight(l), routeID: sf.key.routeID,
	})
	if tr.backtrack && pos > 0 && tr.g.HasEdge(sf.flow.Src, sf.flow.Dst) {
		direct := graph.Edge{From: sf.flow.Src, To: sf.flow.Dst}
		tr.addEntry(direct, &entry{
			sf: sf, bw: tr.hopBW(1, 0), pw: traffic.Weight(1), routeID: -1, backtrack: true,
		})
	}
}

// addUncommittedEntries queues an uncommitted source subflow once on each
// distinct candidate first-hop link. When several candidate routes share a
// first hop, the packet is considered only once on that link (paper §6,
// "Allowing Routes with Common First Hops"); we credit it with the best
// (shortest-route) weight among them and commit to that route when served.
func (tr *remaining) addUncommittedEntries(sf *subflow) {
	best := make(map[graph.Edge]int) // link -> route index with max weight
	for ri, r := range sf.flow.Routes {
		e := graph.Edge{From: r[0], To: r[1]}
		if prev, ok := best[e]; !ok || r.Hops() < sf.flow.Routes[prev].Hops() {
			best[e] = ri
		}
	}
	// Deterministic order of entry insertion.
	links := make([]graph.Edge, 0, len(best))
	for e := range best {
		links = append(links, e)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	for _, e := range links {
		ri := best[e]
		l := sf.flow.WeightLen(sf.flow.Routes[ri])
		tr.addEntry(e, &entry{
			sf: sf, bw: tr.hopBW(l, 0), pw: traffic.Weight(l), routeID: ri,
		})
	}
}

// activeEdges returns the sorted list of links with at least one queued
// packet.
func (tr *remaining) activeEdges() []graph.Edge {
	if tr.edgesDirty {
		tr.edgeList = tr.edgeList[:0]
		for e, ls := range tr.links {
			if len(ls.entries) > 0 {
				tr.edgeList = append(tr.edgeList, e)
			}
		}
		slices.SortFunc(tr.edgeList, cmpEdge)
		tr.stateList = tr.stateList[:0]
		for _, e := range tr.edgeList {
			tr.stateList = append(tr.stateList, tr.links[e])
		}
		tr.edgesDirty = false
	}
	return tr.edgeList
}

// activeStates returns the link states of activeEdges(), index-aligned with
// it, so hot loops over the active links skip the per-edge map lookup.
func (tr *remaining) activeStates() []*linkState {
	tr.activeEdges()
	return tr.stateList
}

// gValue computes g(i, j, α): the maximum benefit weight of α packets
// queued on the link (Procedure 2, line 4). Each packet is counted once
// even if it has entries with several candidate routes on other links.
// Using the cached summary this is a binary search over the prefix counts:
// the queue walk it replaces took the top α packets in queue order, which
// is exactly "all of the first k live entries plus a partial take of entry
// k+1" for the k the search finds.
func (tr *remaining) gValue(e graph.Edge, alpha int) int64 {
	ls := tr.links[e]
	if ls == nil {
		return 0
	}
	return gValueState(ls, alpha)
}

// gValueState is gValue for an already-resolved link state (hot loops pair
// it with activeStates to avoid the map lookup per edge per α).
func gValueState(ls *linkState, alpha int) int64 {
	if alpha <= 0 {
		return 0
	}
	s := ls.summary()
	n := len(s.prefC)
	if n == 0 {
		return 0
	}
	if alpha >= s.prefC[n-1] {
		return s.prefB[n-1]
	}
	// Inline binary search for the first live entry whose cumulative count
	// reaches α (sort.Search's closure indirection costs on this path).
	lo, hi := 0, n-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.prefC[mid] >= alpha {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return s.prefB[lo] - int64(s.prefC[lo]-alpha)*s.bws[lo]
}

// candidateAlphas implements Procedure 1 (SetOfAlphas): for every link, the
// prefix sums of queued packet counts at each benefit-weight class
// boundary. Values are clamped to maxAlpha and deduplicated; the result is
// sorted ascending.
//
// The per-link boundary sets are cached in the link summaries; this merge
// also doubles as the per-iteration synchronization point that rebuilds
// every dirty summary before the parallel evaluation phase reads them. The
// returned slice aliases an internal buffer valid until the next call.
func (tr *remaining) candidateAlphas(maxAlpha int) []int {
	buf := tr.alphaBuf[:0]
	rebuilds := 0
	for _, ls := range tr.activeStates() {
		if ls.dirty {
			rebuilds++
		}
		s := ls.summary()
		for _, a := range s.alphas {
			buf = append(buf, minInt(a, maxAlpha))
		}
	}
	slices.Sort(buf)
	// Compact duplicates and drop non-positive values in place.
	out := buf[:0]
	for i, a := range buf {
		if a > 0 && (i == 0 || a != buf[i-1]) {
			out = append(out, a)
		}
	}
	tr.alphaBuf = buf
	tr.lastRebuilds = rebuilds
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// serveLink advances up to alpha packets over link e, honoring queue
// priority. Pass selects which entry kinds are eligible: backtrack-only
// pass runs first across the whole configuration so direct-link delivery
// takes precedence over normal advancement (paper §6). Returns packets
// served.
func (tr *remaining) serveLink(e graph.Edge, alpha int, backtrackPass bool) int {
	ls := tr.links[e]
	if ls == nil || alpha <= 0 {
		return 0
	}
	served := 0
	for _, en := range ls.entries {
		if served == alpha {
			break
		}
		if en.backtrack != backtrackPass {
			continue
		}
		sf := en.sf
		movable := sf.count - sf.frozen
		if movable <= 0 {
			continue
		}
		t := minInt(alpha-served, movable)
		sf.count -= t
		tr.markDirty(sf)
		served += t
		if tr.keepTrace {
			tr.trace = append(tr.trace, servedRecord{
				Config: tr.configIdx, Link: e, Key: sf.key, RouteID: en.routeID,
				Count: t, Backtrack: en.backtrack,
			})
		}
		if en.backtrack {
			// Annul prior progress; deliver via the direct link.
			prior := sf.key.pos
			base := traffic.Weight(sf.flow.WeightLen(sf.route))
			tr.psi -= int64(t) * int64(prior) * base
			tr.hops -= t * prior
			tr.psi += int64(t) * traffic.Weight(1)
			tr.hops += t
			tr.delivered += t
			tr.pending -= t
			continue
		}
		// Normal advancement (committing uncommitted packets if needed).
		route := sf.route
		if route == nil {
			route = sf.flow.Routes[en.routeID]
		}
		tr.psi += int64(t) * en.pw
		tr.hops += t
		newPos := sf.key.pos + 1
		if newPos == len(route)-1 {
			tr.delivered += t
			tr.pending -= t
			continue
		}
		key := sfKey{flowID: sf.flow.ID, routeID: en.routeID, pos: newPos}
		dst := tr.byKey[key]
		if dst == nil {
			dst = &subflow{key: key, flow: sf.flow, route: route, count: t, frozen: t}
			tr.byKey[key] = dst
			tr.addCommittedEntry(dst)
		} else {
			dst.count += t
			dst.frozen += t
			tr.markDirty(dst)
		}
		tr.touched = append(tr.touched, dst)
	}
	return served
}

// apply executes a chosen configuration against T^r: a backtrack pass over
// all links first (direct-link delivery takes priority), then normal
// advancement with each link's leftover capacity.
func (tr *remaining) apply(links []graph.Edge, alpha int) {
	tr.tick++
	servedBT := make(map[graph.Edge]int, len(links))
	if tr.backtrack {
		for _, e := range links {
			servedBT[e] = tr.serveLink(e, alpha, true)
		}
	}
	for _, e := range links {
		tr.serveLink(e, alpha-servedBT[e], false)
	}
	// Unfreeze arrivals: they may move from the next configuration on.
	for _, sf := range tr.touched {
		sf.frozen = 0
	}
	tr.touched = tr.touched[:0]
	tr.configIdx++
}

// sanity verifies internal invariants (test hook).
func (tr *remaining) sanity() error {
	total := 0
	for key, sf := range tr.byKey {
		if sf.count < 0 {
			return fmt.Errorf("core: negative count for %+v", key)
		}
		if sf.route != nil && sf.key.pos >= len(sf.route)-1 {
			return fmt.Errorf("core: subflow %+v at/past destination", key)
		}
		total += sf.count
	}
	if total != tr.pending {
		return fmt.Errorf("core: pending %d != sum of subflows %d", tr.pending, total)
	}
	return nil
}
