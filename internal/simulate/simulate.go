// Package simulate is the packet-level synchronous network simulator used
// to measure every result in this repository, mirroring the paper's §8
// ("a simple custom packet-level simulator that routes traffic
// synchronously, one packet transmission in each time slot over each active
// link").
//
// Given a fabric, a traffic load with fixed routes, and a configuration
// schedule, Run replays the schedule slot by slot: packets wait in
// virtual output queues (VOQs) at each node, are prioritized on every
// active link first by packet weight and then by flow ID (the paper's
// packet-prioritizing scheme), and advance one hop per transmission. The
// simulator is independent of the schedulers, so it serves as the
// measurement authority: scheduler bookkeeping is cross-checked against it
// in tests.
package simulate

import (
	"fmt"
	"sort"

	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/obs/flight"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

// Options configures a simulation run.
type Options struct {
	// MultiHop allows a packet to traverse several hops within a single
	// configuration (the relaxation of the paper's §5): a packet that
	// crosses a link at slot t may cross the next link of its route from
	// slot t+1 if that link is active.
	MultiHop bool

	// Ports is the number of input and output ports per node (the K-ports
	// model of §7); 0 or 1 selects the standard single-port model.
	Ports int

	// Window, if positive, caps the replayed slots: each configuration
	// costs its reconfiguration delay followed by its duration, and replay
	// stops once the window is exhausted (the duration of the final
	// configuration is truncated to fit).
	Window int

	// RouteChoice optionally selects which candidate route each flow uses
	// (by flow ID -> index into Flow.Routes). Flows not present use route
	// 0. The Octopus-random baseline resolves multi-route loads this way.
	RouteChoice map[int]int

	// Epsilon64 makes VOQs prioritize packets by the controller-assigned
	// Octopus-e hop weight (1 + x·ε) instead of the plain packet weight,
	// matching a scheduler run with the same core.Options.Epsilon64. The
	// ψ metric always uses the plain weight.
	Epsilon64 int

	// SkipValidate skips schedule validation (useful when the caller has
	// already validated, or intentionally replays a schedule over a larger
	// fabric, as the RotorNet comparison does).
	SkipValidate bool

	// TrackBuffers records in-network buffering: after every
	// configuration the simulator measures how many packets sit at
	// intermediate nodes (past their source, short of their destination)
	// and reports the peaks in Result.MaxNodeBuffer / MaxTotalBuffer.
	// Multi-hop circuit scheduling trades switch-buffer memory for
	// throughput; this quantifies the cost.
	TrackBuffers bool

	// TrackFlows records per-flow delivery counts in Result.FlowDelivered.
	TrackFlows bool

	// Redundancy identifies proactive copy groups in the load (see
	// traffic.ExpandRedundant): delivery is deduplicated per group — a
	// packet counts once, at its first copy's arrival, so a group
	// contributes max-over-copies delivered packets — into
	// Result.UniqueDelivered / UniqueTotal, and the ψ and packet-hops spent
	// moving non-primary copies are charged to Result.DupPsi / DupHops.
	// nil (or an empty group map) leaves Unique* mirroring the raw metrics.
	Redundancy *traffic.Redundancy

	// Faults injects a deterministic failure trace (see internal/fault):
	// a link that is down — or has a down endpoint — at a slot cannot
	// carry packets during that slot, so packets wait at their current
	// node rather than being silently delivered over a dead link, and
	// every lost slot is accounted in Result.FailedLinkSlots. The trace's
	// delta jitter extends the reconfiguration delay preceding the k-th
	// configuration. Nil replays failure-free.
	Faults *fault.Trace

	// Obs receives per-configuration replay metrics and "sim.config" /
	// "sim.done" trace events. nil disables instrumentation; the measured
	// Result is identical either way.
	Obs *obs.Observer

	// Flight receives per-flow lifecycle events for tracked flows: hop
	// advances, deliveries, stranded packets, and redundant-copy dedup.
	// Epochs in the recorded events are global slot numbers (the replay's
	// time unit). nil disables recording; like Obs, the recorder is
	// strictly read-only — the measured Result is identical either way.
	Flight *flight.Recorder
}

// Result reports the outcome of a simulation.
type Result struct {
	TotalPackets    int   // packets in the offered load
	Delivered       int   // packets that reached their final destination
	Hops            int   // total packet-hops traversed
	Psi             int64 // Σ hops(p)·w_p, in traffic.WeightScale units
	ActiveLinkSlots int64 // Σ αₖ·|Mₖ| over replayed configurations
	SlotsUsed       int   // total slots consumed, including reconfigurations
	Configs         int   // configurations (fully or partially) replayed

	// MaxNodeBuffer / MaxTotalBuffer are the peak per-node and aggregate
	// in-network buffer occupancies observed at configuration boundaries
	// (0 unless Options.TrackBuffers).
	MaxNodeBuffer  int
	MaxTotalBuffer int

	// FlowDelivered maps flow ID to delivered packets (nil unless
	// Options.TrackFlows).
	FlowDelivered map[int]int

	// FailedLinkSlots counts scheduled active link-slots lost to failures:
	// slots during which a configuration had a link active but the link or
	// one of its endpoints was down (always 0 without Options.Faults).
	FailedLinkSlots int64

	// Stranded counts undelivered packets that ended the replay at an
	// intermediate node: past their source, short of their destination.
	Stranded int

	// UniqueDelivered / UniqueTotal are the redundancy-deduplicated
	// delivery metrics (see Options.Redundancy): duplicate copies do not
	// add to the offered total, and a copy group counts each packet once,
	// at its first copy's arrival. They mirror Delivered / TotalPackets
	// when no redundancy is configured.
	UniqueDelivered int
	UniqueTotal     int

	// DupHops and DupPsi are the packet-hops and ψ spent moving
	// non-primary redundant copies: the overhead the provisioning costs
	// (always 0 without Options.Redundancy).
	DupHops int
	DupPsi  int64
}

// UniqueDeliveredFraction returns UniqueDelivered / UniqueTotal (0 for
// empty loads).
func (r *Result) UniqueDeliveredFraction() float64 {
	if r.UniqueTotal == 0 {
		return 0
	}
	return float64(r.UniqueDelivered) / float64(r.UniqueTotal)
}

// DeliveredFraction returns Delivered / TotalPackets (0 for empty loads).
func (r *Result) DeliveredFraction() float64 {
	if r.TotalPackets == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.TotalPackets)
}

// Utilization returns the paper's link-utilization metric: packet-hops
// traversed divided by active link-slots (0 if no link was ever active).
func (r *Result) Utilization() float64 {
	if r.ActiveLinkSlots == 0 {
		return 0
	}
	return float64(r.Hops) / float64(r.ActiveLinkSlots)
}

// DeliveredOfPsi returns delivered packets as a fraction of the objective
// value ψ expressed in packet equivalents (ψ/WeightScale), the metric of
// the paper's Fig 7(a). Returns 0 when ψ is 0.
func (r *Result) DeliveredOfPsi() float64 {
	if r.Psi == 0 {
		return 0
	}
	return float64(r.Delivered) * float64(traffic.WeightScale) / float64(r.Psi)
}

// group is an aggregated set of identical packets: same flow, same route,
// same current position. Packets in a group are interchangeable.
type group struct {
	flowID int
	route  traffic.Route
	wlen   int   // hop count the packet weight derives from
	weight int64 // per-packet ψ weight of the chosen route
	prio   int64 // per-packet queueing priority (ε-adjusted hop weight)
	pos    int   // current node is route[pos]
	count  int
	avail  int  // first global slot at which these packets may move
	grp    int  // redundancy group primary flow ID (-1 when ungrouped)
	dup    bool // non-primary redundant copy: ψ/hops charged as overhead
}

// linkQueue is the VOQ holding packets at a node whose next hop uses a
// specific link, ordered by the paper's priority scheme: weight descending,
// then flow ID ascending.
type linkQueue struct {
	groups []*group
}

func (q *linkQueue) insert(g *group) {
	i := sort.Search(len(q.groups), func(i int) bool {
		o := q.groups[i]
		if o.prio != g.prio {
			return o.prio < g.prio
		}
		return o.flowID >= g.flowID
	})
	// Merge with an existing group for the same flow when availability
	// allows (same avail only, to keep slot semantics exact).
	if i < len(q.groups) && q.groups[i].flowID == g.flowID && q.groups[i].pos == g.pos && q.groups[i].avail == g.avail {
		q.groups[i].count += g.count
		return
	}
	q.groups = append(q.groups, nil)
	copy(q.groups[i+1:], q.groups[i:])
	q.groups[i] = g
}

// state is the mutable simulation state.
type state struct {
	g          *graph.Digraph
	eps        int
	trackFlows bool
	queues     map[graph.Edge]*linkQueue
	flight     *flight.Recorder
	red        *traffic.Redundancy
	// copyDelivered tracks per-copy delivery for grouped flows only, so
	// finishRedundancy can deduplicate per group.
	copyDelivered map[int]int
	dupTotal      int // packets offered by non-primary copies
	res           Result
}

func newState(g *graph.Digraph, load *traffic.Load, opt Options) (*state, error) {
	st := &state{g: g, eps: opt.Epsilon64, trackFlows: opt.TrackFlows, queues: make(map[graph.Edge]*linkQueue), flight: opt.Flight}
	if opt.TrackFlows {
		st.res.FlowDelivered = make(map[int]int)
	}
	if !opt.Redundancy.Empty() {
		st.red = opt.Redundancy
		st.copyDelivered = make(map[int]int)
	}
	for i := range load.Flows {
		f := &load.Flows[i]
		ri := opt.RouteChoice[f.ID]
		if ri < 0 || ri >= len(f.Routes) {
			return nil, fmt.Errorf("simulate: flow %d route choice %d out of range", f.ID, ri)
		}
		r := f.Routes[ri]
		st.res.TotalPackets += f.Size
		grp, dup := -1, false
		if p, ok := st.red.GroupOf(f.ID); ok {
			grp, dup = p, p != f.ID
			if dup {
				st.dupTotal += f.Size
			}
		}
		st.enqueue(&group{
			flowID: f.ID,
			route:  r,
			wlen:   f.WeightLen(r),
			weight: traffic.Weight(f.WeightLen(r)),
			pos:    0,
			count:  f.Size,
			avail:  0,
			grp:    grp,
			dup:    dup,
		})
	}
	return st, nil
}

// enqueue places a group into the VOQ for its next hop, assigning its
// queueing priority for the upcoming hop. Groups whose position is the
// final destination are never enqueued.
func (st *state) enqueue(g *group) {
	g.prio = traffic.HopWeight(g.wlen, g.pos, st.eps)
	e := graph.Edge{From: g.route[g.pos], To: g.route[g.pos+1]}
	q := st.queues[e]
	if q == nil {
		q = &linkQueue{}
		st.queues[e] = q
	}
	q.insert(g)
}

// serve transmits up to want packets over link e, considering only packets
// available at or before slot avail. Crossed packets become available again
// at slot nextAvail. Returns the number of packets transmitted.
func (st *state) serve(e graph.Edge, want, availBy, nextAvail int) int {
	q := st.queues[e]
	if q == nil || want <= 0 {
		return 0
	}
	served := 0
	for i := 0; i < len(q.groups) && served < want; i++ {
		g := q.groups[i]
		if g.avail > availBy || g.count == 0 {
			continue
		}
		take := want - served
		if take > g.count {
			take = g.count
		}
		g.count -= take
		served += take
		st.res.Hops += take
		st.res.Psi += int64(take) * g.weight
		if g.dup {
			st.res.DupHops += take
			st.res.DupPsi += int64(take) * g.weight
		}
		if st.flight != nil && st.flight.Tracks(int64(g.flowID)) {
			st.flight.Hop(int64(g.flowID), availBy, g.pos+1, len(g.route), int64(take))
		}
		if g.pos+1 == len(g.route)-1 {
			st.res.Delivered += take
			if st.trackFlows {
				st.res.FlowDelivered[g.flowID] += take
			}
			if g.grp >= 0 {
				st.copyDelivered[g.flowID] += take
			}
			if st.flight != nil {
				st.flight.Delivered(int64(g.flowID), availBy, int64(take))
			}
		} else {
			st.enqueue(&group{
				flowID: g.flowID,
				route:  g.route,
				wlen:   g.wlen,
				weight: g.weight,
				pos:    g.pos + 1,
				count:  take,
				avail:  nextAvail,
				grp:    g.grp,
				dup:    g.dup,
			})
		}
	}
	// Compact drained groups occasionally to keep queues small.
	if served > 0 {
		live := q.groups[:0]
		for _, g := range q.groups {
			if g.count > 0 {
				live = append(live, g)
			}
		}
		q.groups = live
	}
	return served
}

// Run replays sch over fabric g carrying load and returns the measured
// result. The load must have fixed routes (see Options.RouteChoice for
// multi-route loads).
func Run(g *graph.Digraph, load *traffic.Load, sch *schedule.Schedule, opt Options) (*Result, error) {
	ports := opt.Ports
	if ports < 1 {
		ports = 1
	}
	if !opt.SkipValidate {
		// Structural validation only: the replay loop itself enforces the
		// window by truncating, so an over-long schedule is not an error.
		if err := sch.Validate(g, 0, ports); err != nil {
			return nil, err
		}
		if err := load.Validate(g); err != nil {
			return nil, err
		}
	}
	st, err := newState(g, load, opt)
	if err != nil {
		return nil, err
	}

	var cur *fault.Cursor
	if opt.Faults != nil {
		cur = opt.Faults.Cursor()
	}
	// Pre-bound instruments; all nil (pure no-ops) when opt.Obs is nil.
	cfgCount := opt.Obs.Counter("octopus_sim_configs_total")
	delivCount := opt.Obs.Counter("octopus_sim_delivered_total")
	hopCount := opt.Obs.Counter("octopus_sim_hops_total")
	lostCount := opt.Obs.Counter("octopus_sim_failed_link_slots_total")
	tracer := opt.Obs.Tracer()
	slot := 0 // global slot counter
	for k, cfg := range sch.Configs {
		// Reconfiguration delay (plus any trace jitter) precedes each
		// configuration.
		delta := sch.Delta + opt.Faults.Jitter(k)
		if opt.Window > 0 && slot+delta >= opt.Window {
			break
		}
		slot += delta
		alpha := cfg.Alpha
		if opt.Window > 0 && slot+alpha > opt.Window {
			alpha = opt.Window - slot
		}
		if alpha <= 0 {
			break
		}
		st.res.Configs++
		st.res.ActiveLinkSlots += int64(alpha) * int64(len(cfg.Links))
		delivered0, hops0, lost0 := st.res.Delivered, st.res.Hops, st.res.FailedLinkSlots

		if opt.MultiHop {
			st.runMultiHop(cfg.Links, slot, alpha, cur)
		} else if cur == nil {
			// Bulk mode: packets arriving during this configuration
			// cannot move again until the next one, so each link simply
			// serves up to alpha packets available at the start.
			for _, e := range cfg.Links {
				st.serve(e, alpha, slot, slot+alpha)
			}
		} else {
			st.runBulkFaulty(cfg.Links, slot, alpha, cur)
		}
		slot += alpha
		if opt.TrackBuffers {
			st.measureBuffers()
		}
		cfgCount.Inc()
		delivCount.Add(int64(st.res.Delivered - delivered0))
		hopCount.Add(int64(st.res.Hops - hops0))
		lostCount.Add(st.res.FailedLinkSlots - lost0)
		tracer.Emit("sim.config",
			obs.I("idx", int64(k)),
			obs.I("slot", int64(slot)),
			obs.I("alpha", int64(alpha)),
			obs.I("links", int64(len(cfg.Links))),
			obs.I("delivered", int64(st.res.Delivered-delivered0)),
			obs.I("hops", int64(st.res.Hops-hops0)),
			obs.I("lost_slots", st.res.FailedLinkSlots-lost0),
		)
	}
	st.res.SlotsUsed = slot
	st.countStranded()
	st.finishRedundancy()
	if opt.Obs.Enabled() {
		opt.Obs.Gauge("octopus_sim_stranded").Set(int64(st.res.Stranded))
		tracer.Emit("sim.done",
			obs.I("configs", int64(st.res.Configs)),
			obs.I("delivered", int64(st.res.Delivered)),
			obs.I("total", int64(st.res.TotalPackets)),
			obs.I("hops", int64(st.res.Hops)),
			obs.I("psi", st.res.Psi),
			obs.I("stranded", int64(st.res.Stranded)),
			obs.I("slots_used", int64(st.res.SlotsUsed)),
		)
	}
	return &st.res, nil
}

// runBulkFaulty is bulk mode under a failure trace: a link can carry at most
// one packet per slot, so its bulk service shrinks to the number of slots in
// the configuration during which it (and both endpoints) are up. Crossed
// packets still become available only at the next configuration, exactly as
// in the failure-free bulk mode.
func (st *state) runBulkFaulty(links []graph.Edge, start, alpha int, cur *fault.Cursor) {
	end := start + alpha
	up := make([]int, len(links))
	for seg := start; seg < end; {
		cur.AdvanceTo(seg)
		segEnd := end
		if nc := cur.NextChange(); nc < segEnd {
			segEnd = nc
		}
		if cur.AnyDown() {
			for i, e := range links {
				if cur.LinkUsable(e) {
					up[i] += segEnd - seg
				}
			}
		} else {
			for i := range links {
				up[i] += segEnd - seg
			}
		}
		seg = segEnd
	}
	for i, e := range links {
		st.res.FailedLinkSlots += int64(alpha - up[i])
		st.serve(e, up[i], start, start+alpha)
	}
}

// finishRedundancy fills the deduplicated delivery metrics: without
// redundancy they mirror the raw ones; with it, duplicate copies leave the
// offered total and each group counts max-over-copies delivered packets —
// the packets whose first copy arrived, counted once.
func (st *state) finishRedundancy() {
	st.res.UniqueTotal = st.res.TotalPackets - st.dupTotal
	st.res.UniqueDelivered = st.res.Delivered
	if st.red.Empty() {
		return
	}
	members := st.red.Members()
	// Deterministic group order so flight journals are reproducible.
	grps := make([]int, 0, len(members))
	for grp := range members {
		grps = append(grps, grp)
	}
	sort.Ints(grps)
	for _, grp := range grps {
		sum, max := 0, 0
		for _, id := range members[grp] {
			d := st.copyDelivered[id]
			sum += d
			if d > max {
				max = d
			}
		}
		st.res.UniqueDelivered -= sum - max
		if st.flight != nil && sum > max {
			st.flight.Dedup(int64(grp), st.res.SlotsUsed, int64(sum-max))
		}
	}
}

// countStranded records the packets left at intermediate nodes when the
// replay ended: undelivered traffic past its source but short of its
// destination.
func (st *state) countStranded() {
	var stranded []*group
	for _, q := range st.queues {
		for _, gr := range q.groups {
			if gr.pos > 0 {
				st.res.Stranded += gr.count
				if st.flight != nil && st.flight.Tracks(int64(gr.flowID)) {
					stranded = append(stranded, gr)
				}
			}
		}
	}
	// st.queues is a map: sort so flight journals are reproducible.
	sort.Slice(stranded, func(i, j int) bool {
		if stranded[i].flowID != stranded[j].flowID {
			return stranded[i].flowID < stranded[j].flowID
		}
		return stranded[i].pos < stranded[j].pos
	})
	for _, gr := range stranded {
		st.flight.Stranded(int64(gr.flowID), st.res.SlotsUsed, gr.pos, int64(gr.count))
	}
}

// measureBuffers records the in-network buffer occupancy at a
// configuration boundary: packets sitting at a node that is neither their
// source nor their destination.
func (st *state) measureBuffers() {
	perNode := make(map[int]int)
	total := 0
	for _, q := range st.queues {
		for _, g := range q.groups {
			if g.count == 0 || g.pos == 0 {
				continue
			}
			perNode[g.route[g.pos]] += g.count
			total += g.count
		}
	}
	for _, c := range perNode {
		if c > st.res.MaxNodeBuffer {
			st.res.MaxNodeBuffer = c
		}
	}
	if total > st.res.MaxTotalBuffer {
		st.res.MaxTotalBuffer = total
	}
}

// runMultiHop replays one configuration slot by slot, letting packets chain
// across consecutive active links with a one-slot switching latency. With a
// fault cursor, links that are down at a slot serve nothing that slot and
// the lost slot is accounted.
func (st *state) runMultiHop(links []graph.Edge, start, alpha int, cur *fault.Cursor) {
	es := append([]graph.Edge(nil), links...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	for s := 0; s < alpha; s++ {
		now := start + s
		anyDown := false
		if cur != nil {
			cur.AdvanceTo(now)
			anyDown = cur.AnyDown()
		}
		moved := 0
		for _, e := range es {
			if anyDown && !cur.LinkUsable(e) {
				st.res.FailedLinkSlots++
				continue
			}
			moved += st.serve(e, 1, now, now+1)
		}
		if moved == 0 {
			// Nothing can move now; nothing in flight either (any packet
			// that crossed became available the next slot, but none
			// crossed). Unless a failure event ahead can change link
			// availability, the remaining slots are idle.
			if cur == nil || (!anyDown && cur.NextChange() >= start+alpha) {
				break
			}
		}
	}
}
