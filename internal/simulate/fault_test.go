package simulate

import (
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/core"
	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// TestEmptyTraceEquivalence is the satellite property for the simulator:
// replaying with a nil fault trace and with an empty fault trace must be
// bit-for-bit identical, in both bulk and multi-hop modes.
func TestEmptyTraceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		inst := verify.RandomInstance(rng).SingleRoute()
		if len(inst.Load.Flows) == 0 {
			continue
		}
		for _, multihop := range []bool{false, true} {
			s, err := core.New(inst.G, inst.Load, core.Options{
				Window: inst.Window, Delta: inst.Delta, MultiHop: multihop,
			})
			if err != nil {
				t.Fatal(err)
			}
			plan, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			base := Options{Window: inst.Window, MultiHop: multihop}
			want, err := Run(inst.G, inst.Load, plan.Schedule, base)
			if err != nil {
				t.Fatal(err)
			}
			withEmpty := base
			withEmpty.Faults = &fault.Trace{}
			got, err := Run(inst.G, inst.Load, plan.Schedule, withEmpty)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d multihop=%v: empty-trace result diverges:\n%+v\n%+v",
					trial, multihop, want, got)
			}
			if got.FailedLinkSlots != 0 {
				t.Fatalf("trial %d: failure slots without failures: %d", trial, got.FailedLinkSlots)
			}
		}
	}
}

// TestFailedLinkStrandsPackets replays a fixed schedule over a trace that
// kills the second hop: packets must pile up at the intermediate node, never
// be silently delivered, and every lost slot must be accounted.
func TestFailedLinkStrandsPackets(t *testing.T) {
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 4, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
	}}
	sch := &schedule.Schedule{Delta: 2, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 4},
		{Links: []graph.Edge{{From: 1, To: 2}}, Alpha: 4},
	}}
	// Failure-free: everything delivers.
	clean, err := Run(g, load, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Delivered != 4 || clean.Stranded != 0 {
		t.Fatalf("clean replay delivered %d stranded %d", clean.Delivered, clean.Stranded)
	}
	// Link 1->2 is down for the whole second configuration.
	tr := &fault.Trace{Events: []fault.Event{{At: 0, Kind: fault.LinkDown, From: 1, To: 2}}}
	res, err := Run(g, load, sch, Options{Faults: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Fatalf("delivered %d over a dead link", res.Delivered)
	}
	if res.Stranded != 4 {
		t.Fatalf("stranded %d, want 4 at node 1", res.Stranded)
	}
	if res.Hops != 4 {
		t.Fatalf("hops %d, want 4 (first hop only)", res.Hops)
	}
	if res.FailedLinkSlots != 4 {
		t.Fatalf("failed link-slots %d, want 4", res.FailedLinkSlots)
	}
}

// TestMidConfigRecovery brings a link back up in the middle of a
// configuration: only the up-slots carry packets, in both modes.
func TestMidConfigRecovery(t *testing.T) {
	g := graph.Complete(2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	sch := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 10},
	}}
	// Config occupies slots [1, 11); the link is down for slots [1, 7).
	tr := &fault.Trace{Events: []fault.Event{
		{At: 0, Kind: fault.LinkDown, From: 0, To: 1},
		{At: 7, Kind: fault.LinkUp, From: 0, To: 1},
	}}
	for _, multihop := range []bool{false, true} {
		res, err := Run(g, load, sch, Options{Faults: tr, MultiHop: multihop})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != 4 {
			t.Fatalf("multihop=%v: delivered %d, want 4 (slots 7..10)", multihop, res.Delivered)
		}
		if res.FailedLinkSlots != 6 {
			t.Fatalf("multihop=%v: failed link-slots %d, want 6", multihop, res.FailedLinkSlots)
		}
	}
}

// TestNodeDownBlocksAllItsLinks fails a node mid-replay: links into and out
// of it stop carrying traffic.
func TestNodeDownBlocksAllItsLinks(t *testing.T) {
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 6, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 6},
	}}
	tr := &fault.Trace{Events: []fault.Event{{At: 3, Kind: fault.NodeDown, Node: 1}}}
	res, err := Run(g, load, sch, Options{Faults: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 {
		t.Fatalf("delivered %d, want 3 (node 1 died at slot 3)", res.Delivered)
	}
}

// TestDeltaJitterConsumesWindow extends reconfigurations with trace jitter:
// the stretched delays push later configurations past the window.
func TestDeltaJitterConsumesWindow(t *testing.T) {
	g := graph.Complete(2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	sch := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 5},
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 5},
	}}
	clean, err := Run(g, load, sch, Options{Window: 12})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Delivered != 10 {
		t.Fatalf("clean delivered %d, want 10", clean.Delivered)
	}
	// Jitter of 6 on the second reconfiguration leaves no room for its
	// configuration inside the window.
	tr := &fault.Trace{DeltaJitter: []int{0, 6}}
	res, err := Run(g, load, sch, Options{Window: 12, Faults: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 5 || res.Configs != 1 {
		t.Fatalf("jittered replay delivered %d over %d configs, want 5 over 1", res.Delivered, res.Configs)
	}
}
