package simulate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// randomScenario builds a random small fabric, load, and schedule.
func randomScenario(seed int64) (*graph.Digraph, *traffic.Load, *schedule.Schedule) {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(6)
	g := graph.Complete(n)
	load := &traffic.Load{}
	nflows := 1 + rng.Intn(6)
	for f := 0; f < nflows; f++ {
		src := rng.Intn(n)
		dst := (src + 1 + rng.Intn(n-1)) % n
		hops := 1 + rng.Intn(2)
		route, ok := traffic.RandomRoute(g, src, dst, hops, rng)
		if !ok {
			continue
		}
		load.Flows = append(load.Flows, traffic.Flow{
			ID: f + 1, Size: 1 + rng.Intn(20), Src: src, Dst: dst,
			Routes: []traffic.Route{route},
		})
	}
	sch := &schedule.Schedule{Delta: rng.Intn(4)}
	nconfigs := rng.Intn(6)
	for c := 0; c < nconfigs; c++ {
		var links []graph.Edge
		usedF := map[int]bool{}
		usedT := map[int]bool{}
		for tries := 0; tries < n; tries++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j && !usedF[i] && !usedT[j] {
				links = append(links, graph.Edge{From: i, To: j})
				usedF[i] = true
				usedT[j] = true
			}
		}
		if len(links) == 0 {
			continue
		}
		sch.Configs = append(sch.Configs, schedule.Configuration{Links: links, Alpha: 1 + rng.Intn(15)})
	}
	return g, load, sch
}

// Property: basic conservation and metric sanity on random scenarios, in
// both bulk and multi-hop replay modes.
func TestSimulatorInvariantsProperty(t *testing.T) {
	f := func(seed int64, multihop bool) bool {
		g, load, sch := randomScenario(seed)
		if len(load.Flows) == 0 {
			return true
		}
		res, err := Run(g, load, sch, Options{MultiHop: multihop})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		total := load.TotalPackets()
		if res.TotalPackets != total {
			return false
		}
		if res.Delivered < 0 || res.Delivered > total {
			return false
		}
		if res.Hops < res.Delivered { // a delivered packet crossed >= 1 hop
			return false
		}
		if res.Psi < 0 || res.Psi > int64(total)*traffic.WeightScale {
			return false
		}
		if res.Utilization() < 0 || res.Utilization() > 1.000001 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: multi-hop replay never delivers less than bulk replay of the
// same schedule (chaining only adds opportunities).
func TestMultiHopDominatesBulkProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, load, sch := randomScenario(seed)
		if len(load.Flows) == 0 {
			return true
		}
		bulk, err := Run(g, load, sch, Options{})
		if err != nil {
			return false
		}
		multi, err := Run(g, load, sch, Options{MultiHop: true})
		if err != nil {
			return false
		}
		return multi.Hops >= bulk.Hops && multi.Psi >= bulk.Psi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: growing the window never decreases delivery (prefix replay).
func TestWindowMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, load, sch := randomScenario(seed)
		if len(load.Flows) == 0 || len(sch.Configs) == 0 {
			return true
		}
		prev := -1
		for _, w := range []int{5, 10, 20, 40, 80, 0} {
			res, err := Run(g, load, sch, Options{Window: w})
			if err != nil {
				return false
			}
			if res.Delivered < prev {
				return false
			}
			prev = res.Delivered
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the independent validator replay in internal/verify agrees with
// the simulator on every metric, in every mode combination — two separate
// implementations of the replay semantics differentially tested.
func TestValidatorAgreesWithSimulatorProperty(t *testing.T) {
	f := func(seed int64, multihop bool, eps uint8) bool {
		g, load, sch := randomScenario(seed)
		if len(load.Flows) == 0 {
			return true
		}
		opts := Options{MultiHop: multihop, Epsilon64: int(eps % 32)}
		sim, err := Run(g, load, sch, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		_, err = verify.Schedule(g, load, sch, verify.Options{
			MultiHop:  opts.MultiHop,
			Epsilon64: opts.Epsilon64,
			Claim:     &verify.Claim{Delivered: sim.Delivered, Hops: sim.Hops, Psi: sim.Psi},
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: replay is deterministic.
func TestReplayDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, load, sch := randomScenario(seed)
		if len(load.Flows) == 0 {
			return true
		}
		a, err1 := Run(g, load, sch, Options{MultiHop: true, TrackBuffers: true})
		b, err2 := Run(g, load, sch, Options{MultiHop: true, TrackBuffers: true})
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return a.Delivered == b.Delivered && a.Hops == b.Hops && a.Psi == b.Psi &&
			a.SlotsUsed == b.SlotsUsed && a.MaxNodeBuffer == b.MaxNodeBuffer &&
			a.MaxTotalBuffer == b.MaxTotalBuffer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
