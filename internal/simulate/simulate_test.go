package simulate

import (
	"testing"

	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

// example1 builds the paper's Figure 1 instance: nodes a,b,c,d = 0,1,2,3;
// flows (a,c)=100 pkts via a->b->c, (c,a)=50 via c->b->a, (d,b)=50 via
// d->a->b; fabric edges (d,a),(a,b),(c,b),(b,a),(b,c); Δ=0, W=300.
func example1() (*graph.Digraph, *traffic.Load) {
	const a, b, c, d = 0, 1, 2, 3
	g := graph.New(4)
	g.AddEdge(d, a)
	g.AddEdge(a, b)
	g.AddEdge(c, b)
	g.AddEdge(b, a)
	g.AddEdge(b, c)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 100, Src: a, Dst: c, Routes: []traffic.Route{{a, b, c}}},
		{ID: 2, Size: 50, Src: c, Dst: a, Routes: []traffic.Route{{c, b, a}}},
		{ID: 3, Size: 50, Src: d, Dst: b, Routes: []traffic.Route{{d, a, b}}},
	}}
	return g, load
}

func TestPaperExample1GivenSolution(t *testing.T) {
	const a, b, c, d = 0, 1, 2, 3
	g, load := example1()
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: d, To: a}}, Alpha: 50},  // M1
		{Links: []graph.Edge{{From: a, To: b}}, Alpha: 100}, // M2
		{Links: []graph.Edge{{From: c, To: b}}, Alpha: 50},  // M3
		{Links: []graph.Edge{{From: b, To: a}}, Alpha: 50},  // M4
		{Links: []graph.Edge{{From: a, To: b}}, Alpha: 50},  // M5
	}}
	res, err := Run(g, load, sch, Options{Window: 300})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: total delivered is 100, ψ = 150 (in unit-weight packets).
	if res.Delivered != 100 {
		t.Fatalf("Delivered = %d, want 100", res.Delivered)
	}
	if res.Psi != 150*traffic.WeightScale {
		t.Fatalf("Psi = %d, want %d", res.Psi, 150*traffic.WeightScale)
	}
	if res.Hops != 300 {
		t.Fatalf("Hops = %d, want 300", res.Hops)
	}
	if res.TotalPackets != 200 {
		t.Fatalf("TotalPackets = %d", res.TotalPackets)
	}
	// 100 of the 200 (a,c)+(d,b)... flow-ID priority: the (a,c) flow (lower
	// ID) takes the M2 slots, so the packets left undelivered are the 100
	// (a,c) packets stranded at b. Utilization: 300 hops / 300 link-slots.
	if res.Utilization() != 1.0 {
		t.Fatalf("Utilization = %f, want 1", res.Utilization())
	}
}

func TestPaperExample1OptimalSolution(t *testing.T) {
	const a, b, c, d = 0, 1, 2, 3
	g, load := example1()
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: d, To: a}, {From: c, To: b}}, Alpha: 50}, // M1∪M3
		{Links: []graph.Edge{{From: b, To: a}, {From: a, To: b}}, Alpha: 50}, // M4∪M5
		{Links: []graph.Edge{{From: a, To: b}}, Alpha: 100},                  // M2
		{Links: []graph.Edge{{From: b, To: c}}, Alpha: 100},
	}}
	res, err := Run(g, load, sch, Options{Window: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 200 {
		t.Fatalf("Delivered = %d, want 200 (all)", res.Delivered)
	}
	if res.Psi != 200*traffic.WeightScale {
		t.Fatalf("Psi = %d, want %d", res.Psi, 200*traffic.WeightScale)
	}
}

func TestFlowIDPriority(t *testing.T) {
	// Two same-weight flows compete for one link; the lower flow ID wins.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	// Both 1-hop: only flow with lower ID's packets should cross when the
	// link capacity is scarce. They use different links here, so instead
	// put both flows at the same source.
	g2 := graph.New(2)
	g2.AddEdge(0, 1)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 7, Size: 10, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		{ID: 3, Size: 10, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 10},
	}}
	res, err := Run(g2, load, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 {
		t.Fatalf("Delivered = %d, want 10", res.Delivered)
	}
	// Verify it was flow 3 that crossed by giving flow 3 a longer route
	// elsewhere... simpler: weight priority test below covers ordering; here
	// ensure deterministic re-run equality.
	res2, _ := Run(g2, load, sch, Options{})
	if res2.Delivered != res.Delivered || res2.Psi != res.Psi {
		t.Fatal("nondeterministic replay")
	}
}

func TestWeightPriority(t *testing.T) {
	// A 1-hop flow (weight 1) and a 2-hop flow (weight 1/2) both queued on
	// link (0,1) with capacity for only one flow's packets: the heavier
	// (shorter-route) packets cross first even with a higher flow ID.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
		{ID: 2, Size: 10, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 10},
	}}
	res, err := Run(g, load, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only the 1-hop flow's packets crossed and were delivered.
	if res.Delivered != 10 {
		t.Fatalf("Delivered = %d, want 10", res.Delivered)
	}
	if res.Psi != 10*traffic.WeightScale {
		t.Fatalf("Psi = %d, want 1-hop flow only", res.Psi)
	}
}

func TestSingleHopPerConfiguration(t *testing.T) {
	// A 2-hop flow with both links active in one configuration: without
	// MultiHop the packet moves only one hop per configuration.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
	}}
	cfg := schedule.Configuration{Links: []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}}, Alpha: 10}
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{cfg}}
	res, err := Run(g, load, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Hops != 5 {
		t.Fatalf("bulk mode: delivered=%d hops=%d, want 0, 5", res.Delivered, res.Hops)
	}
	// Second identical configuration completes delivery.
	sch2 := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{cfg, cfg}}
	res2, err := Run(g, load, sch2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Delivered != 5 || res2.Hops != 10 {
		t.Fatalf("two configs: delivered=%d hops=%d", res2.Delivered, res2.Hops)
	}
}

func TestMultiHopChaining(t *testing.T) {
	// Same instance with MultiHop: packets chain within the configuration
	// (one-slot switch latency), so all 5 packets are delivered in 10 slots.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
	}}
	sch := &schedule.Schedule{Delta: 0, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}}, Alpha: 10},
	}}
	res, err := Run(g, load, sch, Options{MultiHop: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 5 || res.Hops != 10 {
		t.Fatalf("multihop: delivered=%d hops=%d, want 5, 10", res.Delivered, res.Hops)
	}
	// Pipeline latency: 5 packets need 6 slots (first crosses link 2 at
	// slot 1); alpha=5 delivers only 4.
	sch.Configs[0].Alpha = 5
	res2, err := Run(g, load, sch, Options{MultiHop: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Delivered != 4 {
		t.Fatalf("pipeline latency: delivered=%d, want 4", res2.Delivered)
	}
}

func TestReconfigurationDelayAndWindow(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 100, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	sch := &schedule.Schedule{Delta: 10, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 30},
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 30},
	}}
	// Window 50: Δ(10)+30 then Δ(10) leaves 0 slots; second config dropped.
	res, err := Run(g, load, sch, Options{Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 30 || res.Configs != 1 {
		t.Fatalf("window 50: delivered=%d configs=%d", res.Delivered, res.Configs)
	}
	// Window 55: second configuration truncated to 5 slots.
	res, err = Run(g, load, sch, Options{Window: 55})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 35 {
		t.Fatalf("window 55: delivered=%d, want 35", res.Delivered)
	}
	if res.SlotsUsed != 55 {
		t.Fatalf("SlotsUsed = %d, want 55", res.SlotsUsed)
	}
}

func TestValidationErrors(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 1, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	bad := &schedule.Schedule{Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 1, To: 0}}, Alpha: 1}, // edge not in fabric
	}}
	if _, err := Run(g, load, bad, Options{}); err == nil {
		t.Fatal("invalid schedule accepted")
	}
	if _, err := Run(g, load, bad, Options{SkipValidate: true}); err != nil {
		t.Fatal("SkipValidate did not skip")
	}
	badChoice := Options{RouteChoice: map[int]int{1: 5}}
	okSch := &schedule.Schedule{Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 1},
	}}
	if _, err := Run(g, load, okSch, badChoice); err == nil {
		t.Fatal("out-of-range route choice accepted")
	}
}

func TestRouteChoice(t *testing.T) {
	g := graph.Complete(4)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 3}, {0, 3}}},
	}}
	direct := &schedule.Schedule{Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 3}}, Alpha: 10},
	}}
	// Default route 0 (via node 1): the direct link carries nothing.
	res, err := Run(g, load, direct, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Fatalf("default route: delivered=%d, want 0", res.Delivered)
	}
	// Choosing route 1 (direct) delivers everything.
	res, err = Run(g, load, direct, Options{RouteChoice: map[int]int{1: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 {
		t.Fatalf("direct route: delivered=%d, want 10", res.Delivered)
	}
	if res.Psi != 10*traffic.WeightScale {
		t.Fatalf("direct route weight: psi=%d", res.Psi)
	}
}

func TestMultiPort(t *testing.T) {
	// Node 0 sends to 1 and 2 simultaneously with 2 ports.
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 10, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		{ID: 2, Size: 10, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 2}}},
	}}
	sch := &schedule.Schedule{Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}}, Alpha: 10},
	}}
	if _, err := Run(g, load, sch, Options{}); err == nil {
		t.Fatal("2-port configuration accepted at ports=1")
	}
	res, err := Run(g, load, sch, Options{Ports: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 20 {
		t.Fatalf("multi-port delivered=%d, want 20", res.Delivered)
	}
}

func TestResultMetrics(t *testing.T) {
	r := &Result{}
	if r.DeliveredFraction() != 0 || r.Utilization() != 0 || r.DeliveredOfPsi() != 0 {
		t.Fatal("zero-value metrics not 0")
	}
	r = &Result{TotalPackets: 100, Delivered: 25, Hops: 50, ActiveLinkSlots: 200,
		Psi: 50 * traffic.WeightScale}
	if r.DeliveredFraction() != 0.25 {
		t.Fatalf("DeliveredFraction = %f", r.DeliveredFraction())
	}
	if r.Utilization() != 0.25 {
		t.Fatalf("Utilization = %f", r.Utilization())
	}
	if r.DeliveredOfPsi() != 0.5 {
		t.Fatalf("DeliveredOfPsi = %f", r.DeliveredOfPsi())
	}
}

func TestPartialDeliveryPsiAccounting(t *testing.T) {
	// A 3-hop flow advanced 2 hops: psi counts 2·(w=1/3) per packet, no
	// delivery.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 9, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 2, 3}}},
	}}
	sch := &schedule.Schedule{Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 9},
		{Links: []graph.Edge{{From: 1, To: 2}}, Alpha: 9},
	}}
	res, err := Run(g, load, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Hops != 18 {
		t.Fatalf("delivered=%d hops=%d", res.Delivered, res.Hops)
	}
	want := int64(18) * (traffic.WeightScale / 3)
	if res.Psi != want {
		t.Fatalf("Psi = %d, want %d", res.Psi, want)
	}
}

func TestTrackBuffers(t *testing.T) {
	// 9 packets advance one hop of a 3-hop route and park at node 1.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 9, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 2, 3}}},
	}}
	sch := &schedule.Schedule{Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 9},
		{Links: []graph.Edge{{From: 1, To: 2}}, Alpha: 4},
	}}
	res, err := Run(g, load, sch, Options{TrackBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	// Peak per-node: all 9 parked at node 1 after config 0.
	if res.MaxNodeBuffer != 9 {
		t.Fatalf("MaxNodeBuffer = %d, want 9", res.MaxNodeBuffer)
	}
	// After config 1: 5 at node 1 plus 4 at node 2 = 9 total still.
	if res.MaxTotalBuffer != 9 {
		t.Fatalf("MaxTotalBuffer = %d, want 9", res.MaxTotalBuffer)
	}
	// Untracked run reports zeros.
	res2, err := Run(g, load, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MaxNodeBuffer != 0 || res2.MaxTotalBuffer != 0 {
		t.Fatal("buffer stats reported without TrackBuffers")
	}
}

func TestTrackFlows(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 4, Size: 6, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		{ID: 9, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 2}}},
	}}
	sch := &schedule.Schedule{Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 6},
		{Links: []graph.Edge{{From: 0, To: 2}}, Alpha: 3},
	}}
	res, err := Run(g, load, sch, Options{TrackFlows: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowDelivered[4] != 6 || res.FlowDelivered[9] != 3 {
		t.Fatalf("FlowDelivered = %v", res.FlowDelivered)
	}
	res2, _ := Run(g, load, sch, Options{})
	if res2.FlowDelivered != nil {
		t.Fatal("FlowDelivered allocated without TrackFlows")
	}
}

func TestEmptySchedule(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	res, err := Run(g, load, &schedule.Schedule{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Hops != 0 || res.SlotsUsed != 0 {
		t.Fatalf("empty schedule moved packets: %+v", res)
	}
	if res.TotalPackets != 5 {
		t.Fatalf("TotalPackets = %d", res.TotalPackets)
	}
}
