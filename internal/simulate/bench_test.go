package simulate

import (
	"math/rand"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

// benchScenario builds a load and a round-robin schedule that moves it.
func benchScenario(b *testing.B, n, window int) (*graph.Digraph, *traffic.Load, *schedule.Schedule) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.Complete(n)
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(n, window), rng)
	if err != nil {
		b.Fatal(err)
	}
	sch := &schedule.Schedule{Delta: 20}
	for r := 1; r < n; r++ {
		links := make([]graph.Edge, 0, n)
		for i := 0; i < n; i++ {
			links = append(links, graph.Edge{From: i, To: (i + r) % n})
		}
		sch.Configs = append(sch.Configs, schedule.Configuration{Links: links, Alpha: window / n})
		if sch.Cost() > window {
			break
		}
	}
	sch.Truncate(window)
	return g, load, sch
}

func BenchmarkReplayBulk(b *testing.B) {
	for _, n := range []int{24, 48} {
		g, load, sch := benchScenario(b, n, 2000)
		b.Run(map[int]string{24: "n24", 48: "n48"}[n], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, load, sch, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplayMultiHop(b *testing.B) {
	g, load, sch := benchScenario(b, 24, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, load, sch, Options{MultiHop: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayWithBufferTracking(b *testing.B) {
	g, load, sch := benchScenario(b, 24, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, load, sch, Options{TrackBuffers: true}); err != nil {
			b.Fatal(err)
		}
	}
}
