package simulate

import (
	"testing"

	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// fuzzSrc turns a fuzz byte string into a deterministic decision stream;
// exhausted input yields zeros, so every byte string maps to one scenario.
type fuzzSrc struct {
	data []byte
	i    int
}

func (s *fuzzSrc) next(n int) int {
	if n <= 1 {
		return 0
	}
	if s.i >= len(s.data) {
		return 0
	}
	b := s.data[s.i]
	s.i++
	return int(b) % n
}

// scenarioFromBytes builds a valid-by-construction fabric, load, and
// schedule from fuzz input.
func scenarioFromBytes(data []byte) (*graph.Digraph, *traffic.Load, *schedule.Schedule, Options) {
	src := &fuzzSrc{data: data}
	n := 3 + src.next(5)
	g := graph.Complete(n)

	load := &traffic.Load{}
	nflows := 1 + src.next(5)
	for f := 0; f < nflows; f++ {
		from := src.next(n)
		dst := (from + 1 + src.next(n-1)) % n
		route := traffic.Route{from, dst}
		if src.next(2) == 1 { // two hops via a distinct middle node
			for mid := 0; mid < n; mid++ {
				if mid != from && mid != dst {
					route = traffic.Route{from, (mid + src.next(n-2)) % n, dst}
					break
				}
			}
			for route[1] == from || route[1] == dst {
				route[1] = (route[1] + 1) % n
			}
		}
		load.Flows = append(load.Flows, traffic.Flow{
			ID: f + 1, Size: 1 + src.next(15), Src: from, Dst: dst,
			Routes: []traffic.Route{route},
		})
	}

	sch := &schedule.Schedule{Delta: src.next(4)}
	nconfigs := src.next(6)
	for c := 0; c < nconfigs; c++ {
		var links []graph.Edge
		usedF := map[int]bool{}
		usedT := map[int]bool{}
		for tries := 0; tries < n; tries++ {
			i, j := src.next(n), src.next(n)
			if i != j && !usedF[i] && !usedT[j] {
				links = append(links, graph.Edge{From: i, To: j})
				usedF[i] = true
				usedT[j] = true
			}
		}
		if len(links) == 0 {
			continue
		}
		sch.Configs = append(sch.Configs, schedule.Configuration{Links: links, Alpha: 1 + src.next(12)})
	}

	opt := Options{
		MultiHop:  src.next(2) == 1,
		Epsilon64: src.next(16),
	}
	if src.next(2) == 1 {
		opt.Window = 5 + src.next(60)
		sch.Truncate(opt.Window)
	}
	return g, load, sch, opt
}

// FuzzSimulate drives the simulator with arbitrary valid scenarios and
// differentially checks every run against the independent validator replay
// in internal/verify: no panics, conserved packets, exact metric agreement.
func FuzzSimulate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("multihop-window-epsilon"))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, load, sch, opt := scenarioFromBytes(data)
		res, err := Run(g, load, sch, opt)
		if err != nil {
			t.Fatalf("valid-by-construction scenario rejected: %v", err)
		}
		total := load.TotalPackets()
		if res.Delivered < 0 || res.Delivered > total || res.Hops < res.Delivered {
			t.Fatalf("implausible result %+v for %d packets", res, total)
		}
		_, err = verify.Schedule(g, load, sch, verify.Options{
			Window:    opt.Window,
			MultiHop:  opt.MultiHop,
			Epsilon64: opt.Epsilon64,
			Claim:     &verify.Claim{Delivered: res.Delivered, Hops: res.Hops, Psi: res.Psi},
		})
		if err != nil {
			t.Fatalf("simulator disagrees with validator replay: %v", err)
		}
	})
}
