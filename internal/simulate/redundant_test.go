package simulate

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// TestRedundancyDedup replays a hand-built expanded load (one primary copy
// on the direct route, one duplicate copy on a 2-hop detour, one plain flow)
// and checks the deduplicated metrics exactly: a group contributes the max
// over its copies, the copy's ψ and hops are charged as duplicate overhead,
// and the raw metrics still count everything.
func TestRedundancyDedup(t *testing.T) {
	g := graph.Complete(4)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 0, Size: 5, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 3}}},
		{ID: 10, Size: 5, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 3}}},
		{ID: 1, Size: 2, Src: 2, Dst: 3, Routes: []traffic.Route{{2, 3}}},
	}}
	red := &traffic.Redundancy{Group: map[int]int{0: 0, 10: 0}}
	sch := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		// Copy advances 3 packets to node 1, plain flow delivers 2.
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 2, To: 3}}, Alpha: 3},
		// Primary delivers 3.
		{Links: []graph.Edge{{From: 0, To: 3}}, Alpha: 3},
		// Copy delivers its 3 staged packets.
		{Links: []graph.Edge{{From: 1, To: 3}}, Alpha: 5},
	}}
	res, err := Run(g, load, sch, Options{Redundancy: red})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPackets != 12 || res.Delivered != 8 {
		t.Fatalf("raw metrics: total=%d delivered=%d, want 12/8", res.TotalPackets, res.Delivered)
	}
	if res.UniqueTotal != 7 {
		t.Fatalf("UniqueTotal = %d, want 7 (5 copy packets excluded)", res.UniqueTotal)
	}
	// Group {0,10}: max(3, 3) = 3 unique, plus the plain flow's 2.
	if res.UniqueDelivered != 5 {
		t.Fatalf("UniqueDelivered = %d, want 5", res.UniqueDelivered)
	}
	if res.DupHops != 6 {
		t.Fatalf("DupHops = %d, want 6 (3 packets × 2 hops)", res.DupHops)
	}
	if want := int64(6) * traffic.Weight(2); res.DupPsi != want {
		t.Fatalf("DupPsi = %d, want %d", res.DupPsi, want)
	}
	// Raw ψ includes the duplicates: 5 one-hop + 6 copy-hops at weight 1/2.
	if want := int64(5)*traffic.Weight(1) + int64(6)*traffic.Weight(2); res.Psi != want {
		t.Fatalf("Psi = %d, want %d", res.Psi, want)
	}
	if f := res.UniqueDeliveredFraction(); math.Abs(f-5.0/7.0) > 1e-12 {
		t.Fatalf("UniqueDeliveredFraction = %v, want 5/7", f)
	}
}

// TestRedundancyDedupCopyOutdelivers covers the other direction of the max:
// when the duplicate copy outdelivers the primary, the group counts the
// copy's packets, not the primary's.
func TestRedundancyDedupCopyOutdelivers(t *testing.T) {
	g := graph.Complete(4)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 0, Size: 5, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 3}}},
		{ID: 10, Size: 5, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 1, 3}}},
	}}
	red := &traffic.Redundancy{Group: map[int]int{0: 0, 10: 0}}
	sch := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 3}}, Alpha: 1},
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 4},
		{Links: []graph.Edge{{From: 1, To: 3}}, Alpha: 4},
	}}
	res, err := Run(g, load, sch, Options{Redundancy: red})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 5 {
		t.Fatalf("raw delivered = %d, want 5", res.Delivered)
	}
	if res.UniqueDelivered != 4 || res.UniqueTotal != 5 {
		t.Fatalf("unique %d/%d, want 4/5 (max(1,4) over the group)",
			res.UniqueDelivered, res.UniqueTotal)
	}
}

// TestRedundancyEmptyEquivalence checks that a nil Redundancy and an empty
// one replay bit-identically, with the Unique* metrics mirroring the raw
// ones and no duplicate overhead.
func TestRedundancyEmptyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		inst := verify.RandomInstance(rng).SingleRoute()
		if len(inst.Load.Flows) == 0 {
			continue
		}
		s, err := core.New(inst.G, inst.Load, core.Options{Window: inst.Window, Delta: inst.Delta})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		sch := plan.Schedule
		base, err := Run(inst.G, inst.Load, sch, Options{Window: inst.Window})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(inst.G, inst.Load, sch, Options{
			Window: inst.Window, Redundancy: &traffic.Redundancy{},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("trial %d: empty redundancy diverges:\n%+v\n%+v", trial, base, got)
		}
		if base.UniqueDelivered != base.Delivered || base.UniqueTotal != base.TotalPackets {
			t.Fatalf("trial %d: unique metrics do not mirror raw ones: %+v", trial, base)
		}
		if base.DupHops != 0 || base.DupPsi != 0 {
			t.Fatalf("trial %d: duplicate overhead without redundancy: %+v", trial, base)
		}
	}
}
