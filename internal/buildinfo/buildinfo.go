// Package buildinfo derives a version string for the octopus binaries from
// the build metadata the Go toolchain embeds: the main module version plus
// the VCS revision/time/dirty stamps of the checkout the binary was built
// from. No version constants to bump, no ldflags to wire.
package buildinfo

import (
	"fmt"
	"io"
	"runtime/debug"
)

// Version returns the human-readable version string, e.g.
//
//	devel+3f9ac2d71e04 (2026-08-06T10:00:00Z) go1.24.3
//
// Falls back to "unknown" when the binary carries no build info (non-module
// builds).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	return describe(bi)
}

// describe renders one build-info record (split out for testability).
func describe(bi *debug.BuildInfo) string {
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev, vcsTime string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			vcsTime = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	out := v
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += "+" + rev
		if dirty {
			out += "-dirty"
		}
	}
	if vcsTime != "" {
		out += " (" + vcsTime + ")"
	}
	if bi.GoVersion != "" {
		out += " " + bi.GoVersion
	}
	return out
}

// Print writes the standard "-version" line for the named command.
func Print(w io.Writer, cmd string) {
	fmt.Fprintf(w, "%s %s\n", cmd, Version())
}
