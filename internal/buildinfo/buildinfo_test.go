package buildinfo

import (
	"runtime/debug"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("Version returned an empty string")
	}
}

func TestDescribe(t *testing.T) {
	bi := &debug.BuildInfo{GoVersion: "go1.24"}
	bi.Main.Version = "(devel)"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123456789abcdef0123"},
		{Key: "vcs.time", Value: "2026-08-06T00:00:00Z"},
		{Key: "vcs.modified", Value: "true"},
	}
	got := describe(bi)
	want := "devel+0123456789ab-dirty (2026-08-06T00:00:00Z) go1.24"
	if got != want {
		t.Fatalf("describe = %q, want %q", got, want)
	}

	bare := &debug.BuildInfo{GoVersion: "go1.24"}
	if got := describe(bare); got != "devel go1.24" {
		t.Fatalf("bare describe = %q", got)
	}
}
