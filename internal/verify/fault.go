package verify

import (
	"fmt"

	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

// EpochSchedule validates one scheduling epoch of a fault-injected run: the
// schedule and the load it served are checked by Schedule against the
// fabric that survives trace at slot epochStart, not the intact fabric. A
// configuration that activates a failed link — or a route through a failed
// link or node — is therefore a validation error, which is exactly the
// invariant a fault-tolerant controller must uphold: plans may only ever
// use the fabric that actually exists when they run.
func EpochSchedule(g *graph.Digraph, trace *fault.Trace, epochStart int, load *traffic.Load, sch *schedule.Schedule, opt Options) (*Report, error) {
	if epochStart < 0 {
		return nil, fmt.Errorf("verify: negative epoch start slot %d", epochStart)
	}
	surviving := trace.Surviving(g, epochStart)
	rep, err := Schedule(surviving, load, sch, opt)
	if err != nil {
		return nil, fmt.Errorf("verify: epoch starting at slot %d against surviving fabric (%d of %d links up): %w",
			epochStart, surviving.M(), g.M(), err)
	}
	return rep, nil
}
