// Package verify is the independent correctness layer for every scheduler
// in this repository: a validator that replays any schedule against the
// fabric and traffic load and checks every feasibility invariant of the
// MHS problem, and an exhaustive brute-force reference solver that computes
// the true optimum on tiny instances.
//
// The schedulers in internal/core and internal/baseline each keep their own
// bookkeeping of what they deliver; verify.Schedule re-derives those
// numbers from nothing but the schedule itself, using a deliberately
// simple, separate replay implementation, so no algorithm grades its own
// homework. verify.BruteForce closes the loop by measuring the gap to
// OPT(ψ) and OPT(throughput), which is how the paper's Theorem 1 guarantee
// is checked empirically (see internal/verify/diff).
//
// The package intentionally imports only the model packages (graph,
// schedule, traffic), never the schedulers, so scheduler test packages can
// use it without import cycles.
package verify

import (
	"fmt"
	"sort"

	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

// Claim is a scheduler's own account of what its schedule achieves.
// Schedule checks it against the independent replay.
type Claim struct {
	Delivered int
	Hops      int
	Psi       int64 // in traffic.WeightScale units
}

// Options configures Schedule validation.
type Options struct {
	// Window, when positive, requires Σ(αₖ+Δ) ≤ Window and truncates the
	// replay exactly like simulate.Run does.
	Window int

	// Ports is the per-node port count of the K-ports model (§7); 0 or 1
	// selects the single-port model where every configuration must be a
	// matching of the fabric.
	Ports int

	// Undirected, when set, additionally requires every configuration to
	// be a direction-paired matching of the undirected fabric (§7
	// bidirectional links): each active link must appear in both
	// directions and the underlying undirected edges must form a matching.
	Undirected *graph.Ugraph

	// MultiHop replays with the §5 relaxation: a packet that crosses a
	// link at slot t may cross the next link of its route from slot t+1
	// within the same configuration.
	MultiHop bool

	// Epsilon64 orders link queues by the Octopus-e hop weight
	// (1 + x·ε/64) during replay, matching a scheduler run with the same
	// core option. ψ accounting always uses the plain packet weight.
	Epsilon64 int

	// RouteChoice selects which candidate route each flow uses (flow ID ->
	// index into Flow.Routes); absent flows use route 0.
	RouteChoice map[int]int

	// Claim, when set, requires the replayed delivered/hops/ψ to equal the
	// scheduler's claim exactly — or to be at least the claim when
	// ClaimIsLowerBound is set (for plans whose bookkeeping is a
	// conservative bound, e.g. chained-benefit plans replayed multi-hop).
	Claim             *Claim
	ClaimIsLowerBound bool
}

// Report is the outcome of a successful validation: the independently
// replayed measurements.
type Report struct {
	Delivered int
	Hops      int
	Psi       int64
	SlotsUsed int
	Configs   int // configurations (fully or partially) replayed
}

// Schedule validates sch against fabric g carrying load, independently of
// any scheduler bookkeeping. It checks, in order:
//
//   - the load is well-formed: positive sizes, unique IDs, and every route
//     a duplicate-free path of g connecting the flow's endpoints;
//   - every configuration has α > 0 and its links form a valid Ports-port
//     link set of g (and, with Options.Undirected, a direction-paired
//     undirected matching);
//   - the total cost Σ(αₖ+Δ) fits Options.Window;
//   - packets advance only along their declared routes with hop causality
//     and no link ever carries more than αₖ packets per configuration
//     (both enforced constructively by the replay);
//   - the replayed delivered/hops/ψ match Options.Claim.
//
// On success it returns the replayed measurements.
func Schedule(g *graph.Digraph, load *traffic.Load, sch *schedule.Schedule, opt Options) (*Report, error) {
	ports := opt.Ports
	if ports < 1 {
		ports = 1
	}
	if sch.Delta < 0 {
		return nil, fmt.Errorf("verify: negative reconfiguration delay %d", sch.Delta)
	}
	if err := checkLoad(g, load, opt.RouteChoice); err != nil {
		return nil, err
	}
	if err := checkConfigs(g, sch, ports, opt.Undirected); err != nil {
		return nil, err
	}
	if opt.Window > 0 {
		cost := 0
		for _, c := range sch.Configs {
			cost += c.Alpha + sch.Delta
		}
		if cost > opt.Window {
			return nil, fmt.Errorf("verify: schedule cost %d exceeds window %d", cost, opt.Window)
		}
	}
	rep := replay(load, sch, opt)
	if opt.Claim != nil {
		c := opt.Claim
		if opt.ClaimIsLowerBound {
			if rep.Delivered < c.Delivered || rep.Hops < c.Hops || rep.Psi < c.Psi {
				return nil, fmt.Errorf("verify: replay (%d pkts, %d hops, ψ=%d) below claimed lower bound (%d, %d, %d)",
					rep.Delivered, rep.Hops, rep.Psi, c.Delivered, c.Hops, c.Psi)
			}
		} else if rep.Delivered != c.Delivered || rep.Hops != c.Hops || rep.Psi != c.Psi {
			return nil, fmt.Errorf("verify: replay (%d pkts, %d hops, ψ=%d) does not match claim (%d, %d, %d)",
				rep.Delivered, rep.Hops, rep.Psi, c.Delivered, c.Hops, c.Psi)
		}
	}
	return rep, nil
}

// checkLoad re-derives the load invariants without calling
// traffic.Load.Validate, so a bug there cannot mask a bad load here.
func checkLoad(g *graph.Digraph, load *traffic.Load, routeChoice map[int]int) error {
	ids := make(map[int]bool, len(load.Flows))
	for i := range load.Flows {
		f := &load.Flows[i]
		if ids[f.ID] {
			return fmt.Errorf("verify: duplicate flow ID %d", f.ID)
		}
		ids[f.ID] = true
		if f.Size <= 0 {
			return fmt.Errorf("verify: flow %d has non-positive size %d", f.ID, f.Size)
		}
		if len(f.Routes) == 0 {
			return fmt.Errorf("verify: flow %d has no routes", f.ID)
		}
		if ri := routeChoice[f.ID]; ri < 0 || ri >= len(f.Routes) {
			return fmt.Errorf("verify: flow %d route choice %d out of range", f.ID, ri)
		}
		for _, r := range f.Routes {
			if len(r) < 2 || len(r)-1 > traffic.MaxRouteLen {
				return fmt.Errorf("verify: flow %d route %v has invalid length", f.ID, r)
			}
			if r[0] != f.Src || r[len(r)-1] != f.Dst {
				return fmt.Errorf("verify: flow %d route %v does not connect %d->%d", f.ID, r, f.Src, f.Dst)
			}
			if f.WeightHops > 0 && len(r)-1 > f.WeightHops {
				return fmt.Errorf("verify: flow %d route %v longer than WeightHops %d", f.ID, r, f.WeightHops)
			}
			seen := make(map[int]bool, len(r))
			for k, v := range r {
				if v < 0 || v >= g.N() {
					return fmt.Errorf("verify: flow %d route node %d outside fabric", f.ID, v)
				}
				if seen[v] {
					return fmt.Errorf("verify: flow %d route %v repeats node %d", f.ID, r, v)
				}
				seen[v] = true
				if k > 0 && !g.HasEdge(r[k-1], r[k]) {
					return fmt.Errorf("verify: flow %d route hop %d->%d is not a fabric link", f.ID, r[k-1], r[k])
				}
			}
		}
	}
	return nil
}

// checkConfigs re-derives the per-configuration structural invariants
// without calling graph.IsRegular or schedule.Validate.
func checkConfigs(g *graph.Digraph, sch *schedule.Schedule, ports int, u *graph.Ugraph) error {
	for k, c := range sch.Configs {
		if c.Alpha <= 0 {
			return fmt.Errorf("verify: configuration %d has non-positive duration %d", k, c.Alpha)
		}
		outDeg := make(map[int]int, len(c.Links))
		inDeg := make(map[int]int, len(c.Links))
		dup := make(map[graph.Edge]bool, len(c.Links))
		for _, e := range c.Links {
			if !g.HasEdge(e.From, e.To) {
				return fmt.Errorf("verify: configuration %d activates absent link %v", k, e)
			}
			if dup[e] {
				return fmt.Errorf("verify: configuration %d activates link %v twice", k, e)
			}
			dup[e] = true
			outDeg[e.From]++
			inDeg[e.To]++
			if outDeg[e.From] > ports {
				return fmt.Errorf("verify: configuration %d uses %d output ports at node %d (max %d)",
					k, outDeg[e.From], e.From, ports)
			}
			if inDeg[e.To] > ports {
				return fmt.Errorf("verify: configuration %d uses %d input ports at node %d (max %d)",
					k, inDeg[e.To], e.To, ports)
			}
		}
		if u != nil {
			if err := checkUndirected(u, c.Links, k); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkUndirected requires links to be a direction-paired matching of u:
// every directed link's reverse is also active, and the underlying
// undirected edges touch each node at most once.
func checkUndirected(u *graph.Ugraph, links []graph.Edge, k int) error {
	have := make(map[graph.Edge]bool, len(links))
	for _, e := range links {
		have[e] = true
	}
	deg := make(map[int]int)
	seen := make(map[graph.UEdge]bool)
	for _, e := range links {
		if !have[graph.Edge{From: e.To, To: e.From}] {
			return fmt.Errorf("verify: configuration %d activates %v without its reverse direction", k, e)
		}
		ue := graph.NormUEdge(e.From, e.To)
		if seen[ue] {
			continue
		}
		seen[ue] = true
		if !u.HasEdge(e.From, e.To) {
			return fmt.Errorf("verify: configuration %d activates absent undirected link %v", k, ue)
		}
		deg[e.From]++
		deg[e.To]++
		if deg[e.From] > 1 || deg[e.To] > 1 {
			return fmt.Errorf("verify: configuration %d is not an undirected matching at link %v", k, ue)
		}
	}
	return nil
}

// vgroup is a set of interchangeable packets during replay: same flow, same
// route, same position, same availability slot.
type vgroup struct {
	flowID int
	route  traffic.Route
	wlen   int   // hop count the packet weight derives from
	weight int64 // plain per-packet ψ weight
	prio   int64 // ε-adjusted queueing priority for the upcoming hop
	pos    int   // current node is route[pos]
	count  int
	avail  int // first global slot at which these packets may move
}

// replayState carries the replay bookkeeping.
type replayState struct {
	eps    int
	queues map[graph.Edge][]*vgroup
	rep    Report
}

func (st *replayState) enqueue(g *vgroup) {
	g.prio = traffic.HopWeight(g.wlen, g.pos, st.eps)
	e := graph.Edge{From: g.route[g.pos], To: g.route[g.pos+1]}
	st.queues[e] = append(st.queues[e], g)
}

// serve transmits up to want packets over link e among groups available at
// or before availBy; crossed packets become available at nextAvail.
func (st *replayState) serve(e graph.Edge, want, availBy, nextAvail int) int {
	q := st.queues[e]
	if len(q) == 0 || want <= 0 {
		return 0
	}
	elig := q[:0:0]
	for _, g := range q {
		if g.count > 0 && g.avail <= availBy {
			elig = append(elig, g)
		}
	}
	sort.SliceStable(elig, func(i, j int) bool {
		if elig[i].prio != elig[j].prio {
			return elig[i].prio > elig[j].prio
		}
		return elig[i].flowID < elig[j].flowID
	})
	served := 0
	for _, g := range elig {
		if served == want {
			break
		}
		take := want - served
		if take > g.count {
			take = g.count
		}
		g.count -= take
		served += take
		st.rep.Hops += take
		st.rep.Psi += int64(take) * g.weight
		if g.pos+1 == len(g.route)-1 {
			st.rep.Delivered += take
		} else {
			st.enqueue(&vgroup{
				flowID: g.flowID,
				route:  g.route,
				wlen:   g.wlen,
				weight: g.weight,
				pos:    g.pos + 1,
				count:  take,
				avail:  nextAvail,
			})
		}
	}
	if served > 0 {
		live := q[:0]
		for _, g := range q {
			if g.count > 0 {
				live = append(live, g)
			}
		}
		st.queues[e] = live
	}
	return served
}

// replay runs the independent packet-level replay, mirroring the semantics
// of simulate.Run (bulk or multi-hop mode, window truncation) with a
// separate implementation.
func replay(load *traffic.Load, sch *schedule.Schedule, opt Options) *Report {
	st := &replayState{eps: opt.Epsilon64, queues: make(map[graph.Edge][]*vgroup)}
	for i := range load.Flows {
		f := &load.Flows[i]
		r := f.Routes[opt.RouteChoice[f.ID]]
		st.enqueue(&vgroup{
			flowID: f.ID,
			route:  r,
			wlen:   f.WeightLen(r),
			weight: traffic.Weight(f.WeightLen(r)),
			pos:    0,
			count:  f.Size,
			avail:  0,
		})
	}
	slot := 0
	for _, cfg := range sch.Configs {
		if opt.Window > 0 && slot+sch.Delta >= opt.Window {
			break
		}
		slot += sch.Delta
		alpha := cfg.Alpha
		if opt.Window > 0 && slot+alpha > opt.Window {
			alpha = opt.Window - slot
		}
		if alpha <= 0 {
			break
		}
		st.rep.Configs++
		if opt.MultiHop {
			links := append([]graph.Edge(nil), cfg.Links...)
			sort.Slice(links, func(i, j int) bool {
				if links[i].From != links[j].From {
					return links[i].From < links[j].From
				}
				return links[i].To < links[j].To
			})
			for s := 0; s < alpha; s++ {
				moved := 0
				for _, e := range links {
					moved += st.serve(e, 1, slot+s, slot+s+1)
				}
				if moved == 0 {
					break
				}
			}
		} else {
			for _, e := range cfg.Links {
				st.serve(e, alpha, slot, slot+alpha)
			}
		}
		slot += alpha
	}
	st.rep.SlotsUsed = slot
	return &st.rep
}
