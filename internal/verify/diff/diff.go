// Package diff is the differential verification harness: it runs every
// algorithm in the internal/algo registry — the Octopus core variants, the
// baselines, and the schedule-free maxweight/hybrid/UB entries — over
// shared random instances and funnels each outcome through its
// verification recipe (verify.Schedule with the scheduler's own claimed
// metrics attached, or the schedule-free invariants). A scheduler whose
// bookkeeping drifts from the independently replayed truth, or whose
// schedule violates any MHS feasibility invariant, fails here regardless
// of what its own tests say.
//
// The roster is derived from algo.Registry(), so a newly registered
// algorithm is differentially tested by construction — there is no list
// here to forget to update.
//
// The package lives below internal/verify so scheduler packages never
// import it (it imports them through internal/algo), keeping verify itself
// cycle-free.
package diff

import (
	"bytes"
	"fmt"

	"octopus/internal/algo"
	"octopus/internal/verify"
)

// Outcome is one algorithm's registry outcome on one instance, with the
// harness's checking and fingerprinting attached.
type Outcome struct {
	*algo.Outcome
}

// Check validates the outcome — verify.Schedule plus the algorithm's Extra
// invariants for schedule-producing algorithms, the basic metric
// invariants for schedule-free ones — and returns the replay report.
func (o *Outcome) Check() (*verify.Report, error) {
	return o.Outcome.Verify()
}

// Fingerprint is a deterministic rendering of the outcome (schedule bytes
// plus claimed and reported metrics), used to assert run-to-run
// determinism.
func (o *Outcome) Fingerprint() (string, error) {
	var buf bytes.Buffer
	if o.Schedule != nil {
		if err := o.Schedule.WriteJSON(&buf); err != nil {
			return "", err
		}
	}
	if c := o.VerifyOpt.Claim; c != nil {
		fmt.Fprintf(&buf, "claim:%d,%d,%d", c.Delivered, c.Hops, c.Psi)
	}
	fmt.Fprintf(&buf, "metrics:%d,%d,%d,%d", o.Delivered, o.Total, o.Hops, o.Psi)
	return buf.String(), nil
}

// Runner is one algorithm under differential test.
type Runner struct {
	Name string
	// Core marks the internal/core variants (used by the Theorem 1 and
	// variant-gap comparisons).
	Core bool
	Run  func(in *verify.Instance) (*Outcome, error)
}

// Runners derives the full roster from the algorithm registry.
func Runners() []Runner {
	var rs []Runner
	for _, a := range algo.Registry() {
		a := a
		rs = append(rs, Runner{
			Name: a.Name(),
			Core: algo.IsCore(a),
			Run: func(in *verify.Instance) (*Outcome, error) {
				out, err := a.Run(in.G, in.Load, algo.Params{
					Window: in.Window,
					Delta:  in.Delta,
					// KeepTrace arms Octopus+'s VerifyPlan audit (the other
					// algorithms ignore it). Seed stays 0 so repeated runs of
					// octopus-random draw identical routes.
					KeepTrace: true,
				})
				if err != nil {
					return nil, err
				}
				return &Outcome{Outcome: out}, nil
			},
		})
	}
	return rs
}
