// Package diff is the differential verification harness: it runs every
// scheduling algorithm in the repository — the six core Octopus variants
// and the five baselines — over shared random instances and funnels each
// produced schedule through verify.Schedule, with the scheduler's own
// claimed metrics attached. A scheduler whose bookkeeping drifts from the
// independently replayed truth, or whose schedule violates any MHS
// feasibility invariant, fails here regardless of what its own tests say.
//
// The package lives below internal/verify so scheduler packages never
// import it (it imports them), keeping verify itself cycle-free.
package diff

import (
	"bytes"
	"fmt"

	"octopus/internal/baseline"
	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// Outcome is one algorithm's output on one instance, packaged with
// everything verify.Schedule needs to judge it.
type Outcome struct {
	// Fabric and Load are what the schedule is validated against; they may
	// differ from the instance's (RotorNet schedules over the complete
	// fabric, Eclipse schedules the one-hop decomposition).
	Fabric *graph.Digraph
	Load   *traffic.Load

	Schedule *schedule.Schedule
	Opt      verify.Options

	// Extra, when set, checks algorithm-specific invariants beyond schedule
	// validity (e.g. core.Result.VerifyPlan for Octopus+).
	Extra func() error
}

// Check validates the outcome and returns the independent replay report.
func (o *Outcome) Check() (*verify.Report, error) {
	rep, err := verify.Schedule(o.Fabric, o.Load, o.Schedule, o.Opt)
	if err != nil {
		return nil, err
	}
	if o.Extra != nil {
		if err := o.Extra(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// Fingerprint is a deterministic rendering of the outcome (schedule bytes
// plus claimed metrics), used to assert run-to-run determinism.
func (o *Outcome) Fingerprint() (string, error) {
	var buf bytes.Buffer
	if err := o.Schedule.WriteJSON(&buf); err != nil {
		return "", err
	}
	if c := o.Opt.Claim; c != nil {
		fmt.Fprintf(&buf, "claim:%d,%d,%d", c.Delivered, c.Hops, c.Psi)
	}
	return buf.String(), nil
}

// Runner is one algorithm under differential test.
type Runner struct {
	Name string
	// Core marks the six internal/core variants (used by the Theorem 1 and
	// variant-gap comparisons).
	Core bool
	Run  func(in *verify.Instance) (*Outcome, error)
}

// claim converts a core plan result into an exact verify claim.
func claim(res *core.Result) *verify.Claim {
	return &verify.Claim{Delivered: res.Delivered, Hops: res.Hops, Psi: res.Psi}
}

// runCore runs one core scheduler variant and packages the outcome with an
// exact claim: for every single-route-planning variant the plan bookkeeping
// must equal the independent bulk replay packet for packet.
func runCore(in *verify.Instance, opt core.Options) (*Outcome, *core.Result, error) {
	opt.Window, opt.Delta = in.Window, in.Delta
	s, err := core.New(in.G, in.Load, opt)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, nil, err
	}
	out := &Outcome{
		Fabric:   in.G,
		Load:     in.Load,
		Schedule: res.Schedule,
		Opt: verify.Options{
			Window:    in.Window,
			Epsilon64: opt.Epsilon64,
			Claim:     claim(res),
		},
	}
	return out, res, nil
}

// Runners returns the full algorithm roster: the six core variants and the
// five baselines of the paper's §8 comparison.
func Runners() []Runner {
	return []Runner{
		{Name: "octopus", Core: true, Run: func(in *verify.Instance) (*Outcome, error) {
			out, _, err := runCore(in, core.Options{})
			return out, err
		}},
		{Name: "octopus-b", Core: true, Run: func(in *verify.Instance) (*Outcome, error) {
			out, _, err := runCore(in, core.Options{AlphaSearch: core.AlphaBinary})
			return out, err
		}},
		{Name: "octopus-g", Core: true, Run: func(in *verify.Instance) (*Outcome, error) {
			out, _, err := runCore(in, core.Options{Matcher: core.MatcherGreedy})
			return out, err
		}},
		{Name: "octopus-e", Core: true, Run: func(in *verify.Instance) (*Outcome, error) {
			out, _, err := runCore(in, core.Options{Epsilon64: 8})
			return out, err
		}},
		{Name: "chained", Core: true, Run: func(in *verify.Instance) (*Outcome, error) {
			// The chained variant plans with multi-hop benefit but its
			// bookkeeping still advances one hop per configuration, so the
			// claim is exact under bulk replay. The multi-hop replay the
			// schedule is designed for is validated too, but without a bound:
			// chained arrivals compete with resident packets for the same
			// per-link capacity, so per-instance delivery may land on either
			// side of the one-hop plan.
			out, res, err := runCore(in, core.Options{MultiHop: true})
			if err != nil {
				return nil, err
			}
			out.Extra = func() error {
				_, err := verify.Schedule(in.G, in.Load, res.Schedule, verify.Options{
					Window:   in.Window,
					MultiHop: true,
				})
				return err
			}
			return out, nil
		}},
		{Name: "octopus-plus", Core: true, Run: func(in *verify.Instance) (*Outcome, error) {
			// Octopus+ backtracking revises the plan in ways a forward replay
			// cannot reproduce, so no replay claim: the schedule is validated
			// structurally and the plan's own movement records are audited by
			// VerifyPlan instead.
			s, err := core.New(in.G, in.Load, core.Options{
				Window: in.Window, Delta: in.Delta,
				MultiRoute: true, KeepTrace: true,
			})
			if err != nil {
				return nil, err
			}
			res, err := s.Run()
			if err != nil {
				return nil, err
			}
			return &Outcome{
				Fabric:   in.G,
				Load:     in.Load,
				Schedule: res.Schedule,
				Opt:      verify.Options{Window: in.Window},
				Extra:    res.VerifyPlan,
			}, nil
		}},
		{Name: "eclipse", Run: func(in *verify.Instance) (*Outcome, error) {
			// Eclipse schedules the one-hop decomposition; its plan claim is
			// exact for that load.
			oh := baseline.OneHopLoad(in.Load, false)
			_, res, err := baseline.Eclipse(in.G, oh.Load, in.Window, in.Delta, core.MatcherExact)
			if err != nil {
				return nil, err
			}
			return &Outcome{
				Fabric:   in.G,
				Load:     oh.Load,
				Schedule: res.Schedule,
				Opt:      verify.Options{Window: in.Window, Claim: claim(res)},
			}, nil
		}},
		{Name: "eclipse-based", Run: func(in *verify.Instance) (*Outcome, error) {
			// The claim comes from simulate.Run, so this differentially tests
			// the simulator against the verify replay implementation.
			sim, sch, err := baseline.EclipseBased(in.G, in.Load, in.Window, in.Delta, core.MatcherExact)
			if err != nil {
				return nil, err
			}
			return &Outcome{
				Fabric:   in.G,
				Load:     in.Load,
				Schedule: sch,
				Opt: verify.Options{
					Window: in.Window,
					Claim:  &verify.Claim{Delivered: sim.Delivered, Hops: sim.Hops, Psi: sim.Psi},
				},
			}, nil
		}},
		{Name: "eclipse-pp", Run: func(in *verify.Instance) (*Outcome, error) {
			// Eclipse++ routes off the declared routes by design, so only the
			// schedule itself is validated; its accounting gets sanity bounds.
			oh := baseline.OneHopLoad(in.Load, false)
			_, res, err := baseline.Eclipse(in.G, oh.Load, in.Window, in.Delta, core.MatcherExact)
			if err != nil {
				return nil, err
			}
			epp, err := baseline.EclipsePlusPlus(in.G, in.Load, res.Schedule, in.Window)
			if err != nil {
				return nil, err
			}
			return &Outcome{
				Fabric:   in.G,
				Load:     in.Load,
				Schedule: res.Schedule,
				Opt:      verify.Options{Window: in.Window},
				Extra: func() error {
					if epp.Delivered > epp.TotalPackets {
						return fmt.Errorf("eclipse++ delivered %d of %d packets", epp.Delivered, epp.TotalPackets)
					}
					if int64(epp.Hops) > epp.ActiveLinkSlots {
						return fmt.Errorf("eclipse++ served %d hops over %d link-slots", epp.Hops, epp.ActiveLinkSlots)
					}
					return nil
				},
			}, nil
		}},
		{Name: "solstice", Run: func(in *verify.Instance) (*Outcome, error) {
			sim, sch, err := baseline.SolsticeBased(in.G, in.Load, in.Window, in.Delta)
			if err != nil {
				return nil, err
			}
			return &Outcome{
				Fabric:   in.G,
				Load:     in.Load,
				Schedule: sch,
				Opt: verify.Options{
					Window: in.Window,
					Claim:  &verify.Claim{Delivered: sim.Delivered, Hops: sim.Hops, Psi: sim.Psi},
				},
			}, nil
		}},
		{Name: "rotornet", Run: func(in *verify.Instance) (*Outcome, error) {
			// RotorNet assumes the complete fabric; validate its schedule
			// against Complete(n), like its own replay does.
			sim, sch, err := baseline.RotorNet(in.G, in.Load, in.Window, in.Delta, 0)
			if err != nil {
				return nil, err
			}
			return &Outcome{
				Fabric:   graph.Complete(in.G.N()),
				Load:     in.Load,
				Schedule: sch,
				Opt: verify.Options{
					Window: in.Window,
					Claim:  &verify.Claim{Delivered: sim.Delivered, Hops: sim.Hops, Psi: sim.Psi},
				},
			}, nil
		}},
	}
}
