package diff

import (
	"math/rand"
	"testing"

	"octopus/internal/algo"
	"octopus/internal/core"
	"octopus/internal/obs/flight"
	"octopus/internal/verify"
)

// TestFlightDifferentialEquivalence pins the flight recorder's read-only
// contract across the whole registry: attaching a recorder — exhaustive
// or sampled — must leave every algorithm's outcome bit-identical to the
// recorder-free run (same schedule bytes, same claims, same metrics).
// The sweep covers the paths where a journaling side effect could most
// plausibly leak into planning: the warm matcher with par=4 workers, and
// the pod-sharded decomposition with pods>1 (where shard planners run in
// parallel and the recorder is fed from the merged measurement pass).
//
// The roster comes from algo.Registry(), so a newly registered algorithm
// inherits the flight on/off pin by construction.
func TestFlightDifferentialEquivalence(t *testing.T) {
	instances := 16
	if testing.Short() {
		instances = 6
	}
	variants := []struct {
		name string
		prep func(p algo.Params, nodes int) algo.Params
	}{
		{"default", func(p algo.Params, _ int) algo.Params { return p }},
		{"warm-par4", func(p algo.Params, _ int) algo.Params {
			p.Matcher = core.MatcherWarm
			p.Parallelism = 4
			return p
		}},
		{"pods", func(p algo.Params, nodes int) algo.Params {
			p.Pods = podDivisor(nodes)
			return p
		}},
	}
	rng := rand.New(rand.NewSource(11))
	checked := 0
	var journaled uint64
	for checked < instances {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		checked++
		for _, a := range algo.Registry() {
			for _, vr := range variants {
				p := vr.prep(algo.Params{Window: inst.Window, Delta: inst.Delta, KeepTrace: true}, inst.G.N())
				plain, err := a.Run(inst.G, inst.Load, p)
				if err != nil {
					t.Fatalf("instance %d: %s/%s: %v", checked, a.Name(), vr.name, err)
				}
				refFP, err := (&Outcome{Outcome: plain}).Fingerprint()
				if err != nil {
					t.Fatal(err)
				}
				for _, sample := range []int{1, 4} {
					fp := p
					rec := flight.New(flight.Config{Sample: sample})
					fp.Flight = rec
					traced, err := a.Run(inst.G, inst.Load, fp)
					if err != nil {
						t.Fatalf("instance %d: %s/%s sample=%d: %v", checked, a.Name(), vr.name, sample, err)
					}
					got, err := (&Outcome{Outcome: traced}).Fingerprint()
					if err != nil {
						t.Fatal(err)
					}
					if got != refFP {
						t.Errorf("instance %d: %s/%s sample=%d: flight recording changed the outcome",
							checked, a.Name(), vr.name, sample)
					}
					journaled += rec.Stats().Events
				}
			}
		}
	}
	// Guard against the pin going vacuous: if the recorder threading ever
	// silently detaches, every journal would come back empty and the
	// bit-identity above would hold trivially.
	if journaled == 0 {
		t.Fatal("no flight events journaled across the whole sweep; recorder threading is broken")
	}
	t.Logf("flight on/off equivalence validated on %d instances × %d algorithms × %d variants (%d events journaled)",
		checked, len(algo.Registry()), len(variants), journaled)
}

// podDivisor picks the largest small pod count that evenly tiles the
// fabric, so the pods variant exercises a genuine pods>1 decomposition
// whenever the instance allows one.
func podDivisor(nodes int) int {
	for _, pods := range []int{4, 3, 2} {
		if nodes%pods == 0 {
			return pods
		}
	}
	return 1
}
