package diff

import (
	"math/rand"
	"testing"

	"octopus/internal/algo"
	"octopus/internal/verify"
)

// TestRedundantPinnedToOctopus pins octopus-redundant:red=1,crit=0 to
// plain octopus: with redundancy disabled the expansion is the identity
// transform, so the schedule, the claimed plan, and the measured metrics
// must all be bit-for-bit identical — the fingerprints agree on every
// instance.
func TestRedundantPinnedToOctopus(t *testing.T) {
	base, ok := algo.Lookup("octopus")
	if !ok {
		t.Fatal("octopus not registered")
	}
	red, ok := algo.Lookup("octopus-redundant")
	if !ok {
		t.Fatal("octopus-redundant not registered")
	}
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for checked < 40 {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		checked++
		p := algo.Params{Window: inst.Window, Delta: inst.Delta}
		wantOut, err := base.Run(inst.G, inst.Load, p)
		if err != nil {
			t.Fatalf("instance %d: octopus: %v", checked, err)
		}
		rp := p
		rp.Redundancy = 1
		rp.CritFrac = 0
		gotOut, err := red.Run(inst.G, inst.Load, rp)
		if err != nil {
			t.Fatalf("instance %d: octopus-redundant: %v", checked, err)
		}
		want, err := (&Outcome{Outcome: wantOut}).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		got, err := (&Outcome{Outcome: gotOut}).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("instance %d: octopus-redundant:red=1,crit=0 diverges from octopus:\n%s\nvs\n%s",
				checked, got, want)
		}
	}
}
