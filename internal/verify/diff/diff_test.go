package diff

import (
	"math"
	"math/rand"
	"testing"

	"octopus/internal/algo"
	"octopus/internal/verify"
)

// TestDifferentialSuite runs every algorithm over ≥200 shared random
// instances: every schedule must pass the independent validator with the
// scheduler's claimed metrics, every run must be deterministic, and the
// cheap Octopus variants must stay near plain Octopus in aggregate.
func TestDifferentialSuite(t *testing.T) {
	instances := 208
	if testing.Short() {
		instances = 60
	}
	rng := rand.New(rand.NewSource(42))
	runners := Runners()
	delivered := make(map[string]int, len(runners))
	checked := 0
	for checked < instances {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		checked++
		for _, r := range runners {
			out, err := r.Run(inst)
			if err != nil {
				t.Fatalf("instance %d: %s failed to run: %v", checked, r.Name, err)
			}
			rep, err := out.Check()
			if err != nil {
				t.Fatalf("instance %d: %s: %v", checked, r.Name, err)
			}
			if rep.Delivered < 0 || rep.Psi < 0 {
				t.Fatalf("instance %d: %s: negative replay metrics %+v", checked, r.Name, rep)
			}
			if r.Core {
				delivered[r.Name] += rep.Delivered
			}
			if checked%3 == 0 {
				fp1, err := out.Fingerprint()
				if err != nil {
					t.Fatal(err)
				}
				again, err := r.Run(inst)
				if err != nil {
					t.Fatal(err)
				}
				fp2, err := again.Fingerprint()
				if err != nil {
					t.Fatal(err)
				}
				if fp1 != fp2 {
					t.Fatalf("instance %d: %s is nondeterministic", checked, r.Name)
				}
			}
		}
	}
	t.Logf("validated %d instances × %d algorithms; core delivered totals: %v",
		checked, len(runners), delivered)

	// Aggregate variant gaps (per-instance ratios are too noisy on tiny
	// loads; the documented gaps are the package-level expectations of
	// octopus_test.go, checked here across the whole suite).
	full := delivered["octopus"]
	if full == 0 {
		t.Fatal("plain Octopus delivered nothing across the suite")
	}
	if bin := delivered["octopus-b"]; float64(bin) < 0.8*float64(full) {
		t.Errorf("Octopus-B delivered %d, below 0.8× plain Octopus %d", bin, full)
	}
	if greedy := delivered["octopus-g"]; float64(greedy) < 0.75*float64(full) {
		t.Errorf("Octopus-G delivered %d, below 0.75× plain Octopus %d", greedy, full)
	}
}

// TestTheorem1AgainstBruteForce checks the paper's approximation guarantee
// against the true optimum: on every brute-forceable instance, plain
// Octopus's ψ is at least (1 − 1/e^{1/𝒟})·W/(W+Δ)·OPT(ψ) — and no variant's
// claimed metrics ever exceed OPT.
func TestTheorem1AgainstBruteForce(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 20
	}
	rng := rand.New(rand.NewSource(7))
	runners := Runners()
	checked := 0
	for checked < trials {
		inst := verify.RandomTinyInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		checked++
		opt, err := verify.BruteForce(inst.G, inst.Load, verify.BruteOptions{
			Window: inst.Window, Delta: inst.Delta,
		})
		if err != nil {
			t.Fatalf("instance %d: %v", checked, err)
		}
		for _, r := range runners {
			if !r.Core {
				continue
			}
			out, err := r.Run(inst)
			if err != nil {
				t.Fatalf("instance %d: %s: %v", checked, r.Name, err)
			}
			rep, err := out.Check()
			if err != nil {
				t.Fatalf("instance %d: %s: %v", checked, r.Name, err)
			}
			// Feasible schedules cannot beat the exhaustive optimum (under
			// the bulk semantics all core plans are claimed in).
			if rep.Psi > opt.PsiOpt {
				t.Fatalf("instance %d: %s ψ=%d exceeds OPT(ψ)=%d", checked, r.Name, rep.Psi, opt.PsiOpt)
			}
			if rep.Delivered > opt.DeliveredOpt {
				t.Fatalf("instance %d: %s delivered %d > OPT=%d", checked, r.Name, rep.Delivered, opt.DeliveredOpt)
			}
			if r.Name != "octopus" {
				continue
			}
			d := float64(inst.Load.MaxHops())
			bound := (1 - math.Exp(-1/d)) * float64(inst.Window) / float64(inst.Window+inst.Delta)
			if float64(rep.Psi) < bound*float64(opt.PsiOpt)-1e-9 {
				t.Fatalf("instance %d: Octopus ψ=%d below Theorem 1 bound %.3f·OPT(ψ)=%.1f (OPT=%d, 𝒟=%v, W=%d, Δ=%d)",
					checked, rep.Psi, bound, bound*float64(opt.PsiOpt), opt.PsiOpt, d, inst.Window, inst.Delta)
			}
		}
	}
	t.Logf("Theorem 1 held on %d brute-forced instances", checked)
}

// TestRunnersCoverRoster guards the differential suite's coverage claim:
// the roster is exactly the algorithm registry, in order, with the Core
// flag matching the registry's own classification. A new algorithm cannot
// be registered without landing under differential test.
func TestRunnersCoverRoster(t *testing.T) {
	runners := Runners()
	reg := algo.Registry()
	if len(runners) != len(reg) {
		t.Fatalf("roster has %d runners, registry has %d algorithms", len(runners), len(reg))
	}
	seen := map[string]bool{}
	for i, r := range runners {
		if seen[r.Name] {
			t.Fatalf("duplicate runner %q", r.Name)
		}
		seen[r.Name] = true
		if r.Name != reg[i].Name() {
			t.Errorf("runner %d is %q, registry lists %q", i, r.Name, reg[i].Name())
		}
		if r.Core != algo.IsCore(reg[i]) {
			t.Errorf("runner %q: Core=%v, registry says %v", r.Name, r.Core, algo.IsCore(reg[i]))
		}
	}
}
