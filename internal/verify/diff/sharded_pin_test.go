package diff

import (
	"math/rand"
	"testing"

	"octopus/internal/algo"
	"octopus/internal/verify"
)

// TestShardedPinnedToOctopus pins octopus-sharded:pods=1 to plain octopus:
// the identity decomposition delegates to the exact octopus pipeline, so
// the schedule, the claimed plan, and the measured metrics must all be
// bit-for-bit identical — the fingerprints agree on every instance.
func TestShardedPinnedToOctopus(t *testing.T) {
	base, ok := algo.Lookup("octopus")
	if !ok {
		t.Fatal("octopus not registered")
	}
	sharded, ok := algo.Lookup("octopus-sharded")
	if !ok {
		t.Fatal("octopus-sharded not registered")
	}
	rng := rand.New(rand.NewSource(29))
	checked := 0
	for checked < 40 {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		checked++
		p := algo.Params{Window: inst.Window, Delta: inst.Delta}
		wantOut, err := base.Run(inst.G, inst.Load, p)
		if err != nil {
			t.Fatalf("instance %d: octopus: %v", checked, err)
		}
		sp := p
		sp.Pods = 1
		gotOut, err := sharded.Run(inst.G, inst.Load, sp)
		if err != nil {
			t.Fatalf("instance %d: octopus-sharded: %v", checked, err)
		}
		want, err := (&Outcome{Outcome: wantOut}).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		got, err := (&Outcome{Outcome: gotOut}).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("instance %d: octopus-sharded:pods=1 diverges from octopus:\n%s\nvs\n%s",
				checked, got, want)
		}
	}
}
