package diff

import (
	"math/rand"
	"testing"

	"octopus/internal/algo"
	"octopus/internal/core"
	"octopus/internal/verify"
)

// TestMatcherDifferentialEquivalence pins the exact-matcher modes across
// the whole registry on shared random instances:
//
//   - matcher=dense, matcher=sparse, and par=4 must reproduce the default
//     (auto) run bit-for-bit — same schedule bytes, same claims, same
//     metrics. The auto dense/sparse dispatch, the forced A/B paths, and
//     the parallel α evaluation are all documented as output-invariant;
//     this is the harness-level enforcement of that contract, mirroring
//     the observability on/off suite.
//   - matcher=warm is documented quality-equal, not bit-identical (it may
//     pick a different equal-weight optimum per iteration, so schedules
//     may diverge): every warm run must still pass the full independent
//     verifier with the planner's own claimed metrics, and must be
//     deterministic run to run. The per-call equal-weight pin of the warm
//     solver against the cold ones lives in internal/matching's oracle
//     and property tests.
//
// Algorithms that take no matcher (maxweight, rotornet, hybrid, ub, ...)
// are covered too: for them every variant is the plain run, so the
// bit-identity assertion is exact by construction.
func TestMatcherDifferentialEquivalence(t *testing.T) {
	instances := 36
	if testing.Short() {
		instances = 12
	}
	variants := []struct {
		name string
		bit  bool // must be bit-identical to the default run
		prep func(p algo.Params) algo.Params
	}{
		{"dense", true, func(p algo.Params) algo.Params { p.Matcher = core.MatcherDense; return p }},
		{"sparse", true, func(p algo.Params) algo.Params { p.Matcher = core.MatcherSparse; return p }},
		{"par4", true, func(p algo.Params) algo.Params { p.Parallelism = 4; return p }},
		{"warm", false, func(p algo.Params) algo.Params { p.Matcher = core.MatcherWarm; return p }},
	}
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for checked < instances {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		checked++
		for _, a := range algo.Registry() {
			base := algo.Params{Window: inst.Window, Delta: inst.Delta, KeepTrace: true}
			ref, err := a.Run(inst.G, inst.Load, base)
			if err != nil {
				t.Fatalf("instance %d: %s: %v", checked, a.Name(), err)
			}
			refFP, err := (&Outcome{Outcome: ref}).Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			for _, vr := range variants {
				out, err := a.Run(inst.G, inst.Load, vr.prep(base))
				if err != nil {
					t.Fatalf("instance %d: %s/%s: %v", checked, a.Name(), vr.name, err)
				}
				o := &Outcome{Outcome: out}
				fp, err := o.Fingerprint()
				if err != nil {
					t.Fatal(err)
				}
				if vr.bit {
					if fp != refFP {
						t.Errorf("instance %d: %s/%s diverged from the default run", checked, a.Name(), vr.name)
					}
					continue
				}
				// Quality-equal variant: independently verified and
				// deterministic, but free to pick another optimum.
				if _, err := o.Check(); err != nil {
					t.Errorf("instance %d: %s/%s failed verification: %v", checked, a.Name(), vr.name, err)
				}
				again, err := a.Run(inst.G, inst.Load, vr.prep(base))
				if err != nil {
					t.Fatal(err)
				}
				fp2, err := (&Outcome{Outcome: again}).Fingerprint()
				if err != nil {
					t.Fatal(err)
				}
				if fp != fp2 {
					t.Errorf("instance %d: %s/%s is nondeterministic", checked, a.Name(), vr.name)
				}
				// Warm state is keyed per α and probe pruning is
				// parallelism-independent, so the warm path itself must be
				// bit-identical across worker counts even though it may
				// diverge from the cold paths.
				wp := vr.prep(base)
				wp.Parallelism = 4
				par, err := a.Run(inst.G, inst.Load, wp)
				if err != nil {
					t.Fatal(err)
				}
				fpPar, err := (&Outcome{Outcome: par}).Fingerprint()
				if err != nil {
					t.Fatal(err)
				}
				if fp != fpPar {
					t.Errorf("instance %d: %s/%s par=4 diverged from par=1", checked, a.Name(), vr.name)
				}
			}
		}
	}
	t.Logf("matcher equivalence validated on %d instances × %d algorithms × %d variants",
		checked, len(algo.Registry()), len(variants))
}
