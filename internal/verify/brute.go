package verify

import (
	"fmt"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// BruteOptions configures the exhaustive reference solver. The zero value
// of every limit selects a default sized for the solver's feasible
// envelope (~4 nodes, W ≈ 10, a dozen packets).
type BruteOptions struct {
	Window int // W, the scheduling window in time slots (required)
	Delta  int // Δ, the reconfiguration delay in time slots

	// MaxNodes / MaxWindow / MaxPackets bound the accepted instance size
	// (defaults 4 / 12 / 12): beyond them the state space explodes and
	// BruteForce returns an error instead of hanging.
	MaxNodes   int
	MaxWindow  int
	MaxPackets int

	// MaxStates caps the number of distinct memoized states per objective
	// (default 1<<21); exceeding it returns an error.
	MaxStates int
}

// BruteResult reports the true optima of an MHS instance.
type BruteResult struct {
	PsiOpt       int64 // OPT(ψ), in traffic.WeightScale units
	DeliveredOpt int   // OPT(throughput): max packets deliverable
	States       int   // distinct states explored across both searches
}

// hopQueue is one (flow, position) bucket of waiting packets during the
// search, tied to the link its next hop uses.
type hopQueue struct {
	flow  int // index into bruteState.flows
	pos   int
	link  graph.Edge
	value int64 // objective value of advancing one packet from pos
}

type bruteFlow struct {
	route  traffic.Route
	weight int64
	hops   int
}

type bruteState struct {
	opt          BruteOptions
	flows        []bruteFlow
	counts       [][]int // counts[f][pos] = packets of flow f at route position pos
	memo         map[string]int64
	states       int
	overLimit    bool
	psiObjective bool
}

// BruteForce exhaustively solves the MHS instance (g, load) under opt by
// memoized search over configuration sequences: every maximal matching of
// the links with waiting traffic, every duration α, and every way of
// splitting each link's α-slot capacity among the subflows queued at it.
// Configurations use the base bulk semantics of the paper's §3 (a packet
// advances at most one hop per configuration), the setting of the
// Theorem 1 guarantee.
//
// It returns OPT(ψ) and OPT(throughput), each from its own search — the
// two optima are generally achieved by different schedules. Only
// single-route, single-port instances within the size limits are accepted.
func BruteForce(g *graph.Digraph, load *traffic.Load, opt BruteOptions) (*BruteResult, error) {
	if opt.Window <= 0 {
		return nil, fmt.Errorf("verify: brute force needs a positive window")
	}
	if opt.Delta < 0 {
		return nil, fmt.Errorf("verify: negative delta %d", opt.Delta)
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 4
	}
	if opt.MaxWindow == 0 {
		opt.MaxWindow = 12
	}
	if opt.MaxPackets == 0 {
		opt.MaxPackets = 12
	}
	if opt.MaxStates == 0 {
		opt.MaxStates = 1 << 21
	}
	if g.N() > opt.MaxNodes {
		return nil, fmt.Errorf("verify: %d nodes exceed the brute-force envelope of %d", g.N(), opt.MaxNodes)
	}
	if opt.Window > opt.MaxWindow {
		return nil, fmt.Errorf("verify: window %d exceeds the brute-force envelope of %d", opt.Window, opt.MaxWindow)
	}
	if total := load.TotalPackets(); total > opt.MaxPackets {
		return nil, fmt.Errorf("verify: %d packets exceed the brute-force envelope of %d", total, opt.MaxPackets)
	}
	if err := checkLoad(g, load, nil); err != nil {
		return nil, err
	}
	for i := range load.Flows {
		if len(load.Flows[i].Routes) != 1 {
			return nil, fmt.Errorf("verify: brute force supports single-route loads only (flow %d has %d routes)",
				load.Flows[i].ID, len(load.Flows[i].Routes))
		}
	}

	res := &BruteResult{}
	for _, psiObjective := range []bool{true, false} {
		st := newBruteState(load, opt, psiObjective)
		best := st.search(opt.Window)
		if st.overLimit {
			return nil, fmt.Errorf("verify: brute force exceeded %d states", opt.MaxStates)
		}
		res.States += st.states
		if psiObjective {
			res.PsiOpt = best
		} else {
			res.DeliveredOpt = int(best)
		}
	}
	return res, nil
}

func newBruteState(load *traffic.Load, opt BruteOptions, psiObjective bool) *bruteState {
	st := &bruteState{opt: opt, memo: make(map[string]int64)}
	for i := range load.Flows {
		f := &load.Flows[i]
		r := f.Routes[0]
		st.flows = append(st.flows, bruteFlow{route: r, weight: traffic.Weight(f.WeightLen(r)), hops: r.Hops()})
		counts := make([]int, r.Hops())
		counts[0] = f.Size
		st.counts = append(st.counts, counts)
	}
	st.psiObjective = psiObjective
	return st
}

// key encodes the mutable search state (positions + remaining slots).
func (st *bruteState) key(remaining int) string {
	buf := make([]byte, 0, 16)
	buf = append(buf, byte(remaining))
	for _, counts := range st.counts {
		for _, c := range counts {
			buf = append(buf, byte(c))
		}
		buf = append(buf, 0xff)
	}
	return string(buf)
}

// hopValue returns the objective value of advancing one packet of flow f
// from position pos: its ψ weight under the ψ objective, or 1 on the
// delivering hop under the throughput objective.
func (st *bruteState) hopValue(f, pos int) int64 {
	if st.psiObjective {
		return st.flows[f].weight
	}
	if pos+1 == st.flows[f].hops {
		return 1
	}
	return 0
}

// search returns the best attainable objective value from the current
// packet positions with the given remaining slots.
func (st *bruteState) search(remaining int) int64 {
	if st.overLimit || remaining < st.opt.Delta+1 {
		return 0
	}
	k := st.key(remaining)
	if v, ok := st.memo[k]; ok {
		return v
	}
	if len(st.memo) >= st.opt.MaxStates {
		st.overLimit = true
		return 0
	}
	st.memo[k] = 0 // placeholder; also terminates on revisits
	st.states++

	// The links with waiting traffic, and who waits at each.
	var queues []hopQueue
	byLink := make(map[graph.Edge][]int) // link -> indices into queues
	var links []graph.Edge
	for f := range st.counts {
		for pos, c := range st.counts[f] {
			if c == 0 {
				continue
			}
			r := st.flows[f].route
			e := graph.Edge{From: r[pos], To: r[pos+1]}
			if byLink[e] == nil {
				links = append(links, e)
			}
			byLink[e] = append(byLink[e], len(queues))
			queues = append(queues, hopQueue{flow: f, pos: pos, link: e, value: st.hopValue(f, pos)})
		}
	}
	best := int64(0)
	if len(links) == 0 {
		st.memo[k] = 0
		return 0
	}

	forEachMaximalMatching(links, func(m []graph.Edge) {
		// Dominance: α beyond the longest queue in the matching only burns
		// slots, so cap it there.
		maxAlpha := remaining - st.opt.Delta
		maxUseful := 0
		for _, e := range m {
			waiting := 0
			for _, qi := range byLink[e] {
				waiting += st.counts[queues[qi].flow][queues[qi].pos]
			}
			if waiting > maxUseful {
				maxUseful = waiting
			}
		}
		if maxUseful < maxAlpha {
			maxAlpha = maxUseful
		}
		for alpha := 1; alpha <= maxAlpha; alpha++ {
			st.allocate(m, 0, alpha, byLink, queues, 0, remaining-alpha-st.opt.Delta, &best)
		}
	})
	st.memo[k] = best
	return best
}

// allocate branches over every way of splitting each matching link's α-slot
// capacity among the subflows queued at it (links are independent given the
// matching; their allocations multiply). At the leaf it recurses with the
// packets advanced.
func (st *bruteState) allocate(m []graph.Edge, li, alpha int, byLink map[graph.Edge][]int, queues []hopQueue, gained int64, nextRemaining int, best *int64) {
	if st.overLimit {
		return
	}
	if li == len(m) {
		if v := gained + st.search(nextRemaining); v > *best {
			*best = v
		}
		return
	}
	qis := byLink[m[li]]
	// Per-link total service is forced maximal: serving fewer packets than
	// capacity allows never helps (an exchange argument — the skipped
	// packet could always have been advanced and served identically
	// later), so only the split among subflows is branched.
	waiting := 0
	for _, qi := range qis {
		waiting += st.counts[queues[qi].flow][queues[qi].pos]
	}
	total := alpha
	if waiting < total {
		total = waiting
	}
	st.split(qis, 0, total, m, li, alpha, byLink, queues, gained, nextRemaining, best)
}

// split distributes exactly `left` served packets among qis[qi:].
func (st *bruteState) split(qis []int, qi, left int, m []graph.Edge, li, alpha int, byLink map[graph.Edge][]int, queues []hopQueue, gained int64, nextRemaining int, best *int64) {
	if st.overLimit {
		return
	}
	if qi == len(qis) {
		if left == 0 {
			st.allocate(m, li+1, alpha, byLink, queues, gained, nextRemaining, best)
		}
		return
	}
	q := &queues[qis[qi]]
	avail := st.counts[q.flow][q.pos]
	// Lower bound: later subflows must be able to absorb the rest.
	rest := 0
	for _, later := range qis[qi+1:] {
		rest += st.counts[queues[later].flow][queues[later].pos]
	}
	lo := left - rest
	if lo < 0 {
		lo = 0
	}
	hi := avail
	if hi > left {
		hi = left
	}
	for take := lo; take <= hi; take++ {
		st.counts[q.flow][q.pos] -= take
		deliveredHop := q.pos+1 == st.flows[q.flow].hops
		if !deliveredHop {
			st.counts[q.flow][q.pos+1] += take
		}
		st.split(qis, qi+1, left-take, m, li, alpha, byLink, queues, gained+int64(take)*q.value, nextRemaining, best)
		if !deliveredHop {
			st.counts[q.flow][q.pos+1] -= take
		}
		st.counts[q.flow][q.pos] += take
	}
}

// forEachMaximalMatching enumerates every matching of links that is maximal
// within links (no listed link can be added), invoking fn for each.
func forEachMaximalMatching(links []graph.Edge, fn func([]graph.Edge)) {
	usedOut := make(map[int]bool)
	usedIn := make(map[int]bool)
	var cur []graph.Edge
	var rec func(i int)
	rec = func(i int) {
		if i == len(links) {
			for _, e := range links {
				if !usedOut[e.From] && !usedIn[e.To] {
					return // extensible: not maximal
				}
			}
			fn(cur)
			return
		}
		e := links[i]
		if !usedOut[e.From] && !usedIn[e.To] {
			usedOut[e.From], usedIn[e.To] = true, true
			cur = append(cur, e)
			rec(i + 1)
			cur = cur[:len(cur)-1]
			usedOut[e.From], usedIn[e.To] = false, false
		}
		rec(i + 1)
	}
	rec(0)
}
