package verify_test

import (
	"math/rand"
	"strings"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/simulate"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

// example1 is the paper's Figure 1 instance.
func example1() (*graph.Digraph, *traffic.Load) {
	const a, b, c, d = 0, 1, 2, 3
	g := graph.New(4)
	g.AddEdge(d, a)
	g.AddEdge(a, b)
	g.AddEdge(c, b)
	g.AddEdge(b, a)
	g.AddEdge(b, c)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 100, Src: a, Dst: c, Routes: []traffic.Route{{a, b, c}}},
		{ID: 2, Size: 50, Src: c, Dst: a, Routes: []traffic.Route{{c, b, a}}},
		{ID: 3, Size: 50, Src: d, Dst: b, Routes: []traffic.Route{{d, a, b}}},
	}}
	return g, load
}

func TestScheduleValidAndReplayed(t *testing.T) {
	g, load := example1()
	// Hand-built optimal-style schedule: serve (a,b)+(c,b)+... then the
	// second hops.
	sch := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 3, To: 0}}, Alpha: 50},
		{Links: []graph.Edge{{From: 1, To: 2}, {From: 2, To: 1}}, Alpha: 50},
		{Links: []graph.Edge{{From: 1, To: 0}, {From: 0, To: 1}}, Alpha: 50},
		{Links: []graph.Edge{{From: 1, To: 2}}, Alpha: 50},
	}}
	rep, err := verify.Schedule(g, load, sch, verify.Options{Window: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check every replayed number against the packet-level simulator.
	sim, err := simulate.Run(g, load, sch, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != sim.Delivered || rep.Hops != sim.Hops || rep.Psi != sim.Psi {
		t.Fatalf("replay (%d, %d, %d) != simulator (%d, %d, %d)",
			rep.Delivered, rep.Hops, rep.Psi, sim.Delivered, sim.Hops, sim.Psi)
	}
	if rep.SlotsUsed != sim.SlotsUsed || rep.Configs != sim.Configs {
		t.Fatalf("slots/configs (%d, %d) != simulator (%d, %d)",
			rep.SlotsUsed, rep.Configs, sim.SlotsUsed, sim.Configs)
	}
}

func TestScheduleRejectsBadConfigs(t *testing.T) {
	g, load := example1()
	cases := []struct {
		name string
		sch  *schedule.Schedule
		opt  verify.Options
		want string
	}{
		{
			name: "not a matching",
			sch: &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
				{Links: []graph.Edge{{From: 1, To: 0}, {From: 1, To: 2}}, Alpha: 5},
			}},
			want: "output ports",
		},
		{
			name: "in-port collision",
			sch: &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
				{Links: []graph.Edge{{From: 0, To: 1}, {From: 2, To: 1}}, Alpha: 5},
			}},
			want: "input ports",
		},
		{
			name: "absent link",
			sch: &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
				{Links: []graph.Edge{{From: 0, To: 3}}, Alpha: 5},
			}},
			want: "absent link",
		},
		{
			name: "duplicate link",
			sch: &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
				{Links: []graph.Edge{{From: 0, To: 1}, {From: 0, To: 1}}, Alpha: 5},
			}},
			want: "twice",
		},
		{
			name: "non-positive alpha",
			sch: &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
				{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 0},
			}},
			want: "non-positive duration",
		},
		{
			name: "over window",
			sch: &schedule.Schedule{Delta: 5, Configs: []schedule.Configuration{
				{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 10},
			}},
			opt:  verify.Options{Window: 12},
			want: "exceeds window",
		},
		{
			name: "negative delta",
			sch: &schedule.Schedule{Delta: -1, Configs: []schedule.Configuration{
				{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 10},
			}},
			want: "negative reconfiguration delay",
		},
	}
	for _, tc := range cases {
		_, err := verify.Schedule(g, load, tc.sch, tc.opt)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// The in-port collision is legal in the 2-port model.
	twoPort := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 2, To: 1}}, Alpha: 5},
	}}
	if _, err := verify.Schedule(g, load, twoPort, verify.Options{Ports: 2}); err != nil {
		t.Errorf("2-port config rejected: %v", err)
	}
}

func TestScheduleRejectsBadLoad(t *testing.T) {
	g, _ := example1()
	sch := &schedule.Schedule{Delta: 1}
	cases := []struct {
		name string
		load *traffic.Load
		want string
	}{
		{
			name: "duplicate IDs",
			load: &traffic.Load{Flows: []traffic.Flow{
				{ID: 1, Size: 1, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
				{ID: 1, Size: 1, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
			}},
			want: "duplicate flow ID",
		},
		{
			name: "non-positive size",
			load: &traffic.Load{Flows: []traffic.Flow{
				{ID: 1, Size: 0, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
			}},
			want: "non-positive size",
		},
		{
			name: "off-fabric route",
			load: &traffic.Load{Flows: []traffic.Flow{
				{ID: 1, Size: 1, Src: 0, Dst: 3, Routes: []traffic.Route{{0, 3}}},
			}},
			want: "not a fabric link",
		},
		{
			name: "route endpoints mismatch",
			load: &traffic.Load{Flows: []traffic.Flow{
				{ID: 1, Size: 1, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1}}},
			}},
			want: "does not connect",
		},
		{
			name: "repeated node",
			load: &traffic.Load{Flows: []traffic.Flow{
				{ID: 1, Size: 1, Src: 0, Dst: 0, Routes: []traffic.Route{{0, 1, 0}}},
			}},
			want: "repeats node",
		},
	}
	for _, tc := range cases {
		_, err := verify.Schedule(g, tc.load, sch, verify.Options{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestScheduleClaimChecking(t *testing.T) {
	g, load := example1()
	sch := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 30},
	}}
	// 30 first-hop crossings of flow 1: ψ = 30·w(2), nothing delivered.
	good := &verify.Claim{Delivered: 0, Hops: 30, Psi: 30 * traffic.Weight(2)}
	if _, err := verify.Schedule(g, load, sch, verify.Options{Claim: good}); err != nil {
		t.Fatalf("correct claim rejected: %v", err)
	}
	inflated := &verify.Claim{Delivered: 5, Hops: 30, Psi: 30 * traffic.Weight(2)}
	if _, err := verify.Schedule(g, load, sch, verify.Options{Claim: inflated}); err == nil {
		t.Fatal("inflated claim accepted")
	}
	// As a lower bound, an under-claim passes and an over-claim fails.
	under := &verify.Claim{Delivered: 0, Hops: 20, Psi: 20 * traffic.Weight(2)}
	if _, err := verify.Schedule(g, load, sch, verify.Options{Claim: under, ClaimIsLowerBound: true}); err != nil {
		t.Fatalf("valid lower bound rejected: %v", err)
	}
	if _, err := verify.Schedule(g, load, sch, verify.Options{Claim: inflated, ClaimIsLowerBound: true}); err == nil {
		t.Fatal("violated lower bound accepted")
	}
}

func TestScheduleUndirectedPairing(t *testing.T) {
	u := graph.NewU(3)
	u.AddEdge(0, 1)
	u.AddEdge(1, 2)
	g := u.Directed()
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	paired := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}}, Alpha: 5},
	}}
	if _, err := verify.Schedule(g, load, paired, verify.Options{Undirected: u}); err != nil {
		t.Fatalf("paired matching rejected: %v", err)
	}
	unpaired := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 5},
	}}
	if _, err := verify.Schedule(g, load, unpaired, verify.Options{Undirected: u}); err == nil {
		t.Fatal("unpaired link accepted in bidirectional mode")
	}
	// (0,1) and (1,2) share node 1: not an undirected matching even though
	// the directed degrees are within the 1-port budget per direction.
	shared := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2}, {From: 2, To: 1}}, Alpha: 5},
	}}
	if _, err := verify.Schedule(g, load, shared, verify.Options{Undirected: u}); err == nil {
		t.Fatal("node-sharing undirected links accepted")
	}
}

// Replay must agree with the packet-level simulator on random scenarios in
// every mode combination — two independent implementations of the same
// semantics.
func TestReplayMatchesSimulatorRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		inst := verify.RandomInstance(rng).SingleRoute()
		if len(inst.Load.Flows) == 0 {
			continue
		}
		sch := randomFeasibleSchedule(inst.G, inst.Window, inst.Delta, rng)
		for _, multihop := range []bool{false, true} {
			for _, eps := range []int{0, 8} {
				opt := verify.Options{Window: inst.Window, MultiHop: multihop, Epsilon64: eps}
				rep, err := verify.Schedule(inst.G, inst.Load, sch, opt)
				if err != nil {
					t.Fatalf("instance %d: %v", i, err)
				}
				sim, err := simulate.Run(inst.G, inst.Load, sch, simulate.Options{
					Window: inst.Window, MultiHop: multihop, Epsilon64: eps,
				})
				if err != nil {
					t.Fatalf("instance %d: %v", i, err)
				}
				if rep.Delivered != sim.Delivered || rep.Hops != sim.Hops || rep.Psi != sim.Psi {
					t.Fatalf("instance %d (multihop=%v eps=%d): replay (%d, %d, %d) != simulator (%d, %d, %d)",
						i, multihop, eps, rep.Delivered, rep.Hops, rep.Psi, sim.Delivered, sim.Hops, sim.Psi)
				}
			}
		}
	}
}

// randomFeasibleSchedule builds a random schedule of valid matchings of g
// fitting the window.
func randomFeasibleSchedule(g *graph.Digraph, window, delta int, rng *rand.Rand) *schedule.Schedule {
	sch := &schedule.Schedule{Delta: delta}
	used := 0
	for used+delta < window && rng.Intn(6) != 0 {
		var links []graph.Edge
		usedF := map[int]bool{}
		usedT := map[int]bool{}
		for tries := 0; tries < g.N(); tries++ {
			i, j := rng.Intn(g.N()), rng.Intn(g.N())
			if i != j && !usedF[i] && !usedT[j] && g.HasEdge(i, j) {
				links = append(links, graph.Edge{From: i, To: j})
				usedF[i] = true
				usedT[j] = true
			}
		}
		if len(links) == 0 {
			continue
		}
		alpha := 1 + rng.Intn(window-used-delta)
		sch.Configs = append(sch.Configs, schedule.Configuration{Links: links, Alpha: alpha})
		used += alpha + delta
	}
	return sch
}
