package verify

import (
	"math/rand"

	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// Instance is a randomly generated MHS problem instance, shared by the
// differential harness and the per-package property tests so every
// scheduler is exercised on the same distribution of fabrics and loads.
type Instance struct {
	G      *graph.Digraph
	Load   *traffic.Load
	Window int
	Delta  int
}

// RandomInstance generates a small instance suitable for every scheduler
// in the repository: 4-8 nodes over a complete, chord-ring, or random
// partial fabric, 1-6 flows of 1-20 packets with 1-3 hop routes (some
// flows carry a second candidate route for the Octopus+ setting), window
// 30-130, delta 0-6. Instances are deterministic in rng.
func RandomInstance(rng *rand.Rand) *Instance {
	n := 4 + rng.Intn(5)
	var g *graph.Digraph
	switch rng.Intn(3) {
	case 0:
		g = graph.Complete(n)
	case 1:
		g = graph.ChordRing(n, 2)
	default:
		g = graph.RandomPartial(n, 2+rng.Intn(3), rng)
	}
	load := randomLoad(g, rng, 1+rng.Intn(6), 20, 3, 2)
	return &Instance{
		G:      g,
		Load:   load,
		Window: 30 + rng.Intn(101),
		Delta:  rng.Intn(7),
	}
}

// RandomTinyInstance generates an instance inside the brute-force
// envelope: 3-4 nodes, at most 9 packets, window 6-10, delta 0-2.
func RandomTinyInstance(rng *rand.Rand) *Instance {
	n := 3 + rng.Intn(2)
	var g *graph.Digraph
	if rng.Intn(2) == 0 {
		g = graph.Complete(n)
	} else {
		g = graph.ChordRing(n, 2)
	}
	load := &traffic.Load{}
	packets := 0
	flows := 1 + rng.Intn(3)
	for f := 0; f < flows && packets < 9; f++ {
		fl := randomFlow(g, rng, f+1, 3, 2, 1)
		if fl == nil {
			continue
		}
		if fl.Size > 9-packets {
			fl.Size = 9 - packets
		}
		packets += fl.Size
		load.Flows = append(load.Flows, *fl)
	}
	return &Instance{
		G:      g,
		Load:   load,
		Window: 6 + rng.Intn(5),
		Delta:  rng.Intn(3),
	}
}

// randomLoad draws up to flows random flows over g.
func randomLoad(g *graph.Digraph, rng *rand.Rand, flows, maxSize, maxHops, maxRoutes int) *traffic.Load {
	load := &traffic.Load{}
	for f := 0; f < flows; f++ {
		fl := randomFlow(g, rng, f+1, maxSize, maxHops, maxRoutes)
		if fl == nil {
			continue
		}
		load.Flows = append(load.Flows, *fl)
	}
	return load
}

// randomFlow draws one flow with a random endpoint pair and 1..maxRoutes
// distinct random routes, or nil when no route was found.
func randomFlow(g *graph.Digraph, rng *rand.Rand, id, maxSize, maxHops, maxRoutes int) *traffic.Flow {
	n := g.N()
	src := rng.Intn(n)
	dst := (src + 1 + rng.Intn(n-1)) % n
	var routes []traffic.Route
	want := 1 + rng.Intn(maxRoutes)
	for r := 0; r < want; r++ {
		hops := 1 + rng.Intn(maxHops)
		route, ok := traffic.RandomRoute(g, src, dst, hops, rng)
		if !ok {
			continue
		}
		dup := false
		for _, prev := range routes {
			if prev.Equal(route) {
				dup = true
			}
		}
		if !dup {
			routes = append(routes, route)
		}
	}
	if len(routes) == 0 {
		return nil
	}
	return &traffic.Flow{
		ID:     id,
		Size:   1 + rng.Intn(maxSize),
		Src:    src,
		Dst:    dst,
		Routes: routes,
	}
}

// SingleRoute returns a copy of the instance whose flows keep only their
// primary route — the single-route MHS setting required by BruteForce and
// by exact plan/replay claim checks.
func (in *Instance) SingleRoute() *Instance {
	load := in.Load.Clone()
	for i := range load.Flows {
		load.Flows[i].Routes = load.Flows[i].Routes[:1]
	}
	return &Instance{G: in.G, Load: load, Window: in.Window, Delta: in.Delta}
}
