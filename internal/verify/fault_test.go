package verify

import (
	"strings"
	"testing"

	"octopus/internal/fault"
	"octopus/internal/graph"
	"octopus/internal/schedule"
	"octopus/internal/traffic"
)

func TestEpochScheduleRejectsFailedLink(t *testing.T) {
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 2, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	sch := &schedule.Schedule{Delta: 1, Configs: []schedule.Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 2},
	}}
	tr := &fault.Trace{Events: []fault.Event{{At: 50, Kind: fault.LinkDown, From: 0, To: 1}}}

	// Before the failure the schedule is valid.
	rep, err := EpochSchedule(g, tr, 0, load, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 2 {
		t.Fatalf("delivered %d, want 2", rep.Delivered)
	}
	// From slot 50 on, the same schedule routes over a dead link. The route
	// feasibility check fires first, so the error names the missing link.
	if _, err := EpochSchedule(g, tr, 50, load, sch, Options{}); err == nil {
		t.Fatal("schedule over a failed link accepted")
	} else if !strings.Contains(err.Error(), "not a fabric link") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A route through a failed node is equally invalid.
	nodeTr := &fault.Trace{Events: []fault.Event{{At: 0, Kind: fault.NodeDown, Node: 1}}}
	if _, err := EpochSchedule(g, nodeTr, 0, load, sch, Options{}); err == nil {
		t.Fatal("route through a failed node accepted")
	}
	// Negative epoch starts are rejected.
	if _, err := EpochSchedule(g, tr, -1, load, sch, Options{}); err == nil {
		t.Fatal("negative epoch start accepted")
	}
}
