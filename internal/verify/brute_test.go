package verify_test

import (
	"math/rand"
	"strings"
	"testing"

	"octopus/internal/graph"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

func TestBruteForceSingleHop(t *testing.T) {
	g := graph.Complete(2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 3, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	res, err := verify.BruteForce(g, load, verify.BruteOptions{Window: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredOpt != 3 {
		t.Errorf("DeliveredOpt = %d, want 3", res.DeliveredOpt)
	}
	if want := 3 * traffic.Weight(1); res.PsiOpt != want {
		t.Errorf("PsiOpt = %d, want %d", res.PsiOpt, want)
	}
}

func TestBruteForceTwoHopRelay(t *testing.T) {
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 2, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
	}}
	// W=6, Δ=1: two configurations of α=2 move both packets over both hops.
	res, err := verify.BruteForce(g, load, verify.BruteOptions{Window: 6, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredOpt != 2 {
		t.Errorf("DeliveredOpt = %d, want 2", res.DeliveredOpt)
	}
	if want := 4 * traffic.Weight(2); res.PsiOpt != want {
		t.Errorf("PsiOpt = %d, want %d", res.PsiOpt, want)
	}
	// With W=4 only one full configuration fits usefully: 2 hops cross.
	res, err = verify.BruteForce(g, load, verify.BruteOptions{Window: 4, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredOpt != 1 {
		t.Errorf("W=4: DeliveredOpt = %d, want 1", res.DeliveredOpt)
	}
}

// Two flows competing for link (0,1): the optimum must pipeline flow B's
// first hop before flow A drains the link. Hand-solvable: OPT(ψ) = 3·w(1),
// OPT(throughput) = 3.
func TestBruteForceCompetingFlows(t *testing.T) {
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 2, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		{ID: 2, Size: 2, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 1, 2}}},
	}}
	res, err := verify.BruteForce(g, load, verify.BruteOptions{Window: 3, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Slot 1: B crosses (0,1). Slot 2: A crosses (0,1) while B crosses
	// (1,2). Slot 3: A crosses (0,1). ψ = 2·w(1) + 2·w(2) = 3·w(1).
	if want := 2*traffic.Weight(1) + 2*traffic.Weight(2); res.PsiOpt != want {
		t.Errorf("PsiOpt = %d, want %d", res.PsiOpt, want)
	}
	if res.DeliveredOpt != 3 {
		t.Errorf("DeliveredOpt = %d, want 3", res.DeliveredOpt)
	}
}

func TestBruteForceEnvelope(t *testing.T) {
	big := graph.Complete(5)
	small := graph.Complete(3)
	one := func(size int, routes ...traffic.Route) *traffic.Load {
		return &traffic.Load{Flows: []traffic.Flow{
			{ID: 1, Size: size, Src: 0, Dst: 1, Routes: routes},
		}}
	}
	cases := []struct {
		name string
		g    *graph.Digraph
		load *traffic.Load
		opt  verify.BruteOptions
		want string
	}{
		{"too many nodes", big, one(1, traffic.Route{0, 1}), verify.BruteOptions{Window: 5}, "nodes exceed"},
		{"window too long", small, one(1, traffic.Route{0, 1}), verify.BruteOptions{Window: 13}, "window 13 exceeds"},
		{"too many packets", small, one(13, traffic.Route{0, 1}), verify.BruteOptions{Window: 5}, "packets exceed"},
		{"multi-route", small, one(1, traffic.Route{0, 1}, traffic.Route{0, 2, 1}), verify.BruteOptions{Window: 5}, "single-route"},
		{"no window", small, one(1, traffic.Route{0, 1}), verify.BruteOptions{}, "positive window"},
	}
	for _, tc := range cases {
		_, err := verify.BruteForce(tc.g, tc.load, tc.opt)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// No feasible schedule may beat the brute-force optimum: replaying random
// feasible schedules on tiny instances stays within OPT(ψ) and
// OPT(throughput).
func TestBruteForceDominatesRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		inst := verify.RandomTinyInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		res, err := verify.BruteForce(inst.G, inst.Load, verify.BruteOptions{Window: inst.Window, Delta: inst.Delta})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		for j := 0; j < 10; j++ {
			sch := randomFeasibleSchedule(inst.G, inst.Window, inst.Delta, rng)
			rep, err := verify.Schedule(inst.G, inst.Load, sch, verify.Options{Window: inst.Window})
			if err != nil {
				t.Fatalf("instance %d schedule %d: %v", i, j, err)
			}
			if rep.Psi > res.PsiOpt {
				t.Fatalf("instance %d: random schedule ψ=%d beats OPT(ψ)=%d", i, rep.Psi, res.PsiOpt)
			}
			if rep.Delivered > res.DeliveredOpt {
				t.Fatalf("instance %d: random schedule delivers %d > OPT=%d", i, rep.Delivered, res.DeliveredOpt)
			}
		}
	}
}

// The optima are monotone in the window length.
func TestBruteForceWindowMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 15; i++ {
		inst := verify.RandomTinyInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		prevPsi, prevDel := int64(-1), -1
		for w := 2; w <= 8; w++ {
			res, err := verify.BruteForce(inst.G, inst.Load, verify.BruteOptions{Window: w, Delta: inst.Delta})
			if err != nil {
				t.Fatal(err)
			}
			if res.PsiOpt < prevPsi || res.DeliveredOpt < prevDel {
				t.Fatalf("instance %d: OPT decreased going to W=%d: ψ %d->%d, delivered %d->%d",
					i, w, prevPsi, res.PsiOpt, prevDel, res.DeliveredOpt)
			}
			prevPsi, prevDel = res.PsiOpt, res.DeliveredOpt
		}
	}
}
