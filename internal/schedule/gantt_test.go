package schedule

import (
	"bytes"
	"strings"
	"testing"

	"octopus/internal/graph"
)

func TestWriteGantt(t *testing.T) {
	s := &Schedule{Delta: 5, Configs: []Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 2, To: 0}}, Alpha: 30},
		{Links: []graph.Edge{{From: 1, To: 2}}, Alpha: 7},
	}}
	var buf bytes.Buffer
	if err := s.WriteGantt(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	// Header (2 lines) + one row per node.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Δ=5") {
		t.Fatalf("missing delta header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "30") || !strings.Contains(lines[1], "7") {
		t.Fatalf("missing durations: %q", lines[1])
	}
	// Node 0 sends to 1 in config 0, idle in config 1.
	if !strings.HasPrefix(lines[2], "0>") || !strings.Contains(lines[2], "1") || !strings.Contains(lines[2], ".") {
		t.Fatalf("node 0 row: %q", lines[2])
	}
	// Node 1 idle then sends to 2.
	if !strings.HasPrefix(lines[3], "1>") || !strings.Contains(lines[3], "2") {
		t.Fatalf("node 1 row: %q", lines[3])
	}
}

func TestWriteGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Schedule{}).WriteGantt(&buf, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("got %q", buf.String())
	}
}
