package schedule

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"octopus/internal/graph"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := &Schedule{Delta: 7, Configs: []Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 2, To: 3}}, Alpha: 30},
		{Links: []graph.Edge{{From: 1, To: 0}}, Alpha: 9},
	}}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Delta != 7 || len(got.Configs) != 2 || got.Cost() != s.Cost() {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range s.Configs {
		if got.Configs[i].Alpha != s.Configs[i].Alpha || len(got.Configs[i].Links) != len(s.Configs[i].Links) {
			t.Fatalf("config %d differs", i)
		}
		for k := range s.Configs[i].Links {
			if got.Configs[i].Links[k] != s.Configs[i].Links[k] {
				t.Fatalf("config %d link %d differs", i, k)
			}
		}
	}
}

func TestScheduleReadJSONRejects(t *testing.T) {
	cases := []string{
		`{`,
		`{"delta":-1,"configs":[]}`,
		`{"delta":1,"configs":[{"alpha":0,"from":[],"to":[]}]}`,
		`{"delta":1,"configs":[{"alpha":5,"from":[0],"to":[]}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestScheduleSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.json")
	s := &Schedule{Delta: 2, Configs: []Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 3},
	}}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost() != 5 {
		t.Fatalf("cost = %d", got.Cost())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
