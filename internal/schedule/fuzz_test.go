package schedule

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzScheduleJSON checks the schedule parser never panics and that
// everything it accepts is structurally sane and round-trips byte-stably.
func FuzzScheduleJSON(f *testing.F) {
	f.Add(`{"delta":1,"configs":[{"alpha":5,"from":[0,2],"to":[1,3]}]}`)
	f.Add(`{"delta":0,"configs":[]}`)
	f.Add(`{`)
	f.Add(`{"delta":-1,"configs":[]}`)
	f.Add(`{"delta":1,"configs":[{"alpha":0,"from":[0],"to":[1]}]}`)
	f.Add(`{"delta":1,"configs":[{"alpha":3,"from":[0,1],"to":[1]}]}`)
	f.Add(`{"delta":2,"configs":[{"alpha":9007199254740993,"from":[],"to":[]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		sch, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// ReadJSON's documented guarantees on anything it accepts.
		if sch.Delta < 0 {
			t.Fatalf("accepted negative delta %d", sch.Delta)
		}
		for i, c := range sch.Configs {
			if c.Alpha <= 0 {
				t.Fatalf("accepted config %d with alpha %d", i, c.Alpha)
			}
		}
		// Whatever parses must re-serialize and re-parse identically.
		var buf bytes.Buffer
		if err := sch.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted schedule failed to serialize: %v", err)
		}
		first := buf.String()
		again, err := ReadJSON(strings.NewReader(first))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := again.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if first != buf2.String() {
			t.Fatal("round trip is not byte-stable")
		}
		if again.Cost() != sch.Cost() || len(again.Configs) != len(sch.Configs) {
			t.Fatal("round trip changed the schedule")
		}
	})
}
