package schedule

import (
	"testing"

	"octopus/internal/graph"
)

func TestCost(t *testing.T) {
	s := &Schedule{Delta: 20}
	if s.Cost() != 0 {
		t.Fatalf("empty cost = %d", s.Cost())
	}
	s.Configs = []Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 50},
		{Links: []graph.Edge{{From: 1, To: 2}}, Alpha: 100},
	}
	if s.Cost() != 50+20+100+20 {
		t.Fatalf("cost = %d", s.Cost())
	}
}

func TestActiveLinkSlots(t *testing.T) {
	s := &Schedule{Delta: 5, Configs: []Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 2, To: 3}}, Alpha: 10},
		{Links: []graph.Edge{{From: 1, To: 0}}, Alpha: 7},
	}}
	if got := s.ActiveLinkSlots(); got != 2*10+7 {
		t.Fatalf("ActiveLinkSlots = %d", got)
	}
}

func TestValidate(t *testing.T) {
	g := graph.Complete(4)
	ok := &Schedule{Delta: 2, Configs: []Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}}, Alpha: 3},
	}}
	if err := ok.Validate(g, 10, 1); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if err := ok.Validate(g, 4, 1); err == nil {
		t.Fatal("over-window schedule accepted")
	}
	if err := ok.Validate(g, 0, 1); err != nil {
		t.Fatal("window check not skipped for window=0")
	}
	badAlpha := &Schedule{Configs: []Configuration{{Links: nil, Alpha: 0}}}
	if err := badAlpha.Validate(g, 0, 1); err == nil {
		t.Fatal("zero-alpha configuration accepted")
	}
	notMatching := &Schedule{Configs: []Configuration{
		{Links: []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}}, Alpha: 1},
	}}
	if err := notMatching.Validate(g, 0, 1); err == nil {
		t.Fatal("non-matching accepted at ports=1")
	}
	if err := notMatching.Validate(g, 0, 2); err != nil {
		t.Fatalf("2-port configuration rejected: %v", err)
	}
	// ports < 1 treated as 1.
	if err := notMatching.Validate(g, 0, 0); err == nil {
		t.Fatal("ports=0 did not default to 1")
	}
}

func TestTruncate(t *testing.T) {
	mk := func() *Schedule {
		return &Schedule{Delta: 10, Configs: []Configuration{
			{Links: []graph.Edge{{From: 0, To: 1}}, Alpha: 30}, // cost 40
			{Links: []graph.Edge{{From: 1, To: 2}}, Alpha: 30}, // cost 40
		}}
	}
	s := mk()
	if s.Truncate(100) {
		t.Fatal("truncated a fitting schedule")
	}
	s = mk()
	if !s.Truncate(70) || s.Cost() != 70 || s.Configs[1].Alpha != 20 {
		t.Fatalf("shorten-last failed: cost=%d configs=%v", s.Cost(), s.Configs)
	}
	s = mk()
	// Window 45: dropping the last config leaves cost 40 <= 45.
	if !s.Truncate(45) || len(s.Configs) != 1 || s.Cost() != 40 {
		t.Fatalf("drop-last failed: cost=%d len=%d", s.Cost(), len(s.Configs))
	}
	s = mk()
	if !s.Truncate(0) || len(s.Configs) != 0 {
		t.Fatalf("truncate-to-zero failed: %v", s.Configs)
	}
}

func TestConfigurationString(t *testing.T) {
	c := Configuration{Links: []graph.Edge{{From: 0, To: 1}, {From: 2, To: 3}}, Alpha: 7}
	if got := c.String(); got != "(0->1 2->3, 7)" {
		t.Fatalf("String() = %q", got)
	}
}
