package schedule

import (
	"fmt"
	"io"
	"strings"
)

// WriteGantt renders the schedule as an ASCII Gantt-style chart: one row
// per node over n nodes, one column per configuration, each cell showing
// the node's active out-link destination (or '.' when the node's output
// port is dark). The header row carries each configuration's duration.
// Useful for eyeballing what a scheduler decided (mhsim -gantt).
func (s *Schedule) WriteGantt(w io.Writer, n int) error {
	if len(s.Configs) == 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	// Column width: widest destination label or duration.
	width := 1
	for _, c := range s.Configs {
		if l := len(fmt.Sprint(c.Alpha)); l > width {
			width = l
		}
		for _, e := range c.Links {
			if l := len(fmt.Sprint(e.To)); l > width {
				width = l
			}
		}
	}
	rowLabel := len(fmt.Sprint(n - 1))
	pad := func(sv string) string {
		if len(sv) < width {
			return strings.Repeat(" ", width-len(sv)) + sv
		}
		return sv
	}
	// Header: durations (each configuration is preceded by Δ).
	if _, err := fmt.Fprintf(w, "%s  Δ=%d, α per configuration:\n", strings.Repeat(" ", rowLabel), s.Delta); err != nil {
		return err
	}
	header := make([]string, len(s.Configs))
	for i, c := range s.Configs {
		header[i] = pad(fmt.Sprint(c.Alpha))
	}
	if _, err := fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", rowLabel), strings.Join(header, " ")); err != nil {
		return err
	}
	for node := 0; node < n; node++ {
		cells := make([]string, len(s.Configs))
		for i, c := range s.Configs {
			cells[i] = pad(".")
			for _, e := range c.Links {
				if e.From == node {
					cells[i] = pad(fmt.Sprint(e.To))
					break
				}
			}
		}
		label := fmt.Sprint(node)
		if len(label) < rowLabel {
			label = strings.Repeat(" ", rowLabel-len(label)) + label
		}
		if _, err := fmt.Fprintf(w, "%s> %s\n", label, strings.Join(cells, " ")); err != nil {
			return err
		}
	}
	return nil
}
