package schedule

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"octopus/internal/graph"
)

// jsonSchedule is the serialized form of a Schedule: flat link arrays keep
// the files compact and diff-friendly.
type jsonSchedule struct {
	Delta   int          `json:"delta"`
	Configs []jsonConfig `json:"configs"`
}

type jsonConfig struct {
	Alpha int   `json:"alpha"`
	From  []int `json:"from"`
	To    []int `json:"to"`
}

// WriteJSON serializes the schedule as indented JSON, so a plan computed
// once (possibly on a big machine) can be replayed or inspected later.
func (s *Schedule) WriteJSON(w io.Writer) error {
	js := jsonSchedule{Delta: s.Delta, Configs: make([]jsonConfig, len(s.Configs))}
	for i, c := range s.Configs {
		jc := jsonConfig{Alpha: c.Alpha, From: make([]int, len(c.Links)), To: make([]int, len(c.Links))}
		for k, e := range c.Links {
			jc.From[k] = e.From
			jc.To[k] = e.To
		}
		js.Configs[i] = jc
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(js)
}

// ReadJSON parses a schedule from JSON and checks structural sanity
// (positive durations, matching From/To lengths). Fabric validation is the
// caller's job via Validate.
func ReadJSON(r io.Reader) (*Schedule, error) {
	var js jsonSchedule
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("schedule: decoding: %w", err)
	}
	if js.Delta < 0 {
		return nil, fmt.Errorf("schedule: negative delta %d", js.Delta)
	}
	s := &Schedule{Delta: js.Delta}
	for i, jc := range js.Configs {
		if jc.Alpha <= 0 {
			return nil, fmt.Errorf("schedule: config %d has non-positive alpha", i)
		}
		if len(jc.From) != len(jc.To) {
			return nil, fmt.Errorf("schedule: config %d has %d sources but %d destinations", i, len(jc.From), len(jc.To))
		}
		links := make([]graph.Edge, len(jc.From))
		for k := range jc.From {
			links[k] = graph.Edge{From: jc.From[k], To: jc.To[k]}
		}
		s.Configs = append(s.Configs, Configuration{Links: links, Alpha: jc.Alpha})
	}
	return s, nil
}

// SaveFile writes the schedule to a JSON file.
func (s *Schedule) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a schedule from a JSON file.
func LoadFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
