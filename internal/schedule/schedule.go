// Package schedule defines circuit-network configuration sequences: the
// output of every scheduler in this repository and the input to the
// packet-level simulator.
//
// A Configuration (M, α) activates the set of links M for α time slots;
// switching between configurations costs the network's reconfiguration
// delay Δ. A Schedule is a sequence of configurations with total cost
// Σ(αₖ + Δ), which the MHS problem bounds by the window W.
package schedule

import (
	"fmt"
	"strings"

	"octopus/internal/graph"
)

// Configuration is one network configuration: the links active for Alpha
// consecutive time slots. For the single-port network model Links must form
// a matching of the fabric; for the K-ports model of the paper's §7 it must
// be a union of at most K matchings (checked by Validate with ports > 1).
type Configuration struct {
	Links []graph.Edge
	Alpha int
}

// String renders the configuration compactly, e.g. "(0->1 2->3, 50)".
func (c Configuration) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, e := range c.Links {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.String())
	}
	fmt.Fprintf(&b, ", %d)", c.Alpha)
	return b.String()
}

// Schedule is a sequence of configurations for a network with
// reconfiguration delay Delta (in time slots).
type Schedule struct {
	Configs []Configuration
	Delta   int
}

// Cost returns the total number of time slots the schedule consumes:
// Σ (αₖ + Δ). An empty schedule costs nothing.
func (s *Schedule) Cost() int {
	total := 0
	for _, c := range s.Configs {
		total += c.Alpha + s.Delta
	}
	return total
}

// ActiveLinkSlots returns Σ αₖ·|Mₖ|, the denominator of the paper's link
// utilization metric.
func (s *Schedule) ActiveLinkSlots() int64 {
	var total int64
	for _, c := range s.Configs {
		total += int64(c.Alpha) * int64(len(c.Links))
	}
	return total
}

// Validate checks the schedule against fabric g and window: every
// configuration must have positive α and a valid ports-regular link set,
// and the total cost must not exceed window (window <= 0 skips the cost
// check). ports < 1 is treated as 1.
func (s *Schedule) Validate(g *graph.Digraph, window, ports int) error {
	if ports < 1 {
		ports = 1
	}
	for k, c := range s.Configs {
		if c.Alpha <= 0 {
			return fmt.Errorf("schedule: configuration %d has non-positive duration %d", k, c.Alpha)
		}
		if !g.IsRegular(c.Links, ports) {
			return fmt.Errorf("schedule: configuration %d is not a valid %d-port link set", k, ports)
		}
	}
	if window > 0 && s.Cost() > window {
		return fmt.Errorf("schedule: cost %d exceeds window %d", s.Cost(), window)
	}
	return nil
}

// Truncate reduces the schedule in place so its cost is at most window,
// shortening or dropping the last configurations as needed, mirroring the
// final step of the Octopus greedy loop. It reports whether anything was
// changed.
func (s *Schedule) Truncate(window int) bool {
	changed := false
	for len(s.Configs) > 0 && s.Cost() > window {
		last := &s.Configs[len(s.Configs)-1]
		excess := s.Cost() - window
		if last.Alpha > excess {
			last.Alpha -= excess
			changed = true
		} else {
			s.Configs = s.Configs[:len(s.Configs)-1]
			changed = true
		}
	}
	return changed
}
