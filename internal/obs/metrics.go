// Package obs is the scheduler observability layer: a lightweight,
// allocation-conscious instrumentation core (counters, gauges, histograms,
// span timers) plus two sinks — a Prometheus-text / expvar snapshot
// exporter and a JSONL decision-trace writer.
//
// The design rule is that instrumentation is free when it is off: every
// instrument is used through a pointer whose nil value is a valid no-op, so
// instrumented hot paths pay exactly one nil check per event and zero
// allocations. A nil *Observer (the bundle the instrumented layers accept)
// hands out nil instruments, which makes "observability off" the zero value
// everywhere.
//
// Instrumentation is strictly read-only with respect to the algorithms it
// observes: enabling it must never change a schedule, a metric the
// schedulers report, or any tie-break. This invariant is enforced by
// equivalence property tests across the registry (see internal/algo and
// internal/core).
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil *Counter is a
// no-op; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The nil *Gauge is a no-op;
// all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (either sign).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i,
// with bucket 0 holding v == 0. 64 buckets cover the whole int64 range, so
// Observe never branches on range.
const histBuckets = 65

// Histogram accumulates int64 observations in exponential base-2 buckets
// (fixed size, allocation-free). Negative observations clamp to 0. The nil
// *Histogram is a no-op; all methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(h.count.Load())
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// recorded observations: the upper bound of the first bucket whose
// cumulative count reaches q of the total. With base-2 buckets the answer
// is exact to within a factor of 2, which is the resolution the histogram
// stores. Returns 0 for a nil or empty histogram. Concurrent observations
// during the scan may shift the answer by a bucket; callers wanting an
// exact snapshot should quiesce writers first.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based, clamped into [1,total].
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return math.MaxInt64
			}
			return (int64(1) << uint(i)) - 1
		}
	}
	return math.MaxInt64
}

// Timer is a span timer over a histogram of nanosecond durations. The nil
// *Timer is a no-op: Start on a nil timer returns a Span whose End does
// nothing and, critically, never calls time.Now.
type Timer struct {
	h Histogram
}

// Span is one in-flight timed region; obtain it from Timer.Start.
type Span struct {
	t     *Timer
	start time.Time
}

// Start begins a span. On a nil timer this is free: no clock read happens.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// End closes the span, recording the elapsed nanoseconds.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.h.Observe(time.Since(s.start).Nanoseconds())
}

// Hist exposes the timer's underlying nanosecond histogram (nil for a nil
// timer).
func (t *Timer) Hist() *Histogram {
	if t == nil {
		return nil
	}
	return &t.h
}

// DurationHistogram records time.Duration observations with nanosecond
// base-2 buckets but exports itself in seconds, so it can honestly carry a
// Prometheus `_seconds` metric name: bucket upper bounds and the sum are
// written as float seconds while storage stays integer and allocation-free.
// The nil *DurationHistogram is a no-op; all methods are safe for
// concurrent use.
type DurationHistogram struct {
	h Histogram
}

// Observe records one duration (negative durations clamp to 0).
func (d *DurationHistogram) Observe(dur time.Duration) {
	if d == nil {
		return
	}
	d.h.Observe(dur.Nanoseconds())
}

// Count returns the number of observations (0 for a nil histogram).
func (d *DurationHistogram) Count() int64 {
	if d == nil {
		return 0
	}
	return d.h.Count()
}

// Sum returns the total observed time (0 for a nil histogram).
func (d *DurationHistogram) Sum() time.Duration {
	if d == nil {
		return 0
	}
	return time.Duration(d.h.Sum())
}

// Quantile returns an upper bound on the q-quantile duration (see
// Histogram.Quantile for the bucket-resolution caveat).
func (d *DurationHistogram) Quantile(q float64) time.Duration {
	if d == nil {
		return 0
	}
	return time.Duration(d.h.Quantile(q))
}

// metricKind tags registry entries for export.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindTimer
	kindDuration
)

type metric struct {
	name string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	t    *Timer
	d    *DurationHistogram
}

// Registry is a named collection of instruments. Lookup-or-create accessors
// are idempotent: asking twice for the same name returns the same
// instrument, so independent layers can share counters by name. A nil
// *Registry hands out nil instruments (the no-op default).
//
// Metric names should follow Prometheus conventions
// ([a-zA-Z_][a-zA-Z0-9_]*); the exporters write them verbatim.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// lookup returns the metric registered under name, creating it with mk on
// first use. It panics if name is already registered with a different kind
// — that is a programming error, not a runtime condition.
func (r *Registry) lookup(name string, kind metricKind, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name (nil registry → nil).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, func() *metric {
		return &metric{name: name, kind: kindCounter, c: &Counter{}}
	}).c
}

// Gauge returns the gauge registered under name (nil registry → nil).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, func() *metric {
		return &metric{name: name, kind: kindGauge, g: &Gauge{}}
	}).g
}

// Histogram returns the histogram registered under name (nil registry →
// nil).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram, func() *metric {
		return &metric{name: name, kind: kindHistogram, h: &Histogram{}}
	}).h
}

// Timer returns the span timer registered under name (nil registry → nil).
// Its histogram is exported under the same name with nanosecond buckets.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindTimer, func() *metric {
		return &metric{name: name, kind: kindTimer, t: &Timer{}}
	}).t
}

// Duration returns the duration histogram registered under name (nil
// registry → nil). By Prometheus convention the name should end in
// `_seconds`; the exporters write its buckets and sum as float seconds.
func (r *Registry) Duration(name string) *DurationHistogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindDuration, func() *metric {
		return &metric{name: name, kind: kindDuration, d: &DurationHistogram{}}
	}).d
}

// Value returns the current value of the counter or gauge registered under
// name, or a histogram/timer's observation count; 0 when absent or nil.
func (r *Registry) Value(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	switch m.kind {
	case kindCounter:
		return m.c.Value()
	case kindGauge:
		return m.g.Value()
	case kindHistogram:
		return m.h.Count()
	case kindTimer:
		return m.t.Hist().Count()
	case kindDuration:
		return m.d.Count()
	}
	return 0
}

// sorted returns the registered metrics ordered by name, so every export is
// deterministic regardless of registration order.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}

// WritePrometheus writes the registry as Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms and
// timers as cumulative _bucket/_sum/_count series with base-2 upper bounds.
// Output is sorted by metric name. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	buf := make([]byte, 0, 256)
	for _, m := range r.sorted() {
		buf = buf[:0]
		switch m.kind {
		case kindCounter:
			buf = append(buf, "# TYPE "...)
			buf = append(buf, m.name...)
			buf = append(buf, " counter\n"...)
			buf = append(buf, m.name...)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, m.c.Value(), 10)
			buf = append(buf, '\n')
		case kindGauge:
			buf = append(buf, "# TYPE "...)
			buf = append(buf, m.name...)
			buf = append(buf, " gauge\n"...)
			buf = append(buf, m.name...)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, m.g.Value(), 10)
			buf = append(buf, '\n')
		case kindHistogram, kindTimer:
			h := m.h
			if m.kind == kindTimer {
				h = m.t.Hist()
			}
			buf = appendPromHistogram(buf, m.name, h)
		case kindDuration:
			buf = appendPromDurationHistogram(buf, m.name, &m.d.h)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendPromHistogram renders one histogram in Prometheus text format. The
// snapshot reads each bucket once; concurrent observations may make the
// +Inf bucket momentarily exceed the bucket sums, which Prometheus
// tolerates (counts are cumulative and monotone).
func appendPromHistogram(buf []byte, name string, h *Histogram) []byte {
	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, " histogram\n"...)
	top := histBuckets - 1
	for top > 0 && h.buckets[top].Load() == 0 {
		top--
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += h.buckets[i].Load()
		// Bucket i holds values with bit length i: upper bound 2^i - 1.
		le := int64(math.MaxInt64)
		if i < 63 {
			le = (int64(1) << uint(i)) - 1
		}
		buf = append(buf, name...)
		buf = append(buf, `_bucket{le="`...)
		buf = strconv.AppendInt(buf, le, 10)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, `_bucket{le="+Inf"} `...)
	buf = strconv.AppendInt(buf, h.Count(), 10)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_sum "...)
	buf = strconv.AppendInt(buf, h.Sum(), 10)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count "...)
	buf = strconv.AppendInt(buf, h.Count(), 10)
	buf = append(buf, '\n')
	return buf
}

// appendPromDurationHistogram renders one nanosecond-bucketed histogram as
// a seconds-scaled Prometheus histogram: le bounds and _sum are float
// seconds so the `_seconds` naming convention holds.
func appendPromDurationHistogram(buf []byte, name string, h *Histogram) []byte {
	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, " histogram\n"...)
	top := histBuckets - 1
	for top > 0 && h.buckets[top].Load() == 0 {
		top--
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += h.buckets[i].Load()
		le := math.MaxFloat64
		if i < 63 {
			le = float64((int64(1)<<uint(i))-1) / 1e9
		}
		buf = append(buf, name...)
		buf = append(buf, `_bucket{le="`...)
		buf = strconv.AppendFloat(buf, le, 'g', -1, 64)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, `_bucket{le="+Inf"} `...)
	buf = strconv.AppendInt(buf, h.Count(), 10)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_sum "...)
	buf = strconv.AppendFloat(buf, float64(h.Sum())/1e9, 'g', -1, 64)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count "...)
	buf = strconv.AppendInt(buf, h.Count(), 10)
	buf = append(buf, '\n')
	return buf
}

// WriteVars writes the registry as a JSON object in the style of
// /debug/vars: counters and gauges as bare numbers, histograms and timers
// as {"count":..,"sum":..} objects. Keys are sorted. A nil registry writes
// "{}".
func (r *Registry) WriteVars(w io.Writer) error {
	buf := []byte{'{'}
	if r != nil {
		for i, m := range r.sorted() {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendQuote(buf, m.name)
			buf = append(buf, ':')
			switch m.kind {
			case kindCounter:
				buf = strconv.AppendInt(buf, m.c.Value(), 10)
			case kindGauge:
				buf = strconv.AppendInt(buf, m.g.Value(), 10)
			case kindHistogram, kindTimer:
				h := m.h
				if m.kind == kindTimer {
					h = m.t.Hist()
				}
				buf = append(buf, `{"count":`...)
				buf = strconv.AppendInt(buf, h.Count(), 10)
				buf = append(buf, `,"sum":`...)
				buf = strconv.AppendInt(buf, h.Sum(), 10)
				buf = append(buf, '}')
			case kindDuration:
				buf = append(buf, `{"count":`...)
				buf = strconv.AppendInt(buf, m.d.Count(), 10)
				buf = append(buf, `,"sum_seconds":`...)
				buf = strconv.AppendFloat(buf, float64(m.d.h.Sum())/1e9, 'g', -1, 64)
				buf = append(buf, '}')
			}
		}
	}
	buf = append(buf, '}')
	_, err := w.Write(buf)
	return err
}
