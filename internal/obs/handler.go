package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the registry for live
// introspection of a running scheduler:
//
//	/metrics         Prometheus text exposition of the registry
//	/debug/vars      expvar-style JSON: every published expvar (cmdline,
//	                 memstats, ...) plus the registry under "octopus"
//	/debug/pprof/*   the standard net/http/pprof endpoints
//
// mhsim -serve mounts this handler on a real listener; tests mount it on
// an httptest server.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Too late for an HTTP error status; the broken connection is
			// the client's signal.
			return
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: ", "octopus")
		r.WriteVars(w)
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
