package obs

// Observer bundles the two sinks the instrumented layers accept: a metrics
// Registry and a decision-trace Tracer. Either (or both) may be nil.
//
// The nil *Observer is the no-op default: every accessor returns a nil
// instrument whose methods do nothing, so code holding pre-bound
// instruments pays one nil check per event when observability is off. The
// scheduler layers (core, online, simulate) carry an *Observer in their
// Options; entry points construct one only when a metrics or trace flag is
// set.
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
}

// Enabled reports whether any sink is attached.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Metrics != nil || o.Trace != nil)
}

// Counter returns the named counter, nil when metrics are off.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, nil when metrics are off.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram, nil when metrics are off.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Timer returns the named span timer, nil when metrics are off.
func (o *Observer) Timer(name string) *Timer {
	if o == nil {
		return nil
	}
	return o.Metrics.Timer(name)
}

// Tracer returns the decision tracer, nil when tracing is off.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}
