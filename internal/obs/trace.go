package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// TraceVersion is the JSONL decision-trace schema version stamped into
// every record as "v". Bump only when a field changes meaning; adding
// event kinds or fields keeps the version.
const TraceVersion = 1

// maxTraceLine bounds one JSONL record when decoding (1 MiB is far above
// any record the instrumented layers emit; the bound keeps DecodeTrace
// safe on hostile input).
const maxTraceLine = 1 << 20

// fieldKind discriminates the payload of a Field.
type fieldKind uint8

const (
	fInt fieldKind = iota
	fStr
	fPairs
)

// Field is one key/value pair of a trace record. Construct fields with I,
// S, or Pairs; the zero Field is invalid.
type Field struct {
	key   string
	kind  fieldKind
	i     int64
	s     string
	pairs [][2]int
}

// I is an integer field.
func I(key string, v int64) Field { return Field{key: key, kind: fInt, i: v} }

// S is a string field.
func S(key, v string) Field { return Field{key: key, kind: fStr, s: v} }

// Pairs is a field holding a list of integer pairs (rendered as a JSON
// array of two-element arrays); the schedule events use it for link sets.
func Pairs(key string, v [][2]int) Field { return Field{key: key, kind: fPairs, pairs: v} }

// Tracer writes the JSONL decision trace: one JSON object per line, each
// carrying the schema version, a monotonically increasing sequence number,
// the event kind, and the event's fields in emission order:
//
//	{"v":1,"seq":12,"ev":"core.iter","iter":3,"alpha":40,...}
//
// The nil *Tracer is a no-op (Emit does nothing and allocates nothing).
// A non-nil Tracer is safe for concurrent use; records are written atomically
// in seq order. Encoding errors are sticky: the first write error stops
// further output and is reported by Err.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	seq int64
	err error
}

// NewTracer returns a tracer writing JSONL records to w. The caller owns
// w's lifetime (buffering, closing); see mhsim for the file wiring.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Emit appends one record. Nil-safe: a nil tracer returns immediately.
func (t *Tracer) Emit(event string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	buf := t.buf[:0]
	buf = append(buf, `{"v":`...)
	buf = strconv.AppendInt(buf, TraceVersion, 10)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendInt(buf, t.seq, 10)
	buf = append(buf, `,"ev":`...)
	buf = strconv.AppendQuote(buf, event)
	for i := range fields {
		f := &fields[i]
		buf = append(buf, ',')
		buf = strconv.AppendQuote(buf, f.key)
		buf = append(buf, ':')
		switch f.kind {
		case fInt:
			buf = strconv.AppendInt(buf, f.i, 10)
		case fStr:
			buf = strconv.AppendQuote(buf, f.s)
		case fPairs:
			buf = append(buf, '[')
			for j, p := range f.pairs {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = append(buf, '[')
				buf = strconv.AppendInt(buf, int64(p[0]), 10)
				buf = append(buf, ',')
				buf = strconv.AppendInt(buf, int64(p[1]), 10)
				buf = append(buf, ']')
			}
			buf = append(buf, ']')
		}
	}
	buf = append(buf, '}', '\n')
	t.buf = buf
	if _, err := t.w.Write(buf); err != nil {
		t.err = err
		return
	}
	t.seq++
}

// Events returns the number of records successfully emitted (0 for nil).
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Err returns the sticky write error, if any (nil for a nil tracer).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Record is one decoded trace record: the envelope fields plus the event
// payload as decoded JSON values.
type Record struct {
	V      int
	Seq    int64
	Ev     string
	Fields map[string]any
}

// Int returns the integer payload field key, false when absent or not an
// integer-valued JSON number.
func (r *Record) Int(key string) (int64, bool) {
	v, ok := r.Fields[key].(float64)
	if !ok || v != float64(int64(v)) {
		return 0, false
	}
	return int64(v), true
}

// Str returns the string payload field key.
func (r *Record) Str(key string) (string, bool) {
	s, ok := r.Fields[key].(string)
	return s, ok
}

// IntPairs returns the pair-list payload field key (as written by Pairs),
// false when absent or malformed.
func (r *Record) IntPairs(key string) ([][2]int, bool) {
	raw, ok := r.Fields[key].([]any)
	if !ok {
		return nil, false
	}
	out := make([][2]int, 0, len(raw))
	for _, e := range raw {
		p, ok := e.([]any)
		if !ok || len(p) != 2 {
			return nil, false
		}
		a, okA := p[0].(float64)
		b, okB := p[1].(float64)
		if !okA || !okB || a != float64(int64(a)) || b != float64(int64(b)) {
			return nil, false
		}
		out = append(out, [2]int{int(a), int(b)})
	}
	return out, true
}

// DecodeTrace parses a JSONL decision trace. Every line must be a JSON
// object with an integer "v" equal to TraceVersion, a non-negative integer
// "seq", and a non-empty string "ev"; blank lines are skipped. Decoding is
// hardened against hostile input: malformed JSON, wrong versions, and
// oversized lines yield errors, never panics.
func DecodeTrace(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %v", line, err)
		}
		rec := Record{Fields: m}
		v, ok := m["v"].(float64)
		if !ok || v != float64(int64(v)) {
			return nil, fmt.Errorf("obs: trace line %d: missing or non-integer version", line)
		}
		rec.V = int(v)
		if rec.V != TraceVersion {
			return nil, fmt.Errorf("obs: trace line %d: unsupported version %d (want %d)", line, rec.V, TraceVersion)
		}
		seq, ok := m["seq"].(float64)
		if !ok || seq != float64(int64(seq)) || seq < 0 {
			return nil, fmt.Errorf("obs: trace line %d: missing or invalid seq", line)
		}
		rec.Seq = int64(seq)
		ev, ok := m["ev"].(string)
		if !ok || ev == "" {
			return nil, fmt.Errorf("obs: trace line %d: missing event kind", line)
		}
		rec.Ev = ev
		delete(m, "v")
		delete(m, "seq")
		delete(m, "ev")
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: trace line %d: %v", line+1, err)
	}
	return out, nil
}
