package flight

import "octopus/internal/traffic"

// AdmitLoad records admission events for every tracked flow in a load at
// the given epoch. This is the traffic-layer entry point for offline
// drivers (mhsim, mhsbench) whose whole workload is admitted at once;
// online drivers admit per batch through the engine instead. A nil
// recorder or load is a no-op.
func AdmitLoad(r *Recorder, load *traffic.Load, epoch int) {
	if r == nil || load == nil {
		return
	}
	for i := range load.Flows {
		f := &load.Flows[i]
		r.Admit(int64(f.ID), epoch, int64(f.Size), int64(f.Src), int64(f.Dst))
	}
}
