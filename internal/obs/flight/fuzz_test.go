package flight

import (
	"strings"
	"testing"
)

// FuzzFlightDecode hammers the hardened flight-log decoder: it must never
// panic, and every accepted log must satisfy the format invariants
// (header version/kind checked, known event kinds only, strictly
// increasing sequence numbers).
func FuzzFlightDecode(f *testing.F) {
	f.Add(`{"v":1,"kind":"flight","sample":1,"events":2}` + "\n" +
		`{"seq":0,"flow":7,"ev":"admitted","epoch":0,"a":20,"b":2,"c":9}` + "\n" +
		`{"seq":1,"flow":7,"ev":"delivered","epoch":3,"a":20,"b":20}` + "\n")
	f.Add(`{"v":1,"kind":"flight"}` + "\n")
	f.Add(`{"v":1,"kind":"flight","sample":64}` + "\n" +
		`{"seq":9,"flow":-3,"ev":"completed","epoch":5,"a":5,"b":0,"c":0}` + "\n")
	f.Add("")
	f.Add("\n")
	f.Add("not json")
	f.Add(`{"v":2,"kind":"flight"}` + "\n")
	f.Add(`{"v":1,"kind":"trace"}` + "\n")
	f.Add(`{"v":1,"kind":"flight"}` + "\n" + `{"seq":1,"flow":1,"ev":"teleported","epoch":0}` + "\n")
	f.Add(`{"v":1,"kind":"flight"}` + "\n" + `{"seq":2,"flow":1,"ev":"hop"}` + "\n" + `{"seq":1,"flow":1,"ev":"hop"}` + "\n")
	f.Add(`{"v":1,"kind":"flight","sample":-1}` + "\n")

	f.Fuzz(func(t *testing.T, data string) {
		hdr, evs, err := DecodeLog(strings.NewReader(data))
		if err != nil {
			return
		}
		if hdr.V != Version {
			t.Fatalf("accepted version %d", hdr.V)
		}
		if hdr.Kind != "flight" {
			t.Fatalf("accepted kind %q", hdr.Kind)
		}
		if hdr.Sample < 0 {
			t.Fatalf("accepted negative sample %d", hdr.Sample)
		}
		if len(evs) > maxDecodeEvents {
			t.Fatalf("accepted %d events past the cap", len(evs))
		}
		var last uint64
		for i, ev := range evs {
			if int(ev.Kind) >= numKinds {
				t.Fatalf("event %d: accepted unknown kind %d", i, ev.Kind)
			}
			if ev.Kind.String() == "unknown" {
				t.Fatalf("event %d: kind with no name", i)
			}
			if i > 0 && ev.Seq <= last {
				t.Fatalf("event %d: seq %d not increasing (prev %d)", i, ev.Seq, last)
			}
			last = ev.Seq
		}
	})
}
