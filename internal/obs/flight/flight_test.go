package flight

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"octopus/internal/obs"
)

// TestNilRecorderIsNoOp pins the package contract: every method on a nil
// *Recorder is a safe no-op, so "flight off" is the zero value.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Tracks(1) {
		t.Fatal("nil recorder tracks flows")
	}
	if r.Sample() != 0 {
		t.Fatal("nil recorder has a sample rate")
	}
	r.Admit(1, 0, 10, 0, 1)
	r.Planned(1, 0, 3, MatcherGreedy, 10)
	r.Hop(1, 0, 1, 3, 10)
	r.Stranded(1, 0, 1, 2)
	r.Requeued(1, 0, 1, 2)
	r.Repaired(1, 0, 4, 2)
	r.Dedup(1, 0, 5)
	r.Delivered(1, 1, 10)
	r.Completed(1, 1)
	r.Dropped(1, 1, 3)
	r.Cancelled(1, 1, 3)
	if r.Events(1) != nil || r.All() != nil || r.TrackedIDs() != nil {
		t.Fatal("nil recorder holds events")
	}
	if s := r.Stats(); s != (Snapshot{}) {
		t.Fatalf("nil recorder stats = %+v", s)
	}
	if r.CompletionQuantile(0.5) != 0 {
		t.Fatal("nil recorder has quantiles")
	}
	if err := r.WriteLog(nil); err != nil {
		t.Fatal("nil recorder WriteLog errored")
	}
}

// TestLifecycleChain records a full flow lifecycle and checks the event
// chain comes back in order with the right payloads.
func TestLifecycleChain(t *testing.T) {
	r := New(Config{SLOEpochs: 4})
	r.Admit(7, 0, 20, 2, 9)
	r.Planned(7, 1, 3, MatcherWarm, 20)
	r.Hop(7, 1, 1, 3, 20)
	r.Delivered(7, 2, 8)
	r.Delivered(7, 3, 12) // reaches size 20 → auto-completion
	evs := r.Events(7)
	kinds := make([]Kind, len(evs))
	for i, ev := range evs {
		kinds[i] = ev.Kind
	}
	want := []Kind{KindAdmitted, KindPlanned, KindHop, KindDelivered, KindDelivered, KindCompleted}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events %v, want %v", len(kinds), kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if evs[0].A != 20 || evs[0].B != 2 || evs[0].C != 9 {
		t.Fatalf("admitted payload = %+v", evs[0])
	}
	if evs[1].B != MatcherWarm {
		t.Fatalf("planned matcher = %d, want warm", evs[1].B)
	}
	done := evs[len(evs)-1]
	if done.A != 3 { // admitted epoch 0, completed epoch 3
		t.Fatalf("completion latency = %d, want 3", done.A)
	}
	if done.B != 1 { // slack = 4 - 3
		t.Fatalf("slack = %d, want 1", done.B)
	}
	if done.C != 1 {
		t.Fatalf("on-time flag = %d, want 1", done.C)
	}
	s := r.Stats()
	if s.Completed != 1 || s.OnTime != 1 || s.OnTimeFraction != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.CompletionP50 != 3 { // latency 3 lands in bucket le=3
		t.Fatalf("p50 = %d, want 3", s.CompletionP50)
	}
	// A second Completed is idempotent.
	r.Completed(7, 9)
	if got := len(r.Events(7)); got != len(want) {
		t.Fatalf("duplicate completion recorded: %d events", got)
	}
}

// TestSLOMiss pins the late path: completion past the target counts as
// not-on-time with zero slack.
func TestSLOMiss(t *testing.T) {
	r := New(Config{SLOEpochs: 2})
	r.Admit(1, 0, 5, 0, 1)
	r.Delivered(1, 10, 5)
	s := r.Stats()
	if s.Completed != 1 || s.OnTime != 0 || s.OnTimeFraction != 0 {
		t.Fatalf("stats = %+v", s)
	}
	evs := r.Events(1)
	done := evs[len(evs)-1]
	if done.Kind != KindCompleted || done.B != 0 || done.C != 0 {
		t.Fatalf("late completion event = %+v", done)
	}
}

// TestRingWraparound fills a tiny ring several times over and checks that
// only the newest capacity-many events are retained, oldest first, with
// global sequence numbers intact.
func TestRingWraparound(t *testing.T) {
	const capN = 8
	r := New(Config{Cap: capN})
	const total = 3*capN + 5
	for i := 0; i < total; i++ {
		r.Hop(int64(i), i, 1, 3, 1)
	}
	all := r.All()
	if len(all) != capN {
		t.Fatalf("retained %d events, want %d", len(all), capN)
	}
	for i, ev := range all {
		wantSeq := uint64(total - capN + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Flow != int64(wantSeq) {
			t.Fatalf("event %d flow = %d, want %d", i, ev.Flow, wantSeq)
		}
	}
	// Events for an overwritten flow are gone; for a retained one, present.
	if evs := r.Events(0); len(evs) != 0 {
		t.Fatalf("overwritten flow still has %d events", len(evs))
	}
	if evs := r.Events(total - 1); len(evs) != 1 {
		t.Fatalf("newest flow has %d events, want 1", len(evs))
	}
	if s := r.Stats(); s.Events != total || s.Retained != capN {
		t.Fatalf("stats = %+v", s)
	}
}

// TestSamplingDeterminism pins the sampling contract: the tracked set
// depends only on (flow ID, sample), two recorders agree, the fraction is
// plausible, and sample=1 tracks everything.
func TestSamplingDeterminism(t *testing.T) {
	const n = 100000
	a := New(Config{Sample: 64})
	b := New(Config{Sample: 64})
	tracked := 0
	for id := int64(0); id < n; id++ {
		ta, tb := a.Tracks(id), b.Tracks(id)
		if ta != tb {
			t.Fatalf("recorders disagree on flow %d", id)
		}
		if ta {
			tracked++
		}
	}
	// Expect ~n/64 = 1562; the splitmix64 finalizer should keep the
	// binomial deviation small. Accept ±25%.
	want := n / 64
	if tracked < want*3/4 || tracked > want*5/4 {
		t.Fatalf("tracked %d of %d at sample=64, want ~%d", tracked, n, want)
	}
	ex := New(Config{})
	for id := int64(0); id < 1000; id++ {
		if !ex.Tracks(id) {
			t.Fatalf("exhaustive recorder skipped flow %d", id)
		}
	}
	// Untracked flows record nothing even when methods are called.
	s := New(Config{Sample: 1 << 40})
	s.Admit(1, 0, 5, 0, 1)
	s.Delivered(1, 1, 5)
	if len(s.All()) != 0 && s.Tracks(1) {
		t.Fatal("sampled-out flow recorded events")
	}
}

// TestConcurrentScrapeWhileRecording hammers the recorder from writer
// goroutines while readers scrape Events/Stats/All/WriteLog. Run under
// -race this pins the locking discipline.
func TestConcurrentScrapeWhileRecording(t *testing.T) {
	r := New(Config{Cap: 1 << 10, SLOEpochs: 8, Metrics: obs.NewRegistry()})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := int64(w*2000 + i)
				r.Admit(id, i, 4, 0, 1)
				r.Planned(id, i, 2, MatcherGreedy, 4)
				r.Hop(id, i, 1, 3, 4)
				r.Delivered(id, i+1, 4)
			}
		}(w)
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Events(42)
				_ = r.Stats()
				_ = r.All()
				_ = r.WriteLog(discard{})
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	s := r.Stats()
	if s.Completed != 8000 || s.OnTime != 8000 {
		t.Fatalf("stats after concurrent run = %+v", s)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestRegistryMirror checks the optional obs.Registry aggregation.
func TestRegistryMirror(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Config{SLOEpochs: 10, Metrics: reg})
	for id := int64(0); id < 5; id++ {
		r.Admit(id, 0, 2, 0, 1)
		r.Delivered(id, 3, 2)
	}
	if got := reg.Value("octopus_flight_admitted_total"); got != 5 {
		t.Fatalf("admitted counter = %d", got)
	}
	if got := reg.Value("octopus_flight_completed_total"); got != 5 {
		t.Fatalf("completed counter = %d", got)
	}
	if got := reg.Value("octopus_flight_ontime_total"); got != 5 {
		t.Fatalf("ontime counter = %d", got)
	}
	if got := reg.Value("octopus_flight_ontime_permille"); got != 1000 {
		t.Fatalf("ontime permille = %d", got)
	}
	if got := reg.Value("octopus_flight_completion_epochs"); got != 5 {
		t.Fatalf("latency histogram count = %d", got)
	}
}

// TestMatcherCode pins the matcher wire codes.
func TestMatcherCode(t *testing.T) {
	cases := map[string]int64{
		"exact":  MatcherExact,
		"greedy": MatcherGreedy,
		"dense":  MatcherDense,
		"sparse": MatcherSparse,
		"warm":   MatcherWarm,
		"":       MatcherExact,
		"bogus":  MatcherExact,
	}
	for in, want := range cases {
		if got := MatcherCode(in); got != want {
			t.Fatalf("MatcherCode(%q) = %d, want %d", in, got, want)
		}
	}
}

// TestKindString covers the wire names, including out-of-range.
func TestKindString(t *testing.T) {
	for k := Kind(0); k < Kind(numKinds); k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind has a name")
	}
}

func BenchmarkRecordHop(b *testing.B) {
	r := New(Config{Cap: 1 << 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Hop(int64(i), i, 1, 3, 4)
	}
}

func BenchmarkTracksSampled(b *testing.B) {
	r := New(Config{Sample: 1024})
	b.ReportAllocs()
	var hits int
	for i := 0; i < b.N; i++ {
		if r.Tracks(int64(i)) {
			hits++
		}
	}
	_ = fmt.Sprint(hits)
}
