package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the flight-log wire version. The header line carries it;
// decoders reject anything else so format changes are loud, not silent.
const Version = 1

// maxLine bounds one JSONL line during decode, protecting against
// pathological input (the journal writes short lines; 1 MiB is generous).
const maxLine = 1 << 20

// maxDecodeEvents bounds how many events DecodeLog will retain, so a
// hostile or runaway input cannot exhaust memory. Matches several full
// default-capacity rings.
const maxDecodeEvents = 1 << 22

// Header is the first line of a flight log.
type Header struct {
	V      int    `json:"v"`
	Kind   string `json:"kind"`
	Sample int    `json:"sample"`
	Events uint64 `json:"events"`
}

// wireEvent is the per-line JSON shape. Kind travels as its string name
// so logs are greppable; Seq preserves global ordering across ring wraps.
type wireEvent struct {
	Seq   uint64 `json:"seq"`
	Flow  int64  `json:"flow"`
	Ev    string `json:"ev"`
	Epoch int32  `json:"epoch"`
	A     int64  `json:"a,omitempty"`
	B     int64  `json:"b,omitempty"`
	C     int64  `json:"c,omitempty"`
}

// kindByName inverts kindNames for decode.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// WriteLog serializes the recorder's retained events as versioned JSONL:
// one header line, then one line per event, oldest first. The snapshot is
// taken atomically with respect to concurrent recording.
func (r *Recorder) WriteLog(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	events := make([]Event, 0, min64(r.seq, uint64(len(r.flows))))
	r.scanLocked(func(ev Event) { events = append(events, ev) })
	total := r.seq
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	hdr := Header{V: Version, Kind: "flight", Sample: r.Sample(), Events: total}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, ev := range events {
		we := wireEvent{
			Seq:   ev.Seq,
			Flow:  ev.Flow,
			Ev:    ev.Kind.String(),
			Epoch: ev.Epoch,
			A:     ev.A,
			B:     ev.B,
			C:     ev.C,
		}
		if err := enc.Encode(we); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeLog parses a flight log produced by WriteLog. It is hardened for
// hostile input: version and kind are checked, unknown event names and
// malformed lines are rejected with line numbers, line length and total
// event count are bounded, and sequence numbers must be strictly
// increasing (a truncated or spliced log fails loudly).
func DecodeLog(rd io.Reader) (Header, []Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	var hdr Header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, fmt.Errorf("flight: reading header: %w", err)
		}
		return hdr, nil, errors.New("flight: empty log")
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("flight: bad header: %w", err)
	}
	if hdr.V != Version {
		return hdr, nil, fmt.Errorf("flight: unsupported version %d (want %d)", hdr.V, Version)
	}
	if hdr.Kind != "flight" {
		return hdr, nil, fmt.Errorf("flight: not a flight log (kind %q)", hdr.Kind)
	}
	if hdr.Sample < 0 {
		return hdr, nil, fmt.Errorf("flight: negative sample %d", hdr.Sample)
	}
	var out []Event
	line := 1
	lastSeq := uint64(0)
	haveSeq := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var we wireEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&we); err != nil {
			return hdr, nil, fmt.Errorf("flight: line %d: %w", line, err)
		}
		kind, ok := kindByName[we.Ev]
		if !ok {
			return hdr, nil, fmt.Errorf("flight: line %d: unknown event %q", line, we.Ev)
		}
		if haveSeq && we.Seq <= lastSeq {
			return hdr, nil, fmt.Errorf("flight: line %d: sequence %d not increasing (prev %d)", line, we.Seq, lastSeq)
		}
		lastSeq, haveSeq = we.Seq, true
		if len(out) >= maxDecodeEvents {
			return hdr, nil, fmt.Errorf("flight: more than %d events", maxDecodeEvents)
		}
		out = append(out, Event{
			Seq:   we.Seq,
			Flow:  we.Flow,
			Kind:  kind,
			Epoch: we.Epoch,
			A:     we.A,
			B:     we.B,
			C:     we.C,
		})
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, fmt.Errorf("flight: line %d: %w", line, err)
	}
	return hdr, out, nil
}
