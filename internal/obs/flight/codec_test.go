package flight

import (
	"bytes"
	"strings"
	"testing"
)

// TestLogRoundTrip writes a journal and decodes it back, checking header
// and event fidelity.
func TestLogRoundTrip(t *testing.T) {
	r := New(Config{Sample: 1, SLOEpochs: 4})
	r.Admit(3, 0, 10, 1, 2)
	r.Planned(3, 1, 2, MatcherSparse, 10)
	r.Hop(3, 1, 1, 3, 10)
	r.Delivered(3, 2, 10)
	r.Dropped(9, 2, 4)
	var buf bytes.Buffer
	if err := r.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, evs, err := DecodeLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if hdr.V != Version || hdr.Kind != "flight" || hdr.Sample != 1 {
		t.Fatalf("header = %+v", hdr)
	}
	orig := r.All()
	if len(evs) != len(orig) || hdr.Events != uint64(len(orig)) {
		t.Fatalf("decoded %d events, want %d (header %d)", len(evs), len(orig), hdr.Events)
	}
	for i := range orig {
		if evs[i] != orig[i] {
			t.Fatalf("event %d: decoded %+v, want %+v", i, evs[i], orig[i])
		}
	}
}

// TestLogRoundTripAfterWrap checks that sequence numbers survive a ring
// wrap: the log starts mid-sequence and still decodes.
func TestLogRoundTripAfterWrap(t *testing.T) {
	r := New(Config{Cap: 4})
	for i := 0; i < 11; i++ {
		r.Hop(int64(i), i, 1, 2, 1)
	}
	var buf bytes.Buffer
	if err := r.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, evs, err := DecodeLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Events != 11 || len(evs) != 4 {
		t.Fatalf("header events %d, decoded %d", hdr.Events, len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("seq range [%d,%d], want [7,10]", evs[0].Seq, evs[3].Seq)
	}
}

// TestDecodeHostileInputs pins the hardening: each malformed input must
// error, never panic or silently succeed.
func TestDecodeHostileInputs(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"garbage header":    "not json\n",
		"wrong version":     `{"v":2,"kind":"flight"}` + "\n",
		"wrong kind":        `{"v":1,"kind":"trace"}` + "\n",
		"negative sample":   `{"v":1,"kind":"flight","sample":-3}` + "\n",
		"unknown event":     `{"v":1,"kind":"flight"}` + "\n" + `{"seq":1,"flow":1,"ev":"teleported","epoch":0}` + "\n",
		"unknown field":     `{"v":1,"kind":"flight"}` + "\n" + `{"seq":1,"flow":1,"ev":"hop","epoch":0,"zzz":1}` + "\n",
		"bad event json":    `{"v":1,"kind":"flight"}` + "\n" + "{{{\n",
		"repeated seq":      `{"v":1,"kind":"flight"}` + "\n" + `{"seq":5,"flow":1,"ev":"hop","epoch":0}` + "\n" + `{"seq":5,"flow":2,"ev":"hop","epoch":0}` + "\n",
		"decreasing seq":    `{"v":1,"kind":"flight"}` + "\n" + `{"seq":5,"flow":1,"ev":"hop","epoch":0}` + "\n" + `{"seq":4,"flow":2,"ev":"hop","epoch":0}` + "\n",
		"overlong line":     `{"v":1,"kind":"flight"}` + "\n" + `{"seq":1,"flow":1,"ev":"hop","epoch":0,"a":` + strings.Repeat("1", maxLine+10) + "}\n",
		"event type string": `{"v":1,"kind":"flight"}` + "\n" + `{"seq":1,"flow":"x","ev":"hop","epoch":0}` + "\n",
	}
	for name, in := range cases {
		if _, _, err := DecodeLog(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted hostile input", name)
		}
	}
}

// TestDecodeTolerance: blank lines between events are permitted (some
// tools add trailing newlines), and an empty event list is a valid log.
func TestDecodeTolerance(t *testing.T) {
	in := `{"v":1,"kind":"flight","sample":4}` + "\n\n" +
		`{"seq":1,"flow":1,"ev":"admitted","epoch":0,"a":5}` + "\n\n"
	hdr, evs, err := DecodeLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Sample != 4 || len(evs) != 1 || evs[0].Kind != KindAdmitted || evs[0].A != 5 {
		t.Fatalf("hdr %+v evs %+v", hdr, evs)
	}
	if _, evs, err := DecodeLog(strings.NewReader(`{"v":1,"kind":"flight"}` + "\n")); err != nil || len(evs) != 0 {
		t.Fatalf("header-only log: evs=%v err=%v", evs, err)
	}
}
