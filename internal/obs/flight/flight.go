// Package flight is the per-flow lifecycle journal — a "flight recorder"
// for flows. Where internal/obs records planner internals (how many α
// probes, how long a matching took), flight answers the operator question
// "what happened to flow 8421?": each tracked flow accumulates a compact
// event chain — admitted, planned into a configuration, per-hop advance,
// stranded/requeued/repaired, replicated-copy dedup, delivered, dropped —
// in a bounded ring so memory stays constant no matter how long the run.
//
// Storage is columnar (struct-of-arrays, the same layout as the
// internal/traffic store): parallel slices of flow IDs, event kinds,
// epochs, and three int64 arguments. A ring of 64k events costs ~1.8 MiB
// and never grows.
//
// At a million flows recording every hop of every flow would dwarf the
// workload, so the recorder samples deterministically by flow ID: a flow
// is tracked iff mix64(id) % sample == 0, where mix64 is the splitmix64
// finalizer. The decision depends only on the flow ID and the immutable
// sample rate — never on timing, goroutine interleaving, or map order —
// so two runs of the same workload track the same flows, and the check is
// lock-free. sample <= 1 tracks everything (exhaustive mode for small
// runs).
//
// Like every obs instrument, the nil *Recorder is a valid no-op, and
// recording is strictly read-only with respect to the scheduler: enabling
// the recorder must never change a schedule, a metric, or a tie-break.
// That invariant is pinned by registry-wide fingerprint equivalence tests
// (internal/verify/diff) with the recorder on and off.
package flight

import (
	"sort"
	"sync"

	"octopus/internal/obs"
)

// Kind identifies one lifecycle event type.
type Kind uint8

const (
	// KindAdmitted: flow entered the system. A=size (packets), B=src, C=dst.
	KindAdmitted Kind = iota
	// KindPlanned: flow was scheduled into an epoch's configuration chain.
	// A=configurations in the schedule, B=matcher code, C=pending packets.
	KindPlanned
	// KindHop: packets advanced one hop. A=new position on the route,
	// B=route length, C=packets moved.
	KindHop
	// KindStranded: packets stuck mid-route when service ended or a link
	// failed. A=position, C=packets stranded.
	KindStranded
	// KindRequeued: stranded packets were requeued from their current
	// position for a later epoch. A=position requeued from, C=packets.
	KindRequeued
	// KindRepaired: flow was rerouted onto a surviving path. A=new route
	// length, C=packets rerouted.
	KindRepaired
	// KindDedup: duplicate packets from a redundant copy group were
	// discounted after the primary delivered. C=duplicate packets.
	KindDedup
	// KindDelivered: packets reached the destination. A=packets this
	// event, B=cumulative delivered.
	KindDelivered
	// KindCompleted: every packet of the flow has been delivered.
	// A=completion latency in epochs since admission (-1 if the admission
	// was not observed), B=SLO slack (target - latency, floored at 0),
	// C=1 if within the SLO target.
	KindCompleted
	// KindDropped: flow abandoned (unreachable after faults). C=packets
	// undelivered.
	KindDropped
	// KindCancelled: flow cancelled by the client. C=packets undelivered.
	KindCancelled

	numKinds = iota
)

var kindNames = [numKinds]string{
	KindAdmitted:  "admitted",
	KindPlanned:   "planned",
	KindHop:       "hop",
	KindStranded:  "stranded",
	KindRequeued:  "requeued",
	KindRepaired:  "repaired",
	KindDedup:     "dedup",
	KindDelivered: "delivered",
	KindCompleted: "completed",
	KindDropped:   "dropped",
	KindCancelled: "cancelled",
}

// String returns the stable wire name of the kind ("admitted", "hop", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one decoded journal entry. The meaning of A/B/C depends on
// Kind; see the Kind constants.
type Event struct {
	Seq   uint64 `json:"seq"`
	Flow  int64  `json:"flow"`
	Kind  Kind   `json:"-"`
	Epoch int32  `json:"epoch"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	C     int64  `json:"c"`
}

// Config parameterizes a Recorder.
type Config struct {
	// Sample tracks one flow in Sample by deterministic flow-ID hash;
	// values <= 1 track every flow (exhaustive mode).
	Sample int
	// Cap is the ring capacity in events (default 65536). Once full, new
	// events overwrite the oldest.
	Cap int
	// SLOEpochs is the completion-latency target used for the on-time
	// fraction and slack histogram. Flows have no per-flow deadlines yet
	// (a roadmap item); the SLO is a single operator-set target. 0 means
	// no target: every completion counts as on time with zero slack.
	SLOEpochs int
	// Metrics optionally mirrors the recorder's aggregates into a shared
	// obs registry (octopus_flight_* metrics). Nil keeps them internal.
	Metrics *obs.Registry
}

// DefaultCap is the ring capacity when Config.Cap is zero.
const DefaultCap = 1 << 16

// flowState is the per-tracked-flow aggregate behind the SLO metrics.
// It exists only for sampled flows, so its size is bounded by the number
// of live tracked flows, not total events.
type flowState struct {
	admitEpoch int32
	admitted   bool
	done       bool
	size       int64
	delivered  int64
}

// Recorder is the journal. All methods are safe for concurrent use; the
// nil *Recorder is a no-op everywhere.
type Recorder struct {
	sample uint64 // immutable after New; read lock-free by Tracks

	mu    sync.Mutex
	seq   uint64 // total events ever recorded; ring index = seq % cap
	flows []int64
	kinds []uint8
	epoch []int32
	a     []int64
	b     []int64
	c     []int64

	state map[int64]*flowState

	sloEpochs  int64
	completion obs.Histogram // epochs from admission to completion
	slack      obs.Histogram // max(0, SLO - completion)
	admitted   int64
	completed  int64
	onTime     int64

	// Optional registry mirrors (nil-safe).
	mAdmitted  *obs.Counter
	mCompleted *obs.Counter
	mOnTime    *obs.Counter
	mEvents    *obs.Counter
	mLatency   *obs.Histogram
	mSlack     *obs.Histogram
	mOnTimePct *obs.Gauge
}

// New builds a recorder. The zero Config means: track every flow, 64k
// ring, no SLO target, no registry mirror.
func New(cfg Config) *Recorder {
	capN := cfg.Cap
	if capN <= 0 {
		capN = DefaultCap
	}
	sample := uint64(1)
	if cfg.Sample > 1 {
		sample = uint64(cfg.Sample)
	}
	r := &Recorder{
		sample:    sample,
		flows:     make([]int64, capN),
		kinds:     make([]uint8, capN),
		epoch:     make([]int32, capN),
		a:         make([]int64, capN),
		b:         make([]int64, capN),
		c:         make([]int64, capN),
		state:     make(map[int64]*flowState),
		sloEpochs: int64(cfg.SLOEpochs),
	}
	if reg := cfg.Metrics; reg != nil {
		r.mAdmitted = reg.Counter("octopus_flight_admitted_total")
		r.mCompleted = reg.Counter("octopus_flight_completed_total")
		r.mOnTime = reg.Counter("octopus_flight_ontime_total")
		r.mEvents = reg.Counter("octopus_flight_events_total")
		r.mLatency = reg.Histogram("octopus_flight_completion_epochs")
		r.mSlack = reg.Histogram("octopus_flight_slack_epochs")
		r.mOnTimePct = reg.Gauge("octopus_flight_ontime_permille")
	}
	return r
}

// mix64 is the splitmix64 finalizer (Steele, Lea & Flood 2014): a cheap
// bijective avalanche so consecutive flow IDs land in uncorrelated
// sampling residues.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Tracks reports whether the recorder samples this flow ID. It is
// lock-free and deterministic: same ID and sample rate → same answer in
// every run. Nil recorders track nothing, so instrumented hot paths can
// guard on Tracks alone.
func (r *Recorder) Tracks(flow int64) bool {
	if r == nil {
		return false
	}
	if r.sample <= 1 {
		return true
	}
	return mix64(uint64(flow))%r.sample == 0
}

// Sample returns the sampling denominator (1 = exhaustive, 0 for nil).
func (r *Recorder) Sample() int {
	if r == nil {
		return 0
	}
	return int(r.sample)
}

// record appends one event to the ring. Caller must have checked Tracks.
func (r *Recorder) record(flow int64, kind Kind, epoch int, a, b, c int64) {
	r.mu.Lock()
	i := int(r.seq % uint64(len(r.flows)))
	r.flows[i] = flow
	r.kinds[i] = uint8(kind)
	r.epoch[i] = int32(epoch)
	r.a[i] = a
	r.b[i] = b
	r.c[i] = c
	r.seq++
	r.mu.Unlock()
	r.mEvents.Inc()
}

// Admit records admission of a tracked flow and opens its SLO state.
func (r *Recorder) Admit(flow int64, epoch int, size, src, dst int64) {
	if !r.Tracks(flow) {
		return
	}
	r.mu.Lock()
	st := r.stateLocked(flow)
	if !st.admitted {
		st.admitted = true
		st.admitEpoch = int32(epoch)
		st.size = size
		r.admitted++
	}
	r.recordLocked(flow, KindAdmitted, epoch, size, src, dst)
	r.mu.Unlock()
	r.mEvents.Inc()
	r.mAdmitted.Inc()
}

// Planned records that the flow was scheduled into epoch's configuration
// chain: configs in the schedule, the matcher code (see MatcherCode), and
// the flow's pending packets entering the epoch.
func (r *Recorder) Planned(flow int64, epoch int, configs, matcher, pending int64) {
	if !r.Tracks(flow) {
		return
	}
	r.record(flow, KindPlanned, epoch, configs, matcher, pending)
}

// Hop records a one-hop advance of count packets to route position pos.
func (r *Recorder) Hop(flow int64, epoch, pos, routeLen int, count int64) {
	if !r.Tracks(flow) {
		return
	}
	r.record(flow, KindHop, epoch, int64(pos), int64(routeLen), count)
}

// Stranded records count packets stuck at route position pos.
func (r *Recorder) Stranded(flow int64, epoch, pos int, count int64) {
	if !r.Tracks(flow) {
		return
	}
	r.record(flow, KindStranded, epoch, int64(pos), 0, count)
}

// Requeued records stranded packets re-entering the backlog from pos.
func (r *Recorder) Requeued(flow int64, epoch, pos int, count int64) {
	if !r.Tracks(flow) {
		return
	}
	r.record(flow, KindRequeued, epoch, int64(pos), 0, count)
}

// Repaired records a reroute onto a surviving path of routeLen hops.
func (r *Recorder) Repaired(flow int64, epoch, routeLen int, count int64) {
	if !r.Tracks(flow) {
		return
	}
	r.record(flow, KindRepaired, epoch, int64(routeLen), 0, count)
}

// Dedup records duplicate packets discounted from a redundant copy group.
func (r *Recorder) Dedup(flow int64, epoch int, dups int64) {
	if !r.Tracks(flow) {
		return
	}
	r.record(flow, KindDedup, epoch, 0, 0, dups)
}

// Delivered records n packets arriving. When the cumulative count reaches
// the admitted size the completion event and SLO aggregates fire too, so
// drivers that lack an explicit completion signal (offline simulate) get
// one for free. Drivers with an exact signal should call Completed.
func (r *Recorder) Delivered(flow int64, epoch int, n int64) {
	if !r.Tracks(flow) || n <= 0 {
		return
	}
	r.mu.Lock()
	st := r.stateLocked(flow)
	st.delivered += n
	r.recordLocked(flow, KindDelivered, epoch, n, st.delivered, 0)
	events := int64(1)
	if st.admitted && !st.done && st.size > 0 && st.delivered >= st.size {
		r.completeLocked(flow, st, epoch)
		events++
	}
	r.mu.Unlock()
	r.mEvents.Add(events)
}

// Completed records that every packet of the flow has been delivered.
// Safe to call alongside Delivered-driven completion: only the first
// completion per flow counts.
func (r *Recorder) Completed(flow int64, epoch int) {
	if !r.Tracks(flow) {
		return
	}
	r.mu.Lock()
	st := r.stateLocked(flow)
	if st.done {
		r.mu.Unlock()
		return
	}
	r.completeLocked(flow, st, epoch)
	r.mu.Unlock()
	r.mEvents.Inc()
}

// completeLocked stamps the completion event and SLO aggregates.
func (r *Recorder) completeLocked(flow int64, st *flowState, epoch int) {
	st.done = true
	r.completed++
	latency := int64(-1)
	if st.admitted {
		latency = int64(epoch) - int64(st.admitEpoch)
		if latency < 0 {
			latency = 0
		}
	}
	slack := int64(0)
	onTime := int64(1)
	if r.sloEpochs > 0 && latency >= 0 {
		slack = r.sloEpochs - latency
		if slack < 0 {
			slack = 0
			onTime = 0
		}
	}
	if latency >= 0 {
		r.completion.Observe(latency)
		r.mLatency.Observe(latency)
		r.slack.Observe(slack)
		r.mSlack.Observe(slack)
	}
	r.onTime += onTime
	if onTime == 1 {
		r.mOnTime.Inc()
	}
	r.mCompleted.Inc()
	if r.mOnTimePct != nil && r.completed > 0 {
		r.mOnTimePct.Set(r.onTime * 1000 / r.completed)
	}
	r.recordLocked(flow, KindCompleted, epoch, latency, slack, onTime)
}

// Dropped records the flow abandoned with undelivered packets remaining.
func (r *Recorder) Dropped(flow int64, epoch int, remaining int64) {
	if !r.Tracks(flow) {
		return
	}
	r.record(flow, KindDropped, epoch, 0, 0, remaining)
}

// Cancelled records a client cancellation with remaining packets unsent.
func (r *Recorder) Cancelled(flow int64, epoch int, remaining int64) {
	if !r.Tracks(flow) {
		return
	}
	r.record(flow, KindCancelled, epoch, 0, 0, remaining)
}

// stateLocked returns (creating if needed) the SLO state for flow.
func (r *Recorder) stateLocked(flow int64) *flowState {
	st := r.state[flow]
	if st == nil {
		st = &flowState{}
		r.state[flow] = st
	}
	return st
}

// recordLocked is record without the lock round-trip, for compound
// operations already holding mu.
func (r *Recorder) recordLocked(flow int64, kind Kind, epoch int, a, b, c int64) {
	i := int(r.seq % uint64(len(r.flows)))
	r.flows[i] = flow
	r.kinds[i] = uint8(kind)
	r.epoch[i] = int32(epoch)
	r.a[i] = a
	r.b[i] = b
	r.c[i] = c
	r.seq++
}

// Events returns the journal entries for one flow, oldest first, limited
// to what the ring still holds. Nil and empty results are both possible:
// an untracked flow, or a tracked flow whose events have been overwritten.
func (r *Recorder) Events(flow int64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	r.scanLocked(func(ev Event) {
		if ev.Flow == flow {
			out = append(out, ev)
		}
	})
	return out
}

// All returns every retained event, oldest first.
func (r *Recorder) All() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, min64(r.seq, uint64(len(r.flows))))
	r.scanLocked(func(ev Event) { out = append(out, ev) })
	return out
}

// scanLocked visits retained events oldest-first under mu.
func (r *Recorder) scanLocked(fn func(Event)) {
	capN := uint64(len(r.flows))
	start := uint64(0)
	if r.seq > capN {
		start = r.seq - capN
	}
	for s := start; s < r.seq; s++ {
		i := int(s % capN)
		fn(Event{
			Seq:   s,
			Flow:  r.flows[i],
			Kind:  Kind(r.kinds[i]),
			Epoch: r.epoch[i],
			A:     r.a[i],
			B:     r.b[i],
			C:     r.c[i],
		})
	}
}

// Snapshot is a point-in-time roll-up of the recorder's SLO aggregates.
type Snapshot struct {
	Sample         int     `json:"sample"`
	Events         uint64  `json:"events"`
	Retained       int     `json:"retained"`
	TrackedFlows   int     `json:"tracked_flows"`
	Admitted       int64   `json:"admitted"`
	Completed      int64   `json:"completed"`
	OnTime         int64   `json:"on_time"`
	OnTimeFraction float64 `json:"on_time_fraction"`
	SLOEpochs      int64   `json:"slo_epochs"`
	CompletionP50  int64   `json:"completion_p50_epochs"`
	CompletionP99  int64   `json:"completion_p99_epochs"`
	SlackP50       int64   `json:"slack_p50_epochs"`
}

// Stats returns the current roll-up. Safe to call while recording.
func (r *Recorder) Stats() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	retained := int(min64(r.seq, uint64(len(r.flows))))
	s := Snapshot{
		Sample:        int(r.sample),
		Events:        r.seq,
		Retained:      retained,
		TrackedFlows:  len(r.state),
		Admitted:      r.admitted,
		Completed:     r.completed,
		OnTime:        r.onTime,
		SLOEpochs:     r.sloEpochs,
		CompletionP50: r.completion.Quantile(0.5),
		CompletionP99: r.completion.Quantile(0.99),
		SlackP50:      r.slack.Quantile(0.5),
	}
	if r.completed > 0 {
		s.OnTimeFraction = float64(r.onTime) / float64(r.completed)
	}
	return s
}

// CompletionQuantile exposes the q-quantile of completion latency in
// epochs (0 for nil or no completions).
func (r *Recorder) CompletionQuantile(q float64) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completion.Quantile(q)
}

// TrackedIDs returns the IDs of flows with recorded SLO state, sorted.
// Intended for tests and export tooling, not hot paths.
func (r *Recorder) TrackedIDs() []int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ids := make([]int64, 0, len(r.state))
	for id := range r.state {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Matcher codes carried in KindPlanned.B — a compact stable encoding of
// the matching kind so flight logs are self-describing without string
// storage in the ring. The values mirror core.Matcher (pinned by a test
// in internal/engine, which can see both packages).
const (
	MatcherExact int64 = iota
	MatcherGreedy
	MatcherDense
	MatcherSparse
	MatcherWarm
)

// MatcherCode maps a matcher spec string to its wire code (exact = 0 is
// the default for unknown strings, matching the registry default).
func MatcherCode(m string) int64 {
	switch m {
	case "greedy":
		return MatcherGreedy
	case "dense":
		return MatcherDense
	case "sparse":
		return MatcherSparse
	case "warm":
		return MatcherWarm
	default:
		return MatcherExact
	}
}
