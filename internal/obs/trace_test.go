package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit("core.iter", I("iter", 0), I("alpha", 40), I("benefit", -3))
	tr.Emit("sched.config", I("idx", 1), S("algo", "octopus"), Pairs("links", [][2]int{{0, 1}, {2, 3}}))
	tr.Emit("empty")
	if tr.Events() != 3 {
		t.Fatalf("events = %d", tr.Events())
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records", len(recs))
	}
	for i, r := range recs {
		if r.V != TraceVersion || r.Seq != int64(i) {
			t.Fatalf("record %d envelope = v%d seq%d", i, r.V, r.Seq)
		}
	}
	if recs[0].Ev != "core.iter" {
		t.Fatalf("ev = %q", recs[0].Ev)
	}
	if v, ok := recs[0].Int("alpha"); !ok || v != 40 {
		t.Fatalf("alpha = %d,%v", v, ok)
	}
	if v, ok := recs[0].Int("benefit"); !ok || v != -3 {
		t.Fatalf("benefit = %d,%v", v, ok)
	}
	if s, ok := recs[1].Str("algo"); !ok || s != "octopus" {
		t.Fatalf("algo = %q,%v", s, ok)
	}
	links, ok := recs[1].IntPairs("links")
	if !ok || len(links) != 2 || links[0] != [2]int{0, 1} || links[1] != [2]int{2, 3} {
		t.Fatalf("links = %v,%v", links, ok)
	}
	if len(recs[2].Fields) != 0 {
		t.Fatalf("envelope keys leaked into Fields: %v", recs[2].Fields)
	}
}

func TestTracerEscapesStrings(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(`ev"with\quotes`, S("s", "line\nbreak\t\"quoted\""))
	raw := buf.String()
	recs, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatalf("decode of escaped record failed: %v\n%s", err, raw)
	}
	if recs[0].Ev != `ev"with\quotes` {
		t.Fatalf("ev = %q", recs[0].Ev)
	}
	if s, _ := recs[0].Str("s"); s != "line\nbreak\t\"quoted\"" {
		t.Fatalf("s = %q", s)
	}
	// One record must still be exactly one line.
	if n := strings.Count(raw, "\n"); n != 1 {
		t.Fatalf("record spans %d lines", n)
	}
}

type failWriter struct{ err error }

func (f *failWriter) Write(p []byte) (int, error) { return 0, f.err }

func TestTracerStickyError(t *testing.T) {
	wantErr := errors.New("disk full")
	tr := NewTracer(&failWriter{err: wantErr})
	tr.Emit("a")
	tr.Emit("b")
	if !errors.Is(tr.Err(), wantErr) {
		t.Fatalf("err = %v", tr.Err())
	}
	if tr.Events() != 0 {
		t.Fatalf("events counted despite write failure: %d", tr.Events())
	}
}

func TestDecodeTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":        "hello\n",
		"not an object":   "[1,2,3]\n",
		"missing version": `{"seq":0,"ev":"x"}` + "\n",
		"wrong version":   `{"v":2,"seq":0,"ev":"x"}` + "\n",
		"float version":   `{"v":1.5,"seq":0,"ev":"x"}` + "\n",
		"missing seq":     `{"v":1,"ev":"x"}` + "\n",
		"negative seq":    `{"v":1,"seq":-1,"ev":"x"}` + "\n",
		"missing ev":      `{"v":1,"seq":0}` + "\n",
		"empty ev":        `{"v":1,"seq":0,"ev":""}` + "\n",
		"oversized line":  `{"v":1,"seq":0,"ev":"x","pad":"` + strings.Repeat("a", maxTraceLine+1) + `"}` + "\n",
	}
	for name, in := range cases {
		if _, err := DecodeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted %q", name, in[:min(len(in), 60)])
		}
	}
}

func TestDecodeTraceSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"v":1,"seq":0,"ev":"x"}` + "\n\n" + `{"v":1,"seq":1,"ev":"y"}` + "\n"
	recs, err := DecodeTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Ev != "x" || recs[1].Ev != "y" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestRecordAccessorsRejectWrongTypes(t *testing.T) {
	in := `{"v":1,"seq":0,"ev":"x","f":1.5,"s":3,"p":[[1],[2,3]],"q":[["a","b"]]}` + "\n"
	recs, err := DecodeTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if _, ok := r.Int("f"); ok {
		t.Error("Int accepted a fractional number")
	}
	if _, ok := r.Int("absent"); ok {
		t.Error("Int accepted an absent key")
	}
	if _, ok := r.Str("s"); ok {
		t.Error("Str accepted a number")
	}
	if _, ok := r.IntPairs("p"); ok {
		t.Error("IntPairs accepted a one-element pair")
	}
	if _, ok := r.IntPairs("q"); ok {
		t.Error("IntPairs accepted string pairs")
	}
}
