package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilInstrumentsAreNoOps pins the package's core contract: every
// instrument and the registry itself must be fully usable as nil.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram observed something")
	}
	var tm *Timer
	sp := tm.Start()
	sp.End()
	if tm.Hist().Count() != 0 {
		t.Fatal("nil timer recorded a span")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil || r.Timer("x") != nil {
		t.Fatal("nil registry handed out a live instrument")
	}
	if r.Value("x") != 0 {
		t.Fatal("nil registry has values")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil registry wrote metrics")
	}
	buf.Reset()
	if err := r.WriteVars(&buf); err != nil || buf.String() != "{}" {
		t.Fatalf("nil registry vars = %q", buf.String())
	}

	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer enabled")
	}
	o.Counter("x").Inc()
	o.Gauge("x").Set(1)
	o.Histogram("x").Observe(1)
	o.Timer("x").Start().End()
	o.Tracer().Emit("ev", I("k", 1))
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("hits_total") != c {
		t.Fatal("lookup is not idempotent")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if r.Value("hits_total") != 5 || r.Value("depth") != 7 || r.Value("absent") != 0 {
		t.Fatal("registry Value lookup wrong")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes")
	for _, v := range []int64{0, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 110 { // -5 clamps to 0
		t.Fatalf("sum = %d", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sizes histogram",
		`sizes_bucket{le="0"} 2`,    // 0 and -5
		`sizes_bucket{le="1"} 3`,    // + 1
		`sizes_bucket{le="3"} 5`,    // + 2, 3
		`sizes_bucket{le="7"} 6`,    // + 4
		`sizes_bucket{le="127"} 7`,  // + 100
		`sizes_bucket{le="+Inf"} 7`, // total
		"sizes_sum 110",
		"sizes_count 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestTimerRecordsSpans(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("step_ns")
	sp := tm.Start()
	sp.End()
	if tm.Hist().Count() != 1 {
		t.Fatalf("span count = %d", tm.Hist().Count())
	}
	if r.Value("step_ns") != 1 {
		t.Fatal("registry Value of a timer is not its span count")
	}
}

func TestWriteVarsIsValidSortedJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a").Set(-4)
	r.Histogram("c").Observe(9)
	var buf bytes.Buffer
	if err := r.WriteVars(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("vars output is not JSON: %v\n%s", err, buf.String())
	}
	if m["a"].(float64) != -4 || m["b_total"].(float64) != 2 {
		t.Fatalf("vars values wrong: %v", m)
	}
	hist := m["c"].(map[string]any)
	if hist["count"].(float64) != 1 || hist["sum"].(float64) != 9 {
		t.Fatalf("histogram vars wrong: %v", hist)
	}
	// Deterministic key order: "a" before "b_total" before "c".
	s := buf.String()
	if !(strings.Index(s, `"a"`) < strings.Index(s, `"b_total"`) && strings.Index(s, `"b_total"`) < strings.Index(s, `"c"`)) {
		t.Fatalf("vars keys not sorted: %s", s)
	}
}

// TestConcurrentInstruments exercises the atomics under the race detector.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if r.Value("n_total") != 8000 || r.Value("g") != 8000 || r.Value("h") != 8000 {
		t.Fatalf("lost updates: %d %d %d", r.Value("n_total"), r.Value("g"), r.Value("h"))
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

// TestHistogramQuantile pins the base-2 quantile estimator: the answer is
// the upper bound of the bucket holding the rank-q observation.
func TestHistogramQuantile(t *testing.T) {
	var h *Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
	h = &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 90 observations of 3 (bucket 2, le=3) and 10 of 1000 (bucket 10,
	// le=1023): p50 lands in the low bucket, p99 in the high one.
	for i := 0; i < 90; i++ {
		h.Observe(3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %d, want 3", got)
	}
	if got := h.Quantile(0.99); got != 1023 {
		t.Fatalf("p99 = %d, want 1023", got)
	}
	if got := h.Quantile(0); got != 3 {
		t.Fatalf("p0 = %d, want 3", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Fatalf("p100 = %d, want 1023", got)
	}
	// All-zero observations resolve to bucket 0.
	z := &Histogram{}
	z.Observe(0)
	if got := z.Quantile(1); got != 0 {
		t.Fatalf("all-zero p100 = %d, want 0", got)
	}
}

// TestDurationHistogram pins the seconds-scaled export of the duration
// kind: nanosecond storage, float-second le bounds and sum.
func TestDurationHistogram(t *testing.T) {
	var d *DurationHistogram
	d.Observe(1)
	if d.Count() != 0 || d.Sum() != 0 || d.Quantile(0.5) != 0 {
		t.Fatal("nil duration histogram recorded something")
	}
	var r *Registry
	if r.Duration("x") != nil {
		t.Fatal("nil registry handed out a duration histogram")
	}
	reg := NewRegistry()
	dh := reg.Duration("test_plan_seconds")
	if dh != reg.Duration("test_plan_seconds") {
		t.Fatal("Duration is not idempotent")
	}
	dh.Observe(1500 * 1e6) // 1.5s in ns
	dh.Observe(500 * 1e6)  // 0.5s
	if dh.Count() != 2 {
		t.Fatalf("count = %d, want 2", dh.Count())
	}
	if dh.Sum() != 2*1e9 {
		t.Fatalf("sum = %v, want 2s", dh.Sum())
	}
	if reg.Value("test_plan_seconds") != 2 {
		t.Fatalf("Value = %d, want 2", reg.Value("test_plan_seconds"))
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE test_plan_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "test_plan_seconds_sum 2\n") {
		t.Fatalf("sum not in float seconds:\n%s", out)
	}
	if !strings.Contains(out, "test_plan_seconds_count 2\n") {
		t.Fatalf("missing count:\n%s", out)
	}
	// le bounds must be fractional seconds, not raw nanoseconds.
	if !strings.Contains(out, `le="1.073741823`) {
		t.Fatalf("expected ~1.07s le bound for the 2^30-1 ns bucket:\n%s", out)
	}
	buf.Reset()
	if err := reg.WriteVars(&buf); err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(buf.Bytes(), &vars); err != nil {
		t.Fatalf("vars not JSON: %v\n%s", err, buf.String())
	}
	obj, ok := vars["test_plan_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("vars entry missing: %v", vars)
	}
	if obj["count"].(float64) != 2 || obj["sum_seconds"].(float64) != 2 {
		t.Fatalf("vars entry = %v", obj)
	}
}
