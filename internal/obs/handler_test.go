package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("octopus_iterations_total").Add(7)
	reg.Gauge("octopus_queue_depth").Set(12)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "octopus_iterations_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "octopus_queue_depth 12") {
		t.Fatalf("/metrics missing gauge:\n%s", body)
	}

	code, body, _ = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	oct, ok := vars["octopus"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing octopus section: %s", body)
	}
	if oct["octopus_iterations_total"].(float64) != 7 {
		t.Fatalf("octopus vars wrong: %v", oct)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatalf("/debug/vars missing standard expvar keys: %s", body)
	}

	code, body, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline status=%d len=%d", code, len(body))
	}
	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index broken: status=%d", code)
	}
}
