package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTraceDecode hammers the hardened JSONL decoder: it must never panic,
// and everything it accepts must round-trip through a fresh Tracer back to
// an equivalent envelope (version, seq order preserved per record).
func FuzzTraceDecode(f *testing.F) {
	f.Add(`{"v":1,"seq":0,"ev":"core.iter","iter":3,"alpha":40}` + "\n")
	f.Add(`{"v":1,"seq":0,"ev":"sched.config","links":[[0,1],[2,3]]}` + "\n")
	f.Add(`{"v":1,"seq":0,"ev":"x"}` + "\n" + `{"v":1,"seq":1,"ev":"y","s":"a\nb"}` + "\n")
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"v":2,"seq":0,"ev":"x"}`)
	f.Add(`{"v":1,"seq":-1,"ev":"x"}`)
	f.Add(`{"v":1,"seq":0,"ev":""}`)
	f.Add("not json at all")
	f.Add(`{"v":1,"seq":0,"ev":"x","nested":{"a":[1,{"b":null}]}}`)

	f.Fuzz(func(t *testing.T, data string) {
		recs, err := DecodeTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: envelope invariants must hold on every record.
		for i, r := range recs {
			if r.V != TraceVersion {
				t.Fatalf("record %d: accepted version %d", i, r.V)
			}
			if r.Seq < 0 {
				t.Fatalf("record %d: accepted negative seq %d", i, r.Seq)
			}
			if r.Ev == "" {
				t.Fatalf("record %d: accepted empty event kind", i)
			}
			if _, ok := r.Fields["v"]; ok {
				t.Fatalf("record %d: envelope key leaked into Fields", i)
			}
		}
		// Re-emitting the event kinds through a Tracer must produce a trace
		// the decoder accepts again.
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		for _, r := range recs {
			tr.Emit(r.Ev)
		}
		again, err := DecodeTrace(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-encode lost records: %d != %d", len(again), len(recs))
		}
		for i := range again {
			if again[i].Ev != recs[i].Ev {
				t.Fatalf("record %d: event kind mangled %q -> %q", i, recs[i].Ev, again[i].Ev)
			}
			if again[i].Seq != int64(i) {
				t.Fatalf("record %d: seq not monotone: %d", i, again[i].Seq)
			}
		}
	})
}
