package matching

import "sort"

// GreedyGeneral returns a greedy maximal matching of a general undirected
// graph: repeatedly take the heaviest remaining edge with both endpoints
// free. This is the 1/2-approximate matcher used for the bidirectional
// network model (paper §7); the paper's suggested exact general-graph
// matcher [Gabow-Tarjan] is substituted by this approximation plus the
// AugmentGeneral improvement pass, documented in DESIGN.md.
func GreedyGeneral(n int, edges []UEdge) ([]UEdge, int64) {
	pos := make([]UEdge, 0, len(edges))
	for _, e := range edges {
		if e.Weight > 0 {
			pos = append(pos, e)
		}
	}
	sort.Slice(pos, func(i, j int) bool {
		if pos[i].Weight != pos[j].Weight {
			return pos[i].Weight > pos[j].Weight
		}
		if pos[i].A != pos[j].A {
			return pos[i].A < pos[j].A
		}
		return pos[i].B < pos[j].B
	})
	used := make([]bool, n)
	var m []UEdge
	var total int64
	for _, e := range pos {
		if used[e.A] || used[e.B] {
			continue
		}
		used[e.A] = true
		used[e.B] = true
		m = append(m, e)
		total += e.Weight
	}
	return m, total
}

// AugmentGeneral improves a matching by repeated 1-for-2 local swaps:
// replace one matched edge by two currently-free edges adjacent to its
// endpoints whenever that increases total weight. It preserves matching
// validity and never decreases weight. Returns the improved matching and
// weight.
func AugmentGeneral(n int, edges []UEdge, m []UEdge) ([]UEdge, int64) {
	matchOf := make([]int, n) // index into cur, or -1
	for i := range matchOf {
		matchOf[i] = -1
	}
	cur := append([]UEdge(nil), m...)
	for i, e := range cur {
		matchOf[e.A] = i
		matchOf[e.B] = i
	}
	// Adjacency of candidate edges per node.
	adj := make([][]UEdge, n)
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		adj[e.A] = append(adj[e.A], e)
		adj[e.B] = append(adj[e.B], e)
	}
	free := func(v int) bool { return matchOf[v] == -1 }
	other := func(e UEdge, v int) int {
		if e.A == v {
			return e.B
		}
		return e.A
	}
	improved := true
	for improved {
		improved = false
		for i := 0; i < len(cur); i++ {
			e := cur[i]
			// Try to replace e=(a,b) with (a,x) and (b,y), x,y free and distinct.
			var bestGain int64
			var ea, eb UEdge
			var found bool
			for _, ca := range adj[e.A] {
				x := other(ca, e.A)
				if x == e.B || !free(x) {
					continue
				}
				for _, cb := range adj[e.B] {
					y := other(cb, e.B)
					if y == e.A || y == x || !free(y) {
						continue
					}
					gain := ca.Weight + cb.Weight - e.Weight
					if gain > bestGain {
						bestGain, ea, eb, found = gain, ca, cb, true
					}
				}
			}
			if !found {
				continue
			}
			// Apply the swap.
			matchOf[e.A] = -1
			matchOf[e.B] = -1
			cur[i] = ea
			matchOf[ea.A] = i
			matchOf[ea.B] = i
			cur = append(cur, eb)
			matchOf[eb.A] = len(cur) - 1
			matchOf[eb.B] = len(cur) - 1
			improved = true
		}
	}
	return cur, UWeight(cur)
}

// BruteForceGeneral returns an exact maximum-weight matching of a general
// undirected graph by exhaustive search over the lowest-indexed free vertex.
// Exponential; intended as a test oracle for n <= ~12.
func BruteForceGeneral(n int, edges []UEdge) ([]UEdge, int64) {
	adj := make([][]UEdge, n)
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		adj[e.A] = append(adj[e.A], e)
		adj[e.B] = append(adj[e.B], e)
	}
	used := make([]bool, n)
	var best int64
	var bestSet []UEdge
	var cur []UEdge
	var rec func(v int, sum int64)
	rec = func(v int, sum int64) {
		for v < n && used[v] {
			v++
		}
		if v == n {
			if sum > best {
				best = sum
				bestSet = append([]UEdge(nil), cur...)
			}
			return
		}
		used[v] = true
		rec(v+1, sum) // leave v unmatched
		for _, e := range adj[v] {
			u := e.A + e.B - v
			if u == v || used[u] {
				continue
			}
			used[u] = true
			cur = append(cur, e)
			rec(v+1, sum+e.Weight)
			cur = cur[:len(cur)-1]
			used[u] = false
		}
		used[v] = false
	}
	rec(0, 0)
	return bestSet, best
}
