package matching

import (
	"math/rand"
	"testing"
)

func TestMaxWeightGeneralTriangle(t *testing.T) {
	// Triangle: only one edge can be matched; the heaviest wins.
	edges := []UEdge{{0, 1, 5}, {1, 2, 7}, {0, 2, 6}}
	m, w := MaxWeightGeneral(3, edges)
	if w != 7 || len(m) != 1 || m[0] != (UEdge{1, 2, 7}) {
		t.Fatalf("got %v %d", m, w)
	}
}

func TestMaxWeightGeneralAugmentingPath(t *testing.T) {
	// Path with weights 3,4,3: optimum takes the two outer edges (6),
	// which the greedy (4) misses.
	edges := []UEdge{{0, 1, 3}, {1, 2, 4}, {2, 3, 3}}
	m, w := MaxWeightGeneral(4, edges)
	if w != 6 || len(m) != 2 {
		t.Fatalf("got %v %d", m, w)
	}
}

func TestMaxWeightGeneralBlossomCase(t *testing.T) {
	// 5-cycle (forces a blossom) plus a pendant edge: classic case where
	// naive alternating search without blossom shrinking fails.
	edges := []UEdge{
		{0, 1, 8}, {1, 2, 9}, {2, 3, 8}, {3, 4, 9}, {4, 0, 8},
		{2, 5, 10},
	}
	m, w := MaxWeightGeneral(6, edges)
	_, want := BruteForceGeneral(6, edges)
	if w != want {
		t.Fatalf("blossom case: got %d, want %d (m=%v)", w, want, m)
	}
}

func TestMaxWeightGeneralEmptyAndDegenerate(t *testing.T) {
	if m, w := MaxWeightGeneral(4, nil); m != nil || w != 0 {
		t.Fatalf("empty: %v %d", m, w)
	}
	// Self-loops, negative weights, and out-of-range nodes are ignored.
	junk := []UEdge{{1, 1, 5}, {0, 1, -3}, {7, 0, 9}, {0, -1, 2}}
	if m, w := MaxWeightGeneral(3, junk); m != nil || w != 0 {
		t.Fatalf("junk: %v %d", m, w)
	}
}

func TestMaxWeightGeneralMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(9)
		edges := randGeneral(rng, n, 30)
		m, w := MaxWeightGeneral(n, edges)
		_, want := BruteForceGeneral(n, edges)
		if w != want {
			t.Fatalf("trial %d (n=%d): blossom %d != brute %d\nedges=%v", trial, n, w, want, edges)
		}
		if !isGeneralMatching(n, m) {
			t.Fatalf("trial %d: invalid matching %v", trial, m)
		}
		if UWeight(m) != w {
			t.Fatalf("trial %d: weight sum mismatch", trial)
		}
	}
}

func TestMaxWeightGeneralDenseOddWeights(t *testing.T) {
	// Odd weights exercise the internal doubling that keeps duals
	// integral.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		n := 6 + rng.Intn(5)
		var edges []UEdge
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				edges = append(edges, UEdge{a, b, int64(1 + 2*rng.Intn(15))})
			}
		}
		_, w := MaxWeightGeneral(n, edges)
		_, want := BruteForceGeneral(n, edges)
		if w != want {
			t.Fatalf("trial %d: %d != %d", trial, w, want)
		}
	}
}

func TestMaxWeightGeneralBeatsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	better := 0
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(8)
		edges := randGeneral(rng, n, 50)
		_, exact := MaxWeightGeneral(n, edges)
		_, greedy := GreedyGeneral(n, edges)
		if exact < greedy {
			t.Fatalf("trial %d: exact %d below greedy %d", trial, exact, greedy)
		}
		if exact > greedy {
			better++
		}
	}
	if better == 0 {
		t.Fatal("exact never beat greedy across 100 random instances")
	}
}

func TestMaxWeightGeneralLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(7))
	n := 80
	var edges []UEdge
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Intn(3) == 0 {
				edges = append(edges, UEdge{a, b, rng.Int63n(100000)})
			}
		}
	}
	m, w := MaxWeightGeneral(n, edges)
	if !isGeneralMatching(n, m) {
		t.Fatal("invalid matching at n=80")
	}
	_, aw := AugmentGeneral(n, edges, mustGreedy(n, edges))
	if w < aw {
		t.Fatalf("exact %d below greedy+augment %d", w, aw)
	}
}

func mustGreedy(n int, edges []UEdge) []UEdge {
	m, _ := GreedyGeneral(n, edges)
	return m
}
