package matching

import "testing"

func TestArenaStats(t *testing.T) {
	var a Arena
	edges := []Edge{
		{From: 0, To: 1, Weight: 5},
		{From: 1, To: 0, Weight: 3},
		{From: 0, To: 0, Weight: 1},
		{From: 1, To: 1, Weight: -2}, // filtered out
	}

	a.GreedyBipartite(2, edges)
	s := a.Stats
	if s.GreedyCalls != 1 || s.GreedyEdges != 3 || s.GreedyMatched != 2 {
		t.Fatalf("greedy stats after first call: %+v", s)
	}
	if s.Grows != 1 || s.Reuses != 0 {
		t.Fatalf("first greedy call should grow: %+v", s)
	}
	a.GreedyBipartite(2, edges)
	if a.Stats.GreedyCalls != 2 || a.Stats.Reuses != 1 {
		t.Fatalf("second greedy call should reuse: %+v", a.Stats)
	}

	a.MaxWeightBipartite(2, edges)
	s = a.Stats
	if s.ExactCalls != 1 || s.ExactRows != 2 {
		t.Fatalf("exact stats after first call: %+v", s)
	}
	if s.AugmentRounds < 2 {
		t.Fatalf("exact call recorded %d augment rounds for 2 rows", s.AugmentRounds)
	}
	if s.Grows != 2 {
		t.Fatalf("first exact call should grow: %+v", s)
	}
	a.MaxWeightBipartite(2, edges)
	if a.Stats.ExactCalls != 2 || a.Stats.Reuses != 2 {
		t.Fatalf("second exact call should reuse: %+v", a.Stats)
	}

	// Empty instance still counts the call but solves no rows.
	a.MaxWeightBipartite(2, nil)
	if a.Stats.ExactCalls != 3 || a.Stats.ExactRows != 4 {
		t.Fatalf("empty exact call stats: %+v", a.Stats)
	}

	var sum Stats
	a.Stats.AddTo(&sum)
	a.Stats.AddTo(&sum)
	if sum.ExactCalls != 2*a.Stats.ExactCalls || sum.GreedyEdges != 2*a.Stats.GreedyEdges ||
		sum.AugmentRounds != 2*a.Stats.AugmentRounds || sum.Grows != 2*a.Stats.Grows {
		t.Fatalf("AddTo not field-complete: %+v vs %+v", sum, a.Stats)
	}
}

// TestArenaStatsDoNotPerturbResults guards the read-only invariant: a
// stats-bearing arena must return the same matchings as the package-level
// allocate-fresh entry points.
func TestArenaStatsDoNotPerturbResults(t *testing.T) {
	edges := []Edge{
		{From: 0, To: 2, Weight: 9},
		{From: 1, To: 2, Weight: 8},
		{From: 1, To: 3, Weight: 7},
		{From: 2, To: 3, Weight: 6},
		{From: 0, To: 3, Weight: 5},
	}
	var a Arena
	for i := 0; i < 3; i++ {
		gotM, gotW := a.MaxWeightBipartite(4, edges)
		wantM, wantW := MaxWeightBipartite(4, edges)
		if gotW != wantW || len(gotM) != len(wantM) {
			t.Fatalf("iter %d: exact arena diverged: %v/%d vs %v/%d", i, gotM, gotW, wantM, wantW)
		}
		for j := range gotM {
			if gotM[j] != wantM[j] {
				t.Fatalf("iter %d: exact edge %d differs: %v vs %v", i, j, gotM[j], wantM[j])
			}
		}
	}
}

// TestArenaShrinkThenGrow guards against stale state leaking across
// instance sizes: a big solve, then a small one, then big again must match
// a fresh arena at every step, on every exact path (the dense potentials,
// the sparse stamps/generator, and the warm scratch all outlive the small
// call).
func TestArenaShrinkThenGrow(t *testing.T) {
	big := func(seed int64) []Edge {
		var edges []Edge
		for f := 0; f < 64; f++ {
			for d := 0; d < 5; d++ {
				to := (f*3 + d*7 + int(seed)) % 64
				edges = append(edges, Edge{From: f, To: to, Weight: int64((f+d)%11) + 1 + seed})
			}
		}
		return edges
	}
	small := []Edge{{0, 1, 3}, {1, 0, 2}, {2, 2, 7}}

	var a Arena
	var ws WarmState
	steps := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"big-1", 64, big(1)},
		{"small", 4, small},
		{"big-2", 64, big(2)},
		{"small-again", 4, small},
		{"big-3", 64, big(1)},
	}
	for _, st := range steps {
		for _, path := range []string{"auto", "dense", "sparse", "warm"} {
			var gotM, wantM []Edge
			var gotW, wantW int64
			var fresh Arena
			switch path {
			case "auto":
				gotM, gotW = a.MaxWeightBipartite(st.n, st.edges)
				wantM, wantW = fresh.MaxWeightBipartite(st.n, st.edges)
			case "dense":
				gotM, gotW = a.MaxWeightBipartiteDense(st.n, st.edges)
				wantM, wantW = fresh.MaxWeightBipartiteDense(st.n, st.edges)
			case "sparse":
				gotM, gotW = a.MaxWeightBipartiteSparse(st.n, st.edges)
				wantM, wantW = fresh.MaxWeightBipartiteSparse(st.n, st.edges)
			case "warm":
				// Size changes invalidate ws, so each warm call here solves
				// cold through the shared arena scratch: weight must still
				// match a fresh arena exactly.
				gotM, gotW = a.MaxWeightBipartiteWarm(st.n, st.edges, &ws, nil)
				wantM, wantW = fresh.MaxWeightBipartiteDense(st.n, st.edges)
			}
			if gotW != wantW || len(gotM) != len(wantM) {
				t.Fatalf("%s/%s: reused arena diverged: %d edges/%d vs %d edges/%d",
					st.name, path, len(gotM), gotW, len(wantM), wantW)
			}
			for i := range gotM {
				if gotM[i] != wantM[i] {
					t.Fatalf("%s/%s: edge %d differs: %+v vs %+v", st.name, path, i, gotM[i], wantM[i])
				}
			}
		}
	}
}
