package matching

import "math"

const inf = math.MaxInt64 / 4

// MaxWeightBipartite returns an exact maximum-weight matching of the
// bipartite graph with n output-port nodes and n input-port nodes, together
// with its total weight. Edges with non-positive weight never appear in the
// result, so the matching is free to leave nodes unmatched.
//
// The implementation is the classic Hungarian algorithm with potentials
// (Jonker-Volgenant style shortest augmenting paths) over only the nodes
// incident to a positive-weight edge. Dense instances run on a matrix in
// O(k^3) time for k active nodes; below the density threshold documented in
// arena.go the solver switches to a CSR adjacency-list path whose
// relaxation rounds cost O(deg + touched) instead of O(k), degrading
// per-row to the dense scan when augmenting paths grow long. Both paths
// produce bit-identical matchings (sparse.go documents the emulation
// argument) and stand in for the OR-Tools linear-assignment solver the
// paper used; all compute the same optimum.
// Hot-path callers should prefer Arena.MaxWeightBipartite, which holds the
// implementation and recycles the matrices and potential arrays across
// calls; Arena.MaxWeightBipartiteWarm additionally retains dual potentials
// between calls (see warm.go).
func MaxWeightBipartite(n int, edges []Edge) ([]Edge, int64) {
	var a Arena
	return a.MaxWeightBipartite(n, edges)
}

// BruteForceBipartite returns an exact maximum-weight bipartite matching by
// exhaustive search. Exponential; intended only as a test oracle for small
// instances (at most ~8 active rows).
func BruteForceBipartite(n int, edges []Edge) ([]Edge, int64) {
	byFrom := make(map[int][]Edge)
	var froms []int
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		if _, ok := byFrom[e.From]; !ok {
			froms = append(froms, e.From)
		}
		byFrom[e.From] = append(byFrom[e.From], e)
	}
	usedTo := make(map[int]bool)
	var best int64
	var bestSet []Edge
	var cur []Edge
	var rec func(idx int, sum int64)
	rec = func(idx int, sum int64) {
		if idx == len(froms) {
			if sum > best {
				best = sum
				bestSet = append([]Edge(nil), cur...)
			}
			return
		}
		rec(idx+1, sum) // leave froms[idx] unmatched
		for _, e := range byFrom[froms[idx]] {
			if usedTo[e.To] {
				continue
			}
			usedTo[e.To] = true
			cur = append(cur, e)
			rec(idx+1, sum+e.Weight)
			cur = cur[:len(cur)-1]
			usedTo[e.To] = false
		}
	}
	rec(0, 0)
	return bestSet, best
}
