package matching

import "math"

const inf = math.MaxInt64 / 4

// MaxWeightBipartite returns an exact maximum-weight matching of the
// bipartite graph with n output-port nodes and n input-port nodes, together
// with its total weight. Edges with non-positive weight never appear in the
// result, so the matching is free to leave nodes unmatched.
//
// The implementation is the classic Hungarian algorithm with potentials
// (Jonker-Volgenant style shortest augmenting paths) on a dense matrix over
// only the nodes incident to a positive-weight edge, giving O(k^3) time for
// k active nodes. It stands in for the OR-Tools linear-assignment solver
// the paper used; both compute the same optimum.
func MaxWeightBipartite(n int, edges []Edge) ([]Edge, int64) {
	// Compact the instance to active rows/columns.
	rowID := make(map[int]int)
	colID := make(map[int]int)
	var rows, cols []int
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		if _, ok := rowID[e.From]; !ok {
			rowID[e.From] = len(rows)
			rows = append(rows, e.From)
		}
		if _, ok := colID[e.To]; !ok {
			colID[e.To] = len(cols)
			cols = append(cols, e.To)
		}
	}
	nr, nc := len(rows), len(cols)
	if nr == 0 {
		return nil, 0
	}
	// The shortest-augmenting-path formulation below needs nr <= nc.
	// Pad columns with dummies of weight 0 if necessary.
	if nc < nr {
		nc = nr
	}
	// Dense weight matrix; absent pairs have weight 0, equivalent to
	// leaving the row unmatched.
	w := make([]int64, nr*nc)
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		i, j := rowID[e.From], colID[e.To]
		if e.Weight > w[i*nc+j] {
			w[i*nc+j] = e.Weight // keep max of duplicate edges
		}
	}

	// Minimize cost = -weight. 1-indexed arrays as in the standard
	// formulation; p[j] is the row assigned to column j.
	u := make([]int64, nr+1)
	v := make([]int64, nc+1)
	p := make([]int, nc+1)
	way := make([]int, nc+1)
	minv := make([]int64, nc+1)
	used := make([]bool, nc+1)
	for i := 1; i <= nr; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= nc; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := 0
			for j := 1; j <= nc; j++ {
				if used[j] {
					continue
				}
				cur := -w[(i0-1)*nc+(j-1)] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= nc; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	var m []Edge
	var total int64
	for j := 1; j <= nc; j++ {
		i := p[j]
		if i == 0 || j > len(cols) {
			continue
		}
		wt := w[(i-1)*nc+(j-1)]
		if wt > 0 {
			m = append(m, Edge{From: rows[i-1], To: cols[j-1], Weight: wt})
			total += wt
		}
	}
	return m, total
}

// BruteForceBipartite returns an exact maximum-weight bipartite matching by
// exhaustive search. Exponential; intended only as a test oracle for small
// instances (at most ~8 active rows).
func BruteForceBipartite(n int, edges []Edge) ([]Edge, int64) {
	byFrom := make(map[int][]Edge)
	var froms []int
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		if _, ok := byFrom[e.From]; !ok {
			froms = append(froms, e.From)
		}
		byFrom[e.From] = append(byFrom[e.From], e)
	}
	usedTo := make(map[int]bool)
	var best int64
	var bestSet []Edge
	var cur []Edge
	var rec func(idx int, sum int64)
	rec = func(idx int, sum int64) {
		if idx == len(froms) {
			if sum > best {
				best = sum
				bestSet = append([]Edge(nil), cur...)
			}
			return
		}
		rec(idx+1, sum) // leave froms[idx] unmatched
		for _, e := range byFrom[froms[idx]] {
			if usedTo[e.To] {
				continue
			}
			usedTo[e.To] = true
			cur = append(cur, e)
			rec(idx+1, sum+e.Weight)
			cur = cur[:len(cur)-1]
			usedTo[e.To] = false
		}
	}
	rec(0, 0)
	return bestSet, best
}
