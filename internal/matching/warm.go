package matching

// Warm-started exact matcher: retains Jonker-Volgenant dual potentials and
// the previous assignment across calls, re-inserting only the rows the
// caller declares dirty. See DESIGN.md §13 for the invariant catalogue.
//
// Correctness sketch. The dense solver's state after any call is a feasible
// dual pair (u, v) for cost = -weight that is tight on every assigned pair,
// over the *virtual* complete bipartite graph: columns never seen have
// v = 0 and cost 0. If the next instance differs from the previous one only
// in the edge sets of rows the caller marked dirty, then:
//
//   - clean rows' constraints u[i] + v[j] <= c(i, j) are untouched for
//     retained columns (same weights, same duals), hold for departed
//     columns because their v is reset to 0 on departure and u[i] <= 0,
//     and hold for new columns (v = 0, c = 0) for the same reason;
//   - u[i] <= 0 is not guaranteed by the algorithm when nr == nc, so any
//     retained row with u[i] > 0 is demoted to dirty, restoring the
//     invariant trivially (dirty rows are uninserted and carry no
//     constraints);
//   - clean rows that were effectively unmatched (assigned to a zero-weight
//     padding column) are also demoted to dirty: padding columns are
//     anonymous per call, so their duals cannot be retained;
//   - complementary slackness requires unmatched columns to carry v = 0.
//     Unassigning dirty rows strands their columns with stale v, so every
//     column left unmatched at seed time is reset to v = 0; raising a
//     negative v tightens the constraints of the column's incident clean
//     rows, and any row whose constraint breaks is demoted to dirty,
//     cascading (the same repair the dynamic Hungarian algorithm of
//     Mills-Tettey & Stentz performs for changed costs). The cascade
//     terminates because each demotion strictly shrinks the clean set.
//
// Re-inserting each dirty row with the standard shortest-augmenting-path
// iteration from this seeded state is then exactly the textbook incremental
// assignment step, so the result is a maximum-weight matching of the new
// instance. The *particular* matching may differ from the cold solver's
// among equal-weight optima (the insertion order differs), which is why the
// warm path is opt-in: callers that need bit-identical schedules use the
// cold dense/sparse paths; callers that only need optimal weight (the
// matcher=warm A/B mode) get the warm path's reuse.

// WarmState retains exact-matcher duals between MaxWeightBipartiteWarm
// calls. It is owned by the caller (one per independent call-site/α-probe),
// is self-contained (any Arena may solve against it, one at a time), and
// the zero value is ready to use. Reset invalidates the retained state so
// the next call solves cold.
type WarmState struct {
	n     int
	valid bool

	u, v      []int64 // duals by node id; v persists only while active
	matchTo   []int   // col node -> matched row node, -1
	matchFrom []int   // row node -> matched col node, -1
	wasRow    []bool  // node was an active row in the previous call
	rowsPrev  []int   // previous call's active sets, for cleanup
	colsPrev  []int
}

// Reset discards the retained duals; the next warm call solves cold.
func (ws *WarmState) Reset() { ws.valid = false }

// MaxWeightBipartiteWarm solves the same problem as MaxWeightBipartite,
// warm-starting from the duals retained in ws. dirty lists the From-nodes
// whose outgoing edge weights may have changed since the call recorded in
// ws — including nodes that gained or lost edges entirely. Rows not listed
// must have identical positive-edge rows in both calls; the solver trusts
// this contract. A nil ws solves cold without retaining anything; an
// invalid ws (fresh, Reset, or instance-size change) solves cold and then
// retains.
//
// The returned matching has exactly the maximum weight (oracle-pinned in
// tests against the cold solvers) but may be a different equal-weight
// optimum than the cold paths produce; see the package comment in warm.go.
// The returned slice is valid until the next call on the arena.
func (a *Arena) MaxWeightBipartiteWarm(n int, edges []Edge, ws *WarmState, dirty []int) ([]Edge, int64) {
	a.Stats.WarmCalls++
	if ws == nil {
		a.Stats.WarmMisses++
		return a.MaxWeightBipartite(n, edges)
	}
	capBefore := a.exactCap()
	a.Stats.ExactCalls++
	cold := !ws.valid || ws.n != n
	if cold {
		a.Stats.WarmMisses++
		ws.n = n
		ws.u = growInt64s(ws.u, n)
		ws.v = growInt64s(ws.v, n)
		for i := 0; i < n; i++ {
			ws.u[i], ws.v[i] = 0, 0
		}
		ws.matchTo = growInts(ws.matchTo, n)
		ws.matchFrom = growInts(ws.matchFrom, n)
		for i := 0; i < n; i++ {
			ws.matchTo[i], ws.matchFrom[i] = -1, -1
		}
		ws.wasRow = growBools(ws.wasRow, n)
		for i := 0; i < n; i++ {
			ws.wasRow[i] = false
		}
		ws.rowsPrev, ws.colsPrev = ws.rowsPrev[:0], ws.colsPrev[:0]
	} else {
		a.Stats.WarmHits++
	}

	nr, ncReal, _ := a.compactExact(n, edges)
	if nr == 0 {
		// Optimal matching is empty; retire all retained state.
		for _, node := range ws.rowsPrev {
			ws.wasRow[node] = false
			ws.matchFrom[node] = -1
		}
		for _, node := range ws.colsPrev {
			ws.v[node] = 0
			ws.matchTo[node] = -1
		}
		ws.rowsPrev, ws.colsPrev = ws.rowsPrev[:0], ws.colsPrev[:0]
		ws.valid = true
		a.restoreIDMaps()
		a.exactDone(capBefore)
		return nil, 0
	}
	a.Stats.ExactRows += int64(nr)
	nc := ncReal
	if nc < nr {
		nc = nr
	}
	a.prepDense(edges, nr, nc)

	// Classify rows. A row is clean only when every retained invariant
	// holds: it was active, the caller did not flag it, its retained dual
	// is feasible against fresh columns (u <= 0), and it held a recorded
	// positive-weight match whose column is still active.
	a.warmDirty = growBools(a.warmDirty, nr+1)
	dirtyRow := a.warmDirty[:nr+1]
	for i := range dirtyRow {
		dirtyRow[i] = false
	}
	if cold {
		for i := 1; i <= nr; i++ {
			dirtyRow[i] = true
		}
	} else {
		for _, f := range dirty {
			if f >= 0 && f < n && a.rowID[f] >= 0 {
				dirtyRow[a.rowID[f]+1] = true
			}
		}
		for i, node := range a.rows {
			if dirtyRow[i+1] {
				continue
			}
			c := -1
			if ws.wasRow[node] && ws.u[node] <= 0 {
				c = ws.matchFrom[node]
			}
			if c < 0 || a.colID[c] < 0 || ws.matchTo[c] != node {
				dirtyRow[i+1] = true
			}
		}
	}

	// Seed duals and assignment from the retained state (prepDense zeroed
	// them). Padding columns keep v = 0. rowMatch (reused way[] storage is
	// unavailable — it must stay zeroed — so borrow csrCur) tracks the
	// seeded row->column assignment for the cascade below.
	u, v, p := a.u, a.v, a.p
	a.csrCur = growInts(a.csrCur, nr+1)
	rowMatch := a.csrCur[:nr+1]
	for i := range rowMatch {
		rowMatch[i] = 0
	}
	for i, node := range a.rows {
		if !dirtyRow[i+1] {
			u[i+1] = ws.u[node]
		}
	}
	for j, node := range a.cols {
		v[j+1] = ws.v[node]
		f := ws.matchTo[node]
		if f >= 0 && a.rowID[f] >= 0 && !dirtyRow[a.rowID[f]+1] {
			p[j+1] = a.rowID[f] + 1
			rowMatch[a.rowID[f]+1] = j + 1
		}
	}

	// Restore the unmatched-column invariant: every column without a seeded
	// assignment must have v = 0 (complementary slackness). Raising a
	// negative v can break an incident clean row's constraint
	// u[i] + v[j] <= -w(i, j); such rows are demoted to dirty, freeing
	// their columns, which may cascade.
	if !cold {
		a.warmResetColumns(nr, ncReal, nc)
	}
	reused := 0
	for i := 1; i <= nr; i++ {
		if !dirtyRow[i] {
			reused++
		}
	}
	a.Stats.WarmRowsReused += int64(reused)

	var rounds int64
	for i := 1; i <= nr; i++ {
		if dirtyRow[i] {
			rounds += a.denseInsertRow(i, nc)
		}
	}
	a.Stats.AugmentRounds += rounds

	// Record the final state back into ws, clearing departed nodes first so
	// a node that leaves and later returns re-enters as new.
	for _, node := range ws.rowsPrev {
		ws.wasRow[node] = false
		ws.matchFrom[node] = -1
	}
	for _, node := range ws.colsPrev {
		ws.v[node] = 0
		ws.matchTo[node] = -1
	}
	for i, node := range a.rows {
		ws.wasRow[node] = true
		ws.u[node] = u[i+1]
		ws.matchFrom[node] = -1
	}
	for j, node := range a.cols {
		ws.v[node] = v[j+1]
		ws.matchTo[node] = -1
	}
	for j := 1; j <= ncReal; j++ {
		i := p[j]
		if i == 0 {
			continue
		}
		if wt := a.w[(i-1)*nc+(j-1)]; wt > 0 {
			ws.matchTo[a.cols[j-1]] = a.rows[i-1]
			ws.matchFrom[a.rows[i-1]] = a.cols[j-1]
		}
	}
	ws.rowsPrev = append(ws.rowsPrev[:0], a.rows...)
	ws.colsPrev = append(ws.colsPrev[:0], a.cols...)
	ws.valid = true

	a.restoreIDMaps()
	out, total := a.extractExact(nc, false)
	a.exactDone(capBefore)
	return out, total
}

// warmResetColumns restores the complementary-slackness invariant on the
// seeded warm state: every unmatched real column must carry v = 0. Raising
// a negative v tightens u[i] + v[j] <= -w(i, j) for the column's incident
// clean rows; rows whose constraint breaks are demoted to dirty (u reset,
// assignment released), which can strand further columns — the repair runs
// to a fixpoint. Lowering a positive v only relaxes constraints and needs
// no checks. nr/ncReal are the compacted counts, nc the padded column count
// (the dense matrix stride).
func (a *Arena) warmResetColumns(nr, ncReal, nc int) {
	u, v, p, w := a.u, a.v, a.p, a.w
	dirtyRow := a.warmDirty[:nr+1]
	rowMatch := a.csrCur[:nr+1]
	a.touchTick = growInt64s(a.touchTick, nc+1)
	a.rowEpoch++
	done, epoch := a.touchTick, a.rowEpoch
	queue := a.retJ[:0]
	for j := 1; j <= ncReal; j++ {
		if p[j] == 0 && v[j] != 0 {
			queue = append(queue, j)
			done[j] = epoch
		}
	}
	for len(queue) > 0 {
		j := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if v[j] < 0 {
			for i := 1; i <= nr; i++ {
				if dirtyRow[i] {
					continue
				}
				if wt := w[(i-1)*nc+(j-1)]; u[i] > -wt {
					dirtyRow[i] = true
					u[i] = 0
					if jj := rowMatch[i]; jj != 0 {
						p[jj] = 0
						rowMatch[i] = 0
						if v[jj] != 0 && done[jj] != epoch {
							queue = append(queue, jj)
							done[jj] = epoch
						}
					}
				}
			}
		}
		v[j] = 0
	}
	a.retJ = queue[:0]
}
