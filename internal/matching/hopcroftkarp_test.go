package matching

import (
	"math/rand"
	"testing"
)

// bruteMaxCardinality finds the maximum matching size by exhaustive search.
func bruteMaxCardinality(n int, edges []Edge) int {
	usedTo := make(map[int]bool)
	byFrom := make(map[int][]int)
	var froms []int
	seen := map[int]bool{}
	for _, e := range edges {
		if !seen[e.From] {
			seen[e.From] = true
			froms = append(froms, e.From)
		}
		byFrom[e.From] = append(byFrom[e.From], e.To)
	}
	best := 0
	var rec func(i, size int)
	rec = func(i, size int) {
		if size > best {
			best = size
		}
		if i == len(froms) {
			return
		}
		rec(i+1, size)
		for _, v := range byFrom[froms[i]] {
			if !usedTo[v] {
				usedTo[v] = true
				rec(i+1, size+1)
				usedTo[v] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestMaxCardinalityBipartiteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(6)
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					edges = append(edges, Edge{From: i, To: j})
				}
			}
		}
		m := MaxCardinalityBipartite(n, edges)
		want := bruteMaxCardinality(n, edges)
		if len(m) != want {
			t.Fatalf("trial %d: got %d, want %d (edges %v)", trial, len(m), want, edges)
		}
		if !isBipartiteMatching(n, m) {
			t.Fatalf("trial %d: invalid matching %v", trial, m)
		}
		// Every returned edge must exist in the input.
		have := map[[2]int]bool{}
		for _, e := range edges {
			have[[2]int{e.From, e.To}] = true
		}
		for _, e := range m {
			if !have[[2]int{e.From, e.To}] {
				t.Fatalf("trial %d: fabricated edge %v", trial, e)
			}
		}
	}
}

func TestMaxCardinalityPerfect(t *testing.T) {
	// A permutation graph has a perfect matching.
	n := 30
	var edges []Edge
	rng := rand.New(rand.NewSource(19))
	perm := rng.Perm(n)
	for i, j := range perm {
		edges = append(edges, Edge{From: i, To: j})
	}
	if m := MaxCardinalityBipartite(n, edges); len(m) != n {
		t.Fatalf("perfect matching not found: %d of %d", len(m), n)
	}
}

func TestMaxCardinalityEmpty(t *testing.T) {
	if m := MaxCardinalityBipartite(5, nil); m != nil {
		t.Fatalf("empty graph returned %v", m)
	}
	// Out-of-range edges ignored.
	if m := MaxCardinalityBipartite(2, []Edge{{From: 5, To: 0}, {From: -1, To: 1}}); m != nil {
		t.Fatalf("out-of-range edges matched: %v", m)
	}
}
