package matching

// This file implements exact maximum-weight matching in general
// (non-bipartite) graphs: Galil's O(n³) primal-dual blossom algorithm, in
// the formulation popularized by Joris van Rantwijk's reference
// implementation. It upgrades the bidirectional-fabric scheduling of the
// paper's §7 from the greedy 1/2-approximation to the exact matcher the
// paper assumes (Gabow-Tarjan); see DESIGN.md.
//
// Vertices carry dual variables, odd alternating cycles are shrunk into
// blossoms (tracked in a forest of sub-blossoms), and each stage grows
// alternating trees from free vertices, augmenting when two S-trees meet.
// All arithmetic is integral: edge weights are doubled internally so dual
// variables and slacks stay integers.

// MaxWeightGeneral returns an exact maximum-weight matching of a general
// undirected graph over n nodes, together with its total weight. Edges
// with non-positive weight and self-loops are ignored, so the matching may
// leave nodes unmatched.
func MaxWeightGeneral(n int, edges []UEdge) ([]UEdge, int64) {
	filtered := make([]UEdge, 0, len(edges))
	for _, e := range edges {
		if e.Weight > 0 && e.A != e.B && e.A >= 0 && e.A < n && e.B >= 0 && e.B < n {
			// Double weights so slack/2 stays integral.
			filtered = append(filtered, UEdge{A: e.A, B: e.B, Weight: 2 * e.Weight})
		}
	}
	if len(filtered) == 0 {
		return nil, 0
	}
	s := newBlossomSolver(n, filtered)
	s.solve()
	var m []UEdge
	var total int64
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		if seen[v] || s.mate[v] == -1 {
			continue
		}
		w := s.endpoint[s.mate[v]]
		k := s.mate[v] / 2
		seen[v] = true
		seen[w] = true
		wt := s.edges[k].Weight / 2
		m = append(m, UEdge{A: min2(v, w), B: max2(v, w), Weight: wt})
		total += wt
	}
	return m, total
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

const noVertex = -1

type blossomSolver struct {
	nvertex int
	edges   []UEdge // weights doubled

	endpoint  []int   // endpoint[p]: edges[p/2].A if p even else .B
	neighbend [][]int // remote endpoints of edges incident to each vertex

	mate      []int // remote endpoint of v's matched edge, or -1
	label     []int // 0 free, 1 S, 2 T (plus breadcrumb bit 4)
	labelend  []int
	inblossom []int

	blossomparent    []int
	blossomchilds    [][]int
	blossombase      []int
	blossomendps     [][]int
	bestedge         []int
	blossombestedges [][]int
	unusedblossoms   []int

	dualvar   []int64
	allowedge []bool
	queue     []int
}

func newBlossomSolver(n int, edges []UEdge) *blossomSolver {
	s := &blossomSolver{nvertex: n, edges: edges}
	var maxweight int64
	for _, e := range edges {
		if e.Weight > maxweight {
			maxweight = e.Weight
		}
	}
	s.endpoint = make([]int, 2*len(edges))
	s.neighbend = make([][]int, n)
	for k, e := range edges {
		s.endpoint[2*k] = e.A
		s.endpoint[2*k+1] = e.B
		s.neighbend[e.A] = append(s.neighbend[e.A], 2*k+1)
		s.neighbend[e.B] = append(s.neighbend[e.B], 2*k)
	}
	s.mate = make([]int, n)
	s.label = make([]int, 2*n)
	s.labelend = make([]int, 2*n)
	s.inblossom = make([]int, n)
	s.blossomparent = make([]int, 2*n)
	s.blossomchilds = make([][]int, 2*n)
	s.blossombase = make([]int, 2*n)
	s.blossomendps = make([][]int, 2*n)
	s.bestedge = make([]int, 2*n)
	s.blossombestedges = make([][]int, 2*n)
	s.dualvar = make([]int64, 2*n)
	s.allowedge = make([]bool, len(edges))
	for v := 0; v < n; v++ {
		s.mate[v] = -1
		s.inblossom[v] = v
		s.blossombase[v] = v
		s.dualvar[v] = maxweight
	}
	for b := 0; b < 2*n; b++ {
		s.blossomparent[b] = -1
		s.labelend[b] = -1
		s.bestedge[b] = -1
	}
	for b := n; b < 2*n; b++ {
		s.blossombase[b] = -1
		s.unusedblossoms = append(s.unusedblossoms, b)
	}
	return s
}

func (s *blossomSolver) slack(k int) int64 {
	e := s.edges[k]
	return s.dualvar[e.A] + s.dualvar[e.B] - 2*e.Weight
}

func (s *blossomSolver) blossomLeaves(b int, out *[]int) {
	if b < s.nvertex {
		*out = append(*out, b)
		return
	}
	for _, t := range s.blossomchilds[b] {
		s.blossomLeaves(t, out)
	}
}

func (s *blossomSolver) assignLabel(w, t, p int) {
	b := s.inblossom[w]
	s.label[w] = t
	s.label[b] = t
	s.labelend[w] = p
	s.labelend[b] = p
	s.bestedge[w] = -1
	s.bestedge[b] = -1
	if t == 1 {
		s.blossomLeaves(b, &s.queue)
	} else if t == 2 {
		base := s.blossombase[b]
		s.assignLabel(s.endpoint[s.mate[base]], 1, s.mate[base]^1)
	}
}

func (s *blossomSolver) scanBlossom(v, w int) int {
	var path []int
	base := noVertex
	for v != noVertex || w != noVertex {
		b := s.inblossom[v]
		if s.label[b]&4 != 0 {
			base = s.blossombase[b]
			break
		}
		path = append(path, b)
		s.label[b] = 5
		if s.labelend[b] == -1 {
			v = noVertex
		} else {
			v = s.endpoint[s.labelend[b]]
			b = s.inblossom[v]
			v = s.endpoint[s.labelend[b]]
		}
		if w != noVertex {
			v, w = w, v
		}
	}
	for _, b := range path {
		s.label[b] = 1
	}
	return base
}

func (s *blossomSolver) addBlossom(base, k int) {
	v, w := s.edges[k].A, s.edges[k].B
	bb := s.inblossom[base]
	bv := s.inblossom[v]
	bw := s.inblossom[w]
	b := s.unusedblossoms[len(s.unusedblossoms)-1]
	s.unusedblossoms = s.unusedblossoms[:len(s.unusedblossoms)-1]
	s.blossombase[b] = base
	s.blossomparent[b] = -1
	s.blossomparent[bb] = b
	var path, endps []int
	for bv != bb {
		s.blossomparent[bv] = b
		path = append(path, bv)
		endps = append(endps, s.labelend[bv])
		v = s.endpoint[s.labelend[bv]]
		bv = s.inblossom[v]
	}
	path = append(path, bb)
	reverseInts(path)
	reverseInts(endps)
	endps = append(endps, 2*k)
	for bw != bb {
		s.blossomparent[bw] = b
		path = append(path, bw)
		endps = append(endps, s.labelend[bw]^1)
		w = s.endpoint[s.labelend[bw]]
		bw = s.inblossom[w]
	}
	s.blossomchilds[b] = path
	s.blossomendps[b] = endps
	s.label[b] = 1
	s.labelend[b] = s.labelend[bb]
	s.dualvar[b] = 0
	var leaves []int
	s.blossomLeaves(b, &leaves)
	for _, vtx := range leaves {
		if s.label[s.inblossom[vtx]] == 2 {
			s.queue = append(s.queue, vtx)
		}
		s.inblossom[vtx] = b
	}
	bestedgeto := make([]int, 2*s.nvertex)
	for i := range bestedgeto {
		bestedgeto[i] = -1
	}
	for _, child := range path {
		var nblists [][]int
		if s.blossombestedges[child] == nil {
			var leaves2 []int
			s.blossomLeaves(child, &leaves2)
			for _, vtx := range leaves2 {
				lst := make([]int, 0, len(s.neighbend[vtx]))
				for _, p := range s.neighbend[vtx] {
					lst = append(lst, p/2)
				}
				nblists = append(nblists, lst)
			}
		} else {
			nblists = [][]int{s.blossombestedges[child]}
		}
		for _, nblist := range nblists {
			for _, kk := range nblist {
				j := s.edges[kk].B
				if s.inblossom[j] == b {
					j = s.edges[kk].A
				}
				bj := s.inblossom[j]
				if bj != b && s.label[bj] == 1 &&
					(bestedgeto[bj] == -1 || s.slack(kk) < s.slack(bestedgeto[bj])) {
					bestedgeto[bj] = kk
				}
			}
		}
		s.blossombestedges[child] = nil
		s.bestedge[child] = -1
	}
	be := make([]int, 0, len(bestedgeto))
	for _, kk := range bestedgeto {
		if kk != -1 {
			be = append(be, kk)
		}
	}
	s.blossombestedges[b] = be
	s.bestedge[b] = -1
	for _, kk := range be {
		if s.bestedge[b] == -1 || s.slack(kk) < s.slack(s.bestedge[b]) {
			s.bestedge[b] = kk
		}
	}
}

func (s *blossomSolver) expandBlossom(b int, endstage bool) {
	for _, bc := range s.blossomchilds[b] {
		s.blossomparent[bc] = -1
		if bc < s.nvertex {
			s.inblossom[bc] = bc
		} else if endstage && s.dualvar[bc] == 0 {
			s.expandBlossom(bc, endstage)
		} else {
			var leaves []int
			s.blossomLeaves(bc, &leaves)
			for _, vtx := range leaves {
				s.inblossom[vtx] = bc
			}
		}
	}
	if !endstage && s.label[b] == 2 {
		entrychild := s.inblossom[s.endpoint[s.labelend[b]^1]]
		j := 0
		for i, bc := range s.blossomchilds[b] {
			if bc == entrychild {
				j = i
				break
			}
		}
		nch := len(s.blossomchilds[b])
		var jstep, endptrick int
		if j&1 != 0 {
			j -= nch
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		p := s.labelend[b]
		for j != 0 {
			s.label[s.endpoint[p^1]] = 0
			idx := mod(j-endptrick, nch)
			s.label[s.endpoint[s.blossomendps[b][idx]^endptrick^1]] = 0
			s.assignLabel(s.endpoint[p^1], 2, p)
			s.allowedge[s.blossomendps[b][idx]/2] = true
			j += jstep
			idx = mod(j-endptrick, nch)
			p = s.blossomendps[b][idx] ^ endptrick
			s.allowedge[p/2] = true
			j += jstep
		}
		bv := s.blossomchilds[b][mod(j, nch)]
		s.label[s.endpoint[p^1]] = 2
		s.label[bv] = 2
		s.labelend[s.endpoint[p^1]] = p
		s.labelend[bv] = p
		s.bestedge[bv] = -1
		j += jstep
		for s.blossomchilds[b][mod(j, nch)] != entrychild {
			bv = s.blossomchilds[b][mod(j, nch)]
			if s.label[bv] == 1 {
				j += jstep
				continue
			}
			var leaves []int
			s.blossomLeaves(bv, &leaves)
			vtx := noVertex
			for _, lv := range leaves {
				if s.label[lv] != 0 {
					vtx = lv
					break
				}
			}
			if vtx != noVertex {
				s.label[vtx] = 0
				s.label[s.endpoint[s.mate[s.blossombase[bv]]]] = 0
				s.assignLabel(vtx, 2, s.labelend[vtx])
			}
			j += jstep
		}
	}
	s.label[b] = -1
	s.labelend[b] = -1
	s.blossomchilds[b] = nil
	s.blossomendps[b] = nil
	s.blossombase[b] = -1
	s.blossombestedges[b] = nil
	s.bestedge[b] = -1
	s.unusedblossoms = append(s.unusedblossoms, b)
}

func (s *blossomSolver) augmentBlossom(b, v int) {
	t := v
	for s.blossomparent[t] != b {
		t = s.blossomparent[t]
	}
	if t >= s.nvertex {
		s.augmentBlossom(t, v)
	}
	nch := len(s.blossomchilds[b])
	i := 0
	for idx, bc := range s.blossomchilds[b] {
		if bc == t {
			i = idx
			break
		}
	}
	j := i
	var jstep, endptrick int
	if i&1 != 0 {
		j -= nch
		jstep = 1
		endptrick = 0
	} else {
		jstep = -1
		endptrick = 1
	}
	for j != 0 {
		j += jstep
		t = s.blossomchilds[b][mod(j, nch)]
		p := s.blossomendps[b][mod(j-endptrick, nch)] ^ endptrick
		if t >= s.nvertex {
			s.augmentBlossom(t, s.endpoint[p])
		}
		j += jstep
		t = s.blossomchilds[b][mod(j, nch)]
		if t >= s.nvertex {
			s.augmentBlossom(t, s.endpoint[p^1])
		}
		s.mate[s.endpoint[p]] = p ^ 1
		s.mate[s.endpoint[p^1]] = p
	}
	rotated := make([]int, 0, nch)
	rotated = append(rotated, s.blossomchilds[b][i:]...)
	rotated = append(rotated, s.blossomchilds[b][:i]...)
	s.blossomchilds[b] = rotated
	rotatedE := make([]int, 0, nch)
	rotatedE = append(rotatedE, s.blossomendps[b][i:]...)
	rotatedE = append(rotatedE, s.blossomendps[b][:i]...)
	s.blossomendps[b] = rotatedE
	s.blossombase[b] = s.blossombase[s.blossomchilds[b][0]]
}

func (s *blossomSolver) augmentMatching(k int) {
	v, w := s.edges[k].A, s.edges[k].B
	for _, sp := range [2][2]int{{v, 2*k + 1}, {w, 2 * k}} {
		vtx, p := sp[0], sp[1]
		for {
			bs := s.inblossom[vtx]
			if bs >= s.nvertex {
				s.augmentBlossom(bs, vtx)
			}
			s.mate[vtx] = p
			if s.labelend[bs] == -1 {
				break // reached a single (free) vertex
			}
			t := s.endpoint[s.labelend[bs]]
			bt := s.inblossom[t]
			vtx = s.endpoint[s.labelend[bt]]
			j := s.endpoint[s.labelend[bt]^1]
			if bt >= s.nvertex {
				s.augmentBlossom(bt, j)
			}
			s.mate[j] = s.labelend[bt]
			p = s.labelend[bt] ^ 1
		}
	}
}

// solve runs the main stages.
func (s *blossomSolver) solve() {
	n := s.nvertex
	for stage := 0; stage < n; stage++ {
		for i := range s.label {
			s.label[i] = 0
		}
		for i := range s.bestedge {
			s.bestedge[i] = -1
		}
		for b := n; b < 2*n; b++ {
			s.blossombestedges[b] = nil
		}
		for i := range s.allowedge {
			s.allowedge[i] = false
		}
		s.queue = s.queue[:0]
		for v := 0; v < n; v++ {
			if s.mate[v] == -1 && s.label[s.inblossom[v]] == 0 {
				s.assignLabel(v, 1, -1)
			}
		}
		augmented := false
		for {
			for len(s.queue) > 0 && !augmented {
				v := s.queue[len(s.queue)-1]
				s.queue = s.queue[:len(s.queue)-1]
				for _, p := range s.neighbend[v] {
					k := p / 2
					w := s.endpoint[p]
					if s.inblossom[v] == s.inblossom[w] {
						continue
					}
					var kslack int64
					if !s.allowedge[k] {
						kslack = s.slack(k)
						if kslack <= 0 {
							s.allowedge[k] = true
						}
					}
					if s.allowedge[k] {
						switch {
						case s.label[s.inblossom[w]] == 0:
							s.assignLabel(w, 2, p^1)
						case s.label[s.inblossom[w]] == 1:
							base := s.scanBlossom(v, w)
							if base >= 0 {
								s.addBlossom(base, k)
							} else {
								s.augmentMatching(k)
								augmented = true
							}
						case s.label[w] == 0:
							s.label[w] = 2
							s.labelend[w] = p ^ 1
						}
						if augmented {
							break
						}
					} else if s.label[s.inblossom[w]] == 1 {
						b := s.inblossom[v]
						if s.bestedge[b] == -1 || kslack < s.slack(s.bestedge[b]) {
							s.bestedge[b] = k
						}
					} else if s.label[w] == 0 {
						if s.bestedge[w] == -1 || kslack < s.slack(s.bestedge[w]) {
							s.bestedge[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// Compute the dual adjustment delta.
			deltatype := -1
			var delta int64
			deltaedge := -1
			deltablossom := -1
			// delta1: minimum vertex dual (we compute a maximum-weight,
			// not maximum-cardinality, matching).
			deltatype = 1
			delta = s.dualvar[0]
			for v := 1; v < n; v++ {
				if s.dualvar[v] < delta {
					delta = s.dualvar[v]
				}
			}
			// delta2: minimum slack of an edge from an S-vertex to a free
			// vertex.
			for v := 0; v < n; v++ {
				if s.label[s.inblossom[v]] == 0 && s.bestedge[v] != -1 {
					if d := s.slack(s.bestedge[v]); d < delta {
						delta = d
						deltatype = 2
						deltaedge = s.bestedge[v]
					}
				}
			}
			// delta3: half the minimum slack of an edge between S-blossoms.
			for b := 0; b < 2*n; b++ {
				if s.blossomparent[b] == -1 && s.label[b] == 1 && s.bestedge[b] != -1 {
					if d := s.slack(s.bestedge[b]) / 2; d < delta {
						delta = d
						deltatype = 3
						deltaedge = s.bestedge[b]
					}
				}
			}
			// delta4: minimum dual of a top-level T-blossom.
			for b := n; b < 2*n; b++ {
				if s.blossombase[b] >= 0 && s.blossomparent[b] == -1 && s.label[b] == 2 {
					if s.dualvar[b] < delta {
						delta = s.dualvar[b]
						deltatype = 4
						deltablossom = b
					}
				}
			}
			// Apply delta to the duals.
			for v := 0; v < n; v++ {
				switch s.label[s.inblossom[v]] {
				case 1:
					s.dualvar[v] -= delta
				case 2:
					s.dualvar[v] += delta
				}
			}
			for b := n; b < 2*n; b++ {
				if s.blossombase[b] >= 0 && s.blossomparent[b] == -1 {
					switch s.label[b] {
					case 1:
						s.dualvar[b] += delta
					case 2:
						s.dualvar[b] -= delta
					}
				}
			}
			switch deltatype {
			case 1:
				// Optimum reached.
				goto endStage
			case 2:
				s.allowedge[deltaedge] = true
				i := s.edges[deltaedge].A
				if s.label[s.inblossom[i]] == 0 {
					i = s.edges[deltaedge].B
				}
				s.queue = append(s.queue, i)
			case 3:
				s.allowedge[deltaedge] = true
				s.queue = append(s.queue, s.edges[deltaedge].A)
			case 4:
				s.expandBlossom(deltablossom, false)
			}
		}
	endStage:
		if !augmented {
			break
		}
		// End of stage: expand all S-blossoms with zero dual.
		for b := n; b < 2*n; b++ {
			if s.blossomparent[b] == -1 && s.blossombase[b] >= 0 &&
				s.label[b] == 1 && s.dualvar[b] == 0 {
				s.expandBlossom(b, true)
			}
		}
	}
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
