// Package matching provides the weighted-matching substrates used by the
// Octopus scheduler: an exact maximum-weight bipartite matcher (replacing
// the Google OR-Tools linear-assignment solver used by the paper), the
// linear-time greedy 2-approximate matcher that powers Octopus-G, and
// matchers for general (non-bipartite) graphs used by the bidirectional
// network model of the paper's §7.
//
// Weights are non-negative int64 values; the core package encodes the
// paper's fractional packet weights exactly as scaled integers. All matchers
// return only edges with strictly positive weight, so the returned edge set
// is always a valid configuration matching of the underlying fabric.
package matching

// Edge is a weighted directed candidate link in a bipartite graph between
// output ports (From) and input ports (To).
type Edge struct {
	From, To int
	Weight   int64
}

// UEdge is a weighted undirected candidate link in a general graph.
type UEdge struct {
	A, B   int
	Weight int64
}

// Weight sums the weights of a set of edges.
func Weight(edges []Edge) int64 {
	var w int64
	for _, e := range edges {
		w += e.Weight
	}
	return w
}

// UWeight sums the weights of a set of undirected edges.
func UWeight(edges []UEdge) int64 {
	var w int64
	for _, e := range edges {
		w += e.Weight
	}
	return w
}

// GreedyBipartite returns a greedy maximal matching built by repeatedly
// taking the heaviest remaining edge whose endpoints are both free. It is a
// classic 1/2-approximation of the maximum-weight matching [Avis '83] and is
// the matcher behind the Octopus-G variant (paper §8, "Execution Time").
// Edges with non-positive weight are ignored. Runs in O(E) plus the radix
// sort of the edge weights. Hot-path callers should prefer Arena.
// GreedyBipartite, which recycles the working buffers across calls.
func GreedyBipartite(n int, edges []Edge) ([]Edge, int64) {
	var a Arena
	return a.GreedyBipartite(n, edges)
}

// radixSortEdges sorts edges by weight descending using a stable LSD radix
// sort on the (non-negative) weights, 11 bits per pass. Because the sort is
// stable, callers that pass edges in (From, To) order get deterministic
// tie-breaking. This is the "incredibly simple" linear-time path the paper
// highlights for integer weights bounded by W. buf is caller-owned ping-pong
// storage with len(buf) == len(edges); its final contents are unspecified.
func radixSortEdges(edges, buf []Edge) {
	const bits = 11
	const buckets = 1 << bits
	const mask = buckets - 1
	if len(edges) < 2 {
		return
	}
	var maxW int64
	for _, e := range edges {
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	src, dst := edges, buf
	var count [buckets]int
	for shift := uint(0); maxW>>shift > 0; shift += bits {
		for i := range count {
			count[i] = 0
		}
		for _, e := range src {
			count[(e.Weight>>shift)&mask]++
		}
		// Descending order: bucket for the largest key first.
		sum := 0
		for b := buckets - 1; b >= 0; b-- {
			c := count[b]
			count[b] = sum
			sum += c
		}
		for _, e := range src {
			b := (e.Weight >> shift) & mask
			dst[count[b]] = e
			count[b]++
		}
		src, dst = dst, src
	}
	// Stability makes each pass preserve the order established by less
	// significant digits, so running every pass with descending buckets
	// yields a descending sort overall.
	if &src[0] != &edges[0] {
		copy(edges, src)
	}
}
