package matching

// Arena is reusable scratch for the bipartite matchers. The Octopus greedy
// loop solves thousands of matchings per run; with a per-worker Arena the
// dense matrix, potentials, radix-sort buffer, and result slices are
// allocated once and recycled, so the per-α matchings stop churning the
// garbage collector.
//
// An Arena is not safe for concurrent use, and the edge slice returned by
// its matcher methods aliases arena storage: it is valid only until the
// next call on the same Arena. The package-level MaxWeightBipartite and
// GreedyBipartite wrappers use a private Arena per call and therefore keep
// their original allocate-fresh semantics.
//
// The zero Arena is ready to use.
type Arena struct {
	// Stats accumulates matcher activity across calls. The arena is
	// single-goroutine, so plain fields suffice; callers that share work
	// across arenas (core's per-worker scratch) sum the structs afterwards.
	Stats Stats

	// Greedy matcher state.
	pos      []Edge // positive-weight working copy of the input
	radixBuf []Edge // ping-pong buffer for the radix sort
	usedFrom []bool // per-node matched marks; all-false between calls
	usedTo   []bool
	outG     []Edge // greedy result backing

	// Exact matcher state shared by the dense and sparse paths.
	rowID, colID []int // node -> compact index; -1 between calls
	rows, cols   []int // compact index -> node
	w            []int64
	u, v, minv   []int64
	p, way       []int
	free, path   []int  // unused columns (ascending) / alternating-path columns
	outX         []Edge // exact result backing

	// Sparse (CSR) exact matcher state; see sparse.go.
	csrOff, csrCur []int   // row offsets / fill cursors, 0-indexed rows
	csrCol         []int   // compact 1-indexed column per positive edge
	csrW           []int64 // weight per positive edge
	touched        []int   // columns with an exact minv this row
	retJ           []int   // columns retired this row (negv repair list)
	negKey         []int64 // free-column generator: -v, sorted (key, col) asc
	negCol         []int
	negBufK        []int64 // merge ping-pong for the generator
	negBufC        []int
	newKey         []int64 // sorted re-insertions during generator repair
	newCol         []int
	touchTick      []int64 // column stamps: touched / retired this row,
	retireTick     []int64 // adjacent to the current relaxation event
	adjTick        []int64
	rowEpoch       int64 // monotone stamp sources (0 never matches)
	eventEpoch     int64

	// Warm-start exact matcher state; see warm.go.
	warmDirty []bool // compact 1-indexed rows to (re)insert
}

// Stats counts arena matcher activity. All fields are monotone totals
// over the arena's lifetime. This package stays dependency-free:
// consumers translate these counts into whatever metrics system they use.
type Stats struct {
	GreedyCalls    int64 // GreedyBipartite invocations
	GreedyEdges    int64 // positive-weight edges considered by greedy calls
	GreedyMatched  int64 // edges emitted by greedy calls
	ExactCalls     int64 // exact-matcher invocations (dense, sparse, or warm)
	ExactRows      int64 // compacted rows solved across exact calls
	AugmentRounds  int64 // shortest-augmenting-path relaxation rounds
	DenseSolves    int64 // exact calls dispatched to the dense matrix path
	SparseSolves   int64 // exact calls dispatched to the sparse CSR path
	WarmCalls      int64 // MaxWeightBipartiteWarm invocations
	WarmHits       int64 // warm calls that reused retained dual potentials
	WarmMisses     int64 // warm calls that had to solve cold
	WarmRowsReused int64 // rows whose assignment and duals were kept verbatim
	Grows          int64 // calls that grew arena storage
	Reuses         int64 // calls served entirely from existing storage
}

// AddTo accumulates s into dst field by field.
func (s Stats) AddTo(dst *Stats) {
	dst.GreedyCalls += s.GreedyCalls
	dst.GreedyEdges += s.GreedyEdges
	dst.GreedyMatched += s.GreedyMatched
	dst.ExactCalls += s.ExactCalls
	dst.ExactRows += s.ExactRows
	dst.AugmentRounds += s.AugmentRounds
	dst.DenseSolves += s.DenseSolves
	dst.SparseSolves += s.SparseSolves
	dst.WarmCalls += s.WarmCalls
	dst.WarmHits += s.WarmHits
	dst.WarmMisses += s.WarmMisses
	dst.WarmRowsReused += s.WarmRowsReused
	dst.Grows += s.Grows
	dst.Reuses += s.Reuses
}

// greedyCap sums the capacities of the greedy-side buffers; comparing it
// before and after a call detects whether the call had to grow storage.
func (a *Arena) greedyCap() int {
	return cap(a.pos) + cap(a.radixBuf) + cap(a.usedFrom) + cap(a.usedTo) + cap(a.outG)
}

// exactDone closes out one exact call's grow/reuse accounting.
func (a *Arena) exactDone(capBefore int) {
	if a.exactCap() > capBefore {
		a.Stats.Grows++
	} else {
		a.Stats.Reuses++
	}
}

// exactCap is greedyCap for the exact-matcher buffers.
func (a *Arena) exactCap() int {
	return cap(a.rowID) + cap(a.colID) + cap(a.rows) + cap(a.cols) +
		cap(a.w) + cap(a.u) + cap(a.v) + cap(a.minv) +
		cap(a.p) + cap(a.way) + cap(a.free) + cap(a.path) + cap(a.outX) +
		cap(a.csrOff) + cap(a.csrCur) + cap(a.csrCol) + cap(a.csrW) +
		cap(a.touched) + cap(a.retJ) +
		cap(a.negKey) + cap(a.negCol) + cap(a.negBufK) + cap(a.negBufC) +
		cap(a.newKey) + cap(a.newCol) +
		cap(a.touchTick) + cap(a.retireTick) + cap(a.adjTick) +
		cap(a.warmDirty)
}

// growBools returns b extended to length >= n; fresh cells are false.
func growBools(b []bool, n int) []bool {
	if len(b) < n {
		b = append(b, make([]bool, n-len(b))...)
	}
	return b
}

// growIDs returns ids extended to length >= n; fresh cells are -1.
func growIDs(ids []int, n int) []int {
	for len(ids) < n {
		ids = append(ids, -1)
	}
	return ids
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		s = make([]int, n)
	}
	return s[:n]
}

func growInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		s = make([]int64, n)
	}
	return s[:n]
}

// GreedyBipartite is the arena-backed variant of the package-level
// GreedyBipartite; see its documentation. The returned slice is valid
// until the next call on the arena.
func (a *Arena) GreedyBipartite(n int, edges []Edge) ([]Edge, int64) {
	capBefore := a.greedyCap()
	pos := a.pos[:0]
	for _, e := range edges {
		if e.Weight > 0 {
			pos = append(pos, e)
		}
	}
	a.pos = pos
	if cap(a.radixBuf) < len(pos) {
		a.radixBuf = make([]Edge, len(pos))
	}
	radixSortEdges(pos, a.radixBuf[:len(pos)])
	a.usedFrom = growBools(a.usedFrom, n)
	a.usedTo = growBools(a.usedTo, n)
	usedFrom, usedTo := a.usedFrom, a.usedTo
	m := a.outG[:0]
	var total int64
	for _, e := range pos {
		if usedFrom[e.From] || usedTo[e.To] {
			continue
		}
		usedFrom[e.From] = true
		usedTo[e.To] = true
		m = append(m, e)
		total += e.Weight
	}
	a.outG = m
	// Restore the all-false invariant: only matched endpoints were set.
	for _, e := range m {
		usedFrom[e.From] = false
		usedTo[e.To] = false
	}
	a.Stats.GreedyCalls++
	a.Stats.GreedyEdges += int64(len(pos))
	a.Stats.GreedyMatched += int64(len(m))
	if a.greedyCap() > capBefore {
		a.Stats.Grows++
	} else {
		a.Stats.Reuses++
	}
	if len(m) == 0 {
		return nil, 0
	}
	return m, total
}

// exactMode selects the exact solver implementation.
type exactMode int

const (
	modeAuto exactMode = iota
	modeDense
	modeSparse
)

// Sparse dispatch rule: the CSR path is selected automatically when the
// instance has at least sparseMinRows compacted rows and its positive-edge
// density is at most 1/sparseDensityDen. Both paths produce bit-identical
// matchings (sparse.go proves the emulation), so the threshold is purely a
// performance knob, tuned with BenchmarkExactDenseVsSparse: on random
// instances the sparse path only beats the dense scan below roughly 2%
// density (long augmenting paths degrade most sparse rows to dense-style
// scans well above that), and on the full-contention simulation workload
// the dense path wins at every measured scale up to n=512. Denser
// instances than the threshold can still force the CSR path explicitly
// via MaxWeightBipartiteSparse (matcher=sparse) for A/B runs.
const (
	sparseMinRows    = 64
	sparseDensityDen = 64
)

// MaxWeightBipartite is the arena-backed variant of the package-level
// MaxWeightBipartite; see its documentation. It dispatches automatically
// between the dense-matrix and sparse-CSR solvers by positive-edge density;
// the two are bit-identical, including tie-breaks. The returned slice is
// valid until the next call on the arena.
func (a *Arena) MaxWeightBipartite(n int, edges []Edge) ([]Edge, int64) {
	return a.maxWeightExact(n, edges, modeAuto)
}

// MaxWeightBipartiteDense forces the dense-matrix solver path. Intended for
// A/B comparison and differential testing; results are identical to
// MaxWeightBipartite.
func (a *Arena) MaxWeightBipartiteDense(n int, edges []Edge) ([]Edge, int64) {
	return a.maxWeightExact(n, edges, modeDense)
}

// MaxWeightBipartiteSparse forces the sparse-CSR solver path. Intended for
// A/B comparison and differential testing; results are identical to
// MaxWeightBipartite.
func (a *Arena) MaxWeightBipartiteSparse(n int, edges []Edge) ([]Edge, int64) {
	return a.maxWeightExact(n, edges, modeSparse)
}

// compactExact maps the active nodes of the positive-weight edges to dense
// indices in first-appearance order, filling rowID/colID/rows/cols. It
// returns the compacted row/column counts and the positive-edge count. The
// caller must invoke restoreIDMaps before returning.
func (a *Arena) compactExact(n int, edges []Edge) (nr, nc, m int) {
	a.rowID = growIDs(a.rowID, n)
	a.colID = growIDs(a.colID, n)
	rowID, colID := a.rowID, a.colID
	rows, cols := a.rows[:0], a.cols[:0]
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		m++
		if rowID[e.From] < 0 {
			rowID[e.From] = len(rows)
			rows = append(rows, e.From)
		}
		if colID[e.To] < 0 {
			colID[e.To] = len(cols)
			cols = append(cols, e.To)
		}
	}
	a.rows, a.cols = rows, cols
	return len(rows), len(cols), m
}

// restoreIDMaps resets the node-index maps to -1 for the next call.
func (a *Arena) restoreIDMaps() {
	for _, r := range a.rows {
		a.rowID[r] = -1
	}
	for _, c := range a.cols {
		a.colID[c] = -1
	}
}

func (a *Arena) maxWeightExact(n int, edges []Edge, mode exactMode) ([]Edge, int64) {
	capBefore := a.exactCap()
	a.Stats.ExactCalls++
	nr, nc, m := a.compactExact(n, edges)
	if nr == 0 {
		a.restoreIDMaps()
		a.exactDone(capBefore)
		return nil, 0
	}
	a.Stats.ExactRows += int64(nr)
	// The shortest-augmenting-path formulation needs nr <= nc. Pad columns
	// with dummies of weight 0 if necessary.
	if nc < nr {
		nc = nr
	}
	sparse := mode == modeSparse ||
		(mode == modeAuto && nr >= sparseMinRows && m*sparseDensityDen <= nr*nc)
	if sparse {
		a.Stats.SparseSolves++
		a.Stats.AugmentRounds += a.solveSparse(edges, nr, nc)
	} else {
		a.Stats.DenseSolves++
		a.prepDense(edges, nr, nc)
		var rounds int64
		for i := 1; i <= nr; i++ {
			rounds += a.denseInsertRow(i, nc)
		}
		a.Stats.AugmentRounds += rounds
	}
	a.restoreIDMaps()
	out, total := a.extractExact(nc, sparse)
	a.exactDone(capBefore)
	return out, total
}

// prepDense builds the dense weight matrix over the compacted instance and
// initializes the dual potentials and assignment arrays. Absent pairs have
// weight 0, equivalent to leaving the row unmatched; duplicate edges keep
// the max.
//
// Zero duals are the only admissible start: the Jonker-Volgenant column
// reduction (v[j] = min_i cost(i, j)) was tried and rejected. It is
// correct only on square compacted instances (a pre-reduced column that
// ends unmatched strands v < 0, which complementary slackness forbids,
// yielding a suboptimal assignment), it changes which equal-weight optimum
// the tie-breaks select (drifting pinned ψ trajectories), and measured on
// the full-scale workload it cut augment rounds by only ~21% with no
// wall-clock gain — full-contention instances keep long augmenting paths
// regardless of the start. See DESIGN.md §13.
func (a *Arena) prepDense(edges []Edge, nr, nc int) {
	a.w = growInt64s(a.w, nr*nc)
	w := a.w
	for i := range w[:nr*nc] {
		w[i] = 0
	}
	rowID, colID := a.rowID, a.colID
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		i, j := rowID[e.From], colID[e.To]
		if e.Weight > w[i*nc+j] {
			w[i*nc+j] = e.Weight
		}
	}
	a.prepDuals(nc)
}

// prepDuals zeroes the 1-indexed dual/assignment arrays shared by every
// exact path. p[j] is the row assigned to column j; minimization runs over
// cost = -weight.
func (a *Arena) prepDuals(nc int) {
	a.u = growInt64s(a.u, nc+1)
	a.v = growInt64s(a.v, nc+1)
	a.p = growInts(a.p, nc+1)
	a.way = growInts(a.way, nc+1)
	a.minv = growInt64s(a.minv, nc+1)
	a.free = growInts(a.free, nc)
	a.path = growInts(a.path, nc+1)
	for i := range a.u {
		a.u[i] = 0
	}
	for j := range a.v {
		a.v[j] = 0
		a.p[j] = 0
		a.way[j] = 0
	}
}

// denseInsertRow runs one shortest-augmenting-path row insertion on the
// dense matrix and returns the relaxation-round count. Two representation
// tricks keep every comparison (and hence every tie-break and the final
// assignment) bit-identical to the textbook form:
//
//  1. The unused columns live in `free`, kept in ascending order, so the
//     scan visits exactly the columns the textbook loop would, in the
//     same order, without a used[] branch.
//  2. Instead of decrementing minv[j] for every unused column after each
//     round ("minv[j] -= delta"), we accumulate the total delta D and
//     store minv normalized to the start of the row: a value written at
//     time t is stored as cur+D_t, and its textbook value now is
//     stored-D. All comparisons within a round shift both sides by the
//     same D, so their outcomes are unchanged, and the O(nc) decrement
//     sweep disappears. (Values are bounded far below inf, so the offset
//     cannot overflow.)
func (a *Arena) denseInsertRow(i, nc int) int64 {
	u, v, p, way, minv, w := a.u, a.v, a.p, a.way, a.minv, a.w
	p[0] = i
	j0 := 0
	free := a.free[:0]
	for j := 1; j <= nc; j++ {
		free = append(free, j)
		minv[j] = inf
	}
	path := a.path[:0]
	var d int64 = 0 // cumulative delta this row
	var rounds int64
	k1 := -1 // position of j0 in free (the previous round's argmin index)
	for {
		rounds++
		if j0 != 0 {
			// Retire j0 from the free list, preserving order. Its position
			// is the argmin index recorded by the previous round's scan.
			free = append(free[:k1], free[k1+1:]...)
		}
		path = append(path, j0)
		i0 := p[j0]
		deltaN := int64(inf) // normalized: delta + d
		j1 := 0
		wrow := w[(i0-1)*nc : i0*nc]
		ui0 := u[i0]
		for k, j := range free {
			cur := -wrow[j-1] - ui0 - v[j] + d
			mv := minv[j]
			if cur < mv {
				mv = cur
				minv[j] = cur
				way[j] = j0
			}
			if mv < deltaN {
				deltaN = mv
				j1 = j
				k1 = k
			}
		}
		delta := deltaN - d
		for _, j := range path {
			u[p[j]] += delta
			v[j] -= delta
		}
		d = deltaN
		j0 = j1
		if p[j0] == 0 {
			break
		}
	}
	for j0 != 0 {
		j1 := way[j0]
		p[j0] = p[j1]
		j0 = j1
	}
	return rounds
}

// extractExact reads the assignment out of p, translating compact indices
// back to node ids and dropping zero-weight (padding or absent) pairs.
func (a *Arena) extractExact(nc int, sparse bool) ([]Edge, int64) {
	m := a.outX[:0]
	var total int64
	for j := 1; j <= len(a.cols); j++ {
		i := a.p[j]
		if i == 0 {
			continue
		}
		var wt int64
		if sparse {
			wt = a.csrWeight(i, j)
		} else {
			wt = a.w[(i-1)*nc+(j-1)]
		}
		if wt > 0 {
			m = append(m, Edge{From: a.rows[i-1], To: a.cols[j-1], Weight: wt})
			total += wt
		}
	}
	a.outX = m
	if len(m) == 0 {
		return nil, 0
	}
	return m, total
}
