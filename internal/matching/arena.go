package matching

// Arena is reusable scratch for the bipartite matchers. The Octopus greedy
// loop solves thousands of matchings per run; with a per-worker Arena the
// dense matrix, potentials, radix-sort buffer, and result slices are
// allocated once and recycled, so the per-α matchings stop churning the
// garbage collector.
//
// An Arena is not safe for concurrent use, and the edge slice returned by
// its matcher methods aliases arena storage: it is valid only until the
// next call on the same Arena. The package-level MaxWeightBipartite and
// GreedyBipartite wrappers use a private Arena per call and therefore keep
// their original allocate-fresh semantics.
//
// The zero Arena is ready to use.
type Arena struct {
	// Stats accumulates matcher activity across calls. The arena is
	// single-goroutine, so plain fields suffice; callers that share work
	// across arenas (core's per-worker scratch) sum the structs afterwards.
	Stats Stats

	// Greedy matcher state.
	pos      []Edge // positive-weight working copy of the input
	radixBuf []Edge // ping-pong buffer for the radix sort
	usedFrom []bool // per-node matched marks; all-false between calls
	usedTo   []bool
	outG     []Edge // greedy result backing

	// Hungarian matcher state.
	rowID, colID []int // node -> compact index; -1 between calls
	rows, cols   []int // compact index -> node
	w            []int64
	u, v, minv   []int64
	p, way       []int
	free, path   []int  // unused columns (ascending) / alternating-path columns
	outX         []Edge // exact result backing
}

// Stats counts arena matcher activity. All fields are monotone totals
// over the arena's lifetime. This package stays dependency-free:
// consumers translate these counts into whatever metrics system they use.
type Stats struct {
	GreedyCalls   int64 // GreedyBipartite invocations
	GreedyEdges   int64 // positive-weight edges considered by greedy calls
	GreedyMatched int64 // edges emitted by greedy calls
	ExactCalls    int64 // MaxWeightBipartite invocations
	ExactRows     int64 // compacted rows solved across exact calls
	AugmentRounds int64 // shortest-augmenting-path relaxation rounds
	Grows         int64 // calls that grew arena storage
	Reuses        int64 // calls served entirely from existing storage
}

// AddTo accumulates s into dst field by field.
func (s Stats) AddTo(dst *Stats) {
	dst.GreedyCalls += s.GreedyCalls
	dst.GreedyEdges += s.GreedyEdges
	dst.GreedyMatched += s.GreedyMatched
	dst.ExactCalls += s.ExactCalls
	dst.ExactRows += s.ExactRows
	dst.AugmentRounds += s.AugmentRounds
	dst.Grows += s.Grows
	dst.Reuses += s.Reuses
}

// greedyCap sums the capacities of the greedy-side buffers; comparing it
// before and after a call detects whether the call had to grow storage.
func (a *Arena) greedyCap() int {
	return cap(a.pos) + cap(a.radixBuf) + cap(a.usedFrom) + cap(a.usedTo) + cap(a.outG)
}

// exactDone closes out one exact call's grow/reuse accounting.
func (a *Arena) exactDone(capBefore int) {
	if a.exactCap() > capBefore {
		a.Stats.Grows++
	} else {
		a.Stats.Reuses++
	}
}

// exactCap is greedyCap for the Hungarian-side buffers.
func (a *Arena) exactCap() int {
	return cap(a.rowID) + cap(a.colID) + cap(a.rows) + cap(a.cols) +
		cap(a.w) + cap(a.u) + cap(a.v) + cap(a.minv) +
		cap(a.p) + cap(a.way) + cap(a.free) + cap(a.path) + cap(a.outX)
}

// growBools returns b extended to length >= n; fresh cells are false.
func growBools(b []bool, n int) []bool {
	if len(b) < n {
		b = append(b, make([]bool, n-len(b))...)
	}
	return b
}

// growIDs returns ids extended to length >= n; fresh cells are -1.
func growIDs(ids []int, n int) []int {
	for len(ids) < n {
		ids = append(ids, -1)
	}
	return ids
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		s = make([]int, n)
	}
	return s[:n]
}

func growInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		s = make([]int64, n)
	}
	return s[:n]
}

// GreedyBipartite is the arena-backed variant of the package-level
// GreedyBipartite; see its documentation. The returned slice is valid
// until the next call on the arena.
func (a *Arena) GreedyBipartite(n int, edges []Edge) ([]Edge, int64) {
	capBefore := a.greedyCap()
	pos := a.pos[:0]
	for _, e := range edges {
		if e.Weight > 0 {
			pos = append(pos, e)
		}
	}
	a.pos = pos
	if cap(a.radixBuf) < len(pos) {
		a.radixBuf = make([]Edge, len(pos))
	}
	radixSortEdges(pos, a.radixBuf[:len(pos)])
	a.usedFrom = growBools(a.usedFrom, n)
	a.usedTo = growBools(a.usedTo, n)
	usedFrom, usedTo := a.usedFrom, a.usedTo
	m := a.outG[:0]
	var total int64
	for _, e := range pos {
		if usedFrom[e.From] || usedTo[e.To] {
			continue
		}
		usedFrom[e.From] = true
		usedTo[e.To] = true
		m = append(m, e)
		total += e.Weight
	}
	a.outG = m
	// Restore the all-false invariant: only matched endpoints were set.
	for _, e := range m {
		usedFrom[e.From] = false
		usedTo[e.To] = false
	}
	a.Stats.GreedyCalls++
	a.Stats.GreedyEdges += int64(len(pos))
	a.Stats.GreedyMatched += int64(len(m))
	if a.greedyCap() > capBefore {
		a.Stats.Grows++
	} else {
		a.Stats.Reuses++
	}
	if len(m) == 0 {
		return nil, 0
	}
	return m, total
}

// MaxWeightBipartite is the arena-backed variant of the package-level
// MaxWeightBipartite; see its documentation. The returned slice is valid
// until the next call on the arena.
func (a *Arena) MaxWeightBipartite(n int, edges []Edge) ([]Edge, int64) {
	capBefore := a.exactCap()
	a.Stats.ExactCalls++
	// Compact the instance to active rows/columns.
	a.rowID = growIDs(a.rowID, n)
	a.colID = growIDs(a.colID, n)
	rowID, colID := a.rowID, a.colID
	rows, cols := a.rows[:0], a.cols[:0]
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		if rowID[e.From] < 0 {
			rowID[e.From] = len(rows)
			rows = append(rows, e.From)
		}
		if colID[e.To] < 0 {
			colID[e.To] = len(cols)
			cols = append(cols, e.To)
		}
	}
	a.rows, a.cols = rows, cols
	nr, nc := len(rows), len(cols)
	if nr == 0 {
		a.exactDone(capBefore)
		return nil, 0
	}
	a.Stats.ExactRows += int64(nr)
	// The shortest-augmenting-path formulation below needs nr <= nc.
	// Pad columns with dummies of weight 0 if necessary.
	if nc < nr {
		nc = nr
	}
	// Dense weight matrix; absent pairs have weight 0, equivalent to
	// leaving the row unmatched.
	a.w = growInt64s(a.w, nr*nc)
	w := a.w
	for i := range w {
		w[i] = 0
	}
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		i, j := rowID[e.From], colID[e.To]
		if e.Weight > w[i*nc+j] {
			w[i*nc+j] = e.Weight // keep max of duplicate edges
		}
	}
	// Restore the node-index maps for the next call.
	for _, r := range rows {
		rowID[r] = -1
	}
	for _, c := range cols {
		colID[c] = -1
	}

	// Minimize cost = -weight. 1-indexed arrays as in the standard
	// formulation; p[j] is the row assigned to column j.
	a.u = growInt64s(a.u, nr+1)
	a.v = growInt64s(a.v, nc+1)
	a.p = growInts(a.p, nc+1)
	a.way = growInts(a.way, nc+1)
	a.minv = growInt64s(a.minv, nc+1)
	a.free = growInts(a.free, nc)
	a.path = growInts(a.path, nc+1)
	u, v, p, way, minv := a.u, a.v, a.p, a.way, a.minv
	for i := range u {
		u[i] = 0
	}
	for j := range v {
		v[j] = 0
		p[j] = 0
		way[j] = 0
	}
	// Shortest augmenting paths with two representation tricks that keep
	// every comparison (and hence every tie-break and the final assignment)
	// bit-identical to the textbook form:
	//
	//  1. The unused columns live in `free`, kept in ascending order, so the
	//     scan visits exactly the columns the textbook loop would, in the
	//     same order, without a used[] branch.
	//  2. Instead of decrementing minv[j] for every unused column after each
	//     round ("minv[j] -= delta"), we accumulate the total delta D and
	//     store minv normalized to the start of the row: a value written at
	//     time t is stored as cur+D_t, and its textbook value now is
	//     stored-D. All comparisons within a round shift both sides by the
	//     same D, so their outcomes are unchanged, and the O(nc) decrement
	//     sweep disappears. (Values are bounded far below inf, so the offset
	//     cannot overflow.)
	var rounds int64
	for i := 1; i <= nr; i++ {
		p[0] = i
		j0 := 0
		free := a.free[:0]
		for j := 1; j <= nc; j++ {
			free = append(free, j)
			minv[j] = inf
		}
		path := a.path[:0]
		var d int64 = 0 // cumulative delta this row
		for {
			rounds++
			if j0 != 0 {
				// Retire j0 from the free list, preserving order.
				k := 0
				for free[k] != j0 {
					k++
				}
				free = append(free[:k], free[k+1:]...)
			}
			path = append(path, j0)
			i0 := p[j0]
			deltaN := int64(inf) // normalized: delta + d
			j1 := 0
			wrow := w[(i0-1)*nc : i0*nc]
			ui0 := u[i0]
			for _, j := range free {
				cur := -wrow[j-1] - ui0 - v[j] + d
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < deltaN {
					deltaN = minv[j]
					j1 = j
				}
			}
			delta := deltaN - d
			for _, j := range path {
				u[p[j]] += delta
				v[j] -= delta
			}
			d = deltaN
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	m := a.outX[:0]
	var total int64
	for j := 1; j <= nc; j++ {
		i := p[j]
		if i == 0 || j > len(cols) {
			continue
		}
		wt := w[(i-1)*nc+(j-1)]
		if wt > 0 {
			m = append(m, Edge{From: rows[i-1], To: cols[j-1], Weight: wt})
			total += wt
		}
	}
	a.outX = m
	a.Stats.AugmentRounds += rounds
	a.exactDone(capBefore)
	if len(m) == 0 {
		return nil, 0
	}
	return m, total
}
