package matching

import (
	"math/rand"
	"testing"
)

func benchBipartite(n int, density int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Intn(density) == 0 {
				edges = append(edges, Edge{From: i, To: j, Weight: rng.Int63n(1 << 20)})
			}
		}
	}
	return edges
}

func BenchmarkHungarian(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		edges := benchBipartite(n, 4, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MaxWeightBipartite(n, edges)
			}
		})
	}
}

func BenchmarkGreedyBipartite(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		edges := benchBipartite(n, 4, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GreedyBipartite(n, edges)
			}
		})
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	for _, n := range []int{100, 400} {
		edges := benchBipartite(n, 4, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MaxCardinalityBipartite(n, edges)
			}
		})
	}
}

func benchGeneral(n int, density int, seed int64) []UEdge {
	rng := rand.New(rand.NewSource(seed))
	var edges []UEdge
	for a := 0; a < n; a++ {
		for c := a + 1; c < n; c++ {
			if rng.Intn(density) == 0 {
				edges = append(edges, UEdge{A: a, B: c, Weight: rng.Int63n(1 << 20)})
			}
		}
	}
	return edges
}

func BenchmarkBlossom(b *testing.B) {
	for _, n := range []int{50, 100} {
		edges := benchGeneral(n, 3, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MaxWeightGeneral(n, edges)
			}
		})
	}
}

func BenchmarkGreedyGeneral(b *testing.B) {
	edges := benchGeneral(100, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GreedyGeneral(100, edges)
	}
}

func BenchmarkRadixSortEdges(b *testing.B) {
	edges := benchBipartite(200, 2, 1)
	work := make([]Edge, len(edges))
	buf := make([]Edge, len(edges))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, edges)
		radixSortEdges(work, buf)
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000:
		return "n1000"
	case n >= 400:
		return "n400"
	case n >= 200:
		return "n200"
	case n >= 100:
		return "n100"
	default:
		return "n50"
	}
}
