package matching

import (
	"math/rand"
	"testing"
)

func benchBipartite(n int, density int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Intn(density) == 0 {
				edges = append(edges, Edge{From: i, To: j, Weight: rng.Int63n(1 << 20)})
			}
		}
	}
	return edges
}

func BenchmarkHungarian(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		edges := benchBipartite(n, 4, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MaxWeightBipartite(n, edges)
			}
		})
	}
}

func BenchmarkGreedyBipartite(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		edges := benchBipartite(n, 4, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GreedyBipartite(n, edges)
			}
		})
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	for _, n := range []int{100, 400} {
		edges := benchBipartite(n, 4, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MaxCardinalityBipartite(n, edges)
			}
		})
	}
}

func benchGeneral(n int, density int, seed int64) []UEdge {
	rng := rand.New(rand.NewSource(seed))
	var edges []UEdge
	for a := 0; a < n; a++ {
		for c := a + 1; c < n; c++ {
			if rng.Intn(density) == 0 {
				edges = append(edges, UEdge{A: a, B: c, Weight: rng.Int63n(1 << 20)})
			}
		}
	}
	return edges
}

func BenchmarkBlossom(b *testing.B) {
	for _, n := range []int{50, 100} {
		edges := benchGeneral(n, 3, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MaxWeightGeneral(n, edges)
			}
		})
	}
}

func BenchmarkGreedyGeneral(b *testing.B) {
	edges := benchGeneral(100, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GreedyGeneral(100, edges)
	}
}

func BenchmarkRadixSortEdges(b *testing.B) {
	edges := benchBipartite(200, 2, 1)
	work := make([]Edge, len(edges))
	buf := make([]Edge, len(edges))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, edges)
		radixSortEdges(work, buf)
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000:
		return "n1000"
	case n >= 400:
		return "n400"
	case n >= 200:
		return "n200"
	case n >= 100:
		return "n100"
	default:
		return "n50"
	}
}

// BenchmarkExactDenseVsSparse measures the two exact solver paths on the
// same instances across edge densities (probability 1/den), to keep the
// auto-dispatch threshold in maxWeightExact honest. Both paths produce
// bit-identical results (pinned by TestSparseMatchesDense); this benchmark
// is only about where each one is faster.
func BenchmarkExactDenseVsSparse(b *testing.B) {
	for _, n := range []int{100, 200} {
		for _, den := range []int{4, 8, 16, 32, 64} {
			edges := benchBipartite(n, den, 1)
			name := func(path string) string {
				return sizeName(n) + "_den" + itoa(den) + "_" + path
			}
			b.Run(name("dense"), func(b *testing.B) {
				var a Arena
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a.MaxWeightBipartiteDense(n, edges)
				}
			})
			b.Run(name("sparse"), func(b *testing.B) {
				var a Arena
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a.MaxWeightBipartiteSparse(n, edges)
				}
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
