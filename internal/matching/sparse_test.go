package matching

import (
	"math/rand"
	"testing"
)

// randInstance draws a random bipartite instance: n nodes per side, edge
// probability densityNum/densityDen, weights in [-5, maxW] (so some edges
// are non-positive and must be ignored), with occasional duplicates.
func randInstance(rng *rand.Rand, n int, density float64, maxW int64) []Edge {
	var edges []Edge
	for f := 0; f < n; f++ {
		for t := 0; t < n; t++ {
			if rng.Float64() >= density {
				continue
			}
			w := rng.Int63n(maxW+6) - 5
			edges = append(edges, Edge{From: f, To: t, Weight: w})
			if rng.Float64() < 0.05 {
				edges = append(edges, Edge{From: f, To: t, Weight: rng.Int63n(maxW + 1)})
			}
		}
	}
	// Shuffle so compaction order is not the generation order.
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

// checkValidMatching asserts m is a matching over the positive edges of the
// instance: endpoints distinct, weights consistent with the (max-duplicate)
// input weight, total correct.
func checkValidMatching(t *testing.T, n int, edges, m []Edge, total int64) {
	t.Helper()
	maxW := map[[2]int]int64{}
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		k := [2]int{e.From, e.To}
		if e.Weight > maxW[k] {
			maxW[k] = e.Weight
		}
	}
	usedF, usedT := map[int]bool{}, map[int]bool{}
	var sum int64
	for _, e := range m {
		if e.Weight <= 0 {
			t.Fatalf("non-positive matched edge %+v", e)
		}
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			t.Fatalf("edge endpoints out of range: %+v", e)
		}
		if usedF[e.From] || usedT[e.To] {
			t.Fatalf("matching reuses a node: %+v", e)
		}
		usedF[e.From], usedT[e.To] = true, true
		if maxW[[2]int{e.From, e.To}] != e.Weight {
			t.Fatalf("matched edge %+v does not carry the input max weight %d",
				e, maxW[[2]int{e.From, e.To}])
		}
		sum += e.Weight
	}
	if sum != total {
		t.Fatalf("reported total %d != summed %d", total, sum)
	}
}

// TestSparseMatchesDenseBitIdentical is the tentpole pin: across random
// instances spanning sparse and dense regimes, the CSR path must return the
// same edges in the same order as the dense path — and even spend the same
// number of augment rounds, since it emulates the dense loop event for
// event.
func TestSparseMatchesDenseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var dense, sparse Arena
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(64)
		if trial%10 == 0 {
			n = 64 + rng.Intn(193) // up to 256
		}
		density := []float64{0.02, 0.05, 0.1, 0.3, 0.9}[rng.Intn(5)]
		maxW := []int64{1, 3, 1000, 1 << 40}[rng.Intn(4)]
		edges := randInstance(rng, n, density, maxW)

		dr0, sr0 := dense.Stats.AugmentRounds, sparse.Stats.AugmentRounds
		dm, dw := dense.MaxWeightBipartiteDense(n, edges)
		sm, sw := sparse.MaxWeightBipartiteSparse(n, edges)
		if dw != sw || len(dm) != len(sm) {
			t.Fatalf("trial %d (n=%d d=%v): weight/len mismatch dense %d/%d sparse %d/%d",
				trial, n, density, dw, len(dm), sw, len(sm))
		}
		for i := range dm {
			if dm[i] != sm[i] {
				t.Fatalf("trial %d: edge %d differs: dense %+v sparse %+v", trial, i, dm[i], sm[i])
			}
		}
		if dr := dense.Stats.AugmentRounds - dr0; dr != sparse.Stats.AugmentRounds-sr0 {
			t.Fatalf("trial %d: augment rounds differ: dense %d sparse %d",
				trial, dr, sparse.Stats.AugmentRounds-sr0)
		}
		checkValidMatching(t, n, edges, sm, sw)
	}
	if dense.Stats.DenseSolves == 0 || sparse.Stats.SparseSolves == 0 {
		t.Fatalf("forced paths not exercised: %+v %+v", dense.Stats, sparse.Stats)
	}
}

// TestExactVsBruteForce pins all three exact paths to the brute-force
// oracle on small instances.
func TestExactVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a Arena
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		edges := randInstance(rng, n, 0.6, 9)
		_, want := BruteForceBipartite(n, edges)

		dm, dw := a.MaxWeightBipartiteDense(n, edges)
		sm, sw := a.MaxWeightBipartiteSparse(n, edges)
		var ws WarmState
		wm, ww := a.MaxWeightBipartiteWarm(n, edges, &ws, nil)
		if dw != want || sw != want || ww != want {
			t.Fatalf("trial %d (n=%d): dense=%d sparse=%d warm=%d oracle=%d edges=%v",
				trial, n, dw, sw, ww, want, edges)
		}
		checkValidMatching(t, n, edges, dm, dw)
		checkValidMatching(t, n, edges, sm, sw)
		checkValidMatching(t, n, edges, wm, ww)
	}
}

// TestExactBoundaries covers the all-non-positive and empty-active-set
// boundary instances on every path.
func TestExactBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"nil", 4, nil},
		{"empty", 4, []Edge{}},
		{"all-non-positive", 4, []Edge{{0, 1, 0}, {1, 2, -3}, {2, 0, -1}}},
		{"n-zero", 0, nil},
	}
	var a Arena
	for _, tc := range cases {
		var ws WarmState
		for _, solve := range []func() ([]Edge, int64){
			func() ([]Edge, int64) { return a.MaxWeightBipartite(tc.n, tc.edges) },
			func() ([]Edge, int64) { return a.MaxWeightBipartiteDense(tc.n, tc.edges) },
			func() ([]Edge, int64) { return a.MaxWeightBipartiteSparse(tc.n, tc.edges) },
			func() ([]Edge, int64) { return a.MaxWeightBipartiteWarm(tc.n, tc.edges, &ws, nil) },
			// Second warm call exercises the retained-empty-state path.
			func() ([]Edge, int64) { return a.MaxWeightBipartiteWarm(tc.n, tc.edges, &ws, nil) },
		} {
			m, w := solve()
			if m != nil || w != 0 {
				t.Fatalf("%s: expected empty result, got %v/%d", tc.name, m, w)
			}
		}
	}
}

// TestExactMoreRowsThanCols exercises the nc < nr padding branch (more
// distinct From-nodes than To-nodes) on both cold paths.
func TestExactMoreRowsThanCols(t *testing.T) {
	edges := []Edge{
		{From: 0, To: 0, Weight: 5},
		{From: 1, To: 0, Weight: 7},
		{From: 2, To: 0, Weight: 6},
		{From: 3, To: 1, Weight: 2},
		{From: 4, To: 1, Weight: 1},
	}
	var a Arena
	dm, dw := a.MaxWeightBipartiteDense(8, edges)
	sm, sw := a.MaxWeightBipartiteSparse(8, edges)
	if dw != 9 || sw != 9 {
		t.Fatalf("expected weight 9, got dense %d sparse %d", dw, sw)
	}
	if len(dm) != len(sm) {
		t.Fatalf("result length mismatch: %v vs %v", dm, sm)
	}
	for i := range dm {
		if dm[i] != sm[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, dm[i], sm[i])
		}
	}
}

// TestAutoDispatch pins the density rule: the auto path must take the
// sparse solver on a large sparse instance and the dense solver on a small
// or dense one, observable through Stats.
func TestAutoDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a Arena
	a.MaxWeightBipartite(4, []Edge{{0, 1, 3}, {1, 0, 2}})
	if a.Stats.DenseSolves != 1 || a.Stats.SparseSolves != 0 {
		t.Fatalf("small instance should stay dense: %+v", a.Stats)
	}
	a.MaxWeightBipartite(256, randInstance(rng, 256, 0.01, 100))
	if a.Stats.SparseSolves != 1 {
		t.Fatalf("large sparse instance should dispatch sparse: %+v", a.Stats)
	}
	a.MaxWeightBipartite(32, randInstance(rng, 32, 0.95, 100))
	if a.Stats.DenseSolves != 2 {
		t.Fatalf("dense instance should dispatch dense: %+v", a.Stats)
	}
}

// TestSparseDegradedRows forces long augmenting paths (a tight cost
// structure where every row fights for the same columns) so rows cross the
// touched-set degradation threshold, and pins bit-identity there too.
func TestSparseDegradedRows(t *testing.T) {
	// Complete-ish instance with identical weights: every insertion chains
	// through previously matched columns.
	n := 48
	var edges []Edge
	for f := 0; f < n; f++ {
		for t := 0; t < n/2; t++ {
			edges = append(edges, Edge{From: f, To: t, Weight: 10})
		}
	}
	var a Arena
	dm, dw := a.MaxWeightBipartiteDense(n, edges)
	sm, sw := a.MaxWeightBipartiteSparse(n, edges)
	if dw != sw || len(dm) != len(sm) {
		t.Fatalf("degraded-row mismatch: dense %d/%d sparse %d/%d", dw, len(dm), sw, len(sm))
	}
	for i := range dm {
		if dm[i] != sm[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, dm[i], sm[i])
		}
	}
}
