package matching

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randBipartite(rng *rand.Rand, n, maxW int) []Edge {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Intn(2) == 0 {
				edges = append(edges, Edge{i, j, int64(rng.Intn(maxW + 1))})
			}
		}
	}
	return edges
}

func isBipartiteMatching(n int, m []Edge) bool {
	from := make([]bool, n)
	to := make([]bool, n)
	for _, e := range m {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return false
		}
		if from[e.From] || to[e.To] {
			return false
		}
		from[e.From] = true
		to[e.To] = true
	}
	return true
}

func TestMaxWeightBipartiteSimple(t *testing.T) {
	// 2x2: picking the diagonal (5+5) beats the single heavy edge (7).
	edges := []Edge{{0, 0, 5}, {0, 1, 7}, {1, 1, 5}}
	m, w := MaxWeightBipartite(2, edges)
	if w != 10 || len(m) != 2 {
		t.Fatalf("got w=%d m=%v, want 10 with 2 edges", w, m)
	}
}

func TestMaxWeightBipartiteEmpty(t *testing.T) {
	if m, w := MaxWeightBipartite(3, nil); m != nil || w != 0 {
		t.Fatalf("empty instance: got %v %d", m, w)
	}
	if m, w := MaxWeightBipartite(3, []Edge{{0, 1, 0}, {1, 2, -4}}); m != nil || w != 0 {
		t.Fatalf("non-positive weights: got %v %d", m, w)
	}
}

func TestMaxWeightBipartiteDuplicateEdges(t *testing.T) {
	edges := []Edge{{0, 1, 3}, {0, 1, 9}, {0, 1, 5}}
	m, w := MaxWeightBipartite(2, edges)
	if w != 9 || len(m) != 1 || m[0].Weight != 9 {
		t.Fatalf("duplicates: got %v %d", m, w)
	}
}

func TestMaxWeightBipartiteRectangular(t *testing.T) {
	// More active rows than columns forces column padding.
	edges := []Edge{{0, 5, 4}, {1, 5, 9}, {2, 5, 2}}
	m, w := MaxWeightBipartite(6, edges)
	if w != 9 || len(m) != 1 || m[0] != (Edge{1, 5, 9}) {
		t.Fatalf("got %v %d", m, w)
	}
}

func TestMaxWeightBipartiteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5)
		edges := randBipartite(rng, n, 20)
		m, w := MaxWeightBipartite(n, edges)
		_, bw := BruteForceBipartite(n, edges)
		if w != bw {
			t.Fatalf("trial %d: hungarian=%d brute=%d edges=%v", trial, w, bw, edges)
		}
		if !isBipartiteMatching(n, m) {
			t.Fatalf("trial %d: invalid matching %v", trial, m)
		}
		if Weight(m) != w {
			t.Fatalf("trial %d: reported weight %d != edge sum %d", trial, w, Weight(m))
		}
	}
}

func TestGreedyBipartiteHalfApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		edges := randBipartite(rng, n, 50)
		gm, gw := GreedyBipartite(n, edges)
		_, ow := MaxWeightBipartite(n, edges)
		if !isBipartiteMatching(n, gm) {
			t.Fatalf("greedy produced invalid matching %v", gm)
		}
		if gw > ow {
			t.Fatalf("greedy weight %d exceeds optimum %d", gw, ow)
		}
		if 2*gw < ow {
			t.Fatalf("greedy weight %d below half of optimum %d", gw, ow)
		}
	}
}

func TestGreedyBipartiteDeterministic(t *testing.T) {
	edges := []Edge{{0, 0, 5}, {0, 1, 5}, {1, 0, 5}, {1, 1, 5}}
	m1, _ := GreedyBipartite(2, edges)
	m2, _ := GreedyBipartite(2, append([]Edge(nil), edges...))
	if len(m1) != len(m2) {
		t.Fatal("nondeterministic size")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("nondeterministic result: %v vs %v", m1, m2)
		}
	}
	// Stable radix + (From,To) input order: ties resolve to (0,0) first.
	if m1[0] != (Edge{0, 0, 5}) || m1[1] != (Edge{1, 1, 5}) {
		t.Fatalf("unexpected tie-break: %v", m1)
	}
}

func TestRadixSortEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		edges := make([]Edge, n)
		for i := range edges {
			edges[i] = Edge{i, i, rng.Int63n(1 << uint(1+rng.Intn(40)))}
		}
		got := append([]Edge(nil), edges...)
		radixSortEdges(got, make([]Edge, len(got)))
		want := append([]Edge(nil), edges...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Weight > want[j].Weight })
		for i := range want {
			if got[i].Weight != want[i].Weight {
				t.Fatalf("trial %d: radix order wrong at %d", trial, i)
			}
		}
	}
}

func TestRadixSortStability(t *testing.T) {
	edges := []Edge{{0, 0, 7}, {1, 1, 7}, {2, 2, 7}, {3, 3, 9}}
	radixSortEdges(edges, make([]Edge, len(edges)))
	if edges[0].From != 3 || edges[1].From != 0 || edges[2].From != 1 || edges[3].From != 2 {
		t.Fatalf("stability violated: %v", edges)
	}
}

func randGeneral(rng *rand.Rand, n, maxW int) []UEdge {
	var edges []UEdge
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Intn(2) == 0 {
				edges = append(edges, UEdge{a, b, int64(rng.Intn(maxW + 1))})
			}
		}
	}
	return edges
}

func isGeneralMatching(n int, m []UEdge) bool {
	used := make([]bool, n)
	for _, e := range m {
		if used[e.A] || used[e.B] || e.A == e.B {
			return false
		}
		used[e.A] = true
		used[e.B] = true
	}
	return true
}

func TestGreedyGeneralHalfApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		edges := randGeneral(rng, n, 30)
		gm, gw := GreedyGeneral(n, edges)
		_, ow := BruteForceGeneral(n, edges)
		if !isGeneralMatching(n, gm) {
			t.Fatalf("invalid greedy matching %v", gm)
		}
		if gw > ow || 2*gw < ow {
			t.Fatalf("greedy %d vs optimum %d out of [ow/2, ow]", gw, ow)
		}
	}
}

func TestAugmentGeneralImproves(t *testing.T) {
	// Path a-b-c-d with weights 1, 2, 1: greedy takes {b,c}=2; the optimum
	// {a,b}+{c,d}=2... use weights 3,4,3: greedy takes 4, optimum 6.
	edges := []UEdge{{0, 1, 3}, {1, 2, 4}, {2, 3, 3}}
	gm, gw := GreedyGeneral(4, edges)
	if gw != 4 || len(gm) != 1 {
		t.Fatalf("greedy got %v %d", gm, gw)
	}
	am, aw := AugmentGeneral(4, edges, gm)
	if aw != 6 || len(am) != 2 {
		t.Fatalf("augment got %v %d, want weight 6", am, aw)
	}
	if !isGeneralMatching(4, am) {
		t.Fatalf("augmented matching invalid: %v", am)
	}
}

func TestAugmentGeneralNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9)
		edges := randGeneral(rng, n, 30)
		gm, gw := GreedyGeneral(n, edges)
		am, aw := AugmentGeneral(n, edges, gm)
		_, ow := BruteForceGeneral(n, edges)
		if aw < gw {
			t.Fatalf("augment decreased weight: %d < %d", aw, gw)
		}
		if aw > ow {
			t.Fatalf("augment exceeded optimum: %d > %d", aw, ow)
		}
		if !isGeneralMatching(n, am) {
			t.Fatalf("augmented matching invalid: %v", am)
		}
	}
}

// Property: on permutation-structured instances (disjoint positive edges)
// greedy is exactly optimal.
func TestGreedyExactOnDisjointEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		perm := rng.Perm(n)
		var edges []Edge
		var want int64
		for i, j := range perm {
			w := int64(1 + rng.Intn(100))
			edges = append(edges, Edge{i, j, w})
			want += w
		}
		_, gw := GreedyBipartite(n, edges)
		_, ow := MaxWeightBipartite(n, edges)
		return gw == want && ow == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hungarian weight is invariant under edge order permutation.
func TestHungarianOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5)
		edges := randBipartite(rng, n, 40)
		_, w1 := MaxWeightBipartite(n, edges)
		shuffled := append([]Edge(nil), edges...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		_, w2 := MaxWeightBipartite(n, shuffled)
		if w1 != w2 {
			t.Fatalf("order-dependent optimum: %d vs %d", w1, w2)
		}
	}
}

func TestWeightHelpers(t *testing.T) {
	if Weight([]Edge{{0, 1, 3}, {1, 2, 4}}) != 7 {
		t.Fatal("Weight sum wrong")
	}
	if UWeight([]UEdge{{0, 1, 3}, {1, 2, 4}}) != 7 {
		t.Fatal("UWeight sum wrong")
	}
	if Weight(nil) != 0 || UWeight(nil) != 0 {
		t.Fatal("empty sums nonzero")
	}
}

func TestHungarianLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(5))
	n := 120
	edges := randBipartite(rng, n, 1000)
	m, w := MaxWeightBipartite(n, edges)
	if !isBipartiteMatching(n, m) {
		t.Fatal("invalid matching at n=120")
	}
	_, gw := GreedyBipartite(n, edges)
	if gw > w {
		t.Fatalf("greedy %d beat exact %d", gw, w)
	}
	if 2*gw < w {
		t.Fatalf("greedy %d below half of exact %d", gw, w)
	}
}
