package matching

import (
	"math/rand"
	"testing"
)

// mutableInstance evolves a bipartite instance under row-granular edits,
// tracking exactly which From-nodes changed — the dirty contract a warm
// caller must honor.
type mutableInstance struct {
	n     int
	byRow [][]Edge
}

func newMutableInstance(rng *rand.Rand, n int, density float64) *mutableInstance {
	mi := &mutableInstance{n: n, byRow: make([][]Edge, n)}
	for f := 0; f < n; f++ {
		mi.mutateRow(rng, f, density)
	}
	return mi
}

// mutateRow redraws row f's outgoing edges and returns f as dirty.
func (mi *mutableInstance) mutateRow(rng *rand.Rand, f int, density float64) {
	row := mi.byRow[f][:0]
	for t := 0; t < mi.n; t++ {
		if rng.Float64() < density {
			row = append(row, Edge{From: f, To: t, Weight: rng.Int63n(50) - 5})
		}
	}
	mi.byRow[f] = row
}

func (mi *mutableInstance) edges() []Edge {
	var all []Edge
	for _, row := range mi.byRow {
		all = append(all, row...)
	}
	return all
}

// TestWarmMatchesColdAcrossMutations is the warm-start oracle pin: a chain
// of warm solves over an evolving instance, with honest dirty sets, must
// report the same optimal weight as a cold solve of every snapshot —
// including steps where rows vanish, reappear, or the instance empties.
func TestWarmMatchesColdAcrossMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{3, 8, 20, 64} {
		var warm, cold Arena
		var ws WarmState
		mi := newMutableInstance(rng, n, 0.3)
		var dirty []int
		for step := 0; step < 60; step++ {
			edges := mi.edges()
			wm, ww := warm.MaxWeightBipartiteWarm(n, edges, &ws, dirty)
			_, cw := cold.MaxWeightBipartite(n, edges)
			if ww != cw {
				t.Fatalf("n=%d step %d: warm weight %d != cold %d (dirty %v)", n, step, ww, cw, dirty)
			}
			checkValidMatching(t, n, edges, wm, ww)

			// Mutate a few rows for the next step; occasionally clear a row
			// entirely or empty the whole instance.
			dirty = dirty[:0]
			k := 1 + rng.Intn(3)
			if step%17 == 16 {
				for f := 0; f < n; f++ {
					mi.byRow[f] = mi.byRow[f][:0]
					dirty = append(dirty, f)
				}
				continue
			}
			for i := 0; i < k; i++ {
				f := rng.Intn(n)
				if rng.Float64() < 0.2 {
					mi.byRow[f] = mi.byRow[f][:0]
				} else {
					mi.mutateRow(rng, f, 0.3)
				}
				dirty = append(dirty, f)
			}
		}
		if ws := warm.Stats; ws.WarmHits == 0 || ws.WarmRowsReused == 0 {
			t.Fatalf("n=%d: warm chain never reused state: %+v", n, ws)
		}
	}
}

// TestWarmAllDirtyEqualsDenseCold pins the degenerate contract: marking
// every row dirty must reproduce the cold dense solve bit-identically
// (same insertion order, same seeds).
func TestWarmAllDirtyEqualsDenseCold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var warm, dense Arena
	var ws WarmState
	all := make([]int, 40)
	for i := range all {
		all[i] = i
	}
	for trial := 0; trial < 50; trial++ {
		edges := randInstance(rng, 40, 0.2, 100)
		wm, ww := warm.MaxWeightBipartiteWarm(40, edges, &ws, all)
		dm, dw := dense.MaxWeightBipartiteDense(40, edges)
		if ww != dw || len(wm) != len(dm) {
			t.Fatalf("trial %d: warm all-dirty diverged: %d/%d vs %d/%d", trial, ww, len(wm), dw, len(dm))
		}
		for i := range wm {
			if wm[i] != dm[i] {
				t.Fatalf("trial %d edge %d: %+v vs %+v", trial, i, wm[i], dm[i])
			}
		}
	}
}

// TestWarmStateFallbacks covers nil state, Reset, and instance-size
// changes: all must solve cold (and count as misses) yet stay correct.
func TestWarmStateFallbacks(t *testing.T) {
	edges := []Edge{{0, 1, 4}, {1, 0, 3}, {0, 0, 2}}
	var a Arena
	if _, w := a.MaxWeightBipartiteWarm(2, edges, nil, nil); w != 7 {
		t.Fatalf("nil state: weight %d", w)
	}
	if a.Stats.WarmCalls != 1 || a.Stats.WarmMisses != 1 {
		t.Fatalf("nil state miss accounting: %+v", a.Stats)
	}
	var ws WarmState
	a.MaxWeightBipartiteWarm(2, edges, &ws, nil) // cold: invalid state
	if a.Stats.WarmMisses != 2 {
		t.Fatalf("fresh state should miss: %+v", a.Stats)
	}
	a.MaxWeightBipartiteWarm(2, edges, &ws, nil) // hit: nothing dirty
	if a.Stats.WarmHits != 1 {
		t.Fatalf("second call should hit: %+v", a.Stats)
	}
	if _, w := a.MaxWeightBipartiteWarm(5, edges, &ws, nil); w != 7 {
		t.Fatalf("size change: weight %d", w)
	}
	if a.Stats.WarmMisses != 3 {
		t.Fatalf("size change should miss: %+v", a.Stats)
	}
	ws.Reset()
	a.MaxWeightBipartiteWarm(5, edges, &ws, nil)
	if a.Stats.WarmMisses != 4 {
		t.Fatalf("reset state should miss: %+v", a.Stats)
	}
}

// TestWarmSharedAcrossArenas pins that WarmState is self-contained: a
// state recorded by one arena must warm a different arena correctly.
func TestWarmSharedAcrossArenas(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a1, a2, cold Arena
	var ws WarmState
	mi := newMutableInstance(rng, 16, 0.4)
	a1.MaxWeightBipartiteWarm(16, mi.edges(), &ws, nil)
	mi.mutateRow(rng, 4, 0.4)
	edges := mi.edges()
	_, ww := a2.MaxWeightBipartiteWarm(16, edges, &ws, []int{4})
	_, cw := cold.MaxWeightBipartite(16, edges)
	if ww != cw {
		t.Fatalf("cross-arena warm weight %d != cold %d", ww, cw)
	}
	if a2.Stats.WarmHits != 1 {
		t.Fatalf("cross-arena call should hit: %+v", a2.Stats)
	}
}
