package matching

// MaxCardinalityBipartite returns a maximum-cardinality matching of the
// bipartite graph with n left and n right nodes, using the Hopcroft-Karp
// algorithm (O(E·√V)). Edge weights are ignored. The Solstice baseline
// uses this to find the largest set of links that can carry demand above a
// threshold simultaneously.
func MaxCardinalityBipartite(n int, edges []Edge) []Edge {
	adj := make([][]int, n)
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			continue
		}
		adj[e.From] = append(adj[e.From], e.To)
	}
	const unmatched = -1
	matchL := make([]int, n)
	matchR := make([]int, n)
	for i := range matchL {
		matchL[i] = unmatched
		matchR[i] = unmatched
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	queue := make([]int, 0, n)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < n; u++ {
			if matchL[u] == unmatched {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == unmatched {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}
	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == unmatched || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}
	for bfs() {
		for u := 0; u < n; u++ {
			if matchL[u] == unmatched {
				dfs(u)
			}
		}
	}
	var m []Edge
	for u := 0; u < n; u++ {
		if matchL[u] != unmatched {
			m = append(m, Edge{From: u, To: matchL[u]})
		}
	}
	return m
}
