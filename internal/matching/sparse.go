package matching

// Sparse exact matcher: shortest augmenting paths over CSR adjacency lists.
//
// The solver is an exact emulation of the dense Jonker-Volgenant loop in
// arena.go — every relaxation round selects the same column, applies the
// same dual delta, and records the same alternating path, so the final
// assignment (and even Stats.AugmentRounds) is bit-identical to the dense
// path. The emulation rests on three observations about the dense loop on
// our cost structure (cost = -weight <= 0, absent pairs cost 0):
//
//  1. Within one row insertion, a free column's potential v[j] never
//     changes: v is only updated for columns on the alternating path, and
//     those are exactly the columns retired from the free list (plus the
//     virtual column 0). So for every free column, v[j] is its value at the
//     start of the row.
//
//  2. Each round ("event") t relaxes every free column j with candidate
//     value a_t - c(i0_t, j) - v[j] under the row-normalized representation,
//     where a_t = d_t - u[i0_t] depends only on the event. For columns with
//     no explicit edge from i0_t the candidate is a_t - v[j]. Hence a column
//     that has never been adjacent to any event so far ("pure") has
//     minv[j] = A_t - v[j] and way[j] = W_t, where (A_t, W_t) is the
//     running minimum of (a_s, j0_s) over events s <= t, keeping the
//     earliest event on ties — exactly the strict-< update order of the
//     dense scan.
//
//  3. The dense per-round argmin takes the smallest minv over free columns,
//     breaking ties toward the smallest column index (the ascending scan
//     only replaces on strict <). Over pure columns, minv[j] = A_t - v[j]
//     is minimized by the lexicographically smallest (-v[j], j) — a static
//     order per row, maintained across rows as a sorted array. Over
//     "touched" columns (adjacent to some past event) minv is maintained
//     explicitly. The global argmin is the lexicographic min of the two.
//
// Per round the solver therefore does O(deg(i0) + |touched|) work instead
// of O(nc). Long augmenting paths make |touched| approach nc, at which
// point the row degrades to a dense-style scan over a materialized free
// list (still fed from CSR edges, no matrix) — the degraded rounds execute
// the very scan they emulate, so bit-identity is preserved by construction.
//
// The idiom follows the sparse-assignment formulations used for hybrid
// circuit/packet switch scheduling (Liu et al., PAPERS.md), adapted to
// preserve the dense solver's tie-breaks exactly.

// solveSparse runs the CSR solver over the compacted instance and returns
// the relaxation-round count. Requires rowID/colID to be live (compactExact
// has run, restoreIDMaps has not).
func (a *Arena) solveSparse(edges []Edge, nr, nc int) int64 {
	// Build the CSR adjacency over compact ids (columns 1-indexed).
	// Duplicate edges are kept: a larger duplicate weight yields a smaller
	// candidate value, so the strict-< relaxation keeps the max, exactly as
	// the dense matrix build does.
	a.csrOff = growInts(a.csrOff, nr+1)
	a.csrCur = growInts(a.csrCur, nr+1)
	off, cur := a.csrOff, a.csrCur
	for i := range off {
		off[i] = 0
	}
	m := 0
	rowID, colID := a.rowID, a.colID
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		off[rowID[e.From]+1]++
		m++
	}
	for i := 1; i <= nr; i++ {
		off[i] += off[i-1]
	}
	copy(cur, off)
	a.csrCol = growInts(a.csrCol, m)
	a.csrW = growInt64s(a.csrW, m)
	csrCol, csrW := a.csrCol, a.csrW
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		i := rowID[e.From]
		k := cur[i]
		cur[i]++
		csrCol[k] = colID[e.To] + 1
		csrW[k] = e.Weight
	}

	a.prepDuals(nc)
	a.touched = growInts(a.touched, nc)
	a.retJ = growInts(a.retJ, nc)
	a.negKey = growInt64s(a.negKey, nc)
	a.negCol = growInts(a.negCol, nc)
	a.negBufK = growInt64s(a.negBufK, nc)
	a.negBufC = growInts(a.negBufC, nc)
	a.newKey = growInt64s(a.newKey, nc)
	a.newCol = growInts(a.newCol, nc)
	a.touchTick = growInt64s(a.touchTick, nc+1)
	a.retireTick = growInt64s(a.retireTick, nc+1)
	a.adjTick = growInt64s(a.adjTick, nc+1)
	// Stamp arrays may be freshly allocated (all zero) or reused from a
	// previous call; epochs are monotone and start above zero, so stale
	// stamps can never collide with the current row or event.
	if a.rowEpoch == 0 {
		a.rowEpoch, a.eventEpoch = 1, 1
	}
	u, v, p, way, minv := a.u, a.v, a.p, a.way, a.minv
	touchT, retireT, adjT := a.touchTick, a.retireTick, a.adjTick
	// Free-column generator: all columns, keys -v[j] = 0, ascending j.
	negKey, negCol := a.negKey[:nc], a.negCol[:nc]
	for j := 0; j < nc; j++ {
		negKey[j] = 0
		negCol[j] = j + 1
	}

	var rounds int64
	// Degrade a row to dense-style scans once the touched set is this big;
	// purely a performance knob (both modes are exact emulations).
	limit := nc/3 + 4
	for i := 1; i <= nr; i++ {
		a.rowEpoch++
		rowE := a.rowEpoch
		p[0] = i
		j0 := 0
		touched := a.touched[:0]
		retJ := a.retJ[:0]
		aMin := int64(inf) // running (a_s, j0_s) min over this row's events
		aWay := 0
		cursor := 0 // front of the pure-column generator
		var d int64
		degraded := false
		k1 := -1 // j0's position in free while degraded
		free := a.free[:0]
		path := a.path[:0]
		for {
			rounds++
			if j0 != 0 {
				retJ = append(retJ, j0)
				retireT[j0] = rowE
				if degraded {
					// k1 is j0's position in free, recorded by the scan (or
					// the materialization) that selected it.
					free = append(free[:k1], free[k1+1:]...)
				}
			}
			path = append(path, j0)
			i0 := p[j0]
			aT := d - u[i0]
			deltaN := int64(inf)
			j1 := 0
			a.eventEpoch++
			evE := a.eventEpoch
			if !degraded {
				// Explicit candidates along i0's adjacency.
				for k := off[i0-1]; k < off[i0]; k++ {
					j := csrCol[k]
					if retireT[j] == rowE {
						continue
					}
					if touchT[j] != rowE {
						// Promote j from pure to touched: materialize the
						// running zero-candidate minimum it held implicitly.
						touchT[j] = rowE
						touched = append(touched, j)
						if aMin >= inf {
							minv[j] = inf
						} else {
							minv[j] = aMin - v[j]
							way[j] = aWay
						}
					}
					adjT[j] = evE
					if c := aT - csrW[k] - v[j]; c < minv[j] {
						minv[j] = c
						way[j] = j0
					}
				}
				// Implicit zero candidates for touched, non-adjacent columns.
				for _, j := range touched {
					if retireT[j] == rowE || adjT[j] == evE {
						continue
					}
					if c := aT - v[j]; c < minv[j] {
						minv[j] = c
						way[j] = j0
					}
				}
				if aT < aMin {
					aMin = aT
					aWay = j0
				}
				// Argmin over touched (smallest index on ties) ...
				for _, j := range touched {
					if retireT[j] == rowE {
						continue
					}
					if mv := minv[j]; mv < deltaN || (mv == deltaN && j < j1) {
						deltaN = mv
						j1 = j
					}
				}
				// ... merged with the pure-column generator front.
				for cursor < nc {
					j := negCol[cursor]
					if touchT[j] == rowE || retireT[j] == rowE {
						cursor++
						continue
					}
					if pv := aMin + negKey[cursor]; pv < deltaN || (pv == deltaN && j < j1) {
						deltaN = pv
						j1 = j
						way[j1] = aWay // freeze for augmentation
					}
					break
				}
			} else {
				// Degraded round: the dense scan, fed from CSR.
				for k := off[i0-1]; k < off[i0]; k++ {
					j := csrCol[k]
					if retireT[j] == rowE {
						continue
					}
					adjT[j] = evE
					if c := aT - csrW[k] - v[j]; c < minv[j] {
						minv[j] = c
						way[j] = j0
					}
				}
				for k, j := range free {
					if adjT[j] != evE {
						if c := aT - v[j]; c < minv[j] {
							minv[j] = c
							way[j] = j0
						}
					}
					if minv[j] < deltaN {
						deltaN = minv[j]
						j1 = j
						k1 = k
					}
				}
			}
			delta := deltaN - d
			for _, jj := range path {
				u[p[jj]] += delta
				v[jj] -= delta
			}
			d = deltaN
			j0 = j1
			if p[j0] == 0 {
				break
			}
			if !degraded && len(touched) >= limit {
				degraded = true
				// Materialize the dense state: ascending free list (j0 is
				// retired at the top of the next round, exactly like the
				// dense loop) and explicit minv/way for pure columns.
				for j := 1; j <= nc; j++ {
					if retireT[j] == rowE {
						continue
					}
					if j == j0 {
						k1 = len(free)
					}
					free = append(free, j)
					if touchT[j] != rowE {
						touchT[j] = rowE
						if aMin >= inf {
							minv[j] = inf
						} else {
							minv[j] = aMin - v[j]
							way[j] = aWay
						}
					}
				}
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
		// Repair the generator: retired columns' v changed while on the
		// alternating path; re-insert them at their new keys.
		if len(retJ) > 0 {
			a.repairNegV(nc, retJ, rowE)
			negKey, negCol = a.negKey[:nc], a.negCol[:nc]
		}
		a.retJ = retJ
	}
	return rounds
}

// repairNegV rebuilds the sorted (-v[j], j) generator after a row retired
// the columns in retJ (stamped with rowE in retireTick). One merge pass:
// stale entries are dropped by stamp, updated entries are merged back in
// sorted order. O(nc + len(retJ) log len(retJ)) via ping-pong buffers.
func (a *Arena) repairNegV(nc int, retJ []int, rowE int64) {
	nk, ncl := a.newKey[:0], a.newCol[:0]
	for _, j := range retJ {
		nk = append(nk, -a.v[j])
		ncl = append(ncl, j)
	}
	// Insertion sort by (key, col): retJ is short for typical rows.
	for i := 1; i < len(nk); i++ {
		k, c := nk[i], ncl[i]
		j := i - 1
		for j >= 0 && (nk[j] > k || (nk[j] == k && ncl[j] > c)) {
			nk[j+1], ncl[j+1] = nk[j], ncl[j]
			j--
		}
		nk[j+1], ncl[j+1] = k, c
	}
	bk, bc := a.negBufK[:0], a.negBufC[:0]
	ki := 0
	for i := 0; i < nc; i++ {
		j := a.negCol[i]
		if a.retireTick[j] == rowE {
			continue // re-inserted from nk/ncl below
		}
		key := a.negKey[i]
		for ki < len(nk) && (nk[ki] < key || (nk[ki] == key && ncl[ki] < j)) {
			bk = append(bk, nk[ki])
			bc = append(bc, ncl[ki])
			ki++
		}
		bk = append(bk, key)
		bc = append(bc, j)
	}
	for ki < len(nk) {
		bk = append(bk, nk[ki])
		bc = append(bc, ncl[ki])
		ki++
	}
	a.negKey, a.negBufK = bk, a.negKey
	a.negCol, a.negBufC = bc, a.negCol
	a.newKey, a.newCol = nk, ncl
}

// csrWeight returns the (max duplicate) weight of the compact pair (i, j),
// or 0 if absent. Used only during result extraction.
func (a *Arena) csrWeight(i, j int) int64 {
	var wt int64
	for k := a.csrOff[i-1]; k < a.csrOff[i]; k++ {
		if a.csrCol[k] == j && a.csrW[k] > wt {
			wt = a.csrW[k]
		}
	}
	return wt
}
