package matching

import (
	"encoding/binary"
	"testing"
)

// decodeFuzzInstance turns raw fuzz bytes into a bipartite instance: byte 0
// picks n in [1, 32], then each 4-byte chunk is one edge (from, to, 2-byte
// weight biased so some edges are non-positive and duplicates are common).
func decodeFuzzInstance(data []byte) (int, []Edge) {
	if len(data) == 0 {
		return 1, nil
	}
	n := int(data[0])%32 + 1
	data = data[1:]
	var edges []Edge
	for len(data) >= 4 {
		f := int(data[0]) % n
		t := int(data[1]) % n
		w := int64(binary.LittleEndian.Uint16(data[2:4])) - 8
		edges = append(edges, Edge{From: f, To: t, Weight: w})
		data = data[4:]
		if len(edges) == 512 {
			break
		}
	}
	return n, edges
}

// FuzzMaxWeightBipartite pushes random edge lists through the dense,
// sparse, and warm exact paths, asserting matching validity everywhere,
// bit-identity between dense and sparse, weight agreement for warm, and —
// on small instances — agreement with the brute-force oracle. The warm
// path is exercised twice: a recording call, then a second call with a
// mutated final row and an honest dirty hint.
func FuzzMaxWeightBipartite(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 1, 9, 0, 1, 0, 9, 0, 2, 3, 1, 0})
	f.Add([]byte{1, 0, 0, 8, 0, 0, 0, 7, 0})
	// All-non-positive boundary: weights <= 0 after the -8 bias.
	f.Add([]byte{6, 0, 1, 3, 0, 2, 3, 0, 0, 4, 5, 5, 0})
	// Wide instance with duplicates and heavy ties.
	f.Add([]byte{
		16,
		0, 1, 20, 0, 1, 0, 20, 0, 2, 1, 20, 0, 3, 1, 20, 0,
		4, 5, 20, 0, 5, 4, 20, 0, 6, 7, 255, 0, 7, 6, 255, 0,
		0, 1, 20, 0, 8, 8, 9, 0, 9, 9, 9, 0, 10, 8, 9, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, edges := decodeFuzzInstance(data)
		var a Arena
		dm, dw := a.MaxWeightBipartiteDense(n, edges)
		sm, sw := a.MaxWeightBipartiteSparse(n, edges)
		am, aw := a.MaxWeightBipartite(n, edges)
		if dw != sw || dw != aw {
			t.Fatalf("weight disagreement: dense=%d sparse=%d auto=%d", dw, sw, aw)
		}
		if len(dm) != len(sm) || len(dm) != len(am) {
			t.Fatalf("result size disagreement: %d/%d/%d", len(dm), len(sm), len(am))
		}
		for i := range dm {
			if dm[i] != sm[i] || dm[i] != am[i] {
				t.Fatalf("edge %d: dense %+v sparse %+v auto %+v", i, dm[i], sm[i], am[i])
			}
		}
		checkValidMatching(t, n, edges, dm, dw)

		var ws WarmState
		if _, ww := a.MaxWeightBipartiteWarm(n, edges, &ws, nil); ww != dw {
			t.Fatalf("warm cold weight %d != dense %d", ww, dw)
		}
		// Mutate row n-1 (replace its outgoing edges), warm-solve with an
		// honest dirty hint, and cross-check against a cold solve.
		mutated := edges[:0:0]
		for _, e := range edges {
			if e.From != n-1 {
				mutated = append(mutated, e)
			}
		}
		if n > 1 {
			mutated = append(mutated, Edge{From: n - 1, To: 0, Weight: int64(len(edges)%7) + 1})
		}
		wm, ww := a.MaxWeightBipartiteWarm(n, mutated, &ws, []int{n - 1})
		_, cw := a.MaxWeightBipartite(n, mutated)
		if ww != cw {
			t.Fatalf("warm weight %d != cold %d after mutation", ww, cw)
		}
		checkValidMatching(t, n, mutated, wm, ww)

		if len(edges) <= 10 && n <= 6 {
			if _, bw := BruteForceBipartite(n, edges); bw != dw {
				t.Fatalf("oracle weight %d != solver %d (n=%d edges=%v)", bw, dw, n, edges)
			}
		}
	})
}
