package fault

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzFaultTrace checks the fault-trace parser never panics on hostile
// input, and that anything it accepts is structurally sane and round-trips
// byte-stably through WriteJSON/ReadJSON.
func FuzzFaultTrace(f *testing.F) {
	f.Add(`{"events":[{"at":5,"kind":"link-down","from":0,"to":1}]}`)
	f.Add(`{"events":[{"at":0,"kind":"node-down","node":3},{"at":9,"kind":"node-up","node":3}],"delta_jitter":[0,2,0]}`)
	f.Add(`{"events":[],"delta_jitter":[]}`)
	f.Add(`{`)
	f.Add(`{"events":[{"at":-1,"kind":"link-down","from":0,"to":1}]}`)
	f.Add(`{"events":[{"at":3,"kind":"meteor-strike","node":2}]}`)
	f.Add(`{"events":[{"at":3,"kind":"link-up","from":4,"to":4}]}`)
	f.Add(`{"delta_jitter":[-7]}`)
	f.Add(`{"events":[{"at":9007199254740993,"kind":"node-up","node":9007199254740993}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// ReadJSON's documented guarantees on anything it accepts.
		for i, e := range tr.Events {
			if e.At < 0 {
				t.Fatalf("accepted event %d at negative slot %d", i, e.At)
			}
			if _, ok := kindNames[e.Kind]; !ok {
				t.Fatalf("accepted event %d with unknown kind %d", i, e.Kind)
			}
			if e.IsLink() && (e.From < 0 || e.To < 0 || e.From == e.To) {
				t.Fatalf("accepted event %d with bad link %d->%d", i, e.From, e.To)
			}
			if !e.IsLink() && e.Node < 0 {
				t.Fatalf("accepted event %d with negative node %d", i, e.Node)
			}
		}
		for k, j := range tr.DeltaJitter {
			if j < 0 {
				t.Fatalf("accepted negative jitter %d at reconfiguration %d", j, k)
			}
		}
		// Whatever parses must re-serialize and re-parse identically.
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		first := buf.String()
		again, err := ReadJSON(strings.NewReader(first))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := again.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if first != buf2.String() {
			t.Fatal("round trip is not byte-stable")
		}
		if len(again.Events) != len(tr.Events) || len(again.DeltaJitter) != len(tr.DeltaJitter) {
			t.Fatal("round trip changed the trace")
		}
	})
}
