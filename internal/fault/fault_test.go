package fault

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"octopus/internal/graph"
)

func edge(from, to int) graph.Edge { return graph.Edge{From: from, To: to} }

func TestCursorLinkLifecycle(t *testing.T) {
	tr := &Trace{Events: []Event{
		{At: 10, Kind: LinkDown, From: 0, To: 1},
		{At: 20, Kind: LinkUp, From: 0, To: 1},
	}}
	c := tr.Cursor()
	c.AdvanceTo(9)
	if !c.LinkUsable(edge(0, 1)) {
		t.Fatal("link down before its event")
	}
	c.AdvanceTo(10)
	if c.LinkUsable(edge(0, 1)) {
		t.Fatal("link up at its down slot")
	}
	if c.LinkUsable(edge(0, 1)) || !c.LinkUsable(edge(1, 0)) {
		t.Fatal("wrong link affected")
	}
	if got := c.NextChange(); got != 20 {
		t.Fatalf("NextChange = %d, want 20", got)
	}
	c.AdvanceTo(20)
	if !c.LinkUsable(edge(0, 1)) {
		t.Fatal("link still down after its up event")
	}
	if c.AnyDown() {
		t.Fatal("AnyDown after full recovery")
	}
	if got := c.NextChange(); got != math.MaxInt {
		t.Fatalf("NextChange after last event = %d", got)
	}
}

func TestCursorNodeTakesLinksDown(t *testing.T) {
	tr := &Trace{Events: []Event{{At: 5, Kind: NodeDown, Node: 2}}}
	c := tr.Cursor()
	c.AdvanceTo(5)
	if c.LinkUsable(edge(2, 3)) || c.LinkUsable(edge(1, 2)) {
		t.Fatal("links incident to a down node usable")
	}
	if !c.LinkUsable(edge(0, 1)) {
		t.Fatal("unrelated link affected")
	}
	if c.NodeUsable(2) || !c.NodeUsable(1) {
		t.Fatal("wrong node state")
	}
	if c.FailedNodes() != 1 || c.FailedLinks() != 0 {
		t.Fatalf("failed counts = %d nodes, %d links", c.FailedNodes(), c.FailedLinks())
	}
}

func TestCursorUnsortedEventsAndIdempotence(t *testing.T) {
	// Events arrive unsorted; duplicate downs and ups must not corrupt the
	// down-counter.
	tr := &Trace{Events: []Event{
		{At: 30, Kind: LinkUp, From: 0, To: 1},
		{At: 10, Kind: LinkDown, From: 0, To: 1},
		{At: 20, Kind: LinkDown, From: 0, To: 1},
		{At: 40, Kind: LinkUp, From: 0, To: 1},
		{At: 50, Kind: NodeUp, Node: 7}, // up for a node never down
	}}
	c := tr.Cursor()
	c.AdvanceTo(25)
	if c.LinkUsable(edge(0, 1)) {
		t.Fatal("link should be down at 25")
	}
	c.AdvanceTo(60)
	if c.AnyDown() {
		t.Fatal("cursor thinks something is still down")
	}
}

func TestCursorBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backwards advance")
		}
	}()
	c := (&Trace{}).Cursor()
	c.AdvanceTo(10)
	c.AdvanceTo(5)
}

func TestSurviving(t *testing.T) {
	g := graph.Complete(4)
	tr := &Trace{Events: []Event{
		{At: 0, Kind: LinkDown, From: 0, To: 1},
		{At: 0, Kind: NodeDown, Node: 3},
		{At: 100, Kind: NodeUp, Node: 3},
	}}
	s := tr.Surviving(g, 0)
	if s.HasEdge(0, 1) {
		t.Fatal("failed link survived")
	}
	if s.HasEdge(1, 0) {
		// 1->0 is a distinct directed link and stays up.
	} else {
		t.Fatal("reverse link should survive")
	}
	for _, v := range []int{0, 1, 2} {
		if s.HasEdge(v, 3) || s.HasEdge(3, v) {
			t.Fatal("link incident to a down node survived")
		}
	}
	if got := tr.Surviving(g, 100).M(); got != g.M()-1 {
		t.Fatalf("after node recovery %d links, want %d", got, g.M()-1)
	}
	// Nil trace: everything survives.
	var nilTrace *Trace
	if nilTrace.Surviving(g, 0).M() != g.M() {
		t.Fatal("nil trace dropped links")
	}
}

func TestJitterAndEmpty(t *testing.T) {
	tr := &Trace{DeltaJitter: []int{3, 0, 7}}
	for k, want := range map[int]int{-1: 0, 0: 3, 1: 0, 2: 7, 3: 0, 100: 0} {
		if got := tr.Jitter(k); got != want {
			t.Fatalf("Jitter(%d) = %d, want %d", k, got, want)
		}
	}
	if tr.Empty() {
		t.Fatal("jittered trace reported empty")
	}
	if !(&Trace{}).Empty() {
		t.Fatal("zero trace not empty")
	}
	var nilTrace *Trace
	if !nilTrace.Empty() || nilTrace.Jitter(0) != 0 {
		t.Fatal("nil trace misbehaves")
	}
}

func TestValidate(t *testing.T) {
	g := graph.Ring(4) // edges i -> i+1 mod 4 only
	ok := &Trace{
		Events:      []Event{{At: 0, Kind: LinkDown, From: 0, To: 1}, {At: 5, Kind: NodeDown, Node: 3}},
		DeltaJitter: []int{0, 2},
	}
	if err := ok.Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := []Trace{
		{Events: []Event{{At: -1, Kind: LinkDown, From: 0, To: 1}}},
		{Events: []Event{{At: 0, Kind: LinkDown, From: 1, To: 0}}}, // not a ring edge
		{Events: []Event{{At: 0, Kind: NodeDown, Node: 4}}},
		{Events: []Event{{At: 0, Kind: Kind(99), Node: 0}}},
		{DeltaJitter: []int{-1}},
	}
	for i := range bad {
		if err := bad[i].Validate(g); err == nil {
			t.Fatalf("bad trace %d accepted", i)
		}
	}
	var nilTrace *Trace
	if err := nilTrace.Validate(g); err != nil {
		t.Fatal("nil trace rejected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := &Trace{
		Events: []Event{
			{At: 0, Kind: LinkDown, From: 3, To: 7},
			{At: 12, Kind: NodeDown, Node: 5},
			{At: 40, Kind: LinkUp, From: 3, To: 7},
			{At: 90, Kind: NodeUp, Node: 5},
		},
		DeltaJitter: []int{0, 4, 0, 9},
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tr, back)
	}
}

func TestReadJSONRejectsHostileInput(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"unknown kind":  `{"events":[{"at":0,"kind":"meteor-strike"}]}`,
		"negative slot": `{"events":[{"at":-3,"kind":"link-down","from":0,"to":1}]}`,
		"negative from": `{"events":[{"at":0,"kind":"link-down","from":-1,"to":1}]}`,
		"self loop":     `{"events":[{"at":0,"kind":"link-up","from":2,"to":2}]}`,
		"negative node": `{"events":[{"at":0,"kind":"node-down","node":-2}]}`,
		"negative jit":  `{"events":[],"delta_jitter":[-5]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	tr := &Trace{Events: []Event{{At: 1, Kind: LinkDown, From: 0, To: 2}}}
	path := t.TempDir() + "/trace.json"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
