package fault

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"octopus/internal/graph"
)

func TestNodeLinksDownCoversIncidentSet(t *testing.T) {
	g := graph.Complete(5)
	evs := NodeLinksDown(g, 2, 7)
	// Complete(5): node 2 has 4 outgoing and 4 incoming links.
	if len(evs) != 8 {
		t.Fatalf("%d events, want 8", len(evs))
	}
	seen := map[graph.Edge]bool{}
	for _, e := range evs {
		if e.At != 7 || e.Kind != LinkDown {
			t.Fatalf("unexpected event %+v", e)
		}
		if e.From != 2 && e.To != 2 {
			t.Fatalf("event %+v not incident to node 2", e)
		}
		seen[graph.Edge{From: e.From, To: e.To}] = true
	}
	if len(seen) != 8 {
		t.Fatalf("duplicate links in burst: %v", evs)
	}
	// After the burst the node is isolated but still up: every incident
	// link is unusable, every other link survives.
	tr := &Trace{Events: evs}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	c := tr.Cursor()
	c.AdvanceTo(7)
	if !c.NodeUsable(2) {
		t.Fatal("correlated burst must leave the node itself up")
	}
	surviving := c.SurvivingOf(g)
	if got := surviving.M(); got != g.M()-8 {
		t.Fatalf("surviving fabric has %d links, want %d", got, g.M()-8)
	}
	if len(surviving.Out(2)) != 0 || len(surviving.In(2)) != 0 {
		t.Fatal("node 2 still has usable links after its burst")
	}
}

func TestCorrelatedTraceDownUpCycle(t *testing.T) {
	g := graph.Complete(4)
	tr := CorrelatedTrace(g, []int{1, 3}, 10, 50, 20)
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	c := tr.Cursor()
	c.AdvanceTo(9)
	if c.AnyDown() {
		t.Fatal("failures before the first burst")
	}
	c.AdvanceTo(10)
	if c.FailedLinks() != 6 {
		t.Fatalf("burst 0: %d failed links, want 6", c.FailedLinks())
	}
	c.AdvanceTo(30) // burst 0 restored at 10+20
	if c.AnyDown() {
		t.Fatalf("burst 0 not restored: %d links down", c.FailedLinks())
	}
	c.AdvanceTo(60) // burst 1 fires at 10+50
	if c.FailedLinks() != 6 {
		t.Fatalf("burst 1: %d failed links, want 6", c.FailedLinks())
	}
	c.AdvanceTo(80)
	if c.AnyDown() {
		t.Fatal("burst 1 not restored")
	}
}

func TestRandomCorrelatedTraceDeterministic(t *testing.T) {
	g := graph.ChordRing(12, 2, 5)
	a := RandomCorrelatedTrace(g, 4, 0, 100, 40, rand.New(rand.NewSource(9)))
	b := RandomCorrelatedTrace(g, 4, 0, 100, 40, rand.New(rand.NewSource(9)))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelatedTraceJSONRoundTrip(t *testing.T) {
	g := graph.ChordRing(8, 3)
	tr := CorrelatedTrace(g, []int{0, 5, 2}, 5, 30, 10)
	tr.DeltaJitter = []int{0, 3}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip changed the trace:\n%+v\nvs\n%+v", got, tr)
	}
	if err := got.Validate(g); err != nil {
		t.Fatal(err)
	}
}
