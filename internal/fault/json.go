package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonTrace is the serialized form of a Trace.
type jsonTrace struct {
	Events      []jsonEvent `json:"events"`
	DeltaJitter []int       `json:"delta_jitter,omitempty"`
}

type jsonEvent struct {
	At   int    `json:"at"`
	Kind string `json:"kind"`
	From int    `json:"from,omitempty"`
	To   int    `json:"to,omitempty"`
	Node int    `json:"node,omitempty"`
}

var kindNames = map[Kind]string{
	LinkDown: "link-down",
	LinkUp:   "link-up",
	NodeDown: "node-down",
	NodeUp:   "node-up",
}

var kindValues = map[string]Kind{
	"link-down": LinkDown,
	"link-up":   LinkUp,
	"node-down": NodeDown,
	"node-up":   NodeUp,
}

// WriteJSON serializes the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	js := jsonTrace{DeltaJitter: t.DeltaJitter}
	for _, e := range t.Events {
		je := jsonEvent{At: e.At, Kind: kindNames[e.Kind]}
		if e.IsLink() {
			je.From, je.To = e.From, e.To
		} else {
			je.Node = e.Node
		}
		js.Events = append(js.Events, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(js)
}

// ReadJSON parses a failure trace from JSON and checks every structural
// invariant that does not require a fabric: known event kinds, non-negative
// slots, non-negative node and port indexes, no self-loop links, and
// non-negative jitter. Fabric validation (links exist, nodes in range) is
// the caller's job via Validate. Untrusted input never panics: it either
// decodes to a structurally valid trace or returns an error.
func ReadJSON(r io.Reader) (*Trace, error) {
	var js jsonTrace
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("fault: decoding trace: %w", err)
	}
	t := &Trace{DeltaJitter: js.DeltaJitter}
	for i, je := range js.Events {
		kind, ok := kindValues[je.Kind]
		if !ok {
			return nil, fmt.Errorf("fault: event %d has unknown kind %q", i, je.Kind)
		}
		if je.At < 0 {
			return nil, fmt.Errorf("fault: event %d at negative slot %d", i, je.At)
		}
		e := Event{At: je.At, Kind: kind}
		if e.IsLink() {
			if je.From < 0 || je.To < 0 {
				return nil, fmt.Errorf("fault: event %d has negative link endpoint %d->%d", i, je.From, je.To)
			}
			if je.From == je.To {
				return nil, fmt.Errorf("fault: event %d names self-loop link %d->%d", i, je.From, je.To)
			}
			e.From, e.To = je.From, je.To
		} else {
			if je.Node < 0 {
				return nil, fmt.Errorf("fault: event %d has negative node %d", i, je.Node)
			}
			e.Node = je.Node
		}
		t.Events = append(t.Events, e)
	}
	for k, j := range t.DeltaJitter {
		if j < 0 {
			return nil, fmt.Errorf("fault: negative delta jitter %d at reconfiguration %d", j, k)
		}
	}
	return t, nil
}

// SaveFile writes the trace to a JSON file.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a failure trace from a JSON file.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
