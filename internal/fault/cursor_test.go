package fault

import (
	"math"
	"testing"

	"octopus/internal/graph"
)

// TestCursorEmptyTrace pins the boundary behaviour of cursors over traces
// that change nothing: nil and zero-value traces must both yield a cursor
// that reports everything usable at every slot and never announces a change.
func TestCursorEmptyTrace(t *testing.T) {
	g := graph.Complete(4)
	for name, tr := range map[string]*Trace{"nil": nil, "empty": {}} {
		c := tr.Cursor()
		if c.NextChange() != math.MaxInt {
			t.Errorf("%s trace: NextChange = %d before any advance, want MaxInt", name, c.NextChange())
		}
		for _, slot := range []int{0, 0, 1, 1 << 40} {
			c.AdvanceTo(slot)
			if c.AnyDown() {
				t.Errorf("%s trace: AnyDown at slot %d", name, slot)
			}
			if !c.LinkUsable(graph.Edge{From: 0, To: 1}) || !c.NodeUsable(3) {
				t.Errorf("%s trace: link or node unusable at slot %d", name, slot)
			}
		}
		if s := c.SurvivingOf(g); s.M() != g.M() {
			t.Errorf("%s trace: surviving fabric lost edges: %d of %d", name, s.M(), g.M())
		}
	}
}

// TestCursorSingleEvent walks a one-event trace across the event boundary:
// the state a slot-s event establishes must hold at slot s itself (not s+1)
// and the cursor must report no further changes afterwards.
func TestCursorSingleEvent(t *testing.T) {
	tr := &Trace{Events: []Event{{At: 5, Kind: LinkDown, From: 0, To: 1}}}
	c := tr.Cursor()
	e := graph.Edge{From: 0, To: 1}
	c.AdvanceTo(4)
	if !c.LinkUsable(e) {
		t.Fatal("link down before its event slot")
	}
	if c.NextChange() != 5 {
		t.Fatalf("NextChange = %d at slot 4, want 5", c.NextChange())
	}
	c.AdvanceTo(5)
	if c.LinkUsable(e) {
		t.Fatal("link still usable at its down slot")
	}
	if c.FailedLinks() != 1 || !c.AnyDown() {
		t.Fatalf("FailedLinks = %d, AnyDown = %v after the event", c.FailedLinks(), c.AnyDown())
	}
	if c.NextChange() != math.MaxInt {
		t.Fatalf("NextChange = %d after the only event, want MaxInt", c.NextChange())
	}
	// Re-advancing to the same slot must be a no-op, not a re-application.
	c.AdvanceTo(5)
	if c.FailedLinks() != 1 {
		t.Fatalf("re-advance changed state: FailedLinks = %d", c.FailedLinks())
	}
}

// TestCursorEventsPastHorizon covers traces whose events all lie beyond the
// slots a consumer visits: the cursor must keep answering "usable" and keep
// pointing at the future event without ever applying it.
func TestCursorEventsPastHorizon(t *testing.T) {
	tr := &Trace{Events: []Event{
		{At: 1000, Kind: NodeDown, Node: 2},
		{At: 2000, Kind: LinkDown, From: 0, To: 1},
	}}
	c := tr.Cursor()
	for _, slot := range []int{0, 100, 999} {
		c.AdvanceTo(slot)
		if c.AnyDown() {
			t.Fatalf("slot %d: events past the horizon applied early", slot)
		}
		if c.NextChange() != 1000 {
			t.Fatalf("slot %d: NextChange = %d, want 1000", slot, c.NextChange())
		}
	}
}

// Backwards advances (TestCursorBackwardsPanics) and duplicate-event
// idempotence (TestCursorUnsortedEventsAndIdempotence) are covered in
// fault_test.go.
