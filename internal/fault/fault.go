// Package fault models deterministic fabric-failure traces for
// circuit-switched networks: timed link-down/link-up and node-down/node-up
// events, plus optional per-reconfiguration jitter on the delay Δ. The
// paper's target fabrics (free-space optics, 60GHz wireless, §2) lose links
// routinely; this package lets the simulator and the online controller
// replay those failures reproducibly — the same (seed, trace) pair always
// yields the same run.
//
// A Trace is a pure description of what fails when. Consumers walk it with
// a Cursor, which applies events monotonically in slot order and answers
// "is this link usable at slot t?" queries, or snapshot the surviving
// fabric at a slot with Surviving. A down node takes all of its incident
// links down; a link is usable only when the link itself and both of its
// endpoints are up.
package fault

import (
	"fmt"
	"math"
	"sort"

	"octopus/internal/graph"
)

// Kind enumerates failure-trace event types.
type Kind int

const (
	// LinkDown takes the directed link From->To out of service.
	LinkDown Kind = iota
	// LinkUp restores the directed link From->To.
	LinkUp
	// NodeDown takes a node (and implicitly all its incident links) out of
	// service.
	NodeDown
	// NodeUp restores a node.
	NodeUp
)

// String returns the JSON spelling of the kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one failure-trace event, taking effect at slot At: the state it
// establishes holds for slot At itself and onward. Link events use From/To;
// node events use Node.
type Event struct {
	At       int
	Kind     Kind
	From, To int // link events
	Node     int // node events
}

// IsLink reports whether the event concerns a link (as opposed to a node).
func (e Event) IsLink() bool { return e.Kind == LinkDown || e.Kind == LinkUp }

// Trace is a deterministic failure schedule. Events need not be sorted;
// ties at the same slot apply in listed order. DeltaJitter[k], when present,
// adds that many extra slots to the k-th reconfiguration delay of a replay
// (or the k-th epoch of an online run); indexes past the end of the slice
// jitter by 0.
type Trace struct {
	Events      []Event
	DeltaJitter []int
}

// Empty reports whether the trace changes nothing: no events and no jitter.
func (t *Trace) Empty() bool {
	return t == nil || (len(t.Events) == 0 && len(t.DeltaJitter) == 0)
}

// Jitter returns the extra reconfiguration-delay slots of the k-th
// reconfiguration (0 beyond the configured jitter, or for a nil trace).
func (t *Trace) Jitter(k int) int {
	if t == nil || k < 0 || k >= len(t.DeltaJitter) {
		return 0
	}
	return t.DeltaJitter[k]
}

// Validate checks the trace against fabric g: event slots non-negative,
// jitter non-negative, node references inside the fabric, and link events
// naming actual fabric links. A trace that fails Validate would otherwise
// silently never fire, which almost always indicates a mismatched fabric.
func (t *Trace) Validate(g *graph.Digraph) error {
	if t == nil {
		return nil
	}
	for i, e := range t.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %d at negative slot %d", i, e.At)
		}
		switch e.Kind {
		case LinkDown, LinkUp:
			if !g.HasEdge(e.From, e.To) {
				return fmt.Errorf("fault: event %d (%s) names absent link %d->%d", i, e.Kind, e.From, e.To)
			}
		case NodeDown, NodeUp:
			if e.Node < 0 || e.Node >= g.N() {
				return fmt.Errorf("fault: event %d (%s) names node %d outside fabric [0,%d)", i, e.Kind, e.Node, g.N())
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	for k, j := range t.DeltaJitter {
		if j < 0 {
			return fmt.Errorf("fault: negative delta jitter %d at reconfiguration %d", j, k)
		}
	}
	return nil
}

// Surviving returns the subgraph of g that is up at the given slot: every
// edge except failed links and links incident to failed nodes, considering
// all events with At <= slot.
func (t *Trace) Surviving(g *graph.Digraph, slot int) *graph.Digraph {
	c := t.Cursor()
	c.AdvanceTo(slot)
	return c.SurvivingOf(g)
}

// Cursor returns a new cursor positioned before slot 0. A nil trace yields
// a cursor over no events.
func (t *Trace) Cursor() *Cursor {
	c := &Cursor{
		linkDown: make(map[graph.Edge]bool),
		nodeDown: make(map[int]bool),
		now:      -1,
	}
	if t != nil {
		c.events = append([]Event(nil), t.Events...)
		sort.SliceStable(c.events, func(i, j int) bool { return c.events[i].At < c.events[j].At })
	}
	return c
}

// Cursor walks a trace monotonically through time, maintaining the set of
// currently failed links and nodes.
type Cursor struct {
	events   []Event // sorted by At, stable
	next     int     // first unapplied event
	linkDown map[graph.Edge]bool
	nodeDown map[int]bool
	now      int
	downs    int // number of currently down links + nodes
}

// AdvanceTo applies every event with At <= slot. Slots must be visited in
// non-decreasing order; advancing backwards panics, because replaying a
// trace out of order would silently desynchronize the failure state.
func (c *Cursor) AdvanceTo(slot int) {
	if slot < c.now {
		panic(fmt.Sprintf("fault: cursor moved backwards from slot %d to %d", c.now, slot))
	}
	c.now = slot
	for c.next < len(c.events) && c.events[c.next].At <= slot {
		e := c.events[c.next]
		c.next++
		switch e.Kind {
		case LinkDown:
			key := graph.Edge{From: e.From, To: e.To}
			if !c.linkDown[key] {
				c.linkDown[key] = true
				c.downs++
			}
		case LinkUp:
			key := graph.Edge{From: e.From, To: e.To}
			if c.linkDown[key] {
				delete(c.linkDown, key)
				c.downs--
			}
		case NodeDown:
			if !c.nodeDown[e.Node] {
				c.nodeDown[e.Node] = true
				c.downs++
			}
		case NodeUp:
			if c.nodeDown[e.Node] {
				delete(c.nodeDown, e.Node)
				c.downs--
			}
		}
	}
}

// NextChange returns the slot of the next unapplied event, or math.MaxInt
// when the trace holds no further events. After AdvanceTo(s) the returned
// slot is strictly greater than s.
func (c *Cursor) NextChange() int {
	if c.next >= len(c.events) {
		return math.MaxInt
	}
	return c.events[c.next].At
}

// LinkUsable reports whether the link e is usable at the cursor's current
// slot: the link itself is up and so are both of its endpoints.
func (c *Cursor) LinkUsable(e graph.Edge) bool {
	if c.downs == 0 {
		return true
	}
	return !c.linkDown[e] && !c.nodeDown[e.From] && !c.nodeDown[e.To]
}

// NodeUsable reports whether node v is up at the cursor's current slot.
func (c *Cursor) NodeUsable(v int) bool { return !c.nodeDown[v] }

// AnyDown reports whether any link or node is currently failed.
func (c *Cursor) AnyDown() bool { return c.downs > 0 }

// FailedLinks returns the number of currently failed links (not counting
// links implied down by failed nodes).
func (c *Cursor) FailedLinks() int { return len(c.linkDown) }

// FailedNodes returns the number of currently failed nodes.
func (c *Cursor) FailedNodes() int { return len(c.nodeDown) }

// SurvivingOf snapshots the subgraph of g that is usable at the cursor's
// current slot.
func (c *Cursor) SurvivingOf(g *graph.Digraph) *graph.Digraph {
	return g.Subgraph(c.LinkUsable)
}
