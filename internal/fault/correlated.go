// Correlated-failure generation: a node's entire incident link set going
// down in one burst, the failure mode that stresses proactive multipath
// redundancy hardest. Unlike a NodeDown event — which also removes the node
// as a buffering waypoint — a correlated link burst leaves the node up, so
// in-flight packets parked there survive and only the spatial diversity of
// the provisioned routes decides whether traffic keeps flowing.
package fault

import (
	"math/rand"

	"octopus/internal/graph"
)

// NodeLinksDown returns one LinkDown event at slot at for every fabric link
// incident to node (incoming and outgoing), in deterministic order:
// outgoing links by ascending neighbor, then incoming links by ascending
// neighbor.
func NodeLinksDown(g *graph.Digraph, node, at int) []Event {
	return nodeLinkEvents(g, node, at, LinkDown)
}

// NodeLinksUp returns the matching LinkUp burst restoring every link
// incident to node at slot at, in the same deterministic order as
// NodeLinksDown.
func NodeLinksUp(g *graph.Digraph, node, at int) []Event {
	return nodeLinkEvents(g, node, at, LinkUp)
}

func nodeLinkEvents(g *graph.Digraph, node, at int, kind Kind) []Event {
	var evs []Event
	for _, to := range g.Out(node) {
		evs = append(evs, Event{At: at, Kind: kind, From: node, To: to})
	}
	for _, from := range g.In(node) {
		evs = append(evs, Event{At: at, Kind: kind, From: from, To: node})
	}
	return evs
}

// CorrelatedTrace builds a deterministic failure trace of correlated
// bursts: burst i takes down every link incident to nodes[i] at slot
// start + i*period and restores the same links duration slots later.
// Bursts may overlap when duration exceeds period; a link shared by two
// overlapping bursts (incident to both victims) comes back at the first
// burst's restore slot — events apply in slot order and are not
// reference-counted. The trace depends only on (g, nodes, start, period,
// duration).
func CorrelatedTrace(g *graph.Digraph, nodes []int, start, period, duration int) *Trace {
	t := &Trace{}
	for i, node := range nodes {
		down := start + i*period
		t.Events = append(t.Events, NodeLinksDown(g, node, down)...)
		t.Events = append(t.Events, NodeLinksUp(g, node, down+duration)...)
	}
	return t
}

// RandomCorrelatedTrace draws bursts victim nodes from rng and builds the
// corresponding CorrelatedTrace. The same (g, bursts, start, period,
// duration, seed) always yields the same trace.
func RandomCorrelatedTrace(g *graph.Digraph, bursts, start, period, duration int, rng *rand.Rand) *Trace {
	nodes := make([]int, bursts)
	for i := range nodes {
		nodes[i] = rng.Intn(g.N())
	}
	return CorrelatedTrace(g, nodes, start, period, duration)
}
