// Package hybrid implements the §7 extensions of the paper: scheduling in
// a hybrid circuit/packet network, and the makespan-minimization problem.
//
// A hybrid fabric pairs the high-bandwidth circuit-switched network with a
// low-bandwidth (typically an order of magnitude slower) packet-switched
// network. The paper's strategy: first route as much of the traffic as
// possible over the packet network, then run Octopus (or Octopus+) on the
// remainder; the combined scheme inherits Octopus's guarantee.
package hybrid

import (
	"errors"
	"fmt"
	"sort"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/traffic"
)

// Result is the outcome of hybrid scheduling.
type Result struct {
	// PacketDelivered is the number of packets served by the
	// packet-switched network within the window.
	PacketDelivered int
	// Circuit is the Octopus result over the residual load (nil when the
	// packet network absorbed everything).
	Circuit *core.Result
	// Residual is the load handed to the circuit scheduler after the packet
	// network absorbed its share (nil when nothing remained); Circuit's
	// schedule is validated against it.
	Residual *traffic.Load
	// TotalPackets is the size of the offered load.
	TotalPackets int
}

// Delivered returns the total packets delivered across both networks.
func (r *Result) Delivered() int {
	d := r.PacketDelivered
	if r.Circuit != nil {
		d += r.Circuit.Delivered
	}
	return d
}

// DeliveredFraction returns Delivered / TotalPackets.
func (r *Result) DeliveredFraction() float64 {
	if r.TotalPackets == 0 {
		return 0
	}
	return float64(r.Delivered()) / float64(r.TotalPackets)
}

// Schedule plans a hybrid run: the packet network (modeled as a
// full-bisection fabric whose per-port line rate is packetRate packets per
// slot, typically 0.1) first absorbs traffic subject to per-port ingress
// and egress budgets of packetRate·Window packets, preferring small flows
// (the classic hybrid split: short flows to the packet network, large
// bursts to the circuit network); Octopus then schedules the remainder.
func Schedule(g *graph.Digraph, load *traffic.Load, opt core.Options, packetRate float64) (*Result, error) {
	if packetRate < 0 {
		return nil, errors.New("hybrid: negative packet rate")
	}
	if err := load.Validate(g); err != nil {
		return nil, err
	}
	res := &Result{TotalPackets: load.TotalPackets()}
	budget := int(packetRate * float64(opt.Window))
	outLeft := make([]int, g.N())
	inLeft := make([]int, g.N())
	for i := range outLeft {
		outLeft[i] = budget
		inLeft[i] = budget
	}
	// Smallest flows first: they benefit most from the always-on packet
	// network and cost the circuit network the most overhead.
	order := make([]int, len(load.Flows))
	for i := range order {
		order[i] = i
	}
	sortByFlowSize(load, order)

	residual := &traffic.Load{}
	for _, i := range order {
		f := load.Flows[i]
		take := f.Size
		if take > outLeft[f.Src] {
			take = outLeft[f.Src]
		}
		if take > inLeft[f.Dst] {
			take = inLeft[f.Dst]
		}
		if take > 0 {
			outLeft[f.Src] -= take
			inLeft[f.Dst] -= take
			res.PacketDelivered += take
			f.Size -= take
		}
		if f.Size > 0 {
			residual.Flows = append(residual.Flows, f)
		}
	}
	// Keep flow-ID order for the circuit scheduler's priority scheme.
	sortByFlowID(residual)
	if len(residual.Flows) == 0 {
		return res, nil
	}
	s, err := core.New(g, residual, opt)
	if err != nil {
		return nil, err
	}
	cres, err := s.Run()
	if err != nil {
		return nil, err
	}
	res.Circuit = cres
	res.Residual = residual
	return res, nil
}

func sortByFlowSize(load *traffic.Load, order []int) {
	sort.Slice(order, func(a, b int) bool {
		fa, fb := &load.Flows[order[a]], &load.Flows[order[b]]
		if fa.Size != fb.Size {
			return fa.Size < fb.Size
		}
		return fa.ID < fb.ID
	})
}

func sortByFlowID(load *traffic.Load) {
	sort.Slice(load.Flows, func(a, b int) bool {
		return load.Flows[a].ID < load.Flows[b].ID
	})
}

// Makespan solves the makespan-minimization problem of §7: the smallest
// window W that fully serves the load, found by binary search over W with
// Octopus as the feasibility oracle. opt.Window is ignored; the other
// options select the Octopus variant. Returns the minimal window and the
// corresponding result.
func Makespan(g *graph.Digraph, load *traffic.Load, opt core.Options) (int, *core.Result, error) {
	total := load.TotalPackets()
	if total == 0 {
		return 0, nil, errors.New("hybrid: empty load")
	}
	feasible := func(w int) (*core.Result, error) {
		o := opt
		o.Window = w
		s, err := core.New(g, load, o)
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		if res.Pending == 0 {
			return res, nil
		}
		return nil, nil
	}
	// Exponential search for an upper bound.
	lo := opt.Delta + 1
	hi := lo + opt.Delta + load.TotalHops() // serve one giant matching at a time
	var hiRes *core.Result
	for {
		res, err := feasible(hi)
		if err != nil {
			return 0, nil, err
		}
		if res != nil {
			hiRes = res
			break
		}
		if hi > load.TotalHops()*(opt.Delta+2)+opt.Delta+1 {
			return 0, nil, fmt.Errorf("hybrid: no feasible window found up to %d", hi)
		}
		hi *= 2
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		res, err := feasible(mid)
		if err != nil {
			return 0, nil, err
		}
		if res != nil {
			hi = mid
			hiRes = res
		} else {
			lo = mid + 1
		}
	}
	return hi, hiRes, nil
}
