package hybrid

import (
	"math/rand"
	"testing"

	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/traffic"
	"octopus/internal/verify"
)

func synthetic(t *testing.T, seed int64, n, window int) (*graph.Digraph, *traffic.Load) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.Complete(n)
	load, err := traffic.Synthetic(g, traffic.DefaultSyntheticParams(n, window), rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, load
}

func TestHybridImprovesOnCircuitOnly(t *testing.T) {
	g, load := synthetic(t, 1, 10, 300)
	opt := core.Options{Window: 300, Delta: 10}
	circuitOnly, err := Schedule(g, load.Clone(), opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Schedule(g, load.Clone(), opt, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if circuitOnly.PacketDelivered != 0 {
		t.Fatal("zero-rate packet network served packets")
	}
	if hybrid.Delivered() <= circuitOnly.Delivered() {
		t.Fatalf("hybrid (%d) not above circuit-only (%d)", hybrid.Delivered(), circuitOnly.Delivered())
	}
	if hybrid.Delivered() > hybrid.TotalPackets {
		t.Fatal("delivered more than offered")
	}
}

func TestHybridBudgets(t *testing.T) {
	// Packet network budget = rate * window per port; one flow of 100
	// packets with rate 0.1 and window 200 -> 20 packets absorbed.
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 100, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	res, err := Schedule(g, load, core.Options{Window: 200, Delta: 10}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketDelivered != 20 {
		t.Fatalf("PacketDelivered = %d, want 20", res.PacketDelivered)
	}
	// The remaining 80 fit easily in the circuit window.
	if res.Delivered() != 100 {
		t.Fatalf("Delivered = %d, want 100", res.Delivered())
	}
}

func TestHybridSmallFlowsFirst(t *testing.T) {
	// Two flows share a source port; only the small one fits the packet
	// budget and must be chosen first.
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 1000, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
		{ID: 2, Size: 5, Src: 0, Dst: 2, Routes: []traffic.Route{{0, 2}}},
	}}
	res, err := Schedule(g, load, core.Options{Window: 100, Delta: 10}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Budget = 10 per port: flow 2 (size 5) fully absorbed, then 5 more of
	// flow 1.
	if res.PacketDelivered != 10 {
		t.Fatalf("PacketDelivered = %d, want 10", res.PacketDelivered)
	}
}

func TestHybridAbsorbsEverything(t *testing.T) {
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	res, err := Schedule(g, load, core.Options{Window: 100, Delta: 10}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit != nil {
		t.Fatal("circuit scheduler ran for fully absorbed load")
	}
	if res.Delivered() != 5 || res.DeliveredFraction() != 1 {
		t.Fatalf("Delivered = %d", res.Delivered())
	}
}

func TestHybridRejectsNegativeRate(t *testing.T) {
	g := graph.Complete(3)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 5, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	if _, err := Schedule(g, load, core.Options{Window: 100, Delta: 10}, -1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestMakespan(t *testing.T) {
	g, load := synthetic(t, 2, 8, 60)
	w, res, err := Makespan(g, load, core.Options{Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Pending != 0 {
		t.Fatalf("makespan result incomplete: %+v", res)
	}
	if res.Schedule.Cost() > w {
		t.Fatalf("schedule cost %d exceeds makespan %d", res.Schedule.Cost(), w)
	}
	// Minimality: one slot less must be infeasible.
	o := core.Options{Delta: 5, Window: w - 1}
	s, err := core.New(g, load, o)
	if err != nil {
		t.Fatal(err)
	}
	shorter, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if shorter.Pending == 0 {
		t.Fatalf("window %d also fully serves; makespan %d not minimal", w-1, w)
	}
}

func TestMakespanSingleFlow(t *testing.T) {
	// One 1-hop flow of s packets with delay Δ: makespan is exactly s+Δ.
	g := graph.Complete(2)
	load := &traffic.Load{Flows: []traffic.Flow{
		{ID: 1, Size: 17, Src: 0, Dst: 1, Routes: []traffic.Route{{0, 1}}},
	}}
	w, _, err := Makespan(g, load, core.Options{Delta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w != 20 {
		t.Fatalf("makespan = %d, want 20", w)
	}
}

func TestMakespanEmptyLoad(t *testing.T) {
	g := graph.Complete(2)
	if _, _, err := Makespan(g, &traffic.Load{}, core.Options{Delta: 1}); err == nil {
		t.Fatal("empty load accepted")
	}
}

// TestCircuitScheduleValidates audits the circuit-side schedule with the
// independent validator: it must be feasible for the residual load, with
// the plan's claimed metrics matching the replay.
func TestCircuitScheduleValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		inst := verify.RandomInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		inst = inst.SingleRoute()
		res, err := Schedule(inst.G, inst.Load.Clone(), core.Options{Window: inst.Window, Delta: inst.Delta}, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Circuit == nil {
			continue // packet network absorbed everything
		}
		if res.Residual == nil {
			t.Fatal("circuit result without residual load")
		}
		_, err = verify.Schedule(inst.G, res.Residual, res.Circuit.Schedule, verify.Options{
			Window: inst.Window,
			Claim: &verify.Claim{
				Delivered: res.Circuit.Delivered,
				Hops:      res.Circuit.Hops,
				Psi:       res.Circuit.Psi,
			},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestMakespanScheduleValidates checks the minimal-window result against
// the validator: full delivery within exactly the returned window.
func TestMakespanScheduleValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		inst := verify.RandomTinyInstance(rng)
		if len(inst.Load.Flows) == 0 {
			continue
		}
		w, res, err := Makespan(inst.G, inst.Load, core.Options{Delta: inst.Delta})
		if err != nil {
			t.Fatal(err)
		}
		if res.Pending != 0 {
			t.Fatalf("trial %d: makespan result leaves %d pending", trial, res.Pending)
		}
		rep, err := verify.Schedule(inst.G, inst.Load, res.Schedule, verify.Options{
			Window: w,
			Claim:  &verify.Claim{Delivered: res.Delivered, Hops: res.Hops, Psi: res.Psi},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.Delivered != inst.Load.TotalPackets() {
			t.Fatalf("trial %d: delivered %d of %d within makespan window %d",
				trial, rep.Delivered, inst.Load.TotalPackets(), w)
		}
	}
}
