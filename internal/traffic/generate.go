package traffic

import (
	"fmt"
	"math/rand"

	"octopus/internal/graph"
)

// SyntheticParams configures the synthetic data-center workload of the
// paper's §8, which follows the Solstice/Eclipse construction: the traffic
// matrix is a sum of NL "large" random permutation matrices carrying CL
// total packets per port and NS "small" ones carrying CS, based on the
// published characteristics of university and DCTCP traces.
type SyntheticParams struct {
	NL, NS int // number of large/small flows per input (and output) port
	CL, CS int // total large/small traffic per port, in packets

	// MinHops/MaxHops bound flow route lengths; flows are spread evenly
	// across the lengths in [MinHops, MaxHops] (the paper uses 1..3 with
	// equal counts). FixedHops > 0 forces every route to that length
	// (Fig 7b's uniform-route-length setting).
	MinHops, MaxHops int
	FixedHops        int

	// RouteChoices is the number of candidate routes per flow; 1 (or 0)
	// yields the single-route MHS setting, larger values the Octopus+
	// joint routing/scheduling setting (Fig 9b uses 10).
	RouteChoices int
}

// DefaultSyntheticParams returns the paper's defaults for an n-node
// network: at n=100, 4 large and 12 small flows per port with a 70/30 split
// of window-sized per-port traffic; the flow counts scale linearly with n.
func DefaultSyntheticParams(n, window int) SyntheticParams {
	nl := 4 * n / 100
	ns := 12 * n / 100
	if nl < 1 {
		nl = 1
	}
	if ns < 1 {
		ns = 1
	}
	return SyntheticParams{
		NL: nl, NS: ns,
		CL: window * 7 / 10, CS: window * 3 / 10,
		MinHops: 1, MaxHops: 3,
	}
}

// Synthetic generates a synthetic load over fabric g per params p.
func Synthetic(g *graph.Digraph, p SyntheticParams, rng *rand.Rand) (*Load, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 nodes, got %d", n)
	}
	load := &Load{}
	nextID := 0
	add := func(count, total int) error {
		for k := 0; k < count; k++ {
			size := total / count
			if k < total%count {
				size++
			}
			if size == 0 {
				continue
			}
			perm := cyclicPerm(n, rng)
			for src, dst := range perm {
				routes, err := sampleRoutes(g, src, dst, nextID, p, rng)
				if err != nil {
					return err
				}
				load.Flows = append(load.Flows, Flow{
					ID: nextID, Size: size, Src: src, Dst: dst, Routes: routes,
				})
				nextID++
			}
		}
		return nil
	}
	if err := add(p.NL, p.CL); err != nil {
		return nil, err
	}
	if err := add(p.NS, p.CS); err != nil {
		return nil, err
	}
	return load, nil
}

// sampleRoutes draws the candidate route set for one flow.
func sampleRoutes(g *graph.Digraph, src, dst, flowIdx int, p SyntheticParams, rng *rand.Rand) ([]Route, error) {
	choices := p.RouteChoices
	if choices < 1 {
		choices = 1
	}
	hopsFor := func(i int) int {
		if p.FixedHops > 0 {
			return p.FixedHops
		}
		lo, hi := p.MinHops, p.MaxHops
		if lo < 1 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		return lo + (flowIdx+i)%(hi-lo+1)
	}
	var routes []Route
	for i := 0; i < choices; i++ {
		r, ok := RandomRoute(g, src, dst, hopsFor(i), rng)
		if !ok {
			// Fall back to a shortest route; give up only if disconnected.
			r, ok = ShortestRoute(g, src, dst)
			if !ok {
				return nil, fmt.Errorf("%w: %d->%d", ErrNoRoute, src, dst)
			}
		}
		dup := false
		for _, prev := range routes {
			if prev.Equal(r) {
				dup = true
				break
			}
		}
		if !dup {
			routes = append(routes, r)
		}
	}
	return routes, nil
}

// cyclicPerm returns a uniform random cyclic permutation of 0..n-1
// (Sattolo's algorithm), guaranteeing no fixed points so that no flow has
// src == dst.
func cyclicPerm(n int, rng *rand.Rand) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RandomRoute samples a route of exactly the given hop count from src to
// dst in g, trying random intermediate nodes. It reports false if no route
// was found within a bounded number of attempts (or if hops is 1 and the
// direct edge is absent).
func RandomRoute(g *graph.Digraph, src, dst, hops int, rng *rand.Rand) (Route, bool) {
	if hops < 1 || hops > MaxRouteLen || src == dst {
		return nil, false
	}
	if hops == 1 {
		if g.HasEdge(src, dst) {
			return Route{src, dst}, true
		}
		return nil, false
	}
	const tries = 64
attempt:
	for t := 0; t < tries; t++ {
		route := make(Route, 0, hops+1)
		route = append(route, src)
		used := map[int]bool{src: true, dst: true}
		cur := src
		for k := 1; k < hops; k++ {
			// Pick a random out-neighbor not yet used; bias nothing else.
			nbrs := g.Out(cur)
			if len(nbrs) == 0 {
				continue attempt
			}
			off := rng.Intn(len(nbrs))
			next := -1
			for d := 0; d < len(nbrs); d++ {
				cand := nbrs[(off+d)%len(nbrs)]
				if !used[cand] {
					next = cand
					break
				}
			}
			if next < 0 {
				continue attempt
			}
			route = append(route, next)
			used[next] = true
			cur = next
		}
		if g.HasEdge(cur, dst) {
			route = append(route, dst)
			return route, true
		}
	}
	return nil, false
}

// ShortestRoute returns a BFS shortest route from src to dst in g, if one
// exists with at most MaxRouteLen hops.
func ShortestRoute(g *graph.Digraph, src, dst int) (Route, bool) {
	if src == dst {
		return nil, false
	}
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	frontier := []int{src}
	for depth := 0; depth < MaxRouteLen && len(frontier) > 0; depth++ {
		var next []int
		for _, u := range frontier {
			for _, v := range g.Out(u) {
				if prev[v] != -1 {
					continue
				}
				prev[v] = u
				if v == dst {
					var route Route
					for x := dst; x != src; x = prev[x] {
						route = append(route, x)
					}
					route = append(route, src)
					for i, j := 0, len(route)-1; i < j; i, j = i+1, j-1 {
						route[i], route[j] = route[j], route[i]
					}
					return route, true
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil, false
}
