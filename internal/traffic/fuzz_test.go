package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the load parser never panics and that everything it
// accepts round-trips.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"flows":[{"id":1,"size":5,"src":0,"dst":2,"routes":[[0,1,2]]}]}`)
	f.Add(`{"flows":[]}`)
	f.Add(`{`)
	f.Add(`{"flows":[{"id":1,"size":-5,"src":0,"dst":2,"routes":[[0,2]]}]}`)
	f.Add(`{"flows":[{"id":1,"size":5,"src":0,"dst":2,"routes":[[0]],"weight_hops":99}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		load, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must re-serialize and re-parse identically in
		// flow count and packet totals.
		var buf bytes.Buffer
		if err := load.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted load failed to serialize: %v", err)
		}
		again, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(again.Flows) != len(load.Flows) || again.TotalPackets() != load.TotalPackets() {
			t.Fatal("round trip changed the load")
		}
	})
}

// FuzzReadDemandCSV checks the CSV parser never panics and only accepts
// square matrices of finite non-NaN values.
func FuzzReadDemandCSV(f *testing.F) {
	f.Add("0,1\n2,0")
	f.Add("# comment\n1,2,3\n4,5,6\n7,8,9\n")
	f.Add("")
	f.Add("1,x\n2,3")
	f.Add("1e309,0\n0,0")
	f.Fuzz(func(t *testing.T, data string) {
		m, err := ReadDemandCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if len(m) == 0 {
			t.Fatal("accepted an empty matrix")
		}
		for _, row := range m {
			if len(row) != len(m) {
				t.Fatal("accepted a non-square matrix")
			}
		}
	})
}
