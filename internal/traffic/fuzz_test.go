package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the load parser never panics and that everything it
// accepts round-trips.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"flows":[{"id":1,"size":5,"src":0,"dst":2,"routes":[[0,1,2]]}]}`)
	f.Add(`{"flows":[]}`)
	f.Add(`{`)
	f.Add(`{"flows":[{"id":1,"size":-5,"src":0,"dst":2,"routes":[[0,2]]}]}`)
	f.Add(`{"flows":[{"id":1,"size":5,"src":0,"dst":2,"routes":[[0]],"weight_hops":99}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		load, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must re-serialize and re-parse identically in
		// flow count and packet totals.
		var buf bytes.Buffer
		if err := load.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted load failed to serialize: %v", err)
		}
		again, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(again.Flows) != len(load.Flows) || again.TotalPackets() != load.TotalPackets() {
			t.Fatal("round trip changed the load")
		}
	})
}

// FuzzStreamDecode checks the streaming trace decoder (both the JSONL and
// binary encodings, plus the classic-document fallback of ReadAny) never
// panics on hostile input, and that every stream it accepts re-encodes to
// binary and decodes back identically.
func FuzzStreamDecode(f *testing.F) {
	seedFlows := []Flow{
		{ID: 0, Size: 5, Src: 0, Dst: 2, Routes: []Route{{0, 1, 2}, {0, 3, 2}}, WeightHops: 2, Redundant: 1},
		{ID: 1, Size: 1, Src: 3, Dst: 1, Routes: []Route{{3, 1}}, Critical: true},
	}
	for _, format := range []StreamFormat{FormatJSONL, FormatBinary} {
		var buf bytes.Buffer
		sw := NewStreamWriter(&buf, format)
		for i := range seedFlows {
			if err := sw.Write(&seedFlows[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("MHSB1\n"))
	f.Add([]byte("MHSB1\n\x01\xff\xff\xff\xff\x7f"))
	f.Add([]byte(`{"format":"mhs-flows/v1"}` + "\n" + `{"id":0,"size":1,"src":0,"dst":1,"routes":[[0,1]]}` + "\n"))
	f.Add([]byte(`{"flows":[{"id":1,"size":5,"src":0,"dst":2,"routes":[[0,1,2]]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		load, err := ReadAny(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		sw := NewStreamWriter(&buf, FormatBinary)
		for i := range load.Flows {
			if werr := sw.Write(&load.Flows[i]); werr != nil {
				// Accepted-but-unwritable flows exist only for the classic
				// document path (its checks are looser than the stream's,
				// e.g. negative sizes); streams themselves must re-encode.
				return
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Flows) != len(load.Flows) || again.TotalPackets() != load.TotalPackets() {
			t.Fatal("binary round trip changed the load")
		}
	})
}

// FuzzReadDemandCSV checks the CSV parser never panics and only accepts
// square matrices of finite non-NaN values.
func FuzzReadDemandCSV(f *testing.F) {
	f.Add("0,1\n2,0")
	f.Add("# comment\n1,2,3\n4,5,6\n7,8,9\n")
	f.Add("")
	f.Add("1,x\n2,3")
	f.Add("1e309,0\n0,0")
	f.Fuzz(func(t *testing.T, data string) {
		m, err := ReadDemandCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if len(m) == 0 {
			t.Fatal("accepted an empty matrix")
		}
		for _, row := range m {
			if len(row) != len(m) {
				t.Fatal("accepted a non-square matrix")
			}
		}
	})
}
