package traffic

import (
	"math/rand"
	"strings"
	"testing"

	"octopus/internal/graph"
)

func TestFromDemandMatrix(t *testing.T) {
	g := graph.Complete(3)
	demand := [][]float64{
		{0, 10, 0},
		{0, 0, 5},
		{2.5, 0, 0},
	}
	rng := rand.New(rand.NewSource(1))
	load, err := FromDemandMatrix(g, demand, 100, SyntheticParams{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(load.Flows) != 3 {
		t.Fatalf("flows = %+v", load.Flows)
	}
	// Max entry (10) scales to the window (100); others proportionally.
	sizes := map[[2]int]int{}
	for _, f := range load.Flows {
		sizes[[2]int{f.Src, f.Dst}] = f.Size
	}
	if sizes[[2]int{0, 1}] != 100 || sizes[[2]int{1, 2}] != 50 || sizes[[2]int{2, 0}] != 25 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestFromDemandMatrixErrors(t *testing.T) {
	g := graph.Complete(3)
	rng := rand.New(rand.NewSource(1))
	cases := [][][]float64{
		{{0, 1}, {1, 0}},                     // wrong dimension
		{{0, 1, 0}, {0, 0, 1}},               // missing row
		{{0, -1, 0}, {0, 0, 0}, {0, 0, 0}},   // negative
		{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}},    // empty
		{{0, 1, 0}, {0, 0, 1, 9}, {0, 0, 0}}, // ragged
	}
	for i, d := range cases {
		if _, err := FromDemandMatrix(g, d, 100, SyntheticParams{}, rng); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Diagonal entries are ignored, not rejected.
	ok := [][]float64{{7, 1, 0}, {0, 0, 1}, {1, 0, 0}}
	load, err := FromDemandMatrix(g, ok, 100, SyntheticParams{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range load.Flows {
		if f.Src == f.Dst {
			t.Fatal("self-flow generated from diagonal")
		}
	}
	_ = load
}

func TestReadDemandCSV(t *testing.T) {
	in := `
# comment
0, 10, 2
3.5, 0, 1

1, 2, 0
`
	m, err := ReadDemandCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[1][0] != 3.5 || m[0][1] != 10 {
		t.Fatalf("matrix = %v", m)
	}
	bad := []string{
		"",             // empty
		"1,2\n3",       // ragged
		"1,x\n3,4",     // non-numeric
		"1,2,3\n4,5,6", // non-square
	}
	for i, c := range bad {
		if _, err := ReadDemandCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestDemandCSVEndToEnd(t *testing.T) {
	g := graph.Complete(4)
	csv := "0,100,0,0\n0,0,50,0\n0,0,0,25\n10,0,0,0\n"
	m, err := ReadDemandCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	load, err := FromDemandMatrix(g, m, 1000, SyntheticParams{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if load.TotalPackets() != 1000+500+250+100 {
		t.Fatalf("total = %d", load.TotalPackets())
	}
}
