package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"octopus/internal/graph"
)

// TraceKind selects one of the trace-like workload generators standing in
// for the publicly available traces used in the paper's §8. The real
// Facebook FBFlow dataset and Microsoft heatmaps are not redistributable,
// so these generators reproduce the published characteristics that the
// figures depend on (flow-size distribution shape, skew, sparsity, and
// hot-spot structure); flow sizes are then rescaled so the maximum flow
// equals the window, exactly as the paper does with the real traces. See
// DESIGN.md §5 (Substitutions).
type TraceKind int

const (
	// FBHadoop mimics a Facebook Hadoop cluster: wide all-to-all traffic
	// with a broad log-normal flow-size distribution and mild locality.
	FBHadoop TraceKind = iota
	// FBWeb mimics a Facebook front-end web cluster: many small flows with
	// strong locality toward a small set of hot (cache) destinations.
	FBWeb
	// FBDatabase mimics a Facebook database cluster: traffic dominated by
	// a very small number of very large flows (high skew).
	FBDatabase
	// MSHeatmap mimics the Microsoft datacenter traffic heatmaps: a
	// block-structured pattern where a few hot source/destination groups
	// dominate over a light background.
	MSHeatmap
)

// String returns the short label used in the paper's Fig 6.
func (k TraceKind) String() string {
	switch k {
	case FBHadoop:
		return "FB-1"
	case FBWeb:
		return "FB-2"
	case FBDatabase:
		return "FB-3"
	case MSHeatmap:
		return "MS"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceLike generates a trace-like load over fabric g. Flow sizes are
// scaled so the maximum flow equals window; routes are assigned like the
// synthetic generator (even split over 1..3 hops unless overridden by p's
// route fields). p's NL/NS/CL/CS fields are ignored.
func TraceLike(g *graph.Digraph, kind TraceKind, window int, p SyntheticParams, rng *rand.Rand) (*Load, error) {
	n := g.N()
	demand := traceDemand(kind, n, rng)
	// Rescale so the max entry equals the window.
	var maxD float64
	for _, row := range demand {
		for _, d := range row {
			if d > maxD {
				maxD = d
			}
		}
	}
	if maxD == 0 {
		return nil, fmt.Errorf("traffic: empty %v demand matrix", kind)
	}
	scale := float64(window) / maxD
	if p.MinHops == 0 {
		p.MinHops, p.MaxHops = 1, 3
	}
	load := &Load{}
	nextID := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			size := int(math.Round(demand[i][j] * scale))
			if size == 0 || i == j {
				continue
			}
			routes, err := sampleRoutes(g, i, j, nextID, p, rng)
			if err != nil {
				return nil, err
			}
			load.Flows = append(load.Flows, Flow{
				ID: nextID, Size: size, Src: i, Dst: j, Routes: routes,
			})
			nextID++
		}
	}
	return load, nil
}

// traceDemand builds the raw (unscaled) demand matrix for a trace kind.
func traceDemand(kind TraceKind, n int, rng *rand.Rand) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	logNormal := func(mu, sigma float64) float64 {
		return math.Exp(mu + sigma*rng.NormFloat64())
	}
	switch kind {
	case FBHadoop:
		// ~60% of pairs active, broad log-normal sizes.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.6 {
					d[i][j] = logNormal(0, 1.5)
				}
			}
		}
	case FBWeb:
		// 10% hot cache destinations receive heavy flows from everyone;
		// sparse light background elsewhere.
		hot := rng.Perm(n)[:max(1, n/10)]
		isHot := make(map[int]bool, len(hot))
		for _, h := range hot {
			isHot[h] = true
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				switch {
				case isHot[j]:
					d[i][j] = logNormal(3, 1)
				case rng.Float64() < 0.1:
					d[i][j] = logNormal(0, 0.5)
				}
			}
		}
	case FBDatabase:
		// A handful of dominant flows (Pareto tail), very sparse rest.
		heavy := max(1, n*n/50)
		for k := 0; k < heavy; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			// Pareto with alpha ~1.2: strong skew.
			d[i][j] += math.Pow(rng.Float64(), -1/1.2)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.02 {
					d[i][j] += logNormal(-1, 0.5)
				}
			}
		}
	case MSHeatmap:
		// Hot blocks: a few hot source and destination groups dominate.
		hb := max(2, n/12)
		hotSrc := rng.Perm(n)[:hb]
		hotDst := rng.Perm(n)[:hb]
		for _, i := range hotSrc {
			for _, j := range hotDst {
				if i != j {
					d[i][j] = logNormal(3, 0.7)
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.2 {
					d[i][j] += logNormal(-0.5, 0.8)
				}
			}
		}
	default:
		panic(fmt.Sprintf("traffic: unknown trace kind %d", int(kind)))
	}
	return d
}
