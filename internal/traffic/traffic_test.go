package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"octopus/internal/graph"
)

func TestWeight(t *testing.T) {
	if Weight(1) != WeightScale {
		t.Fatalf("Weight(1) = %d", Weight(1))
	}
	for l := 1; l <= MaxRouteLen; l++ {
		if Weight(l)*int64(l) != WeightScale {
			t.Fatalf("Weight(%d) not exact: %d", l, Weight(l))
		}
	}
	mustPanic(t, func() { Weight(0) })
	mustPanic(t, func() { Weight(MaxRouteLen + 1) })
}

func TestHopWeight(t *testing.T) {
	// eps = 0: plain weight for every hop.
	for l := 1; l <= 4; l++ {
		for x := 0; x < l; x++ {
			if HopWeight(l, x, 0) != Weight(l) {
				t.Fatalf("HopWeight(%d,%d,0) != Weight", l, x)
			}
		}
	}
	// eps64 = 64 (ε=1): hop x weighs (1+x)·w exactly.
	for l := 1; l <= 6; l++ {
		for x := 0; x < l; x++ {
			if HopWeight(l, x, 64) != Weight(l)*int64(1+x) {
				t.Fatalf("HopWeight(%d,%d,64) = %d, want %d", l, x, HopWeight(l, x, 64), Weight(l)*int64(1+x))
			}
		}
	}
	// Later hops weigh strictly more with positive ε.
	if HopWeight(3, 2, 1) <= HopWeight(3, 1, 1) {
		t.Fatal("ε bonus not increasing in hop index")
	}
	mustPanic(t, func() { HopWeight(3, 3, 1) })
	mustPanic(t, func() { HopWeight(3, -1, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestRouteBasics(t *testing.T) {
	r := Route{3, 1, 4}
	if r.Hops() != 2 || r.Src() != 3 || r.Dst() != 4 {
		t.Fatalf("route accessors wrong: %v", r)
	}
	if !r.Equal(Route{3, 1, 4}) || r.Equal(Route{3, 1}) || r.Equal(Route{3, 2, 4}) {
		t.Fatal("Equal wrong")
	}
}

func TestLoadAccessors(t *testing.T) {
	l := &Load{Flows: []Flow{
		{ID: 0, Size: 10, Src: 0, Dst: 1, Routes: []Route{{0, 1}}},
		{ID: 1, Size: 5, Src: 0, Dst: 2, Routes: []Route{{0, 1, 2}, {0, 3, 4, 2}}},
	}}
	if l.TotalPackets() != 15 {
		t.Fatalf("TotalPackets = %d", l.TotalPackets())
	}
	if l.MaxHops() != 3 {
		t.Fatalf("MaxHops = %d", l.MaxHops())
	}
	if l.TotalHops() != 10*1+5*2 {
		t.Fatalf("TotalHops = %d", l.TotalHops())
	}
	if l.TotalWeightedHops() != 15*WeightScale {
		t.Fatalf("TotalWeightedHops = %d", l.TotalWeightedHops())
	}
	c := l.Clone()
	c.Flows[1].Routes[0][1] = 9
	if l.Flows[1].Routes[0][1] == 9 {
		t.Fatal("Clone shares route storage")
	}
}

func TestValidate(t *testing.T) {
	g := graph.Complete(5)
	good := &Load{Flows: []Flow{
		{ID: 1, Size: 3, Src: 0, Dst: 2, Routes: []Route{{0, 1, 2}}},
	}}
	if err := good.Validate(g); err != nil {
		t.Fatalf("valid load rejected: %v", err)
	}
	cases := []*Load{
		{Flows: []Flow{{ID: 1, Size: 3, Src: 0, Dst: 2, Routes: []Route{{0, 1, 2}}}, {ID: 1, Size: 1, Src: 1, Dst: 2, Routes: []Route{{1, 2}}}}}, // dup ID
		{Flows: []Flow{{ID: 1, Size: 0, Src: 0, Dst: 2, Routes: []Route{{0, 1, 2}}}}},                                                            // zero size
		{Flows: []Flow{{ID: 1, Size: 3, Src: 0, Dst: 2}}},                                                                                        // no routes
		{Flows: []Flow{{ID: 1, Size: 3, Src: 0, Dst: 2, Routes: []Route{{0, 2, 1}}}}},                                                            // wrong dst
		{Flows: []Flow{{ID: 1, Size: 3, Src: 0, Dst: 2, Routes: []Route{{0}}}}},                                                                  // too short
	}
	for i, bad := range cases {
		if err := bad.Validate(g); err == nil {
			t.Errorf("case %d: invalid load accepted", i)
		}
	}
	sparse := graph.New(3)
	sparse.AddEdge(0, 1)
	notPath := &Load{Flows: []Flow{{ID: 1, Size: 1, Src: 0, Dst: 2, Routes: []Route{{0, 2}}}}}
	if err := notPath.Validate(sparse); err == nil {
		t.Error("route over missing edge accepted")
	}
}

func TestCyclicPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		p := cyclicPerm(n, rng)
		seen := make([]bool, n)
		for i, v := range p {
			if v == i {
				t.Fatalf("fixed point at %d", i)
			}
			if seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
		// Single cycle: following the permutation from 0 visits all nodes.
		cur, steps := 0, 0
		for {
			cur = p[cur]
			steps++
			if cur == 0 {
				break
			}
			if steps > n {
				t.Fatal("did not return to start")
			}
		}
		if steps != n {
			t.Fatalf("permutation has %d-cycle, want %d-cycle", steps, n)
		}
	}
}

func TestRandomRoute(t *testing.T) {
	g := graph.Complete(10)
	rng := rand.New(rand.NewSource(2))
	for hops := 1; hops <= 4; hops++ {
		r, ok := RandomRoute(g, 0, 9, hops, rng)
		if !ok {
			t.Fatalf("no %d-hop route in complete graph", hops)
		}
		if r.Hops() != hops || r.Src() != 0 || r.Dst() != 9 {
			t.Fatalf("bad route %v for hops=%d", r, hops)
		}
		if !g.IsRoute(r) {
			t.Fatalf("route %v not a path", r)
		}
	}
	// Direct hop requires the edge.
	sparse := graph.New(3)
	sparse.AddEdge(0, 1)
	sparse.AddEdge(1, 2)
	if _, ok := RandomRoute(sparse, 0, 2, 1, rng); ok {
		t.Fatal("found direct route over missing edge")
	}
	if r, ok := RandomRoute(sparse, 0, 2, 2, rng); !ok || !r.Equal(Route{0, 1, 2}) {
		t.Fatalf("2-hop route: %v %v", r, ok)
	}
	if _, ok := RandomRoute(g, 3, 3, 2, rng); ok {
		t.Fatal("src==dst accepted")
	}
}

func TestShortestRoute(t *testing.T) {
	g := graph.Ring(6)
	r, ok := ShortestRoute(g, 0, 3)
	if !ok || r.Hops() != 3 {
		t.Fatalf("ring shortest: %v %v", r, ok)
	}
	if !g.IsRoute(r) {
		t.Fatal("shortest route not a path")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	if _, ok := ShortestRoute(disc, 0, 3); ok {
		t.Fatal("route found in disconnected graph")
	}
	if _, ok := ShortestRoute(g, 2, 2); ok {
		t.Fatal("src==dst accepted")
	}
}

func TestSyntheticDefaults(t *testing.T) {
	p := DefaultSyntheticParams(100, 10000)
	if p.NL != 4 || p.NS != 12 || p.CL != 7000 || p.CS != 3000 {
		t.Fatalf("defaults at n=100: %+v", p)
	}
	p25 := DefaultSyntheticParams(25, 10000)
	if p25.NL != 1 || p25.NS != 3 {
		t.Fatalf("defaults at n=25: %+v", p25)
	}
	// Never zero flows per port.
	p5 := DefaultSyntheticParams(5, 10000)
	if p5.NL < 1 || p5.NS < 1 {
		t.Fatalf("defaults at n=5: %+v", p5)
	}
}

func TestSyntheticLoadShape(t *testing.T) {
	g := graph.Complete(20)
	rng := rand.New(rand.NewSource(3))
	p := DefaultSyntheticParams(20, 1000) // NL=1 NS=2? -> 4*20/100=0 -> clamped 1; 12*20/100=2
	load, err := Synthetic(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Per-port totals: every port sources exactly CL+CS packets.
	perSrc := make(map[int]int)
	perDst := make(map[int]int)
	for _, f := range load.Flows {
		perSrc[f.Src] += f.Size
		perDst[f.Dst] += f.Size
	}
	want := p.CL + p.CS
	for i := 0; i < 20; i++ {
		if perSrc[i] != want || perDst[i] != want {
			t.Fatalf("port %d totals src=%d dst=%d, want %d", i, perSrc[i], perDst[i], want)
		}
	}
	// Route lengths spread across 1..3.
	counts := map[int]int{}
	for _, f := range load.Flows {
		counts[f.Routes[0].Hops()]++
	}
	for h := 1; h <= 3; h++ {
		if counts[h] == 0 {
			t.Fatalf("no %d-hop flows: %v", h, counts)
		}
	}
}

func TestSyntheticFixedHops(t *testing.T) {
	g := graph.Complete(15)
	rng := rand.New(rand.NewSource(4))
	p := DefaultSyntheticParams(15, 500)
	p.FixedHops = 2
	load, err := Synthetic(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range load.Flows {
		if f.Routes[0].Hops() != 2 {
			t.Fatalf("flow %d has %d hops, want 2", f.ID, f.Routes[0].Hops())
		}
	}
}

func TestSyntheticMultiRoute(t *testing.T) {
	g := graph.Complete(15)
	rng := rand.New(rand.NewSource(5))
	p := DefaultSyntheticParams(15, 500)
	p.RouteChoices = 10
	load, err := Synthetic(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, f := range load.Flows {
		if len(f.Routes) > 1 {
			multi++
		}
		for _, r := range f.Routes {
			if r.Hops() < 1 || r.Hops() > 3 {
				t.Fatalf("route length %d outside 1..3", r.Hops())
			}
		}
	}
	if multi == 0 {
		t.Fatal("no flow received multiple routes")
	}
}

func TestSyntheticOnPartialFabric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomPartial(30, 6, rng)
	p := DefaultSyntheticParams(30, 300)
	load, err := Synthetic(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestTraceLike(t *testing.T) {
	g := graph.Complete(30)
	for _, kind := range []TraceKind{FBHadoop, FBWeb, FBDatabase, MSHeatmap} {
		rng := rand.New(rand.NewSource(7))
		load, err := TraceLike(g, kind, 1000, SyntheticParams{}, rng)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := load.Validate(g); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		maxSize := 0
		for _, f := range load.Flows {
			if f.Size > maxSize {
				maxSize = f.Size
			}
		}
		if maxSize != 1000 {
			t.Fatalf("%v: max flow %d, want window 1000", kind, maxSize)
		}
	}
}

func TestTraceKindString(t *testing.T) {
	want := map[TraceKind]string{FBHadoop: "FB-1", FBWeb: "FB-2", FBDatabase: "FB-3", MSHeatmap: "MS"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if TraceKind(99).String() != "TraceKind(99)" {
		t.Fatal("unknown kind string")
	}
}

func TestTraceSkewOrdering(t *testing.T) {
	// Database loads should be more skewed than Hadoop loads: the share of
	// traffic in the top 1% of flows must be higher.
	g := graph.Complete(40)
	topShare := func(kind TraceKind) float64 {
		rng := rand.New(rand.NewSource(8))
		load, err := TraceLike(g, kind, 10000, SyntheticParams{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		sizes := make([]int, 0, len(load.Flows))
		total := 0
		for _, f := range load.Flows {
			sizes = append(sizes, f.Size)
			total += f.Size
		}
		// Select top 1% by size.
		k := len(sizes)/100 + 1
		for i := 0; i < k; i++ {
			maxIdx := i
			for j := i + 1; j < len(sizes); j++ {
				if sizes[j] > sizes[maxIdx] {
					maxIdx = j
				}
			}
			sizes[i], sizes[maxIdx] = sizes[maxIdx], sizes[i]
		}
		top := 0
		for i := 0; i < k; i++ {
			top += sizes[i]
		}
		return float64(top) / float64(total)
	}
	if db, hd := topShare(FBDatabase), topShare(FBHadoop); db <= hd {
		t.Fatalf("database skew %f not above hadoop %f", db, hd)
	}
}

// Property: synthetic generation is deterministic for a fixed seed.
func TestSyntheticDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Complete(12)
		p := DefaultSyntheticParams(12, 200)
		l1, err1 := Synthetic(g, p, rand.New(rand.NewSource(seed)))
		l2, err2 := Synthetic(g, p, rand.New(rand.NewSource(seed)))
		if err1 != nil || err2 != nil || len(l1.Flows) != len(l2.Flows) {
			return false
		}
		for i := range l1.Flows {
			a, b := l1.Flows[i], l2.Flows[i]
			if a.ID != b.ID || a.Size != b.Size || a.Src != b.Src || a.Dst != b.Dst || len(a.Routes) != len(b.Routes) {
				return false
			}
			for j := range a.Routes {
				if !a.Routes[j].Equal(b.Routes[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowWeight(t *testing.T) {
	f := Flow{Routes: []Route{{0, 1, 2}}}
	if f.Weight() != Weight(2) {
		t.Fatal("Flow.Weight wrong")
	}
}
