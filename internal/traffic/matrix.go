package traffic

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"octopus/internal/graph"
)

// FromDemandMatrix converts an n x n demand matrix (demand[i][j] = traffic
// from node i to node j, arbitrary non-negative units) into a traffic load
// over fabric g: entries are rescaled so the largest equals window (the
// paper's trace preparation), and each nonzero entry becomes a flow with
// routes assigned like the synthetic generator. Use this to drive the
// scheduler from real traffic-matrix data (e.g. published heatmaps).
func FromDemandMatrix(g *graph.Digraph, demand [][]float64, window int, p SyntheticParams, rng *rand.Rand) (*Load, error) {
	n := g.N()
	if len(demand) != n {
		return nil, fmt.Errorf("traffic: demand matrix has %d rows, fabric has %d nodes", len(demand), n)
	}
	var maxD float64
	for i, row := range demand {
		if len(row) != n {
			return nil, fmt.Errorf("traffic: demand row %d has %d columns, want %d", i, len(row), n)
		}
		for j, d := range row {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("traffic: invalid demand[%d][%d] = %v", i, j, d)
			}
			if i != j && d > maxD {
				maxD = d
			}
		}
	}
	if maxD == 0 {
		return nil, fmt.Errorf("traffic: demand matrix is empty")
	}
	if p.MinHops == 0 {
		p.MinHops, p.MaxHops = 1, 3
	}
	scale := float64(window) / maxD
	load := &Load{}
	nextID := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			size := int(math.Round(demand[i][j] * scale))
			if size == 0 {
				continue
			}
			routes, err := sampleRoutes(g, i, j, nextID, p, rng)
			if err != nil {
				return nil, err
			}
			load.Flows = append(load.Flows, Flow{
				ID: nextID, Size: size, Src: i, Dst: j, Routes: routes,
			})
			nextID++
		}
	}
	return load, nil
}

// ReadDemandCSV parses a square demand matrix from CSV: one row per line,
// comma-separated non-negative numbers, '#'-prefixed comment lines and
// blank lines ignored.
func ReadDemandCSV(r io.Reader) ([][]float64, error) {
	var matrix [][]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		row := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: line %d column %d: %w", line, i+1, err)
			}
			row[i] = v
		}
		matrix = append(matrix, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(matrix) == 0 {
		return nil, fmt.Errorf("traffic: empty demand CSV")
	}
	for i, row := range matrix {
		if len(row) != len(matrix) {
			return nil, fmt.Errorf("traffic: row %d has %d columns, want %d (square matrix)", i+1, len(row), len(matrix))
		}
	}
	return matrix, nil
}
