package traffic

import (
	"fmt"
	"math/rand"

	"octopus/internal/graph"
)

// PodParams configures the pod-structured datacenter workload: a fabric of
// graph.Pods(Pods, PodSize, InterLinks) carrying the paper's §8 skewed
// large/small mix per pod, with a controllable fraction of traffic
// crossing pods through the scarce inter-pod circuit links.
type PodParams struct {
	Pods       int // number of pods
	PodSize    int // nodes per pod
	InterLinks int // inter-pod links per ordered pod pair (must match the fabric)

	// LargePerPod/SmallPerPod are the §8 n_L/n_S flow counts per pod;
	// LargeTotal/SmallTotal the c_L/c_S packet budgets per pod, split
	// evenly across that pod's large/small flows.
	LargePerPod, SmallPerPod int
	LargeTotal, SmallTotal   int

	// InterFrac is the fraction of each pod's flows whose destination
	// lives in another pod (routed src -> exit gateway -> entry gateway ->
	// dst over the inter-pod link). 0 keeps every flow pod-local.
	InterFrac float64
}

// Fabric returns the pod fabric these parameters describe.
func (p PodParams) Fabric() *graph.Digraph {
	return graph.Pods(p.Pods, p.PodSize, p.InterLinks)
}

// check validates the parameters.
func (p PodParams) check() error {
	if p.Pods < 1 || p.PodSize < 2 {
		return fmt.Errorf("traffic: pod workload needs >=1 pods of >=2 nodes, got %dx%d", p.Pods, p.PodSize)
	}
	if p.InterLinks < 0 {
		return fmt.Errorf("traffic: negative inter-pod link count %d", p.InterLinks)
	}
	if p.LargePerPod < 0 || p.SmallPerPod < 0 || p.LargePerPod+p.SmallPerPod == 0 {
		return fmt.Errorf("traffic: pod workload needs flows (large=%d small=%d)", p.LargePerPod, p.SmallPerPod)
	}
	if p.InterFrac < 0 || p.InterFrac > 1 {
		return fmt.Errorf("traffic: InterFrac %v out of [0,1]", p.InterFrac)
	}
	if p.Pods > 1 && p.InterFrac > 0 && p.InterLinks < 1 {
		return fmt.Errorf("traffic: inter-pod traffic needs InterLinks >= 1")
	}
	return nil
}

// DefaultPodParams returns §8-flavored defaults for a pods x podSize
// fabric: 4 large and 12 small flows per pod node carrying a 70/30 split
// of window-scaled traffic, 30% of flows crossing pods over 4 parallel
// inter-pod links.
func DefaultPodParams(pods, podSize, window int) PodParams {
	return PodParams{
		Pods:        pods,
		PodSize:     podSize,
		InterLinks:  min(4, podSize),
		LargePerPod: 4 * podSize,
		SmallPerPod: 12 * podSize,
		LargeTotal:  window * 7 / 10 * podSize,
		SmallTotal:  window * 3 / 10 * podSize,
		InterFrac:   0.3,
	}
}

// PodSyntheticEmit generates the pod workload flow by flow, calling emit
// for each one — the streaming form, used by mhsgen to write loads far
// larger than RAM directly to a flow stream. Generation is deterministic
// in rng. Flow IDs are assigned sequentially from 0.
func PodSyntheticEmit(p PodParams, rng *rand.Rand, emit func(Flow) error) error {
	if err := p.check(); err != nil {
		return err
	}
	nextID := 0
	for pod := 0; pod < p.Pods; pod++ {
		if err := emitPodFlows(p, pod, p.LargePerPod, p.LargeTotal, &nextID, rng, emit); err != nil {
			return err
		}
		if err := emitPodFlows(p, pod, p.SmallPerPod, p.SmallTotal, &nextID, rng, emit); err != nil {
			return err
		}
	}
	return nil
}

// PodSynthetic generates the pod workload as an in-memory columnar store.
func PodSynthetic(p PodParams, rng *rand.Rand) (*Store, error) {
	nodeHint := (p.LargePerPod + p.SmallPerPod) * p.Pods * 2
	s := NewStore((p.LargePerPod+p.SmallPerPod)*p.Pods, nodeHint)
	err := PodSyntheticEmit(p, rng, func(f Flow) error { return s.Append(&f) })
	if err != nil {
		return nil, err
	}
	return s, nil
}

// emitPodFlows emits count flows sourced in pod, splitting total packets
// evenly (earlier flows get the remainder), with each flow inter-pod with
// probability InterFrac.
func emitPodFlows(p PodParams, pod, count, total int, nextID *int, rng *rand.Rand, emit func(Flow) error) error {
	base := pod * p.PodSize
	for k := 0; k < count; k++ {
		size := total / count
		if k < total%count {
			size++
		}
		if size == 0 {
			continue
		}
		src := base + rng.Intn(p.PodSize)
		var route Route
		if p.Pods > 1 && rng.Float64() < p.InterFrac {
			dstPod := rng.Intn(p.Pods - 1)
			if dstPod >= pod {
				dstPod++
			}
			link := rng.Intn(p.InterLinks)
			route = interPodRoute(p, src, pod, dstPod, link, rng)
		} else {
			dst := base + rng.Intn(p.PodSize-1)
			if dst >= src {
				dst++
			}
			route = Route{src, dst}
		}
		f := Flow{ID: *nextID, Size: size, Src: route.Src(), Dst: route.Dst(), Routes: []Route{route}}
		*nextID++
		if err := emit(f); err != nil {
			return err
		}
	}
	return nil
}

// interPodRoute builds the gateway route src -> exit -> entry -> dst over
// the link-th inter-pod circuit from pod a to pod b, collapsing hops when
// src or dst already is the gateway. The destination is drawn from pod b
// avoiding the entry gateway (so the route stays a simple path).
func interPodRoute(p PodParams, src, a, b, link int, rng *rand.Rand) Route {
	exit := graph.PodGateway(a, b, link, p.PodSize)
	entry := graph.PodGateway(b, a, link+1, p.PodSize)
	dst := b*p.PodSize + rng.Intn(p.PodSize)
	if dst == entry {
		dst = b*p.PodSize + (dst-b*p.PodSize+1)%p.PodSize
	}
	route := Route{}
	route = append(route, src)
	if exit != src {
		route = append(route, exit)
	}
	route = append(route, entry)
	if dst != entry {
		route = append(route, dst)
	}
	return route
}
