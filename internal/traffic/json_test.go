package traffic

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"octopus/internal/graph"
)

func TestJSONRoundTrip(t *testing.T) {
	g := graph.Complete(10)
	rng := rand.New(rand.NewSource(1))
	p := DefaultSyntheticParams(10, 200)
	p.RouteChoices = 3
	load, err := Synthetic(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	load.Flows[0].WeightHops = 3

	var buf bytes.Buffer
	if err := load.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Flows) != len(load.Flows) {
		t.Fatalf("flow count %d != %d", len(got.Flows), len(load.Flows))
	}
	for i := range load.Flows {
		a, b := load.Flows[i], got.Flows[i]
		if a.ID != b.ID || a.Size != b.Size || a.Src != b.Src || a.Dst != b.Dst ||
			a.WeightHops != b.WeightHops || len(a.Routes) != len(b.Routes) {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Routes {
			if !a.Routes[j].Equal(b.Routes[j]) {
				t.Fatalf("flow %d route %d mismatch", i, j)
			}
		}
	}
	if err := got.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		`{`,
		`{"flows":[{"id":1,"size":5,"src":0,"dst":2}]}`,                    // no routes
		`{"flows":[{"id":1,"size":5,"src":0,"dst":2,"routes":[[0]]}]}`,     // degenerate route
		`{"flows":[{"id":1,"size":5,"src":0,"dst":2,"routes":[[0,1]]}]}`,   // wrong dst
		`{"flows":[{"id":1,"size":5,"src":1,"dst":2,"routes":[[0,1,2]]}]}`, // wrong src
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
	ok := `{"flows":[{"id":1,"size":5,"src":0,"dst":2,"routes":[[0,1,2]]}]}`
	if _, err := ReadJSON(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid load rejected: %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "load.json")
	load := &Load{Flows: []Flow{
		{ID: 1, Size: 3, Src: 0, Dst: 1, Routes: []Route{{0, 1}}},
	}}
	if err := load.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalPackets() != 3 {
		t.Fatalf("got %+v", got)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
